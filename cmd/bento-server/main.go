// Command bento-server boots a Bento middlebox node inside a minimal
// overlay, prints its directory descriptor and middlebox node policy as
// JSON, runs a health-check function through the full client path, and
// reports the node's enclave capacity.
//
// Usage:
//
//	bento-server            # inspect + health check
//	bento-server -policy    # print only the default middlebox policy
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/bento-nfv/bento/internal/enclave"
	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/testbed"
)

func main() {
	policyOnly := flag.Bool("policy", false, "print the default middlebox node policy and exit")
	flag.Parse()

	if *policyOnly {
		dump(policy.DefaultMiddlebox())
		return
	}

	w, err := testbed.New(testbed.Config{Relays: 5, BentoNodes: 1, ClockScale: 0.005})
	if err != nil {
		fail("boot: %v", err)
	}
	defer w.Close()

	node := w.BentoNode(0)
	fmt.Println("descriptor:")
	dump(node)

	cli := w.NewBentoClient("operator", 1)
	conn, err := cli.Connect(node)
	if err != nil {
		fail("connect: %v", err)
	}
	defer conn.Close()

	// The well-known policy function (§5.5).
	pol, err := conn.Policy()
	if err != nil {
		fail("policy fetch: %v", err)
	}
	fmt.Println("\nmiddlebox node policy (fetched over Tor):")
	dump(pol)

	// Attest the Bento runtime enclave.
	report, err := conn.Attest()
	if err != nil {
		fail("attestation: %v", err)
	}
	fmt.Printf("\nruntime enclave attested: measurement=%s TCB=%d\n",
		report.Quote.Measurement[:16]+"…", report.Quote.TCBVersion)

	// Health check: echo through both images.
	for _, image := range []string{"python", "python-op-sgx"} {
		man := functions.DefaultManifest("healthcheck", image)
		fn, err := functions.Deploy(conn, man, functions.EchoSource)
		if err != nil {
			fail("%s deploy: %v", image, err)
		}
		out, _, err := fn.Invoke("echo", interp.Bytes("health"))
		if err != nil || string(out) != "echo:health" {
			fail("%s invoke: %q %v", image, out, err)
		}
		fn.Shutdown()
		fmt.Printf("health check (%s image): OK\n", image)
	}

	fmt.Printf("\nEPC: %d MB usable of %d MB total\n",
		enclave.EPCUsable>>20, enclave.EPCTotal>>20)
}

func dump(v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fail("encoding: %v", err)
	}
	fmt.Println(string(b))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bento-server: "+format+"\n", args...)
	os.Exit(1)
}
