// Command torsim boots the emulated Tor overlay and runs a self-test:
// it builds circuits, opens exit streams, exercises a hidden-service
// rendezvous and a Bento function round trip, converges a 2-replica
// fleet under the declarative fleet controller, and prints the
// resulting consensus and timing summary. With -stats it attaches the telemetry
// registry to the whole deployment, streams a compact per-window HUD
// line while the self-test runs (rolling rates from the windowed
// sampler), and dumps the full dashboard — per-component counters,
// latency histograms with windowed percentiles, and the slowest trace
// spans — at exit.
//
// Usage:
//
//	torsim -relays 8 -scale 0.01
//	torsim -stats
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"github.com/bento-nfv/bento/internal/bento"
	"github.com/bento-nfv/bento/internal/fleet"
	"github.com/bento-nfv/bento/internal/hs"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/testbed"
	"github.com/bento-nfv/bento/internal/webfarm"
)

func main() {
	relays := flag.Int("relays", 8, "number of relays")
	bentoNodes := flag.Int("bento", 2, "how many relays also run Bento servers")
	scale := flag.Float64("scale", 0.005, "virtual clock scale (smaller = faster)")
	stats := flag.Bool("stats", false, "attach telemetry and dump the live dashboard at exit")
	flag.Parse()

	var reg *obs.Registry
	if *stats {
		reg = obs.NewRegistry()
		// Mirror completed trace spans (circuit builds, bento ops) into
		// span.* histograms so the windowed sampler rates them too.
		reg.ExportSpansAsSeries()
	}
	site := webfarm.NamedSite("selftest.web", 10_000, []int{20_000, 15_000})
	w, err := testbed.New(testbed.Config{
		Relays:     *relays,
		BentoNodes: *bentoNodes,
		Sites:      []*webfarm.Site{site},
		ClockScale: *scale,
		Obs:        reg,
		ObsWindow:  500 * time.Millisecond,
	})
	if err != nil {
		fail("building overlay: %v", err)
	}
	defer w.Close()
	clock := w.Clock()

	// The live HUD: one compact line per telemetry window.
	if wind := w.Windower(); wind != nil {
		sub := wind.Subscribe(4)
		go func() {
			for {
				unblock := clock.Blocking()
				ws, ok := <-sub.C()
				unblock()
				if !ok {
					return
				}
				line := fmt.Sprintf("[hud] t=%-8v series=%-3d", ws.At.Round(10*time.Millisecond), len(ws.Series))
				if st := ws.Find("simnet.dials"); st != nil {
					line += fmt.Sprintf(" dials/s=%-7.1f", st.Rate)
				}
				if st := ws.Find("simnet.bytes_sent"); st != nil {
					line += fmt.Sprintf(" sentB/s=%-9.0f", st.Rate)
				}
				if st := ws.Find("simnet.open_conns"); st != nil {
					line += fmt.Sprintf(" conns=%-4d", st.Last)
				}
				if st := ws.Find("bento.invokes"); st != nil {
					line += fmt.Sprintf(" invokes/s=%-5.1f", st.Rate)
				}
				if st := ws.Find("span.circuit.build_ns"); st != nil && st.Count > 0 {
					line += fmt.Sprintf(" build.p95=%v", time.Duration(st.P95).Round(time.Microsecond))
				}
				fmt.Println(line)
			}
		}()
	}

	fmt.Printf("overlay up: %d relays, consensus signed by directory authority\n", len(w.Consensus.Relays))
	for _, d := range w.Consensus.Relays {
		fmt.Printf("  %-10s %-22s flags=%v\n", d.Nickname, d.Address, d.Flags)
	}

	// 1. Three-hop circuit with an exit stream.
	cli := w.NewTorClient("selftest-client", 1)
	path, err := cli.PickPath("selftest.web", webfarm.Port)
	if err != nil {
		fail("path selection: %v", err)
	}
	t0 := clock.Now()
	circ, err := cli.BuildCircuit(path)
	if err != nil {
		fail("circuit build: %v", err)
	}
	buildTime := clock.Now() - t0
	fmt.Printf("\ncircuit: %s -> %s -> %s (built in %v virtual)\n",
		path[0].Nickname, path[1].Nickname, path[2].Nickname, buildTime)

	t0 = clock.Now()
	page, err := webfarm.FetchPage(circ.OpenStream, "selftest.web")
	if err != nil {
		fail("page fetch: %v", err)
	}
	fmt.Printf("fetched %d bytes through the circuit in %v virtual\n", len(page), clock.Now()-t0)
	circ.Close()

	// 2. Hidden-service rendezvous round trip.
	svcTor := w.NewTorClient("selftest-service", 2)
	ident, err := hs.NewIdentity()
	if err != nil {
		fail("identity: %v", err)
	}
	svc, err := hs.Launch(svcTor, ident, hs.ServiceConfig{
		Handler: func(c net.Conn) {
			defer c.Close()
			io.Copy(c, c)
		},
	})
	if err != nil {
		fail("hidden service launch: %v", err)
	}
	defer svc.Close()

	t0 = clock.Now()
	conn, err := hs.Dial(cli, svc.ServiceID())
	if err != nil {
		fail("hidden service dial: %v", err)
	}
	msg := []byte("rendezvous self-test payload")
	conn.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil || !bytes.Equal(got, msg) {
		fail("hidden service echo mismatch: %v", err)
	}
	conn.Close()
	fmt.Printf("hidden service %s…: rendezvous echo OK in %v virtual\n",
		svc.ServiceID()[:16], clock.Now()-t0)

	// 3. Bento function round trip: spawn, upload, invoke.
	if *bentoNodes > 0 {
		bcli := w.NewBentoClient("selftest-bento", 3)
		node := w.BentoNode(0)
		if node == nil {
			fail("no Bento node in consensus")
		}
		t0 = clock.Now()
		sess := bcli.NewSession(node, bento.SessionConfig{})
		fn, err := sess.Spawn(&policy.Manifest{
			Name:         "selftest-fn",
			Image:        "python",
			Memory:       4 << 20,
			Instructions: 1_000_000,
		})
		if err != nil {
			fail("bento spawn on %s: %v", node.Nickname, err)
		}
		if err := fn.Upload("def ping(x):\n    return x + 1\n"); err != nil {
			fail("bento upload: %v", err)
		}
		_, result, err := fn.Invoke("ping", interp.Int(41))
		if err != nil {
			fail("bento invoke: %v", err)
		}
		if got, ok := result.(interp.Int); !ok || got != 42 {
			fail("bento invoke returned %v, want 42", result)
		}
		fn.Shutdown()
		sess.Close()
		fmt.Printf("bento function on %s: spawn+upload+invoke OK in %v virtual\n",
			node.Nickname, clock.Now()-t0)
	}

	// 4. Fleet controller: declare a replicated function and let the
	// reconciler place it across the Bento nodes.
	if *bentoNodes >= 2 {
		ctrl, err := w.NewFleetController("selftest-fleet", fleet.Config{Seed: 4})
		if err != nil {
			fail("fleet controller: %v", err)
		}
		defer ctrl.Close()
		t0 = clock.Now()
		err = ctrl.Apply(&fleet.Spec{
			Name:     "selftest-fleet",
			Replicas: 2,
			Manifest: &policy.Manifest{
				Name:         "selftest-fleet",
				Image:        "python",
				Memory:       4 << 20,
				Instructions: 1_000_000,
			},
			Source:   "def ping(x):\n    return x + 1\n\ndef health():\n    return 1\n",
			HealthFn: "health",
		})
		if err != nil {
			fail("fleet apply: %v", err)
		}
		if err := ctrl.WaitConverged(60 * time.Second); err != nil {
			fail("fleet convergence: %v", err)
		}
		convTime := clock.Now() - t0
		fcli := w.NewBentoClient("selftest-fleet-client", 5)
		var nodes []string
		for _, ep := range ctrl.Endpoints() {
			fsess := fcli.NewSession(ep.Node, bento.SessionConfig{})
			ffn := fsess.Attach(ep.InvokeToken)
			_, result, err := ffn.Invoke("ping", interp.Int(41))
			if err != nil {
				fail("fleet invoke on %s: %v", ep.Node.Nickname, err)
			}
			if got, ok := result.(interp.Int); !ok || got != 42 {
				fail("fleet invoke on %s returned %v, want 42", ep.Node.Nickname, result)
			}
			fsess.Close()
			nodes = append(nodes, ep.Node.Nickname)
		}
		fmt.Printf("fleet: %d replicas converged on %v in %v virtual, all replicas answering\n",
			len(nodes), nodes, convTime)
	}

	fmt.Println("\nself-test passed")

	if reg != nil {
		if wind := w.Windower(); wind != nil {
			if ws := wind.Window(); ws != nil {
				fmt.Println("\n=== last telemetry window ===")
				fmt.Println(ws.Dashboard())
			}
		}
		fmt.Println("\n=== telemetry dashboard ===")
		fmt.Println(reg.Snapshot().Dashboard())
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "torsim: "+format+"\n", args...)
	os.Exit(1)
}
