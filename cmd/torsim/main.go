// Command torsim boots the emulated Tor overlay and runs a self-test:
// it builds circuits, opens exit streams, exercises a hidden-service
// rendezvous, and prints the resulting consensus and timing summary.
//
// Usage:
//
//	torsim -relays 8 -scale 0.01
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"github.com/bento-nfv/bento/internal/hs"
	"github.com/bento-nfv/bento/internal/testbed"
	"github.com/bento-nfv/bento/internal/webfarm"
)

func main() {
	relays := flag.Int("relays", 8, "number of relays")
	scale := flag.Float64("scale", 0.005, "virtual clock scale (smaller = faster)")
	flag.Parse()

	site := webfarm.NamedSite("selftest.web", 10_000, []int{20_000, 15_000})
	w, err := testbed.New(testbed.Config{
		Relays:     *relays,
		BentoNodes: 0,
		Sites:      []*webfarm.Site{site},
		ClockScale: *scale,
	})
	if err != nil {
		fail("building overlay: %v", err)
	}
	defer w.Close()
	clock := w.Clock()

	fmt.Printf("overlay up: %d relays, consensus signed by directory authority\n", len(w.Consensus.Relays))
	for _, d := range w.Consensus.Relays {
		fmt.Printf("  %-10s %-22s flags=%v\n", d.Nickname, d.Address, d.Flags)
	}

	// 1. Three-hop circuit with an exit stream.
	cli := w.NewTorClient("selftest-client", 1)
	path, err := cli.PickPath("selftest.web", webfarm.Port)
	if err != nil {
		fail("path selection: %v", err)
	}
	t0 := clock.Now()
	circ, err := cli.BuildCircuit(path)
	if err != nil {
		fail("circuit build: %v", err)
	}
	buildTime := clock.Now() - t0
	fmt.Printf("\ncircuit: %s -> %s -> %s (built in %v virtual)\n",
		path[0].Nickname, path[1].Nickname, path[2].Nickname, buildTime)

	t0 = clock.Now()
	page, err := webfarm.FetchPage(circ.OpenStream, "selftest.web")
	if err != nil {
		fail("page fetch: %v", err)
	}
	fmt.Printf("fetched %d bytes through the circuit in %v virtual\n", len(page), clock.Now()-t0)
	circ.Close()

	// 2. Hidden-service rendezvous round trip.
	svcTor := w.NewTorClient("selftest-service", 2)
	ident, err := hs.NewIdentity()
	if err != nil {
		fail("identity: %v", err)
	}
	svc, err := hs.Launch(svcTor, ident, hs.ServiceConfig{
		Handler: func(c net.Conn) {
			defer c.Close()
			io.Copy(c, c)
		},
	})
	if err != nil {
		fail("hidden service launch: %v", err)
	}
	defer svc.Close()

	t0 = clock.Now()
	conn, err := hs.Dial(cli, svc.ServiceID())
	if err != nil {
		fail("hidden service dial: %v", err)
	}
	msg := []byte("rendezvous self-test payload")
	conn.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil || !bytes.Equal(got, msg) {
		fail("hidden service echo mismatch: %v", err)
	}
	conn.Close()
	fmt.Printf("hidden service %s…: rendezvous echo OK in %v virtual\n",
		svc.ServiceID()[:16], clock.Now()-t0)

	fmt.Println("\nself-test passed")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "torsim: "+format+"\n", args...)
	os.Exit(1)
}
