// Command benchharness regenerates every table and figure from the
// paper's evaluation, plus the ablations DESIGN.md calls out.
//
// Usage:
//
//	benchharness -exp all            # quick versions of everything
//	benchharness -exp table1 -full   # paper-scale Table 1 (slow)
//	benchharness -exp figure5
//
// Experiments: table1, table2, figure5, chaos, fleet, scalability,
// ablations, datapath, obs, interp, all. The chaos experiment measures
// throughput retained under injected faults (link loss, a relay crash, a
// Bento node outage, a killed function) relative to a fault-free
// baseline. The fleet experiment puts a 3-replica fleet under the
// declarative fleet controller, kills a relay, partitions another, and
// crash-loops a third replica, measuring virtual time-to-reconverge per
// fault and the client-visible success rate (target: zero errors while
// the fleet reports converged); it writes BENCH_fleet.json. The
// datapath experiment measures steady-state cell throughput through a
// 3-hop circuit and writes BENCH_datapath.json so the perf trajectory is
// recorded across changes. The obs experiment ablates the telemetry
// layer (instrumented vs nil-registry runs) and writes BENCH_obs.json;
// -stats attaches a registry to the chaos experiment and dumps its
// dashboard at exit. The interp experiment compares the bscript
// tree-walking interpreter against the bytecode VM (compute-, call-, and
// string-heavy workloads, the cached upload path, and the end-to-end
// invoke latency) and writes BENCH_interp.json. The scale experiment
// runs on the discrete-event clock: it registers a six-figure client
// host count (100k with -full) beside a real relay fleet, churns every
// client through a genuine CREATE handshake plus a cover-traffic pump,
// and writes emulator throughput, virtual circuit-build percentiles,
// and steady-state memory per simulated host to BENCH_scale.json;
// -maxhostbytes turns the memory figure into a hard gate. The autoscale
// experiment closes the telemetry→control loop: a fleet under the
// obs-driven autoscaler takes a 3x traffic ramp plus a mid-ramp relay
// crash, and the run fails unless capacity follows demand without
// thrashing (scale-up within ~1.5 windows, zero app-visible errors, at
// most one oscillation under chaos, back at the floor after the tail);
// it writes the replica/latency timeline to BENCH_autoscale.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"github.com/bento-nfv/bento/internal/bench"
	"github.com/bento-nfv/bento/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|figure5|chaos|fleet|autoscale|scalability|scale|ablations|datapath|obs|interp|all")
	full := flag.Bool("full", false, "run paper-scale parameters (slow)")
	seed := flag.Int64("seed", 1, "base random seed")
	benchOut := flag.String("benchout", "BENCH_datapath.json", "path for the datapath experiment's machine-readable result")
	obsOut := flag.String("obsout", "BENCH_obs.json", "path for the observability ablation's machine-readable result")
	interpOut := flag.String("interpout", "BENCH_interp.json", "path for the interp engine comparison's machine-readable result")
	fleetOut := flag.String("fleetout", "BENCH_fleet.json", "path for the fleet reconciliation experiment's machine-readable result")
	autoscaleOut := flag.String("autoscaleout", "BENCH_autoscale.json", "path for the fleet autoscaling experiment's machine-readable result")
	scaleOut := flag.String("scaleout", "BENCH_scale.json", "path for the scale experiment's machine-readable result")
	scaleClients := flag.Int("scaleclients", 0, "override the scale experiment's client count (0 = experiment default)")
	scaleDrivers := flag.Int("scaledrivers", 0, "override the scale experiment's driver pool size (0 = experiment default)")
	stats := flag.Bool("stats", false, "attach a telemetry registry to the chaos experiment and dump its dashboard at exit")
	minFwd := flag.Float64("minfwd", 0, "fail the datapath experiment if the forward rate (cells/s) lands below this floor")
	maxHostBytes := flag.Float64("maxhostbytes", 0, "fail the scale experiment if steady-state memory per simulated host exceeds this many bytes")
	minEventsPerSec := flag.Float64("mineventspersec", 0, "fail the scale experiment if the dispatcher's wall-clock event rate lands below this floor")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var statsReg *obs.Registry
	if *stats {
		statsReg = obs.NewRegistry()
	}

	ran := false
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		ran = true
		fmt.Printf("=== %s ===\n", name)
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", name, time.Since(start).Seconds())
	}

	run("table1", func() error {
		cfg := bench.Table1Config{
			Sites: 24, Visits: 6, TrainPerSite: 3,
			Paddings: []int{0, 1 << 20, 7 << 20}, Seed: *seed,
		}
		if *full {
			cfg = bench.DefaultTable1Config()
			cfg.Seed = *seed
		}
		res, err := bench.RunTable1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	})

	run("table2", func() error {
		cfg := bench.DefaultTable2Config()
		cfg.Seed = *seed
		if !*full {
			cfg.Trials = 1
		}
		res, err := bench.RunTable2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	})

	run("figure5", func() error {
		cfg := bench.DefaultFigure5Config()
		cfg.Seed = *seed
		cfg.Duration = 3 * time.Minute
		if *full {
			cfg.FileSize = 10 << 20 // the paper's 10 MB file
			cfg.Duration = 20 * time.Minute
			cfg.ClockScale = 0.01
		}
		res, err := bench.RunFigure5(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	})

	run("chaos", func() error {
		cfg := bench.DefaultChaosConfig()
		cfg.Seed = *seed
		cfg.Obs = statsReg
		if *full {
			cfg.Clients = 12
			cfg.Ops = 20
			cfg.FileSize = 256 << 10
		}
		res, err := bench.RunChaos(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	})

	run("fleet", func() error {
		cfg := bench.DefaultFleetBenchConfig()
		cfg.Seed = *seed
		cfg.Obs = statsReg
		if *full {
			cfg.Clients = 12
			cfg.FileSize = 64 << 10
			cfg.Tail = 10 * time.Second
		}
		res, err := bench.RunFleetBench(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		if err := res.WriteJSONFile(*fleetOut); err != nil {
			return err
		}
		fmt.Printf("(wrote %s)\n", *fleetOut)
		return nil
	})

	run("autoscale", func() error {
		cfg := bench.DefaultAutoscaleBenchConfig()
		cfg.Seed = *seed
		cfg.Obs = statsReg
		if *full {
			cfg.Ramp = 60 * time.Second
			cfg.Tail = 60 * time.Second
		}
		res, err := bench.RunAutoscale(cfg)
		if res != nil {
			fmt.Println(res)
			if werr := res.WriteJSONFile(*autoscaleOut); werr != nil && err == nil {
				err = werr
			}
			fmt.Printf("(wrote %s)\n", *autoscaleOut)
		}
		return err
	})

	run("scalability", func() error {
		res, err := bench.RunScalability(bench.DefaultScalabilityConfig())
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	})

	run("scale", func() error {
		cfg := bench.DefaultScaleConfig()
		cfg.Seed = *seed
		if !*full && *scaleClients == 0 {
			// Quick mode still exercises the full lifecycle, just with a
			// four-figure host count so `-exp all` stays fast. An explicit
			// -scaleclients keeps the full-size driver pool.
			cfg.Clients = 5_000
			cfg.Drivers = 64
		}
		if *scaleClients > 0 {
			cfg.Clients = *scaleClients
		}
		if *scaleDrivers > 0 {
			cfg.Drivers = *scaleDrivers
		}
		res, err := bench.RunScale(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		if err := res.WriteJSONFile(*scaleOut); err != nil {
			return err
		}
		fmt.Printf("(wrote %s)\n", *scaleOut)
		if *maxHostBytes > 0 && res.BytesPerHost > *maxHostBytes {
			return fmt.Errorf("memory per host %.0f bytes above ceiling %.0f",
				res.BytesPerHost, *maxHostBytes)
		}
		if *minEventsPerSec > 0 && res.EventsPerSec < *minEventsPerSec {
			return fmt.Errorf("dispatcher rate %.0f events/s below floor %.0f",
				res.EventsPerSec, *minEventsPerSec)
		}
		return nil
	})

	run("datapath", func() error {
		cfg := bench.DefaultDatapathConfig()
		cfg.Seed = *seed
		if *full {
			cfg.Bytes = 32 << 20
			cfg.MicroCells = 1_000_000
		}
		res, err := bench.RunDatapath(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		if err := res.WriteJSONFile(*benchOut); err != nil {
			return err
		}
		fmt.Printf("(wrote %s)\n", *benchOut)
		if *minFwd > 0 && res.ForwardCellsPerSec < *minFwd {
			return fmt.Errorf("forward rate %.0f cells/s below floor %.0f",
				res.ForwardCellsPerSec, *minFwd)
		}
		return nil
	})

	run("obs", func() error {
		cfg := bench.DefaultObsConfig()
		cfg.Seed = *seed
		if *full {
			cfg.Bytes = 16 << 20
			cfg.Rounds = 5
			cfg.MicroCells = 1_000_000
		}
		res, reg, err := bench.RunObs(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		if err := res.WriteJSONFile(*obsOut); err != nil {
			return err
		}
		fmt.Printf("(wrote %s)\n", *obsOut)
		if *stats {
			fmt.Println(reg.Snapshot().Dashboard())
		}
		return nil
	})

	run("interp", func() error {
		cfg := bench.DefaultInterpConfig()
		cfg.Seed = *seed
		if *full {
			cfg.ComputeN = 1_000_000
			cfg.FibN = 25
			cfg.StringN = 200_000
			cfg.Repeats = 10
			cfg.InvokeReps = 20
		}
		res, err := bench.RunInterp(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
		if err := res.WriteJSONFile(*interpOut); err != nil {
			return err
		}
		fmt.Printf("(wrote %s)\n", *interpOut)
		return nil
	})

	run("ablations", func() error {
		sites, visits := 8, 4
		paddings := []int{0, 256 * 1024, 1 << 20}
		trials := 200
		if *full {
			sites, visits = 20, 8
			paddings = []int{0, 256 * 1024, 1 << 20, 2 << 20, 7 << 20}
			trials = 1000
		}
		pad, err := bench.RunPaddingAblation(sites, visits, paddings, *seed)
		if err != nil {
			return err
		}
		fmt.Println(pad)
		conclave, err := bench.RunConclaveAblation(5, *seed)
		if err != nil {
			return err
		}
		fmt.Println(conclave)
		shard, err := bench.RunShardAblation(trials, *seed)
		if err != nil {
			return err
		}
		fmt.Println(shard)
		fair, err := bench.RunFairnessAblation([]int{2, 4, 8, 13}, *seed)
		if err != nil {
			return err
		}
		fmt.Println(fair)
		multi, err := bench.RunMultipathAblation([]int{1, 2, 4}, *seed)
		if err != nil {
			return err
		}
		fmt.Println(multi)
		cover, err := bench.RunCoverAblation(*seed)
		if err != nil {
			return err
		}
		fmt.Println(cover)
		return nil
	})

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; want table1|table2|figure5|chaos|fleet|autoscale|scalability|scale|ablations|datapath|obs|interp|all\n", *exp)
		os.Exit(2)
	}
	if statsReg != nil {
		fmt.Println("=== telemetry dashboard ===")
		fmt.Println(statsReg.Snapshot().Dashboard())
	}
}
