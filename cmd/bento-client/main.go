// Command bento-client deploys and invokes a Bento function against a
// freshly booted deployment — either one of the built-in functions from
// the paper or a user-provided bscript file.
//
// Usage:
//
//	bento-client -builtin browser -call browser -args '["site-000.web", 1048576]'
//	bento-client -script myfn.bs -call main -args '[]' -sgx
//	bento-client -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/testbed"
	"github.com/bento-nfv/bento/internal/webfarm"
)

var builtins = map[string]string{
	"echo":    functions.EchoSource,
	"browser": functions.BrowserSource,
	"dropbox": functions.DropboxSource,
	"cover":   functions.CoverSource,
	"shard":   functions.ShardSource,
}

func main() {
	builtin := flag.String("builtin", "", "built-in function: echo|browser|dropbox|cover|shard")
	script := flag.String("script", "", "path to a bscript function file")
	call := flag.String("call", "", "function to invoke after upload")
	argsJSON := flag.String("args", "[]", "invocation arguments as a JSON array (strings, ints, bools)")
	sgx := flag.Bool("sgx", false, "run in the python-op-sgx image (sealed upload)")
	sites := flag.Int("sites", 3, "synthetic websites to serve (site-000.web …)")
	list := flag.Bool("list", false, "list built-in functions and exit")
	flag.Parse()

	if *list {
		for name := range builtins {
			fmt.Println(name)
		}
		return
	}

	source := builtins[*builtin]
	if *script != "" {
		b, err := os.ReadFile(*script)
		if err != nil {
			fail("reading script: %v", err)
		}
		source = string(b)
	}
	if source == "" {
		fail("need -builtin or -script (try -list)")
	}

	w, err := testbed.New(testbed.Config{
		Relays:     6,
		BentoNodes: 2,
		Sites:      webfarm.GenerateSites(*sites, 42),
		ClockScale: 0.005,
	})
	if err != nil {
		fail("boot: %v", err)
	}
	defer w.Close()

	cli := w.NewBentoClient("user", 1)
	node, err := cli.PickNode()
	if err != nil {
		fail("node discovery: %v", err)
	}
	fmt.Printf("using Bento node %s (of %d advertised)\n", node.Nickname, len(cli.Nodes()))

	conn, err := cli.Connect(node)
	if err != nil {
		fail("connect: %v", err)
	}
	defer conn.Close()

	image := "python"
	if *sgx {
		image = "python-op-sgx"
	}
	fn, err := functions.Deploy(conn, functions.DefaultManifest("cli-function", image), source)
	if err != nil {
		fail("deploy: %v", err)
	}
	defer fn.Shutdown()
	fmt.Printf("deployed (%s image); invoke token %s…\n", image, fn.InvokeToken()[:8])

	if *call == "" {
		fmt.Println("no -call given; function uploaded and left running")
		return
	}
	args, err := parseArgs(*argsJSON)
	if err != nil {
		fail("parsing -args: %v", err)
	}
	out, result, err := fn.Invoke(*call, args...)
	if err != nil {
		fail("invoke: %v", err)
	}
	fmt.Printf("result: %s\n", interp.Repr(result))
	fmt.Printf("output: %d bytes\n", len(out))
	if len(out) > 0 && len(out) <= 512 {
		fmt.Printf("%q\n", out)
	}
}

func parseArgs(s string) ([]interp.Value, error) {
	var raw []any
	if err := json.Unmarshal([]byte(s), &raw); err != nil {
		return nil, err
	}
	out := make([]interp.Value, 0, len(raw))
	for _, v := range raw {
		switch x := v.(type) {
		case string:
			out = append(out, interp.Str(x))
		case float64:
			out = append(out, interp.Int(int64(x)))
		case bool:
			out = append(out, interp.Bool(x))
		case nil:
			out = append(out, interp.None)
		default:
			return nil, fmt.Errorf("unsupported argument %v", v)
		}
	}
	return out, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bento-client: "+format+"\n", args...)
	os.Exit(1)
}
