package pow

import (
	"testing"
	"testing/quick"
)

func TestSolveVerify(t *testing.T) {
	for _, bits := range []int{0, 1, 6, 10} {
		nonce, err := Solve("tag", []byte("payload"), bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if !Verify("tag", []byte("payload"), nonce, bits) {
			t.Fatalf("bits=%d: own solution rejected", bits)
		}
	}
}

func TestBinding(t *testing.T) {
	nonce, _ := Solve("tag", []byte("payload"), 10)
	if Verify("other-tag", []byte("payload"), nonce, 10) {
		t.Fatal("proof transferred across tags")
	}
	if Verify("tag", []byte("other-payload"), nonce, 10) {
		t.Fatal("proof transferred across payloads")
	}
}

func TestBounds(t *testing.T) {
	if _, err := Solve("t", nil, MaxBits+1); err == nil {
		t.Fatal("over-limit difficulty accepted")
	}
	if _, err := Solve("t", nil, -1); err == nil {
		t.Fatal("negative difficulty accepted")
	}
	if Verify("t", nil, 0, MaxBits+1) {
		t.Fatal("over-limit verification passed")
	}
	if !Verify("t", nil, 99, 0) {
		t.Fatal("zero difficulty must verify")
	}
	if !Verify("t", nil, 99, -3) {
		t.Fatal("negative difficulty must verify trivially")
	}
}

// Property: a valid proof at difficulty b verifies at every difficulty
// ≤ b and (statistically) fails at much higher difficulties.
func TestMonotoneDifficultyProperty(t *testing.T) {
	check := func(payload []byte) bool {
		const bits = 8
		nonce, err := Solve("t", payload, bits)
		if err != nil {
			return false
		}
		for lower := 0; lower <= bits; lower++ {
			if !Verify("t", payload, nonce, lower) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolve12Bits(b *testing.B) {
	payload := []byte("challenge-payload")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve("bench", append(payload, byte(i)), 12); err != nil {
			b.Fatal(err)
		}
	}
}
