// Package pow implements the hashcash-style client puzzles the paper
// proposes for rate limiting (§6.2, §11: "proofs of work" against
// function-flooding and introduction DDoS). A proof binds a context tag
// and payload to a nonce whose SHA-256 digest has a demanded number of
// leading zero bits.
package pow

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// MaxBits bounds advertised difficulty so a malicious server cannot
// demand unbounded client work.
const MaxBits = 30

func digest(tag string, payload []byte, nonce uint64) [32]byte {
	h := sha256.New()
	h.Write([]byte(tag))
	h.Write([]byte{':'})
	h.Write(payload)
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	h.Write(nb[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// LeadingZeroBits counts a digest's leading zero bits.
func LeadingZeroBits(d [32]byte) int {
	bits := 0
	for _, b := range d {
		if b == 0 {
			bits += 8
			continue
		}
		for mask := byte(0x80); mask != 0; mask >>= 1 {
			if b&mask != 0 {
				return bits
			}
			bits++
		}
	}
	return bits
}

// Solve finds a nonce satisfying the difficulty. Expected cost is 2^bits
// hashes; bits = 0 returns immediately.
func Solve(tag string, payload []byte, bits int) (uint64, error) {
	if bits < 0 || bits > MaxBits {
		return 0, fmt.Errorf("pow: difficulty %d out of range [0, %d]", bits, MaxBits)
	}
	if bits == 0 {
		return 0, nil
	}
	for nonce := uint64(0); ; nonce++ {
		if LeadingZeroBits(digest(tag, payload, nonce)) >= bits {
			return nonce, nil
		}
	}
}

// Verify checks a proof. Zero difficulty always verifies; difficulties
// beyond MaxBits never do.
func Verify(tag string, payload []byte, nonce uint64, bits int) bool {
	if bits <= 0 {
		return true
	}
	if bits > MaxBits {
		return false
	}
	return LeadingZeroBits(digest(tag, payload, nonce)) >= bits
}
