package stemfw

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/hs"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/relay"
	"github.com/bento-nfv/bento/internal/simnet"
	"github.com/bento-nfv/bento/internal/torclient"
)

// fixture boots a small overlay and returns a Tor client for the firewall.
func fixture(t *testing.T) (*torclient.Client, *simnet.Network) {
	t.Helper()
	n := simnet.NewNetwork(simnet.NewClock(0.0005), 2*time.Millisecond)
	auth, err := dirauth.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("relay%d", i)
		host := n.AddHost(name, 0)
		r, err := relay.New(host, relay.Config{
			Nickname:   name,
			Flags:      []string{dirauth.FlagGuard, dirauth.FlagExit, dirauth.FlagHSDir},
			ExitPolicy: policy.AcceptAll(),
			Quiet:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.ServeHSDir()
		d, _ := r.Descriptor()
		auth.Publish(d)
		t.Cleanup(func() { r.Close() })
	}
	cons, err := auth.Consensus()
	if err != nil {
		t.Fatal(err)
	}
	return torclient.New(n.AddHost("fw-host", 0), cons, 1), n
}

func allCalls() []string {
	return []string{"stem.create_circuit", "stem.close_circuit", "stem.launch_hs"}
}

func TestSessionCircuitLifecycle(t *testing.T) {
	tor, n := fixture(t)
	fw := New(tor)
	sess := fw.NewSession("fn1", allCalls())
	defer sess.Close()

	// An echo destination.
	echoHost := n.AddHost("echo", 0)
	ln, _ := echoHost.Listen(80)
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { defer c.Close(); io.Copy(c, c) }(c)
		}
	}()

	circ, err := sess.CreateCircuit("echo", 80)
	if err != nil {
		t.Fatalf("CreateCircuit: %v", err)
	}
	stream, err := sess.OpenStream(circ, "echo:80")
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	conn, err := sess.Stream(stream)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("ping"))
	got := make([]byte, 4)
	if _, err := io.ReadFull(conn, got); err != nil || string(got) != "ping" {
		t.Fatalf("echo through firewall circuit: %q %v", got, err)
	}
	if err := sess.CloseStream(stream); err != nil {
		t.Fatal(err)
	}
	if err := sess.CloseCircuit(circ); err != nil {
		t.Fatal(err)
	}
	// Handles are gone afterwards.
	if _, err := sess.Stream(stream); !errors.Is(err, ErrDenied) {
		t.Fatalf("stale stream handle: %v", err)
	}
	if _, err := sess.OpenStream(circ, "echo:80"); !errors.Is(err, ErrDenied) {
		t.Fatalf("stale circuit handle: %v", err)
	}
}

func TestCallFilterEnforced(t *testing.T) {
	tor, _ := fixture(t)
	fw := New(tor)
	sess := fw.NewSession("fn1", []string{"stem.close_circuit"}) // no create
	defer sess.Close()
	if _, err := sess.CreateCircuit("anything", 80); !errors.Is(err, ErrDenied) {
		t.Fatalf("create without permission: %v", err)
	}
	ident, _ := hs.NewIdentity()
	if _, err := sess.LaunchHiddenService(ident, nil); !errors.Is(err, ErrDenied) {
		t.Fatalf("launch_hs without permission: %v", err)
	}
}

func TestCircuitLimit(t *testing.T) {
	tor, _ := fixture(t)
	fw := New(tor)
	sess := fw.NewSession("fn1", allCalls())
	defer sess.Close()
	for i := 0; i < DefaultMaxCircuits; i++ {
		if _, err := sess.CreateCircuit("relay0", relay.ORPort); err != nil {
			t.Fatalf("circuit %d: %v", i, err)
		}
	}
	if _, err := sess.CreateCircuit("relay0", relay.ORPort); !errors.Is(err, ErrDenied) {
		t.Fatalf("circuit beyond limit: %v", err)
	}
}

func TestSessionIsolation(t *testing.T) {
	// A handle from one session means nothing in another — the firewall
	// "maintains state about the circuits each function is allowed to
	// access" (§5.3).
	tor, _ := fixture(t)
	fw := New(tor)
	a := fw.NewSession("fnA", allCalls())
	b := fw.NewSession("fnB", allCalls())
	defer a.Close()
	defer b.Close()
	circ, err := a.CreateCircuit("relay1", relay.ORPort)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.OpenStream(circ, "relay1:9001"); !errors.Is(err, ErrDenied) {
		t.Fatalf("cross-session circuit access: %v", err)
	}
	if err := b.CloseCircuit(circ); !errors.Is(err, ErrDenied) {
		t.Fatalf("cross-session circuit close: %v", err)
	}
}

func TestSessionCloseFateShares(t *testing.T) {
	tor, _ := fixture(t)
	fw := New(tor)
	sess := fw.NewSession("fn1", allCalls())
	circ, err := sess.CreateCircuit("relay1", relay.ORPort)
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	// Everything owned by the session is gone (functions fate-share).
	if _, err := sess.OpenStream(circ, "relay1:9001"); err == nil {
		t.Fatal("session usable after close")
	}
	if _, err := sess.CreateCircuit("relay1", relay.ORPort); !errors.Is(err, ErrDenied) {
		t.Fatalf("create after close: %v", err)
	}
	sess.Close() // idempotent
}

func TestHiddenServiceQueueAndRespond(t *testing.T) {
	tor, n := fixture(t)
	fw := New(tor)
	front := fw.NewSession("front", allCalls())
	replica := fw.NewSession("replica", allCalls())
	defer front.Close()
	defer replica.Close()

	ident, _ := hs.NewIdentity()
	h, err := front.LaunchHiddenService(ident, nil)
	if err != nil {
		t.Fatalf("LaunchHiddenService: %v", err)
	}
	if blob, err := front.NextIntroduction(h); err != nil || blob != nil {
		t.Fatalf("unexpected introduction: %v %v", blob, err)
	}
	if _, err := front.NextIntroduction(h + 99); !errors.Is(err, ErrDenied) {
		t.Fatalf("unknown HS handle: %v", err)
	}

	// A client introduces itself; the front forwards to the replica.
	content := bytes.Repeat([]byte("served "), 100)
	cli := torclient.New(n.AddHost("visitor", 0), tor.Consensus(), 9)
	done := make(chan []byte, 1)
	go func() {
		conn, err := hs.Dial(cli, ident.ServiceID())
		if err != nil {
			done <- nil
			return
		}
		defer conn.Close()
		data, _ := io.ReadAll(conn)
		done <- data
	}()

	deadline := time.After(20 * time.Second)
	for {
		blob, err := front.NextIntroduction(h)
		if err != nil {
			t.Fatal(err)
		}
		if blob != nil {
			if replica.ActiveTransfers() != 0 {
				t.Fatal("replica busy before responding")
			}
			err := replica.RespondAtRendezvous(ident, blob, func(c net.Conn) {
				defer c.Close()
				c.Write(content)
			})
			if err != nil {
				t.Fatalf("RespondAtRendezvous: %v", err)
			}
			if replica.ActiveTransfers() != 1 {
				t.Fatalf("active = %d right after respond, want 1", replica.ActiveTransfers())
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("introduction never arrived")
		case <-time.After(5 * time.Millisecond):
		}
	}

	select {
	case data := <-done:
		if !bytes.Equal(data, content) {
			t.Fatalf("client got %d bytes, want %d", len(data), len(content))
		}
	case <-time.After(20 * time.Second):
		t.Fatal("client download never completed")
	}

	// After the client closes, the transfer drains from the load report.
	deadline = time.After(10 * time.Second)
	for replica.ActiveTransfers() != 0 {
		select {
		case <-deadline:
			t.Fatalf("active transfers stuck at %d", replica.ActiveTransfers())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestRespondRejectsGarbageIntro(t *testing.T) {
	tor, _ := fixture(t)
	fw := New(tor)
	sess := fw.NewSession("fn", allCalls())
	defer sess.Close()
	ident, _ := hs.NewIdentity()
	if err := sess.RespondAtRendezvous(ident, []byte("not json"), func(net.Conn) {}); err == nil {
		t.Fatal("garbage introduction accepted")
	}
}

func TestSendDropRequiresOwnedCircuit(t *testing.T) {
	tor, _ := fixture(t)
	fw := New(tor)
	sess := fw.NewSession("fn", allCalls())
	defer sess.Close()
	if err := sess.SendDrop(123, []byte("junk")); !errors.Is(err, ErrDenied) {
		t.Fatalf("drop on unknown circuit: %v", err)
	}
	circ, err := sess.CreateCircuit("relay1", relay.ORPort)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SendDrop(circ, []byte("junk")); err != nil {
		t.Fatalf("drop on owned circuit: %v", err)
	}
}
