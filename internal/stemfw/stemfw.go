// Package stemfw implements the Stem firewall of §5.3: the policy-
// enforcement layer through which Bento functions access the co-resident
// Tor instance. The firewall tracks which circuits and hidden services
// each function session owns, mediates every control invocation against
// the session's allowed-call set, and tears down a session's Tor state
// when the function terminates.
package stemfw

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/bento-nfv/bento/internal/cell"
	"github.com/bento-nfv/bento/internal/hs"
	"github.com/bento-nfv/bento/internal/torclient"
)

// ErrDenied is returned when the firewall blocks an invocation.
var ErrDenied = errors.New("stemfw: denied by firewall")

// DefaultMaxCircuits bounds circuits per function session.
const DefaultMaxCircuits = 8

// Firewall mediates access to one relay's Tor instance.
type Firewall struct {
	tor *torclient.Client

	mu       sync.Mutex
	sessions map[string]*Session
}

// New creates a firewall fronting the given Tor client.
func New(tor *torclient.Client) *Firewall {
	return &Firewall{tor: tor, sessions: make(map[string]*Session)}
}

// Session is one function's window onto the Tor instance.
type Session struct {
	fw      *Firewall
	id      string
	allowed map[string]bool
	maxCirc int

	mu        sync.Mutex
	nextID    int
	circuits  map[int]*torclient.Circuit
	streams   map[int]net.Conn
	services  map[int]*hs.Service
	introQs   map[int]chan []byte
	rendCircs []*torclient.Circuit
	active    int // in-flight rendezvous transfers
	closed    bool
}

// NewSession registers a session for a function (keyed by container ID)
// with the given allowed stem.* calls.
func (fw *Firewall) NewSession(id string, allowedCalls []string) *Session {
	s := &Session{
		fw:       fw,
		id:       id,
		allowed:  make(map[string]bool, len(allowedCalls)),
		maxCirc:  DefaultMaxCircuits,
		circuits: make(map[int]*torclient.Circuit),
		streams:  make(map[int]net.Conn),
		services: make(map[int]*hs.Service),
		introQs:  make(map[int]chan []byte),
	}
	for _, c := range allowedCalls {
		s.allowed[c] = true
	}
	fw.mu.Lock()
	fw.sessions[id] = s
	fw.mu.Unlock()
	return s
}

func (s *Session) check(call string) error {
	if !s.allowed[call] {
		return fmt.Errorf("%w: %s", ErrDenied, call)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: session closed", ErrDenied)
	}
	return nil
}

// CreateCircuit builds a general-purpose 3-hop circuit and returns its
// handle. The firewall caps circuits per session.
func (s *Session) CreateCircuit(destHost string, destPort int) (int, error) {
	if err := s.check("stem.create_circuit"); err != nil {
		return 0, err
	}
	s.mu.Lock()
	if len(s.circuits) >= s.maxCirc {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: circuit limit %d reached", ErrDenied, s.maxCirc)
	}
	s.mu.Unlock()

	path, err := s.fw.tor.PickPath(destHost, destPort)
	if err != nil {
		return 0, err
	}
	circ, err := s.fw.tor.BuildCircuit(path)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		circ.Close()
		return 0, fmt.Errorf("%w: session closed", ErrDenied)
	}
	s.nextID++
	s.circuits[s.nextID] = circ
	return s.nextID, nil
}

// OpenStream opens a stream on a session-owned circuit. Functions cannot
// reference circuits they did not create — the firewall's per-session
// handle table is the isolation boundary.
func (s *Session) OpenStream(circHandle int, target string) (int, error) {
	if err := s.check("stem.create_circuit"); err != nil {
		return 0, err
	}
	s.mu.Lock()
	circ := s.circuits[circHandle]
	s.mu.Unlock()
	if circ == nil {
		return 0, fmt.Errorf("%w: unknown circuit handle %d", ErrDenied, circHandle)
	}
	conn, err := circ.OpenStream(target)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.streams[s.nextID] = conn
	return s.nextID, nil
}

// Stream returns a session-owned stream.
func (s *Session) Stream(handle int) (net.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	conn := s.streams[handle]
	if conn == nil {
		return nil, fmt.Errorf("%w: unknown stream handle %d", ErrDenied, handle)
	}
	return conn, nil
}

// CloseStream closes a session-owned stream.
func (s *Session) CloseStream(handle int) error {
	s.mu.Lock()
	conn := s.streams[handle]
	delete(s.streams, handle)
	s.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("%w: unknown stream handle %d", ErrDenied, handle)
	}
	return conn.Close()
}

// CloseCircuit tears down a session-owned circuit.
func (s *Session) CloseCircuit(handle int) error {
	if err := s.check("stem.close_circuit"); err != nil {
		return err
	}
	s.mu.Lock()
	circ := s.circuits[handle]
	delete(s.circuits, handle)
	s.mu.Unlock()
	if circ == nil {
		return fmt.Errorf("%w: unknown circuit handle %d", ErrDenied, handle)
	}
	return circ.Close()
}

// SendDrop emits a padding cell on a session-owned circuit (the primitive
// behind the Cover function).
func (s *Session) SendDrop(circHandle int, junk []byte) error {
	if err := s.check("stem.create_circuit"); err != nil {
		return err
	}
	s.mu.Lock()
	circ := s.circuits[circHandle]
	s.mu.Unlock()
	if circ == nil {
		return fmt.Errorf("%w: unknown circuit handle %d", ErrDenied, circHandle)
	}
	return circ.SendDrop(junk)
}

// LaunchHiddenService starts a hidden service whose introductions are
// queued for the function to consume (the LoadBalancer front pattern).
// When handler is non-nil introductions are instead served locally.
// In the paper's design this spawns a dedicated Onion Proxy inside the
// container (§5.4); the firewall models that by giving the service its
// own identity while sharing the host's overlay connectivity.
func (s *Session) LaunchHiddenService(ident *hs.Identity, handler func(net.Conn)) (int, error) {
	if err := s.check("stem.launch_hs"); err != nil {
		return 0, err
	}
	cfg := hs.ServiceConfig{Handler: handler}
	var queue chan []byte
	if handler == nil {
		queue = make(chan []byte, 64)
		cfg.OnIntroduce = func(intro *cell.IntroducePlaintext) {
			blob, err := cell.EncodeControl(intro)
			if err != nil {
				return
			}
			select {
			case queue <- blob:
			default: // queue full: drop the introduction (client retries)
			}
		}
	}
	svc, err := hs.Launch(s.fw.tor, ident, cfg)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		svc.Close()
		return 0, fmt.Errorf("%w: session closed", ErrDenied)
	}
	s.nextID++
	s.services[s.nextID] = svc
	if queue != nil {
		s.introQs[s.nextID] = queue
	}
	return s.nextID, nil
}

// NextIntroduction dequeues a pending introduction blob for a queued
// hidden service, or returns nil when none arrives within the timeout
// governed by the caller's polling. Non-blocking.
func (s *Session) NextIntroduction(hsHandle int) ([]byte, error) {
	if err := s.check("stem.launch_hs"); err != nil {
		return nil, err
	}
	s.mu.Lock()
	q := s.introQs[hsHandle]
	s.mu.Unlock()
	if q == nil {
		return nil, fmt.Errorf("%w: unknown hidden service handle %d", ErrDenied, hsHandle)
	}
	select {
	case blob := <-q:
		return blob, nil
	default:
		return nil, nil
	}
}

// RespondAtRendezvous completes a rendezvous on behalf of a service
// identity, serving each connection with handler. Used by replicas. The
// handler runs asynchronously; ActiveTransfers reports in-flight
// connections so balancers can poll replica load (§8.2's "periodic
// messages from replicas describing their load").
func (s *Session) RespondAtRendezvous(ident *hs.Identity, introBlob []byte, handler func(net.Conn)) error {
	if err := s.check("stem.launch_hs"); err != nil {
		return err
	}
	var intro cell.IntroducePlaintext
	if err := cell.DecodeControl(introBlob, &intro); err != nil {
		return fmt.Errorf("stemfw: bad introduction blob: %w", err)
	}
	circ, err := hs.RespondAtRendezvous(s.fw.tor, ident, &intro, handler)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		circ.Close()
		return fmt.Errorf("%w: session closed", ErrDenied)
	}
	s.rendCircs = append(s.rendCircs, circ)
	// A transfer is "active" from the moment we commit to the rendezvous
	// until the client's circuit tears down — so load reports never lag
	// behind assignments.
	s.active++
	s.mu.Unlock()
	go func() {
		<-circ.Done()
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}()
	return nil
}

// ActiveTransfers reports in-flight rendezvous connections.
func (s *Session) ActiveTransfers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Tor exposes the underlying Tor client for host-side helpers that have
// already passed policy checks (e.g. the bento.spawn composition API).
func (s *Session) Tor() *torclient.Client { return s.fw.tor }

// Close tears down everything the session owns. Called when the function
// terminates or is shut down — functions fate-share with their circuits.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	circs := make([]*torclient.Circuit, 0, len(s.circuits)+len(s.rendCircs))
	for _, c := range s.circuits {
		circs = append(circs, c)
	}
	circs = append(circs, s.rendCircs...)
	svcs := make([]*hs.Service, 0, len(s.services))
	for _, svc := range s.services {
		svcs = append(svcs, svc)
	}
	streams := make([]net.Conn, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.circuits = map[int]*torclient.Circuit{}
	s.services = map[int]*hs.Service{}
	s.streams = map[int]net.Conn{}
	s.mu.Unlock()

	for _, st := range streams {
		st.Close()
	}
	for _, c := range circs {
		c.Close()
	}
	for _, svc := range svcs {
		svc.Close()
	}
	s.fw.mu.Lock()
	delete(s.fw.sessions, s.id)
	s.fw.mu.Unlock()
}
