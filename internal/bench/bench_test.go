package bench

import (
	"testing"
	"time"
)

// The experiment tests run scaled-down configurations and assert the
// paper's qualitative shapes; cmd/benchharness runs the full parameters.

func TestTable1Shape(t *testing.T) {
	res, err := RunTable1(Table1Config{
		Sites:        10,
		Visits:       4,
		TrainPerSite: 2,
		Paddings:     []int{0, 1 << 20},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	none, pad0, pad1 := res.Rows[0].Accuracy, res.Rows[1].Accuracy, res.Rows[2].Accuracy
	// The paper's ordering: unmodified ≫ Browser 0MB ≫ Browser 1MB.
	if !(none > pad0 && pad0 > pad1) {
		t.Fatalf("defense ordering violated: none=%.2f 0MB=%.2f 1MB=%.2f", none, pad0, pad1)
	}
	if none < 0.9 {
		t.Fatalf("unmodified-Tor accuracy %.2f, want ≥0.9", none)
	}
	if pad1 > 0.45 {
		t.Fatalf("1MB-padding accuracy %.2f, want near guess rate", pad1)
	}
}

func TestTable2Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing shapes are distorted by the race detector's slowdown")
	}
	cfg := DefaultTable2Config()
	cfg.Trials = 1
	res, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if len(res.Rows) != 5 {
		t.Fatalf("got %d domains", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Padding cost is monotone: 7MB > 1MB > standard-comparable 0MB.
		if !(row.Browser[7<<20] > row.Browser[1<<20] && row.Browser[1<<20] > row.Browser[0]) {
			t.Errorf("%s: padding cost not monotone: %v", row.Domain, row.Browser)
		}
		// Browser 0MB is comparable to standard Tor (within 2x).
		if row.Browser[0] > 2*row.StandardTor {
			t.Errorf("%s: Browser 0MB %.1fs vs standard %.1fs — not comparable",
				row.Domain, row.Browser[0], row.StandardTor)
		}
		// 7MB padding dominates everything (the paper's 80-90s row).
		if row.Browser[7<<20] < 5*row.StandardTor {
			t.Errorf("%s: 7MB padding suspiciously cheap", row.Domain)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing shapes are distorted by the race detector's slowdown")
	}
	// The default (paper-shaped) configuration: below it, replica spawn
	// time dominates transfer time and the balancer cannot pay for
	// itself — itself a finding the padding of Figure 5's parameters
	// reflects.
	cfg := DefaultFigure5Config()
	cfg.Duration = 3 * time.Minute
	res, err := RunFigure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if res.Replicas < 2 {
		t.Fatalf("balancer spun up %d replicas, want ≥2", res.Replicas)
	}
	mean := func(runs []*ClientRun) float64 {
		var total float64
		n := 0
		for _, c := range runs {
			if c.Err == "" {
				total += c.MeanSpeedKBs()
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return total / float64(n)
	}
	for _, c := range append(append([]*ClientRun{}, res.WithoutLB...), res.WithLB...) {
		if c.Err != "" {
			t.Fatalf("client %d failed: %s", c.ID, c.Err)
		}
	}
	without, with := mean(res.WithoutLB), mean(res.WithLB)
	if with <= without {
		t.Fatalf("LoadBalancer did not help: %.1f KB/s with vs %.1f without", with, without)
	}
}

func TestScalabilityShape(t *testing.T) {
	res, err := RunScalability(DefaultScalabilityConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if res.MeasuredCapacity < 2 {
		t.Fatalf("measured capacity %d, want ≥2", res.MeasuredCapacity)
	}
	if res.MeasuredCapacity != res.PredictedCapacity {
		t.Fatalf("predicted %d != measured %d", res.PredictedCapacity, res.MeasuredCapacity)
	}
	if res.BrowserLiveBytes <= 0 {
		t.Fatal("no Browser memory measured")
	}
}

func TestShardAblationShape(t *testing.T) {
	res, err := RunShardAblation(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	rates := map[[2]int]map[float64]float64{}
	for _, p := range res.Points {
		k := [2]int{p.K, p.N}
		if rates[k] == nil {
			rates[k] = map[float64]float64{}
		}
		rates[k][p.FailureProb] = p.SuccessRate
	}
	// Replication (1-of-3) tolerates failures well; 5-of-6 collapses.
	if rates[[2]int{1, 3}][0.1] < 0.95 {
		t.Fatalf("1-of-3 at p=0.1: %.2f", rates[[2]int{1, 3}][0.1])
	}
	if rates[[2]int{5, 6}][0.5] > 0.3 {
		t.Fatalf("5-of-6 at p=0.5: %.2f", rates[[2]int{5, 6}][0.5])
	}
	// Success degrades monotonically with failure probability.
	for k, m := range rates {
		if !(m[0.1] >= m[0.3] && m[0.3] >= m[0.5]) {
			t.Errorf("%v: success not monotone in failure prob: %v", k, m)
		}
	}
}

func TestFairnessAblationShape(t *testing.T) {
	res, err := RunFairnessAblation([]int{2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	for _, p := range res.Points {
		if p.JainIndex < 0.8 {
			t.Fatalf("Jain index %.3f for %d clients, want ≥0.8", p.JainIndex, p.Clients)
		}
	}
}

func TestConclaveAblationShape(t *testing.T) {
	res, err := RunConclaveAblation(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	// §7.3: conclave overhead is nominal — well under Tor's own latency.
	if res.SGXInvokeS > 3*res.PlainInvokeS {
		t.Fatalf("conclave invoke overhead not nominal: %.3fs vs %.3fs",
			res.SGXInvokeS, res.PlainInvokeS)
	}
}

func TestPaddingAblationShape(t *testing.T) {
	res, err := RunPaddingAblation(8, 4, []int{0, 512 * 1024}, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if len(res.Points) != 2 {
		t.Fatalf("got %d points", len(res.Points))
	}
	if res.Points[1].Accuracy > res.Points[0].Accuracy {
		t.Fatalf("more padding increased accuracy: %+v", res.Points)
	}
	if res.Points[1].Downloads < res.Points[0].Downloads {
		t.Fatalf("more padding decreased download time: %+v", res.Points)
	}
}

func TestTable1ConfigValidation(t *testing.T) {
	bad := []Table1Config{
		{Sites: 1, Visits: 4, TrainPerSite: 2},
		{Sites: 5, Visits: 1, TrainPerSite: 2},
		{Sites: 5, Visits: 4, TrainPerSite: 4},
	}
	for _, cfg := range bad {
		if _, err := RunTable1(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestMultipathAblationShape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing shapes are distorted by the race detector's slowdown")
	}
	res, err := RunMultipathAblation([]int{1, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if len(res.Points) != 2 {
		t.Fatalf("got %d points", len(res.Points))
	}
	// Three paths through capped relays beat one.
	if res.Points[1].Speedup < 1.2 {
		t.Fatalf("multipath speedup only %.2fx", res.Points[1].Speedup)
	}
}

func TestCoverAblationShape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing shapes are distorted by the race detector's slowdown")
	}
	res, err := RunCoverAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	// Cover traffic fills the link (high duty cycle) and is more regular
	// than bursty browsing.
	if res.CoverDuty <= res.BrowseDuty {
		t.Fatalf("cover duty %.2f not above browse duty %.2f", res.CoverDuty, res.BrowseDuty)
	}
	if res.CoverCoV >= res.BrowseCoV {
		t.Fatalf("cover CoV %.2f not below browse CoV %.2f", res.CoverCoV, res.BrowseCoV)
	}
}
