//go:build race

package bench

// raceEnabled reports whether the race detector is active; timing-shape
// assertions relax under its 10-20x slowdown (CPU time bleeds into
// virtual-time measurements).
const raceEnabled = true
