package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/testbed"
	"github.com/bento-nfv/bento/internal/webfarm"
)

// Table2Config scales the page-download-time experiment (Table 2).
type Table2Config struct {
	// Paddings are the Browser padding targets (paper: 0, 1 MB, 7 MB).
	Paddings []int
	// ClockScale for this experiment. Timing experiments need a gentler
	// scale than throughput ones so CPU time does not pollute virtual
	// durations.
	ClockScale float64
	// RelayEgress caps relay uplinks, standing in for Tor's bandwidth
	// scarcity (bytes per virtual second).
	RelayEgress float64
	// LinkDelay is relay-to-relay/one-way client propagation delay.
	LinkDelay time.Duration
	// WebEgress is each site host's uplink in bytes per virtual second.
	WebEgress float64
	// WebDelay is the one-way delay between exits and web hosts,
	// modeling distant servers (the paper's RTT argument for why
	// Browser can beat standard Tor on small pages).
	WebDelay time.Duration
	// Trials per (domain, condition); the median is reported.
	Trials int
	Seed   int64
}

// DefaultTable2Config mirrors the paper's five domains and paddings.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		Paddings:    []int{0, 1 << 20, 7 << 20},
		ClockScale:  0.05,
		RelayEgress: 150 * 1024,
		LinkDelay:   15 * time.Millisecond,
		WebEgress:   600 * 1024,
		WebDelay:    100 * time.Millisecond,
		Trials:      3,
		Seed:        2,
	}
}

// table2Sites returns stand-ins for the paper's five domains, with page
// weights and resource structures chosen to span small/simple through
// large/complex.
func table2Sites() []*webfarm.Site {
	sites := []*webfarm.Site{
		webfarm.NamedSite("indiatoday.in", 60_000, []int{150_000, 120_000, 90_000, 80_000, 60_000, 50_000, 40_000}),
		webfarm.NamedSite("yahoo.com", 90_000, []int{200_000, 150_000, 130_000, 110_000, 90_000, 70_000}),
		webfarm.NamedSite("netflix.com", 120_000, []int{350_000, 250_000, 180_000, 120_000}),
		webfarm.NamedSite("ebay.com", 70_000, []int{160_000, 140_000, 100_000, 90_000, 60_000}),
		webfarm.NamedSite("aliexpress.com", 40_000, []int{90_000, 70_000, 60_000, 50_000, 40_000, 30_000, 25_000, 20_000}),
	}
	for _, s := range sites {
		s.Compressible = true // real pages compress; Browser ships them compressed
	}
	return sites
}

// Table2Row is one domain's download times in virtual seconds.
type Table2Row struct {
	Domain      string
	StandardTor float64
	Browser     map[int]float64 // padding -> seconds
}

// Table2Result is the regenerated Table 2.
type Table2Result struct {
	Paddings []int
	Rows     []Table2Row
}

// String renders the table in the paper's shape, bolding (with a *)
// cells where Browser beats standard Tor.
func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2: Download times (virtual seconds); * = Browser faster than standard Tor\n")
	fmt.Fprintf(&b, "%-16s %12s", "Domain", "StandardTor")
	for _, p := range r.Paddings {
		fmt.Fprintf(&b, " %11s", "Browser "+humanBytes(p))
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %12.2f", row.Domain, row.StandardTor)
		for _, p := range r.Paddings {
			mark := " "
			if row.Browser[p] < row.StandardTor {
				mark = "*"
			}
			fmt.Fprintf(&b, " %10.2f%s", row.Browser[p], mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RunTable2 regenerates Table 2: full page download time for each domain
// under standard Tor and under Browser at each padding level.
func RunTable2(cfg Table2Config) (*Table2Result, error) {
	if cfg.Trials < 1 {
		cfg.Trials = 1
	}
	if cfg.ClockScale <= 0 {
		cfg.ClockScale = 0.05
	}
	sites := table2Sites()
	w, err := testbed.New(testbed.Config{
		Relays:      6,
		BentoNodes:  1,
		Sites:       sites,
		ClockScale:  cfg.ClockScale,
		LinkDelay:   cfg.LinkDelay,
		RelayEgress: cfg.RelayEgress,
		WebEgress:   cfg.WebEgress,
	})
	if err != nil {
		return nil, err
	}
	defer w.Close()

	// Web hosts are "far": exits reach them over a long leg, clients
	// would reach them over an even longer one. Relay-to-relay stays at
	// the default short delay.
	for _, site := range sites {
		for _, r := range w.Consensus.Relays {
			w.Net.SetDelay(site.Domain, hostOf(r.Address), cfg.WebDelay)
		}
	}

	cli := w.NewBentoClient("timer", cfg.Seed)
	clock := w.Clock()
	result := &Table2Result{Paddings: cfg.Paddings}

	for _, site := range sites {
		row := Table2Row{Domain: site.Domain, Browser: make(map[int]float64)}

		row.StandardTor, err = medianOf(cfg.Trials, func() (float64, error) {
			start := clock.Now()
			if err := visitDirect(cli, site.Domain); err != nil {
				return 0, err
			}
			return (clock.Now() - start).Seconds(), nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench: standard tor %s: %w", site.Domain, err)
		}

		for _, padding := range cfg.Paddings {
			p := padding
			row.Browser[p], err = medianOf(cfg.Trials, func() (float64, error) {
				start := clock.Now()
				if _, err := functions.Browse(cli, w.BentoNode(0), site.Domain, p); err != nil {
					return 0, err
				}
				return (clock.Now() - start).Seconds(), nil
			})
			if err != nil {
				return nil, fmt.Errorf("bench: browser %s pad %d: %w", site.Domain, p, err)
			}
		}
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

func medianOf(trials int, f func() (float64, error)) (float64, error) {
	vals := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		v, err := f()
		if err != nil {
			return 0, err
		}
		vals = append(vals, v)
	}
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2], nil
}

func hostOf(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i]
		}
	}
	return addr
}
