package bench

import (
	"testing"
	"time"
)

// TestChaosDegradation is the acceptance check for the self-healing
// stack: with a fixed seed, the faulted run (5% loss, a relay crash, a
// Bento node outage, a killed replica) must complete the workload with
// zero application-visible errors while retaining at least half the
// fault-free throughput.
func TestChaosDegradation(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Replicas = 2
	cfg.Clients = 4
	cfg.Ops = 16
	cfg.FileSize = 64 << 10
	cfg.NodeOutage = 1 * time.Second
	// A larger scale slows the run in wall terms but keeps scheduling
	// jitter small relative to virtual time, steadying the measurement.
	cfg.ClockScale = 0.05

	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)

	if len(res.Baseline.Errors) != 0 {
		t.Errorf("fault-free run had %d errors: %v", len(res.Baseline.Errors), res.Baseline.Errors)
	}
	if len(res.Faulted.Errors) != 0 {
		t.Errorf("faulted run had %d application-visible errors: %v", len(res.Faulted.Errors), res.Faulted.Errors)
	}
	wantOps := cfg.Clients * cfg.Ops
	if res.Faulted.Ops != wantOps {
		t.Errorf("faulted run completed %d/%d ops", res.Faulted.Ops, wantOps)
	}
	if res.Faulted.Restarts < 1 {
		t.Errorf("killed replica was never revived (restarts = %d)", res.Faulted.Restarts)
	}
	if got := res.Retained(); got < 0.5 {
		t.Errorf("throughput retained under faults = %.1f%%, want >= 50%%", got*100)
	}
}
