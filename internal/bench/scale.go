package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bento-nfv/bento/internal/cell"
	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/otr"
	"github.com/bento-nfv/bento/internal/relay"
	"github.com/bento-nfv/bento/internal/simnet"
)

// ScaleConfig sizes the six-figure-host emulation benchmark. The run
// builds a Network on the discrete-event clock, registers Clients
// lightweight client hosts alongside a fleet of real relays serving
// the event-native light ingress (Config.LightIngress), and churns
// every client through a genuine telescoped 3-hop circuit build —
// CREATE plus two EXTENDs with the real onion handshake at every hop —
// followed by a cover-traffic pump of DROP cells that traverse all
// three hops through the relays' forward datapath. A fraction of
// clients additionally performs a hidden-service-side control op
// (ESTABLISH_RENDEZVOUS at the exit hop) so the relays' HS tables see
// load too.
//
// Clients are data, not goroutines: a bounded pool of driver
// goroutines walks them through their state sequence. Relays own zero
// per-link goroutines on this path — every relay-side cell is a
// dispatcher callback — so the event core's settle telemetry
// (simnet.sched_*) isolates the scheduler's own cost.
type ScaleConfig struct {
	Clients        int     // simulated client hosts (default 100_000)
	Relays         int     // real relay fleet size (3-hop paths stripe across it)
	Drivers        int     // concurrent drivers = max live circuits
	CellsPerClient int     // DROP cells pumped per built circuit
	HSFrac         float64 // fraction of clients doing an HS control op
	Seed           int64
	Quiet          bool
}

// DefaultScaleConfig is the acceptance-scale run: 100k clients.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{
		Clients:        100_000,
		Relays:         6,
		Drivers:        192,
		CellsPerClient: 16,
		HSFrac:         0.05,
		Seed:           5,
	}
}

// ScaleResult is the machine-readable outcome of the scale run.
type ScaleResult struct {
	Clients        int
	Relays         int
	Drivers        int
	CellsPerClient int

	CircuitsBuilt int64
	BuildFailures int64
	HSOps         int64
	CellsTotal    int64 // every cell on the wire (client links + relay forwards)

	WallSeconds    float64
	VirtualSeconds float64
	CellsPerSec    float64 // wall-clock emulator throughput

	// Dispatcher telemetry: how the event core itself spent the run.
	EventsTotal   int64   // events fired by the dispatcher
	EventsPerSec  float64 // wall-clock dispatch rate
	SettleWallPct float64 // share of wall time inside quiescence settles
	Settles       int64
	SettlesElided int64 // batches that skipped the settle entirely

	BuildP50Ms float64 // virtual circuit-build latency percentiles
	BuildP99Ms float64

	Hosts        int
	BytesPerHost float64 // steady-state heap per simulated host
	PeakHeapMB   float64
}

// WriteJSONFile records the result machine-readably so the scale
// trajectory across PRs can be tracked.
func (r *ScaleResult) WriteJSONFile(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(path, blob, 0o644)
}

// String renders the run summary.
func (r *ScaleResult) String() string {
	var b strings.Builder
	b.WriteString("Scale: event-core emulation capacity\n")
	fmt.Fprintf(&b, "Hosts:                  %d (%d clients, %d relays)\n", r.Hosts, r.Clients, r.Relays)
	fmt.Fprintf(&b, "Circuits built:         %d 3-hop (%d failures)\n", r.CircuitsBuilt, r.BuildFailures)
	fmt.Fprintf(&b, "HS control ops:         %d\n", r.HSOps)
	fmt.Fprintf(&b, "Cells on the wire:      %d\n", r.CellsTotal)
	fmt.Fprintf(&b, "Emulator throughput:    %.0f cells/s (wall)\n", r.CellsPerSec)
	fmt.Fprintf(&b, "Dispatcher:             %d events, %.0f events/s (wall)\n", r.EventsTotal, r.EventsPerSec)
	fmt.Fprintf(&b, "Settle share of wall:   %.1f%% (%d settles, %d elided)\n", r.SettleWallPct, r.Settles, r.SettlesElided)
	fmt.Fprintf(&b, "Circuit build latency:  p50 %.1f ms, p99 %.1f ms (virtual)\n", r.BuildP50Ms, r.BuildP99Ms)
	fmt.Fprintf(&b, "Virtual time simulated: %.1f s in %.1f s wall\n", r.VirtualSeconds, r.WallSeconds)
	fmt.Fprintf(&b, "Memory per host:        %.0f bytes (peak heap %.1f MB)\n", r.BytesPerHost, r.PeakHeapMB)
	return b.String()
}

// scaleClient is one lightweight client's driver-side state. It owns no
// goroutine; a driver walks it through dial → build → pump → close.
// Kept to 8 bytes: at 1M clients this array is itself part of the
// measured per-host footprint.
type scaleClient struct {
	latencyMs int32 // virtual build latency, ms (0 = not built)
	built     bool
}

// clientIndex parses the i out of a "c%06d" client host name without
// allocating; it is on the per-chunk delay lookup path.
func clientIndex(name string) (int, bool) {
	if len(name) < 2 || name[0] != 'c' {
		return 0, false
	}
	i := 0
	for k := 1; k < len(name); k++ {
		d := name[k] - '0'
		if d > 9 {
			return 0, false
		}
		i = i*10 + int(d)
	}
	return i, true
}

func heapAfterGC() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// RunScale executes the scale benchmark on the event-driven clock.
func RunScale(cfg ScaleConfig) (*ScaleResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 100_000
	}
	if cfg.Relays < 3 {
		cfg.Relays = 6
	}
	if cfg.Drivers <= 0 {
		cfg.Drivers = 192
	}
	if cfg.Drivers > cfg.Clients {
		cfg.Drivers = cfg.Clients
	}
	if cfg.CellsPerClient < 0 {
		cfg.CellsPerClient = 0
	}

	clock := simnet.NewEventClock()
	defer clock.Stop()
	n := simnet.NewNetwork(clock, 10*time.Millisecond)
	reg := obs.NewRegistry()
	n.SetObs(reg)

	relays := make([]*relay.Relay, cfg.Relays)
	descs := make([]*dirauth.Descriptor, cfg.Relays)
	for i := range relays {
		// 12.5 MB/s uplink (~100 Mbit): backward cells queue under load,
		// which is what spreads the build-latency distribution.
		h := n.AddHost(fmt.Sprintf("relay%d", i), 12.5*(1<<20))
		r, err := relay.New(h, relay.Config{
			Nickname:     fmt.Sprintf("relay%d", i),
			Flags:        []string{dirauth.FlagGuard},
			LightIngress: true,
			Quiet:        true,
		})
		if err != nil {
			return nil, err
		}
		defer r.Close()
		relays[i] = r
		d, err := r.Descriptor()
		if err != nil {
			return nil, err
		}
		descs[i] = d
	}

	heapBefore := heapAfterGC()
	var peakHeap atomic.Uint64
	samplerDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-samplerDone:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peakHeap.Load() {
					peakHeap.Store(ms.HeapAlloc)
				}
			}
		}
	}()

	clients := make([]scaleClient, cfg.Clients)
	// Spread client↔relay propagation delays 5–50ms so builds don't all
	// tie. Computed from the client index instead of a per-pair SetDelay
	// entry: the delay map would cost ~50 B per host at this scale.
	n.SetDelayFunc(func(a, b string) (time.Duration, bool) {
		i, ok := clientIndex(a)
		if !ok {
			if i, ok = clientIndex(b); !ok {
				return 0, false
			}
		}
		return time.Duration(5+i%45) * time.Millisecond, true
	})
	hsEvery := 0
	if cfg.HSFrac > 0 {
		hsEvery = int(1 / cfg.HSFrac)
	}

	var built, failures, hsOps, cells atomic.Int64
	var next atomic.Int64
	start := time.Now()

	driver := func() {
		payload := make([]byte, 64) // cover-cell payload
		wire := make([]byte, cell.Size)
		for {
			i := int(next.Add(1)) - 1
			if i >= cfg.Clients {
				return
			}
			sc := &clients[i]
			// 3-hop path striped across the fleet.
			path := []*dirauth.Descriptor{
				descs[i%cfg.Relays],
				descs[(i+1)%cfg.Relays],
				descs[(i+2)%cfg.Relays],
			}
			host := n.AddHost(fmt.Sprintf("c%06d", i), 1<<20)

			t0 := clock.Now()
			conn, err := host.Dial(fmt.Sprintf("%s:%d", path[0].Nickname, relay.ORPort))
			if err != nil {
				failures.Add(1)
				continue
			}
			circID := uint32(i + 1)
			layers := make([]*otr.Layer, 0, 3)

			// sendSealed onion-encrypts a relay cell for the deepest hop
			// built so far and puts it on the wire — synchronously for the
			// build handshakes, through the event-native WriteAsync path
			// for the cover pump.
			sendSealed := func(hdr cell.RelayHeader, data []byte, async bool) error {
				c := &cell.Cell{CircID: circID, Cmd: cell.CmdRelay}
				if err := cell.PackRelay(c.Payload[:], hdr, data); err != nil {
					return err
				}
				otr.OnionEncrypt(layers, len(layers)-1, c.Payload[:], cell.DigestOffset)
				cells.Add(1)
				if async {
					c.EncodeInto(wire)
					return conn.(simnet.LightConn).WriteAsync(wire)
				}
				return cell.Write(conn, c)
			}
			// readSealed peels the backward onion and returns the relay
			// header and data recognized at any hop.
			readSealed := func() (cell.RelayHeader, []byte, error) {
				conn.SetReadDeadline(time.Now().Add(60 * time.Second))
				c, err := cell.Read(conn)
				if err != nil {
					return cell.RelayHeader{}, nil, err
				}
				if c.Cmd != cell.CmdRelay {
					return cell.RelayHeader{}, nil, fmt.Errorf("unexpected %v", c.Cmd)
				}
				cells.Add(1)
				if otr.OnionDecrypt(layers, c.Payload[:], cell.RecognizedOffset, cell.DigestOffset) < 0 {
					return cell.RelayHeader{}, nil, fmt.Errorf("unrecognized backward cell")
				}
				return cell.ParseRelay(c.Payload[:])
			}

			// Hop 1: CREATE/CREATED straight on the link.
			buildOK := func() bool {
				hs, msg, err := otr.NewClientHandshake([]byte(path[0].Fingerprint()), path[0].OnionKey)
				if err != nil {
					return false
				}
				create := &cell.Cell{CircID: circID, Cmd: cell.CmdCreate}
				copy(create.Payload[:], msg)
				if err := cell.Write(conn, create); err != nil {
					return false
				}
				conn.SetReadDeadline(time.Now().Add(60 * time.Second))
				created, err := cell.Read(conn)
				if err != nil || created.Cmd != cell.CmdCreated {
					return false
				}
				cells.Add(2) // CREATE + CREATED
				keys, err := hs.Finish(created.Payload[:otr.PublicKeyLen+otr.AuthLen])
				if err != nil {
					return false
				}
				layer, err := otr.NewLayer(keys)
				if err != nil {
					return false
				}
				layers = append(layers, layer)

				// Hops 2 and 3: telescoped EXTENDs through the light
				// forward path.
				for _, hop := range path[1:] {
					hs, msg, err := otr.NewClientHandshake([]byte(hop.Fingerprint()), hop.OnionKey)
					if err != nil {
						return false
					}
					ext, err := cell.EncodeControl(&cell.ExtendPayload{
						Addr:        hop.Address,
						Fingerprint: hop.Fingerprint(),
						Handshake:   msg,
					})
					if err != nil {
						return false
					}
					if sendSealed(cell.RelayHeader{Cmd: cell.RelayExtend}, ext, false) != nil {
						return false
					}
					hdr, data, err := readSealed()
					if err != nil || hdr.Cmd != cell.RelayExtended {
						return false
					}
					var extd cell.ExtendedPayload
					if cell.DecodeControl(data, &extd) != nil {
						return false
					}
					keys, err := hs.Finish(extd.Reply)
					if err != nil {
						return false
					}
					layer, err := otr.NewLayer(keys)
					if err != nil {
						return false
					}
					layers = append(layers, layer)
				}
				return true
			}()
			if !buildOK {
				failures.Add(1)
				conn.Close()
				continue
			}
			sc.latencyMs = int32((clock.Now() - t0) / time.Millisecond)
			sc.built = true
			built.Add(1)

			if hsEvery > 0 && i%hsEvery == 0 {
				// HS-side duty: park a rendezvous cookie on the exit relay
				// and wait for the acknowledgment through all three
				// backward layers.
				cookie := make([]byte, 16)
				binary.BigEndian.PutUint64(cookie, uint64(cfg.Seed))
				binary.BigEndian.PutUint64(cookie[8:], uint64(i))
				est, err := cell.EncodeControl(&cell.EstablishRendezvousPayload{Cookie: cookie})
				if err == nil && sendSealed(cell.RelayHeader{Cmd: cell.RelayEstablishRendezvous}, est, false) == nil {
					if hdr, _, err := readSealed(); err == nil && hdr.Cmd == cell.RelayRendezvousEstablished {
						hsOps.Add(1)
					}
				}
			}

			// Cover-traffic pump through the event-native path: WriteAsync
			// folds egress pacing into delivery timestamps, so the driver
			// never blocks here. Each DROP is sealed for the exit and
			// crosses both forwarding hops.
			for k := 0; k < cfg.CellsPerClient; k++ {
				if err := sendSealed(cell.RelayHeader{Cmd: cell.RelayDrop}, payload, true); err != nil {
					break
				}
			}
			conn.Close()
		}
	}

	var wg sync.WaitGroup
	for d := 0; d < cfg.Drivers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			driver()
		}()
	}
	wg.Wait()
	// Let in-flight deliveries and relay-side teardown drain.
	clock.Sleep(30 * time.Second)

	wall := time.Since(start).Seconds()
	virtual := clock.Now().Seconds()
	close(samplerDone)

	heapAfter := heapAfterGC()
	if h := peakHeap.Load(); heapAfter > h {
		peakHeap.Store(heapAfter)
	}

	res := &ScaleResult{
		Clients:        cfg.Clients,
		Relays:         cfg.Relays,
		Drivers:        cfg.Drivers,
		CellsPerClient: cfg.CellsPerClient,
		CircuitsBuilt:  built.Load(),
		BuildFailures:  failures.Load(),
		HSOps:          hsOps.Load(),
		WallSeconds:    wall,
		VirtualSeconds: virtual,
		Hosts:          cfg.Clients + cfg.Relays,
	}
	// Relay-side forwards are additional wire cells beyond what the
	// clients saw directly (the fleet shares one registry, so the
	// counter is already fleet-wide).
	res.CellsTotal = cells.Load() + reg.Counter("relay.cells_forwarded").Value() +
		reg.Counter("relay.cells_relayed_back").Value()
	if wall > 0 {
		res.CellsPerSec = float64(res.CellsTotal) / wall
	}

	// Dispatcher telemetry from the scheduler's own instrumentation.
	res.EventsTotal = reg.Histogram("simnet.sched_batch_events", nil).Sum()
	res.Settles = reg.Counter("simnet.sched_settles").Value()
	res.SettlesElided = reg.Counter("simnet.sched_settles_elided").Value()
	settleNs := reg.Histogram("simnet.sched_settle_ns", nil).Sum()
	if wall > 0 {
		res.EventsPerSec = float64(res.EventsTotal) / wall
		res.SettleWallPct = 100 * float64(settleNs) / (wall * 1e9)
	}

	var grew float64
	if heapAfter > heapBefore {
		grew = float64(heapAfter - heapBefore)
	}
	res.BytesPerHost = grew / float64(cfg.Clients)
	res.PeakHeapMB = float64(peakHeap.Load()) / (1 << 20)

	lats := make([]float64, 0, cfg.Clients)
	for i := range clients {
		if clients[i].built {
			lats = append(lats, float64(clients[i].latencyMs))
		}
	}
	sort.Float64s(lats)
	if len(lats) > 0 {
		res.BuildP50Ms = lats[len(lats)/2]
		res.BuildP99Ms = lats[(len(lats)*99)/100]
	}
	if res.CircuitsBuilt == 0 {
		return res, fmt.Errorf("scale: no circuit ever built (%d failures)", res.BuildFailures)
	}
	return res, nil
}
