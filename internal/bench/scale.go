package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bento-nfv/bento/internal/cell"
	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/otr"
	"github.com/bento-nfv/bento/internal/relay"
	"github.com/bento-nfv/bento/internal/simnet"
)

// ScaleConfig sizes the six-figure-host emulation benchmark. The run
// builds a Network on the discrete-event clock, registers Clients
// lightweight client hosts alongside a fleet of real relays, and churns
// every client through a genuine circuit build (CREATE/CREATED with the
// real onion handshake) followed by a cover-traffic pump of DROP cells
// sent through the event-native WriteAsync path. A fraction of clients
// additionally performs a hidden-service-side control op
// (ESTABLISH_RENDEZVOUS) so the relays' HS tables see load too.
//
// Clients are data, not goroutines: a bounded pool of driver goroutines
// walks them through their state sequence, so live relay links (the
// relay is deliberately goroutine-per-link) stay bounded by Drivers
// while the Network holds every host the whole time.
type ScaleConfig struct {
	Clients        int     // simulated client hosts (default 100_000)
	Relays         int     // real relay fleet size
	Drivers        int     // concurrent drivers = max live circuits
	CellsPerClient int     // DROP cells pumped per built circuit
	HSFrac         float64 // fraction of clients doing an HS control op
	Seed           int64
	Quiet          bool
}

// DefaultScaleConfig is the acceptance-scale run: 100k clients.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{
		Clients:        100_000,
		Relays:         4,
		Drivers:        192,
		CellsPerClient: 4,
		HSFrac:         0.05,
		Seed:           5,
	}
}

// ScaleResult is the machine-readable outcome of the scale run.
type ScaleResult struct {
	Clients        int
	Relays         int
	Drivers        int
	CellsPerClient int

	CircuitsBuilt int64
	BuildFailures int64
	HSOps         int64
	CellsTotal    int64 // every cell on the wire (forward + backward)

	WallSeconds    float64
	VirtualSeconds float64
	CellsPerSec    float64 // wall-clock emulator throughput

	BuildP50Ms float64 // virtual circuit-build latency percentiles
	BuildP99Ms float64

	Hosts        int
	BytesPerHost float64 // steady-state heap per simulated host
	PeakHeapMB   float64
}

// WriteJSONFile records the result machine-readably so the scale
// trajectory across PRs can be tracked.
func (r *ScaleResult) WriteJSONFile(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(path, blob, 0o644)
}

// String renders the run summary.
func (r *ScaleResult) String() string {
	var b strings.Builder
	b.WriteString("Scale: event-core emulation capacity\n")
	fmt.Fprintf(&b, "Hosts:                  %d (%d clients, %d relays)\n", r.Hosts, r.Clients, r.Relays)
	fmt.Fprintf(&b, "Circuits built:         %d (%d failures)\n", r.CircuitsBuilt, r.BuildFailures)
	fmt.Fprintf(&b, "HS control ops:         %d\n", r.HSOps)
	fmt.Fprintf(&b, "Cells on the wire:      %d\n", r.CellsTotal)
	fmt.Fprintf(&b, "Emulator throughput:    %.0f cells/s (wall)\n", r.CellsPerSec)
	fmt.Fprintf(&b, "Circuit build latency:  p50 %.1f ms, p99 %.1f ms (virtual)\n", r.BuildP50Ms, r.BuildP99Ms)
	fmt.Fprintf(&b, "Virtual time simulated: %.1f s in %.1f s wall\n", r.VirtualSeconds, r.WallSeconds)
	fmt.Fprintf(&b, "Memory per host:        %.0f bytes (peak heap %.1f MB)\n", r.BytesPerHost, r.PeakHeapMB)
	return b.String()
}

// scaleClient is one lightweight client's driver-side state. It owns no
// goroutine; a driver walks it through dial → CREATE → pump → close.
type scaleClient struct {
	id      int
	relay   int
	latency time.Duration
	built   bool
}

func heapAfterGC() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// RunScale executes the scale benchmark on the event-driven clock.
func RunScale(cfg ScaleConfig) (*ScaleResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 100_000
	}
	if cfg.Relays <= 0 {
		cfg.Relays = 4
	}
	if cfg.Drivers <= 0 {
		cfg.Drivers = 192
	}
	if cfg.Drivers > cfg.Clients {
		cfg.Drivers = cfg.Clients
	}
	if cfg.CellsPerClient < 0 {
		cfg.CellsPerClient = 0
	}

	clock := simnet.NewEventClock()
	defer clock.Stop()
	n := simnet.NewNetwork(clock, 10*time.Millisecond)

	relays := make([]*relay.Relay, cfg.Relays)
	descs := make([]*dirauth.Descriptor, cfg.Relays)
	for i := range relays {
		// 12.5 MB/s uplink (~100 Mbit): backward cells queue under load,
		// which is what spreads the build-latency distribution.
		h := n.AddHost(fmt.Sprintf("relay%d", i), 12.5*(1<<20))
		r, err := relay.New(h, relay.Config{
			Nickname: fmt.Sprintf("relay%d", i),
			Flags:    []string{dirauth.FlagGuard},
			Quiet:    true,
		})
		if err != nil {
			return nil, err
		}
		defer r.Close()
		relays[i] = r
		d, err := r.Descriptor()
		if err != nil {
			return nil, err
		}
		descs[i] = d
	}

	heapBefore := heapAfterGC()
	var peakHeap atomic.Uint64
	samplerDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-samplerDone:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peakHeap.Load() {
					peakHeap.Store(ms.HeapAlloc)
				}
			}
		}
	}()

	clients := make([]scaleClient, cfg.Clients)
	hsEvery := 0
	if cfg.HSFrac > 0 {
		hsEvery = int(1 / cfg.HSFrac)
	}

	var built, failures, hsOps, cells atomic.Int64
	var next atomic.Int64
	start := time.Now()

	driver := func() {
		payload := make([]byte, 64) // cover-cell payload
		wire := make([]byte, cell.Size)
		for {
			i := int(next.Add(1)) - 1
			if i >= cfg.Clients {
				return
			}
			sc := &clients[i]
			sc.id = i
			sc.relay = i % cfg.Relays
			rd := descs[sc.relay]
			host := n.AddHost(fmt.Sprintf("c%06d", i), 1<<20)
			// Spread propagation delays 5–50ms so builds don't all tie.
			n.SetDelay(host.Name(), rd.Nickname, time.Duration(5+i%45)*time.Millisecond)

			t0 := clock.Now()
			conn, err := host.Dial(fmt.Sprintf("%s:%d", rd.Nickname, relay.ORPort))
			if err != nil {
				failures.Add(1)
				continue
			}
			hs, msg, err := otr.NewClientHandshake([]byte(rd.Fingerprint()), rd.OnionKey)
			if err != nil {
				failures.Add(1)
				conn.Close()
				continue
			}
			circID := uint32(i + 1)
			create := &cell.Cell{CircID: circID, Cmd: cell.CmdCreate}
			copy(create.Payload[:], msg)
			if err := cell.Write(conn, create); err != nil {
				failures.Add(1)
				conn.Close()
				continue
			}
			conn.SetReadDeadline(time.Now().Add(60 * time.Second))
			created, err := cell.Read(conn)
			if err != nil || created.Cmd != cell.CmdCreated {
				failures.Add(1)
				conn.Close()
				continue
			}
			keys, err := hs.Finish(created.Payload[:otr.PublicKeyLen+otr.AuthLen])
			if err != nil {
				failures.Add(1)
				conn.Close()
				continue
			}
			layer, err := otr.NewLayer(keys)
			if err != nil {
				failures.Add(1)
				conn.Close()
				continue
			}
			sc.latency = clock.Now() - t0
			sc.built = true
			built.Add(1)
			cells.Add(2) // CREATE + CREATED

			sendRelay := func(hdr cell.RelayHeader, data []byte, async bool) error {
				c := &cell.Cell{CircID: circID, Cmd: cell.CmdRelay}
				if err := cell.PackRelay(c.Payload[:], hdr, data); err != nil {
					return err
				}
				layer.SealForward(c.Payload[:], cell.DigestOffset)
				layer.ApplyForward(c.Payload[:])
				cells.Add(1)
				if async {
					c.EncodeInto(wire)
					return conn.(simnet.LightConn).WriteAsync(wire)
				}
				return cell.Write(conn, c)
			}

			if hsEvery > 0 && i%hsEvery == 0 {
				// HS-side duty: park a rendezvous cookie on the relay and
				// wait for the acknowledgment.
				cookie := make([]byte, 16)
				binary.BigEndian.PutUint64(cookie, uint64(cfg.Seed))
				binary.BigEndian.PutUint64(cookie[8:], uint64(i))
				est, err := cell.EncodeControl(&cell.EstablishRendezvousPayload{Cookie: cookie})
				if err == nil && sendRelay(cell.RelayHeader{Cmd: cell.RelayEstablishRendezvous}, est, false) == nil {
					if ack, err := cell.Read(conn); err == nil && ack.Cmd == cell.CmdRelay {
						layer.ApplyBackward(ack.Payload[:])
						if cell.Recognized(ack.Payload[:]) && layer.VerifyBackward(ack.Payload[:], cell.DigestOffset) {
							if hdr, _, err := cell.ParseRelay(ack.Payload[:]); err == nil && hdr.Cmd == cell.RelayRendezvousEstablished {
								hsOps.Add(1)
								cells.Add(1)
							}
						}
					}
				}
			}

			// Cover-traffic pump through the event-native path: WriteAsync
			// folds egress pacing into delivery timestamps, so the driver
			// never blocks here.
			for k := 0; k < cfg.CellsPerClient; k++ {
				if err := sendRelay(cell.RelayHeader{Cmd: cell.RelayDrop}, payload, true); err != nil {
					break
				}
			}
			conn.Close()
		}
	}

	var wg sync.WaitGroup
	for d := 0; d < cfg.Drivers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			driver()
		}()
	}
	wg.Wait()
	// Let in-flight deliveries and relay-side teardown drain.
	clock.Sleep(30 * time.Second)

	wall := time.Since(start).Seconds()
	virtual := clock.Now().Seconds()
	close(samplerDone)

	heapAfter := heapAfterGC()
	if h := peakHeap.Load(); heapAfter > h {
		peakHeap.Store(heapAfter)
	}

	res := &ScaleResult{
		Clients:        cfg.Clients,
		Relays:         cfg.Relays,
		Drivers:        cfg.Drivers,
		CellsPerClient: cfg.CellsPerClient,
		CircuitsBuilt:  built.Load(),
		BuildFailures:  failures.Load(),
		HSOps:          hsOps.Load(),
		CellsTotal:     cells.Load(),
		WallSeconds:    wall,
		VirtualSeconds: virtual,
		Hosts:          cfg.Clients + cfg.Relays,
	}
	if wall > 0 {
		res.CellsPerSec = float64(res.CellsTotal) / wall
	}
	var grew float64
	if heapAfter > heapBefore {
		grew = float64(heapAfter - heapBefore)
	}
	res.BytesPerHost = grew / float64(cfg.Clients)
	res.PeakHeapMB = float64(peakHeap.Load()) / (1 << 20)

	lats := make([]float64, 0, cfg.Clients)
	for i := range clients {
		if clients[i].built {
			lats = append(lats, float64(clients[i].latency)/float64(time.Millisecond))
		}
	}
	sort.Float64s(lats)
	if len(lats) > 0 {
		res.BuildP50Ms = lats[len(lats)/2]
		res.BuildP99Ms = lats[(len(lats)*99)/100]
	}
	if res.CircuitsBuilt == 0 {
		return res, fmt.Errorf("scale: no circuit ever built (%d failures)", res.BuildFailures)
	}
	return res, nil
}
