package bench

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/bento"
	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/simnet"
	"github.com/bento-nfv/bento/internal/testbed"
)

// ChaosConfig describes the degradation experiment: the Figure-5-style
// replicated content workload, run once fault-free and once under
// injected faults, reporting how much throughput the self-healing stack
// (circuit rebuilds, session retries, the server watchdog) retains.
type ChaosConfig struct {
	// Replicas is the number of Bento nodes, each serving one replica
	// function holding a copy of the content.
	Replicas int
	// Clients download concurrently, assigned round-robin to replicas.
	Clients int
	// Ops is how many serve() calls each client performs.
	Ops int
	// FileSize is the content size returned per serve().
	FileSize int
	// ServeEgress caps each Bento node's uplink in bytes per virtual
	// second — the contended resource, as in Figure 5.
	ServeEgress float64
	// ArrivalGap staggers client starts.
	ArrivalGap time.Duration

	// LossProb is the per-chunk loss probability injected on every link
	// (the paper-style "5% loss" condition).
	LossProb float64
	// RetransDelay is the extra latency charged per lost chunk, modeling
	// a fast retransmit a few RTTs later.
	RetransDelay time.Duration
	// DialFailProb makes a fraction of connection attempts fail outright.
	DialFailProb float64
	// RelayCrashAt permanently crashes one non-Bento relay this far into
	// the measured run (0 disables).
	RelayCrashAt time.Duration
	// NodeOutageAt takes Bento node 0's host off the network this far
	// into the run, for NodeOutage of virtual time (0 disables).
	NodeOutageAt time.Duration
	NodeOutage   time.Duration
	// KillReplicaAt kills the last replica's interpreter mid-run, so the
	// server watchdog must revive it (0 disables).
	KillReplicaAt time.Duration

	ClockScale float64
	Seed       int64
	// Obs, when non-nil, attaches live telemetry to both conditions'
	// deployments, so the self-healing machinery's work shows up in
	// counters (circuit deaths, heal retries, watchdog restarts).
	Obs *obs.Registry
}

// DefaultChaosConfig is the quick configuration: three replicas, six
// clients, 5% loss and dial failure, one relay lost for good, one Bento
// node offline for 1.5 virtual seconds, and one replica killed.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Replicas:      3,
		Clients:       6,
		Ops:           12,
		FileSize:      96 << 10,
		ServeEgress:   400 * 1024,
		ArrivalGap:    100 * time.Millisecond,
		LossProb:      0.05,
		RetransDelay:  25 * time.Millisecond,
		DialFailProb:  0.05,
		RelayCrashAt:  1 * time.Second,
		NodeOutageAt:  2 * time.Second,
		NodeOutage:    1500 * time.Millisecond,
		KillReplicaAt: 3 * time.Second,
		ClockScale:    0.02,
		Seed:          7,
	}
}

// chaosReplicaSource is the replica function: setup() stores the content
// in the container filesystem (so it survives watchdog restarts), serve()
// streams it back.
const chaosReplicaSource = `
def setup(content):
    fs.write("content", content)
    return 1

def serve():
    api.send(fs.read("content"))
    return 1
`

// chaosManifest opts in to the watchdog: a killed replica comes back with
// its filesystem (and the content) intact.
func chaosManifest() *policy.Manifest {
	return &policy.Manifest{
		Name:         "chaos-replica",
		Image:        "python",
		Calls:        []string{"tor.send", "fs.read", "fs.write"},
		Memory:       8 << 20,
		Instructions: 5_000_000,
		Storage:      8 << 20,
		Restart:      policy.RestartOnFailure,
	}
}

// ChaosRunStats summarizes one condition of the experiment.
type ChaosRunStats struct {
	Bytes    int64         // content bytes delivered to clients
	Ops      int           // successful serve() calls
	Errors   []string      // application-visible failures (want: none)
	Duration time.Duration // virtual time, first client start to last finish
	Restarts int           // watchdog revivals across all replicas
}

// ThroughputKBs is the aggregate goodput over the run.
func (s *ChaosRunStats) ThroughputKBs() float64 {
	d := s.Duration.Seconds()
	if d <= 0 {
		return 0
	}
	return float64(s.Bytes) / 1024 / d
}

// ChaosResult holds both conditions.
type ChaosResult struct {
	Config   ChaosConfig
	Baseline *ChaosRunStats
	Faulted  *ChaosRunStats
}

// Retained is the fraction of fault-free throughput the faulted run kept.
func (r *ChaosResult) Retained() float64 {
	base := r.Baseline.ThroughputKBs()
	if base <= 0 {
		return 0
	}
	return r.Faulted.ThroughputKBs() / base
}

// String renders the two conditions side by side.
func (r *ChaosResult) String() string {
	var b strings.Builder
	cfg := r.Config
	fmt.Fprintf(&b, "Chaos degradation: %d clients x %d ops x %d KB across %d replicas\n",
		cfg.Clients, cfg.Ops, cfg.FileSize>>10, cfg.Replicas)
	b.WriteString("condition   ops-ok  MB     duration(s)  KB/s    errors  restarts\n")
	row := func(name string, s *ChaosRunStats) {
		fmt.Fprintf(&b, "%-10s  %6d  %5.1f  %11.1f  %6.1f  %6d  %8d\n",
			name, s.Ops, float64(s.Bytes)/(1<<20), s.Duration.Seconds(),
			s.ThroughputKBs(), len(s.Errors), s.Restarts)
	}
	row("fault-free", r.Baseline)
	row("faulted", r.Faulted)
	fmt.Fprintf(&b, "faults: %.0f%% chunk loss (+%s retrans), %.0f%% dial failure",
		cfg.LossProb*100, cfg.RetransDelay, cfg.DialFailProb*100)
	if cfg.RelayCrashAt > 0 {
		fmt.Fprintf(&b, ", relay crash at %s", cfg.RelayCrashAt)
	}
	if cfg.NodeOutageAt > 0 {
		fmt.Fprintf(&b, ", node 0 offline %s-%s", cfg.NodeOutageAt, cfg.NodeOutageAt+cfg.NodeOutage)
	}
	if cfg.KillReplicaAt > 0 {
		fmt.Fprintf(&b, ", replica killed at %s", cfg.KillReplicaAt)
	}
	b.WriteString("\n")
	for _, e := range r.Faulted.Errors {
		fmt.Fprintf(&b, "faulted-run error: %s\n", e)
	}
	fmt.Fprintf(&b, "throughput retained under faults: %.1f%%\n", r.Retained()*100)
	return b.String()
}

// RunChaos runs the workload fault-free and faulted and reports both.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Replicas < 1 || cfg.Clients < 1 || cfg.Ops < 1 || cfg.FileSize < 1 {
		return nil, fmt.Errorf("bench: bad chaos config %+v", cfg)
	}
	baseline, err := runChaosWorkload(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("bench: fault-free run: %w", err)
	}
	faulted, err := runChaosWorkload(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("bench: faulted run: %w", err)
	}
	return &ChaosResult{Config: cfg, Baseline: baseline, Faulted: faulted}, nil
}

// runChaosWorkload deploys one replica per Bento node, runs the client
// fleet, and (when faulted) injects the fault schedule mid-run.
func runChaosWorkload(cfg ChaosConfig, faulted bool) (*ChaosRunStats, error) {
	w, err := testbed.New(testbed.Config{
		Relays:      cfg.Replicas + 6,
		BentoNodes:  cfg.Replicas,
		ClockScale:  cfg.ClockScale,
		BentoEgress: cfg.ServeEgress,
		Obs:         cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	clock := w.Clock()

	var ch *simnet.Chaos
	if faulted {
		ch = w.EnableChaos(cfg.Seed)
	}

	content := make([]byte, cfg.FileSize)
	for i := range content {
		content[i] = byte(i * 13)
	}

	// Deployment is fault-free in both conditions: faults start with the
	// measured run, modeling a service already up when trouble hits.
	owner := w.NewBentoClient("chaos-owner", cfg.Seed)
	nodes := make([]*dirauth.Descriptor, cfg.Replicas)
	tokens := make([]string, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		nodes[i] = w.BentoNode(i)
		if nodes[i] == nil {
			return nil, fmt.Errorf("bench: no Bento node %d", i)
		}
		sess := owner.NewSession(nodes[i], bento.SessionConfig{})
		fn, err := sess.Spawn(chaosManifest())
		if err != nil {
			sess.Close()
			return nil, fmt.Errorf("bench: spawning replica %d: %w", i, err)
		}
		if err := fn.Upload(chaosReplicaSource); err != nil {
			sess.Close()
			return nil, fmt.Errorf("bench: uploading replica %d: %w", i, err)
		}
		if _, _, err := fn.Invoke("setup", interp.Bytes(content)); err != nil {
			sess.Close()
			return nil, fmt.Errorf("bench: seeding replica %d: %w", i, err)
		}
		tokens[i] = fn.InvokeToken()
		sess.Close()
	}

	start := clock.Now()
	var faultWG sync.WaitGroup
	if faulted {
		ch.SetDefaultFaults(simnet.Faults{
			LossProb:     cfg.LossProb,
			RetransDelay: cfg.RetransDelay,
			DialFailProb: cfg.DialFailProb,
		})
		at := func(offset time.Duration, f func()) {
			faultWG.Add(1)
			go func() {
				defer faultWG.Done()
				if d := start + offset - clock.Now(); d > 0 {
					clock.Sleep(d)
				}
				f()
			}()
		}
		if cfg.RelayCrashAt > 0 {
			// The first non-Bento relay: a transit hop, not a server.
			name := fmt.Sprintf("relay%d", cfg.Replicas)
			at(cfg.RelayCrashAt, func() { ch.CrashHost(name) })
		}
		if cfg.NodeOutageAt > 0 && cfg.NodeOutage > 0 {
			name := nodes[0].Nickname
			at(cfg.NodeOutageAt, func() { ch.CrashHostFor(name, cfg.NodeOutage) })
		}
		if cfg.KillReplicaAt > 0 {
			victim := cfg.Replicas - 1
			at(cfg.KillReplicaAt, func() { w.Servers[victim].KillFunction(tokens[victim]) })
		}
	}

	type clientRec struct {
		bytes  int64
		ops    int
		errors []string
	}
	recs := make([]clientRec, cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		if i > 0 && cfg.ArrivalGap > 0 {
			clock.Sleep(cfg.ArrivalGap)
		}
		replica := i % cfg.Replicas
		cli := w.NewBentoClient(fmt.Sprintf("chaos-client%d", i), cfg.Seed+int64(i)*31)
		wg.Add(1)
		go func(i, replica int, cli *bento.Client) {
			defer wg.Done()
			rec := &recs[i]
			sess := cli.NewSession(nodes[replica], bento.SessionConfig{
				MaxAttempts: 12,
				BaseBackoff: 100 * time.Millisecond,
				MaxBackoff:  1 * time.Second,
				OpDeadline:  30 * time.Second,
			})
			defer sess.Close()
			fn := sess.Attach(tokens[replica])
			for op := 0; op < cfg.Ops; op++ {
				out, _, err := fn.Invoke("serve")
				if err != nil {
					rec.errors = append(rec.errors, fmt.Sprintf("client %d op %d: %v", i, op, err))
					continue
				}
				if !bytes.Equal(out, content) {
					rec.errors = append(rec.errors, fmt.Sprintf("client %d op %d: corrupt content (%d of %d bytes)", i, op, len(out), len(content)))
					continue
				}
				rec.bytes += int64(len(out))
				rec.ops++
			}
		}(i, replica, cli)
	}
	wg.Wait()
	stats := &ChaosRunStats{Duration: clock.Now() - start}
	faultWG.Wait()

	for i := range recs {
		stats.Bytes += recs[i].bytes
		stats.Ops += recs[i].ops
		stats.Errors = append(stats.Errors, recs[i].errors...)
	}
	for i, srv := range w.Servers {
		stats.Restarts += srv.FunctionRestarts(tokens[i])
	}
	return stats, nil
}
