package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/bento"
	"github.com/bento-nfv/bento/internal/fleet"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/testbed"
)

// AutoscaleBenchConfig describes the obs-driven autoscaling experiment:
// a fleet starts at MinReplicas under a windowed-telemetry autoscaler,
// client demand ramps RampFactor-times higher, and mid-ramp a replica's
// relay is crashed. Measured: how fast the autoscaler adds capacity
// (virtual lag from ramp start to the first scale-up), whether the
// chaos burst makes it oscillate, whether it sheds the capacity again
// after the ramp ends, and the client-visible error count (target:
// zero, clients fail over).
type AutoscaleBenchConfig struct {
	// MinReplicas/MaxReplicas bound the fleet; it starts at Min.
	MinReplicas, MaxReplicas int
	// BentoNodes > MaxReplicas leaves headroom for chaos replacements.
	BentoNodes int
	// Relays is the total relay count; Families spreads them over
	// operator families for anti-affinity placement.
	Relays   int
	Families int
	// Clients is the baseline client population, each issuing requests
	// with failover across ready endpoints.
	Clients int
	// BaseGap is each client's virtual pause between requests.
	BaseGap time.Duration
	// RampFactor multiplies the client population during the ramp:
	// (RampFactor-1)*Clients extra clients join, then leave again.
	// (Population, not pacing, is what ramps: each client is
	// latency-bound at one in-flight request, so shrinking the gap
	// cannot triple the offered load but tripling the clients can.)
	RampFactor int
	// Warm/Ramp/Tail are the phase lengths (virtual): baseline load,
	// ramped load, then baseline again so the scale-down shows.
	Warm, Ramp, Tail time.Duration

	// Window is the telemetry sampling cadence; the autoscaler
	// evaluates once per window.
	Window time.Duration
	// HighWater/LowWater bound the per-replica rate band on the
	// RateMetric ("app.requests", bumped by the load generator itself
	// so controller health probes do not pollute the demand signal).
	HighWater, LowWater float64
	// QueueHighWater triggers ups on per-replica invoke queue depth.
	QueueHighWater float64
	// UpCooldown/DownCooldown gate successive actions.
	UpCooldown, DownCooldown time.Duration
	// DownStableWindows is how many consecutive low windows a
	// scale-down requires.
	DownStableWindows int

	// CrashDuringRamp crashes one replica's relay host mid-ramp (and
	// drops it from the consensus) while demand is high.
	CrashDuringRamp bool

	ClockScale float64
	Seed       int64
	// Obs overrides the telemetry registry (default: a fresh one; the
	// experiment cannot run unobserved — the control loop is the
	// telemetry consumer).
	Obs *obs.Registry
}

// DefaultAutoscaleBenchConfig is the quick configuration: 2..5 replicas
// on 7 Bento nodes, 6 clients ramping 3x, one mid-ramp relay crash.
func DefaultAutoscaleBenchConfig() AutoscaleBenchConfig {
	return AutoscaleBenchConfig{
		MinReplicas: 2,
		MaxReplicas: 5,
		BentoNodes:  7,
		Relays:      10,
		Families:    7,
		Clients:     6,
		BaseGap:     300 * time.Millisecond,
		RampFactor:  3,
		Warm:        8 * time.Second,
		Ramp:        25 * time.Second,
		Tail:        30 * time.Second,

		Window: time.Second,
		// Each client sustains ~2 req/s (300ms gap + ~200ms invoke
		// round trip), so the base population offers ~12/s and the 3x
		// ramp ~36/s. The band must give both loads a stable replica
		// count: 12/s sits at the 2-replica floor (6/replica, at the
		// band edge but pinned), and 36/s equilibrates at 3-4 replicas
		// (9-12/replica, inside the band) — with enough margin that
		// rate jitter and the crash-failover dip do not brush either
		// watermark at the peak.
		HighWater:         12,
		LowWater:          6,
		QueueHighWater:    6,
		UpCooldown:        2 * time.Second,
		DownCooldown:      4 * time.Second,
		DownStableWindows: 2,

		CrashDuringRamp: true,
		ClockScale:      0.02,
		Seed:            11,
	}
}

// ReplicaPoint is one telemetry window of the experiment timeline.
type ReplicaPoint struct {
	AtMs       int64   `json:"at_ms"`       // virtual time
	Desired    int     `json:"desired"`     // autoscaler target
	Ready      int     `json:"ready"`       // controller-reported ready replicas
	InvokeRate float64 `json:"invoke_rate"` // app.requests, req/s over the window tick
	QueueDepth int64   `json:"queue_depth"` // aggregate bento.invoke_queue_depth
	P95Ns      int64   `json:"p95_ns"`      // windowed bento.invoke_ns p95
}

// AutoscaleBenchResult is the machine-readable outcome.
type AutoscaleBenchResult struct {
	Config   AutoscaleBenchConfig `json:"config"`
	Timeline []ReplicaPoint       `json:"timeline"`
	Actions  []fleet.ScaleAction  `json:"actions"`

	// UpLagMs is virtual time from ramp start to the first scale-up.
	UpLagMs int64 `json:"up_lag_ms"`
	// MaxDesired is the replica-count high-water mark.
	MaxDesired int `json:"max_desired"`
	// FinalDesired must return to MinReplicas after the tail.
	FinalDesired int `json:"final_desired"`
	FinalReady   int `json:"final_ready"`
	// OscillationsDuringCrash counts scaling direction reversals inside
	// the chaos burst window (target: <= 1).
	OscillationsDuringCrash int `json:"oscillations_during_crash"`

	Requests    int64   `json:"requests"`
	Failures    int64   `json:"failures"` // app-visible: all endpoints failed
	SuccessRate float64 `json:"success_rate"`
	// StreamDropped counts recorder windows lost to backpressure
	// (drop-oldest; nonzero only if the recorder stalls).
	StreamDropped uint64 `json:"stream_dropped"`
}

// WriteJSONFile records the result machine-readably so the autoscaling
// trajectory across PRs can be tracked.
func (r *AutoscaleBenchResult) WriteJSONFile(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(path, blob, 0o644)
}

// String renders the experiment summary.
func (r *AutoscaleBenchResult) String() string {
	var b strings.Builder
	cfg := r.Config
	fmt.Fprintf(&b, "Fleet autoscaling: replicas %d..%d on %d Bento nodes, %d clients, %dx ramp\n",
		cfg.MinReplicas, cfg.MaxReplicas, cfg.BentoNodes, cfg.Clients, cfg.RampFactor)
	fmt.Fprintf(&b, "scale-up lag after ramp: %d ms virtual (window %v); peak desired %d; final %d/%d ready\n",
		r.UpLagMs, cfg.Window, r.MaxDesired, r.FinalReady, r.FinalDesired)
	b.WriteString("actions:\n")
	for _, a := range r.Actions {
		fmt.Fprintf(&b, "  %8dms  %d -> %d  (%s)\n", a.At.Milliseconds(), a.From, a.To, a.Reason)
	}
	fmt.Fprintf(&b, "oscillations during crash burst: %d\n", r.OscillationsDuringCrash)
	fmt.Fprintf(&b, "requests: %d total, %d failed (%.2f%% success)\n",
		r.Requests, r.Failures, r.SuccessRate*100)
	return b.String()
}

// autoscaleBenchSource is the replica body: a trivial serve() plus the
// controller's health endpoint.
const autoscaleBenchSource = `
def serve(x):
    return x + 1

def health():
    return 1
`

// RunAutoscale runs the experiment: converge at MinReplicas, ramp the
// load RampFactor-times, crash a replica mid-ramp, drop back to the
// base load, and check the autoscaler tracked the demand curve without
// thrashing.
func RunAutoscale(cfg AutoscaleBenchConfig) (*AutoscaleBenchResult, error) {
	if cfg.MinReplicas < 1 || cfg.MaxReplicas < cfg.MinReplicas ||
		cfg.BentoNodes <= cfg.MaxReplicas || cfg.Clients < 1 || cfg.RampFactor < 2 {
		return nil, fmt.Errorf("bench: bad autoscale config %+v (need BentoNodes > MaxReplicas, RampFactor >= 2)", cfg)
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	w, err := testbed.New(testbed.Config{
		Relays:     cfg.Relays,
		BentoNodes: cfg.BentoNodes,
		Families:   cfg.Families,
		ClockScale: cfg.ClockScale,
		Obs:        reg,
		ObsWindow:  cfg.Window,
	})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	clock := w.Clock()
	wind := w.Windower()
	ch := w.EnableChaos(cfg.Seed)

	// The demand signal: bumped by the load generator per successful
	// request, so the autoscaler sees pure app traffic — the
	// controller's own health probes never feed back into scaling.
	appReq := reg.Counter("app.requests")

	ctl, err := w.NewFleetController("autoscale-ctl", fleet.Config{
		Interval:        300 * time.Millisecond,
		OpDeadline:      5 * time.Second,
		BaseBackoff:     200 * time.Millisecond,
		MaxBackoff:      2 * time.Second,
		MinUptime:       2 * time.Second,
		SuspectCooldown: 5 * time.Second,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer ctl.Close()

	spec := &fleet.Spec{
		Name:     "autoscale-fleet",
		Replicas: cfg.MinReplicas,
		Manifest: &policy.Manifest{
			Name:         "autoscale-replica",
			Image:        "python",
			Memory:       8 << 20,
			Instructions: 5_000_000,
			Restart:      policy.RestartOnFailure,
		},
		Source:   autoscaleBenchSource,
		HealthFn: "health",
	}
	if err := ctl.Apply(spec); err != nil {
		return nil, err
	}
	if err := ctl.WaitConverged(120 * time.Second); err != nil {
		return nil, err
	}

	as, err := fleet.NewAutoscaler(fleet.AutoscaleConfig{
		Controller:        ctl,
		Windower:          wind,
		MinReplicas:       cfg.MinReplicas,
		MaxReplicas:       cfg.MaxReplicas,
		RateMetric:        "app.requests",
		HighWater:         cfg.HighWater,
		LowWater:          cfg.LowWater,
		QueueHighWater:    cfg.QueueHighWater,
		UpCooldown:        cfg.UpCooldown,
		DownCooldown:      cfg.DownCooldown,
		DownStableWindows: cfg.DownStableWindows,
		Obs:               reg,
	})
	if err != nil {
		return nil, err
	}
	defer as.Close()

	// The recorder: one timeline point per telemetry window, read off a
	// private stream subscription (drop-oldest if it ever stalls).
	res := &AutoscaleBenchResult{Config: cfg}
	sub := wind.Subscribe(8)
	var recMu sync.Mutex
	recDone := make(chan struct{})
	go func() {
		defer close(recDone)
		for {
			unblock := clock.Blocking()
			ws, ok := <-sub.C()
			unblock()
			if !ok {
				return
			}
			pt := ReplicaPoint{
				AtMs:    ws.At.Milliseconds(),
				Desired: as.Desired(),
				Ready:   ctl.Status().Ready,
			}
			if st := ws.Find("app.requests"); st != nil {
				pt.InvokeRate = st.Rate
			}
			if st := ws.Find("bento.invoke_queue_depth"); st != nil {
				pt.QueueDepth = st.Last
			}
			if st := ws.Find("bento.invoke_ns"); st != nil {
				pt.P95Ns = st.P95
			}
			recMu.Lock()
			res.Timeline = append(res.Timeline, pt)
			recMu.Unlock()
		}
	}()

	// The client fleet: the base population runs the whole experiment;
	// the ramp population primes one request during the warm phase (so
	// its sessions and circuits are built), parks until the ramp opens,
	// and leaves when it closes. Every request fails over across the
	// fleet's ready endpoints.
	total := cfg.Clients * cfg.RampFactor
	type clientRec struct{ requests, failures int64 }
	recs := make([]clientRec, total)
	done := make(chan struct{})
	rampGo := make(chan struct{})
	rampEnd := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		cli := w.NewBentoClient(fmt.Sprintf("autoscale-client%d", i), cfg.Seed+int64(i)*31)
		wg.Add(1)
		go func(i int, cli *bento.Client) {
			defer wg.Done()
			rec := &recs[i]
			sessions := make(map[string]*bento.Session)
			fns := make(map[string]*bento.SessionFunction)
			defer func() {
				for _, s := range sessions {
					s.Close()
				}
			}()
			rr := i
			request := func() {
				eps := ctl.Endpoints()
				rec.requests++
				ok := false
				for try := 0; try < len(eps) && !ok; try++ {
					ep := eps[(rr+try)%len(eps)]
					fn := fns[ep.InvokeToken]
					if fn == nil {
						sess := cli.NewSession(ep.Node, bento.SessionConfig{
							MaxAttempts: 2,
							BaseBackoff: 100 * time.Millisecond,
							MaxBackoff:  500 * time.Millisecond,
							OpDeadline:  5 * time.Second,
							Seed:        cfg.Seed + int64(i),
						})
						sessions[ep.InvokeToken] = sess
						fn = sess.Attach(ep.InvokeToken)
						fns[ep.InvokeToken] = fn
					}
					_, out, err := fn.Invoke("serve", interp.Int(int64(rr)))
					if err == nil {
						if got, isInt := out.(interp.Int); isInt && int64(got) == int64(rr)+1 {
							ok = true
						}
					}
					if !ok {
						// Drop the cached session: the endpoint may be
						// gone for good, and a fresh one re-dials.
						sessions[ep.InvokeToken].Close()
						delete(sessions, ep.InvokeToken)
						delete(fns, ep.InvokeToken)
					}
				}
				rr++
				if ok {
					appReq.Inc()
				} else {
					rec.failures++
				}
			}
			var stop chan struct{}
			if i >= cfg.Clients {
				// Ramp client: prime a session to every current
				// endpoint (request() rotates the round-robin start, so
				// one request per endpoint covers them all), park, join
				// on rampGo, leave on rampEnd. Warm sessions mean the
				// surge is visible to the sampler within one round
				// trip of the ramp opening.
				for range ctl.Endpoints() {
					request()
				}
				select {
				case <-done:
					return
				case <-rampGo:
				}
				stop = rampEnd
			}
			for {
				select {
				case <-done:
					return
				case <-stop:
					return
				default:
				}
				request()
				clock.Sleep(cfg.BaseGap)
			}
		}(i, cli)
	}

	// Phase 1: warm at the base load.
	clock.Sleep(cfg.Warm)

	// Phase 2: the ramp. The offered load jumps RampFactor-fold as the
	// parked clients join at once.
	rampStart := clock.Now()
	close(rampGo)

	// Mid-ramp chaos: crash one replica's relay while demand is high,
	// and let the directory authority drop it from the consensus. The
	// controller replaces the replica; the autoscaler must not flap.
	var crashAt time.Duration
	if cfg.CrashDuringRamp {
		clock.Sleep(cfg.Ramp / 2)
		eps := ctl.Endpoints()
		if len(eps) == 0 {
			return nil, fmt.Errorf("bench: no endpoints to crash")
		}
		victim := eps[0].Node.Nickname
		crashAt = clock.Now()
		ch.CrashHost(victim)
		w.Auth.Remove(victim)
		clock.Sleep(cfg.Ramp - cfg.Ramp/2)
	} else {
		clock.Sleep(cfg.Ramp)
	}

	// Phase 3: the tail. The ramp population leaves; the autoscaler
	// must walk the fleet back down to MinReplicas.
	close(rampEnd)
	clock.Sleep(cfg.Tail)

	close(done)
	wg.Wait()
	sub.Close()
	<-recDone

	for i := range recs {
		res.Requests += recs[i].requests
		res.Failures += recs[i].failures
	}
	if res.Requests > 0 {
		res.SuccessRate = 1 - float64(res.Failures)/float64(res.Requests)
	}
	res.Actions = as.Actions()
	res.FinalDesired = as.Desired()
	st := ctl.Status()
	res.FinalReady = st.Ready
	res.StreamDropped = sub.Dropped()
	res.MaxDesired = cfg.MinReplicas
	for _, a := range res.Actions {
		if a.To > res.MaxDesired {
			res.MaxDesired = a.To
		}
	}

	// Scale-up lag: ramp start to the first up action.
	res.UpLagMs = -1
	for _, a := range res.Actions {
		if a.At >= rampStart && a.To > a.From {
			res.UpLagMs = (a.At - rampStart).Milliseconds()
			break
		}
	}
	// Oscillations inside the chaos burst: direction reversals among
	// actions in [crashAt, crashAt + DownCooldown].
	if cfg.CrashDuringRamp {
		dir := 0
		for _, a := range res.Actions {
			if a.At < crashAt || a.At > crashAt+cfg.DownCooldown {
				continue
			}
			d := 1
			if a.To < a.From {
				d = -1
			}
			if dir != 0 && d != dir {
				res.OscillationsDuringCrash++
			}
			dir = d
		}
	}

	// The acceptance gates, as errors so harness smokes are real gates:
	// scale up within two windows of the ramp (one to sample the surge,
	// one of slack for tick phase), no app-visible errors, at most one
	// oscillation under chaos, and back at the floor after the tail.
	if res.UpLagMs < 0 || res.UpLagMs > (2*cfg.Window).Milliseconds() {
		return res, fmt.Errorf("bench: scale-up lag %d ms exceeds 2 windows (%v)", res.UpLagMs, cfg.Window)
	}
	if res.Failures > 0 {
		return res, fmt.Errorf("bench: %d app-visible failures (want 0; clients fail over)", res.Failures)
	}
	if res.OscillationsDuringCrash > 1 {
		return res, fmt.Errorf("bench: %d oscillations during the crash burst (want <= 1)", res.OscillationsDuringCrash)
	}
	if res.FinalDesired != cfg.MinReplicas {
		return res, fmt.Errorf("bench: final desired %d, want MinReplicas %d", res.FinalDesired, cfg.MinReplicas)
	}
	return res, nil
}
