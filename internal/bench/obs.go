package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/bento-nfv/bento/internal/cell"
	"github.com/bento-nfv/bento/internal/obs"
)

// ObsConfig sizes the observability ablation: the telemetry layer's
// contract is that a fully instrumented deployment costs under 5% of
// end-to-end throughput and zero allocations on the cell datapath, and
// this experiment is the evidence. It runs the datapath workload twice —
// against a nil registry (telemetry off: every handle is nil, every
// update a no-op by construction) and against a live one — plus a
// middle-hop microbenchmark pair isolating the per-cell counter cost.
type ObsConfig struct {
	// Bytes per direction of each end-to-end round.
	Bytes int
	// Rounds of each variant; variants alternate and the best round
	// wins, suppressing scheduler noise.
	Rounds int
	// MicroCells is the number of cells per microbenchmark variant.
	MicroCells int
	ClockScale float64
	Seed       int64
}

// DefaultObsConfig returns the quick configuration.
func DefaultObsConfig() ObsConfig {
	return ObsConfig{
		Bytes:      4 << 20,
		Rounds:     5,
		MicroCells: 200_000,
		ClockScale: 0.0002,
		Seed:       1,
	}
}

// ObsResult reports the instrumentation overhead. Overheads are
// (baseline - instrumented) / baseline; negative values mean the
// difference drowned in noise.
type ObsResult struct {
	BaselineMBPerSec     float64 `json:"baseline_mb_per_sec"`
	InstrumentedMBPerSec float64 `json:"instrumented_mb_per_sec"`
	E2EOverheadPct       float64 `json:"e2e_overhead_pct"`

	MicroPlainCellsPerSec float64 `json:"micro_plain_cells_per_sec"`
	MicroInstrCellsPerSec float64 `json:"micro_instr_cells_per_sec"`
	MicroOverheadPct      float64 `json:"micro_overhead_pct"`

	// Evidence that the instrumented variant really measured: counters
	// from the live registry after its final round.
	CellsForwarded int64 `json:"cells_forwarded"`
	CellsSent      int64 `json:"cells_sent"`
	ChunksSent     int64 `json:"chunks_sent"`
	SpansRecorded  int64 `json:"spans_recorded"`

	Bytes      int   `json:"bytes_per_direction"`
	Rounds     int   `json:"rounds"`
	MicroCells int   `json:"micro_cells"`
	Seed       int64 `json:"seed"`
}

// String renders the result table.
func (r *ObsResult) String() string {
	var b strings.Builder
	b.WriteString("Observability ablation: instrumented vs telemetry-off\n\n")
	fmt.Fprintf(&b, "3-hop e2e, %d MB per direction, best of %d rounds each:\n", r.Bytes>>20, r.Rounds)
	fmt.Fprintf(&b, "  telemetry off (nil registry): %7.2f MB/s\n", r.BaselineMBPerSec)
	fmt.Fprintf(&b, "  fully instrumented:           %7.2f MB/s  (%+.1f%% overhead)\n",
		r.InstrumentedMBPerSec, r.E2EOverheadPct)
	fmt.Fprintf(&b, "\nmiddle-hop forward microbenchmark (%d cells):\n", r.MicroCells)
	fmt.Fprintf(&b, "  plain loop:            %10.0f cells/s\n", r.MicroPlainCellsPerSec)
	fmt.Fprintf(&b, "  with per-cell metrics: %10.0f cells/s  (%+.1f%% overhead)\n",
		r.MicroInstrCellsPerSec, r.MicroOverheadPct)
	fmt.Fprintf(&b, "\ninstrumented-run evidence: %d cells forwarded, %d cells sent, %d chunks, %d spans\n",
		r.CellsForwarded, r.CellsSent, r.ChunksSent, r.SpansRecorded)
	return b.String()
}

// WriteJSONFile records the result machine-readably.
func (r *ObsResult) WriteJSONFile(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(path, blob, 0o644)
}

// RunObs measures telemetry overhead end to end and in isolation. The
// returned registry is the instrumented variant's, so callers can dump
// its dashboard as a live sample.
func RunObs(cfg ObsConfig) (*ObsResult, *obs.Registry, error) {
	if cfg.Bytes < cell.MaxRelayData || cfg.Rounds < 1 || cfg.MicroCells < 1 {
		return nil, nil, fmt.Errorf("bench: bad obs config %+v", cfg)
	}
	res := &ObsResult{
		Bytes:      cfg.Bytes,
		Rounds:     cfg.Rounds,
		MicroCells: cfg.MicroCells,
		Seed:       cfg.Seed,
	}

	// End to end: alternate variants so slow drift (thermal, other
	// tenants) hits both equally; keep each variant's best round.
	reg := obs.NewRegistry()
	for round := 0; round < cfg.Rounds; round++ {
		base, err := runObsE2ERound(cfg, nil)
		if err != nil {
			return nil, nil, err
		}
		if base > res.BaselineMBPerSec {
			res.BaselineMBPerSec = base
		}
		instr, err := runObsE2ERound(cfg, reg)
		if err != nil {
			return nil, nil, err
		}
		if instr > res.InstrumentedMBPerSec {
			res.InstrumentedMBPerSec = instr
		}
	}
	if res.BaselineMBPerSec > 0 {
		res.E2EOverheadPct = (res.BaselineMBPerSec - res.InstrumentedMBPerSec) /
			res.BaselineMBPerSec * 100
	}

	// Microbenchmark: the relay forwarding loop with and without the
	// per-cell counter updates the live relay performs. Same alternating
	// best-of discipline — the loop is ~30ns/cell, so run-to-run CPU
	// noise dwarfs the counter cost in any single measurement.
	for round := 0; round < cfg.Rounds; round++ {
		if plain := runMicroPooled(cfg.MicroCells); plain > res.MicroPlainCellsPerSec {
			res.MicroPlainCellsPerSec = plain
		}
		if instr := runMicroPooledObs(cfg.MicroCells, reg); instr > res.MicroInstrCellsPerSec {
			res.MicroInstrCellsPerSec = instr
		}
	}
	if res.MicroPlainCellsPerSec > 0 {
		res.MicroOverheadPct = (res.MicroPlainCellsPerSec - res.MicroInstrCellsPerSec) /
			res.MicroPlainCellsPerSec * 100
	}

	snap := reg.Snapshot()
	res.CellsForwarded = snap.Counters["relay.cells_forwarded"]
	res.CellsSent = snap.Counters["torclient.cells_sent"]
	res.ChunksSent = snap.Counters["simnet.chunks_sent"]
	res.SpansRecorded = int64(snap.Spans.Total)
	return res, reg, nil
}

// runObsE2ERound runs one datapath e2e round against reg (nil = the
// telemetry-off baseline) and returns the mean of the two directions'
// throughputs.
func runObsE2ERound(cfg ObsConfig, reg *obs.Registry) (float64, error) {
	dcfg := DatapathConfig{
		Bytes:      cfg.Bytes,
		MicroCells: 1, // unused; runDatapathE2E only reads Bytes
		ClockScale: cfg.ClockScale,
		Seed:       cfg.Seed,
		Obs:        reg,
	}
	var res DatapathResult
	if err := runDatapathE2E(dcfg, &res); err != nil {
		return 0, err
	}
	return (res.ForwardMBPerSec + res.BackwardMBPerSec) / 2, nil
}

// runMicroPooledObs is runMicroPooled with the live relay datapath's
// telemetry: a counter bump per forwarded cell and a flush-size
// histogram observation per batch, exactly what serveConn's path does.
func runMicroPooledObs(cells int, reg *obs.Registry) float64 {
	const batchCells = 64
	fwd := reg.Counter("relay.cells_forwarded")
	flush := reg.Histogram("relay.flush_cells", obs.BatchBuckets)
	layer := microLayer()
	src := &ringReader{frame: microFrame()}
	wire := make([]byte, cell.Size)
	batch := make([]byte, 0, batchCells*cell.Size)
	start := time.Now()
	for i := 0; i < cells; i++ {
		if err := cell.ReadWire(src, wire); err != nil {
			panic(err)
		}
		payload := cell.WirePayload(wire)
		layer.ApplyForward(payload)
		if cell.Recognized(payload) && layer.VerifyForward(payload, cell.DigestOffset) {
			continue // not expected: frames are addressed further down
		}
		cell.SetWireCircID(wire, 9)
		fwd.Inc()
		batch = append(batch, wire...)
		if len(batch) == cap(batch) {
			flush.Observe(int64(len(batch) / cell.Size))
			if _, err := io.Discard.Write(batch); err != nil {
				panic(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		flush.Observe(int64(len(batch) / cell.Size))
		io.Discard.Write(batch)
	}
	return float64(cells) / time.Since(start).Seconds()
}
