package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/testbed"
	"github.com/bento-nfv/bento/internal/webfarm"
	"github.com/bento-nfv/bento/internal/wf"
)

// CoverAblation measures what a link observer sees with and without the
// Cover function (§9.1): cover traffic should raise the link's duty cycle
// toward 1 and flatten the per-interval byte-count variation that
// circuit- and website-fingerprinting attacks feed on.
type CoverAblation struct {
	// DutyCycle is the fraction of intervals with any inbound traffic.
	BrowseDuty float64
	CoverDuty  float64
	// CoV is the coefficient of variation of inbound bytes per interval.
	BrowseCoV float64
	CoverCoV  float64
	Interval  time.Duration
}

// String renders the comparison.
func (r *CoverAblation) String() string {
	var b strings.Builder
	b.WriteString("Ablation: Cover traffic — link regularity (per-" +
		r.Interval.String() + " inbound intervals)\n")
	fmt.Fprintf(&b, "condition        duty cycle   CoV of bytes/interval\n")
	fmt.Fprintf(&b, "browse only      %10.2f   %10.2f\n", r.BrowseDuty, r.BrowseCoV)
	fmt.Fprintf(&b, "cover traffic    %10.2f   %10.2f\n", r.CoverDuty, r.CoverCoV)
	return b.String()
}

// RunCoverAblation records the client–guard link during (a) a bursty
// sequence of page fetches and (b) the Cover function streaming at a
// fixed rate, then compares regularity.
func RunCoverAblation(seed int64) (*CoverAblation, error) {
	site := webfarm.NamedSite("bursty.web", 20_000, []int{60_000, 40_000})
	w, err := testbed.New(testbed.Config{
		Relays:     6,
		BentoNodes: 1,
		Sites:      []*webfarm.Site{site},
		ClockScale: 0.02,
	})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	clock := w.Clock()

	cli := w.NewBentoClient("observer-victim", seed)
	var collector wf.Collector
	cli.Tor.SetTrafficTap(collector.Tap())
	const interval = 200 * time.Millisecond

	// Condition A: bursty browsing with idle gaps.
	collector.Reset()
	for i := 0; i < 3; i++ {
		if err := visitDirect(cli, site.Domain); err != nil {
			return nil, err
		}
		clock.Sleep(2 * time.Second) // idle gap between page loads
	}
	browseDuty, browseCoV := linkRegularity(collector.Snapshot(), interval)

	// Condition B: the Cover function streaming at a fixed rate.
	conn, err := cli.Connect(w.BentoNode(0))
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	fn, err := functions.Deploy(conn, functions.DefaultManifest("cover", "python"), functions.CoverSource)
	if err != nil {
		return nil, err
	}
	defer fn.Shutdown()
	collector.Reset()
	if _, err := fn.InvokeStream("cover",
		[]interp.Value{interp.Int(10_000), interp.Int(200), interp.Int(498)}, nil); err != nil {
		return nil, err
	}
	coverDuty, coverCoV := linkRegularity(collector.Snapshot(), interval)

	return &CoverAblation{
		BrowseDuty: browseDuty,
		CoverDuty:  coverDuty,
		BrowseCoV:  browseCoV,
		CoverCoV:   coverCoV,
		Interval:   interval,
	}, nil
}

// linkRegularity bins inbound bytes into intervals across the trace's
// active window and returns (duty cycle, coefficient of variation).
func linkRegularity(tr *wf.Trace, interval time.Duration) (float64, float64) {
	var first, last time.Duration
	seen := false
	for _, e := range tr.Events {
		if e.Dir >= 0 {
			continue
		}
		if !seen || e.At < first {
			first = e.At
		}
		if e.At > last {
			last = e.At
		}
		seen = true
	}
	if !seen || last <= first {
		return 0, 0
	}
	nbins := int((last-first)/interval) + 1
	bins := make([]float64, nbins)
	for _, e := range tr.Events {
		if e.Dir < 0 {
			bins[int((e.At-first)/interval)] += float64(e.Size)
		}
	}
	var sum, active float64
	for _, b := range bins {
		sum += b
		if b > 0 {
			active++
		}
	}
	mean := sum / float64(nbins)
	var varSum float64
	for _, b := range bins {
		d := b - mean
		varSum += d * d
	}
	std := math.Sqrt(varSum / float64(nbins))
	cov := 0.0
	if mean > 0 {
		cov = std / mean
	}
	return active / float64(nbins), cov
}
