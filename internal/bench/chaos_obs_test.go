package bench

import (
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/obs"
)

// TestChaosTelemetry runs the chaos workload with a live registry
// attached and checks that the self-healing machinery's work is visible
// in the telemetry: circuit-death detections, client-side heal retries
// (the session layer's, which is what recovers Bento operations), and
// server-watchdog restarts must all be non-zero, along with the chaos
// injector's own fault counters. This is the end-to-end proof that the
// observability layer sees the PR-1 failure paths, not just the happy
// path.
func TestChaosTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos workload is slow")
	}
	cfg := DefaultChaosConfig()
	cfg.Replicas = 2
	cfg.Clients = 4
	cfg.Ops = 16
	cfg.FileSize = 64 << 10
	cfg.NodeOutage = 1 * time.Second
	cfg.ClockScale = 0.05
	cfg.Obs = obs.NewRegistry()

	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.Faulted.Restarts < 1 {
		t.Fatalf("killed replica was never revived (restarts = %d)", res.Faulted.Restarts)
	}

	snap := cfg.Obs.Snapshot()
	mustPositive := func(name string) {
		t.Helper()
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	// The faulted run severs circuits (node outage, relay crash), so the
	// clients must have detected deaths and healed around them.
	mustPositive("torclient.circuit_deaths")
	mustPositive("torclient.relays_marked_bad")
	mustPositive("bento.session_retries")
	mustPositive("bento.watchdog_restarts")
	// The injector itself reports what it did.
	mustPositive("simnet.chaos_losses")
	mustPositive("simnet.chaos_host_crashes")
	mustPositive("simnet.chaos_host_restarts")
	// And the workload's bulk counters aggregate across both conditions.
	mustPositive("relay.cells_forwarded")
	mustPositive("bento.invokes")
	mustPositive("interp.invocations")

	if snap.Spans.Total == 0 {
		t.Error("no spans recorded across the chaos workload")
	}
}
