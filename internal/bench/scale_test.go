package bench

import "testing"

// TestScaleShape runs a scaled-down scale experiment end to end: every
// client must complete a real CREATE handshake on the event core, the
// HS fraction must land its rendezvous ops, and latency percentiles
// must be ordered and positive.
func TestScaleShape(t *testing.T) {
	cfg := ScaleConfig{
		Clients:        400,
		Relays:         2,
		Drivers:        32,
		CellsPerClient: 3,
		HSFrac:         0.1,
		Seed:           7,
		Quiet:          true,
	}
	res, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if res.CircuitsBuilt != int64(cfg.Clients) || res.BuildFailures != 0 {
		t.Fatalf("built %d circuits with %d failures, want %d/0",
			res.CircuitsBuilt, res.BuildFailures, cfg.Clients)
	}
	if res.HSOps != int64(cfg.Clients/10) {
		t.Fatalf("HS ops = %d, want %d", res.HSOps, cfg.Clients/10)
	}
	// CREATE+CREATED per client, an ESTABLISH_RENDEZVOUS+ack per HS
	// client, and the cover pump.
	wantCells := int64(cfg.Clients*(2+cfg.CellsPerClient)) + 2*res.HSOps
	if res.CellsTotal != wantCells {
		t.Fatalf("cells = %d, want %d", res.CellsTotal, wantCells)
	}
	if res.BuildP50Ms <= 0 || res.BuildP99Ms < res.BuildP50Ms {
		t.Fatalf("latency percentiles out of order: p50=%.1f p99=%.1f",
			res.BuildP50Ms, res.BuildP99Ms)
	}
	if res.VirtualSeconds <= 0 {
		t.Fatal("virtual clock never advanced")
	}
}
