package bench

import "testing"

// TestScaleShape runs a scaled-down scale experiment end to end: every
// client must complete a real telescoped 3-hop build on the event core,
// the HS fraction must land its rendezvous ops, cell accounting must
// match the topology exactly, and latency percentiles must be ordered
// and positive.
func TestScaleShape(t *testing.T) {
	cfg := ScaleConfig{
		Clients:        400,
		Relays:         2,
		Drivers:        32,
		CellsPerClient: 3,
		HSFrac:         0.1,
		Seed:           7,
		Quiet:          true,
	}
	res, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if res.CircuitsBuilt != int64(cfg.Clients) || res.BuildFailures != 0 {
		t.Fatalf("built %d circuits with %d failures, want %d/0",
			res.CircuitsBuilt, res.BuildFailures, cfg.Clients)
	}
	if res.HSOps != int64(cfg.Clients/10) {
		t.Fatalf("HS ops = %d, want %d", res.HSOps, cfg.Clients/10)
	}
	// Per client on its own link: CREATE+CREATED, 2 EXTENDs, 2
	// EXTENDEDs, and the cover pump (6+C). Relay-side: the second
	// EXTEND is forwarded once (guard→middle), its EXTENDED relayed
	// back once, and each cover cell crosses both forwarding hops
	// (2C+2). Each HS op adds ESTABLISH_RENDEZVOUS+ack on the client
	// link (2) plus two forwards and two relays-back inside the circuit
	// (4). Total: Clients*(8+3C) + 6*HSOps.
	wantCells := int64(cfg.Clients*(8+3*cfg.CellsPerClient)) + 6*res.HSOps
	if res.CellsTotal != wantCells {
		t.Fatalf("cells = %d, want %d", res.CellsTotal, wantCells)
	}
	if res.BuildP50Ms <= 0 || res.BuildP99Ms < res.BuildP50Ms {
		t.Fatalf("latency percentiles out of order: p50=%.1f p99=%.1f",
			res.BuildP50Ms, res.BuildP99Ms)
	}
	if res.VirtualSeconds <= 0 {
		t.Fatal("virtual clock never advanced")
	}
}
