package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/bento"
	"github.com/bento-nfv/bento/internal/fleet"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/testbed"
)

// FleetBenchConfig describes the fleet-reconciliation experiment: a
// replicated content fleet under a controller, with clients hammering it
// while the harness kills relays, partitions the network, and crash-loops
// a replica. Measured: virtual time-to-reconverge per fault, and the
// client-visible request success rate (with endpoint failover, the target
// is zero app-visible errors once the fleet reports converged).
type FleetBenchConfig struct {
	// Replicas is the fleet's desired replica count.
	Replicas int
	// BentoNodes > Replicas leaves spare capacity for replacements.
	BentoNodes int
	// Relays is the total relay count (transit hops included).
	Relays int
	// Families spreads the relays over this many operator families.
	Families int
	// Clients issue serve() requests round-robin over the fleet's ready
	// endpoints, failing over within a request.
	Clients int
	// RequestGap is each client's virtual pause between requests.
	RequestGap time.Duration
	// FileSize is the content size served per request.
	FileSize int

	// CrashRelay permanently crashes one replica's relay host.
	CrashRelay bool
	// Partition cuts one replica's relay off from every other host for
	// PartitionFor, then heals. The replica keeps running behind the
	// partition; the controller must not end up with duplicates.
	Partition    bool
	PartitionFor time.Duration
	// CrashLoop kills one replica's interpreter repeatedly until the
	// node's restart-storm guard declares it permanently failed and the
	// controller replaces it.
	CrashLoop bool
	// Tail is the converged quiet period measured after the last fault.
	Tail time.Duration

	ClockScale float64
	Seed       int64
	// Obs, when non-nil, attaches live telemetry to the deployment (the
	// controller's fleet.* metrics land there too).
	Obs *obs.Registry
}

// DefaultFleetBenchConfig is the quick configuration: a 3-replica fleet
// on 5 Bento nodes in 5 families, 6 clients, all three faults.
func DefaultFleetBenchConfig() FleetBenchConfig {
	return FleetBenchConfig{
		Replicas:   3,
		BentoNodes: 5,
		Relays:     9,
		Families:   5,
		Clients:    6,
		RequestGap: 120 * time.Millisecond,
		FileSize:   8 << 10,
		CrashRelay: true,
		Partition:  true,
		// Detection needs FailureThreshold stalled probes (~OpDeadline
		// each); a partition shorter than that window is — correctly —
		// ridden out without any reconciliation.
		PartitionFor: 15 * time.Second,
		CrashLoop:    true,
		Tail:         3 * time.Second,
		ClockScale:   0.02,
		Seed:         7,
	}
}

// FaultRecovery is one fault's reconvergence measurement, in virtual time.
type FaultRecovery struct {
	Fault      string        `json:"fault"`
	InjectedAt time.Duration `json:"injected_at"`
	RecoveryMs int64         `json:"recovery_ms"` // injection to reconverged
}

// FleetBenchResult is the machine-readable outcome.
type FleetBenchResult struct {
	Config            FleetBenchConfig `json:"config"`
	InitialConvergeMs int64            `json:"initial_converge_ms"`
	Recoveries        []FaultRecovery  `json:"recoveries"`

	Requests               int64   `json:"requests"`
	Failures               int64   `json:"failures"` // app-visible: all endpoints failed
	FailuresWhileConverged int64   `json:"failures_while_converged"`
	SuccessRate            float64 `json:"success_rate"`
	FinalReady             int     `json:"final_ready"`
	FinalOrphans           int     `json:"final_orphans"`
}

// WriteJSONFile records the result machine-readably so the robustness
// trajectory across PRs can be tracked.
func (r *FleetBenchResult) WriteJSONFile(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(path, blob, 0o644)
}

// String renders the experiment summary.
func (r *FleetBenchResult) String() string {
	var b strings.Builder
	cfg := r.Config
	fmt.Fprintf(&b, "Fleet reconciliation: %d replicas on %d Bento nodes (%d families), %d clients\n",
		cfg.Replicas, cfg.BentoNodes, cfg.Families, cfg.Clients)
	fmt.Fprintf(&b, "initial convergence: %d ms virtual\n", r.InitialConvergeMs)
	b.WriteString("fault        injected-at  reconverge(ms)\n")
	for _, rec := range r.Recoveries {
		fmt.Fprintf(&b, "%-12s %11s  %14d\n", rec.Fault, rec.InjectedAt, rec.RecoveryMs)
	}
	fmt.Fprintf(&b, "requests: %d total, %d failed (%.2f%% success), %d failed while fleet reported converged\n",
		r.Requests, r.Failures, r.SuccessRate*100, r.FailuresWhileConverged)
	fmt.Fprintf(&b, "final state: %d/%d ready, %d orphans\n", r.FinalReady, cfg.Replicas, r.FinalOrphans)
	return b.String()
}

// fleetBenchSource mirrors the chaos replica: content in the container
// filesystem (survives watchdog restarts), served back per request, plus
// a health endpoint for the controller.
const fleetBenchSource = `
def setup(content):
    fs.write("content", content)
    return 1

def serve():
    api.send(fs.read("content"))
    return 1

def health():
    fs.read("content")
    return 1
`

// RunFleetBench runs the experiment: converge, inject faults one at a
// time, measure each reconvergence and the client-visible error rate.
func RunFleetBench(cfg FleetBenchConfig) (*FleetBenchResult, error) {
	if cfg.Replicas < 1 || cfg.BentoNodes <= cfg.Replicas || cfg.Clients < 1 {
		return nil, fmt.Errorf("bench: bad fleet config %+v (need BentoNodes > Replicas)", cfg)
	}
	w, err := testbed.New(testbed.Config{
		Relays:     cfg.Relays,
		BentoNodes: cfg.BentoNodes,
		Families:   cfg.Families,
		ClockScale: cfg.ClockScale,
		Obs:        cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	clock := w.Clock()
	ch := w.EnableChaos(cfg.Seed)

	content := make([]byte, cfg.FileSize)
	for i := range content {
		content[i] = byte(i * 13)
	}

	ctl, err := w.NewFleetController("fleet-ctl", fleet.Config{
		Interval:        300 * time.Millisecond,
		OpDeadline:      5 * time.Second,
		BaseBackoff:     200 * time.Millisecond,
		MaxBackoff:      2 * time.Second,
		MinUptime:       2 * time.Second,
		SuspectCooldown: 5 * time.Second,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer ctl.Close()

	spec := &fleet.Spec{
		Name:     "bench-fleet",
		Replicas: cfg.Replicas,
		Manifest: &policy.Manifest{
			Name:         "fleet-replica",
			Image:        "python",
			Calls:        []string{"tor.send", "fs.read", "fs.write"},
			Memory:       8 << 20,
			Instructions: 5_000_000,
			Storage:      8 << 20,
			Restart:      policy.RestartOnFailure,
		},
		Source:   fleetBenchSource,
		HealthFn: "health",
		Init: func(fn *bento.SessionFunction) error {
			_, _, err := fn.Invoke("setup", interp.Bytes(content))
			return err
		},
	}

	res := &FleetBenchResult{Config: cfg}
	t0 := clock.Now()
	if err := ctl.Apply(spec); err != nil {
		return nil, err
	}
	if err := ctl.WaitConverged(120 * time.Second); err != nil {
		return nil, err
	}
	res.InitialConvergeMs = (clock.Now() - t0).Milliseconds()

	// The client fleet: each request fails over across the fleet's ready
	// endpoints; only a request no endpoint could serve is app-visible.
	type clientRec struct {
		requests, failures, failuresConverged int64
	}
	recs := make([]clientRec, cfg.Clients)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		cli := w.NewBentoClient(fmt.Sprintf("fleet-client%d", i), cfg.Seed+int64(i)*31)
		wg.Add(1)
		go func(i int, cli *bento.Client) {
			defer wg.Done()
			rec := &recs[i]
			sessions := make(map[string]*bento.Session)
			fns := make(map[string]*bento.SessionFunction)
			defer func() {
				for _, s := range sessions {
					s.Close()
				}
			}()
			rr := i // stagger the round-robin start across clients
			for {
				select {
				case <-done:
					return
				default:
				}
				eps := ctl.Endpoints()
				convergedAtStart := ctl.Converged()
				rec.requests++
				ok := false
				for try := 0; try < len(eps) && !ok; try++ {
					ep := eps[(rr+try)%len(eps)]
					fn := fns[ep.InvokeToken]
					if fn == nil {
						sess := cli.NewSession(ep.Node, bento.SessionConfig{
							MaxAttempts: 2,
							BaseBackoff: 100 * time.Millisecond,
							MaxBackoff:  500 * time.Millisecond,
							OpDeadline:  5 * time.Second,
							Seed:        cfg.Seed + int64(i),
						})
						sessions[ep.InvokeToken] = sess
						fn = sess.Attach(ep.InvokeToken)
						fns[ep.InvokeToken] = fn
					}
					out, _, err := fn.Invoke("serve")
					if err == nil && bytes.Equal(out, content) {
						ok = true
					} else {
						// Drop the cached session: the endpoint may be
						// gone for good, and a fresh one re-dials.
						sessions[ep.InvokeToken].Close()
						delete(sessions, ep.InvokeToken)
						delete(fns, ep.InvokeToken)
					}
				}
				rr++
				if !ok {
					rec.failures++
					if convergedAtStart && ctl.Converged() {
						rec.failuresConverged++
					}
				}
				clock.Sleep(cfg.RequestGap)
			}
		}(i, cli)
	}

	// endpointNode reports whether any current slot sits on the node.
	onNode := func(nick string) bool {
		for _, s := range ctl.Status().Slots {
			if s.Node == nick {
				return true
			}
		}
		return false
	}
	waitRecovered := func(fault string, injected time.Duration, okFn func() bool) error {
		deadline := clock.Now() + 180*time.Second
		for clock.Now() < deadline {
			if okFn() {
				res.Recoveries = append(res.Recoveries, FaultRecovery{
					Fault:      fault,
					InjectedAt: injected,
					RecoveryMs: (clock.Now() - injected).Milliseconds(),
				})
				return nil
			}
			clock.Sleep(100 * time.Millisecond)
		}
		return fmt.Errorf("bench: fleet did not recover from %s within 180s virtual", fault)
	}
	serverFor := func(nick string) int {
		for i := 0; i < cfg.BentoNodes; i++ {
			if w.BentoNode(i) != nil && w.BentoNode(i).Nickname == nick {
				return i
			}
		}
		return -1
	}

	// Fault 1: permanently crash one replica's relay host. The controller
	// must place a replacement on a spare node.
	if cfg.CrashRelay {
		victim := ctl.Endpoints()[0].Node.Nickname
		injected := clock.Now()
		ch.CrashHost(victim)
		// The directory authority notices the dead relay and drops it
		// from the next consensus, as Tor's dirauths would.
		w.Auth.Remove(victim)
		if err := waitRecovered("relay-crash", injected, func() bool {
			return ctl.Converged() && !onNode(victim)
		}); err != nil {
			return nil, err
		}
	}

	// Fault 2: cut one replica's relay off from every other host, then
	// heal. Depending on spare capacity the controller either moves the
	// replica or re-adopts the survivor; either way it must reconverge
	// with no duplicates (orphans drained).
	if cfg.Partition && cfg.PartitionFor > 0 {
		victim := ctl.Endpoints()[0].Node.Nickname
		injected := clock.Now()
		var hosts []string
		for i := 0; i < cfg.Relays; i++ {
			hosts = append(hosts, fmt.Sprintf("relay%d", i))
		}
		hosts = append(hosts, "fleet-ctl")
		for i := 0; i < cfg.Clients; i++ {
			hosts = append(hosts, fmt.Sprintf("fleet-client%d", i))
		}
		for _, h := range hosts {
			if h != victim {
				ch.Partition(victim, h)
				ch.Partition(h, victim)
			}
		}
		go func() {
			clock.Sleep(cfg.PartitionFor)
			ch.HealAll()
		}()
		// Two-phase: the controller must first notice (fleet diverges),
		// then reconverge with the orphan bookkeeping drained — the
		// no-duplicates invariant.
		detectBy := clock.Now() + 60*time.Second
		for ctl.Converged() && clock.Now() < detectBy {
			clock.Sleep(50 * time.Millisecond)
		}
		if ctl.Converged() {
			return nil, fmt.Errorf("bench: controller never noticed the partition")
		}
		if err := waitRecovered("partition", injected, func() bool {
			st := ctl.Status()
			return st.Converged && st.Orphans == 0
		}); err != nil {
			return nil, err
		}
	}

	// Fault 3: crash-loop one replica until the node's restart-storm
	// guard perm-fails it; the controller must read the signal and
	// replace the replica.
	if cfg.CrashLoop {
		victim := ctl.Endpoints()[0]
		srv := serverFor(victim.Node.Nickname)
		if srv < 0 {
			return nil, fmt.Errorf("bench: crash-loop victim %s not a bento node", victim.Node.Nickname)
		}
		injected := clock.Now()
		go func() {
			for i := 0; i < 60 && onNode(victim.Node.Nickname); i++ {
				w.Servers[srv].KillFunction(victim.InvokeToken)
				clock.Sleep(400 * time.Millisecond)
			}
		}()
		if err := waitRecovered("crash-loop", injected, func() bool {
			return ctl.Converged() && !onNode(victim.Node.Nickname)
		}); err != nil {
			return nil, err
		}
	}

	// Quiet tail: the converged steady state, where the error target is
	// strictly zero.
	if cfg.Tail > 0 {
		clock.Sleep(cfg.Tail)
	}
	close(done)
	wg.Wait()

	for i := range recs {
		res.Requests += recs[i].requests
		res.Failures += recs[i].failures
		res.FailuresWhileConverged += recs[i].failuresConverged
	}
	if res.Requests > 0 {
		res.SuccessRate = 1 - float64(res.Failures)/float64(res.Requests)
	}
	st := ctl.Status()
	res.FinalReady = st.Ready
	res.FinalOrphans = st.Orphans
	return res, nil
}
