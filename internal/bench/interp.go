package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/testbed"
)

// InterpConfig sizes the bscript-engine experiment: the tree-walking
// reference interpreter versus the bytecode VM on compute-, call-, and
// string-heavy workloads, the upload path cold versus warm (the server's
// program cache), and the end-to-end Bento invoke path under each engine.
type InterpConfig struct {
	// ComputeN is the iteration count of the arithmetic-loop workload.
	ComputeN int64
	// FibN is the argument to the naive recursive fib workload.
	FibN int64
	// StringN is the append count of the string-accumulation workload.
	StringN int64
	// Repeats is how many calls each micro measurement averages over.
	Repeats int
	// InvokeReps is how many end-to-end invocations are averaged per engine.
	InvokeReps int
	Seed       int64
}

// DefaultInterpConfig returns the quick configuration.
func DefaultInterpConfig() InterpConfig {
	return InterpConfig{
		ComputeN:   100_000,
		FibN:       21,
		StringN:    20_000,
		Repeats:    5,
		InvokeReps: 8,
		Seed:       1,
	}
}

// InterpResult compares the two bscript engines. All times are wall-clock
// nanoseconds per operation (one function call, one upload, or one
// end-to-end invocation).
type InterpResult struct {
	ComputeTreeNs  int64   `json:"compute_tree_ns"`
	ComputeVMNs    int64   `json:"compute_vm_ns"`
	ComputeSpeedup float64 `json:"compute_speedup"`

	FibTreeNs  int64   `json:"fib_tree_ns"`
	FibVMNs    int64   `json:"fib_vm_ns"`
	FibSpeedup float64 `json:"fib_speedup"`

	StringTreeNs  int64   `json:"string_tree_ns"`
	StringVMNs    int64   `json:"string_vm_ns"`
	StringSpeedup float64 `json:"string_speedup"`

	// Upload path: tree = lex+parse+walk, cold = lex+parse+compile+run,
	// warm = run a cached Program (what re-uploads and watchdog restarts
	// pay on the Bento server).
	UploadTreeNs   int64   `json:"upload_tree_ns"`
	UploadColdNs   int64   `json:"upload_cold_ns"`
	UploadWarmNs   int64   `json:"upload_warm_ns"`
	WarmUploadGain float64 `json:"warm_upload_gain_vs_tree"`
	CacheHitsSaved int64   `json:"cache_compiles_skipped"`

	// End-to-end Bento invoke of the compute workload through a full
	// simulated deployment (spawn, upload, then timed invokes).
	InvokeTreeNs  int64   `json:"invoke_tree_ns"`
	InvokeVMNs    int64   `json:"invoke_vm_ns"`
	InvokeSpeedup float64 `json:"invoke_speedup"`

	ComputeN int64 `json:"compute_n"`
	FibN     int64 `json:"fib_n"`
	StringN  int64 `json:"string_n"`
	Seed     int64 `json:"seed"`
}

// String renders the result table.
func (r *InterpResult) String() string {
	var b strings.Builder
	b.WriteString("Interp: tree-walking interpreter vs bytecode VM (wall-clock)\n\n")
	row := func(name string, tree, vm int64, speedup float64) {
		fmt.Fprintf(&b, "  %-22s tree %12s   vm %12s   %5.2fx\n",
			name, time.Duration(tree), time.Duration(vm), speedup)
	}
	row(fmt.Sprintf("compute (n=%d)", r.ComputeN), r.ComputeTreeNs, r.ComputeVMNs, r.ComputeSpeedup)
	row(fmt.Sprintf("calls (fib %d)", r.FibN), r.FibTreeNs, r.FibVMNs, r.FibSpeedup)
	row(fmt.Sprintf("strings (n=%d)", r.StringN), r.StringTreeNs, r.StringVMNs, r.StringSpeedup)
	fmt.Fprintf(&b, "\nupload path (per upload):\n")
	fmt.Fprintf(&b, "  tree walk:  %12s\n", time.Duration(r.UploadTreeNs))
	fmt.Fprintf(&b, "  vm cold:    %12s  (lex+parse+compile+run)\n", time.Duration(r.UploadColdNs))
	fmt.Fprintf(&b, "  vm warm:    %12s  (cached program, %.2fx vs tree)\n",
		time.Duration(r.UploadWarmNs), r.WarmUploadGain)
	if r.InvokeTreeNs > 0 {
		fmt.Fprintf(&b, "\nend-to-end bento invoke (compute function):\n")
		fmt.Fprintf(&b, "  tree engine: %12s\n", time.Duration(r.InvokeTreeNs))
		fmt.Fprintf(&b, "  vm engine:   %12s  (%.2fx)\n", time.Duration(r.InvokeVMNs), r.InvokeSpeedup)
	}
	return b.String()
}

// WriteJSONFile records the result machine-readably so the perf
// trajectory across PRs can be tracked.
func (r *InterpResult) WriteJSONFile(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(path, blob, 0o644)
}

// The three microbenchmark workloads. Each defines one function called
// with the size parameter, so a single upload amortizes across timed
// calls exactly like a deployed Bento function.
const (
	interpComputeSrc = `
def compute(n):
    total = 0
    i = 0
    while i < n:
        total = total + i * 3 % 7 - (i % 2)
        if total > 1000000:
            total = 0
        i += 1
    return total
`
	interpFibSrc = `
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
`
	interpStringSrc = `
def build(n):
    s = ""
    i = 0
    while i < n:
        s = s + "0123456789abcdef"
        i += 1
    return len(s)
`
)

// RunInterp measures both engines across the workload suite.
func RunInterp(cfg InterpConfig) (*InterpResult, error) {
	if cfg.ComputeN <= 0 || cfg.Repeats <= 0 {
		return nil, fmt.Errorf("bench: bad interp config %+v", cfg)
	}
	res := &InterpResult{ComputeN: cfg.ComputeN, FibN: cfg.FibN, StringN: cfg.StringN, Seed: cfg.Seed}

	type workload struct {
		src  string
		fn   string
		arg  int64
		tree *int64
		vm   *int64
		spd  *float64
	}
	for _, w := range []workload{
		{interpComputeSrc, "compute", cfg.ComputeN, &res.ComputeTreeNs, &res.ComputeVMNs, &res.ComputeSpeedup},
		{interpFibSrc, "fib", cfg.FibN, &res.FibTreeNs, &res.FibVMNs, &res.FibSpeedup},
		{interpStringSrc, "build", cfg.StringN, &res.StringTreeNs, &res.StringVMNs, &res.StringSpeedup},
	} {
		tree, err := timeTreeCall(w.src, w.fn, w.arg, cfg.Repeats)
		if err != nil {
			return nil, fmt.Errorf("bench: %s on tree engine: %w", w.fn, err)
		}
		vm, err := timeVMCall(w.src, w.fn, w.arg, cfg.Repeats)
		if err != nil {
			return nil, fmt.Errorf("bench: %s on vm engine: %w", w.fn, err)
		}
		*w.tree, *w.vm = tree, vm
		if vm > 0 {
			*w.spd = float64(tree) / float64(vm)
		}
	}

	if err := timeUploadPath(cfg, res); err != nil {
		return nil, err
	}
	if cfg.InvokeReps > 0 {
		if err := timeInvokeE2E(cfg, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// benchLimits is effectively unlimited: the budget is charged per call on
// one long-lived machine, so it must cover every repeat.
var benchLimits = interp.Limits{Instructions: 1 << 62, Memory: 1 << 40}

// timeTreeCall uploads src into a tree-walking machine and times repeated
// calls of fn(arg), returning the per-call average.
func timeTreeCall(src, fn string, arg int64, repeats int) (int64, error) {
	m := interp.NewMachine(benchLimits)
	if err := m.Run(src); err != nil {
		return 0, err
	}
	return timeCalls(m, fn, arg, repeats)
}

// timeVMCall compiles src, runs it on a fresh machine, and times repeated
// calls of fn(arg) through the VM.
func timeVMCall(src, fn string, arg int64, repeats int) (int64, error) {
	m := interp.NewMachine(benchLimits)
	prog, err := m.Compile(src)
	if err != nil {
		return 0, err
	}
	if err := m.RunProgram(prog); err != nil {
		return 0, err
	}
	return timeCalls(m, fn, arg, repeats)
}

func timeCalls(m *interp.Machine, fn string, arg int64, repeats int) (int64, error) {
	// One untimed warm-up call.
	if _, err := m.CallFunction(fn, interp.Int(arg)); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < repeats; i++ {
		if _, err := m.CallFunction(fn, interp.Int(arg)); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds() / int64(repeats), nil
}

// timeUploadPath measures what one upload costs: the tree walk, a cold
// compile+run, and a warm run of an already-cached Program — the Bento
// server's steady state for re-uploads and watchdog restarts.
func timeUploadPath(cfg InterpConfig, res *InterpResult) error {
	src := interpComputeSrc
	reps := cfg.Repeats * 20

	start := time.Now()
	for i := 0; i < reps; i++ {
		m := interp.NewMachine(interp.Limits{})
		if err := m.Run(src); err != nil {
			return err
		}
	}
	res.UploadTreeNs = time.Since(start).Nanoseconds() / int64(reps)

	start = time.Now()
	for i := 0; i < reps; i++ {
		m := interp.NewMachine(interp.Limits{})
		prog, err := m.Compile(src)
		if err != nil {
			return err
		}
		if err := m.RunProgram(prog); err != nil {
			return err
		}
	}
	res.UploadColdNs = time.Since(start).Nanoseconds() / int64(reps)

	prog, err := interp.Compile(src)
	if err != nil {
		return err
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		m := interp.NewMachine(interp.Limits{})
		if err := m.RunProgram(prog); err != nil {
			return err
		}
	}
	res.UploadWarmNs = time.Since(start).Nanoseconds() / int64(reps)
	res.CacheHitsSaved = int64(reps)
	if res.UploadWarmNs > 0 {
		res.WarmUploadGain = float64(res.UploadTreeNs) / float64(res.UploadWarmNs)
	}
	return nil
}

// timeInvokeE2E deploys the compute workload on a full simulated Bento
// deployment under each engine and averages the wall-clock invoke
// latency. The emulated network runs with near-zero delay so the
// interpreter dominates.
func timeInvokeE2E(cfg InterpConfig, res *InterpResult) error {
	measure := func(engine string) (int64, error) {
		w, err := testbed.New(testbed.Config{
			Relays:      3,
			BentoNodes:  1,
			ClockScale:  0.0002,
			LinkDelay:   time.Microsecond,
			BentoEngine: engine,
		})
		if err != nil {
			return 0, err
		}
		defer w.Close()
		cli := w.NewBentoClient("meter", cfg.Seed)
		conn, err := cli.Connect(w.BentoNode(0))
		if err != nil {
			return 0, err
		}
		defer conn.Close()
		man := functions.DefaultManifest("compute", "python")
		fn, err := functions.Deploy(conn, man, interpComputeSrc)
		if err != nil {
			return 0, err
		}
		defer fn.Shutdown()
		n := cfg.ComputeN / 4 // keep e2e reps fast; still interpreter-bound
		if _, _, err := fn.Invoke("compute", interp.Int(n)); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < cfg.InvokeReps; i++ {
			if _, _, err := fn.Invoke("compute", interp.Int(n)); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Nanoseconds() / int64(cfg.InvokeReps), nil
	}
	tree, err := measure("tree")
	if err != nil {
		return fmt.Errorf("bench: e2e tree engine: %w", err)
	}
	vm, err := measure("")
	if err != nil {
		return fmt.Errorf("bench: e2e vm engine: %w", err)
	}
	res.InvokeTreeNs, res.InvokeVMNs = tree, vm
	if vm > 0 {
		res.InvokeSpeedup = float64(tree) / float64(vm)
	}
	return nil
}
