package bench

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/hs"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/simnet"
	"github.com/bento-nfv/bento/internal/testbed"
	"github.com/bento-nfv/bento/internal/torclient"
)

// Figure5Config scales the hidden-service load-balancing experiment
// (Figure 5). The paper uses 13 clients arriving ≈1 s apart, each
// downloading a 10 MB file, with the LoadBalancer admitting at most two
// clients per replica across up to four machines.
type Figure5Config struct {
	Clients       int
	FileSize      int
	ArrivalGap    time.Duration
	MaxPerReplica int
	MaxReplicas   int
	// ServeEgress is each serving (Bento) node's uplink — the contended
	// resource whose sharing produces the left plot's sagging curves.
	ServeEgress float64
	ClockScale  float64
	// Duration bounds the balancer's run.
	Duration time.Duration
	Seed     int64
}

// DefaultFigure5Config mirrors the paper's parameters with a 2 MB file
// (the 10 MB original is reproduced by cmd/benchharness -full).
func DefaultFigure5Config() Figure5Config {
	return Figure5Config{
		Clients:       13,
		FileSize:      2 << 20,
		ArrivalGap:    time.Second,
		MaxPerReplica: 2,
		MaxReplicas:   4,
		ServeEgress:   400 * 1024,
		ClockScale:    0.02,
		Duration:      5 * time.Minute,
		Seed:          3,
	}
}

// ClientRun is one client's download record.
type ClientRun struct {
	ID       int
	Start    time.Duration // virtual arrival time
	Finish   time.Duration // virtual completion time
	Bytes    int
	Err      string
	SpeedKBs []float64 // per-second download speed samples (KB/s)
}

// MeanSpeedKBs returns the client's average download speed.
func (c *ClientRun) MeanSpeedKBs() float64 {
	d := (c.Finish - c.Start).Seconds()
	if d <= 0 {
		return 0
	}
	return float64(c.Bytes) / 1024 / d
}

// Figure5Result holds both conditions' client series.
type Figure5Result struct {
	WithoutLB []*ClientRun
	WithLB    []*ClientRun
	Replicas  int // replicas the balancer spun up
}

// String renders per-client download speed summaries for both plots.
func (r *Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: Per-client download speed with and without LoadBalancer\n")
	// Common scale across both plots so the sparklines compare.
	peak := 1.0
	for _, runs := range [][]*ClientRun{r.WithoutLB, r.WithLB} {
		for _, c := range runs {
			for _, v := range c.SpeedKBs {
				if v > peak {
					peak = v
				}
			}
		}
	}
	render := func(name string, runs []*ClientRun) {
		fmt.Fprintf(&b, "\n%s\n", name)
		b.WriteString("client  arrive(s)  finish(s)  time(s)  mean KB/s  speed over time\n")
		var total float64
		n := 0
		for _, c := range runs {
			if c.Err != "" {
				fmt.Fprintf(&b, "%6d  %9.1f  ERROR: %s\n", c.ID, c.Start.Seconds(), c.Err)
				continue
			}
			fmt.Fprintf(&b, "%6d  %9.1f  %9.1f  %7.1f  %9.1f  %s\n",
				c.ID, c.Start.Seconds(), c.Finish.Seconds(),
				(c.Finish - c.Start).Seconds(), c.MeanSpeedKBs(),
				sparkline(c.SpeedKBs, peak))
			total += c.MeanSpeedKBs()
			n++
		}
		if n > 0 {
			fmt.Fprintf(&b, "mean per-client speed: %.1f KB/s over %d clients\n", total/float64(n), n)
		}
	}
	render("Without LoadBalancer (single server)", r.WithoutLB)
	render(fmt.Sprintf("With LoadBalancer (%d replicas at peak)", r.Replicas), r.WithLB)
	return b.String()
}

// RunFigure5 regenerates Figure 5: the same client workload against a
// single hidden-service instance and against the LoadBalancer function.
func RunFigure5(cfg Figure5Config) (*Figure5Result, error) {
	if cfg.Clients < 1 || cfg.FileSize < 1 {
		return nil, fmt.Errorf("bench: bad figure5 config %+v", cfg)
	}
	result := &Figure5Result{}

	without, _, err := runHSWorkload(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("bench: without LB: %w", err)
	}
	result.WithoutLB = without

	with, replicas, err := runHSWorkload(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("bench: with LB: %w", err)
	}
	result.WithLB = with
	result.Replicas = replicas
	return result, nil
}

// sparkline renders per-second speed samples as a compact bar series on
// a shared scale — the textual analog of Figure 5's curves. Long runs are
// downsampled (by averaging) to at most 60 columns.
func sparkline(samples []float64, peak float64) string {
	if len(samples) == 0 || peak <= 0 {
		return ""
	}
	const maxCols = 60
	if len(samples) > maxCols {
		bucketed := make([]float64, maxCols)
		counts := make([]int, maxCols)
		for i, v := range samples {
			b := i * maxCols / len(samples)
			bucketed[b] += v
			counts[b]++
		}
		for i := range bucketed {
			if counts[i] > 0 {
				bucketed[i] /= float64(counts[i])
			}
		}
		samples = bucketed
	}
	const glyphs = " ▁▂▃▄▅▆▇█"
	runes := []rune(glyphs)
	var b strings.Builder
	for _, v := range samples {
		idx := int(v / peak * float64(len(runes)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(runes) {
			idx = len(runes) - 1
		}
		b.WriteRune(runes[idx])
	}
	return b.String()
}

// runHSWorkload deploys the service (balanced or not), launches the
// arrival process, and records every client's download.
func runHSWorkload(cfg Figure5Config, balanced bool) ([]*ClientRun, int, error) {
	// Node 0 hosts the front and the first replica (the paper's
	// "original"); nodes 1..MaxReplicas-1 host scale-out replicas.
	bentoNodes := cfg.MaxReplicas
	if bentoNodes < 1 {
		bentoNodes = 1
	}
	w, err := testbed.New(testbed.Config{
		Relays:      6 + bentoNodes,
		BentoNodes:  bentoNodes,
		ClockScale:  cfg.ClockScale,
		BentoEgress: cfg.ServeEgress,
	})
	if err != nil {
		return nil, 0, err
	}
	defer w.Close()
	clock := w.Clock()

	ident, err := hs.NewIdentity()
	if err != nil {
		return nil, 0, err
	}
	identBlob, err := ident.Marshal()
	if err != nil {
		return nil, 0, err
	}
	content := make([]byte, cfg.FileSize)
	for i := range content {
		content[i] = byte(i * 31)
	}

	owner := w.NewBentoClient("hs-owner", cfg.Seed)
	conn, err := owner.Connect(w.BentoNode(0))
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()

	runDone := make(chan error, 1)
	var fnResult interp.Value
	if balanced {
		fn, err := functions.Deploy(conn, functions.DefaultManifest("loadbalancer", "python"), functions.LoadBalancerSource)
		if err != nil {
			return nil, 0, err
		}
		defer fn.Shutdown()
		// The first entry is the front's own node: the "original" server
		// starts serving immediately (its content copy is loopback).
		nodes := &interp.List{}
		for i := 0; i < bentoNodes; i++ {
			nodes.Elems = append(nodes.Elems, interp.Str(w.BentoNode(i).Nickname))
		}
		go func() {
			res, err := fn.InvokeStream("run", []interp.Value{
				interp.Bytes(identBlob), interp.Bytes(content), nodes,
				interp.Str(functions.ReplicaSource),
				interp.Int(cfg.MaxPerReplica), interp.Int(cfg.MaxReplicas),
				interp.Int(cfg.Duration.Milliseconds()),
			}, nil)
			fnResult = res
			runDone <- err
		}()
	} else {
		fn, err := functions.Deploy(conn, functions.DefaultManifest("single-hs", "python"), functions.SingleServerSource)
		if err != nil {
			return nil, 0, err
		}
		defer fn.Shutdown()
		go func() {
			_, err := fn.InvokeStream("run", []interp.Value{
				interp.Bytes(identBlob), interp.Bytes(content),
				interp.Int(cfg.Duration.Milliseconds()),
			}, nil)
			runDone <- err
		}()
	}

	// Wait for the service descriptor to appear.
	probe := w.NewTorClient("probe", cfg.Seed+99)
	if err := awaitDescriptor(probe, ident.ServiceID(), clock); err != nil {
		return nil, 0, err
	}

	// Client arrival process.
	runs := make([]*ClientRun, cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		if i > 0 {
			clock.Sleep(cfg.ArrivalGap)
		}
		run := &ClientRun{ID: i + 1, Start: clock.Now()}
		runs[i] = run
		cli := w.NewTorClient(fmt.Sprintf("client%d", i+1), cfg.Seed+int64(i)*17)
		wg.Add(1)
		go func() {
			defer wg.Done()
			downloadFromHS(cli, ident.ServiceID(), cfg.FileSize, clock, run)
		}()
	}
	wg.Wait()

	replicas := 0
	if balanced {
		// Wait for the balancer's run to elapse so its replica count and
		// any internal failure are authoritative.
		wait := time.Duration(float64(cfg.Duration)*cfg.ClockScale) + 10*time.Second
		select {
		case err := <-runDone:
			if err != nil {
				return nil, 0, fmt.Errorf("bench: LoadBalancer function: %w", err)
			}
			if n, ok := fnResult.(interp.Int); ok {
				replicas = int(n)
			}
		case <-time.After(wait):
			return nil, 0, fmt.Errorf("bench: LoadBalancer never finished")
		}
	}
	return runs, replicas, nil
}

// awaitDescriptor polls the HSDirs until the service descriptor appears
// (the function publishes it asynchronously after launch).
func awaitDescriptor(cli *torclient.Client, serviceID string, clock *simnet.Clock) error {
	deadline := time.Now().Add(30 * time.Second) // wall-clock guard
	for time.Now().Before(deadline) {
		if _, err := hs.FetchDescriptor(cli.Host(), cli.Consensus(), serviceID); err == nil {
			return nil
		}
		clock.Sleep(500 * time.Millisecond)
	}
	return fmt.Errorf("bench: service descriptor never published")
}

// downloadFromHS dials the hidden service and reads exactly size bytes,
// recording per-virtual-second speed samples into run.
func downloadFromHS(cli *torclient.Client, serviceID string, size int, clock *simnet.Clock, run *ClientRun) {
	conn, err := hs.Dial(cli, serviceID)
	if err != nil {
		run.Err = err.Error()
		run.Finish = clock.Now()
		return
	}
	defer conn.Close()

	buf := make([]byte, 32*1024)
	lastSample := clock.Now()
	bytesInSample := 0
	for run.Bytes < size {
		n, err := conn.Read(buf)
		run.Bytes += n
		bytesInSample += n
		now := clock.Now()
		for now-lastSample >= time.Second {
			run.SpeedKBs = append(run.SpeedKBs, float64(bytesInSample)/1024)
			bytesInSample = 0
			lastSample += time.Second
		}
		if err != nil {
			if err != io.EOF {
				run.Err = err.Error()
			} else if run.Bytes < size {
				run.Err = fmt.Sprintf("short download: %d of %d bytes", run.Bytes, size)
			}
			break
		}
	}
	run.Finish = clock.Now()
	if bytesInSample > 0 {
		run.SpeedKBs = append(run.SpeedKBs, float64(bytesInSample)/1024)
	}
}
