// Package bench implements the paper's evaluation: one runnable
// experiment per table and figure (Table 1, Table 2, Figure 5, the §7.3
// scalability analysis) plus ablations over the design choices DESIGN.md
// calls out. Each experiment builds its own deployment, runs the workload,
// and returns a typed result with a text renderer shaped like the paper's
// presentation.
package bench

import (
	"fmt"
	"strings"

	"github.com/bento-nfv/bento/internal/bento"
	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/testbed"
	"github.com/bento-nfv/bento/internal/webfarm"
	"github.com/bento-nfv/bento/internal/wf"
)

// Table1Config scales the website-fingerprinting experiment (§7.3,
// Table 1). The paper uses 100 sites × 10+ visits; tests shrink this.
type Table1Config struct {
	Sites        int
	Visits       int
	TrainPerSite int
	// Paddings are the Browser padding targets evaluated alongside the
	// unmodified-Tor baseline. The paper uses 0, 1 MB, and 7 MB.
	Paddings []int
	Seed     int64
}

// DefaultTable1Config mirrors the paper's setup.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		Sites:        100,
		Visits:       10,
		TrainPerSite: 6,
		Paddings:     []int{0, 1 << 20, 7 << 20},
		Seed:         1,
	}
}

// Table1Row is one defense condition's attack accuracy.
type Table1Row struct {
	Defense          string
	Accuracy         float64 // k-NN (primary attack)
	CentroidAccuracy float64 // secondary attack
	Traces           int
}

// Table1Result is the regenerated Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// String renders the table in the paper's shape.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: Attack accuracy vs. defense\n")
	b.WriteString("Accuracy   Centroid   Defense\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6.1f%%    %6.1f%%    %s\n",
			row.Accuracy*100, row.CentroidAccuracy*100, row.Defense)
	}
	return b.String()
}

// table1Sites generates site profiles whose *total* sizes collide for a
// fraction of sites (≈70% distinct buckets) while their resource
// structures stay distinct. Unmodified traffic then reveals structure
// (high accuracy); Browser with 0 padding reveals only totals (partial
// accuracy); large padding erases both (guess rate). A minority of sites
// exceed 1 MB so the 1 MB condition stays slightly above chance, as in
// the paper.
func table1Sites(n int) []*webfarm.Site {
	buckets := (n*7 + 9) / 10 // ≈0.7n distinct totals
	if buckets < 1 {
		buckets = 1
	}
	sites := make([]*webfarm.Site, 0, n)
	for i := 0; i < n; i++ {
		bucket := i % buckets
		total := 60_000 + bucket*23_000
		if bucket >= buckets*9/10 { // heavy tail above 1 MB
			total = 1_100_000 + bucket*40_000
		}
		nres := 2 + i%9 // structure varies by site, not bucket
		htmlSize := 4_000 + (i%5)*1_500
		rest := total - htmlSize
		resSizes := make([]int, nres)
		// Deterministic uneven split so per-resource bursts differ
		// between same-bucket sites.
		weights := make([]int, nres)
		wsum := 0
		for r := 0; r < nres; r++ {
			weights[r] = 1 + (i*31+r*17)%13
			wsum += weights[r]
		}
		for r := 0; r < nres; r++ {
			resSizes[r] = rest * weights[r] / wsum
		}
		sites = append(sites, webfarm.NamedSite(fmt.Sprintf("site-%03d.web", i), htmlSize, resSizes))
	}
	return sites
}

// RunTable1 regenerates Table 1: closed-world fingerprinting accuracy
// against unmodified Tor and against Browser at each padding level.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	if cfg.Sites < 2 || cfg.Visits < 2 || cfg.TrainPerSite < 1 || cfg.TrainPerSite >= cfg.Visits {
		return nil, fmt.Errorf("bench: bad table1 config %+v", cfg)
	}
	sites := table1Sites(cfg.Sites)

	result := &Table1Result{}
	conditions := []struct {
		name    string
		padding int // -1 = unmodified Tor
	}{{"None (unmodified Tor)", -1}}
	for _, p := range cfg.Paddings {
		conditions = append(conditions, struct {
			name    string
			padding int
		}{fmt.Sprintf("Browser, %s padding", humanBytes(p)), p})
	}

	for _, cond := range conditions {
		traces, err := collectTraces(sites, cfg, cond.padding)
		if err != nil {
			return nil, fmt.Errorf("bench: condition %q: %w", cond.name, err)
		}
		knnAcc, err := wf.EvaluateClosedWorld(wf.NewKNN(3), traces, cfg.TrainPerSite, 100)
		if err != nil {
			return nil, err
		}
		centAcc, err := wf.EvaluateClosedWorld(&wf.Centroid{}, traces, cfg.TrainPerSite, 100)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, ts := range traces {
			total += len(ts)
		}
		result.Rows = append(result.Rows, Table1Row{
			Defense:          cond.name,
			Accuracy:         knnAcc,
			CentroidAccuracy: centAcc,
			Traces:           total,
		})
	}
	return result, nil
}

// collectTraces visits every site cfg.Visits times under one condition,
// recording the client–guard link each time.
func collectTraces(sites []*webfarm.Site, cfg Table1Config, padding int) (map[int][]*wf.Trace, error) {
	w, err := testbed.New(testbed.Config{
		Relays:     6,
		BentoNodes: 1,
		Sites:      sites,
	})
	if err != nil {
		return nil, err
	}
	defer w.Close()

	cli := w.NewBentoClient("victim", cfg.Seed)
	var collector wf.Collector
	cli.Tor.SetTrafficTap(collector.Tap())

	traces := make(map[int][]*wf.Trace, len(sites))
	for siteIdx, site := range sites {
		for v := 0; v < cfg.Visits; v++ {
			collector.Reset()
			if padding < 0 {
				if err := visitDirect(cli, site.Domain); err != nil {
					return nil, fmt.Errorf("visit %s: %w", site.Domain, err)
				}
			} else {
				if _, err := functions.Browse(cli, w.BentoNode(0), site.Domain, padding); err != nil {
					return nil, fmt.Errorf("browse %s: %w", site.Domain, err)
				}
			}
			traces[siteIdx] = append(traces[siteIdx], collector.Snapshot())
		}
	}
	return traces, nil
}

// visitDirect loads a page the standard-Tor way: fresh circuit, browser-
// style sequential resource fetches through an exit stream.
func visitDirect(cli *bento.Client, domain string) error {
	path, err := cli.Tor.PickPath(domain, webfarm.Port)
	if err != nil {
		return err
	}
	circ, err := cli.Tor.BuildCircuit(path)
	if err != nil {
		return err
	}
	defer circ.Close()
	_, err = webfarm.FetchPage(circ.OpenStream, domain)
	return err
}

func humanBytes(n int) string {
	switch {
	case n <= 0:
		return "0MB"
	case n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n/(1<<20))
	case n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
