package bench

import (
	"fmt"
	"runtime"
	"strings"

	"github.com/bento-nfv/bento/internal/enclave"
	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/testbed"
	"github.com/bento-nfv/bento/internal/webfarm"
)

// ScalabilityConfig scales the §7.3 analysis.
type ScalabilityConfig struct {
	// FunctionMemory is the per-function enclave reservation used when
	// estimating concurrent capacity (paper: ~16-20 MB for Bento+Browser
	// plus 7.3 MB conclave overhead).
	FunctionMemory int64
	Seed           int64
}

// DefaultScalabilityConfig mirrors the paper's estimates.
func DefaultScalabilityConfig() ScalabilityConfig {
	return ScalabilityConfig{FunctionMemory: 20 << 20, Seed: 4}
}

// ScalabilityResult is the regenerated §7.3 analysis.
type ScalabilityResult struct {
	// Measured values.
	BrowserLiveBytes   int64 // interpreter live memory after a Browser run
	ServerRuntimeMB    float64
	ConclaveOverheadMB float64
	// EPC accounting.
	EPCUsableMB       float64
	PredictedCapacity int
	MeasuredCapacity  int // enclaves actually launched before EPC exhaustion
	ProcessHeapMB     float64
}

// String renders the analysis.
func (r *ScalabilityResult) String() string {
	var b strings.Builder
	b.WriteString("Scalability (§7.3): memory footprint vs. enclave page cache\n")
	fmt.Fprintf(&b, "Bento server runtime enclave:   %6.1f MB\n", r.ServerRuntimeMB)
	fmt.Fprintf(&b, "Browser function peak heap:     %6.2f MB (interpreter estimate)\n",
		float64(r.BrowserLiveBytes)/(1<<20))
	fmt.Fprintf(&b, "Conclave overhead (modeled):    %6.1f MB\n", r.ConclaveOverheadMB)
	fmt.Fprintf(&b, "Usable EPC:                     %6.1f MB of %d MB\n",
		r.EPCUsableMB, enclave.EPCTotal>>20)
	fmt.Fprintf(&b, "Predicted concurrent functions: %d\n", r.PredictedCapacity)
	fmt.Fprintf(&b, "Measured concurrent functions:  %d (launched to EPC exhaustion)\n", r.MeasuredCapacity)
	fmt.Fprintf(&b, "Go process heap (whole world):  %6.1f MB\n", r.ProcessHeapMB)
	return b.String()
}

// RunScalability regenerates the §7.3 scalability analysis: it measures a
// real Browser run's interpreter memory, then packs SGX containers onto
// one platform until the EPC is exhausted.
func RunScalability(cfg ScalabilityConfig) (*ScalabilityResult, error) {
	if cfg.FunctionMemory <= 0 {
		cfg.FunctionMemory = 20 << 20
	}
	site := webfarm.NamedSite("measure.web", 20_000, []int{40_000, 30_000})
	w, err := testbed.New(testbed.Config{Relays: 5, BentoNodes: 1, Sites: []*webfarm.Site{site}})
	if err != nil {
		return nil, err
	}
	defer w.Close()

	res := &ScalabilityResult{
		ServerRuntimeMB:    8, // the runtime enclave reservation in NewServer
		ConclaveOverheadMB: 7.3,
		EPCUsableMB:        float64(enclave.EPCUsable) / (1 << 20),
	}

	// Measure a live Browser run's interpreter footprint.
	cli := w.NewBentoClient("alice", cfg.Seed)
	conn, err := cli.Connect(w.BentoNode(0))
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	man := functions.DefaultManifest("browser", "python")
	fn, err := functions.Deploy(conn, man, functions.BrowserSource)
	if err != nil {
		return nil, err
	}
	if _, _, err := fn.Invoke("browser", interp.Str("measure.web"), interp.Int(1<<20)); err != nil {
		return nil, err
	}
	res.BrowserLiveBytes = w.Servers[0].FunctionMemoryEstimate()
	fn.Shutdown()

	// Pack a dedicated platform with function-sized enclaves.
	platform, err := enclave.NewPlatform(enclave.MinTCBVersion)
	if err != nil {
		return nil, err
	}
	reserve := cfg.FunctionMemory + int64(res.ConclaveOverheadMB*(1<<20))
	res.PredictedCapacity = int((enclave.EPCUsable - res.ServerRuntimeMB*(1<<20)) / float64(reserve))
	if _, err := platform.Launch([]byte("bento-runtime"), int64(res.ServerRuntimeMB*(1<<20))); err != nil {
		return nil, err
	}
	for {
		if _, err := platform.Launch([]byte("fn"), reserve); err != nil {
			break
		}
		res.MeasuredCapacity++
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res.ProcessHeapMB = float64(ms.HeapAlloc) / (1 << 20)
	return res, nil
}
