package bench

import (
	"os"
	"strconv"
	"testing"
)

// TestDatapathSmoke runs the datapath experiment at a small size: the
// check.sh gate that the benchmark harness itself keeps working. Scale
// up via BENCH_DATAPATH_BYTES / BENCH_DATAPATH_CELLS for profiling runs.
func TestDatapathSmoke(t *testing.T) {
	cfg := DatapathConfig{
		Bytes:      512 << 10,
		MicroCells: 5_000,
		ClockScale: 0.0002,
		Seed:       1,
	}
	if v, err := strconv.Atoi(os.Getenv("BENCH_DATAPATH_BYTES")); err == nil && v > 0 {
		cfg.Bytes = v
	}
	if v, err := strconv.Atoi(os.Getenv("BENCH_DATAPATH_CELLS")); err == nil && v > 0 {
		cfg.MicroCells = v
	}
	// A 5000-cell micro run lasts ~1ms; with the whole suite's packages
	// running in parallel one deschedule mid-variant flips the
	// comparison. Retry the measurement a few times before believing a
	// slowdown — the codecs' real gap is >2x, far outside noise that
	// survives repetition.
	var res *DatapathResult
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		res, err = RunDatapath(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.MicroPooledCellsPerSec > res.MicroLegacyCellsPerSec {
			break
		}
	}
	t.Logf("\n%s", res)
	if res.ForwardCellsPerSec <= 0 || res.BackwardCellsPerSec <= 0 {
		t.Fatalf("zero end-to-end throughput: %+v", res)
	}
	if res.MicroPooledCellsPerSec <= res.MicroLegacyCellsPerSec {
		t.Errorf("pooled codec (%.0f cells/s) not faster than legacy (%.0f cells/s)",
			res.MicroPooledCellsPerSec, res.MicroLegacyCellsPerSec)
	}
}
