package bench

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/fountain"
	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/simnet"
	"github.com/bento-nfv/bento/internal/testbed"
	"github.com/bento-nfv/bento/internal/webfarm"
	"github.com/bento-nfv/bento/internal/wf"
)

// --- Ablation: padding level (security/performance frontier) -----------------

// PaddingPoint is one padding level's security and cost.
type PaddingPoint struct {
	Padding   int
	Accuracy  float64 // WF attack accuracy (lower = safer)
	Downloads float64 // median download time in virtual seconds
}

// PaddingAblation sweeps Browser's padding knob, crossing Table 1's
// security axis with Table 2's cost axis — the trade the anonymity
// trilemma prices.
type PaddingAblation struct {
	Points []PaddingPoint
}

// String renders the frontier.
func (r *PaddingAblation) String() string {
	var b strings.Builder
	b.WriteString("Ablation: padding level — attack accuracy vs download cost\n")
	b.WriteString("padding     accuracy   median download (s)\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10s  %7.1f%%  %10.2f\n", humanBytes(p.Padding), p.Accuracy*100, p.Downloads)
	}
	return b.String()
}

// RunPaddingAblation sweeps paddings over a small closed world.
func RunPaddingAblation(sites, visits int, paddings []int, seed int64) (*PaddingAblation, error) {
	cfg := Table1Config{
		Sites:        sites,
		Visits:       visits,
		TrainPerSite: visits / 2,
		Seed:         seed,
	}
	siteList := table1Sites(sites)
	out := &PaddingAblation{}
	for _, padding := range paddings {
		traces, err := collectTraces(siteList, cfg, padding)
		if err != nil {
			return nil, err
		}
		acc, err := wf.EvaluateClosedWorld(wf.NewKNN(3), traces, cfg.TrainPerSite, 100)
		if err != nil {
			return nil, err
		}
		// Median download duration from the captured traces.
		var durations []float64
		for _, ts := range traces {
			for _, tr := range ts {
				if len(tr.Events) > 1 {
					d := tr.Events[len(tr.Events)-1].At - tr.Events[0].At
					durations = append(durations, d.Seconds())
				}
			}
		}
		med, err := medianOf(1, func() (float64, error) { return medianFloat(durations), nil })
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, PaddingPoint{Padding: padding, Accuracy: acc, Downloads: med})
	}
	return out, nil
}

func medianFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

// --- Ablation: conclave overhead ----------------------------------------------

// ConclaveAblation compares function invocation through the plain Python
// container against the Python-OP-SGX conclave (§7.3 claims the overhead
// is nominal relative to Tor's own latency).
type ConclaveAblation struct {
	PlainSetupS  float64 // spawn+upload, virtual seconds
	SGXSetupS    float64
	PlainInvokeS float64 // median invoke round trip
	SGXInvokeS   float64
	Invocations  int
}

// String renders the comparison.
func (r *ConclaveAblation) String() string {
	var b strings.Builder
	b.WriteString("Ablation: conclave overhead (python vs python-op-sgx)\n")
	fmt.Fprintf(&b, "setup (spawn+attest+upload):  plain %6.3fs   sgx %6.3fs  (+%.0f%%)\n",
		r.PlainSetupS, r.SGXSetupS, 100*(r.SGXSetupS-r.PlainSetupS)/nonzero(r.PlainSetupS))
	fmt.Fprintf(&b, "invoke round trip (median):   plain %6.3fs   sgx %6.3fs  (+%.0f%%)\n",
		r.PlainInvokeS, r.SGXInvokeS, 100*(r.SGXInvokeS-r.PlainInvokeS)/nonzero(r.PlainInvokeS))
	return b.String()
}

func nonzero(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}

// RunConclaveAblation measures setup and invoke latency for both images.
func RunConclaveAblation(invocations int, seed int64) (*ConclaveAblation, error) {
	if invocations < 1 {
		invocations = 5
	}
	w, err := testbed.New(testbed.Config{Relays: 5, BentoNodes: 1, ClockScale: 0.02})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	clock := w.Clock()
	cli := w.NewBentoClient("alice", seed)
	conn, err := cli.Connect(w.BentoNode(0))
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	res := &ConclaveAblation{Invocations: invocations}
	for _, image := range []string{"python", "python-op-sgx"} {
		man := functions.DefaultManifest("echo", image)
		start := clock.Now()
		fn, err := functions.Deploy(conn, man, functions.EchoSource)
		if err != nil {
			return nil, err
		}
		setup := (clock.Now() - start).Seconds()

		var times []float64
		for i := 0; i < invocations; i++ {
			t0 := clock.Now()
			if _, _, err := fn.Invoke("echo", interp.Bytes("ping")); err != nil {
				return nil, err
			}
			times = append(times, (clock.Now() - t0).Seconds())
		}
		med := medianFloat(times)
		fn.Shutdown()
		if image == "python" {
			res.PlainSetupS, res.PlainInvokeS = setup, med
		} else {
			res.SGXSetupS, res.SGXInvokeS = setup, med
		}
	}
	return res, nil
}

// --- Ablation: Shard (k, N) vs node failure -----------------------------------

// ShardPoint is one (k, n, failure-probability) cell.
type ShardPoint struct {
	K, N        int
	FailureProb float64
	SuccessRate float64
	Overhead    float64 // storage expansion factor n/k
}

// ShardAblation sweeps erasure-coding parameters against node failures
// (§9.3's availability argument).
type ShardAblation struct {
	Points []ShardPoint
}

// String renders the sweep.
func (r *ShardAblation) String() string {
	var b strings.Builder
	b.WriteString("Ablation: Shard (k,N) vs node failure probability\n")
	b.WriteString("  k   N  overhead  p(fail)   reconstruction success\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%3d %3d  %7.2fx  %7.2f  %9.1f%%\n", p.K, p.N, p.Overhead, p.FailureProb, p.SuccessRate*100)
	}
	return b.String()
}

// RunShardAblation Monte-Carlo simulates shard loss and reconstruction.
func RunShardAblation(trials int, seed int64) (*ShardAblation, error) {
	if trials < 1 {
		trials = 200
	}
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, 4096)
	rng.Read(data)
	params := []struct{ k, n int }{{1, 3}, {2, 4}, {3, 6}, {4, 8}, {5, 6}}
	probs := []float64{0.1, 0.3, 0.5}

	out := &ShardAblation{}
	for _, pr := range params {
		shards, err := fountain.Encode(data, pr.k, pr.n, rng)
		if err != nil {
			return nil, err
		}
		for _, p := range probs {
			success := 0
			for t := 0; t < trials; t++ {
				var surviving []*fountain.Shard
				for _, s := range shards {
					if rng.Float64() >= p {
						surviving = append(surviving, s)
					}
				}
				if got, err := fountain.Decode(surviving); err == nil && len(got) == len(data) {
					success++
				}
			}
			out.Points = append(out.Points, ShardPoint{
				K: pr.k, N: pr.n, FailureProb: p,
				SuccessRate: float64(success) / float64(trials),
				Overhead:    float64(pr.n) / float64(pr.k),
			})
		}
	}
	return out, nil
}

// --- Ablation: bandwidth fairness ----------------------------------------------

// FairnessPoint is one concurrency level's sharing quality.
type FairnessPoint struct {
	Clients       int
	JainIndex     float64
	AggregateKBps float64
}

// FairnessAblation verifies the token-bucket substrate shares a server
// uplink fairly — the property Figure 5's curves are built on.
type FairnessAblation struct {
	Points []FairnessPoint
}

// String renders the sweep.
func (r *FairnessAblation) String() string {
	var b strings.Builder
	b.WriteString("Ablation: uplink sharing fairness (Jain index; 1.0 = perfectly fair)\n")
	b.WriteString("clients   Jain    aggregate KB/s\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%7d  %6.3f  %12.1f\n", p.Clients, p.JainIndex, p.AggregateKBps)
	}
	return b.String()
}

// RunFairnessAblation downloads concurrently from one rate-limited host
// at several concurrency levels.
func RunFairnessAblation(levels []int, seed int64) (*FairnessAblation, error) {
	if len(levels) == 0 {
		levels = []int{2, 4, 8}
	}
	const rate = 200 * 1024.0
	const fileSize = 512 * 1024
	out := &FairnessAblation{}
	for _, n := range levels {
		// Gentle clock scale: per-transfer fairness is measured in
		// virtual time, and at aggressive scales the OS timer quantum
		// (~1ms) on each token-bucket sleep turns into seconds of
		// per-client virtual noise that swamps the Jain index.
		clock := simnet.NewClock(0.05)
		net := simnet.NewNetwork(clock, time.Millisecond)
		server := net.AddHost("server", rate)
		ln, err := server.Listen(80)
		if err != nil {
			return nil, err
		}
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					defer c.Close()
					// Serve in socket-sized chunks, as a real server
					// would: each Write contends for the shared egress
					// bucket, so chunk granularity is what lets the
					// concurrent transfers interleave fairly rather
					// than sprint a full burst at a time.
					buf := make([]byte, 4*1024)
					for sent := 0; sent < fileSize; sent += len(buf) {
						if _, err := c.Write(buf); err != nil {
							return
						}
					}
				}()
			}
		}()

		speeds := make([]float64, n)
		start := clock.Now()
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			h := net.AddHost(fmt.Sprintf("c%d", i), 0)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t0 := clock.Now()
				conn, err := h.Dial("server:80")
				if err != nil {
					return
				}
				io.Copy(io.Discard, conn)
				speeds[i] = fileSize / 1024 / (clock.Now() - t0).Seconds()
			}(i)
		}
		wg.Wait()
		elapsed := (clock.Now() - start).Seconds()
		ln.Close()

		var sum, sumSq float64
		for _, s := range speeds {
			sum += s
			sumSq += s * s
		}
		jain := 0.0
		if sumSq > 0 {
			jain = sum * sum / (float64(n) * sumSq)
		}
		out.Points = append(out.Points, FairnessPoint{
			Clients:       n,
			JainIndex:     jain,
			AggregateKBps: float64(n*fileSize) / 1024 / elapsed,
		})
	}
	return out, nil
}

// --- Ablation: multipath downloads (§9.4 extension) ----------------------------

// MultipathPoint is one path-count's download performance.
type MultipathPoint struct {
	Paths   int
	Seconds float64
	Speedup float64 // vs single path
}

// MultipathAblation measures the §9.4 multipath-routing extension: slice
// downloads over disjoint circuits through bandwidth-limited relays.
type MultipathAblation struct {
	PageBytes int
	Points    []MultipathPoint
}

// String renders the sweep.
func (r *MultipathAblation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: multipath downloads (%d-byte page, capped relays)\n", r.PageBytes)
	b.WriteString("paths   time (s)   speedup\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%5d  %9.2f  %7.2fx\n", p.Paths, p.Seconds, p.Speedup)
	}
	return b.String()
}

// RunMultipathAblation downloads the same page over 1, 2, and 4 paths.
func RunMultipathAblation(levels []int, seed int64) (*MultipathAblation, error) {
	if len(levels) == 0 {
		levels = []int{1, 2, 4}
	}
	site := webfarm.NamedSite("big.web", 50_000, []int{400_000, 300_000, 250_000})
	out := &MultipathAblation{PageBytes: site.TotalSize()}
	var baseline float64
	for _, paths := range levels {
		// Gentle clock scale: the speedup is a ratio of virtual times,
		// and at aggressive scales the real CPU cost of running three
		// concurrent circuits on few cores divides by the scale into
		// virtual seconds, eating the parallelism being measured.
		w, err := testbed.New(testbed.Config{
			Relays:      10,
			BentoNodes:  4,
			Sites:       []*webfarm.Site{site},
			ClockScale:  0.1,
			RelayEgress: 200 * 1024,
		})
		if err != nil {
			return nil, err
		}
		cli := w.NewBentoClient("downloader", seed)
		clock := w.Clock()
		start := clock.Now()
		res, err := functions.MultipathFetch(cli, cli.Nodes(), "big.web", paths)
		elapsed := (clock.Now() - start).Seconds()
		w.Close()
		if err != nil {
			return nil, err
		}
		if len(res.Data) != site.TotalSize() {
			return nil, fmt.Errorf("bench: multipath returned %d bytes", len(res.Data))
		}
		if baseline == 0 {
			baseline = elapsed
		}
		out.Points = append(out.Points, MultipathPoint{
			Paths:   paths,
			Seconds: elapsed,
			Speedup: baseline / elapsed,
		})
	}
	return out, nil
}
