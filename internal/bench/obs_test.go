package bench

import (
	"io"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/cell"
	"github.com/bento-nfv/bento/internal/obs"
)

// TestInstrumentedMicroAllocFree is the regression smoke check.sh runs:
// the relay forwarding inner loop with live telemetry (per-cell counter,
// flush-size histogram) must stay at exactly zero allocations per cell,
// same as the uninstrumented loop.
func TestInstrumentedMicroAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	const batchCells = 64
	reg := obs.NewRegistry()
	fwd := reg.Counter("relay.cells_forwarded")
	flush := reg.Histogram("relay.flush_cells", obs.BatchBuckets)
	layer := microLayer()
	src := &ringReader{frame: microFrame()}
	wire := make([]byte, cell.Size)
	batch := make([]byte, 0, batchCells*cell.Size)

	cycle := func() {
		if err := cell.ReadWire(src, wire); err != nil {
			t.Fatal(err)
		}
		payload := cell.WirePayload(wire)
		layer.ApplyForward(payload)
		if cell.Recognized(payload) && layer.VerifyForward(payload, cell.DigestOffset) {
			t.Fatal("unexpected recognition")
		}
		cell.SetWireCircID(wire, 9)
		fwd.Inc()
		batch = append(batch, wire...)
		if len(batch) == cap(batch) {
			flush.Observe(int64(len(batch) / cell.Size))
			if _, err := io.Discard.Write(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	for i := 0; i < 2*batchCells; i++ {
		cycle() // warm up
	}
	if allocs := testing.AllocsPerRun(500, cycle); allocs != 0 {
		t.Fatalf("instrumented forward path allocates %.2f times per cell, want 0", allocs)
	}
	if fwd.Value() == 0 || flush.Count() == 0 {
		t.Fatal("instrumentation recorded nothing")
	}
}

// stepClock is a hand-cranked SampleClock that also offers Schedule, so
// the Windower runs in scheduler-driven mode and the test fires ticks
// synchronously on its own goroutine. Every method is allocation-free:
// the cancel func is built once, and re-arms only store the (already
// allocated) fire closure.
type stepClock struct {
	now      time.Duration
	pending  func()
	cancelFn func() bool
}

func newStepClock() *stepClock {
	c := &stepClock{}
	c.cancelFn = func() bool { c.pending = nil; return true }
	return c
}

func (c *stepClock) Now() time.Duration                   { return c.now }
func (c *stepClock) After(time.Duration) <-chan time.Time { return nil }
func (c *stepClock) Blocking() func()                     { return func() {} }
func (c *stepClock) Schedule(d time.Duration, f func()) func() bool {
	c.pending = f
	return c.cancelFn
}

// step advances virtual time and fires the pending sampler tick.
func (c *stepClock) step(d time.Duration) {
	c.now += d
	fire := c.pending
	c.pending = nil
	fire()
}

// TestWindowedMicroAllocFree extends the instrumented-forward contract to
// the full telemetry pipeline: the relay inner loop with a live Windower
// sampling its registry every cycle must still perform exactly zero
// allocations — the rolling-window machinery rides along for free once
// its rings are warm.
func TestWindowedMicroAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	const batchCells = 64
	reg := obs.NewRegistry()
	clk := newStepClock()
	reg.SetClock(func() time.Duration { return clk.now })
	fwd := reg.Counter("relay.cells_forwarded")
	flush := reg.Histogram("relay.flush_cells", obs.BatchBuckets)
	wind := obs.NewWindower(reg, obs.WindowConfig{
		Interval: time.Second,
		Slots:    16,
		Clock:    clk,
	})
	defer wind.Close()

	layer := microLayer()
	src := &ringReader{frame: microFrame()}
	wire := make([]byte, cell.Size)
	batch := make([]byte, 0, batchCells*cell.Size)

	cycle := func() {
		if err := cell.ReadWire(src, wire); err != nil {
			t.Fatal(err)
		}
		payload := cell.WirePayload(wire)
		layer.ApplyForward(payload)
		if cell.Recognized(payload) && layer.VerifyForward(payload, cell.DigestOffset) {
			t.Fatal("unexpected recognition")
		}
		cell.SetWireCircID(wire, 9)
		fwd.Inc()
		batch = append(batch, wire...)
		if len(batch) == cap(batch) {
			flush.Observe(int64(len(batch) / cell.Size))
			if _, err := io.Discard.Write(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
		clk.step(time.Second)
	}
	for i := 0; i < 2*batchCells; i++ {
		cycle() // warm up: register series, fill the rings
	}
	if allocs := testing.AllocsPerRun(500, cycle); allocs != 0 {
		t.Fatalf("windowed forward path allocates %.2f times per cell, want 0", allocs)
	}
	if wind.Samples() < 500 {
		t.Fatalf("sampler only took %d samples", wind.Samples())
	}
	if st := wind.Window().Find("relay.cells_forwarded"); st == nil || st.Rate <= 0 {
		t.Fatal("windowed series missing the forward counter's rate")
	}
}

// TestRunObsQuick exercises the ablation end to end at a tiny size so the
// plumbing (shared registry across rounds, evidence counters, JSON shape)
// stays covered by the normal test run. Overhead thresholds are enforced
// by the full-size harness run, not here — a tiny run is all noise.
func TestRunObsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("datapath e2e is CPU-bound")
	}
	cfg := ObsConfig{
		Bytes:      1 << 20,
		Rounds:     1,
		MicroCells: 20_000,
		ClockScale: 0.0002,
		Seed:       1,
	}
	res, reg, err := RunObs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.BaselineMBPerSec <= 0 || res.InstrumentedMBPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v", res)
	}
	if res.CellsForwarded == 0 {
		t.Error("instrumented run forwarded no cells")
	}
	if res.CellsSent == 0 {
		t.Error("instrumented run recorded no client cells")
	}
	if res.SpansRecorded == 0 {
		t.Error("instrumented run recorded no spans")
	}
	snap := reg.Snapshot()
	if snap.Counters["torclient.circuits_built"] == 0 {
		t.Error("no circuit builds recorded")
	}
}
