package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/bento-nfv/bento/internal/cell"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/otr"
	"github.com/bento-nfv/bento/internal/relay"
	"github.com/bento-nfv/bento/internal/testbed"
)

// DatapathConfig sizes the cell-datapath experiment: steady-state
// throughput through a full 3-hop circuit (the path every byte of Figure
// 5's downloads takes) plus an in-process middle-hop forwarding
// microbenchmark that isolates the per-cell codec + crypto cost from the
// emulator's link bookkeeping.
type DatapathConfig struct {
	// Bytes is the payload volume pushed in each direction of the
	// end-to-end test.
	Bytes int
	// MicroCells is the number of cells pumped through the middle-hop
	// microbenchmark per variant.
	MicroCells int
	// ClockScale maps virtual to real time; the datapath experiment wants
	// the emulation CPU-bound, so it runs with near-zero link delay.
	ClockScale float64
	// ParallelCircuits and ParallelCellsPerCircuit size the sharded
	// worker-pool sweep: that many middle-hop circuits fed through
	// relay.RunParallelForwardBench at each GOMAXPROCS setting in
	// ParallelProcs.
	ParallelCircuits        int
	ParallelCellsPerCircuit int
	ParallelProcs           []int
	Seed                    int64
	// Obs, when non-nil, attaches live telemetry to the end-to-end
	// deployment (the observability ablation compares runs with and
	// without it).
	Obs *obs.Registry
}

// DefaultDatapathConfig returns the quick configuration.
func DefaultDatapathConfig() DatapathConfig {
	return DatapathConfig{
		Bytes:                   8 << 20,
		MicroCells:              200_000,
		ClockScale:              0.0002,
		ParallelCircuits:        64,
		ParallelCellsPerCircuit: 3_000,
		ParallelProcs:           []int{1, 2, 4, 8},
		Seed:                    1,
	}
}

// DatapathResult reports steady-state cell throughput. All rates are
// wall-clock (the experiment is configured to be CPU-bound, so wall-clock
// throughput measures the datapath implementation, not the emulated
// network).
type DatapathResult struct {
	// End-to-end 3-hop circuit, client -> exit (forward) and exit ->
	// client (backward).
	ForwardCellsPerSec  float64 `json:"forward_cells_per_sec"`
	ForwardMBPerSec     float64 `json:"forward_mb_per_sec"`
	BackwardCellsPerSec float64 `json:"backward_cells_per_sec"`
	BackwardMBPerSec    float64 `json:"backward_mb_per_sec"`

	// Middle-hop forwarding microbenchmark: read one cell, peel this
	// hop's layer, fail recognition, re-address, and write it out —
	// the steady-state inner loop of every relay on every circuit.
	MicroLegacyCellsPerSec float64 `json:"micro_legacy_cells_per_sec"`
	MicroPooledCellsPerSec float64 `json:"micro_pooled_cells_per_sec"`
	MicroSpeedup           float64 `json:"micro_speedup"`

	// Sharded worker-pool sweep: aggregate middle-hop forwarding
	// throughput across ParallelCircuits circuits, keyed by the
	// GOMAXPROCS value the measurement ran at. ParallelScaling4x is
	// rate(4)/rate(1); HostCPUs records how many cores the host
	// actually had, since scaling numbers taken on a box with fewer
	// cores than GOMAXPROCS measure scheduler overhead, not speedup.
	ParallelForwardCellsPerSec map[string]float64 `json:"parallel_forward_cells_per_sec,omitempty"`
	ParallelScaling4x          float64            `json:"parallel_scaling_4x,omitempty"`
	HostCPUs                   int                `json:"host_cpus"`

	// ForwardFloorCellsPerSec is the regression floor for the
	// single-core end-to-end forward rate; check.sh fails the build if
	// a fresh run lands below it.
	ForwardFloorCellsPerSec float64 `json:"forward_floor_cells_per_sec"`

	Bytes      int   `json:"bytes_per_direction"`
	MicroCells int   `json:"micro_cells"`
	Seed       int64 `json:"seed"`
}

// DatapathForwardFloor is 0.8x the end-to-end forward rate recorded when
// the pooled datapath landed (164105 cells/s); dipping below it means a
// real regression, not run-to-run noise.
const DatapathForwardFloor = 130_000.0

// String renders the result table.
func (r *DatapathResult) String() string {
	var b strings.Builder
	b.WriteString("Datapath: steady-state cell throughput (wall-clock)\n\n")
	fmt.Fprintf(&b, "3-hop circuit, %d MB per direction:\n", r.Bytes>>20)
	fmt.Fprintf(&b, "  forward  (client->exit): %10.0f cells/s  %7.2f MB/s\n",
		r.ForwardCellsPerSec, r.ForwardMBPerSec)
	fmt.Fprintf(&b, "  backward (exit->client): %10.0f cells/s  %7.2f MB/s\n",
		r.BackwardCellsPerSec, r.BackwardMBPerSec)
	fmt.Fprintf(&b, "\nmiddle-hop forward microbenchmark (%d cells):\n", r.MicroCells)
	fmt.Fprintf(&b, "  allocating codec (legacy): %10.0f cells/s\n", r.MicroLegacyCellsPerSec)
	if r.MicroPooledCellsPerSec > 0 {
		fmt.Fprintf(&b, "  zero-copy pooled codec:    %10.0f cells/s  (%.2fx)\n",
			r.MicroPooledCellsPerSec, r.MicroSpeedup)
	}
	if len(r.ParallelForwardCellsPerSec) > 0 {
		fmt.Fprintf(&b, "\nsharded worker-pool sweep (%d-core host):\n", r.HostCPUs)
		for _, p := range []int{1, 2, 4, 8, 16} {
			rate, ok := r.ParallelForwardCellsPerSec[strconv.Itoa(p)]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "  GOMAXPROCS=%-2d %10.0f cells/s\n", p, rate)
		}
		if r.ParallelScaling4x > 0 {
			fmt.Fprintf(&b, "  scaling 4x/1x: %.2fx\n", r.ParallelScaling4x)
		}
	}
	return b.String()
}

// WriteJSONFile records the result machine-readably so the perf
// trajectory across PRs can be tracked.
func (r *DatapathResult) WriteJSONFile(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	return os.WriteFile(path, blob, 0o644)
}

const (
	datapathSinkPort = 9950
	datapathOpUpload = 'U'
	datapathOpDown   = 'D'
)

// RunDatapath measures the cell datapath end to end and in isolation.
func RunDatapath(cfg DatapathConfig) (*DatapathResult, error) {
	if cfg.Bytes < cell.MaxRelayData || cfg.MicroCells < 1 {
		return nil, fmt.Errorf("bench: bad datapath config %+v", cfg)
	}
	res := &DatapathResult{
		Bytes:                   cfg.Bytes,
		MicroCells:              cfg.MicroCells,
		Seed:                    cfg.Seed,
		HostCPUs:                runtime.NumCPU(),
		ForwardFloorCellsPerSec: DatapathForwardFloor,
	}

	if err := runDatapathE2E(cfg, res); err != nil {
		return nil, err
	}
	runDatapathMicro(cfg, res)
	runDatapathParallel(cfg, res)
	return res, nil
}

// runDatapathParallel sweeps GOMAXPROCS and drives the relay's real
// worker-pool forwarding path (sharded circuit table, per-circuit worker
// affinity, batched crypto) over many circuits at once. This is the
// experiment the end-to-end run cannot express: the 3-hop meter circuit
// is a single ordered cell stream, so its rate is one circuit's rate no
// matter how many cores exist.
func runDatapathParallel(cfg DatapathConfig, res *DatapathResult) {
	if cfg.ParallelCircuits < 1 || cfg.ParallelCellsPerCircuit < 1 || len(cfg.ParallelProcs) == 0 {
		return
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	res.ParallelForwardCellsPerSec = make(map[string]float64, len(cfg.ParallelProcs))
	for _, p := range cfg.ParallelProcs {
		runtime.GOMAXPROCS(p)
		rate := relay.RunParallelForwardBench(p, cfg.ParallelCircuits, cfg.ParallelCellsPerCircuit)
		res.ParallelForwardCellsPerSec[strconv.Itoa(p)] = rate
	}
	r1, ok1 := res.ParallelForwardCellsPerSec["1"]
	r4, ok4 := res.ParallelForwardCellsPerSec["4"]
	if ok1 && ok4 && r1 > 0 {
		res.ParallelScaling4x = r4 / r1
	}
}

// runDatapathE2E pushes cfg.Bytes through a 3-hop circuit in each
// direction against a sink host and records wall-clock rates. Link delay
// is near zero and egress unlimited, so throughput is bounded by the
// datapath implementation (codec, crypto, per-cell bookkeeping), which is
// exactly what this experiment tracks.
func runDatapathE2E(cfg DatapathConfig, res *DatapathResult) error {
	w, err := testbed.New(testbed.Config{
		Relays:     3,
		BentoNodes: 0,
		ClockScale: cfg.ClockScale,
		LinkDelay:  time.Microsecond,
		Obs:        cfg.Obs,
	})
	if err != nil {
		return err
	}
	defer w.Close()

	sinkHost := w.Net.AddHost("sink", 0)
	ln, err := sinkHost.Listen(datapathSinkPort)
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serveDatapathSink(conn)
		}
	}()

	cli := w.NewTorClient("meter", cfg.Seed)
	path := w.Consensus.Relays
	if len(path) < 3 {
		return fmt.Errorf("bench: want 3 relays, consensus has %d", len(path))
	}
	circ, err := cli.BuildCircuit(path[:3])
	if err != nil {
		return err
	}
	defer circ.Close()

	stream, err := circ.OpenStream(fmt.Sprintf("sink:%d", datapathSinkPort))
	if err != nil {
		return err
	}
	defer stream.Close()

	cells := float64((cfg.Bytes + cell.MaxRelayData - 1) / cell.MaxRelayData)
	mb := float64(cfg.Bytes) / (1 << 20)

	// Forward: upload cfg.Bytes, wait for the sink's 1-byte ack so the
	// clock covers full delivery.
	var hdr [9]byte
	hdr[0] = datapathOpUpload
	binary.BigEndian.PutUint64(hdr[1:], uint64(cfg.Bytes))
	payload := make([]byte, 64<<10)
	start := time.Now()
	if _, err := stream.Write(hdr[:]); err != nil {
		return err
	}
	remaining := cfg.Bytes
	for remaining > 0 {
		n := len(payload)
		if n > remaining {
			n = remaining
		}
		if _, err := stream.Write(payload[:n]); err != nil {
			return err
		}
		remaining -= n
	}
	var ack [1]byte
	if _, err := io.ReadFull(stream, ack[:]); err != nil {
		return fmt.Errorf("bench: upload ack: %w", err)
	}
	fwd := time.Since(start).Seconds()
	res.ForwardCellsPerSec = cells / fwd
	res.ForwardMBPerSec = mb / fwd

	// Backward: ask the sink to stream cfg.Bytes down.
	hdr[0] = datapathOpDown
	start = time.Now()
	if _, err := stream.Write(hdr[:]); err != nil {
		return err
	}
	got := 0
	for got < cfg.Bytes {
		n, err := stream.Read(payload)
		got += n
		if err != nil {
			return fmt.Errorf("bench: download after %d bytes: %w", got, err)
		}
	}
	bwd := time.Since(start).Seconds()
	res.BackwardCellsPerSec = cells / bwd
	res.BackwardMBPerSec = mb / bwd
	return nil
}

// serveDatapathSink speaks the trivial meter protocol: 'U'+n = drain n
// bytes then ack, 'D'+n = write n bytes.
func serveDatapathSink(conn io.ReadWriteCloser) {
	defer conn.Close()
	buf := make([]byte, 64<<10)
	for {
		var hdr [9]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint64(hdr[1:]))
		switch hdr[0] {
		case datapathOpUpload:
			if _, err := io.CopyN(io.Discard, conn, int64(n)); err != nil {
				return
			}
			if _, err := conn.Write([]byte{1}); err != nil {
				return
			}
		case datapathOpDown:
			remaining := n
			for remaining > 0 {
				c := len(buf)
				if c > remaining {
					c = remaining
				}
				if _, err := conn.Write(buf[:c]); err != nil {
					return
				}
				remaining -= c
			}
		default:
			return
		}
	}
}

// runDatapathMicro measures one relay's forwarding inner loop in
// isolation: read a cell, apply this hop's forward keystream, fail
// recognition, re-address it to the next hop, and write it out.
func runDatapathMicro(cfg DatapathConfig, res *DatapathResult) {
	res.MicroLegacyCellsPerSec = runMicroLegacy(cfg.MicroCells)
	res.MicroPooledCellsPerSec = runMicroPooled(cfg.MicroCells)
	if res.MicroLegacyCellsPerSec > 0 && res.MicroPooledCellsPerSec > 0 {
		res.MicroSpeedup = res.MicroPooledCellsPerSec / res.MicroLegacyCellsPerSec
	}
}

// microLayer builds one relay-side crypto layer from fixed key material.
func microLayer() *otr.Layer {
	keys := make([]byte, otr.KeyMaterialLen)
	for i := range keys {
		keys[i] = byte(i*7 + 3)
	}
	l, err := otr.NewLayer(keys)
	if err != nil {
		panic(err)
	}
	return l
}

// ringReader serves the same wire frame forever, modeling a saturated
// inbound link without emulator overhead.
type ringReader struct {
	frame []byte
	off   int
}

func (r *ringReader) Read(p []byte) (int, error) {
	n := copy(p, r.frame[r.off:])
	r.off = (r.off + n) % len(r.frame)
	return n, nil
}

func microFrame() []byte {
	frame := make([]byte, cell.Size)
	c := &cell.Cell{CircID: 7, Cmd: cell.CmdRelay}
	for i := range c.Payload {
		c.Payload[i] = byte(i*13 + 1)
	}
	copy(frame, c.Marshal())
	return frame
}

// runMicroLegacy is the pre-refactor forwarding loop: allocating
// cell.Read, an intermediate Cell value, and an allocating Marshal on the
// way out (kept in the cell package as the compatibility codec).
func runMicroLegacy(cells int) float64 {
	layer := microLayer()
	src := &ringReader{frame: microFrame()}
	start := time.Now()
	for i := 0; i < cells; i++ {
		c, err := cell.Read(src)
		if err != nil {
			panic(err)
		}
		payload := c.Payload[:]
		layer.ApplyForward(payload)
		if cell.Recognized(payload) && layer.VerifyForward(payload, cell.DigestOffset) {
			continue // not expected: frames are addressed further down
		}
		fwd := &cell.Cell{CircID: 9, Cmd: cell.CmdRelay}
		copy(fwd.Payload[:], payload)
		if err := cell.Write(io.Discard, fwd); err != nil {
			panic(err)
		}
	}
	return float64(cells) / time.Since(start).Seconds()
}

// runMicroPooled is the post-refactor forwarding loop: one reused wire
// buffer, in-place decrypt, in-place circuit-ID rewrite, and batched
// writes (mirroring the per-link BatchWriter, which coalesces up to a
// bounded number of queued cells into a single conn.Write).
func runMicroPooled(cells int) float64 {
	const batchCells = 64
	layer := microLayer()
	src := &ringReader{frame: microFrame()}
	wire := make([]byte, cell.Size)
	batch := make([]byte, 0, batchCells*cell.Size)
	start := time.Now()
	for i := 0; i < cells; i++ {
		if err := cell.ReadWire(src, wire); err != nil {
			panic(err)
		}
		payload := cell.WirePayload(wire)
		layer.ApplyForward(payload)
		if cell.Recognized(payload) && layer.VerifyForward(payload, cell.DigestOffset) {
			continue // not expected: frames are addressed further down
		}
		cell.SetWireCircID(wire, 9)
		batch = append(batch, wire...)
		if len(batch) == cap(batch) {
			if _, err := io.Discard.Write(batch); err != nil {
				panic(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		io.Discard.Write(batch)
	}
	return float64(cells) / time.Since(start).Seconds()
}
