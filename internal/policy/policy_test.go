package policy

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseExitPolicy(t *testing.T) {
	p, err := ParseExitPolicy("accept *:80", "accept *:443", "reject *:*")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		host string
		port int
		want bool
	}{
		{"example.org", 80, true},
		{"example.org", 443, true},
		{"example.org", 22, false},
		{"anything", 8080, false},
	}
	for _, c := range cases {
		if got := p.Allows(c.host, c.port); got != c.want {
			t.Errorf("Allows(%s,%d) = %v, want %v", c.host, c.port, got, c.want)
		}
	}
}

func TestExitPolicyFirstMatchWins(t *testing.T) {
	p, err := ParseExitPolicy("reject evil:*", "accept *:*")
	if err != nil {
		t.Fatal(err)
	}
	if p.Allows("evil", 80) {
		t.Fatal("reject rule not applied first")
	}
	if !p.Allows("good", 80) {
		t.Fatal("fallthrough accept not applied")
	}
}

func TestExitPolicyHostSpecificPort(t *testing.T) {
	p, err := ParseExitPolicy("accept web:80", "reject *:*")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Allows("web", 80) || p.Allows("web", 81) || p.Allows("other", 80) {
		t.Fatal("host:port rule misapplied")
	}
}

func TestExitPolicyDefaults(t *testing.T) {
	if !AcceptAll().Allows("x", 1) {
		t.Fatal("AcceptAll rejected")
	}
	if RejectAll().Allows("x", 1) {
		t.Fatal("RejectAll accepted")
	}
	var nilPolicy *ExitPolicy
	if nilPolicy.Allows("x", 1) {
		t.Fatal("nil policy accepted")
	}
}

func TestParseExitPolicyErrors(t *testing.T) {
	bad := []string{
		"allow *:80",     // bad verb
		"accept *",       // missing port separator
		"accept",         // missing target
		"accept *:99999", // port out of range
		"accept *:xyz",   // non-numeric port
		"accept :80",     // empty host
		"accept a b c",   // too many fields
		"reject *:0",     // port zero invalid in text form
	}
	for _, line := range bad {
		if _, err := ParseExitPolicy(line); err == nil {
			t.Errorf("ParseExitPolicy(%q) succeeded, want error", line)
		}
	}
	// Blank lines are skipped.
	p, err := ParseExitPolicy("", "accept *:*", "  ")
	if err != nil || len(p.Rules) != 1 {
		t.Fatalf("blank-line handling: %v, %d rules", err, len(p.Rules))
	}
}

func TestExitPolicyStringRoundTrip(t *testing.T) {
	p, _ := ParseExitPolicy("accept *:80", "reject bad:*", "accept *:*")
	s := p.String()
	back, err := ParseExitPolicy(strings.Split(s, ",")...)
	if err != nil {
		t.Fatalf("re-parsing %q: %v", s, err)
	}
	if len(back.Rules) != len(p.Rules) {
		t.Fatalf("rule count changed: %d -> %d", len(p.Rules), len(back.Rules))
	}
	for i := range p.Rules {
		if back.Rules[i] != p.Rules[i] {
			t.Fatalf("rule %d changed: %+v -> %+v", i, p.Rules[i], back.Rules[i])
		}
	}
}

func TestExitPolicyJSON(t *testing.T) {
	p, _ := ParseExitPolicy("accept *:80", "reject *:*")
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back ExitPolicy
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Allows("h", 80) || back.Allows("h", 81) {
		t.Fatal("JSON round trip lost semantics")
	}
	if err := json.Unmarshal([]byte(`"garbage rule"`), &back); err == nil {
		t.Fatal("garbage policy accepted")
	}
}

func TestMiddleboxAllows(t *testing.T) {
	m := DefaultMiddlebox()
	if !m.AllowsCall("net.dial") {
		t.Fatal("default policy denies net.dial")
	}
	if m.AllowsCall("os.exec") {
		t.Fatal("default policy allows os.exec")
	}
	if !m.OffersImage("python") || !m.OffersImage("python-op-sgx") {
		t.Fatal("default images missing")
	}
	if m.OffersImage("rootkit") {
		t.Fatal("unknown image offered")
	}
}

func TestManifestCheckSubset(t *testing.T) {
	m := DefaultMiddlebox()
	ok := &Manifest{
		Name:         "browser",
		Image:        "python-op-sgx",
		Calls:        []string{"net.dial", "tor.send"},
		Memory:       16 << 20,
		Instructions: 1_000_000,
		Storage:      1 << 20,
	}
	if err := Check(m, ok); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}

func TestManifestCheckViolations(t *testing.T) {
	m := DefaultMiddlebox()
	cases := []struct {
		name string
		man  Manifest
	}{
		{"forbidden call", Manifest{Calls: []string{"os.exec"}}},
		{"too much memory", Manifest{Memory: m.MaxMemory + 1}},
		{"too many instructions", Manifest{Instructions: m.MaxInstructions + 1}},
		{"too much storage", Manifest{Storage: m.MaxStorage + 1}},
		{"unknown image", Manifest{Image: "custom-evil"}},
	}
	for _, c := range cases {
		if err := Check(m, &c.man); err == nil {
			t.Errorf("%s: manifest accepted", c.name)
		}
	}
	if err := Check(nil, &Manifest{}); err == nil {
		t.Error("nil policy accepted")
	}
	if err := Check(m, nil); err == nil {
		t.Error("nil manifest accepted")
	}
}

// Property: manifest ⊆ policy ⇔ Check passes, for generated call sets.
func TestManifestSubsetProperty(t *testing.T) {
	universe := []string{"net.dial", "fs.read", "fs.write", "tor.send", "os.exec", "kernel.patch"}
	m := &Middlebox{
		Calls:           []string{"net.dial", "fs.read", "fs.write", "tor.send"},
		MaxMemory:       1 << 20,
		MaxInstructions: 1000,
		MaxStorage:      1 << 20,
		MaxContainers:   1,
		Images:          []string{"python"},
	}
	check := func(mask uint8) bool {
		var calls []string
		subset := true
		for i, c := range universe {
			if mask&(1<<i) != 0 {
				calls = append(calls, c)
				if !m.AllowsCall(c) {
					subset = false
				}
			}
		}
		err := Check(m, &Manifest{Calls: calls})
		return (err == nil) == subset
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
