// Package policy implements the two policy mechanisms of the Bento
// architecture: Tor-style exit-node policies (which constrain where a relay
// will open outbound connections, and which Bento converts into per-
// container network filters) and middlebox node policies with function
// manifests (§5.5 of the paper), which constrain what API calls and
// resources a function may use on a given Bento server.
package policy

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// ExitRule is one accept/reject rule of an exit policy.
type ExitRule struct {
	Accept bool
	Host   string // exact host name or "*"
	Port   int    // port number, or 0 meaning any
}

// ExitPolicy is an ordered list of rules; the first matching rule wins.
// An empty policy rejects everything (a non-exit relay).
type ExitPolicy struct {
	Rules []ExitRule
}

// ParseExitPolicy parses rules of the form "accept host:port" /
// "reject host:port" where host may be "*" and port may be "*".
func ParseExitPolicy(lines ...string) (*ExitPolicy, error) {
	p := &ExitPolicy{}
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("policy: bad exit rule %q", line)
		}
		var accept bool
		switch fields[0] {
		case "accept":
			accept = true
		case "reject":
			accept = false
		default:
			return nil, fmt.Errorf("policy: bad exit rule verb %q", fields[0])
		}
		i := strings.LastIndex(fields[1], ":")
		if i < 0 {
			return nil, fmt.Errorf("policy: bad exit rule target %q", fields[1])
		}
		host, portStr := fields[1][:i], fields[1][i+1:]
		if host == "" {
			return nil, fmt.Errorf("policy: empty host in rule %q", line)
		}
		port := 0
		if portStr != "*" {
			n, err := strconv.Atoi(portStr)
			if err != nil || n < 1 || n > 65535 {
				return nil, fmt.Errorf("policy: bad port in rule %q", line)
			}
			port = n
		}
		p.Rules = append(p.Rules, ExitRule{Accept: accept, Host: host, Port: port})
	}
	return p, nil
}

// AcceptAll returns a policy permitting every destination.
func AcceptAll() *ExitPolicy {
	return &ExitPolicy{Rules: []ExitRule{{Accept: true, Host: "*", Port: 0}}}
}

// RejectAll returns a policy permitting nothing (a non-exit relay).
func RejectAll() *ExitPolicy { return &ExitPolicy{} }

// Allows reports whether the policy permits connecting to host:port.
func (p *ExitPolicy) Allows(host string, port int) bool {
	if p == nil {
		return false
	}
	for _, r := range p.Rules {
		if r.Host != "*" && r.Host != host {
			continue
		}
		if r.Port != 0 && r.Port != port {
			continue
		}
		return r.Accept
	}
	return false
}

// String renders the policy in its parseable form.
func (p *ExitPolicy) String() string {
	if p == nil || len(p.Rules) == 0 {
		return "reject *:*"
	}
	var b strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			b.WriteString(",")
		}
		verb := "reject"
		if r.Accept {
			verb = "accept"
		}
		port := "*"
		if r.Port != 0 {
			port = strconv.Itoa(r.Port)
		}
		fmt.Fprintf(&b, "%s %s:%s", verb, r.Host, port)
	}
	return b.String()
}

// MarshalJSON encodes the policy as its string form.
func (p *ExitPolicy) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON decodes the policy from its string form.
func (p *ExitPolicy) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseExitPolicy(strings.Split(s, ",")...)
	if err != nil {
		return err
	}
	p.Rules = parsed.Rules
	return nil
}

// Middlebox is a middlebox node policy (§5.5): boolean values over the set
// of API calls Bento exposes to functions, plus resource ceilings. Like
// exit policies, it is published so clients can discover what a node is
// willing to run.
type Middlebox struct {
	// Calls lists the permitted API calls, e.g. "net.dial", "fs.write",
	// "stem.create_circuit". A call absent from the list is denied.
	Calls []string `json:"calls"`
	// MaxMemory is the per-function memory ceiling in bytes.
	MaxMemory int64 `json:"max_memory"`
	// MaxInstructions is the per-invocation interpreter instruction budget.
	MaxInstructions int64 `json:"max_instructions"`
	// MaxStorage is the per-function chroot storage ceiling in bytes.
	MaxStorage int64 `json:"max_storage"`
	// MaxContainers bounds concurrently running containers.
	MaxContainers int `json:"max_containers"`
	// Images lists the container images the operator offers, e.g.
	// "python", "python-op-sgx".
	Images []string `json:"images"`
	// SpawnPoWBits, when nonzero, demands a hashcash proof of this
	// difficulty with every container spawn — the §6.2/§11 "proofs of
	// work" rate limit against function flooding.
	SpawnPoWBits int `json:"spawn_pow_bits,omitempty"`
}

// DefaultMiddlebox returns a permissive policy suitable for tests and the
// example topologies: all standard API calls, both standard images.
func DefaultMiddlebox() *Middlebox {
	return &Middlebox{
		Calls: []string{
			"net.dial", "fs.read", "fs.write", "tor.send",
			"stem.create_circuit", "stem.launch_hs", "stem.close_circuit",
			"bento.compose", "clock.now", "clock.sleep", "log",
		},
		MaxMemory:       32 << 20,
		MaxInstructions: 50_000_000,
		MaxStorage:      64 << 20,
		MaxContainers:   16,
		Images:          []string{"python", "python-op-sgx"},
	}
}

// AllowsCall reports whether the policy permits an API call.
func (m *Middlebox) AllowsCall(call string) bool {
	for _, c := range m.Calls {
		if c == call {
			return true
		}
	}
	return false
}

// OffersImage reports whether the operator provides the named container
// image.
func (m *Middlebox) OffersImage(image string) bool {
	for _, im := range m.Images {
		if im == image {
			return true
		}
	}
	return false
}

// Manifest is a function manifest (§5.5): the permissions a function
// requests, compared against the node's middlebox policy before the
// function is accepted. The sandbox is then constrained to exactly the
// manifest's requests, even where the node policy would allow more.
type Manifest struct {
	Name         string   `json:"name"`
	Image        string   `json:"image"`
	Calls        []string `json:"calls"`
	Memory       int64    `json:"memory"`
	Instructions int64    `json:"instructions"`
	Storage      int64    `json:"storage"`
	// Restart is the function's restart policy, applied by the server's
	// watchdog when the function dies (killed, instruction budget, or
	// memory limit): RestartNever (default), RestartOnFailure, or
	// RestartAlways. Restarts preserve the container's private filesystem
	// and both capability tokens.
	Restart string `json:"restart,omitempty"`
}

// Restart policies a manifest may request.
const (
	RestartNever     = "never"
	RestartOnFailure = "on-failure"
	RestartAlways    = "always"
)

// Check verifies that the manifest's requests are a subset of what the
// middlebox policy permits. It returns nil if the function may run.
func Check(m *Middlebox, man *Manifest) error {
	if m == nil || man == nil {
		return fmt.Errorf("policy: nil policy or manifest")
	}
	if man.Image != "" && !m.OffersImage(man.Image) {
		return fmt.Errorf("policy: image %q not offered", man.Image)
	}
	for _, call := range man.Calls {
		if !m.AllowsCall(call) {
			return fmt.Errorf("policy: call %q not permitted by node policy", call)
		}
	}
	if man.Memory > m.MaxMemory {
		return fmt.Errorf("policy: requested memory %d exceeds limit %d", man.Memory, m.MaxMemory)
	}
	if man.Instructions > m.MaxInstructions {
		return fmt.Errorf("policy: requested instructions %d exceed limit %d", man.Instructions, m.MaxInstructions)
	}
	if man.Storage > m.MaxStorage {
		return fmt.Errorf("policy: requested storage %d exceeds limit %d", man.Storage, m.MaxStorage)
	}
	switch man.Restart {
	case "", RestartNever, RestartOnFailure, RestartAlways:
	default:
		return fmt.Errorf("policy: unknown restart policy %q", man.Restart)
	}
	return nil
}
