package testbed

import (
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/webfarm"
)

func TestNewDefaults(t *testing.T) {
	w, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(w.Relays) != 6 {
		t.Fatalf("got %d relays, want default 6", len(w.Relays))
	}
	if len(w.Consensus.Relays) != 6 {
		t.Fatalf("consensus has %d relays", len(w.Consensus.Relays))
	}
}

func TestBentoNodesAdvertised(t *testing.T) {
	w, err := New(Config{Relays: 5, BentoNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	nodes := w.Consensus.BentoNodes()
	if len(nodes) != 2 {
		t.Fatalf("got %d Bento nodes, want 2", len(nodes))
	}
	if w.BentoNode(0) == nil || w.BentoNode(2) != nil || w.BentoNode(-1) != nil {
		t.Fatal("BentoNode indexing broken")
	}
	if len(w.Servers) != 2 {
		t.Fatalf("got %d servers", len(w.Servers))
	}
}

func TestFastFlagAssignment(t *testing.T) {
	w, err := New(Config{Relays: 4, BentoNodes: 2, BentoEgress: 100 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i, d := range w.Consensus.WithFlag(dirauth.FlagBento) {
		if d.HasFlag(dirauth.FlagFast) {
			t.Errorf("capped Bento node %d carries Fast flag", i)
		}
	}
	fast := w.Consensus.WithFlag(dirauth.FlagFast)
	if len(fast) != 2 {
		t.Fatalf("got %d Fast relays, want the 2 uncapped ones", len(fast))
	}
}

func TestSitesServed(t *testing.T) {
	site := webfarm.NamedSite("hello.web", 2000, nil)
	w, err := New(Config{Relays: 3, Sites: []*webfarm.Site{site}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	cli := w.NewTorClient("probe", 1)
	body, err := webfarm.Get(cli.Host().Dial, "hello.web", "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 2000 {
		t.Fatalf("served %d bytes", len(body))
	}
}

// TestSitesServedEventClock runs the same end-to-end fetch — directory
// bootstrap, 3-hop circuit build, HTTP over the circuit — on the
// discrete-event clock, proving the full stack's goroutine code
// interoperates with the virtual-time scheduler.
func TestSitesServedEventClock(t *testing.T) {
	site := webfarm.NamedSite("hello.web", 2000, nil)
	w, err := New(Config{Relays: 3, Sites: []*webfarm.Site{site}, EventClock: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if !w.Clock().EventDriven() {
		t.Fatal("EventClock config did not select the event core")
	}
	cli := w.NewTorClient("probe", 1)
	body, err := webfarm.Get(cli.Host().Dial, "hello.web", "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 2000 {
		t.Fatalf("served %d bytes", len(body))
	}
}

// TestWindowerOnEventClock proves the deployment-owned sampler ticks in
// virtual time: on the discrete-event clock a full fetch advances the
// clock seconds in microseconds of wall time, and the windower must
// have sampled once per virtual interval along the way — not once per
// wall interval (which would be zero samples).
func TestWindowerOnEventClock(t *testing.T) {
	site := webfarm.NamedSite("hello.web", 2000, nil)
	reg := obs.NewRegistry()
	w, err := New(Config{
		Relays:     3,
		Sites:      []*webfarm.Site{site},
		EventClock: true,
		Obs:        reg,
		ObsWindow:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	wind := w.Windower()
	if wind == nil {
		t.Fatal("ObsWindow set but no windower")
	}
	sub := wind.Subscribe(64)
	cli := w.NewTorClient("probe", 1)
	if _, err := webfarm.Get(cli.Host().Dial, "hello.web", "/"); err != nil {
		t.Fatal(err)
	}
	start := w.Clock().Now()
	w.Clock().Sleep(2 * time.Second)
	elapsed := w.Clock().Now() - start
	samples := wind.Samples()
	if want := uint64(elapsed / (250 * time.Millisecond)); samples < want {
		t.Fatalf("sampler took %d samples over %v virtual, want >= %d", samples, elapsed, want)
	}
	// The published windows carry virtual timestamps and the fetch's
	// traffic.
	var sawBytes bool
	ws := wind.Window()
	if ws == nil {
		t.Fatal("no window snapshot")
	}
	if st := ws.Find("simnet.bytes_sent"); st != nil && st.Last > 0 {
		sawBytes = true
	}
	if !sawBytes {
		t.Fatal("windowed series missing the fetch's simnet.bytes_sent")
	}
	drainTo := time.Duration(0)
	for {
		select {
		case snap := <-sub.C():
			if snap.At > drainTo {
				drainTo = snap.At
			}
			continue
		default:
		}
		break
	}
	if drainTo == 0 {
		t.Fatal("stream delivered no windows")
	}
	sub.Close()
}

func TestWindowerNilWithoutObs(t *testing.T) {
	w, err := New(Config{Relays: 3, ObsWindow: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Windower() != nil {
		t.Fatal("windower started without a registry")
	}
	w.Windower().Close() // nil no-op contract
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Relays: 2, BentoNodes: 5}); err == nil {
		t.Fatal("BentoNodes > Relays accepted")
	}
}
