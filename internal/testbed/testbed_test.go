package testbed

import (
	"testing"

	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/webfarm"
)

func TestNewDefaults(t *testing.T) {
	w, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(w.Relays) != 6 {
		t.Fatalf("got %d relays, want default 6", len(w.Relays))
	}
	if len(w.Consensus.Relays) != 6 {
		t.Fatalf("consensus has %d relays", len(w.Consensus.Relays))
	}
}

func TestBentoNodesAdvertised(t *testing.T) {
	w, err := New(Config{Relays: 5, BentoNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	nodes := w.Consensus.BentoNodes()
	if len(nodes) != 2 {
		t.Fatalf("got %d Bento nodes, want 2", len(nodes))
	}
	if w.BentoNode(0) == nil || w.BentoNode(2) != nil || w.BentoNode(-1) != nil {
		t.Fatal("BentoNode indexing broken")
	}
	if len(w.Servers) != 2 {
		t.Fatalf("got %d servers", len(w.Servers))
	}
}

func TestFastFlagAssignment(t *testing.T) {
	w, err := New(Config{Relays: 4, BentoNodes: 2, BentoEgress: 100 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i, d := range w.Consensus.WithFlag(dirauth.FlagBento) {
		if d.HasFlag(dirauth.FlagFast) {
			t.Errorf("capped Bento node %d carries Fast flag", i)
		}
	}
	fast := w.Consensus.WithFlag(dirauth.FlagFast)
	if len(fast) != 2 {
		t.Fatalf("got %d Fast relays, want the 2 uncapped ones", len(fast))
	}
}

func TestSitesServed(t *testing.T) {
	site := webfarm.NamedSite("hello.web", 2000, nil)
	w, err := New(Config{Relays: 3, Sites: []*webfarm.Site{site}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	cli := w.NewTorClient("probe", 1)
	body, err := webfarm.Get(cli.Host().Dial, "hello.web", "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 2000 {
		t.Fatalf("served %d bytes", len(body))
	}
}

// TestSitesServedEventClock runs the same end-to-end fetch — directory
// bootstrap, 3-hop circuit build, HTTP over the circuit — on the
// discrete-event clock, proving the full stack's goroutine code
// interoperates with the virtual-time scheduler.
func TestSitesServedEventClock(t *testing.T) {
	site := webfarm.NamedSite("hello.web", 2000, nil)
	w, err := New(Config{Relays: 3, Sites: []*webfarm.Site{site}, EventClock: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if !w.Clock().EventDriven() {
		t.Fatal("EventClock config did not select the event core")
	}
	cli := w.NewTorClient("probe", 1)
	body, err := webfarm.Get(cli.Host().Dial, "hello.web", "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 2000 {
		t.Fatalf("served %d bytes", len(body))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Relays: 2, BentoNodes: 5}); err == nil {
		t.Fatal("BentoNodes > Relays accepted")
	}
}
