// Package testbed assembles complete Bento deployments for tests,
// examples, and the experiment harness: an emulated network, a directory
// authority, relays (some running Bento servers with the standard function
// API), an attestation service, and an optional web farm.
package testbed

import (
	"fmt"
	"time"

	"github.com/bento-nfv/bento/internal/bento"
	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/enclave"
	"github.com/bento-nfv/bento/internal/fleet"
	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/relay"
	"github.com/bento-nfv/bento/internal/simnet"
	"github.com/bento-nfv/bento/internal/torclient"
	"github.com/bento-nfv/bento/internal/webfarm"
)

// Config describes a deployment.
type Config struct {
	// Relays is the total relay count (default 6).
	Relays int
	// BentoNodes is how many relays also run Bento servers (default 2).
	BentoNodes int
	// Families, when nonzero, groups relays into this many operator
	// families round-robin (relay i declares family "fam<i mod Families>").
	// Zero leaves families undeclared, so every relay is its own fault
	// domain. The fleet controller's anti-affinity placement spreads
	// replicas across distinct families.
	Families int
	// Sites are served from dedicated web hosts named by their domains.
	Sites []*webfarm.Site
	// ClockScale maps virtual to real time (default 0.0005 = 2000x).
	// Ignored when EventClock is set.
	ClockScale float64
	// EventClock runs the deployment on the discrete-event clock:
	// virtual time advances event-to-event instead of at a scaled real
	// rate, so idle stretches are free and timing is load-independent.
	EventClock bool
	// LinkDelay is the default one-way propagation delay (default 2ms).
	LinkDelay time.Duration
	// RelayEgress caps each relay's uplink in bytes per virtual second
	// (0 = unlimited).
	RelayEgress float64
	// BentoEgress, when nonzero, overrides RelayEgress for Bento-hosting
	// relays (the serving bottleneck in the Figure 5 experiment).
	BentoEgress float64
	// WebEgress caps each web host's uplink (0 = unlimited).
	WebEgress float64
	// Quiet silences relay logging (default true via NewQuiet callers).
	Verbose bool
	// Obs, when non-nil, is attached to the network before any component
	// starts, so every layer registers its metrics and spans there. The
	// registry's clock is rebound to the deployment's virtual clock.
	Obs *obs.Registry
	// ObsWindow, when nonzero alongside Obs, starts a rolling-window
	// sampler over the registry on the deployment's virtual clock.
	// World.Windower exposes it for dashboards and autoscalers; Close
	// stops it.
	ObsWindow time.Duration
	// BentoEngine selects the bscript engine for Bento servers ("" = the
	// default bytecode VM, "tree" = reference tree-walker); the interp
	// benchmark uses it to compare the two end to end.
	BentoEngine string
}

// World is a running deployment.
type World struct {
	Net       *simnet.Network
	Auth      *dirauth.Authority
	Consensus *dirauth.Consensus
	IAS       *enclave.AttestationService
	Relays    []*relay.Relay
	Servers   []*bento.Server
	Web       []*webfarm.Server

	wind      *obs.Windower
	clientSeq int
}

// New builds and starts a deployment.
func New(cfg Config) (*World, error) {
	if cfg.Relays <= 0 {
		cfg.Relays = 6
	}
	if cfg.BentoNodes < 0 || cfg.BentoNodes > cfg.Relays {
		return nil, fmt.Errorf("testbed: BentoNodes %d out of range", cfg.BentoNodes)
	}
	if cfg.ClockScale <= 0 {
		cfg.ClockScale = 0.0005
	}
	if cfg.LinkDelay == 0 {
		cfg.LinkDelay = 2 * time.Millisecond
	}

	clock := simnet.NewClock(cfg.ClockScale)
	if cfg.EventClock {
		clock = simnet.NewEventClock()
	}
	n := simnet.NewNetwork(clock, cfg.LinkDelay)
	if cfg.Obs != nil {
		cfg.Obs.SetClock(n.Clock().Now)
		n.SetObs(cfg.Obs)
	}
	auth, err := dirauth.NewAuthority()
	if err != nil {
		return nil, err
	}
	ias, err := enclave.NewAttestationService()
	if err != nil {
		return nil, err
	}
	w := &World{Net: n, Auth: auth, IAS: ias}
	if cfg.Obs != nil && cfg.ObsWindow > 0 {
		// *simnet.Clock satisfies obs.SampleClock structurally, so the
		// sampler ticks in virtual time (and parks correctly under the
		// event clock).
		w.wind = obs.NewWindower(cfg.Obs, obs.WindowConfig{
			Interval: cfg.ObsWindow,
			Clock:    n.Clock(),
		})
	}

	exitPol, err := policy.ParseExitPolicy(
		fmt.Sprintf("accept localhost:%d", bento.Port),
		"accept *:*",
	)
	if err != nil {
		return nil, err
	}

	type bentoHost struct{ host *simnet.Host }
	var bentoHosts []bentoHost
	for i := 0; i < cfg.Relays; i++ {
		name := fmt.Sprintf("relay%d", i)
		egress := cfg.RelayEgress
		if i < cfg.BentoNodes && cfg.BentoEgress != 0 {
			egress = cfg.BentoEgress
		}
		host := n.AddHost(name, egress)
		flags := []string{dirauth.FlagGuard, dirauth.FlagExit, dirauth.FlagHSDir}
		if egress == 0 || (cfg.BentoEgress != 0 && egress > cfg.BentoEgress) {
			flags = append(flags, dirauth.FlagFast)
		}
		rcfg := relay.Config{
			Nickname:   name,
			Flags:      flags,
			ExitPolicy: exitPol,
			Quiet:      !cfg.Verbose,
		}
		if cfg.Families > 0 {
			rcfg.Family = fmt.Sprintf("fam%d", i%cfg.Families)
		}
		if i < cfg.BentoNodes {
			rcfg.Flags = append(rcfg.Flags, dirauth.FlagBento)
			rcfg.Middlebox = policy.DefaultMiddlebox()
			rcfg.BentoAddr = fmt.Sprintf("%s:%d", name, bento.Port)
		}
		r, err := relay.New(host, rcfg)
		if err != nil {
			w.Close()
			return nil, err
		}
		if err := r.ServeHSDir(); err != nil {
			w.Close()
			return nil, err
		}
		d, err := r.Descriptor()
		if err != nil {
			w.Close()
			return nil, err
		}
		if err := auth.Publish(d); err != nil {
			w.Close()
			return nil, err
		}
		w.Relays = append(w.Relays, r)
		if i < cfg.BentoNodes {
			bentoHosts = append(bentoHosts, bentoHost{host: host})
		}
	}

	cons, err := auth.Consensus()
	if err != nil {
		w.Close()
		return nil, err
	}
	w.Consensus = cons

	for i, bh := range bentoHosts {
		platform, err := enclave.NewPlatform(enclave.MinTCBVersion)
		if err != nil {
			w.Close()
			return nil, err
		}
		ias.RegisterPlatform(platform.QuotingKey())
		srv, err := bento.NewServer(bento.ServerConfig{
			Host:       bh.host,
			Tor:        torclient.New(bh.host, cons, int64(9000+i)),
			Policy:     policy.DefaultMiddlebox(),
			ExitPolicy: exitPol,
			Platform:   platform,
			IAS:        ias,
			Bind:       functions.StandardBinder(),
			Engine:     cfg.BentoEngine,
		})
		if err != nil {
			w.Close()
			return nil, err
		}
		w.Servers = append(w.Servers, srv)
	}

	for _, site := range cfg.Sites {
		host := n.AddHost(site.Domain, cfg.WebEgress)
		ws, err := webfarm.Serve(host, site)
		if err != nil {
			w.Close()
			return nil, err
		}
		w.Web = append(w.Web, ws)
	}
	return w, nil
}

// Close tears the deployment down.
func (w *World) Close() {
	// Stop the sampler first so no tick races component teardown.
	w.wind.Close()
	for _, s := range w.Servers {
		s.Close()
	}
	for _, ws := range w.Web {
		ws.Close()
	}
	for _, r := range w.Relays {
		r.Close()
	}
	// Stops the dispatcher goroutine when the deployment runs on the
	// event clock; a no-op for the scaled-real clock.
	w.Net.Clock().Stop()
}

// Clock returns the deployment's virtual clock.
func (w *World) Clock() *simnet.Clock { return w.Net.Clock() }

// Windower returns the rolling-window sampler started when Config set
// both Obs and ObsWindow, or nil (on which every method is a no-op).
func (w *World) Windower() *obs.Windower { return w.wind }

// EnableChaos attaches a seeded fault-injection controller to the
// deployment's network. Call it at most once per deployment.
func (w *World) EnableChaos(seed int64) *simnet.Chaos { return w.Net.EnableChaos(seed) }

// NewTorClient adds a fresh client host and onion proxy.
func (w *World) NewTorClient(name string, seed int64) *torclient.Client {
	w.clientSeq++
	host := w.Net.AddHost(name, 0)
	return torclient.New(host, w.Consensus, seed)
}

// NewBentoClient adds a fresh client host with a Bento client pinned to
// the deployment's IAS.
func (w *World) NewBentoClient(name string, seed int64) *bento.Client {
	return bento.NewClient(w.NewTorClient(name, seed), w.IAS.PublicKey())
}

// NewFleetController adds a fresh client host and starts a fleet
// controller on it, watching the deployment's directory authority for
// relay liveness. Zero-valued cfg fields take the fleet defaults; Client
// and Consensus are filled in here.
func (w *World) NewFleetController(name string, cfg fleet.Config) (*fleet.Controller, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Client == nil {
		cfg.Client = w.NewBentoClient(name, cfg.Seed)
	}
	if cfg.Consensus == nil {
		cfg.Consensus = w.Auth.Consensus
	}
	return fleet.New(cfg)
}

// BentoNode returns the i-th Bento-capable relay descriptor.
func (w *World) BentoNode(i int) *dirauth.Descriptor {
	nodes := w.Consensus.BentoNodes()
	if i < 0 || i >= len(nodes) {
		return nil
	}
	return nodes[i]
}
