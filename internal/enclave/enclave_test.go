package enclave

import (
	"bytes"
	"crypto/rand"
	"net"
	"testing"

	"github.com/bento-nfv/bento/internal/otr"
)

func newPlatformAndIAS(t *testing.T, tcb int) (*Platform, *AttestationService) {
	t.Helper()
	p, err := NewPlatform(tcb)
	if err != nil {
		t.Fatal(err)
	}
	ias, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	ias.RegisterPlatform(p.QuotingKey())
	return p, ias
}

func TestMeasurementDeterministic(t *testing.T) {
	img := []byte("bento-python-image-v1")
	if Measure(img) != Measure(img) {
		t.Fatal("measurement not deterministic")
	}
	if Measure(img) == Measure([]byte("other")) {
		t.Fatal("different images share a measurement")
	}
}

func TestAttestationFlow(t *testing.T) {
	p, ias := newPlatformAndIAS(t, MinTCBVersion)
	img := []byte("bento server image")
	e, err := p.Launch(img, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Destroy()

	nonce := make([]byte, 16)
	rand.Read(nonce)
	q, err := e.GenerateQuote(nonce)
	if err != nil {
		t.Fatal(err)
	}
	report, err := ias.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK {
		t.Fatalf("report not OK: %s", report.Reason)
	}
	if err := CheckReport(report, ias.PublicKey(), Measure(img), nonce); err != nil {
		t.Fatalf("CheckReport: %v", err)
	}
}

func TestAttestationRejectsWrongMeasurement(t *testing.T) {
	p, ias := newPlatformAndIAS(t, MinTCBVersion)
	e, _ := p.Launch([]byte("genuine image"), 1<<20)
	defer e.Destroy()
	nonce := []byte("n")
	q, _ := e.GenerateQuote(nonce)
	report, _ := ias.Verify(q)
	if err := CheckReport(report, ias.PublicKey(), Measure([]byte("expected image")), nonce); err == nil {
		t.Fatal("wrong measurement accepted")
	}
}

func TestAttestationRejectsStaleTCB(t *testing.T) {
	p, ias := newPlatformAndIAS(t, MinTCBVersion-1) // unpatched platform
	e, _ := p.Launch([]byte("img"), 1<<20)
	defer e.Destroy()
	q, _ := e.GenerateQuote([]byte("n"))
	report, err := ias.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK {
		t.Fatal("stale TCB attested OK")
	}
	if err := CheckReport(report, ias.PublicKey(), Measure([]byte("img")), []byte("n")); err == nil {
		t.Fatal("client accepted stale-TCB report")
	}
}

func TestAttestationRejectsUnknownPlatform(t *testing.T) {
	p, _ := NewPlatform(MinTCBVersion)
	ias, _ := NewAttestationService() // platform never registered
	e, _ := p.Launch([]byte("img"), 1<<20)
	defer e.Destroy()
	q, _ := e.GenerateQuote([]byte("n"))
	report, _ := ias.Verify(q)
	if report.OK {
		t.Fatal("unregistered platform attested OK")
	}
}

func TestAttestationRejectsTamperedQuote(t *testing.T) {
	p, ias := newPlatformAndIAS(t, MinTCBVersion)
	e, _ := p.Launch([]byte("img"), 1<<20)
	defer e.Destroy()
	q, _ := e.GenerateQuote([]byte("n"))
	q.TCBVersion = 99 // forge a better TCB
	report, _ := ias.Verify(q)
	if report.OK {
		t.Fatal("tampered quote attested OK")
	}
}

func TestAttestationRejectsReplayedNonce(t *testing.T) {
	p, ias := newPlatformAndIAS(t, MinTCBVersion)
	e, _ := p.Launch([]byte("img"), 1<<20)
	defer e.Destroy()
	q, _ := e.GenerateQuote([]byte("old-nonce"))
	report, _ := ias.Verify(q)
	if err := CheckReport(report, ias.PublicKey(), Measure([]byte("img")), []byte("fresh-nonce")); err == nil {
		t.Fatal("replayed quote accepted")
	}
}

func TestCheckReportRejectsForgedReport(t *testing.T) {
	p, ias := newPlatformAndIAS(t, MinTCBVersion)
	e, _ := p.Launch([]byte("img"), 1<<20)
	defer e.Destroy()
	q, _ := e.GenerateQuote([]byte("n"))
	report, _ := ias.Verify(q)
	otherIAS, _ := NewAttestationService()
	if err := CheckReport(report, otherIAS.PublicKey(), Measure([]byte("img")), []byte("n")); err == nil {
		t.Fatal("report verified under wrong IAS key")
	}
	// Forging a failing report's verdict must break the IAS signature.
	badPlatform, _ := NewPlatform(MinTCBVersion - 1)
	ias.RegisterPlatform(badPlatform.QuotingKey())
	be, _ := badPlatform.Launch([]byte("img"), 1<<20)
	defer be.Destroy()
	bq, _ := be.GenerateQuote([]byte("n"))
	badReport, _ := ias.Verify(bq)
	if badReport.OK {
		t.Fatal("stale-TCB report unexpectedly OK")
	}
	badReport.OK = true
	badReport.Reason = ""
	if err := CheckReport(badReport, ias.PublicKey(), Measure([]byte("img")), []byte("n")); err == nil {
		t.Fatal("tampered report accepted")
	}
}

func TestEPCAccounting(t *testing.T) {
	p, _ := newPlatformAndIAS(t, MinTCBVersion)
	var enclaves []*Enclave
	// 93 MB usable: three 30 MB enclaves fit, a fourth does not.
	for i := 0; i < 3; i++ {
		e, err := p.Launch([]byte{byte(i)}, 30<<20)
		if err != nil {
			t.Fatalf("enclave %d: %v", i, err)
		}
		enclaves = append(enclaves, e)
	}
	if _, err := p.Launch([]byte("one too many"), 30<<20); err == nil {
		t.Fatal("EPC oversubscription allowed")
	}
	// Destroying one frees room.
	enclaves[0].Destroy()
	if _, err := p.Launch([]byte("replacement"), 30<<20); err != nil {
		t.Fatalf("EPC not reclaimed: %v", err)
	}
	enclaves[0].Destroy() // double destroy is a no-op
	if _, err := p.Launch([]byte("x"), 0); err == nil {
		t.Fatal("zero-size enclave accepted")
	}
}

// TestAttestedChannel binds an otr secure channel to an attested enclave
// key: the client verifies the report, extracts the channel key, and
// dials; a MITM with a different key cannot complete the handshake.
func TestAttestedChannel(t *testing.T) {
	p, ias := newPlatformAndIAS(t, MinTCBVersion)
	img := []byte("function loader image")
	e, err := p.Launch(img, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Destroy()

	nonce := []byte("challenge-1")
	q, _ := e.GenerateQuote(nonce)
	report, _ := ias.Verify(q)
	if err := CheckReport(report, ias.PublicKey(), Measure(img), nonce); err != nil {
		t.Fatal(err)
	}

	cc, sc := net.Pipe()
	done := make(chan error, 1)
	go func() {
		ch, err := otr.AcceptChannel(sc, e.Key())
		if err != nil {
			done <- err
			return
		}
		msg, err := ch.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- ch.Send(append([]byte("echo:"), msg...))
	}()

	ch, err := otr.DialChannel(cc, report.Quote.ChannelKey)
	if err != nil {
		t.Fatalf("attested dial: %v", err)
	}
	if err := ch.Send([]byte("function code")); err != nil {
		t.Fatal(err)
	}
	got, err := ch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("echo:function code")) {
		t.Fatalf("got %q", got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// A MITM enclave with a different key cannot impersonate.
	mitm, _ := p.Launch([]byte("evil"), 1<<20)
	defer mitm.Destroy()
	cc2, sc2 := net.Pipe()
	go otr.AcceptChannel(sc2, mitm.Key())
	if _, err := otr.DialChannel(cc2, report.Quote.ChannelKey); err == nil {
		t.Fatal("MITM channel succeeded")
	}
}
