// Package enclave simulates the trusted-execution substrate Bento builds
// on: SGX-style enclaves with measurement, a platform quoting key, a
// simulated Intel Attestation Service (IAS) issuing signed verification
// reports, and attested secure channels bound to an enclave's key.
//
// The simulation models the full attestation flow of §5.4 — quote
// generation, IAS verification (including TCB version checks against known
// vulnerabilities), and the OCSP-stapling-style variant where the server
// staples the IAS report — while asserting (rather than enforcing in
// hardware) confidentiality against a physically present operator. The
// usable enclave page cache limit (93 MB of the 128 MB EPC, as the paper
// reports from the conclaves work) is modeled so the scalability analysis
// of §7.3 exercises real accounting.
package enclave

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/otr"
)

const (
	// EPCTotal is the modeled enclave page cache size.
	EPCTotal = 128 << 20
	// EPCUsable is the portion usable by applications (per the conclaves
	// measurements cited in §7.3).
	EPCUsable = 93 << 20
	// MinTCBVersion is the oldest TCB (microcode/SDK) version IAS
	// considers patched against known attacks (e.g. L1TF/Foreshadow).
	MinTCBVersion = 4
)

// Measurement is the hash of an enclave's initial contents (MRENCLAVE).
type Measurement [32]byte

// String returns the hex form of the measurement.
func (m Measurement) String() string { return hex.EncodeToString(m[:]) }

// Measure computes the measurement of an enclave image.
func Measure(image []byte) Measurement { return sha256.Sum256(image) }

// Platform models one SGX-capable machine: it holds a quoting key and
// tracks EPC usage across the enclaves it hosts.
type Platform struct {
	quotePriv ed25519.PrivateKey
	quotePub  ed25519.PublicKey
	tcb       int

	mu       sync.Mutex
	epcUsed  int64
	enclaves map[string]*Enclave
}

// NewPlatform creates a platform at the given TCB version.
func NewPlatform(tcbVersion int) (*Platform, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Platform{
		quotePriv: priv,
		quotePub:  pub,
		tcb:       tcbVersion,
		enclaves:  make(map[string]*Enclave),
	}, nil
}

// QuotingKey returns the platform's public quoting key (registered with
// IAS out of band, as EPID/DCAP provisioning does in reality).
func (p *Platform) QuotingKey() ed25519.PublicKey { return p.quotePub }

// TCBVersion returns the platform's TCB version.
func (p *Platform) TCBVersion() int { return p.tcb }

// EPCUsed reports current enclave page cache consumption in bytes.
func (p *Platform) EPCUsed() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epcUsed
}

// Enclave is a launched enclave instance: a measurement, a private
// channel key that never leaves the (simulated) enclave boundary, and an
// EPC reservation.
type Enclave struct {
	platform *Platform
	id       string
	meas     Measurement
	key      *otr.OnionKey // enclave-held X25519 key for attested channels
	size     int64

	mu     sync.Mutex
	closed bool
}

// Launch loads an image into a new enclave, reserving memSize bytes of
// EPC. It fails when the EPC is exhausted — the constraint §7.3 analyzes.
func (p *Platform) Launch(image []byte, memSize int64) (*Enclave, error) {
	if memSize <= 0 {
		return nil, fmt.Errorf("enclave: non-positive memory size")
	}
	key, err := otr.NewOnionKey()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epcUsed+memSize > EPCUsable {
		return nil, fmt.Errorf("enclave: EPC exhausted (%d used + %d requested > %d usable)",
			p.epcUsed, memSize, EPCUsable)
	}
	p.epcUsed += memSize
	var idb [8]byte
	rand.Read(idb[:])
	e := &Enclave{
		platform: p,
		id:       hex.EncodeToString(idb[:]),
		meas:     Measure(image),
		key:      key,
		size:     memSize,
	}
	p.enclaves[e.id] = e
	return e, nil
}

// Measurement returns the enclave's measurement.
func (e *Enclave) Measurement() Measurement { return e.meas }

// ChannelKey returns the enclave's public channel key; clients bind
// attested channels to it after verifying a quote that covers it.
func (e *Enclave) ChannelKey() []byte { return e.key.Public() }

// Key exposes the enclave's channel key pair to the conclave runtime
// hosting the enclave (the same trust domain); remote parties only ever
// see ChannelKey via quotes.
func (e *Enclave) Key() *otr.OnionKey { return e.key }

// Destroy releases the enclave's EPC reservation.
func (e *Enclave) Destroy() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.platform.mu.Lock()
	e.platform.epcUsed -= e.size
	delete(e.platform.enclaves, e.id)
	e.platform.mu.Unlock()
}

// Quote is a platform-signed statement binding a measurement, the
// enclave's channel key, a nonce, and the platform TCB version.
type Quote struct {
	Measurement string `json:"measurement"`
	ChannelKey  []byte `json:"channel_key"`
	Nonce       []byte `json:"nonce"`
	TCBVersion  int    `json:"tcb_version"`
	QuotingKey  []byte `json:"quoting_key"`
	Signature   []byte `json:"signature,omitempty"`
}

func (q *Quote) signingBytes() ([]byte, error) {
	c := *q
	c.Signature = nil
	return json.Marshal(&c)
}

// GenerateQuote produces a quote over the enclave's identity for the
// given challenge nonce.
func (e *Enclave) GenerateQuote(nonce []byte) (*Quote, error) {
	q := &Quote{
		Measurement: e.meas.String(),
		ChannelKey:  e.key.Public(),
		Nonce:       append([]byte(nil), nonce...),
		TCBVersion:  e.platform.tcb,
		QuotingKey:  e.platform.quotePub,
	}
	b, err := q.signingBytes()
	if err != nil {
		return nil, err
	}
	q.Signature = ed25519.Sign(e.platform.quotePriv, b)
	return q, nil
}

// AttestationService simulates IAS: it knows the registered platform
// quoting keys and issues signed verification reports.
type AttestationService struct {
	signPriv ed25519.PrivateKey
	signPub  ed25519.PublicKey

	mu        sync.Mutex
	platforms map[string]bool // hex quoting key -> registered
}

// NewAttestationService creates an IAS instance with a fresh report key.
func NewAttestationService() (*AttestationService, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &AttestationService{
		signPriv:  priv,
		signPub:   pub,
		platforms: make(map[string]bool),
	}, nil
}

// PublicKey returns the IAS report-signing key that clients pin.
func (s *AttestationService) PublicKey() ed25519.PublicKey { return s.signPub }

// RegisterPlatform records a platform's quoting key as genuine.
func (s *AttestationService) RegisterPlatform(quotingKey ed25519.PublicKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.platforms[hex.EncodeToString(quotingKey)] = true
}

// Report is an IAS attestation verification report. A server may "staple"
// it next to its quote, as §5.4's OCSP-style variant describes, so the
// client never contacts IAS (and IAS never learns which client verified).
type Report struct {
	Quote     *Quote `json:"quote"`
	OK        bool   `json:"ok"`
	Reason    string `json:"reason,omitempty"`
	IssuedAt  int64  `json:"issued_at"`
	Signature []byte `json:"signature,omitempty"`
}

func (r *Report) signingBytes() ([]byte, error) {
	c := *r
	c.Signature = nil
	return json.Marshal(&c)
}

// Verify checks a quote and issues a signed report. Quotes from
// unregistered platforms or stale TCBs are reported not-OK (the client
// sees why and can refuse).
func (s *AttestationService) Verify(q *Quote) (*Report, error) {
	r := &Report{Quote: q, IssuedAt: time.Now().Unix()}
	switch {
	case q == nil:
		return nil, fmt.Errorf("enclave: nil quote")
	case !s.registered(q.QuotingKey):
		r.Reason = "unknown platform quoting key"
	case !verifyQuoteSig(q):
		r.Reason = "quote signature invalid"
	case q.TCBVersion < MinTCBVersion:
		r.Reason = fmt.Sprintf("TCB version %d below required %d (unpatched platform)", q.TCBVersion, MinTCBVersion)
	default:
		r.OK = true
	}
	b, err := r.signingBytes()
	if err != nil {
		return nil, err
	}
	r.Signature = ed25519.Sign(s.signPriv, b)
	return r, nil
}

func (s *AttestationService) registered(key []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.platforms[hex.EncodeToString(key)]
}

func verifyQuoteSig(q *Quote) bool {
	if len(q.QuotingKey) != ed25519.PublicKeySize {
		return false
	}
	b, err := q.signingBytes()
	if err != nil {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(q.QuotingKey), b, q.Signature)
}

// CheckReport verifies a (possibly stapled) report on the client side:
// the IAS signature, the verdict, the expected measurement, and the nonce
// binding. On success the report's channel key may be trusted for
// DialChannel.
func CheckReport(r *Report, iasKey ed25519.PublicKey, wantMeasurement Measurement, nonce []byte) error {
	if r == nil || r.Quote == nil {
		return fmt.Errorf("enclave: missing report")
	}
	b, err := r.signingBytes()
	if err != nil {
		return err
	}
	if !ed25519.Verify(iasKey, b, r.Signature) {
		return fmt.Errorf("enclave: report signature invalid")
	}
	if !r.OK {
		return fmt.Errorf("enclave: attestation failed: %s", r.Reason)
	}
	if r.Quote.Measurement != wantMeasurement.String() {
		return fmt.Errorf("enclave: measurement mismatch: got %s want %s",
			r.Quote.Measurement, wantMeasurement)
	}
	if nonce != nil && string(r.Quote.Nonce) != string(nonce) {
		return fmt.Errorf("enclave: nonce mismatch (replayed quote?)")
	}
	return nil
}
