// Package sandbox simulates the container layer of a Bento server (§5.2,
// §5.3): per-function containers with cgroup-style resource ceilings, a
// chroot-style private filesystem, a seccomp-style API-call filter, and an
// iptables-style network filter derived from the co-resident relay's exit
// policy. Containers optionally run inside a simulated SGX enclave (the
// Python-OP-SGX image), in which case their filesystem is FS Protect.
package sandbox

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/bento-nfv/bento/internal/enclave"
	"github.com/bento-nfv/bento/internal/fsprotect"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/policy"
)

// Container images offered by the standard Bento server (§5.4).
const (
	ImagePython      = "python"
	ImagePythonOPSGX = "python-op-sgx"
)

// ErrPolicyViolation is wrapped by errors arising from a function
// attempting an action its manifest or the node policy forbids.
var ErrPolicyViolation = errors.New("sandbox: policy violation")

// FileStore abstracts the container's private filesystem: FS Protect for
// enclaved containers, a plain in-memory chroot otherwise.
type FileStore interface {
	Write(path string, data []byte) error
	Read(path string) ([]byte, error)
	Remove(path string) error
	List() []string
	Used() int64
}

// plainFS is the non-enclaved chroot: same namespace rules as FS
// Protect, no encryption.
type plainFS struct {
	mu    sync.Mutex
	files map[string][]byte
	used  int64
	limit int64
}

func newPlainFS(limit int64) *plainFS {
	if limit <= 0 {
		limit = 64 << 20
	}
	return &plainFS{files: make(map[string][]byte), limit: limit}
}

func (fs *plainFS) Write(path string, data []byte) error {
	if err := validPath(path); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	old := int64(len(fs.files[path]))
	if fs.used-old+int64(len(data)) > fs.limit {
		return fmt.Errorf("sandbox: storage limit exceeded (%d bytes)", fs.limit)
	}
	fs.used += int64(len(data)) - old
	fs.files[path] = append([]byte(nil), data...)
	return nil
}

func (fs *plainFS) Read(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("sandbox: file %q not found", path)
	}
	return append([]byte(nil), data...), nil
}

func (fs *plainFS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("sandbox: file %q not found", path)
	}
	fs.used -= int64(len(data))
	delete(fs.files, path)
	return nil
}

func (fs *plainFS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (fs *plainFS) Used() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.used
}

func validPath(path string) error {
	if path == "" {
		return errors.New("sandbox: empty path")
	}
	for i := 0; i+1 < len(path); i++ {
		if path[i] == '.' && path[i+1] == '.' {
			return fmt.Errorf("sandbox: invalid path %q", path)
		}
	}
	return nil
}

// Config configures a container.
type Config struct {
	Image      string
	Manifest   *policy.Manifest
	Policy     *policy.Middlebox
	ExitPolicy *policy.ExitPolicy
	// Platform is required for the SGX image.
	Platform *enclave.Platform
	// Stdout receives the function's print() output.
	Stdout io.Writer
	// FS, when non-nil, mounts an existing file store instead of creating
	// a fresh one — the persistent volume a restart watchdog carries
	// across container generations.
	FS FileStore
}

// Container is one sandboxed function execution environment.
type Container struct {
	id      string
	image   string
	machine *interp.Machine
	fs      FileStore
	encl    *enclave.Enclave
	allowed map[string]bool
	exitPol *policy.ExitPolicy
	memSize int64

	mu     sync.Mutex
	closed bool
}

// New creates a container, checking the manifest against the node policy
// first — a manifest requesting more than the policy allows is rejected
// before any resources are committed.
func New(cfg Config) (*Container, error) {
	if cfg.Manifest == nil {
		return nil, errors.New("sandbox: missing manifest")
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.DefaultMiddlebox()
	}
	if cfg.Image == "" {
		cfg.Image = cfg.Manifest.Image
	}
	if cfg.Image == "" {
		cfg.Image = ImagePython
	}
	man := *cfg.Manifest
	man.Image = cfg.Image
	if err := policy.Check(cfg.Policy, &man); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPolicyViolation, err)
	}

	mem := man.Memory
	if mem <= 0 {
		mem = cfg.Policy.MaxMemory
	}
	instr := man.Instructions
	if instr <= 0 {
		instr = cfg.Policy.MaxInstructions
	}
	storage := man.Storage
	if storage <= 0 {
		storage = cfg.Policy.MaxStorage
	}

	var idb [8]byte
	rand.Read(idb[:])
	c := &Container{
		id:      hex.EncodeToString(idb[:]),
		image:   cfg.Image,
		exitPol: cfg.ExitPolicy,
		allowed: make(map[string]bool, len(man.Calls)),
		memSize: mem,
	}
	for _, call := range man.Calls {
		c.allowed[call] = true
	}

	switch cfg.Image {
	case ImagePython:
		if cfg.FS != nil {
			c.fs = cfg.FS
		} else {
			c.fs = newPlainFS(storage)
		}
	case ImagePythonOPSGX:
		if cfg.Platform == nil {
			return nil, errors.New("sandbox: SGX image requires a platform")
		}
		e, err := cfg.Platform.Launch([]byte("bento:"+cfg.Image), mem)
		if err != nil {
			return nil, fmt.Errorf("sandbox: launching enclave: %w", err)
		}
		if cfg.FS != nil {
			c.fs = cfg.FS
		} else {
			fs, err := fsprotect.New(storage)
			if err != nil {
				e.Destroy()
				return nil, err
			}
			c.fs = fs
		}
		c.encl = e
	default:
		return nil, fmt.Errorf("sandbox: unknown image %q", cfg.Image)
	}

	c.machine = interp.NewMachine(interp.Limits{Instructions: instr, Memory: mem})
	c.machine.Stdout = cfg.Stdout
	return c, nil
}

// ID returns the container's identifier.
func (c *Container) ID() string { return c.id }

// Image returns the container's image name.
func (c *Container) Image() string { return c.image }

// Machine exposes the interpreter for API binding and execution.
func (c *Container) Machine() *interp.Machine { return c.machine }

// FS returns the container's private filesystem.
func (c *Container) FS() FileStore { return c.fs }

// Enclave returns the backing enclave, or nil for plain containers.
func (c *Container) Enclave() *enclave.Enclave { return c.encl }

// MemSize returns the container's memory reservation in bytes.
func (c *Container) MemSize() int64 { return c.memSize }

// Allows reports whether the seccomp-style filter permits an API call
// (the intersection of the manifest's requests with the node policy,
// enforced at New).
func (c *Container) Allows(call string) bool { return c.allowed[call] }

// CheckCall returns ErrPolicyViolation unless the call is permitted.
func (c *Container) CheckCall(call string) error {
	if !c.allowed[call] {
		return fmt.Errorf("%w: call %q not in manifest", ErrPolicyViolation, call)
	}
	return nil
}

// CheckNet enforces the iptables-style filter derived from the relay's
// exit policy (§5.3): a container on a non-exit relay gets no direct
// network access at all.
func (c *Container) CheckNet(host string, port int) error {
	if err := c.CheckCall("net.dial"); err != nil {
		return err
	}
	if !c.exitPol.Allows(host, port) {
		return fmt.Errorf("%w: exit policy refuses %s:%d", ErrPolicyViolation, host, port)
	}
	return nil
}

// Mediate wraps a host function with the call filter; every Bento API
// binding goes through here, so nothing reaches the host unchecked.
func (c *Container) Mediate(call string, fn interp.BuiltinFn) interp.BuiltinFn {
	return func(args []interp.Value) (interp.Value, error) {
		if err := c.CheckCall(call); err != nil {
			return nil, err
		}
		return fn(args)
	}
}

// Run executes function source code in the container.
func (c *Container) Run(src string) error { return c.machine.Run(src) }

// RunProgram executes a pre-compiled bscript program in the container's
// machine. Programs are machine-independent, so the Bento server caches
// them by source hash and reuses one Program across containers.
func (c *Container) RunProgram(p *interp.Program) error { return c.machine.RunProgram(p) }

// Call invokes a defined function.
func (c *Container) Call(name string, args ...interp.Value) (interp.Value, error) {
	return c.machine.CallFunction(name, args...)
}

// Kill aborts any running code.
func (c *Container) Kill() { c.machine.Kill() }

// Close kills the container and releases its enclave reservation.
func (c *Container) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.machine.Kill()
	if c.encl != nil {
		c.encl.Destroy()
	}
}

// Supervisor manages the containers of one Bento server, enforcing the
// operator's aggregate ceilings (§5.3: "an operator may further manage
// these resource limits in aggregate").
type Supervisor struct {
	policy     *policy.Middlebox
	exitPolicy *policy.ExitPolicy
	platform   *enclave.Platform
	stdout     io.Writer

	mu         sync.Mutex
	containers map[string]*Container
}

// NewSupervisor creates a supervisor for a node with the given policy.
func NewSupervisor(pol *policy.Middlebox, exitPol *policy.ExitPolicy, platform *enclave.Platform, stdout io.Writer) *Supervisor {
	if pol == nil {
		pol = policy.DefaultMiddlebox()
	}
	return &Supervisor{
		policy:     pol,
		exitPolicy: exitPol,
		platform:   platform,
		stdout:     stdout,
		containers: make(map[string]*Container),
	}
}

// Policy returns the node's middlebox policy.
func (s *Supervisor) Policy() *policy.Middlebox { return s.policy }

// Spawn creates a container for a function manifest.
func (s *Supervisor) Spawn(manifest *policy.Manifest) (*Container, error) {
	s.mu.Lock()
	if len(s.containers) >= s.policy.MaxContainers {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: container limit %d reached", ErrPolicyViolation, s.policy.MaxContainers)
	}
	s.mu.Unlock()

	c, err := New(Config{
		Manifest:   manifest,
		Policy:     s.policy,
		ExitPolicy: s.exitPolicy,
		Platform:   s.platform,
		Stdout:     s.stdout,
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if len(s.containers) >= s.policy.MaxContainers {
		s.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("%w: container limit %d reached", ErrPolicyViolation, s.policy.MaxContainers)
	}
	s.containers[c.ID()] = c
	s.mu.Unlock()
	return c, nil
}

// Respawn replaces the container with the given ID by a fresh one built
// from the same manifest, remounting the old container's file store (a
// persistent volume). The dead container's slot transfers to its
// replacement, so Respawn never trips the MaxContainers ceiling. It is
// the primitive under the Bento server's restart watchdog.
func (s *Supervisor) Respawn(id string, manifest *policy.Manifest) (*Container, error) {
	s.mu.Lock()
	old := s.containers[id]
	delete(s.containers, id)
	s.mu.Unlock()
	if old == nil {
		return nil, fmt.Errorf("sandbox: no container %q to respawn", id)
	}
	fs := old.FS()
	old.Close()
	c, err := New(Config{
		Manifest:   manifest,
		Policy:     s.policy,
		ExitPolicy: s.exitPolicy,
		Platform:   s.platform,
		Stdout:     s.stdout,
		FS:         fs,
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.containers[c.ID()] = c
	s.mu.Unlock()
	return c, nil
}

// Remove closes and forgets a container.
func (s *Supervisor) Remove(id string) {
	s.mu.Lock()
	c := s.containers[id]
	delete(s.containers, id)
	s.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Count reports how many containers are running.
func (s *Supervisor) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.containers)
}

// CloseAll tears down every container.
func (s *Supervisor) CloseAll() {
	s.mu.Lock()
	cs := make([]*Container, 0, len(s.containers))
	for _, c := range s.containers {
		cs = append(cs, c)
	}
	s.containers = make(map[string]*Container)
	s.mu.Unlock()
	for _, c := range cs {
		c.Close()
	}
}
