package sandbox

import (
	"bytes"
	"errors"
	"testing"

	"github.com/bento-nfv/bento/internal/enclave"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/policy"
)

func basicManifest(calls ...string) *policy.Manifest {
	return &policy.Manifest{
		Name:         "test-fn",
		Image:        ImagePython,
		Calls:        calls,
		Memory:       4 << 20,
		Instructions: 1_000_000,
		Storage:      1 << 20,
	}
}

func TestContainerRunsCode(t *testing.T) {
	c, err := New(Config{Manifest: basicManifest()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Run("x = 21 * 2"); err != nil {
		t.Fatal(err)
	}
	v, _ := c.Machine().Globals.Lookup("x")
	if v != interp.Int(42) {
		t.Fatalf("x = %v", v)
	}
}

func TestManifestExceedingPolicyRejected(t *testing.T) {
	man := basicManifest()
	man.Memory = 1 << 40
	if _, err := New(Config{Manifest: man}); !errors.Is(err, ErrPolicyViolation) {
		t.Fatalf("got %v, want policy violation", err)
	}
	man2 := basicManifest("os.exec")
	if _, err := New(Config{Manifest: man2}); !errors.Is(err, ErrPolicyViolation) {
		t.Fatalf("forbidden call: got %v", err)
	}
}

func TestSeccompStyleCallFilter(t *testing.T) {
	// The manifest requests fewer calls than the policy allows; the
	// sandbox must constrain to the manifest (§5.5).
	c, err := New(Config{Manifest: basicManifest("fs.read")})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CheckCall("fs.read"); err != nil {
		t.Fatalf("requested call denied: %v", err)
	}
	if err := c.CheckCall("fs.write"); !errors.Is(err, ErrPolicyViolation) {
		t.Fatalf("policy-allowed but unrequested call permitted: %v", err)
	}
}

func TestMediateBlocksUnrequestedCalls(t *testing.T) {
	c, err := New(Config{Manifest: basicManifest("log")})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	called := false
	fn := c.Mediate("fs.write", func(args []interp.Value) (interp.Value, error) {
		called = true
		return interp.None, nil
	})
	if _, err := fn(nil); !errors.Is(err, ErrPolicyViolation) {
		t.Fatalf("got %v", err)
	}
	if called {
		t.Fatal("mediated function executed despite violation")
	}
}

func TestNetworkFilterFollowsExitPolicy(t *testing.T) {
	exitPol, _ := policy.ParseExitPolicy("accept web:80", "reject *:*")
	c, err := New(Config{Manifest: basicManifest("net.dial"), ExitPolicy: exitPol})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CheckNet("web", 80); err != nil {
		t.Fatalf("permitted destination denied: %v", err)
	}
	if err := c.CheckNet("web", 22); !errors.Is(err, ErrPolicyViolation) {
		t.Fatalf("forbidden port allowed: %v", err)
	}
	// Non-exit relay (nil policy): no direct network at all (§5.3).
	c2, _ := New(Config{Manifest: basicManifest("net.dial")})
	defer c2.Close()
	if err := c2.CheckNet("anything", 80); !errors.Is(err, ErrPolicyViolation) {
		t.Fatalf("non-exit relay allowed direct network: %v", err)
	}
}

func TestResourceExhaustionContained(t *testing.T) {
	man := basicManifest()
	man.Instructions = 5000
	c, err := New(Config{Manifest: man})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run("i = 0\nwhile True:\n    i += 1\n")
	if !errors.Is(err, interp.ErrBudgetExceeded) {
		t.Fatalf("got %v", err)
	}
}

func TestChrootFilesystem(t *testing.T) {
	c, err := New(Config{Manifest: basicManifest()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.FS().Write("data/file", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := c.FS().Read("data/file")
	if err != nil || string(got) != "hello" {
		t.Fatalf("read: %q, %v", got, err)
	}
	if err := c.FS().Write("../escape", []byte("x")); err == nil {
		t.Fatal("chroot escape allowed")
	}
	// Containers do not share filesystems.
	c2, _ := New(Config{Manifest: basicManifest()})
	defer c2.Close()
	if _, err := c2.FS().Read("data/file"); err == nil {
		t.Fatal("containers share a filesystem")
	}
}

func TestStorageLimitEnforced(t *testing.T) {
	man := basicManifest()
	man.Storage = 1024
	c, err := New(Config{Manifest: man})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.FS().Write("big", make([]byte, 4096)); err == nil {
		t.Fatal("over-quota write accepted")
	}
}

func TestSGXImage(t *testing.T) {
	platform, err := enclave.NewPlatform(enclave.MinTCBVersion)
	if err != nil {
		t.Fatal(err)
	}
	man := basicManifest()
	man.Image = ImagePythonOPSGX
	c, err := New(Config{Manifest: man, Image: ImagePythonOPSGX, Platform: platform})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Enclave() == nil {
		t.Fatal("SGX container has no enclave")
	}
	if platform.EPCUsed() == 0 {
		t.Fatal("no EPC reserved")
	}
	// Writes are encrypted (FS Protect).
	c.FS().Write("secret", []byte("PLAINTEXT-MARKER"))
	got, err := c.FS().Read("secret")
	if err != nil || string(got) != "PLAINTEXT-MARKER" {
		t.Fatalf("round trip: %q %v", got, err)
	}
	c.Close()
	if platform.EPCUsed() != 0 {
		t.Fatalf("EPC not released: %d", platform.EPCUsed())
	}
	// SGX image without a platform fails.
	if _, err := New(Config{Manifest: man, Image: ImagePythonOPSGX}); err == nil {
		t.Fatal("SGX container created without platform")
	}
}

func TestUnknownImageRejected(t *testing.T) {
	man := basicManifest()
	pol := policy.DefaultMiddlebox()
	pol.Images = append(pol.Images, "weird")
	if _, err := New(Config{Manifest: man, Image: "weird", Policy: pol}); err == nil {
		t.Fatal("unknown image accepted")
	}
}

func TestKillStopsRunningFunction(t *testing.T) {
	man := basicManifest()
	man.Instructions = 1 << 40
	pol := policy.DefaultMiddlebox()
	pol.MaxInstructions = 1 << 40
	c, err := New(Config{Manifest: man, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() { done <- c.Run("i = 0\nwhile True:\n    i += 1\n") }()
	c.Kill()
	if err := <-done; !errors.Is(err, interp.ErrKilled) {
		t.Fatalf("got %v", err)
	}
}

func TestSupervisorContainerLimit(t *testing.T) {
	pol := policy.DefaultMiddlebox()
	pol.MaxContainers = 2
	s := NewSupervisor(pol, nil, nil, nil)
	defer s.CloseAll()

	c1, err := s.Spawn(basicManifest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spawn(basicManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spawn(basicManifest()); !errors.Is(err, ErrPolicyViolation) {
		t.Fatalf("flooding beyond limit: %v", err)
	}
	// Removing one frees a slot (DoS-by-flooding containment, §6.2).
	s.Remove(c1.ID())
	if _, err := s.Spawn(basicManifest()); err != nil {
		t.Fatalf("slot not reclaimed: %v", err)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestContainerPrintGoesToStdout(t *testing.T) {
	var out bytes.Buffer
	c, err := New(Config{Manifest: basicManifest(), Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(`print("from the sandbox")`)
	if out.String() != "from the sandbox\n" {
		t.Fatalf("stdout %q", out.String())
	}
}
