// Package wf implements the website-fingerprinting substrate of §7: trace
// capture at the client–guard link, feature extraction, and closed-world
// classifiers standing in for the Deep Fingerprinting CNN (Sirinam et
// al.). Feature-based attacks (k-NN over CUMUL-style cumulative traces,
// plus a nearest-centroid baseline) exhibit the same defense-ordering
// behavior the paper reports: high accuracy on unmodified traffic,
// collapsing toward guess rate as Browser's padding removes size and
// burst information.
package wf

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Event is one observation at the tapped link.
type Event struct {
	Dir  int // +1 outbound (client→guard), -1 inbound
	Size int
	At   time.Duration // virtual time
}

// Trace is the event sequence of one page visit.
type Trace struct {
	Events []Event
}

// TotalIn returns total inbound bytes.
func (t *Trace) TotalIn() int {
	n := 0
	for _, e := range t.Events {
		if e.Dir < 0 {
			n += e.Size
		}
	}
	return n
}

// TotalOut returns total outbound bytes.
func (t *Trace) TotalOut() int {
	n := 0
	for _, e := range t.Events {
		if e.Dir > 0 {
			n += e.Size
		}
	}
	return n
}

// Collector records a trace from a torclient traffic tap.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Tap returns the function to install with torclient.SetTrafficTap.
func (c *Collector) Tap() func(dir, size int, at time.Duration) {
	return func(dir, size int, at time.Duration) {
		c.mu.Lock()
		c.events = append(c.events, Event{Dir: dir, Size: size, At: at})
		c.mu.Unlock()
	}
}

// Reset clears recorded events (call between visits).
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = nil
	c.mu.Unlock()
}

// Snapshot returns the trace recorded since the last Reset.
func (c *Collector) Snapshot() *Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Trace{Events: append([]Event(nil), c.events...)}
}

// NumFeatures is the dimensionality of the feature vector: m cumulative
// samples plus 4 aggregate features.
func NumFeatures(m int) int { return m + 4 }

// Features extracts a CUMUL-style feature vector: the cumulative signed
// byte sequence sampled at m equidistant points, plus totals and packet
// counts. Sizes are in cells, directions signed, as the attacks in the
// literature use.
func Features(t *Trace, m int) []float64 {
	out := make([]float64, 0, NumFeatures(m))

	// Cumulative signed sum sampled at m points.
	cum := make([]float64, 0, len(t.Events))
	run := 0.0
	for _, e := range t.Events {
		run += float64(e.Dir * e.Size)
		cum = append(cum, run)
	}
	for i := 0; i < m; i++ {
		if len(cum) == 0 {
			out = append(out, 0)
			continue
		}
		idx := i * (len(cum) - 1) / max(m-1, 1)
		out = append(out, cum[idx])
	}

	var inB, outB, inN, outN float64
	for _, e := range t.Events {
		if e.Dir > 0 {
			outB += float64(e.Size)
			outN++
		} else {
			inB += float64(e.Size)
			inN++
		}
	}
	out = append(out, inB, outB, inN, outN)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Sample is one labeled feature vector.
type Sample struct {
	Label    int
	Features []float64
}

// KNN is a k-nearest-neighbors classifier with feature standardization.
type KNN struct {
	K       int
	samples []Sample
	mean    []float64
	std     []float64
}

// NewKNN creates a classifier (k=3 if k<=0).
func NewKNN(k int) *KNN {
	if k <= 0 {
		k = 3
	}
	return &KNN{K: k}
}

// Train fits the standardization and stores the training set.
func (c *KNN) Train(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("wf: empty training set")
	}
	dim := len(samples[0].Features)
	c.mean = make([]float64, dim)
	c.std = make([]float64, dim)
	for _, s := range samples {
		if len(s.Features) != dim {
			return fmt.Errorf("wf: inconsistent feature dimensions")
		}
		for i, v := range s.Features {
			c.mean[i] += v
		}
	}
	for i := range c.mean {
		c.mean[i] /= float64(len(samples))
	}
	for _, s := range samples {
		for i, v := range s.Features {
			d := v - c.mean[i]
			c.std[i] += d * d
		}
	}
	for i := range c.std {
		c.std[i] = math.Sqrt(c.std[i] / float64(len(samples)))
		if c.std[i] == 0 {
			c.std[i] = 1
		}
	}
	c.samples = make([]Sample, len(samples))
	for i, s := range samples {
		c.samples[i] = Sample{Label: s.Label, Features: c.normalize(s.Features)}
	}
	return nil
}

func (c *KNN) normalize(f []float64) []float64 {
	out := make([]float64, len(f))
	for i, v := range f {
		out[i] = (v - c.mean[i]) / c.std[i]
	}
	return out
}

// Predict returns the majority label among the k nearest neighbors.
func (c *KNN) Predict(features []float64) int {
	f := c.normalize(features)
	type scored struct {
		d     float64
		label int
	}
	dists := make([]scored, len(c.samples))
	for i, s := range c.samples {
		dists[i] = scored{d: sqDist(f, s.Features), label: s.Label}
	}
	sort.Slice(dists, func(i, j int) bool { return dists[i].d < dists[j].d })
	k := c.K
	if k > len(dists) {
		k = len(dists)
	}
	votes := make(map[int]int)
	best, bestVotes := -1, 0
	for _, n := range dists[:k] {
		votes[n.label]++
		if votes[n.label] > bestVotes {
			best, bestVotes = n.label, votes[n.label]
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	total := 0.0
	for i := range a {
		d := a[i] - b[i]
		total += d * d
	}
	return total
}

// Centroid is a nearest-centroid classifier — a weaker second attack used
// to confirm defense orderings are not classifier-specific.
type Centroid struct {
	centroids map[int][]float64
}

// Train computes per-label mean vectors.
func (c *Centroid) Train(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("wf: empty training set")
	}
	sums := make(map[int][]float64)
	counts := make(map[int]int)
	for _, s := range samples {
		if sums[s.Label] == nil {
			sums[s.Label] = make([]float64, len(s.Features))
		}
		for i, v := range s.Features {
			sums[s.Label][i] += v
		}
		counts[s.Label]++
	}
	c.centroids = make(map[int][]float64, len(sums))
	for label, sum := range sums {
		for i := range sum {
			sum[i] /= float64(counts[label])
		}
		c.centroids[label] = sum
	}
	return nil
}

// Predict returns the label of the nearest centroid.
func (c *Centroid) Predict(features []float64) int {
	best, bestD := -1, math.Inf(1)
	for label, cent := range c.centroids {
		if d := sqDist(features, cent); d < bestD {
			best, bestD = label, d
		}
	}
	return best
}

// Classifier is the interface both attacks implement.
type Classifier interface {
	Train([]Sample) error
	Predict([]float64) int
}

// EvaluateClosedWorld trains on trainPerSite traces per site and reports
// accuracy on the remainder — the §7.3 closed-world setting.
func EvaluateClosedWorld(c Classifier, traces map[int][]*Trace, trainPerSite, featureDim int) (float64, error) {
	var train []Sample
	type testCase struct {
		label    int
		features []float64
	}
	var test []testCase
	for label, ts := range traces {
		if len(ts) <= trainPerSite {
			return 0, fmt.Errorf("wf: site %d has %d traces, need > %d", label, len(ts), trainPerSite)
		}
		for i, tr := range ts {
			f := Features(tr, featureDim)
			if i < trainPerSite {
				train = append(train, Sample{Label: label, Features: f})
			} else {
				test = append(test, testCase{label: label, features: f})
			}
		}
	}
	if err := c.Train(train); err != nil {
		return 0, err
	}
	correct := 0
	for _, tc := range test {
		if c.Predict(tc.features) == tc.label {
			correct++
		}
	}
	return float64(correct) / float64(len(test)), nil
}
