package wf

import (
	"math/rand"
	"testing"
	"time"
)

// synthTrace builds a trace with a site-specific pattern plus noise.
func synthTrace(rng *rand.Rand, site int, noise float64) *Trace {
	tr := &Trace{}
	// Site-specific resource pattern: site i has i%7+2 "resources" of
	// characteristic sizes.
	nres := site%7 + 2
	at := time.Duration(0)
	for r := 0; r < nres; r++ {
		// Request burst.
		tr.Events = append(tr.Events, Event{Dir: +1, Size: 514, At: at})
		at += time.Millisecond
		// Response burst with site- and resource-specific size.
		size := 2000 + site*997 + r*3517
		size += int(noise * float64(rng.Intn(1000)))
		for size > 0 {
			chunk := 514
			if size < chunk {
				chunk = size
			}
			tr.Events = append(tr.Events, Event{Dir: -1, Size: chunk, At: at})
			size -= chunk
			at += 100 * time.Microsecond
		}
	}
	return tr
}

// paddedTrace simulates the Browser defense: one small upload, one large
// fixed-size download.
func paddedTrace(rng *rand.Rand, padTo int) *Trace {
	tr := &Trace{}
	at := time.Duration(0)
	for i := 0; i < 4; i++ { // function upload
		tr.Events = append(tr.Events, Event{Dir: +1, Size: 514, At: at})
		at += time.Millisecond
	}
	size := padTo
	for size > 0 {
		chunk := 514
		if size < chunk {
			chunk = size
		}
		tr.Events = append(tr.Events, Event{Dir: -1, Size: chunk, At: at})
		size -= chunk
		at += 50 * time.Microsecond
	}
	return tr
}

func buildTraces(n, visits int, pad int, noise float64, seed int64) map[int][]*Trace {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[int][]*Trace, n)
	for site := 0; site < n; site++ {
		for v := 0; v < visits; v++ {
			var tr *Trace
			if pad > 0 {
				tr = paddedTrace(rng, pad)
			} else {
				tr = synthTrace(rng, site, noise)
			}
			out[site] = append(out[site], tr)
		}
	}
	return out
}

func TestCollector(t *testing.T) {
	var c Collector
	tap := c.Tap()
	tap(1, 514, time.Second)
	tap(-1, 514, 2*time.Second)
	tr := c.Snapshot()
	if len(tr.Events) != 2 || tr.TotalOut() != 514 || tr.TotalIn() != 514 {
		t.Fatalf("snapshot wrong: %+v", tr)
	}
	c.Reset()
	if len(c.Snapshot().Events) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestFeaturesShapeAndDeterminism(t *testing.T) {
	tr := synthTrace(rand.New(rand.NewSource(1)), 3, 0)
	f1 := Features(tr, 50)
	f2 := Features(tr, 50)
	if len(f1) != NumFeatures(50) {
		t.Fatalf("feature length %d, want %d", len(f1), NumFeatures(50))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("features not deterministic")
		}
	}
	// Empty trace yields a valid zero vector.
	fe := Features(&Trace{}, 50)
	if len(fe) != NumFeatures(50) {
		t.Fatal("empty-trace features wrong length")
	}
}

func TestKNNHighAccuracyOnDistinctSites(t *testing.T) {
	traces := buildTraces(20, 8, 0, 0.2, 42)
	acc, err := EvaluateClosedWorld(NewKNN(3), traces, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("kNN accuracy %.2f on distinct sites, want ≥0.9", acc)
	}
}

func TestKNNChanceOnPaddedTraffic(t *testing.T) {
	traces := buildTraces(20, 8, 1<<20, 0, 43)
	acc, err := EvaluateClosedWorld(NewKNN(3), traces, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 20 classes: chance = 0.05. Allow generous slack.
	if acc > 0.25 {
		t.Fatalf("kNN accuracy %.2f on fully padded traffic, want ≈chance", acc)
	}
}

func TestCentroidOrderingMatchesKNN(t *testing.T) {
	distinct := buildTraces(10, 8, 0, 0.2, 44)
	padded := buildTraces(10, 8, 1<<20, 0, 45)
	accD, err := EvaluateClosedWorld(&Centroid{}, distinct, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	accP, err := EvaluateClosedWorld(&Centroid{}, padded, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if accD <= accP {
		t.Fatalf("centroid: defended (%.2f) ≥ undefended (%.2f)", accP, accD)
	}
	if accD < 0.8 {
		t.Fatalf("centroid accuracy %.2f on distinct sites too low", accD)
	}
}

func TestEvaluateClosedWorldValidation(t *testing.T) {
	traces := buildTraces(3, 2, 0, 0, 46)
	if _, err := EvaluateClosedWorld(NewKNN(3), traces, 2, 50); err == nil {
		t.Fatal("insufficient traces accepted")
	}
}

func TestKNNValidation(t *testing.T) {
	knn := NewKNN(0)
	if knn.K != 3 {
		t.Fatalf("default k = %d", knn.K)
	}
	if err := knn.Train(nil); err == nil {
		t.Fatal("empty training set accepted")
	}
	if err := knn.Train([]Sample{
		{Label: 0, Features: []float64{1, 2}},
		{Label: 1, Features: []float64{1}},
	}); err == nil {
		t.Fatal("inconsistent dimensions accepted")
	}
}

func TestKNNConstantFeatureStability(t *testing.T) {
	// A feature with zero variance must not produce NaNs.
	samples := []Sample{
		{Label: 0, Features: []float64{1, 5}},
		{Label: 0, Features: []float64{1, 6}},
		{Label: 1, Features: []float64{1, 50}},
		{Label: 1, Features: []float64{1, 51}},
	}
	knn := NewKNN(1)
	if err := knn.Train(samples); err != nil {
		t.Fatal(err)
	}
	if got := knn.Predict([]float64{1, 52}); got != 1 {
		t.Fatalf("predicted %d, want 1", got)
	}
	if got := knn.Predict([]float64{1, 5.5}); got != 0 {
		t.Fatalf("predicted %d, want 0", got)
	}
}
