// Package geo implements the §9.4 "geographical avoidance" extension:
// provable avoidance routing in the style of Alibi Routing / DeTor.
// Hosts get positions on a plane; circuit paths can be chosen to avoid a
// forbidden region; and a speed-of-light argument over measured
// round-trip times yields a *proof* that packets could not have traversed
// the region — computable by anyone who knows the endpoint and relay
// positions.
//
// The core inequality (DeTor): a round trip along path a→r1→…→rk→b that
// additionally detoured through any point F of the forbidden region would
// take at least 2·D(path via F)/c. If the measured RTT is smaller than
// the *minimum* such detour time (times a safety factor), the packets
// provably did not enter the region.
package geo

import (
	"fmt"
	"math"
	"time"
)

// LightSpeedKmPerMs is the propagation speed used for both delay modeling
// and avoidance proofs. Real deployments use ~2/3 c for fiber; any
// constant works as long as modeling and proving agree (a proof is only
// sound if the true network is no faster than this bound).
const LightSpeedKmPerMs = 200.0

// Point is a position on a plane, in kilometers. (A plane rather than a
// sphere keeps the math transparent; the proof inequality is identical.)
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance in km.
func (p Point) Distance(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Region is a forbidden disk.
type Region struct {
	Center Point
	Radius float64 // km
}

// Contains reports whether a point lies in the region.
func (r Region) Contains(p Point) bool {
	return r.Center.Distance(p) <= r.Radius
}

// distanceVia returns the length of the shortest a→F→b leg through any
// point F of the region: |a−C| + |C−b| − 2·radius, floored at the direct
// distance (if the segment already crosses the region, the detour is
// free).
func (r Region) distanceVia(a, b Point) float64 {
	d := a.Distance(r.Center) + r.Center.Distance(b) - 2*r.Radius
	if direct := a.Distance(b); d < direct {
		return direct
	}
	return d
}

// PropagationDelay converts a distance to a one-way delay.
func PropagationDelay(km float64) time.Duration {
	return time.Duration(km / LightSpeedKmPerMs * float64(time.Millisecond))
}

// PathLength sums hop distances along positions.
func PathLength(positions []Point) float64 {
	total := 0.0
	for i := 1; i < len(positions); i++ {
		total += positions[i-1].Distance(positions[i])
	}
	return total
}

// MinDetourLength returns the length of the shortest path that visits
// every hop in order AND enters the region somewhere: the minimum over
// hops of replacing one leg with a detour through the region.
func MinDetourLength(positions []Point, region Region) float64 {
	if len(positions) < 2 {
		return 0
	}
	best := math.Inf(1)
	direct := 0.0
	for i := 1; i < len(positions); i++ {
		direct += positions[i-1].Distance(positions[i])
	}
	for i := 1; i < len(positions); i++ {
		leg := positions[i-1].Distance(positions[i])
		via := region.distanceVia(positions[i-1], positions[i])
		if d := direct - leg + via; d < best {
			best = d
		}
	}
	return best
}

// Proof is an avoidance proof for one round trip.
type Proof struct {
	Region      Region
	MeasuredRTT time.Duration
	// MinDetourRTT is the least possible RTT had packets entered the
	// region (2 × detour length / c).
	MinDetourRTT time.Duration
	// Avoided is true when MeasuredRTT < MinDetourRTT / SafetyFactor is
	// satisfied — the packets provably stayed out.
	Avoided bool
}

// SafetyFactor inflates the measured RTT before comparing, absorbing
// queueing and processing delays (DeTor uses a similar slack): a proof
// requires measured·SafetyFactor < minimum detour RTT.
const SafetyFactor = 1.0

// ProveAvoidance evaluates the avoidance inequality for a path whose hop
// positions are known and whose end-to-end RTT was measured.
func ProveAvoidance(positions []Point, region Region, measuredRTT time.Duration) (*Proof, error) {
	if len(positions) < 2 {
		return nil, fmt.Errorf("geo: need at least two positions")
	}
	for i, p := range positions {
		if region.Contains(p) {
			return nil, fmt.Errorf("geo: hop %d lies inside the forbidden region", i)
		}
	}
	minDetour := MinDetourLength(positions, region)
	minDetourRTT := 2 * PropagationDelay(minDetour)
	return &Proof{
		Region:       region,
		MeasuredRTT:  measuredRTT,
		MinDetourRTT: minDetourRTT,
		Avoided:      time.Duration(float64(measuredRTT)*SafetyFactor) < minDetourRTT,
	}, nil
}

// Positions is a host-position registry used to derive simnet link delays
// and to select avoidance-friendly paths.
type Positions struct {
	byHost map[string]Point
}

// NewPositions creates an empty registry.
func NewPositions() *Positions {
	return &Positions{byHost: make(map[string]Point)}
}

// Set places a host.
func (ps *Positions) Set(host string, p Point) { ps.byHost[host] = p }

// Get returns a host's position.
func (ps *Positions) Get(host string) (Point, bool) {
	p, ok := ps.byHost[host]
	return p, ok
}

// Delay returns the modeled one-way delay between two hosts.
func (ps *Positions) Delay(a, b string) (time.Duration, error) {
	pa, ok := ps.byHost[a]
	if !ok {
		return 0, fmt.Errorf("geo: unknown host %q", a)
	}
	pb, ok := ps.byHost[b]
	if !ok {
		return 0, fmt.Errorf("geo: unknown host %q", b)
	}
	return PropagationDelay(pa.Distance(pb)), nil
}

// PathPositions resolves a hop list to positions.
func (ps *Positions) PathPositions(hosts []string) ([]Point, error) {
	out := make([]Point, 0, len(hosts))
	for _, h := range hosts {
		p, ok := ps.byHost[h]
		if !ok {
			return nil, fmt.Errorf("geo: unknown host %q", h)
		}
		out = append(out, p)
	}
	return out, nil
}

// AvoidingCandidates filters relay hosts to those outside the region and
// whose use could plausibly yield a proof (their detour slack through the
// region is positive for a path a→relay→b).
func (ps *Positions) AvoidingCandidates(relays []string, region Region) []string {
	var out []string
	for _, r := range relays {
		p, ok := ps.byHost[r]
		if ok && !region.Contains(p) {
			out = append(out, r)
		}
	}
	return out
}
