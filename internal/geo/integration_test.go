package geo_test

import (
	"io"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/geo"
	"github.com/bento-nfv/bento/internal/testbed"
	"github.com/bento-nfv/bento/internal/webfarm"
)

// TestAvoidanceOverOverlay runs the full §9.4 flow on the emulated
// overlay: hosts get positions, link delays derive from geography, a
// circuit is built through region-avoiding relays, the end-to-end RTT is
// measured through the live stack, and the speed-of-light inequality
// yields (or refuses) an avoidance proof.
func TestAvoidanceOverOverlay(t *testing.T) {
	site := webfarm.NamedSite("far.web", 1000, nil)
	w, err := testbed.New(testbed.Config{
		Relays:     6,
		BentoNodes: 0,
		Sites:      []*webfarm.Site{site},
		ClockScale: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	clock := w.Clock()

	// Geography: client in the west, destination in the east, relays
	// spread along a northern corridor; the forbidden region sits far to
	// the south.
	// Distances are scaled up so propagation dominates protocol and
	// CPU overheads in the measured RTT (the proof only errs toward
	// refusing proofs when overheads inflate the measurement).
	const km = 15.0
	ps := geo.NewPositions()
	ps.Set("client", geo.Point{X: 0, Y: 0})
	ps.Set("far.web", geo.Point{X: 6000 * km, Y: 0})
	relayPos := []geo.Point{
		{X: 1000 * km, Y: 800 * km}, {X: 2000 * km, Y: 900 * km}, {X: 3000 * km, Y: 850 * km},
		{X: 4000 * km, Y: 900 * km}, {X: 5000 * km, Y: 800 * km}, {X: 3000 * km, Y: -4500 * km},
	}
	var hosts []string
	for i, d := range w.Consensus.Relays {
		host := hostOf(d.Address)
		hosts = append(hosts, host)
		ps.Set(host, relayPos[i])
	}
	// Derive every link's delay from geography.
	all := append([]string{"client", "far.web"}, hosts...)
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			d, err := ps.Delay(all[i], all[j])
			if err != nil {
				t.Fatal(err)
			}
			w.Net.SetDelay(all[i], all[j], d)
		}
	}

	forbidden := geo.Region{Center: geo.Point{X: 3000 * km, Y: -5000 * km}, Radius: 800 * km}

	// Choose a path through region-avoiding relays (exclude relay5).
	candidates := ps.AvoidingCandidates(hosts, forbidden)
	if len(candidates) != 6 { // relay5 is outside the region too, just southern
		t.Logf("candidates: %v", candidates)
	}
	pick := func(nick string) *dirauth.Descriptor { return w.Consensus.Relay(nick) }
	path := []*dirauth.Descriptor{pick("relay0"), pick("relay2"), pick("relay4")}

	cli := w.NewTorClient("client", 5)
	circ, err := cli.BuildCircuit(path)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()

	// Warm the stream, then measure one request/response round trip —
	// the quantity DeTor's inequality is stated over.
	s, err := circ.OpenStream("far.web:80")
	if err != nil {
		t.Fatal(err)
	}
	req := []byte("GET / HTTP/1.0\r\nHost: far.web\r\n\r\n")
	buf := make([]byte, 64)
	s.Write(req)
	if _, err := s.Read(buf); err != nil {
		t.Fatal(err)
	}
	drainBriefly(s)
	start := clock.Now()
	s.Write(req)
	if _, err := s.Read(buf); err != nil {
		t.Fatal(err)
	}
	measured := clock.Now() - start
	s.Close()

	// Build the hop-position list client → relays → destination.
	hopHosts := []string{"client"}
	for _, d := range path {
		hopHosts = append(hopHosts, hostOf(d.Address))
	}
	hopHosts = append(hopHosts, "far.web")
	positions, err := ps.PathPositions(hopHosts)
	if err != nil {
		t.Fatal(err)
	}

	proof, err := geo.ProveAvoidance(positions, forbidden, measured)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("measured RTT %v, min detour RTT %v", proof.MeasuredRTT, proof.MinDetourRTT)
	if !proof.Avoided {
		t.Fatalf("northern path failed to prove avoidance (RTT %v vs detour %v)",
			measured, proof.MinDetourRTT)
	}

	// Counterexample: an RTT long enough to have allowed the detour must
	// not produce a proof.
	slow := proof.MinDetourRTT + 50*time.Millisecond
	noProof, err := geo.ProveAvoidance(positions, forbidden, slow)
	if err != nil {
		t.Fatal(err)
	}
	if noProof.Avoided {
		t.Fatal("slow RTT produced an avoidance proof")
	}
}

// drainBriefly consumes whatever response bytes remain buffered.
func drainBriefly(s io.Reader) {
	type deadliner interface{ SetReadDeadline(time.Time) error }
	if d, ok := s.(deadliner); ok {
		d.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		io.Copy(io.Discard, s)
		d.SetReadDeadline(time.Time{})
	}
}

func hostOf(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i]
		}
	}
	return addr
}
