package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDistanceAndDelay(t *testing.T) {
	a := Point{0, 0}
	b := Point{300, 400}
	if d := a.Distance(b); math.Abs(d-500) > 1e-9 {
		t.Fatalf("distance = %f, want 500", d)
	}
	if got := PropagationDelay(200); got != time.Millisecond {
		t.Fatalf("delay for 200km = %v, want 1ms", got)
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Center: Point{100, 100}, Radius: 50}
	if !r.Contains(Point{120, 120}) {
		t.Fatal("interior point not contained")
	}
	if r.Contains(Point{200, 200}) {
		t.Fatal("exterior point contained")
	}
	if !r.Contains(Point{150, 100}) {
		t.Fatal("boundary point not contained")
	}
}

func TestDistanceVia(t *testing.T) {
	// Region far off to the side: detour through it is long.
	r := Region{Center: Point{0, 1000}, Radius: 100}
	a, b := Point{-500, 0}, Point{500, 0}
	direct := a.Distance(b)
	via := r.distanceVia(a, b)
	if via <= direct {
		t.Fatalf("detour (%f) not longer than direct (%f)", via, direct)
	}
	// Region straddling the segment: detour is free.
	r2 := Region{Center: Point{0, 0}, Radius: 50}
	if via := r2.distanceVia(a, b); via != direct {
		t.Fatalf("on-path region should cost nothing extra: %f vs %f", via, direct)
	}
}

func TestProveAvoidancePositive(t *testing.T) {
	// A short path far from the region, measured at its honest RTT:
	// provably avoided.
	positions := []Point{{0, 0}, {200, 0}, {400, 0}}
	region := Region{Center: Point{200, 2000}, Radius: 100}
	honest := 2 * PropagationDelay(PathLength(positions))
	proof, err := ProveAvoidance(positions, region, honest)
	if err != nil {
		t.Fatal(err)
	}
	if !proof.Avoided {
		t.Fatalf("honest RTT %v did not prove avoidance (min detour %v)",
			proof.MeasuredRTT, proof.MinDetourRTT)
	}
}

func TestProveAvoidanceNegative(t *testing.T) {
	// A measured RTT large enough to have allowed a detour: no proof.
	positions := []Point{{0, 0}, {200, 0}, {400, 0}}
	region := Region{Center: Point{200, 300}, Radius: 50}
	slow := 2 * PropagationDelay(PathLength(positions)+2000)
	proof, err := ProveAvoidance(positions, region, slow)
	if err != nil {
		t.Fatal(err)
	}
	if proof.Avoided {
		t.Fatal("slow RTT yielded an avoidance proof")
	}
}

func TestProveAvoidanceRejectsHopInRegion(t *testing.T) {
	positions := []Point{{0, 0}, {100, 0}}
	region := Region{Center: Point{100, 0}, Radius: 10}
	if _, err := ProveAvoidance(positions, region, time.Millisecond); err == nil {
		t.Fatal("hop inside region accepted")
	}
	if _, err := ProveAvoidance([]Point{{0, 0}}, region, time.Millisecond); err == nil {
		t.Fatal("single-point path accepted")
	}
}

// Property (soundness): if the true path really detoured through the
// region, its honest RTT can never satisfy the proof inequality.
func TestProofSoundnessProperty(t *testing.T) {
	check := func(ax, ay, bx, by int8, rs uint8) bool {
		a := Point{float64(ax) * 10, float64(ay) * 10}
		b := Point{float64(bx) * 10, float64(by) * 10}
		region := Region{Center: Point{500, 500}, Radius: float64(rs%100) + 20}
		if region.Contains(a) || region.Contains(b) {
			return true // precondition
		}
		positions := []Point{a, b}
		// The adversary's packets actually went a→F→b through the
		// region's nearest point; their true RTT is at least the detour.
		trueLen := region.distanceVia(a, b)
		trueRTT := 2 * PropagationDelay(trueLen)
		proof, err := ProveAvoidance(positions, region, trueRTT)
		if err != nil {
			return true
		}
		return !proof.Avoided // must NOT prove avoidance
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (completeness for fast paths): an honest RTT strictly below
// every possible detour always proves avoidance.
func TestProofCompletenessProperty(t *testing.T) {
	check := func(off int8) bool {
		d := float64(off%50) * 20
		positions := []Point{{0, 0}, {300, 0}, {600, 0}}
		region := Region{Center: Point{300, 3000 + d}, Radius: 100}
		honest := 2 * PropagationDelay(PathLength(positions))
		proof, err := ProveAvoidance(positions, region, honest)
		return err == nil && proof.Avoided
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPositionsRegistry(t *testing.T) {
	ps := NewPositions()
	ps.Set("a", Point{0, 0})
	ps.Set("b", Point{400, 0})
	d, err := ps.Delay("a", "b")
	if err != nil || d != 2*time.Millisecond {
		t.Fatalf("delay: %v %v", d, err)
	}
	if _, err := ps.Delay("a", "missing"); err == nil {
		t.Fatal("unknown host delay computed")
	}
	pts, err := ps.PathPositions([]string{"a", "b"})
	if err != nil || len(pts) != 2 {
		t.Fatalf("path positions: %v %v", pts, err)
	}
	if _, err := ps.PathPositions([]string{"a", "zz"}); err == nil {
		t.Fatal("unknown hop resolved")
	}
	region := Region{Center: Point{400, 0}, Radius: 10}
	cands := ps.AvoidingCandidates([]string{"a", "b"}, region)
	if len(cands) != 1 || cands[0] != "a" {
		t.Fatalf("candidates = %v", cands)
	}
}

func TestMinDetourMultiHop(t *testing.T) {
	// The cheapest detour replaces the leg nearest the region.
	positions := []Point{{0, 0}, {1000, 0}, {2000, 0}}
	region := Region{Center: Point{1500, 2000}, Radius: 50}
	direct := PathLength(positions)
	min := MinDetourLength(positions, region)
	if min <= direct {
		t.Fatalf("detour %f not above direct %f", min, direct)
	}
	// Detour via the second leg (closest) must be what's chosen:
	viaSecond := positions[0].Distance(positions[1]) + region.distanceVia(positions[1], positions[2])
	if math.Abs(min-viaSecond) > 1e-9 {
		t.Fatalf("min detour %f != via-second-leg %f", min, viaSecond)
	}
}
