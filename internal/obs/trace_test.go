package obs

import (
	"sync"
	"testing"
)

// TestSpanRingConcurrentWraparound hammers a small ring from many
// writers and checks the overwrite accounting and retained contents
// stay coherent.
func TestSpanRingConcurrentWraparound(t *testing.T) {
	tr := NewTracer(64)
	const writers, perWriter = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				parent := tr.Start("parent")
				child := parent.Child("child")
				child.End()
				parent.End()
			}
		}()
	}
	wg.Wait()

	total, retained, dropped := tr.Stats()
	if want := uint64(writers * perWriter * 2); total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
	if retained != 64 {
		t.Fatalf("retained = %d, want 64", retained)
	}
	if dropped != total-64 {
		t.Fatalf("dropped = %d, want %d", dropped, total-64)
	}
	spans := tr.Spans()
	if len(spans) != 64 {
		t.Fatalf("Spans() = %d entries", len(spans))
	}
	seen := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		if s.ID == 0 || (s.Name != "parent" && s.Name != "child") {
			t.Fatalf("corrupt span in ring: %+v", s)
		}
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d in ring", s.ID)
		}
		seen[s.ID] = true
		if s.Name == "child" && s.Parent == 0 {
			t.Fatalf("child span lost its parent: %+v", s)
		}
	}
}

// TestSpanParentLinkageAcrossWrap checks that children completed after
// the ring wrapped still carry the parent ID assigned before the
// wrap.
func TestSpanParentLinkageAcrossWrap(t *testing.T) {
	tr := NewTracer(4)
	parent := tr.Start("root")
	for i := 0; i < 20; i++ { // wraps the 4-slot ring several times
		c := parent.Child("leaf")
		c.End()
	}
	for _, s := range tr.Spans() {
		if s.Name == "leaf" && s.Parent != parent.id {
			t.Fatalf("leaf parent = %d, want %d", s.Parent, parent.id)
		}
	}
	parent.End()
	total, _, _ := tr.Stats()
	if total != 21 {
		t.Fatalf("total = %d, want 21", total)
	}
}

// TestExportHookExactlyOnce pins the export-hook contract: every
// completed span reaches the hook exactly once, including spans whose
// ring slot is later overwritten, under concurrent writers.
func TestExportHookExactlyOnce(t *testing.T) {
	tr := NewTracer(8) // far smaller than the span count: wraps constantly
	var mu sync.Mutex
	seen := make(map[uint64]int)
	tr.SetExportHook(func(s Span) {
		mu.Lock()
		seen[s.ID]++
		mu.Unlock()
	})

	const writers, perWriter = 6, 200
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sp := tr.Start("op")
				sp.End()
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != writers*perWriter {
		t.Fatalf("hook saw %d distinct spans, want %d", len(seen), writers*perWriter)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("span %d exported %d times, want exactly once", id, n)
		}
	}
}

func TestExportHookUninstallAndNilSafety(t *testing.T) {
	var nilT *Tracer
	nilT.SetExportHook(func(Span) {}) // must not panic

	tr := NewTracer(4)
	var n int
	tr.SetExportHook(func(Span) { n++ })
	sp := tr.Start("a")
	sp.End()
	tr.SetExportHook(nil)
	sp = tr.Start("b")
	sp.End()
	if n != 1 {
		t.Fatalf("hook called %d times after uninstall, want 1", n)
	}
}

// TestExportSpansAsSeries checks the span→histogram bridge that makes
// trace timings windowable.
func TestExportSpansAsSeries(t *testing.T) {
	var nilReg *Registry
	nilReg.ExportSpansAsSeries() // no-op

	reg := NewRegistry()
	reg.ExportSpansAsSeries()
	for i := 0; i < 3; i++ {
		sp := reg.StartSpan("circuit.build")
		sp.End()
	}
	sp := reg.StartSpan("hs.publish")
	sp.End()

	snap := reg.Snapshot()
	if h, ok := snap.Histograms["span.circuit.build_ns"]; !ok || h.Count != 3 {
		t.Fatalf("span series missing or miscounted: %+v", snap.Histograms)
	}
	if h, ok := snap.Histograms["span.hs.publish_ns"]; !ok || h.Count != 1 {
		t.Fatalf("span series missing: %+v", snap.Histograms)
	}
}
