//go:build race

package obs

// raceEnabled reports whether the race detector is active; its shadow
// memory bookkeeping allocates, so zero-allocation assertions only hold
// without it.
const raceEnabled = true
