package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", BatchBuckets)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(7)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	sp := r.StartSpan("op")
	child := sp.Child("sub")
	child.Note("n")
	child.Fail(errors.New("boom"))
	child.End()
	sp.End()
	r.GaugeFunc("f", func() int64 { return 1 })
	r.SetClock(func() time.Duration { return 0 })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if r.Tracer() != nil {
		t.Fatal("nil registry tracer must be nil")
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("relay.cells")
	b := r.Counter("relay.cells")
	if a != b {
		t.Fatal("same name must yield the same counter handle")
	}
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("aggregated count = %d, want 2", a.Value())
	}
	h1 := r.Histogram("h", BatchBuckets)
	h2 := r.Histogram("h", LatencyBuckets) // later bounds ignored
	if h1 != h2 {
		t.Fatal("same name must yield the same histogram handle")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1} // <=10, <=100, overflow
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 || h.Sum() != 1122 || h.max.Load() != 1000 {
		t.Fatalf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.max.Load())
	}
}

func TestSpanRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		sp := tr.Start("op")
		sp.End()
	}
	total, retained, dropped := tr.Stats()
	if total != 10 || retained != 4 || dropped != 6 {
		t.Fatalf("total=%d retained=%d dropped=%d, want 10/4/6", total, retained, dropped)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// Oldest-first ordering: IDs 7,8,9,10 survive.
	for i, sp := range spans {
		if want := uint64(7 + i); sp.ID != want {
			t.Errorf("spans[%d].ID = %d, want %d", i, sp.ID, want)
		}
	}
}

func TestSpansVirtualClockAndHierarchy(t *testing.T) {
	r := NewRegistry()
	var now time.Duration
	r.SetClock(func() time.Duration { return now })

	root := r.StartSpan("circuit.build")
	now = 10 * time.Millisecond
	hop := root.Child("circuit.hop")
	hop.Note("guard3")
	now = 25 * time.Millisecond
	hop.End()
	now = 40 * time.Millisecond
	root.Fail(errors.New("timeout"))
	root.End()

	spans := r.Tracer().Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	h, rt := spans[0], spans[1]
	if h.Name != "circuit.hop" || h.Parent != rt.ID || h.Note != "guard3" {
		t.Fatalf("child span malformed: %+v (root %+v)", h, rt)
	}
	if h.Start != 10*time.Millisecond || h.Dur != 15*time.Millisecond {
		t.Fatalf("child timing start=%v dur=%v", h.Start, h.Dur)
	}
	if rt.Dur != 40*time.Millisecond || rt.Err != "timeout" {
		t.Fatalf("root timing/err: %+v", rt)
	}

	slow := r.Tracer().Slowest(1)
	if len(slow) != 1 || slow[0].Name != "circuit.build" {
		t.Fatalf("Slowest(1) = %+v", slow)
	}
}

func TestSnapshotAndDashboard(t *testing.T) {
	r := NewRegistry()
	r.SetClock(func() time.Duration { return time.Second })
	r.Counter("relay.cells_forwarded").Add(41)
	r.Counter("relay.cells_forwarded").Inc()
	r.Gauge("simnet.open_conns").Set(3)
	r.GaugeFunc("simnet.backlog_bytes", func() int64 { return 512 })
	r.Histogram("relay.flush_cells", BatchBuckets).Observe(8)
	r.Histogram("torclient.build_ns", LatencyBuckets).ObserveDuration(3 * time.Millisecond)
	sp := r.StartSpan("hs.publish")
	sp.End()

	s := r.Snapshot()
	if s.Counters["relay.cells_forwarded"] != 42 {
		t.Fatalf("counter = %d", s.Counters["relay.cells_forwarded"])
	}
	if s.Gauges["simnet.open_conns"] != 3 || s.Gauges["simnet.backlog_bytes"] != 512 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	if h := s.Histograms["relay.flush_cells"]; h.Count != 1 || h.Sum != 8 {
		t.Fatalf("hist = %+v", h)
	}
	if s.Spans.Total != 1 || len(s.Spans.Slowest) != 1 {
		t.Fatalf("spans = %+v", s.Spans)
	}
	if s.TakenAt != time.Second {
		t.Fatalf("TakenAt = %v", s.TakenAt)
	}

	// JSON round-trips.
	var back Snapshot
	if err := json.Unmarshal(s.JSON(), &back); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if back.Counters["relay.cells_forwarded"] != 42 {
		t.Fatal("JSON round-trip lost counter")
	}

	dash := s.Dashboard()
	for _, want := range []string{"[relay]", "[simnet]", "[torclient]", "cells_forwarded", "hs.publish", "spans: 1 total"} {
		if !strings.Contains(dash, want) {
			t.Errorf("dashboard missing %q:\n%s", want, dash)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", CountBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
				r.Gauge("g").Set(int64(j))
				sp := r.StartSpan("op")
				sp.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot().Dashboard()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("c=%d h=%d", c.Value(), h.Count())
	}
}

// TestHotPathAllocFree locks in the tentpole contract: pre-registered
// handle updates are allocation-free, live registry or nil.
func TestHotPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBuckets)
	var nc *Counter
	var nh *Histogram
	fn := func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(-1)
		h.Observe(123456)
		nc.Inc()
		nh.Observe(1)
	}
	fn()
	if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
		t.Fatalf("hot-path metric updates allocate %.2f/op, want 0", allocs)
	}
}
