//go:build !race

package obs

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
