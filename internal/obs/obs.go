// Package obs is the telemetry substrate for the whole stack: a
// lock-free metrics registry (counters, gauges, fixed-bucket
// histograms), a ring-buffered trace-span sink, and a snapshot/export
// surface (JSON + text dashboard).
//
// The design contract, in priority order:
//
//  1. Hot-path updates are a single atomic add with zero allocations.
//     Handles are pre-registered once (at component construction) and
//     then hammered from datapaths; Observe/Inc/Add never lock, never
//     allocate, and never touch a map.
//  2. The no-op sink is the zero value. A nil *Registry hands out nil
//     *Counter / *Gauge / *Histogram handles and zero SpanHandles, and
//     every method on those is nil-safe. Components therefore
//     instrument unconditionally — "telemetry off" is exactly the nil
//     registry, which is also the ablation baseline for measuring
//     instrumentation overhead.
//  3. Registration is idempotent by name: asking for "relay.cells_fwd"
//     twice (e.g. from six relays on one simnet) returns the same
//     handle, so counters aggregate across instances by construction.
//
// Spans are reserved for control paths (circuit build, stream open,
// HS publish/fetch, bento ops, interpreter runs) where a few small
// allocations are acceptable; per-cell datapaths use only counters and
// histograms.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil Counter is a
// valid no-op. Padding keeps each counter on its own cache line:
// counters are 8-byte values allocated back to back at registration, and
// hot ones (per-cell, per-chunk) are hammered from many goroutines, so
// without it unrelated counters false-share lines and the datapath pays
// for telemetry it never touched.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n may be any non-negative delta; negative deltas are a
// caller bug but are not policed on the hot path).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time level that can move both ways. The nil
// Gauge is a valid no-op. Padded for the same reason as Counter.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level (0 for the nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// edges; one implicit overflow bucket catches everything beyond the
// last bound. Observe is a linear scan over a handful of bounds plus
// three atomic adds — no locks, no allocation. The nil Histogram is a
// valid no-op.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64
	count  atomic.Int64
	max    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of samples (0 for the nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Canned bucket layouts. Values are inclusive upper bounds.
var (
	// LatencyBuckets covers virtual-time latencies from 10µs to ~41s,
	// in nanoseconds (use ObserveDuration).
	LatencyBuckets = ExpBuckets(int64(10*time.Microsecond), 4, 11)
	// BatchBuckets covers BatchWriter flush sizes in cells.
	BatchBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	// CountBuckets covers wide-ranging counts (interpreter steps,
	// byte totals).
	CountBuckets = ExpBuckets(1, 8, 9)
	// PercentBuckets covers 0-100 ratios.
	PercentBuckets = []int64{1, 5, 10, 25, 50, 75, 90, 100}
)

// ExpBuckets builds n exponentially spaced bounds starting at start
// and multiplying by factor.
func ExpBuckets(start, factor int64, n int) []int64 {
	b := make([]int64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// entryKind tags a registry entry for the Windower's typed iteration.
type entryKind uint8

const (
	entryCounter entryKind = iota
	entryGauge
	entryHist
	entryGaugeFn
)

// entry is one registered metric in registration order. The entries
// slice is append-only: once an index exists its name/kind/handles
// never change (a GaugeFunc re-registration swaps the callback inside
// the shared fnHolder, not the entry), so samplers can remember "I
// have consumed the first n entries" and only take the registry lock
// when the atomic entry count grows.
type entry struct {
	name string
	kind entryKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   *fnHolder
}

// fnHolder indirects a GaugeFunc callback so re-registering a name
// (the documented replace semantics, exercised every time a component
// is rebuilt on a reused registry) is visible to samplers that cached
// the entry.
type fnHolder struct{ v atomic.Value } // func() int64

func (f *fnHolder) get() func() int64 { return f.v.Load().(func() int64) }

// Registry hands out named metric handles and owns the span sink.
// Handle lookup takes a mutex (registration is cold); the handles
// themselves are lock-free. The nil *Registry is the canonical no-op
// sink: every method works and does nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	gaugeFns map[string]*fnHolder
	entries  []entry
	nEntries atomic.Int64
	tracer   *Tracer
}

// NewRegistry returns a live registry with a span ring of the default
// capacity, clocked by wall time until SetClock is called.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		gaugeFns: make(map[string]*fnHolder),
		tracer:   NewTracer(DefaultSpanRing),
	}
}

// addEntry appends to the entry log; callers hold r.mu.
func (r *Registry) addEntry(e entry) {
	r.entries = append(r.entries, e)
	r.nEntries.Store(int64(len(r.entries)))
}

// numEntries is the lock-free length of the entry log.
func (r *Registry) numEntries() int { return int(r.nEntries.Load()) }

// entryAt returns entry i (< numEntries). It locks only because the
// slice header may be reallocated by a concurrent append; samplers
// call it once per newly seen entry, never on the steady-state path.
func (r *Registry) entryAt(i int) entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[i]
}

// SetClock points span timestamps (and Snapshot.TakenAt) at a
// monotonic time source — typically the simnet virtual clock's Now —
// so trace durations are in virtual, not wall, time.
func (r *Registry) SetClock(now func() time.Duration) {
	if r == nil || now == nil {
		return
	}
	r.tracer.now.Store(now)
}

// Counter returns the counter registered under name, creating it on
// first use. Nil registry → nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
		r.addEntry(entry{name: name, kind: entryCounter, c: c})
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
		r.addEntry(entry{name: name, kind: entryGauge, g: g})
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds on first use. Later registrations under the
// same name share the first caller's bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
		r.addEntry(entry{name: name, kind: entryHist, h: h})
	}
	return h
}

// GaugeFunc registers a callback sampled at snapshot time — for
// levels that live in someone else's data structure (open conns,
// token-bucket backlog). The callback must be safe to call from any
// goroutine. Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.gaugeFns[name]
	if h == nil {
		h = &fnHolder{}
		r.gaugeFns[name] = h
		h.v.Store(fn)
		r.addEntry(entry{name: name, kind: entryGaugeFn, fn: h})
		return
	}
	h.v.Store(fn)
}

// Tracer returns the span sink (nil for the nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// StartSpan opens a root span. The zero SpanHandle returned for a nil
// registry is a valid no-op.
func (r *Registry) StartSpan(name string) SpanHandle {
	if r == nil {
		return SpanHandle{}
	}
	return r.tracer.Start(name)
}
