package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// stepClock is a hand-cranked SampleClock: tests advance it and call
// Windower.tick directly, so window math is exact and deterministic.
type stepClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *stepClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After never fires; tests using stepClock drive ticks by hand.
func (c *stepClock) After(d time.Duration) <-chan time.Time { return make(chan time.Time) }
func (c *stepClock) Blocking() func()                       { return func() {} }

func (c *stepClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func (c *stepClock) set(d time.Duration) {
	c.mu.Lock()
	c.now = d
	c.mu.Unlock()
}

func newTestWindower(reg *Registry, slots int) (*Windower, *stepClock) {
	clk := &stepClock{now: time.Second}
	w := newWindower(reg, WindowConfig{Interval: time.Second, Slots: slots, Clock: clk})
	return w, clk
}

func (w *Windower) step(clk *stepClock, d time.Duration) {
	clk.advance(d)
	w.tick()
}

func TestWindowerNilNoOp(t *testing.T) {
	w := NewWindower(nil, WindowConfig{})
	if w != nil {
		t.Fatalf("NewWindower(nil) = %v, want nil", w)
	}
	w.Close()
	w.tick()
	if w.Window() != nil {
		t.Fatal("nil Windower.Window() should be nil")
	}
	if got := w.Interval(); got != 0 {
		t.Fatalf("nil Interval = %v", got)
	}
	if w.Samples() != 0 || w.Resets() != 0 {
		t.Fatal("nil Windower counters should be 0")
	}
	s := w.Subscribe(4)
	if s != nil {
		t.Fatalf("nil Subscribe = %v, want nil", s)
	}
	s.Close()
	if s.C() != nil {
		t.Fatal("nil Stream.C() should be nil")
	}
	if s.Dropped() != 0 {
		t.Fatal("nil Stream.Dropped() should be 0")
	}
	var ws *WindowSnapshot
	if ws.Find("x") != nil {
		t.Fatal("nil snapshot Find should be nil")
	}
	if got := ws.AppendLineProtocol(nil); got != nil {
		t.Fatalf("nil snapshot line protocol = %q", got)
	}
}

func TestWindowerRatesAndPercentiles(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("app.requests")
	g := reg.Gauge("app.queue")
	h := reg.Histogram("app.latency_ns", []int64{100, 200, 400, 800})
	reg.GaugeFunc("app.level", func() int64 { return 42 })

	w, clk := newTestWindower(reg, 8)
	w.tick() // priming sample

	c.Add(10)
	g.Set(5)
	for i := 0; i < 90; i++ {
		h.Observe(150) // bucket (100,200]
	}
	for i := 0; i < 10; i++ {
		h.Observe(700) // bucket (400,800]
	}
	w.step(clk, time.Second)

	ws := w.Window()
	cs := ws.Find("app.requests")
	if cs == nil || cs.Last != 10 {
		t.Fatalf("counter stat = %+v", cs)
	}
	if cs.Rate < 9.9 || cs.Rate > 10.1 {
		t.Fatalf("counter rate = %v, want ~10/s", cs.Rate)
	}
	if cs.EWMA < 9.9 || cs.EWMA > 10.1 {
		t.Fatalf("first ewma should prime to rate, got %v", cs.EWMA)
	}
	gs := ws.Find("app.queue")
	if gs == nil || gs.Last != 5 || gs.Kind != "gauge" {
		t.Fatalf("gauge stat = %+v", gs)
	}
	fs := ws.Find("app.level")
	if fs == nil || fs.Last != 42 || fs.Kind != "gaugefn" {
		t.Fatalf("gaugefn stat = %+v", fs)
	}
	hs := ws.Find("app.latency_ns")
	if hs == nil || hs.Count != 100 || hs.Sum != 90*150+10*700 {
		t.Fatalf("hist stat = %+v", hs)
	}
	// p50 of 90x150 + 10x700: rank 50 lands mid bucket (100,200].
	if hs.P50 < 100 || hs.P50 > 200 {
		t.Fatalf("p50 = %d, want in (100,200]", hs.P50)
	}
	// p95 rank 95 lands in (400,800].
	if hs.P95 <= 400 || hs.P95 > 800 {
		t.Fatalf("p95 = %d, want in (400,800]", hs.P95)
	}
	if hs.P99 <= 400 || hs.P99 > 800 {
		t.Fatalf("p99 = %d, want in (400,800]", hs.P99)
	}
	wantMean := float64(90*150+10*700) / 100
	if hs.Mean != wantMean {
		t.Fatalf("mean = %v, want %v", hs.Mean, wantMean)
	}

	// EWMA converges toward a sustained rate.
	for i := 0; i < 20; i++ {
		c.Add(30)
		w.step(clk, time.Second)
	}
	cs = w.Window().Find("app.requests")
	if cs.EWMA < 28 || cs.EWMA > 31 {
		t.Fatalf("ewma after sustained 30/s = %v", cs.EWMA)
	}
}

func TestWindowerEvictsOldObservations(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("app.lat", []int64{10, 100, 1000})
	w, clk := newTestWindower(reg, 4)
	w.tick()

	for i := 0; i < 50; i++ {
		h.Observe(5)
	}
	w.step(clk, time.Second)
	if got := w.Window().Find("app.lat"); got.Count != 50 || got.P95 > 10 {
		t.Fatalf("initial window = %+v", got)
	}
	// Let the burst of small samples age out of the 4-slot ring while
	// large samples arrive.
	for i := 0; i < 6; i++ {
		h.Observe(500)
		w.step(clk, time.Second)
	}
	got := w.Window().Find("app.lat")
	if got.Count >= 50 {
		t.Fatalf("old samples should have aged out; window count = %d", got.Count)
	}
	if got.P50 <= 100 {
		t.Fatalf("windowed p50 should reflect only recent large samples, got %d", got.P50)
	}
}

func TestWindowerMonotonicSafeDeltas(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("app.ops")
	w, clk := newTestWindower(reg, 8)
	w.tick()

	c.Add(100)
	w.step(clk, time.Second)
	if r := w.Window().Find("app.ops").Rate; r < 99 || r > 101 {
		t.Fatalf("rate = %v", r)
	}

	// A counter moving backwards (registry reused across a component
	// rebuild, or caller bug) must clamp to zero, not go negative or
	// wrap.
	c.Add(-80)
	w.step(clk, time.Second)
	st := w.Window().Find("app.ops")
	if st.Rate != 0 {
		t.Fatalf("negative delta should clamp: rate = %v", st.Rate)
	}
	if st.WindowRate < 0 {
		t.Fatalf("window rate went negative: %v", st.WindowRate)
	}
}

func TestWindowerClockRegressionResets(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("app.ops")
	w, clk := newTestWindower(reg, 8)
	w.tick()
	c.Add(50)
	w.step(clk, time.Second)
	if w.Resets() != 0 {
		t.Fatalf("unexpected reset")
	}

	// Simulate a testbed restart rebinding the world to a fresh
	// virtual clock: time jumps backwards.
	clk.set(10 * time.Millisecond)
	w.tick()
	if w.Resets() != 1 {
		t.Fatalf("resets = %d, want 1", w.Resets())
	}
	st := w.Window().Find("app.ops")
	if st.Rate != 0 || st.EWMA != 0 {
		t.Fatalf("post-reset stats should be re-primed: %+v", st)
	}
	// And the ring recovers on the new timeline.
	c.Add(20)
	w.step(clk, time.Second)
	st = w.Window().Find("app.ops")
	if st.Rate < 19 || st.Rate > 21 {
		t.Fatalf("post-reset rate = %v, want ~20/s", st.Rate)
	}
}

func TestWindowerLateRegistration(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.first")
	w, clk := newTestWindower(reg, 8)
	w.tick()
	w.step(clk, time.Second)

	// Metrics registered after the sampler started are picked up on
	// the next tick.
	late := reg.Counter("z.late")
	late.Add(7)
	w.step(clk, time.Second)
	if st := w.Window().Find("z.late"); st == nil || st.Last != 7 {
		t.Fatalf("late-registered series missing: %+v", st)
	}
	// Its rate needs a second post-registration sample (first is its
	// own baseline).
	late.Add(7)
	w.step(clk, time.Second)
	if st := w.Window().Find("z.late"); st.Rate < 6.9 || st.Rate > 7.1 {
		t.Fatalf("late series rate = %+v", st)
	}
}

func TestWindowerGaugeFuncReplacementVisible(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("sim.level", func() int64 { return 1 })
	w, clk := newTestWindower(reg, 8)
	w.tick()
	w.step(clk, time.Second)
	if st := w.Window().Find("sim.level"); st.Last != 1 {
		t.Fatalf("gaugefn = %+v", st)
	}
	// Re-registering the name (component rebuilt on a reused
	// registry) must swap the callback under the live sampler.
	reg.GaugeFunc("sim.level", func() int64 { return 9 })
	w.step(clk, time.Second)
	if st := w.Window().Find("sim.level"); st.Last != 9 {
		t.Fatalf("replaced gaugefn not visible: %+v", st)
	}
}

func TestStreamDropOldest(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("app.x")
	w, clk := newTestWindower(reg, 8)
	st := w.Subscribe(2)
	w.tick() // priming: not published

	for i := 0; i < 5; i++ {
		c.Inc()
		w.step(clk, time.Second)
	}
	// 5 published windows into a depth-2 channel: the 3 oldest drop.
	if d := st.Dropped(); d != 3 {
		t.Fatalf("dropped = %d, want 3", d)
	}
	first := <-st.C()
	second := <-st.C()
	if first.Seq >= second.Seq {
		t.Fatalf("stream out of order: %d then %d", first.Seq, second.Seq)
	}
	// The newest window survives.
	if second.Find("app.x").Last != 5 {
		t.Fatalf("newest window lost: %+v", second.Find("app.x"))
	}
	select {
	case <-st.C():
		t.Fatal("expected empty channel")
	default:
	}

	st.Close()
	if _, ok := <-st.C(); ok {
		t.Fatal("closed stream channel should be closed")
	}
	// Publishing after close must not panic.
	c.Inc()
	w.step(clk, time.Second)

	st2 := w.Subscribe(1)
	w.Close()
	if _, ok := <-st2.C(); ok {
		t.Fatal("windower Close should close subscriber channels")
	}
	if s := w.Subscribe(1); s == nil {
		t.Fatal("Subscribe after Close should return a closed, non-nil stream")
	} else if _, ok := <-s.C(); ok {
		t.Fatal("post-Close subscription should be closed")
	}
}

func TestWindowerLiveCadence(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("app.x")
	w := NewWindower(reg, WindowConfig{Interval: 5 * time.Millisecond, Slots: 16})
	defer w.Close()
	st := w.Subscribe(4)
	deadline := time.After(5 * time.Second)
	for i := 0; i < 3; i++ {
		c.Add(10)
		select {
		case ws := <-st.C():
			if ws == nil {
				t.Fatal("nil window")
			}
		case <-deadline:
			t.Fatal("no windows published on live cadence")
		}
	}
	if w.Samples() < 3 {
		t.Fatalf("samples = %d", w.Samples())
	}
}

func TestWindowSnapshotLineProtocolAndDashboard(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("b.ctr")
	hist := reg.Histogram("a.lat_ns", []int64{100, 1000})
	w, clk := newTestWindower(reg, 8)
	w.tick()
	ctr.Add(3)
	hist.Observe(500)
	w.step(clk, time.Second)
	ws := w.Window()

	// Series sorted by name for stable diffing.
	if len(ws.Series) != 2 || ws.Series[0].Name != "a.lat_ns" || ws.Series[1].Name != "b.ctr" {
		t.Fatalf("series order: %+v", ws.Series)
	}

	lp := string(ws.LineProtocol())
	lines := strings.Split(strings.TrimSpace(lp), "\n")
	if len(lines) != 2 {
		t.Fatalf("line protocol lines = %d:\n%s", len(lines), lp)
	}
	if !strings.HasPrefix(lines[0], "a.lat_ns,kind=hist ") {
		t.Fatalf("hist line = %q", lines[0])
	}
	for _, want := range []string{"count=1i", "sum=500i", "p95="} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("hist line missing %q: %q", want, lines[0])
		}
	}
	if !strings.Contains(lines[1], "b.ctr,kind=counter last=3i,rate=") {
		t.Fatalf("counter line = %q", lines[1])
	}
	ts := fmt.Sprintf(" %d", int64(ws.At))
	if !strings.HasSuffix(lines[0], ts) || !strings.HasSuffix(lines[1], ts) {
		t.Fatalf("timestamps missing: %q", lines)
	}

	dash := ws.Dashboard()
	for _, want := range []string{"a.lat_ns", "b.ctr", "p95"} {
		if !strings.Contains(dash, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, dash)
		}
	}
	var nilWS *WindowSnapshot
	if !strings.Contains(nilWS.Dashboard(), "disabled") {
		t.Fatal("nil snapshot dashboard")
	}
}

func TestHistSnapshotQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q.h", []int64{10, 20, 40})
	for i := 0; i < 50; i++ {
		h.Observe(5)
	}
	for i := 0; i < 50; i++ {
		h.Observe(15)
	}
	h.Observe(1000) // overflow
	snap := reg.Snapshot().Histograms["q.h"]
	if p := snap.Quantile(0.25); p <= 0 || p > 10 {
		t.Fatalf("p25 = %d", p)
	}
	if p := snap.Quantile(0.75); p <= 10 || p > 20 {
		t.Fatalf("p75 = %d", p)
	}
	// Overflow samples report the last bound.
	if p := snap.Quantile(1.0); p != 40 {
		t.Fatalf("p100 = %d, want 40 (last bound)", p)
	}
	if p := (HistSnapshot{}).Quantile(0.5); p != 0 {
		t.Fatalf("empty quantile = %d", p)
	}
}

// TestWindowerSampleAllocFree pins the tentpole contract: a live
// Windower's steady-state sample tick performs zero allocations, even
// with counters, gauges, gauge funcs, and histograms all registered.
func TestWindowerSampleAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counting is unreliable under the race detector")
	}
	reg := NewRegistry()
	ctr := reg.Counter("app.ops")
	gauge := reg.Gauge("app.depth")
	hist := reg.Histogram("app.lat_ns", LatencyBuckets)
	reg.GaugeFunc("app.level", func() int64 { return 11 })

	w, clk := newTestWindower(reg, 16)
	// Warm: absorb all series (registration-time allocation) and fill
	// the ring once.
	for i := 0; i < 20; i++ {
		w.step(clk, time.Second)
	}
	allocs := testing.AllocsPerRun(200, func() {
		ctr.Add(3)
		gauge.Set(7)
		hist.Observe(int64(50 * time.Microsecond))
		w.step(clk, time.Second)
	})
	if allocs != 0 {
		t.Fatalf("windower sample path allocates: %v allocs/op, want 0", allocs)
	}
}
