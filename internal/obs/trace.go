package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanRing is the span ring capacity used by NewRegistry.
const DefaultSpanRing = 4096

// Span is a completed trace span. IDs are process-unique; Parent is 0
// for roots. Start and Dur are in the registry's clock domain
// (virtual time once SetClock has pointed it at the simnet clock).
type Span struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Note   string        `json:"note,omitempty"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Err    string        `json:"err,omitempty"`
}

// Tracer records completed spans into a fixed-size ring buffer. When
// the ring is full the oldest span is overwritten; Total and Dropped
// accounting keeps the loss visible. The nil *Tracer is a valid
// no-op sink.
type Tracer struct {
	ids atomic.Uint64
	now atomic.Value // func() time.Duration

	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
	hook  func(Span)
}

// SetExportHook installs fn to be called exactly once for every span
// that completes from now on, after the span is committed to the
// ring. The hook runs synchronously on the goroutine that ended the
// span (outside the ring lock, so it may itself start spans) — keep
// it fast; fan-out and buffering belong to the hook. A nil fn
// uninstalls. Nil tracer → no-op.
func (t *Tracer) SetExportHook(fn func(Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.hook = fn
	t.mu.Unlock()
}

// NewTracer returns a tracer with a ring of the given capacity
// (minimum 1), clocked by wall time since creation until a registry
// SetClock replaces the source.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{buf: make([]Span, 0, capacity)}
	epoch := time.Now()
	t.now.Store(func() time.Duration { return time.Since(epoch) })
	return t
}

func (t *Tracer) clock() time.Duration {
	return t.now.Load().(func() time.Duration)()
}

// Start opens a root span. Spans are for control paths; opening one
// is cheap but not free (it reads the clock), and ending one takes
// the ring mutex.
func (t *Tracer) Start(name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: t, id: t.ids.Add(1), name: name, start: t.clock()}
}

func (t *Tracer) record(s Span) {
	t.mu.Lock()
	t.total++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
		t.next = (t.next + 1) % len(t.buf)
	}
	hook := t.hook
	t.mu.Unlock()
	if hook != nil {
		hook(s)
	}
}

// Stats reports lifetime span accounting: how many spans completed,
// how many are retained in the ring, and how many were overwritten.
func (t *Tracer) Stats() (total, retained, dropped uint64) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total, uint64(len(t.buf)), t.total - uint64(len(t.buf))
}

// Spans returns a copy of the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Slowest returns up to n retained spans ordered by descending
// duration.
func (t *Tracer) Slowest(n int) []Span {
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Dur > spans[j].Dur })
	if len(spans) > n {
		spans = spans[:n]
	}
	return spans
}

// SpanHandle is an open span. The zero SpanHandle (from a nil tracer
// or registry) is a valid no-op: Child, Note, Fail and End all work
// and record nothing. Handles are owned by the goroutine that started
// them; End must be called exactly once, after which the handle is
// dead.
type SpanHandle struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	note   string
	start  time.Duration
	err    string
}

// Child opens a sub-span attributed to this span.
func (h *SpanHandle) Child(name string) SpanHandle {
	if h.t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: h.t, id: h.t.ids.Add(1), parent: h.id, name: name, start: h.t.clock()}
}

// Note attaches a short human-readable annotation (relay nickname,
// function name); the last note wins.
func (h *SpanHandle) Note(note string) {
	if h.t != nil {
		h.note = note
	}
}

// Fail marks the span as failed with the error's text.
func (h *SpanHandle) Fail(err error) {
	if h.t != nil && err != nil {
		h.err = err.Error()
	}
}

// End closes the span and commits it to the ring.
func (h *SpanHandle) End() {
	if h.t == nil {
		return
	}
	end := h.t.clock()
	h.t.record(Span{
		ID:     h.id,
		Parent: h.parent,
		Name:   h.name,
		Note:   h.note,
		Start:  h.start,
		Dur:    end - h.start,
		Err:    h.err,
	})
	h.t = nil
}
