package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the time-series half of the obs package: a Windower
// samples a Registry on a fixed (virtual-clock-driven) cadence into a
// ring of cumulative snapshots and derives rates, EWMAs, and windowed
// percentiles from the deltas; Streams fan the resulting
// WindowSnapshots out to subscribers with drop-oldest backpressure.
//
// The contract mirrors the rest of the package:
//
//   - The steady-state sample path performs zero allocations. All ring
//     storage is preallocated when a series is first seen; a
//     WindowSnapshot is only materialized when a subscriber exists.
//     (GaugeFunc callbacks run on the sampler goroutine at sample time;
//     whatever they allocate is the callback's own cost.)
//   - The nil *Windower — what NewWindower returns for a nil registry —
//     is a valid no-op: every method works and does nothing.
//   - Deltas are monotonic-safe: a counter that appears to move
//     backwards (component rebuilt on a reused registry, caller bug)
//     clamps to zero rather than producing a huge negative or
//     wrapped-positive rate, and a sampler clock that jumps backwards
//     (registry rebound to a fresh virtual clock across a testbed
//     restart) resets the ring and re-primes instead of emitting
//     garbage windows.

// SampleClock is the Windower's time source. *simnet.Clock satisfies
// it directly; the zero-config default is wall time. Blocking must
// follow the simnet convention: mark the caller as externally blocked
// for the duration of a select, so a discrete-event core does not
// stall waiting for the sampler goroutine.
type SampleClock interface {
	Now() time.Duration
	After(d time.Duration) <-chan time.Time
	Blocking() func()
}

// tickScheduler is an optional SampleClock capability: a clock that can
// run callbacks on its own scheduling goroutine (simnet's Clock.Schedule
// matches structurally). When present, the Windower re-arms each tick
// from inside the previous tick's callback instead of running a cadence
// goroutine. On a discrete-event core this is the only reliable shape —
// a goroutine selecting on After can lose the re-arm race against the
// dispatcher's quiescence detector and miss ticks forever, while a
// scheduled event is always in the wheel before time advances.
type tickScheduler interface {
	Schedule(d time.Duration, f func()) func() bool
}

// wallSampleClock adapts the wall clock to SampleClock.
type wallSampleClock struct{ epoch time.Time }

func (w wallSampleClock) Now() time.Duration                     { return time.Since(w.epoch) }
func (w wallSampleClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (w wallSampleClock) Blocking() func()                       { return func() {} }

// WindowConfig tunes a Windower. The zero value is usable: 1s
// interval, 60 slots (a one-minute window), EWMA alpha 0.3, wall
// clock.
type WindowConfig struct {
	// Interval is the sampling cadence in the clock's domain.
	Interval time.Duration
	// Slots is the ring depth; the retained window spans
	// Slots*Interval once warm.
	Slots int
	// EWMAAlpha is the smoothing factor for the per-series EWMA
	// (weight of the newest interval). 0 < alpha <= 1.
	EWMAAlpha float64
	// Clock drives the cadence and timestamps. Use the deployment's
	// *simnet.Clock so windows tick in virtual time; nil means wall.
	Clock SampleClock
}

func (c *WindowConfig) fill() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Slots < 2 {
		c.Slots = 60
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.3
	}
	if c.Clock == nil {
		c.Clock = wallSampleClock{epoch: time.Now()}
	}
}

// wseries is the Windower's per-metric ring state. vals holds the
// cumulative observation per slot (counter total, gauge level,
// gauge-func level, histogram count is tracked in hcount); histograms
// additionally ring their cumulative per-bucket counts and sum so
// windowed percentiles and means come from newest-minus-oldest bucket
// deltas.
type wseries struct {
	name string
	kind entryKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   *fnHolder

	vals   []int64 // len Slots
	hcum   []int64 // len Slots*nb, row-major by slot
	hcount []int64 // len Slots
	hsum   []int64 // len Slots
	nb     int
	hdelta []int64 // scratch, len nb

	filled int // valid slots, <= Slots

	// Derived stats, refreshed each sample.
	last          int64
	rate          float64 // per-second over the newest interval
	wrate         float64 // per-second over the retained window
	ewma          float64
	primed        bool
	wcount, wsum  int64
	mean          float64
	p50, p95, p99 int64
}

func (s *wseries) kindStr() string {
	switch s.kind {
	case entryCounter:
		return "counter"
	case entryGauge:
		return "gauge"
	case entryGaugeFn:
		return "gaugefn"
	default:
		return "hist"
	}
}

// Windower samples a Registry every Interval into a fixed ring and
// publishes derived WindowSnapshots to subscribers. Create with
// NewWindower; stop with Close.
type Windower struct {
	reg   *Registry
	cfg   WindowConfig
	clock SampleClock

	done      chan struct{}
	closeOnce sync.Once

	mu      sync.Mutex
	series  []*wseries
	order   []int // series indexes sorted by name
	nSeen   int   // registry entries consumed
	times   []time.Duration
	head    int
	filled  int // global valid slots since last reset
	lastAt  time.Duration
	samples uint64
	resets  uint64
	subs    []*Stream

	tickCancel func() bool // pending tick in scheduler-driven mode
}

// NewWindower starts a sampler over reg. A nil registry yields a nil
// Windower, on which every method is a safe no-op — the same ablation
// contract as the rest of the package. Clocks that expose Schedule
// (simnet's, on either core) drive ticks as scheduled events; others
// get a cadence goroutine selecting on After.
func NewWindower(reg *Registry, cfg WindowConfig) *Windower {
	w := newWindower(reg, cfg)
	if w == nil {
		return nil
	}
	if ts, ok := w.clock.(tickScheduler); ok {
		w.armScheduled(ts)
	} else {
		go w.run()
	}
	return w
}

// newWindower builds the sampler without starting the cadence
// goroutine; tests drive ticks by hand.
func newWindower(reg *Registry, cfg WindowConfig) *Windower {
	if reg == nil {
		return nil
	}
	cfg.fill()
	return &Windower{
		reg:    reg,
		cfg:    cfg,
		clock:  cfg.Clock,
		done:   make(chan struct{}),
		times:  make([]time.Duration, cfg.Slots),
		head:   -1,
		lastAt: -1,
	}
}

// Interval reports the configured cadence (0 for the nil Windower).
func (w *Windower) Interval() time.Duration {
	if w == nil {
		return 0
	}
	return w.cfg.Interval
}

// Samples reports how many sample ticks have run.
func (w *Windower) Samples() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.samples
}

// Resets reports how many times a clock regression forced the ring to
// re-prime.
func (w *Windower) Resets() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.resets
}

// Close stops the sampler and closes all subscriber channels.
func (w *Windower) Close() {
	if w == nil {
		return
	}
	w.closeOnce.Do(func() {
		close(w.done)
		w.mu.Lock()
		if w.tickCancel != nil {
			w.tickCancel()
			w.tickCancel = nil
		}
		for _, s := range w.subs {
			s.closed = true
			close(s.ch)
		}
		w.subs = nil
		w.mu.Unlock()
	})
}

// armScheduled starts the tick chain on a scheduler-capable clock: each
// fire samples and schedules the next, so the pending tick is in the
// clock's wheel before virtual time can move past it. A fire that loses
// the race with Close sees done closed and ends the chain (Close also
// cancels the stored pending tick, so at most one no-op fire escapes).
func (w *Windower) armScheduled(ts tickScheduler) {
	var fire func()
	arm := func() {
		cancel := ts.Schedule(w.cfg.Interval, fire)
		w.mu.Lock()
		w.tickCancel = cancel
		w.mu.Unlock()
	}
	fire = func() {
		select {
		case <-w.done:
			return
		default:
		}
		w.tick()
		arm()
	}
	arm()
}

// run is the cadence loop for clocks without Schedule (wall clock, test
// fakes): block on After, bracketed with Blocking so an event-style
// SampleClock implementation can account for the sampler goroutine.
func (w *Windower) run() {
	for {
		unblock := w.clock.Blocking()
		select {
		case <-w.done:
			unblock()
			return
		case <-w.clock.After(w.cfg.Interval):
			unblock()
		}
		w.tick()
	}
}

// tick runs one sample and publishes to subscribers if warranted.
func (w *Windower) tick() {
	if w == nil {
		return
	}
	now := w.clock.Now()
	w.mu.Lock()
	publish := w.sampleLocked(now)
	if publish && len(w.subs) > 0 {
		snap := w.buildSnapshotLocked()
		for _, s := range w.subs {
			s.push(snap)
		}
	}
	w.mu.Unlock()
}

// sampleLocked takes one sample at time now. Returns false on priming
// and reset ticks (no deltas to publish). Zero allocations except
// when new registry entries appeared since the last tick.
func (w *Windower) sampleLocked(now time.Duration) bool {
	w.syncSeriesLocked()

	dt := now - w.lastAt
	primer := w.samples == 0
	if !primer && dt <= 0 {
		// Clock regression: the registry's world was rebuilt on a
		// fresh virtual clock. Drop the ring and re-prime.
		w.resets++
		w.filled = 0
		for _, s := range w.series {
			s.filled = 0
			s.rate, s.wrate, s.ewma = 0, 0, 0
			s.primed = false
			s.wcount, s.wsum, s.mean = 0, 0, 0
			s.p50, s.p95, s.p99 = 0, 0, 0
		}
		primer = true
	}

	w.head = (w.head + 1) % w.cfg.Slots
	w.times[w.head] = now
	if w.filled < w.cfg.Slots {
		w.filled++
	}
	w.lastAt = now
	w.samples++

	alpha := w.cfg.EWMAAlpha
	for _, s := range w.series {
		if s.filled < w.cfg.Slots {
			s.filled++
		}
		switch s.kind {
		case entryCounter:
			v := s.c.Value()
			w.sampleCumulative(s, v, dt, alpha, true)
		case entryGauge:
			w.sampleLevel(s, s.g.Value(), dt, alpha)
		case entryGaugeFn:
			w.sampleLevel(s, s.fn.get()(), dt, alpha)
		case entryHist:
			w.sampleHist(s, dt, alpha)
		}
	}
	return !primer
}

// oldestSlot returns the ring index of the oldest valid slot for a
// series with the given fill.
func (w *Windower) oldestSlot(filled int) int {
	return (w.head - (filled - 1) + w.cfg.Slots) % w.cfg.Slots
}

// sampleCumulative updates a monotonic series (counters). Negative
// deltas clamp to zero so a rebuilt component never yields a bogus
// rate.
func (w *Windower) sampleCumulative(s *wseries, v int64, dt time.Duration, alpha float64, clamp bool) {
	prev := s.last
	s.vals[w.head] = v
	s.last = v
	if s.filled < 2 || dt <= 0 {
		return
	}
	d := v - prev
	if clamp && d < 0 {
		d = 0
	}
	s.rate = float64(d) / dt.Seconds()
	old := w.oldestSlot(s.filled)
	span := w.times[w.head] - w.times[old]
	if span > 0 {
		wd := v - s.vals[old]
		if clamp && wd < 0 {
			wd = 0
		}
		s.wrate = float64(wd) / span.Seconds()
	}
	if !s.primed {
		s.ewma = s.rate
		s.primed = true
	} else {
		s.ewma = alpha*s.rate + (1-alpha)*s.ewma
	}
}

// sampleLevel updates a level series (gauges, gauge funcs): rate is
// the signed level trend, EWMA smooths the level itself.
func (w *Windower) sampleLevel(s *wseries, v int64, dt time.Duration, alpha float64) {
	prev := s.last
	s.vals[w.head] = v
	s.last = v
	if !s.primed {
		s.ewma = float64(v)
		s.primed = true
	} else {
		s.ewma = alpha*float64(v) + (1-alpha)*s.ewma
	}
	if s.filled < 2 || dt <= 0 {
		return
	}
	s.rate = float64(v-prev) / dt.Seconds()
	old := w.oldestSlot(s.filled)
	span := w.times[w.head] - w.times[old]
	if span > 0 {
		s.wrate = float64(v-s.vals[old]) / span.Seconds()
	}
}

// sampleHist rings the histogram's cumulative bucket counts and
// derives windowed count/sum/mean and p50/p95/p99 from
// newest-minus-oldest deltas (clamped to zero per bucket).
func (w *Windower) sampleHist(s *wseries, dt time.Duration, alpha float64) {
	h := s.h
	row := s.hcum[w.head*s.nb : (w.head+1)*s.nb]
	for i := range row {
		row[i] = h.counts[i].Load()
	}
	count := h.count.Load()
	prev := s.last
	s.hcount[w.head] = count
	s.hsum[w.head] = h.sum.Load()
	s.last = count
	if s.filled < 2 || dt <= 0 {
		return
	}
	d := count - prev
	if d < 0 {
		d = 0
	}
	s.rate = float64(d) / dt.Seconds()
	if !s.primed {
		s.ewma = s.rate
		s.primed = true
	} else {
		s.ewma = alpha*s.rate + (1-alpha)*s.ewma
	}

	old := w.oldestSlot(s.filled)
	span := w.times[w.head] - w.times[old]
	if span > 0 {
		wd := count - s.hcount[old]
		if wd < 0 {
			wd = 0
		}
		s.wrate = float64(wd) / span.Seconds()
	}
	oldRow := s.hcum[old*s.nb : (old+1)*s.nb]
	var wcount int64
	for i := range row {
		dd := row[i] - oldRow[i]
		if dd < 0 {
			dd = 0
		}
		s.hdelta[i] = dd
		wcount += dd
	}
	s.wcount = wcount
	s.wsum = s.hsum[w.head] - s.hsum[old]
	if s.wsum < 0 {
		s.wsum = 0
	}
	if wcount > 0 {
		s.mean = float64(s.wsum) / float64(wcount)
	} else {
		s.mean = 0
	}
	s.p50 = bucketQuantile(h.bounds, s.hdelta, wcount, 0.50)
	s.p95 = bucketQuantile(h.bounds, s.hdelta, wcount, 0.95)
	s.p99 = bucketQuantile(h.bounds, s.hdelta, wcount, 0.99)
}

// syncSeriesLocked absorbs registry entries added since the last
// tick. This is the only sampling-path code that allocates, and it
// runs once per newly registered metric, not per tick.
func (w *Windower) syncSeriesLocked() {
	n := w.reg.numEntries()
	if n == w.nSeen {
		return
	}
	for i := w.nSeen; i < n; i++ {
		e := w.reg.entryAt(i)
		s := &wseries{
			name: e.name, kind: e.kind,
			c: e.c, g: e.g, h: e.h, fn: e.fn,
			vals: make([]int64, w.cfg.Slots),
		}
		if e.kind == entryHist {
			s.nb = len(e.h.counts)
			s.hcum = make([]int64, w.cfg.Slots*s.nb)
			s.hcount = make([]int64, w.cfg.Slots)
			s.hsum = make([]int64, w.cfg.Slots)
			s.hdelta = make([]int64, s.nb)
		}
		w.series = append(w.series, s)
		w.order = append(w.order, len(w.series)-1)
	}
	w.nSeen = n
	sort.Slice(w.order, func(a, b int) bool {
		return w.series[w.order[a]].name < w.series[w.order[b]].name
	})
}

// bucketQuantile estimates the q-quantile of a fixed-bucket
// distribution by linear interpolation inside the owning bucket
// (lower edge 0 for the first bucket). Samples that landed in the
// overflow bucket report the last bound — the ring has no upper edge
// for them. Returns 0 when total is 0.
func bucketQuantile(bounds []int64, counts []int64, total int64, q float64) int64 {
	if total <= 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := int64(0)
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + int64(frac*float64(hi-lo))
		}
		cum = next
	}
	return bounds[len(bounds)-1]
}

// SeriesStat is one metric's derived window statistics.
type SeriesStat struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Last is the newest raw observation: counter total, gauge level,
	// histogram lifetime count.
	Last int64 `json:"last"`
	// Rate is per-second over the newest interval (counters and
	// histogram counts clamp negative deltas to 0; gauge rates are
	// signed trends).
	Rate float64 `json:"rate"`
	// WindowRate is per-second over the whole retained ring.
	WindowRate float64 `json:"window_rate"`
	// EWMA smooths Rate for counters/histograms and the level for
	// gauges.
	EWMA float64 `json:"ewma"`
	// Histogram-only: samples, sum, mean, and percentiles within the
	// retained window.
	Count int64   `json:"count,omitempty"`
	Sum   int64   `json:"sum,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	P50   int64   `json:"p50,omitempty"`
	P95   int64   `json:"p95,omitempty"`
	P99   int64   `json:"p99,omitempty"`
}

// WindowSnapshot is one published sample: every series' derived stats
// at a common timestamp, sorted by name.
type WindowSnapshot struct {
	At       time.Duration `json:"at_ns"`
	Interval time.Duration `json:"interval_ns"` // actual newest gap
	Window   time.Duration `json:"window_ns"`   // span of the retained ring
	Seq      uint64        `json:"seq"`
	Series   []SeriesStat  `json:"series"`
}

// buildSnapshotLocked materializes the current derived state; called
// with w.mu held, only when subscribers exist (it allocates).
func (w *Windower) buildSnapshotLocked() *WindowSnapshot {
	dt := time.Duration(0)
	if w.filled >= 2 {
		prev := (w.head - 1 + w.cfg.Slots) % w.cfg.Slots
		dt = w.times[w.head] - w.times[prev]
	}
	span := time.Duration(0)
	if w.filled >= 2 {
		span = w.times[w.head] - w.times[w.oldestSlot(w.filled)]
	}
	ws := &WindowSnapshot{
		At:       w.times[w.head],
		Interval: dt,
		Window:   span,
		Seq:      w.samples,
		Series:   make([]SeriesStat, 0, len(w.series)),
	}
	for _, i := range w.order {
		s := w.series[i]
		st := SeriesStat{
			Name: s.name, Kind: s.kindStr(),
			Last: s.last, Rate: s.rate, WindowRate: s.wrate, EWMA: s.ewma,
		}
		if s.kind == entryHist {
			st.Count, st.Sum, st.Mean = s.wcount, s.wsum, s.mean
			st.P50, st.P95, st.P99 = s.p50, s.p95, s.p99
		}
		ws.Series = append(ws.Series, st)
	}
	return ws
}

// Window materializes the current window state on demand (for
// dashboards that poll rather than subscribe). Nil Windower → nil.
func (w *Windower) Window() *WindowSnapshot {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.samples == 0 {
		return &WindowSnapshot{}
	}
	return w.buildSnapshotLocked()
}

// Find returns the series named name, or nil. Series are sorted by
// name, so this is a binary search.
func (ws *WindowSnapshot) Find(name string) *SeriesStat {
	if ws == nil {
		return nil
	}
	i := sort.Search(len(ws.Series), func(i int) bool { return ws.Series[i].Name >= name })
	if i < len(ws.Series) && ws.Series[i].Name == name {
		return &ws.Series[i]
	}
	return nil
}

// LineProtocol renders the snapshot in an influx-style line protocol:
//
//	<name>,kind=<kind> <field>=<value>,... <timestamp_ns>
//
// Counters and gauges carry last/rate/ewma; histograms add
// count/sum/mean and p50/p95/p99. Integer fields use the trailing-i
// convention.
func (ws *WindowSnapshot) LineProtocol() []byte {
	return ws.AppendLineProtocol(nil)
}

// AppendLineProtocol appends the line-protocol rendering to b.
func (ws *WindowSnapshot) AppendLineProtocol(b []byte) []byte {
	if ws == nil {
		return b
	}
	ts := int64(ws.At)
	for i := range ws.Series {
		s := &ws.Series[i]
		b = append(b, s.Name...)
		b = append(b, ",kind="...)
		b = append(b, s.Kind...)
		b = append(b, ' ')
		b = appendIntField(b, "last", s.Last, false)
		b = appendFloatField(b, "rate", s.Rate)
		b = appendFloatField(b, "ewma", s.EWMA)
		if s.Kind == "hist" {
			b = appendIntField(b, "count", s.Count, true)
			b = appendIntField(b, "sum", s.Sum, true)
			b = appendFloatField(b, "mean", s.Mean)
			b = appendIntField(b, "p50", s.P50, true)
			b = appendIntField(b, "p95", s.P95, true)
			b = appendIntField(b, "p99", s.P99, true)
		}
		b = append(b, ' ')
		b = strconv.AppendInt(b, ts, 10)
		b = append(b, '\n')
	}
	return b
}

func appendIntField(b []byte, name string, v int64, comma bool) []byte {
	if comma {
		b = append(b, ',')
	}
	b = append(b, name...)
	b = append(b, '=')
	b = strconv.AppendInt(b, v, 10)
	b = append(b, 'i')
	return b
}

func appendFloatField(b []byte, name string, v float64) []byte {
	b = append(b, ',')
	b = append(b, name...)
	b = append(b, '=')
	b = strconv.AppendFloat(b, v, 'f', 3, 64)
	return b
}

// Dashboard renders the window as an aligned text table, with
// duration formatting for *_ns series.
func (ws *WindowSnapshot) Dashboard() string {
	if ws == nil {
		return "windows: disabled (nil windower)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== windows @ %v (interval %v, span %v) ==\n",
		ws.At.Round(time.Microsecond), ws.Interval.Round(time.Millisecond),
		ws.Window.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-40s %-7s %12s %10s %10s %10s %10s %10s\n",
		"series", "kind", "last", "rate/s", "ewma", "p50", "p95", "p99")
	for i := range ws.Series {
		s := &ws.Series[i]
		p50, p95, p99 := "-", "-", "-"
		if s.Kind == "hist" {
			if strings.HasSuffix(s.Name, "_ns") {
				p50 = time.Duration(s.P50).Round(time.Microsecond).String()
				p95 = time.Duration(s.P95).Round(time.Microsecond).String()
				p99 = time.Duration(s.P99).Round(time.Microsecond).String()
			} else {
				p50 = strconv.FormatInt(s.P50, 10)
				p95 = strconv.FormatInt(s.P95, 10)
				p99 = strconv.FormatInt(s.P99, 10)
			}
		}
		fmt.Fprintf(&b, "  %-40s %-7s %12d %10.2f %10.2f %10s %10s %10s\n",
			s.Name, s.Kind, s.Last, s.Rate, s.EWMA, p50, p95, p99)
	}
	return b.String()
}

// Stream is one subscriber's view of a Windower: a buffered channel
// of WindowSnapshots with drop-oldest backpressure. A slow consumer
// loses the oldest pending windows (counted in Dropped), never blocks
// the sampler, and always sees the newest window on its next receive.
type Stream struct {
	w       *Windower
	ch      chan *WindowSnapshot
	dropped atomic.Uint64
	closed  bool
}

// Subscribe registers a new stream with the given channel depth
// (minimum 1). Nil Windower → nil Stream (whose methods no-op).
func (w *Windower) Subscribe(buf int) *Stream {
	if w == nil {
		return nil
	}
	if buf < 1 {
		buf = 1
	}
	s := &Stream{w: w, ch: make(chan *WindowSnapshot, buf)}
	w.mu.Lock()
	select {
	case <-w.done:
		// Windower already closed: hand back a closed stream.
		s.closed = true
		close(s.ch)
	default:
		w.subs = append(w.subs, s)
	}
	w.mu.Unlock()
	return s
}

// push delivers snap with drop-oldest semantics; called with w.mu
// held (single producer).
func (s *Stream) push(snap *WindowSnapshot) {
	select {
	case s.ch <- snap:
		return
	default:
	}
	select {
	case <-s.ch:
		s.dropped.Add(1)
	default:
	}
	select {
	case s.ch <- snap:
	default:
		s.dropped.Add(1)
	}
}

// C is the receive side; it is closed when the Stream or its Windower
// closes. Nil Stream → nil channel (blocks forever in a select, the
// conventional no-op).
func (s *Stream) C() <-chan *WindowSnapshot {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped reports how many windows were discarded because the
// consumer lagged.
func (s *Stream) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close unsubscribes the stream and closes its channel.
func (s *Stream) Close() {
	if s == nil {
		return
	}
	w := s.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for i, sub := range w.subs {
		if sub == s {
			w.subs = append(w.subs[:i], w.subs[i+1:]...)
			break
		}
	}
	close(s.ch)
}

// ExportSpansAsSeries installs a span export hook that mirrors every
// completed span into a duration histogram named "span.<name>_ns",
// turning control-path trace timings (circuit builds, bento ops,
// event-core settle spans) into series a Windower can rate and
// percentile. It replaces any previously installed export hook.
func (r *Registry) ExportSpansAsSeries() {
	if r == nil {
		return
	}
	var mu sync.Mutex
	hists := make(map[string]*Histogram)
	r.tracer.SetExportHook(func(s Span) {
		mu.Lock()
		h := hists[s.Name]
		if h == nil {
			h = r.Histogram("span."+s.Name+"_ns", LatencyBuckets)
			hists[s.Name] = h
		}
		mu.Unlock()
		h.ObserveDuration(s.Dur)
	})
}
