package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// HistSnapshot is a histogram frozen at snapshot time.
type HistSnapshot struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Avg    float64 `json:"avg"`
	Max    int64   `json:"max"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last is overflow
}

// Quantile estimates the q-quantile (0 < q <= 1) from the frozen
// bucket counts by linear interpolation within the owning bucket.
// Samples beyond the last bound report the last bound (the overflow
// bucket has no upper edge). Returns 0 for an empty histogram.
func (h HistSnapshot) Quantile(q float64) int64 {
	return bucketQuantile(h.Bounds, h.Counts, h.Count, q)
}

// SpanStats summarizes the tracer ring.
type SpanStats struct {
	Total    uint64 `json:"total"`
	Retained uint64 `json:"retained"`
	Dropped  uint64 `json:"dropped"`
	Slowest  []Span `json:"slowest,omitempty"`
}

// Snapshot is a point-in-time copy of everything the registry knows.
// Counters and histograms are read atomically per-metric (not
// globally consistent across metrics — fine for dashboards).
type Snapshot struct {
	TakenAt    time.Duration           `json:"taken_at_ns"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Spans      SpanStats               `json:"spans"`
}

// SlowestSpans is the number of spans embedded in a Snapshot.
const SlowestSpans = 20

// Snapshot freezes the registry. GaugeFunc callbacks are invoked
// here, on the snapshotting goroutine. Nil registry → nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistSnapshot),
	}
	s.TakenAt = r.tracer.clock()

	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		fns[k] = v.get()
	}
	r.mu.Unlock()

	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range fns {
		s.Gauges[name] = fn()
	}
	for name, h := range hists {
		hs := HistSnapshot{
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
			Max:    h.max.Load(),
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		if hs.Count > 0 {
			hs.Avg = float64(hs.Sum) / float64(hs.Count)
		}
		s.Histograms[name] = hs
	}
	total, retained, dropped := r.tracer.Stats()
	s.Spans = SpanStats{Total: total, Retained: retained, Dropped: dropped,
		Slowest: r.tracer.Slowest(SlowestSpans)}
	return s
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() []byte {
	if s == nil {
		return []byte("null")
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return []byte(fmt.Sprintf("{%q:%q}", "error", err.Error()))
	}
	return b
}

// Dashboard renders a human-readable text view: metrics grouped by
// component prefix (the part of the name before the first dot), then
// the slowest spans.
func (s *Snapshot) Dashboard() string {
	if s == nil {
		return "telemetry: disabled (nil registry)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== telemetry @ %v (virtual) ==\n", s.TakenAt.Round(time.Microsecond))

	type row struct{ name, val string }
	groups := make(map[string][]row)
	add := func(name, val string) {
		comp := name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			comp = name[:i]
			name = name[i+1:]
		}
		groups[comp] = append(groups[comp], row{name, val})
	}
	for name, v := range s.Counters {
		add(name, fmt.Sprintf("%d", v))
	}
	for name, v := range s.Gauges {
		add(name, fmt.Sprintf("%d (gauge)", v))
	}
	for name, h := range s.Histograms {
		p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
		val := fmt.Sprintf("n=%d avg=%.1f p50=%d p95=%d p99=%d max=%d",
			h.Count, h.Avg, p50, p95, p99, h.Max)
		if strings.HasSuffix(name, "_ns") {
			val = fmt.Sprintf("n=%d avg=%v p50=%v p95=%v p99=%v max=%v", h.Count,
				time.Duration(h.Avg).Round(time.Microsecond),
				time.Duration(p50).Round(time.Microsecond),
				time.Duration(p95).Round(time.Microsecond),
				time.Duration(p99).Round(time.Microsecond),
				time.Duration(h.Max).Round(time.Microsecond))
		}
		add(name, val)
	}

	comps := make([]string, 0, len(groups))
	for c := range groups {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		rows := groups[c]
		sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
		fmt.Fprintf(&b, "[%s]\n", c)
		for _, r := range rows {
			fmt.Fprintf(&b, "  %-36s %s\n", r.name, r.val)
		}
	}

	fmt.Fprintf(&b, "-- spans: %d total, %d retained, %d overwritten --\n",
		s.Spans.Total, s.Spans.Retained, s.Spans.Dropped)
	for _, sp := range s.Spans.Slowest {
		line := fmt.Sprintf("  %-24s %10v", sp.Name, sp.Dur.Round(time.Microsecond))
		if sp.Note != "" {
			line += "  " + sp.Note
		}
		if sp.Err != "" {
			line += "  ERR: " + sp.Err
		}
		if sp.Parent != 0 {
			line += fmt.Sprintf("  (child of #%d)", sp.Parent)
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}
