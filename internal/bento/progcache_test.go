package bento

import (
	"errors"
	"testing"

	"github.com/bento-nfv/bento/internal/interp"
)

// TestProgramCacheSkipsRecompilation pins the compile-once contract of the
// server's program cache via telemetry: uploading the same source twice
// compiles it exactly once, and a watchdog restart re-runs the cached
// Program without touching the compiler either.
func TestProgramCacheSkipsRecompilation(t *testing.T) {
	w := buildWorld(t, 3, 1)
	reg := w.net.Obs()
	compiles := reg.Counter("interp.compiles")
	hits := reg.Counter("bento.program_cache_hits")
	misses := reg.Counter("bento.program_cache_misses")

	cli := w.client(t, "alice", 310)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(restartManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()

	if err := fn.Upload(statefulFunction); err != nil {
		t.Fatal(err)
	}
	if compiles.Value() != 1 || misses.Value() != 1 || hits.Value() != 0 {
		t.Fatalf("first upload: compiles=%d misses=%d hits=%d, want 1/1/0",
			compiles.Value(), misses.Value(), hits.Value())
	}

	// Re-uploading byte-identical code is served from the cache: no
	// lexing, parsing, or compiling happens at all.
	if err := fn.Upload(statefulFunction); err != nil {
		t.Fatal(err)
	}
	if compiles.Value() != 1 || hits.Value() != 1 {
		t.Fatalf("re-upload: compiles=%d hits=%d, want compiles=1 hits=1",
			compiles.Value(), hits.Value())
	}

	// A watchdog restart re-runs the last uploaded code on a fresh
	// machine — also from the cache.
	if _, _, err := fn.Invoke("setup", interp.Bytes("x")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fn.Invoke("burn"); !errors.Is(err, ErrRestarted) {
		t.Fatalf("burn: %v, want ErrRestarted", err)
	}
	if compiles.Value() != 1 || hits.Value() != 2 {
		t.Fatalf("after restart: compiles=%d hits=%d, want compiles=1 hits=2",
			compiles.Value(), hits.Value())
	}
	if _, _, err := fn.Invoke("serve"); err != nil {
		t.Fatalf("invoke after restart: %v", err)
	}
}

// TestTreeEngineFallback verifies the Engine="tree" ablation knob still
// runs uploads through the reference tree-walker (no cache traffic).
func TestTreeEngineFallback(t *testing.T) {
	w := buildWorld(t, 3, 1)
	w.servers[0].cfg.Engine = "tree"
	reg := w.net.Obs()

	cli := w.client(t, "alice", 311)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(basicManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	if err := fn.Upload("def ping():\n    return 42\n"); err != nil {
		t.Fatal(err)
	}
	out, _, err := fn.Invoke("ping")
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	if n := reg.Counter("interp.compiles").Value(); n != 0 {
		t.Fatalf("tree engine compiled %d programs, want 0", n)
	}
	if n := reg.Counter("bento.program_cache_misses").Value(); n != 0 {
		t.Fatalf("tree engine took %d cache misses, want 0", n)
	}
}
