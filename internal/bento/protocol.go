// Package bento implements the paper's primary contribution: the Bento
// server (§5) that runs client-provided functions on Tor relays inside
// policy-constrained, optionally enclaved containers, and the Bento client
// used to discover nodes, negotiate policies, upload functions, and invoke
// them over Tor.
package bento

import (
	"fmt"

	"github.com/bento-nfv/bento/internal/enclave"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/policy"
)

// Port is the port Bento servers listen on, reachable either via an exit
// circuit to localhost or as a hidden service.
const Port = 5000

// Ops of the Bento client/server protocol.
const (
	opPolicy    = "policy"
	opAttest    = "attest"
	opChallenge = "challenge"
	opSpawn     = "spawn"
	opUpload    = "upload"
	opInvoke    = "invoke"
	opShutdown  = "shutdown"
)

// request is one client message.
type request struct {
	Op       string           `json:"op"`
	Image    string           `json:"image,omitempty"`
	Manifest *policy.Manifest `json:"manifest,omitempty"`
	Nonce    []byte           `json:"nonce,omitempty"`

	InvokeToken   string `json:"invoke_token,omitempty"`
	ShutdownToken string `json:"shutdown_token,omitempty"`

	// Challenge and PoWNonce carry a spawn puzzle solution when the
	// node's policy demands one.
	Challenge []byte `json:"challenge,omitempty"`
	PoWNonce  uint64 `json:"pow_nonce,omitempty"`

	// SpawnKey makes a spawn idempotent: re-spawning with a key the
	// server has already honored replays the original tokens instead of
	// creating a second container, so a client may safely retry a spawn
	// whose response was lost in transit.
	SpawnKey string `json:"spawn_key,omitempty"`

	Code   []byte `json:"code,omitempty"`
	Sealed bool   `json:"sealed,omitempty"`

	Function string     `json:"function,omitempty"`
	Args     []wireValu `json:"args,omitempty"`
}

// response frame types.
const (
	frameOK     = "ok"
	frameError  = "error"
	frameTokens = "tokens"
	frameData   = "data"
	frameDone   = "done"
)

// response is one server frame.
type response struct {
	Type  string `json:"type"`
	Error string `json:"error,omitempty"`

	Policy *policy.Middlebox `json:"policy,omitempty"`
	Report *enclave.Report   `json:"report,omitempty"`

	InvokeToken   string `json:"invoke_token,omitempty"`
	ShutdownToken string `json:"shutdown_token,omitempty"`

	// Challenge is a fresh single-use spawn puzzle input.
	Challenge []byte `json:"challenge,omitempty"`

	Payload []byte `json:"payload,omitempty"`
	// BinaryLen, when nonzero, announces that the frame's payload
	// follows the JSON frame as raw bytes (avoiding base64 inflation for
	// bulk data).
	BinaryLen int       `json:"binary_len,omitempty"`
	Result    *wireValu `json:"result,omitempty"`
	Stdout    string    `json:"stdout,omitempty"`

	// Restarted, on a done frame carrying an error, tells the client the
	// function died but the server's watchdog brought it back: the same
	// tokens remain valid and the invocation may be retried.
	Restarted bool `json:"restarted,omitempty"`
	// PermFailed, on a done frame carrying an error, tells the client the
	// restart-storm guard declared the function permanently failed:
	// retrying this token is futile, and a control plane should replace
	// the replica instead.
	PermFailed bool `json:"perm_failed,omitempty"`
}

// wireValu is the JSON encoding of an interp.Value crossing the protocol.
type wireValu struct {
	T string     `json:"t"`
	I int64      `json:"i,omitempty"`
	S string     `json:"s,omitempty"`
	B []byte     `json:"b,omitempty"`
	L []wireValu `json:"l,omitempty"`
	D []wirePair `json:"d,omitempty"`
	V bool       `json:"v,omitempty"`
}

type wirePair struct {
	K wireValu `json:"k"`
	V wireValu `json:"v"`
}

// encodeValue converts an interp.Value for the wire.
func encodeValue(v interp.Value) (wireValu, error) {
	switch x := v.(type) {
	case interp.Int:
		return wireValu{T: "i", I: int64(x)}, nil
	case interp.Str:
		return wireValu{T: "s", S: string(x)}, nil
	case interp.Bytes:
		return wireValu{T: "b", B: []byte(x)}, nil
	case interp.Bool:
		return wireValu{T: "o", V: bool(x)}, nil
	case interp.NoneVal:
		return wireValu{T: "n"}, nil
	case *interp.List:
		out := wireValu{T: "l", L: make([]wireValu, 0, len(x.Elems))}
		for _, e := range x.Elems {
			we, err := encodeValue(e)
			if err != nil {
				return wireValu{}, err
			}
			out.L = append(out.L, we)
		}
		return out, nil
	case *interp.Dict:
		out := wireValu{T: "d"}
		keys := x.Keys()
		vals := x.Values()
		for i := range keys {
			wk, err := encodeValue(keys[i])
			if err != nil {
				return wireValu{}, err
			}
			wv, err := encodeValue(vals[i])
			if err != nil {
				return wireValu{}, err
			}
			out.D = append(out.D, wirePair{K: wk, V: wv})
		}
		return out, nil
	default:
		return wireValu{}, fmt.Errorf("bento: cannot send %s over the wire", v.Type())
	}
}

// decodeValue converts a wire value back to an interp.Value.
func decodeValue(w wireValu) (interp.Value, error) {
	switch w.T {
	case "i":
		return interp.Int(w.I), nil
	case "s":
		return interp.Str(w.S), nil
	case "b":
		return interp.Bytes(w.B), nil
	case "o":
		return interp.Bool(w.V), nil
	case "n", "":
		return interp.None, nil
	case "l":
		l := &interp.List{}
		for _, e := range w.L {
			v, err := decodeValue(e)
			if err != nil {
				return nil, err
			}
			l.Elems = append(l.Elems, v)
		}
		return l, nil
	case "d":
		d := interp.NewDict()
		for _, p := range w.D {
			k, err := decodeValue(p.K)
			if err != nil {
				return nil, err
			}
			v, err := decodeValue(p.V)
			if err != nil {
				return nil, err
			}
			if err := d.Set(k, v); err != nil {
				return nil, err
			}
		}
		return d, nil
	default:
		return nil, fmt.Errorf("bento: unknown wire value type %q", w.T)
	}
}

// MarshalArgs is a helper for tests and tools building raw requests.
func MarshalArgs(args ...interp.Value) ([]wireValu, error) {
	out := make([]wireValu, 0, len(args))
	for _, a := range args {
		w, err := encodeValue(a)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}
