package bento

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/enclave"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/relay"
	"github.com/bento-nfv/bento/internal/simnet"
	"github.com/bento-nfv/bento/internal/torclient"
)

// world is a full test deployment: a Tor overlay where one relay hosts a
// Bento server in the exit-to-localhost configuration.
type world struct {
	net     *simnet.Network
	cons    *dirauth.Consensus
	ias     *enclave.AttestationService
	servers []*Server
}

// exitPolicyWithBento permits general exits plus the localhost Bento port.
func exitPolicyWithBento(t testing.TB) *policy.ExitPolicy {
	t.Helper()
	p, err := policy.ParseExitPolicy(
		fmt.Sprintf("accept localhost:%d", Port),
		"accept *:*",
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// buildWorld creates nRelays relays; the first nBento of them run Bento
// servers with SGX platforms.
func buildWorld(t testing.TB, nRelays, nBento int) *world {
	t.Helper()
	n := simnet.NewNetwork(simnet.NewClock(0.0005), 2*time.Millisecond)
	n.SetObs(obs.NewRegistry()) // live telemetry, so tests can assert counters
	auth, err := dirauth.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	ias, err := enclave.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	w := &world{net: n, ias: ias}

	type pending struct {
		r    *relay.Relay
		host *simnet.Host
	}
	var bentoNodes []pending
	for i := 0; i < nRelays; i++ {
		name := fmt.Sprintf("relay%d", i)
		host := n.AddHost(name, 0)
		cfg := relay.Config{
			Nickname:   name,
			Flags:      []string{dirauth.FlagGuard, dirauth.FlagExit, dirauth.FlagHSDir},
			ExitPolicy: exitPolicyWithBento(t),
			Quiet:      true,
		}
		if i < nBento {
			cfg.Flags = append(cfg.Flags, dirauth.FlagBento)
			cfg.Middlebox = policy.DefaultMiddlebox()
			cfg.BentoAddr = fmt.Sprintf("%s:%d", name, Port)
		}
		r, err := relay.New(host, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.ServeHSDir()
		d, _ := r.Descriptor()
		if err := auth.Publish(d); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		if i < nBento {
			bentoNodes = append(bentoNodes, pending{r: r, host: host})
		}
	}
	cons, err := auth.Consensus()
	if err != nil {
		t.Fatal(err)
	}
	w.cons = cons

	for i, bn := range bentoNodes {
		platform, err := enclave.NewPlatform(enclave.MinTCBVersion)
		if err != nil {
			t.Fatal(err)
		}
		ias.RegisterPlatform(platform.QuotingKey())
		srv, err := NewServer(ServerConfig{
			Host:       bn.host,
			Tor:        torclient.New(bn.host, cons, int64(1000+i)),
			Policy:     policy.DefaultMiddlebox(),
			ExitPolicy: exitPolicyWithBento(t),
			Platform:   platform,
			IAS:        ias,
		})
		if err != nil {
			t.Fatal(err)
		}
		w.servers = append(w.servers, srv)
		t.Cleanup(func() { srv.Close() })
	}
	return w
}

func (w *world) client(t testing.TB, name string, seed int64) *Client {
	t.Helper()
	host := w.net.AddHost(name, 0)
	return NewClient(torclient.New(host, w.cons, seed), w.ias.PublicKey())
}

func basicManifest() *policy.Manifest {
	return &policy.Manifest{
		Name:         "echo",
		Image:        "python",
		Calls:        []string{"tor.send", "fs.read", "fs.write", "clock.now", "clock.sleep"},
		Memory:       8 << 20,
		Instructions: 5_000_000,
		Storage:      8 << 20,
	}
}

const echoFunction = `
def echo(data):
    api.send(b"echo:" + data)
    return len(data)
`

func TestDiscoverySpawnUploadInvoke(t *testing.T) {
	w := buildWorld(t, 4, 1)
	cli := w.client(t, "alice", 1)

	nodes := cli.Nodes("tor.send")
	if len(nodes) != 1 {
		t.Fatalf("found %d Bento nodes, want 1", len(nodes))
	}
	conn, err := cli.Connect(nodes[0])
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	defer conn.Close()

	pol, err := conn.Policy()
	if err != nil {
		t.Fatalf("Policy: %v", err)
	}
	if !pol.AllowsCall("tor.send") {
		t.Fatal("policy missing tor.send")
	}

	fn, err := conn.Spawn(basicManifest())
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := fn.Upload(echoFunction); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	out, result, err := fn.Invoke("echo", interp.Bytes("hello bento"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(out) != "echo:hello bento" {
		t.Fatalf("output %q", out)
	}
	if result != interp.Int(11) {
		t.Fatalf("result %v", result)
	}
	if err := fn.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Invoking after shutdown fails.
	if _, _, err := fn.Invoke("echo", interp.Bytes("x")); err == nil {
		t.Fatal("invoke after shutdown succeeded")
	}
}

func TestServerAttestation(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 2)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	report, err := conn.Attest()
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if !report.OK {
		t.Fatal("report not OK")
	}
}

func TestSGXContainerSealedUpload(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 3)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	man := basicManifest()
	man.Image = "python-op-sgx"
	fn, err := conn.Spawn(man)
	if err != nil {
		t.Fatalf("Spawn SGX: %v", err)
	}
	if err := fn.Upload(echoFunction); err != nil {
		t.Fatalf("sealed Upload: %v", err)
	}
	out, _, err := fn.Invoke("echo", interp.Bytes("enclaved"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(out) != "echo:enclaved" {
		t.Fatalf("output %q", out)
	}
	fn.Shutdown()
}

func TestInvocationTokenShareableShutdownNot(t *testing.T) {
	w := buildWorld(t, 3, 1)
	alice := w.client(t, "alice", 4)
	conn, err := alice.Connect(alice.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(basicManifest())
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Upload(echoFunction); err != nil {
		t.Fatal(err)
	}

	// Bob attaches with the shared invocation token and can invoke.
	bob := w.client(t, "bob", 5)
	bconn, err := bob.Connect(bob.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer bconn.Close()
	shared := bconn.AttachFunction(fn.InvokeToken())
	out, _, err := shared.Invoke("echo", interp.Bytes("from bob"))
	if err != nil {
		t.Fatalf("shared invoke: %v", err)
	}
	if string(out) != "echo:from bob" {
		t.Fatalf("output %q", out)
	}
	// But Bob cannot shut it down without the shutdown token.
	if err := shared.Shutdown(); err == nil {
		t.Fatal("shutdown without token succeeded")
	}
	// Nor by guessing/replaying the invoke token as a shutdown token.
	if _, err := bconn.roundTrip(&request{Op: opShutdown, ShutdownToken: fn.InvokeToken()}, nil); err == nil {
		t.Fatal("invoke token accepted for shutdown")
	}
	// Alice retains exclusive shutdown rights.
	if err := fn.Shutdown(); err != nil {
		t.Fatalf("owner shutdown: %v", err)
	}
}

func TestBadTokensRejected(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 6)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fake := conn.AttachFunction("deadbeefdeadbeefdeadbeefdeadbeef")
	if _, _, err := fake.Invoke("echo"); err == nil {
		t.Fatal("bogus invocation token accepted")
	}
	if err := fake.Upload("x = 1"); err == nil {
		t.Fatal("bogus token accepted for upload")
	}
}

func TestManifestPolicyNegotiation(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 7)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	man := basicManifest()
	man.Calls = append(man.Calls, "os.exec")
	if _, err := conn.Spawn(man); err == nil {
		t.Fatal("manifest exceeding policy accepted")
	}
	man2 := basicManifest()
	man2.Memory = 1 << 40
	if _, err := conn.Spawn(man2); err == nil {
		t.Fatal("oversized memory manifest accepted")
	}
}

func TestFunctionResourceViolationSurfaces(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 8)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	man := basicManifest()
	man.Instructions = 10_000
	fn, err := conn.Spawn(man)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	if err := fn.Upload("def spin():\n    while True:\n        pass\n"); err != nil {
		t.Fatal(err)
	}
	_, _, err = fn.Invoke("spin")
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("got %v, want budget error", err)
	}
}

func TestFunctionSandboxDeniesUnrequestedAPI(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 9)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	man := basicManifest()
	man.Calls = []string{"tor.send"} // no fs.*
	fn, err := conn.Spawn(man)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	if err := fn.Upload(`
def sneaky():
    fs.write("loot", b"stolen")
`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fn.Invoke("sneaky"); err == nil {
		t.Fatal("fs.write permitted without manifest request")
	}
}

func TestStatefulFunctionAcrossInvocations(t *testing.T) {
	// The Dropbox pattern: put in one invocation, get in another —
	// state persists in the container between invokes.
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 10)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(basicManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	if err := fn.Upload(`
def put(data):
    fs.write("box", data)
    return True

def get():
    api.send(fs.read("box"))
`); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("stored "), 500)
	if _, _, err := fn.Invoke("put", interp.Bytes(payload)); err != nil {
		t.Fatal(err)
	}
	out, _, err := fn.Invoke("get")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, payload) {
		t.Fatal("dropbox round trip mismatch")
	}
}

func TestStreamingInvoke(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 11)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(basicManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	if err := fn.Upload(`
def stream(n):
    for i in range(n):
        api.send(bytes([65 + i]))
`); err != nil {
		t.Fatal(err)
	}
	var chunks [][]byte
	if _, err := fn.InvokeStream("stream", []interp.Value{interp.Int(5)}, func(p []byte) {
		chunks = append(chunks, append([]byte(nil), p...))
	}); err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 5 {
		t.Fatalf("got %d chunks, want 5", len(chunks))
	}
	if string(chunks[0]) != "A" || string(chunks[4]) != "E" {
		t.Fatalf("chunk contents wrong: %q..%q", chunks[0], chunks[4])
	}
}

func TestWireValueRoundTrip(t *testing.T) {
	d := interp.NewDict()
	d.Set(interp.Str("k"), interp.Int(1))
	vals := []interp.Value{
		interp.Int(-42),
		interp.Str("hello"),
		interp.Bytes{0, 1, 2, 255},
		interp.Bool(true),
		interp.None,
		&interp.List{Elems: []interp.Value{interp.Int(1), interp.Str("x")}},
		d,
	}
	for _, v := range vals {
		w, err := encodeValue(v)
		if err != nil {
			t.Fatalf("encode %s: %v", v.Type(), err)
		}
		back, err := decodeValue(w)
		if err != nil {
			t.Fatalf("decode %s: %v", v.Type(), err)
		}
		if !interp.Equal(v, back) {
			t.Fatalf("%s round trip: %s != %s", v.Type(), interp.Repr(v), interp.Repr(back))
		}
	}
	// Functions cannot cross the wire.
	if _, err := encodeValue(&interp.Func{Name: "f"}); err == nil {
		t.Fatal("function encoded")
	}
}

func BenchmarkInvokeRoundTrip(b *testing.B) {
	w := buildWorld(b, 3, 1)
	cli := w.client(b, "bench", 900)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(basicManifest())
	if err != nil {
		b.Fatal(err)
	}
	defer fn.Shutdown()
	if err := fn.Upload(echoFunction); err != nil {
		b.Fatal(err)
	}
	payload := interp.Bytes(bytes.Repeat([]byte{7}, 1024))
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fn.Invoke("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpawnShutdown(b *testing.B) {
	w := buildWorld(b, 3, 1)
	cli := w.client(b, "bench2", 901)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn, err := conn.Spawn(basicManifest())
		if err != nil {
			b.Fatal(err)
		}
		if err := fn.Shutdown(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBentoAsHiddenService(t *testing.T) {
	// The §5 alternative deployment: the Bento server is reached as a
	// hidden service rather than via an exit to localhost.
	w := buildWorld(t, 5, 1)
	serverHost := w.net.Host("relay0")
	svcTor := torclient.New(serverHost, w.cons, 400)
	svc, err := ServeHidden(serverHost, svcTor, nil)
	if err != nil {
		t.Fatalf("ServeHidden: %v", err)
	}
	defer svc.Close()

	cli := w.client(t, "alice", 401)
	conn, err := cli.ConnectHidden(svc.ServiceID())
	if err != nil {
		t.Fatalf("ConnectHidden: %v", err)
	}
	defer conn.Close()

	pol, err := conn.Policy()
	if err != nil {
		t.Fatalf("Policy over hidden service: %v", err)
	}
	if !pol.AllowsCall("tor.send") {
		t.Fatal("policy missing tor.send")
	}
	fn, err := conn.Spawn(basicManifest())
	if err != nil {
		t.Fatalf("Spawn over hidden service: %v", err)
	}
	defer fn.Shutdown()
	if err := fn.Upload(echoFunction); err != nil {
		t.Fatal(err)
	}
	out, _, err := fn.Invoke("echo", interp.Bytes("via onion"))
	if err != nil {
		t.Fatalf("Invoke over hidden service: %v", err)
	}
	if string(out) != "echo:via onion" {
		t.Fatalf("output %q", out)
	}
}
