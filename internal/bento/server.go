package bento

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/enclave"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/otr"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/pow"
	"github.com/bento-nfv/bento/internal/sandbox"
	"github.com/bento-nfv/bento/internal/simnet"
	"github.com/bento-nfv/bento/internal/stemfw"
	"github.com/bento-nfv/bento/internal/torclient"
	"github.com/bento-nfv/bento/internal/wire"
)

// ServerImage is the measured image of the Bento execution environment;
// only this (not user functions) requires attestation, per §5.4.
var ServerImage = []byte("bento-server-runtime-v1\nbscript-interpreter\nconclave-loader\n")

// ContainerImage returns the measured enclave image for a container image
// name; sandbox.New uses the same derivation when launching.
func ContainerImage(name string) []byte { return []byte("bento:" + name) }

// APIBinder installs additional host API objects into a freshly spawned
// container. The functions package provides the standard binder (http,
// zlib, os, bento, stem); the core server always installs api/fs/log.
type APIBinder func(b *Binding)

// Binding is the per-function wiring handed to API binders.
type Binding struct {
	Container *sandbox.Container
	Stem      *stemfw.Session
	Host      *simnet.Host
	Tor       *torclient.Client
	// Emit sends a payload frame to the client driving the current
	// invocation (api.send). It fails outside an invocation.
	Emit func([]byte) error
}

// ServerConfig configures a Bento server.
type ServerConfig struct {
	Host       *simnet.Host
	Tor        *torclient.Client // the node's onion proxy, for function Tor access
	Policy     *policy.Middlebox
	ExitPolicy *policy.ExitPolicy
	Platform   *enclave.Platform
	IAS        *enclave.AttestationService
	Bind       APIBinder
	Stdout     io.Writer
	// Engine selects the bscript execution engine for uploaded code:
	// "" or "vm" compiles to bytecode and caches Programs by source hash
	// (re-uploads and watchdog restarts skip lex/parse/compile); "tree"
	// forces the reference tree-walker, for ablation and debugging.
	Engine string
}

// Server is a running Bento server.
type Server struct {
	cfg     ServerConfig
	sup     *sandbox.Supervisor
	fw      *stemfw.Firewall
	ln      net.Listener
	runtime *enclave.Enclave // the attested Bento execution environment
	reg     *obs.Registry
	om      serverMetrics

	mu         sync.Mutex
	functions  map[string]*runningFunction // invoke token -> fn
	shutdowns  map[string]*runningFunction // shutdown token -> fn
	spawnKeys  map[string]*runningFunction // idempotency key -> fn
	challenges map[string]bool             // outstanding single-use spawn puzzles

	progMu    sync.Mutex
	progCache map[[sha256.Size]byte]*interp.Program // source hash -> compiled program
}

// runningFunction is one spawned container plus its tokens. The container
// pointer is replaced by the restart watchdog, so all access goes through
// ctr/setCtr; tokens, manifest, and the file store survive restarts.
type runningFunction struct {
	invokeTok string
	shutTok   string
	man       *policy.Manifest
	spawnKey  string

	cmu          sync.Mutex
	container    *sandbox.Container
	stem         *stemfw.Session
	code         string // last successfully uploaded source, re-run on restart
	restarts     int
	restartTimes []time.Duration // revival times inside the storm window
	permFailed   bool            // restart-storm guard gave up; no more revivals

	runMu  sync.Mutex // one invocation at a time
	emitMu sync.Mutex
	emit   func([]byte) error // current invocation's data sink
}

func (rf *runningFunction) ctr() *sandbox.Container {
	rf.cmu.Lock()
	defer rf.cmu.Unlock()
	return rf.container
}

func (rf *runningFunction) stemSession() *stemfw.Session {
	rf.cmu.Lock()
	defer rf.cmu.Unlock()
	return rf.stem
}

func (rf *runningFunction) permanentlyFailed() bool {
	rf.cmu.Lock()
	defer rf.cmu.Unlock()
	return rf.permFailed
}

// setEmit installs (or clears) the active invocation's data sink.
func (rf *runningFunction) setEmit(f func([]byte) error) {
	rf.emitMu.Lock()
	rf.emit = f
	rf.emitMu.Unlock()
}

// Emit routes api.send payloads to the active invocation.
func (rf *runningFunction) Emit(p []byte) error {
	rf.emitMu.Lock()
	f := rf.emit
	rf.emitMu.Unlock()
	if f == nil {
		return errors.New("bento: api.send outside an invocation")
	}
	return f(p)
}

// NewServer starts a Bento server listening on the node's Bento port.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Host == nil {
		return nil, errors.New("bento: server needs a host")
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.DefaultMiddlebox()
	}
	ln, err := cfg.Host.Listen(Port)
	if err != nil {
		return nil, err
	}
	reg := cfg.Host.Network().Obs()
	s := &Server{
		cfg:        cfg,
		sup:        sandbox.NewSupervisor(cfg.Policy, cfg.ExitPolicy, cfg.Platform, cfg.Stdout),
		ln:         ln,
		reg:        reg,
		om:         newServerMetrics(reg),
		functions:  make(map[string]*runningFunction),
		shutdowns:  make(map[string]*runningFunction),
		spawnKeys:  make(map[string]*runningFunction),
		challenges: make(map[string]bool),
		progCache:  make(map[[sha256.Size]byte]*interp.Program),
	}
	if cfg.Tor != nil {
		s.fw = stemfw.New(cfg.Tor)
	}
	if cfg.Platform != nil {
		rt, err := cfg.Platform.Launch(ServerImage, 8<<20)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("bento: launching runtime enclave: %w", err)
		}
		s.runtime = rt
	}
	go s.acceptLoop()
	return s, nil
}

// Close stops the server and all functions.
func (s *Server) Close() error {
	s.ln.Close()
	s.mu.Lock()
	fns := make([]*runningFunction, 0, len(s.functions))
	for _, rf := range s.functions {
		fns = append(fns, rf)
	}
	s.functions = map[string]*runningFunction{}
	s.shutdowns = map[string]*runningFunction{}
	s.spawnKeys = map[string]*runningFunction{}
	s.mu.Unlock()
	for _, rf := range fns {
		s.teardown(rf)
	}
	s.sup.CloseAll()
	if s.runtime != nil {
		s.runtime.Destroy()
	}
	return nil
}

// FunctionCount reports running functions (used by experiments).
func (s *Server) FunctionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.functions)
}

// FunctionMemoryEstimate sums the live interpreter memory of all running
// functions (the §7.3 measurement). Call while functions are idle.
func (s *Server) FunctionMemoryEstimate() int64 {
	s.mu.Lock()
	fns := make([]*runningFunction, 0, len(s.functions))
	for _, rf := range s.functions {
		fns = append(fns, rf)
	}
	s.mu.Unlock()
	var total int64
	for _, rf := range fns {
		rf.runMu.Lock()
		total += rf.ctr().Machine().PeakMemory()
		rf.runMu.Unlock()
	}
	return total
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	var wmu sync.Mutex
	send := func(r *response) error {
		wmu.Lock()
		defer wmu.Unlock()
		if r.Type == frameData && len(r.Payload) > 256 {
			payload := r.Payload
			hdr := &response{Type: frameData, BinaryLen: len(payload)}
			if err := wire.WriteJSON(conn, hdr); err != nil {
				return err
			}
			_, err := conn.Write(payload)
			return err
		}
		return wire.WriteJSON(conn, r)
	}
	dec := wire.NewDecoder(conn) // reuse one read buffer across requests
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var err error
		switch req.Op {
		case opPolicy:
			err = send(&response{Type: frameOK, Policy: s.cfg.Policy})
		case opAttest:
			err = s.handleAttest(&req, send)
		case opChallenge:
			err = s.handleChallenge(send)
		case opSpawn:
			err = s.handleSpawn(&req, send)
		case opUpload:
			err = s.handleUpload(&req, send)
		case opInvoke:
			err = s.handleInvoke(&req, send)
		case opShutdown:
			err = s.handleShutdown(&req, send)
		default:
			err = send(&response{Type: frameError, Error: fmt.Sprintf("unknown op %q", req.Op)})
		}
		if err != nil {
			return
		}
	}
}

// handleAttest returns a fresh quote over the server runtime enclave,
// stapled with the IAS verification report (the OCSP-stapling variant of
// §5.4, so clients need not contact IAS themselves).
func (s *Server) handleAttest(req *request, send func(*response) error) error {
	if s.runtime == nil || s.cfg.IAS == nil {
		return send(&response{Type: frameError, Error: "attestation unavailable (no TEE)"})
	}
	report, err := s.attestEnclave(s.runtime, req.Nonce)
	if err != nil {
		return send(&response{Type: frameError, Error: err.Error()})
	}
	return send(&response{Type: frameOK, Report: report})
}

func (s *Server) attestEnclave(e *enclave.Enclave, nonce []byte) (*enclave.Report, error) {
	q, err := e.GenerateQuote(nonce)
	if err != nil {
		return nil, err
	}
	return s.cfg.IAS.Verify(q)
}

// maxOutstandingChallenges bounds puzzle-state memory (a flooder cannot
// exhaust the server by requesting challenges either).
const maxOutstandingChallenges = 1024

// spawnPoWTag namespaces spawn-puzzle digests.
const spawnPoWTag = "bento-spawn-pow"

func (s *Server) handleChallenge(send func(*response) error) error {
	var c [16]byte
	rand.Read(c[:])
	s.mu.Lock()
	if len(s.challenges) >= maxOutstandingChallenges {
		// Drop an arbitrary stale challenge to stay bounded.
		for k := range s.challenges {
			delete(s.challenges, k)
			break
		}
	}
	s.challenges[hex.EncodeToString(c[:])] = true
	s.mu.Unlock()
	return send(&response{Type: frameOK, Challenge: c[:]})
}

// checkSpawnPoW enforces the node's spawn puzzle, consuming the
// challenge (single use) on success.
func (s *Server) checkSpawnPoW(req *request) error {
	bits := s.cfg.Policy.SpawnPoWBits
	if bits <= 0 {
		return nil
	}
	key := hex.EncodeToString(req.Challenge)
	s.mu.Lock()
	known := s.challenges[key]
	if known {
		delete(s.challenges, key)
	}
	s.mu.Unlock()
	if !known {
		return errors.New("spawn requires a fresh proof-of-work challenge")
	}
	if !pow.Verify(spawnPoWTag, req.Challenge, req.PoWNonce, bits) {
		return fmt.Errorf("spawn proof-of-work invalid (need %d bits)", bits)
	}
	return nil
}

func (s *Server) handleSpawn(req *request, send func(*response) error) error {
	if req.Manifest == nil {
		return send(&response{Type: frameError, Error: "missing manifest"})
	}
	// Idempotent replay comes before the PoW check: the original spawn
	// already consumed its single-use challenge, so a retry of a lost
	// response must not be asked to pay again.
	if req.SpawnKey != "" {
		s.mu.Lock()
		prior := s.spawnKeys[req.SpawnKey]
		s.mu.Unlock()
		if prior != nil {
			resp := &response{
				Type:          frameTokens,
				InvokeToken:   prior.invokeTok,
				ShutdownToken: prior.shutTok,
			}
			if e := prior.ctr().Enclave(); e != nil && s.cfg.IAS != nil {
				report, err := s.attestEnclave(e, req.Nonce)
				if err != nil {
					return send(&response{Type: frameError, Error: err.Error()})
				}
				resp.Report = report
			}
			return send(resp)
		}
	}
	if err := s.checkSpawnPoW(req); err != nil {
		s.om.spawnRejects.Inc()
		return send(&response{Type: frameError, Error: err.Error()})
	}
	image := req.Image
	if image == "" {
		image = req.Manifest.Image
	}
	man := *req.Manifest
	man.Image = image
	container, err := s.sup.Spawn(&man)
	if err != nil {
		s.om.spawnRejects.Inc()
		return send(&response{Type: frameError, Error: err.Error()})
	}
	s.om.spawns.Inc()

	rf := &runningFunction{
		container: container,
		invokeTok: newToken(),
		shutTok:   newToken(),
		man:       &man,
		spawnKey:  req.SpawnKey,
	}
	if s.fw != nil {
		rf.stem = s.fw.NewSession(container.ID(), man.Calls)
	}
	s.bindAPI(rf)

	resp := &response{
		Type:          frameTokens,
		InvokeToken:   rf.invokeTok,
		ShutdownToken: rf.shutTok,
	}
	// For enclaved containers, staple an attestation of the container
	// enclave so the client can seal its upload to the enclave key.
	if container.Enclave() != nil && s.cfg.IAS != nil {
		report, err := s.attestEnclave(container.Enclave(), req.Nonce)
		if err != nil {
			s.sup.Remove(container.ID())
			return send(&response{Type: frameError, Error: err.Error()})
		}
		resp.Report = report
	}

	s.mu.Lock()
	s.functions[rf.invokeTok] = rf
	s.shutdowns[rf.shutTok] = rf
	if rf.spawnKey != "" {
		s.spawnKeys[rf.spawnKey] = rf
	}
	s.mu.Unlock()
	return send(resp)
}

// bindAPI installs the core API (api, fs, log) and any configured extras.
// The watchdog calls it again after each restart, so the bindings always
// close over the live container generation.
func (s *Server) bindAPI(rf *runningFunction) {
	c := rf.ctr()
	m := c.Machine()
	m.SetObs(s.reg)

	m.Bind("api", interp.NewObject("api", map[string]interp.BuiltinFn{
		"send": c.Mediate("tor.send", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("api.send takes 1 argument")
			}
			var p []byte
			switch v := args[0].(type) {
			case interp.Bytes:
				p = []byte(v)
			case interp.Str:
				p = []byte(v)
			default:
				return nil, fmt.Errorf("api.send requires bytes or str")
			}
			return interp.None, rf.Emit(p)
		}),
	}))

	m.Bind("fs", interp.NewObject("fs", map[string]interp.BuiltinFn{
		"write": c.Mediate("fs.write", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("fs.write takes (path, data)")
			}
			path, ok := args[0].(interp.Str)
			if !ok {
				return nil, fmt.Errorf("fs.write path must be str")
			}
			var data []byte
			switch v := args[1].(type) {
			case interp.Bytes:
				data = []byte(v)
			case interp.Str:
				data = []byte(v)
			default:
				return nil, fmt.Errorf("fs.write data must be bytes or str")
			}
			return interp.None, c.FS().Write(string(path), data)
		}),
		"read": c.Mediate("fs.read", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("fs.read takes (path)")
			}
			path, ok := args[0].(interp.Str)
			if !ok {
				return nil, fmt.Errorf("fs.read path must be str")
			}
			data, err := c.FS().Read(string(path))
			if err != nil {
				return nil, err
			}
			return interp.Bytes(data), nil
		}),
		"remove": c.Mediate("fs.write", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("fs.remove takes (path)")
			}
			path, ok := args[0].(interp.Str)
			if !ok {
				return nil, fmt.Errorf("fs.remove path must be str")
			}
			return interp.None, c.FS().Remove(string(path))
		}),
		"list": c.Mediate("fs.read", func(args []interp.Value) (interp.Value, error) {
			var elems []interp.Value
			for _, p := range c.FS().List() {
				elems = append(elems, interp.Str(p))
			}
			return &interp.List{Elems: elems}, nil
		}),
	}))

	m.Bind("clock", interp.NewObject("clock", map[string]interp.BuiltinFn{
		"now_ms": c.Mediate("clock.now", func(args []interp.Value) (interp.Value, error) {
			return interp.Int(s.cfg.Host.Clock().Now().Milliseconds()), nil
		}),
		"sleep_ms": c.Mediate("clock.sleep", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("clock.sleep_ms takes (ms)")
			}
			ms, ok := args[0].(interp.Int)
			if !ok || ms < 0 || ms > 600_000 {
				return nil, fmt.Errorf("clock.sleep_ms requires 0..600000")
			}
			s.cfg.Host.Clock().Sleep(time.Duration(ms) * time.Millisecond)
			return interp.None, nil
		}),
	}))

	if s.cfg.Bind != nil {
		s.cfg.Bind(&Binding{
			Container: c,
			Stem:      rf.stemSession(),
			Host:      s.cfg.Host,
			Tor:       s.cfg.Tor,
			Emit:      rf.Emit,
		})
	}
}

// runCode executes function source in rf's container through the
// configured engine. The default engine compiles to bytecode and caches
// the Program by source hash, so re-uploading identical code — or
// re-running it after a watchdog restart — skips lex/parse/compile
// entirely. Programs are machine-independent, making the cache safe to
// share across functions and containers. Compile (syntax) errors surface
// exactly as the tree-walker would report them.
func (s *Server) runCode(rf *runningFunction, code string) error {
	if s.cfg.Engine == "tree" {
		return rf.ctr().Run(code)
	}
	key := sha256.Sum256([]byte(code))
	s.progMu.Lock()
	prog, ok := s.progCache[key]
	s.progMu.Unlock()
	if ok {
		s.om.progCacheHits.Inc()
	} else {
		s.om.progCacheMisses.Inc()
		var err error
		prog, err = rf.ctr().Machine().Compile(code)
		if err != nil {
			return err
		}
		s.progMu.Lock()
		s.progCache[key] = prog
		s.progMu.Unlock()
	}
	return rf.ctr().RunProgram(prog)
}

func (s *Server) handleUpload(req *request, send func(*response) error) error {
	rf := s.lookup(req.InvokeToken)
	if rf == nil {
		return send(&response{Type: frameError, Error: "bad invocation token"})
	}
	code := req.Code
	if req.Sealed {
		e := rf.ctr().Enclave()
		if e == nil {
			return send(&response{Type: frameError, Error: "sealed upload to non-enclaved container"})
		}
		pt, err := otr.OpenSealed(e.Key(), code)
		if err != nil {
			return send(&response{Type: frameError, Error: "sealed upload: " + err.Error()})
		}
		code = pt
	}
	rf.runMu.Lock()
	err := s.runCode(rf, string(code))
	if err == nil {
		s.om.uploads.Inc()
		rf.cmu.Lock()
		rf.code = string(code)
		rf.cmu.Unlock()
	} else {
		s.om.uploadFailures.Inc()
	}
	var restarted bool
	if err != nil {
		restarted = s.maybeRestart(rf, err)
	}
	rf.runMu.Unlock()
	if err != nil {
		return send(&response{Type: frameError, Error: err.Error(), Restarted: restarted,
			PermFailed: rf.permanentlyFailed()})
	}
	return send(&response{Type: frameOK})
}

func (s *Server) handleInvoke(req *request, send func(*response) error) error {
	rf := s.lookup(req.InvokeToken)
	if rf == nil {
		return send(&response{Type: frameError, Error: "bad invocation token"})
	}
	args := make([]interp.Value, 0, len(req.Args))
	for _, w := range req.Args {
		v, err := decodeValue(w)
		if err != nil {
			return send(&response{Type: frameError, Error: err.Error()})
		}
		args = append(args, v)
	}

	// Queue depth counts invocations from the moment they contend for
	// the function's run lock, so a backed-up function shows up as
	// depth, not just latency; invoke_ns spans the same interval
	// (queue wait + execution) in virtual time.
	start := s.now()
	s.om.invokeQueue.Add(1)
	rf.runMu.Lock()
	rf.setEmit(func(p []byte) error {
		return send(&response{Type: frameData, Payload: p})
	})
	result, err := rf.ctr().Call(req.Function, args...)
	rf.setEmit(nil)
	s.om.invokeQueue.Add(-1)
	s.om.invokeNs.ObserveDuration(s.now() - start)
	s.om.invokes.Inc()
	if err != nil {
		s.om.invokeErrors.Inc()
	}
	var restarted bool
	if err != nil {
		restarted = s.maybeRestart(rf, err)
	}
	rf.runMu.Unlock()

	done := &response{Type: frameDone, Restarted: restarted}
	if err != nil {
		done.Error = err.Error()
		done.PermFailed = rf.permanentlyFailed()
	} else if result != nil {
		w, werr := encodeValue(result)
		if werr == nil {
			done.Result = &w
		}
	}
	return send(done)
}

func (s *Server) handleShutdown(req *request, send func(*response) error) error {
	s.mu.Lock()
	rf := s.shutdowns[req.ShutdownToken]
	if rf != nil {
		delete(s.shutdowns, rf.shutTok)
		delete(s.functions, rf.invokeTok)
		if rf.spawnKey != "" {
			delete(s.spawnKeys, rf.spawnKey)
		}
	}
	s.mu.Unlock()
	if rf == nil {
		// The invocation token explicitly must NOT grant shutdown (§5.3).
		return send(&response{Type: frameError, Error: "bad shutdown token"})
	}
	s.om.shutdowns.Inc()
	s.teardown(rf)
	return send(&response{Type: frameOK})
}

func (s *Server) teardown(rf *runningFunction) {
	c := rf.ctr()
	c.Kill()
	if stem := rf.stemSession(); stem != nil {
		stem.Close()
	}
	s.sup.Remove(c.ID())
}

// now reads the deployment's virtual clock, so invoke latencies share
// the time domain of every other *_ns series.
func (s *Server) now() time.Duration {
	return s.cfg.Host.Network().Clock().Now()
}

func (s *Server) lookup(invokeTok string) *runningFunction {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.functions[invokeTok]
}

func newToken() string {
	var b [16]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}
