package bento

import (
	"fmt"
	"io"
	"net"

	"github.com/bento-nfv/bento/internal/hs"
	"github.com/bento-nfv/bento/internal/simnet"
	"github.com/bento-nfv/bento/internal/torclient"
)

// ServeHidden exposes a running Bento server as a hidden service (§5: "or
// Bento may run as a hidden service"): each rendezvous connection is
// piped to the local Bento listener, so clients who cannot (or prefer not
// to) use the exit-to-localhost path reach the same protocol
// anonymously in both directions.
//
// The returned service's ID is the address clients pass to
// Client.ConnectHidden. Close the service to stop accepting.
func ServeHidden(host *simnet.Host, tor *torclient.Client, ident *hs.Identity) (*hs.Service, error) {
	if ident == nil {
		var err error
		ident, err = hs.NewIdentity()
		if err != nil {
			return nil, err
		}
	}
	local := fmt.Sprintf("%s:%d", host.Name(), Port)
	return hs.Launch(tor, ident, hs.ServiceConfig{
		Handler: func(conn net.Conn) {
			defer conn.Close()
			back, err := host.Dial(local)
			if err != nil {
				return
			}
			defer back.Close()
			done := make(chan struct{}, 2)
			go func() {
				io.Copy(back, conn)
				back.Close()
				done <- struct{}{}
			}()
			go func() {
				io.Copy(conn, back)
				conn.Close()
				done <- struct{}{}
			}()
			<-done
			<-done
		},
	})
}
