package bento

import (
	"errors"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/policy"
)

// statefulFunction keeps its state in the container filesystem, so it
// survives watchdog restarts; burn() crashes the interpreter by running
// out of instruction budget.
const statefulFunction = `
def setup(content):
    fs.write("content", content)
    return 1

def serve():
    api.send(fs.read("content"))
    return 1

def burn():
    while 1:
        x = 1
`

// restartManifest asks for the watchdog and a small instruction budget so
// burn() dies quickly.
func restartManifest() *policy.Manifest {
	m := basicManifest()
	m.Instructions = 300_000
	m.Restart = policy.RestartOnFailure
	return m
}

func TestWatchdogRestartPreservesTokensAndState(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 300)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(restartManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	if err := fn.Upload(statefulFunction); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fn.Invoke("setup", interp.Bytes("precious")); err != nil {
		t.Fatal(err)
	}

	// Exhaust the instruction budget: the function dies, the watchdog
	// revives it, and the client is told a retry will work.
	_, _, err = fn.Invoke("burn")
	if err == nil {
		t.Fatal("burn() did not exhaust the budget")
	}
	if !errors.Is(err, ErrRestarted) {
		t.Fatalf("budget death returned %v, want ErrRestarted", err)
	}
	if got := w.servers[0].FunctionRestarts(fn.InvokeToken()); got != 1 {
		t.Fatalf("FunctionRestarts = %d, want 1", got)
	}

	// Same token, and the filesystem survived the restart.
	out, _, err := fn.Invoke("serve")
	if err != nil {
		t.Fatalf("invoke after restart: %v", err)
	}
	if string(out) != "precious" {
		t.Fatalf("state after restart = %q, want %q", out, "precious")
	}
	if w.servers[0].FunctionCount() != 1 {
		t.Fatalf("FunctionCount = %d after restart, want 1", w.servers[0].FunctionCount())
	}
}

func TestWatchdogRespectsNeverPolicy(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 301)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	man := restartManifest()
	man.Restart = "" // default: never
	fn, err := conn.Spawn(man)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	if err := fn.Upload(statefulFunction); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fn.Invoke("burn"); err == nil || errors.Is(err, ErrRestarted) {
		t.Fatalf("burn with Restart=never: %v, want plain error", err)
	}
	// The corpse stays dead: later invocations keep failing.
	if _, _, err := fn.Invoke("serve"); err == nil {
		t.Fatal("invoke succeeded on a dead, non-restartable function")
	}
	if got := w.servers[0].FunctionRestarts(fn.InvokeToken()); got != 0 {
		t.Fatalf("FunctionRestarts = %d, want 0", got)
	}
}

func TestKillFunctionWatchdogRevival(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 302)
	sess := cli.NewSession(cli.Nodes()[0], SessionConfig{})
	defer sess.Close()
	fn, err := sess.Spawn(restartManifest())
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Upload(statefulFunction); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fn.Invoke("setup", interp.Bytes("v1")); err != nil {
		t.Fatal(err)
	}

	// Kill the function out from under the session (the chaos hook). The
	// session's retry absorbs the ErrRestarted round trip entirely.
	if !w.servers[0].KillFunction(fn.InvokeToken()) {
		t.Fatal("KillFunction: unknown token")
	}
	out, _, err := fn.Invoke("serve")
	if err != nil {
		t.Fatalf("session invoke across kill: %v", err)
	}
	if string(out) != "v1" {
		t.Fatalf("state across kill = %q, want %q", out, "v1")
	}
	if got := w.servers[0].FunctionRestarts(fn.InvokeToken()); got != 1 {
		t.Fatalf("FunctionRestarts = %d, want 1", got)
	}
}

func TestSpawnKeyIdempotent(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 303)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	f1, err := conn.SpawnKeyed(basicManifest(), "my-key")
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Shutdown()
	f2, err := conn.SpawnKeyed(basicManifest(), "my-key")
	if err != nil {
		t.Fatalf("replayed spawn: %v", err)
	}
	if f1.InvokeToken() != f2.InvokeToken() || f1.ShutdownToken() != f2.ShutdownToken() {
		t.Fatal("spawn replay minted different tokens")
	}
	if w.servers[0].FunctionCount() != 1 {
		t.Fatalf("FunctionCount = %d after replay, want 1", w.servers[0].FunctionCount())
	}
	// A different key spawns a distinct function.
	f3, err := conn.SpawnKeyed(basicManifest(), "other-key")
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Shutdown()
	if f3.InvokeToken() == f1.InvokeToken() {
		t.Fatal("distinct keys shared a token")
	}
	if w.servers[0].FunctionCount() != 2 {
		t.Fatalf("FunctionCount = %d, want 2", w.servers[0].FunctionCount())
	}
}

// TestSessionSurvivesNodeCrashRestart is the end-to-end robustness story:
// the Bento node's host drops off the network mid-session and comes back,
// and the session's retry loop plus token reattachment make the outage
// invisible to the application.
func TestSessionSurvivesNodeCrashRestart(t *testing.T) {
	w := buildWorld(t, 5, 1)
	ch := w.net.EnableChaos(42)
	clock := w.net.Clock()
	cli := w.client(t, "alice", 304)
	sess := cli.NewSession(cli.Nodes()[0], SessionConfig{MaxAttempts: 10})
	defer sess.Close()

	fn, err := sess.Spawn(restartManifest())
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Upload(statefulFunction); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fn.Invoke("setup", interp.Bytes("durable")); err != nil {
		t.Fatal(err)
	}

	// relay0 hosts the Bento server. Sever all its links, bring it back
	// after a virtual second; the server process itself survives (the
	// supervised-process model), so the function keeps its state.
	ch.CrashHost("relay0")
	go func() {
		clock.Sleep(time.Second)
		ch.RestartHost("relay0")
	}()

	out, _, err := fn.Invoke("serve")
	if err != nil {
		t.Fatalf("invoke across node crash/restart: %v", err)
	}
	if string(out) != "durable" {
		t.Fatalf("state across crash = %q, want %q", out, "durable")
	}
}

// TestWatchdogRestartStormGivesUp drives a function through repeated
// kill/revive cycles fast enough to trip the restart-storm guard: after
// restartStormMax revivals inside the sliding window the watchdog
// declares the function permanently failed, clients see
// ErrPermanentFailure (the signal a fleet controller replaces on), and
// the state is sticky.
func TestWatchdogRestartStormGivesUp(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 305)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(restartManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	if err := fn.Upload(statefulFunction); err != nil {
		t.Fatal(err)
	}

	// Each kill+invoke is one watchdog revival, all within the storm
	// window in virtual time.
	for i := 0; i < restartStormMax; i++ {
		if !w.servers[0].KillFunction(fn.InvokeToken()) {
			t.Fatal("KillFunction: unknown token")
		}
		if _, _, err := fn.Invoke("serve"); !errors.Is(err, ErrRestarted) {
			t.Fatalf("kill %d: invoke returned %v, want ErrRestarted", i, err)
		}
	}
	if got := w.servers[0].FunctionRestarts(fn.InvokeToken()); got != restartStormMax {
		t.Fatalf("FunctionRestarts = %d, want %d", got, restartStormMax)
	}

	// One more crash inside the window: the guard must refuse to revive.
	if !w.servers[0].KillFunction(fn.InvokeToken()) {
		t.Fatal("KillFunction: unknown token")
	}
	if _, _, err := fn.Invoke("serve"); !errors.Is(err, ErrPermanentFailure) {
		t.Fatalf("storm invoke returned %v, want ErrPermanentFailure", err)
	}
	// Sticky: the corpse stays dead, status and telemetry agree.
	if _, _, err := fn.Invoke("serve"); !errors.Is(err, ErrPermanentFailure) {
		t.Fatal("permanent failure was not sticky")
	}
	if got := w.servers[0].FunctionStatus(fn.InvokeToken()); got != StatusPermFail {
		t.Fatalf("FunctionStatus = %q, want %q", got, StatusPermFail)
	}
	if got := w.net.Obs().Counter("bento.watchdog_restart_storms").Value(); got != 1 {
		t.Fatalf("restart_storms counter = %d, want 1", got)
	}
	if got := w.servers[0].FunctionRestarts(fn.InvokeToken()); got != restartStormMax {
		t.Fatalf("FunctionRestarts moved to %d after perm-fail, want %d", got, restartStormMax)
	}
}

// TestSessionRetryBackoffSeeded pins the retry backoff's contract:
// bounded by [BaseBackoff/2, MaxBackoff], ceiling doubling per attempt,
// and fully deterministic per seed.
func TestSessionRetryBackoffSeeded(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 306)
	cfg := SessionConfig{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Seed: 7}
	a := cli.NewSession(cli.Nodes()[0], cfg)
	b := cli.NewSession(cli.Nodes()[0], cfg)
	defer a.Close()
	defer b.Close()

	ceil := cfg.BaseBackoff
	for attempt := 1; attempt <= 8; attempt++ {
		da := a.retryBackoff(attempt)
		if db := b.retryBackoff(attempt); da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", attempt, da, db)
		}
		if da < ceil/2 || da > ceil {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, da, ceil/2, ceil)
		}
		if ceil < cfg.MaxBackoff {
			ceil *= 2
		}
		if ceil > cfg.MaxBackoff {
			ceil = cfg.MaxBackoff
		}
	}
}

// TestSessionRetryBackoffObserved checks the telemetry side of the
// retry path: a watchdog-restart retry records its backoff in the
// session_retry_backoff_ms histogram.
func TestSessionRetryBackoffObserved(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 307)
	sess := cli.NewSession(cli.Nodes()[0], SessionConfig{})
	defer sess.Close()
	fn, err := sess.Spawn(restartManifest())
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Upload(statefulFunction); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fn.Invoke("setup", interp.Bytes("x")); err != nil {
		t.Fatal(err)
	}
	if !w.servers[0].KillFunction(fn.InvokeToken()) {
		t.Fatal("KillFunction: unknown token")
	}
	if _, _, err := fn.Invoke("serve"); err != nil {
		t.Fatalf("invoke across kill: %v", err)
	}
	hist := w.net.Obs().Histogram("bento.session_retry_backoff_ms", nil)
	if hist.Count() < 1 {
		t.Fatalf("retry backoff histogram count = %d, want >= 1", hist.Count())
	}
}
