package bento

import (
	"errors"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/policy"
)

// statefulFunction keeps its state in the container filesystem, so it
// survives watchdog restarts; burn() crashes the interpreter by running
// out of instruction budget.
const statefulFunction = `
def setup(content):
    fs.write("content", content)
    return 1

def serve():
    api.send(fs.read("content"))
    return 1

def burn():
    while 1:
        x = 1
`

// restartManifest asks for the watchdog and a small instruction budget so
// burn() dies quickly.
func restartManifest() *policy.Manifest {
	m := basicManifest()
	m.Instructions = 300_000
	m.Restart = policy.RestartOnFailure
	return m
}

func TestWatchdogRestartPreservesTokensAndState(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 300)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(restartManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	if err := fn.Upload(statefulFunction); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fn.Invoke("setup", interp.Bytes("precious")); err != nil {
		t.Fatal(err)
	}

	// Exhaust the instruction budget: the function dies, the watchdog
	// revives it, and the client is told a retry will work.
	_, _, err = fn.Invoke("burn")
	if err == nil {
		t.Fatal("burn() did not exhaust the budget")
	}
	if !errors.Is(err, ErrRestarted) {
		t.Fatalf("budget death returned %v, want ErrRestarted", err)
	}
	if got := w.servers[0].FunctionRestarts(fn.InvokeToken()); got != 1 {
		t.Fatalf("FunctionRestarts = %d, want 1", got)
	}

	// Same token, and the filesystem survived the restart.
	out, _, err := fn.Invoke("serve")
	if err != nil {
		t.Fatalf("invoke after restart: %v", err)
	}
	if string(out) != "precious" {
		t.Fatalf("state after restart = %q, want %q", out, "precious")
	}
	if w.servers[0].FunctionCount() != 1 {
		t.Fatalf("FunctionCount = %d after restart, want 1", w.servers[0].FunctionCount())
	}
}

func TestWatchdogRespectsNeverPolicy(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 301)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	man := restartManifest()
	man.Restart = "" // default: never
	fn, err := conn.Spawn(man)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	if err := fn.Upload(statefulFunction); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fn.Invoke("burn"); err == nil || errors.Is(err, ErrRestarted) {
		t.Fatalf("burn with Restart=never: %v, want plain error", err)
	}
	// The corpse stays dead: later invocations keep failing.
	if _, _, err := fn.Invoke("serve"); err == nil {
		t.Fatal("invoke succeeded on a dead, non-restartable function")
	}
	if got := w.servers[0].FunctionRestarts(fn.InvokeToken()); got != 0 {
		t.Fatalf("FunctionRestarts = %d, want 0", got)
	}
}

func TestKillFunctionWatchdogRevival(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 302)
	sess := cli.NewSession(cli.Nodes()[0], SessionConfig{})
	defer sess.Close()
	fn, err := sess.Spawn(restartManifest())
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Upload(statefulFunction); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fn.Invoke("setup", interp.Bytes("v1")); err != nil {
		t.Fatal(err)
	}

	// Kill the function out from under the session (the chaos hook). The
	// session's retry absorbs the ErrRestarted round trip entirely.
	if !w.servers[0].KillFunction(fn.InvokeToken()) {
		t.Fatal("KillFunction: unknown token")
	}
	out, _, err := fn.Invoke("serve")
	if err != nil {
		t.Fatalf("session invoke across kill: %v", err)
	}
	if string(out) != "v1" {
		t.Fatalf("state across kill = %q, want %q", out, "v1")
	}
	if got := w.servers[0].FunctionRestarts(fn.InvokeToken()); got != 1 {
		t.Fatalf("FunctionRestarts = %d, want 1", got)
	}
}

func TestSpawnKeyIdempotent(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 303)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	f1, err := conn.SpawnKeyed(basicManifest(), "my-key")
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Shutdown()
	f2, err := conn.SpawnKeyed(basicManifest(), "my-key")
	if err != nil {
		t.Fatalf("replayed spawn: %v", err)
	}
	if f1.InvokeToken() != f2.InvokeToken() || f1.ShutdownToken() != f2.ShutdownToken() {
		t.Fatal("spawn replay minted different tokens")
	}
	if w.servers[0].FunctionCount() != 1 {
		t.Fatalf("FunctionCount = %d after replay, want 1", w.servers[0].FunctionCount())
	}
	// A different key spawns a distinct function.
	f3, err := conn.SpawnKeyed(basicManifest(), "other-key")
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Shutdown()
	if f3.InvokeToken() == f1.InvokeToken() {
		t.Fatal("distinct keys shared a token")
	}
	if w.servers[0].FunctionCount() != 2 {
		t.Fatalf("FunctionCount = %d, want 2", w.servers[0].FunctionCount())
	}
}

// TestSessionSurvivesNodeCrashRestart is the end-to-end robustness story:
// the Bento node's host drops off the network mid-session and comes back,
// and the session's retry loop plus token reattachment make the outage
// invisible to the application.
func TestSessionSurvivesNodeCrashRestart(t *testing.T) {
	w := buildWorld(t, 5, 1)
	ch := w.net.EnableChaos(42)
	clock := w.net.Clock()
	cli := w.client(t, "alice", 304)
	sess := cli.NewSession(cli.Nodes()[0], SessionConfig{MaxAttempts: 10})
	defer sess.Close()

	fn, err := sess.Spawn(restartManifest())
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Upload(statefulFunction); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fn.Invoke("setup", interp.Bytes("durable")); err != nil {
		t.Fatal(err)
	}

	// relay0 hosts the Bento server. Sever all its links, bring it back
	// after a virtual second; the server process itself survives (the
	// supervised-process model), so the function keeps its state.
	ch.CrashHost("relay0")
	go func() {
		clock.Sleep(time.Second)
		ch.RestartHost("relay0")
	}()

	out, _, err := fn.Invoke("serve")
	if err != nil {
		t.Fatalf("invoke across node crash/restart: %v", err)
	}
	if string(out) != "durable" {
		t.Fatalf("state across crash = %q, want %q", out, "durable")
	}
}
