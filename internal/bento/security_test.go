package bento

// Executable walkthrough of the paper's §6 security analysis: each test
// exercises one claimed property end-to-end on the emulated deployment.

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/sandbox"
)

// §6.1 "altering or exfiltrating data or code as it executes": an SGX
// container's filesystem is FS Protect — the operator's disk view is
// ciphertext only (plausible deniability for abusive content, §6.2).
func TestSec61_OperatorSeesOnlyCiphertext(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 600)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	man := basicManifest()
	man.Image = "python-op-sgx"
	fn, err := conn.Spawn(man)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	if err := fn.Upload(`
def stash(data):
    fs.write("secret", data)
    return True
`); err != nil {
		t.Fatal(err)
	}
	marker := []byte("ILLEGAL-CONTENT-MARKER-0123456789")
	if _, _, err := fn.Invoke("stash", interp.Bytes(marker)); err != nil {
		t.Fatal(err)
	}

	// The operator inspects the container's storage out-of-band.
	w.servers[0].mu.Lock()
	var container *sandbox.Container
	for _, rf := range w.servers[0].functions {
		container = rf.container
	}
	w.servers[0].mu.Unlock()
	if container == nil {
		t.Fatal("no running function found")
	}
	type rawer interface {
		RawCiphertext(string) ([]byte, bool)
	}
	fs, ok := container.FS().(rawer)
	if !ok {
		t.Fatal("SGX container filesystem does not expose operator view")
	}
	blob, ok := fs.RawCiphertext("secret")
	if !ok {
		t.Fatal("stored file not found on 'disk'")
	}
	if bytes.Contains(blob, marker) {
		t.Fatal("plaintext visible to the operator")
	}
	for i := 0; i+8 <= len(marker); i++ {
		if bytes.Contains(blob, marker[i:i+8]) {
			t.Fatal("plaintext fragment visible to the operator")
		}
	}
}

// §6.1 "an attacker might try to inject packets into a function that he
// himself does not control": without the invocation token nothing works.
func TestSec61_InjectionRequiresInvocationToken(t *testing.T) {
	w := buildWorld(t, 3, 1)
	alice := w.client(t, "alice", 601)
	conn, err := alice.Connect(alice.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(basicManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	fn.Upload(`
state = []

def record(x):
    state.append(x)
    return len(state)
`)
	fn.Invoke("record", interp.Str("alice's data"))

	// Mallory guesses tokens.
	mallory := w.client(t, "mallory", 602)
	mconn, err := mallory.Connect(mallory.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer mconn.Close()
	for _, guess := range []string{"", "0", strings.Repeat("0", 32), fn.ShutdownToken()[:16] + strings.Repeat("f", 16)} {
		if _, _, err := mconn.AttachFunction(guess).Invoke("record", interp.Str("poison")); err == nil {
			t.Fatalf("injection with guessed token %q succeeded", guess)
		}
	}
	// Alice's state is unpolluted.
	_, n, err := fn.Invoke("record", interp.Str("more"))
	if err != nil {
		t.Fatal(err)
	}
	if n != interp.Int(2) {
		t.Fatalf("state length %v, want 2 (injection landed?)", n)
	}
}

// §6.2 "resource exhaustion attacks": a runaway function is contained,
// and concurrent functions on the node keep working.
func TestSec62_RunawayFunctionDoesNotStarveNeighbors(t *testing.T) {
	w := buildWorld(t, 3, 1)
	attacker := w.client(t, "attacker", 603)
	aconn, err := attacker.Connect(attacker.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer aconn.Close()
	aman := basicManifest()
	aman.Instructions = 200_000
	afn, err := aconn.Spawn(aman)
	if err != nil {
		t.Fatal(err)
	}
	defer afn.Shutdown()
	afn.Upload("def burn():\n    while True:\n        pass\n")

	victim := w.client(t, "victim", 604)
	vconn, err := victim.Connect(victim.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer vconn.Close()
	vfn, err := vconn.Spawn(basicManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer vfn.Shutdown()
	vfn.Upload(echoFunction)

	burnDone := make(chan error, 1)
	go func() {
		_, _, err := afn.Invoke("burn")
		burnDone <- err
	}()
	// The victim's function stays responsive while the attacker burns.
	for i := 0; i < 3; i++ {
		out, _, err := vfn.Invoke("echo", interp.Bytes("still here"))
		if err != nil || string(out) != "echo:still here" {
			t.Fatalf("victim starved: %q %v", out, err)
		}
	}
	if err := <-burnDone; err == nil {
		t.Fatal("runaway function completed without violation")
	}
}

// §6.2 "flooding the middlebox with a large number of functions": the
// container cap stops the flood; slots free on shutdown.
func TestSec62_FunctionFloodCapped(t *testing.T) {
	w := buildWorld(t, 3, 1)
	flooder := w.client(t, "flooder", 605)
	conn, err := flooder.Connect(flooder.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var fns []*Function
	for {
		fn, err := conn.Spawn(basicManifest())
		if err != nil {
			break
		}
		fns = append(fns, fn)
		if len(fns) > 64 {
			t.Fatal("no container cap observed")
		}
	}
	if len(fns) == 0 {
		t.Fatal("no containers at all")
	}
	// A legitimate user is locked out during the flood...
	alice := w.client(t, "alice", 606)
	aconn, err := alice.Connect(alice.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer aconn.Close()
	if _, err := aconn.Spawn(basicManifest()); err == nil {
		t.Fatal("cap did not hold")
	}
	// ...but recovers as soon as one slot frees (the paper's noted
	// fairness gap is about *preventing* the flood, not recovering).
	fns[0].Shutdown()
	fn, err := aconn.Spawn(basicManifest())
	if err != nil {
		t.Fatalf("slot not reclaimed: %v", err)
	}
	fn.Shutdown()
	for _, f := range fns[1:] {
		f.Shutdown()
	}
}
