package bento

// Tests for the spawn-puzzle rate limit (§6.2/§11 "proofs of work"
// against function flooding).

import (
	"strings"
	"testing"

	"github.com/bento-nfv/bento/internal/enclave"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/torclient"
)

// buildPoWWorld is buildWorld with a spawn puzzle demanded by the node.
func buildPoWWorld(t *testing.T, bits int) (*world, *Server) {
	t.Helper()
	w := buildWorld(t, 3, 0) // no default Bento servers
	host := w.net.Host("relay0")
	platform, err := enclave.NewPlatform(enclave.MinTCBVersion)
	if err != nil {
		t.Fatal(err)
	}
	w.ias.RegisterPlatform(platform.QuotingKey())
	pol := policy.DefaultMiddlebox()
	pol.SpawnPoWBits = bits
	srv, err := NewServer(ServerConfig{
		Host:       host,
		Tor:        torclient.New(host, w.cons, 2000),
		Policy:     pol,
		ExitPolicy: exitPolicyWithBento(t),
		Platform:   platform,
		IAS:        w.ias,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return w, srv
}

// connectDirect bypasses node discovery (relay0 has no Bento flag here)
// and opens the protocol stream through a circuit exiting at relay0.
func connectDirect(t *testing.T, w *world, cli *Client) *Conn {
	t.Helper()
	conn, err := cli.Connect(w.cons.Relay("relay0"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestSpawnPuzzlePaidAutomatically(t *testing.T) {
	w, _ := buildPoWWorld(t, 8)
	cli := w.client(t, "alice", 800)
	conn := connectDirect(t, w, cli)

	pol, err := conn.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if pol.SpawnPoWBits != 8 {
		t.Fatalf("advertised %d bits, want 8", pol.SpawnPoWBits)
	}
	// Client.Spawn fetches a challenge and solves it transparently.
	fn, err := conn.Spawn(basicManifest())
	if err != nil {
		t.Fatalf("paying spawn failed: %v", err)
	}
	defer fn.Shutdown()
	if err := fn.Upload(echoFunction); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnWithoutPuzzleRejected(t *testing.T) {
	w, _ := buildPoWWorld(t, 8)
	cli := w.client(t, "mallory", 801)
	conn := connectDirect(t, w, cli)

	// A raw spawn with no challenge/nonce must be refused.
	resp, err := conn.roundTrip(&request{Op: opSpawn, Manifest: basicManifest()}, nil)
	if err == nil {
		t.Fatalf("freeloading spawn accepted: %+v", resp)
	}
	if !strings.Contains(err.Error(), "proof-of-work") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSpawnChallengeSingleUse(t *testing.T) {
	w, _ := buildPoWWorld(t, 4)
	cli := w.client(t, "mallory", 802)
	conn := connectDirect(t, w, cli)

	// Solve one challenge honestly...
	chResp, err := conn.roundTrip(&request{Op: opChallenge}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nonce := solveFor(t, chResp.Challenge, 4)
	req := &request{Op: opSpawn, Manifest: basicManifest(), Challenge: chResp.Challenge, PoWNonce: nonce}
	if _, err := conn.roundTrip(req, nil); err != nil {
		t.Fatalf("first use failed: %v", err)
	}
	// ...then replay it: the challenge was consumed.
	if _, err := conn.roundTrip(req, nil); err == nil {
		t.Fatal("challenge replay accepted")
	}
}

func TestSpawnWrongNonceRejected(t *testing.T) {
	w, _ := buildPoWWorld(t, 12)
	cli := w.client(t, "mallory", 803)
	conn := connectDirect(t, w, cli)
	chResp, err := conn.roundTrip(&request{Op: opChallenge}, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := &request{Op: opSpawn, Manifest: basicManifest(), Challenge: chResp.Challenge, PoWNonce: 0}
	if _, err := conn.roundTrip(req, nil); err == nil {
		t.Fatal("zero-work nonce accepted at 12 bits")
	}
}

func TestSpawnForeignChallengeRejected(t *testing.T) {
	w, _ := buildPoWWorld(t, 4)
	cli := w.client(t, "mallory", 804)
	conn := connectDirect(t, w, cli)
	// A self-invented challenge is unknown to the server even with a
	// valid proof over it.
	forged := []byte("0123456789abcdef")
	nonce := solveFor(t, forged, 4)
	req := &request{Op: opSpawn, Manifest: basicManifest(), Challenge: forged, PoWNonce: nonce}
	if _, err := conn.roundTrip(req, nil); err == nil {
		t.Fatal("forged challenge accepted")
	}
}

func solveFor(t *testing.T, challenge []byte, bits int) uint64 {
	t.Helper()
	nonce, err := solveSpawnChallenge(challenge, bits)
	if err != nil {
		t.Fatal(err)
	}
	return nonce
}
