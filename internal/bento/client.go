package bento

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/enclave"
	"github.com/bento-nfv/bento/internal/hs"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/otr"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/pow"
	"github.com/bento-nfv/bento/internal/torclient"
	"github.com/bento-nfv/bento/internal/wire"
)

// Client discovers Bento nodes and drives functions on them. All server
// interactions happen over Tor circuits, preserving the user's anonymity
// (§6.3).
type Client struct {
	Tor *torclient.Client
	// IASKey is the pinned attestation-service key used to check stapled
	// reports. Nil disables attestation checking (plain containers only).
	IASKey ed25519.PublicKey
}

// NewClient creates a Bento client on top of an onion proxy.
func NewClient(tor *torclient.Client, iasKey ed25519.PublicKey) *Client {
	return &Client{Tor: tor, IASKey: iasKey}
}

// Nodes lists Bento-capable relays from the consensus whose middlebox
// policies permit every call the caller needs.
func (c *Client) Nodes(calls ...string) []*dirauth.Descriptor {
	return c.Tor.Consensus().BentoNodes(calls...)
}

// PickNode chooses a Bento node at random among those supporting calls.
func (c *Client) PickNode(calls ...string) (*dirauth.Descriptor, error) {
	nodes := c.Nodes(calls...)
	if len(nodes) == 0 {
		return nil, fmt.Errorf("bento: no node supports %v", calls)
	}
	return nodes[c.Tor.Intn(len(nodes))], nil
}

// Conn is a connection to one Bento server, multiplexing protocol
// requests over a single Tor stream.
type Conn struct {
	client *Client
	stream net.Conn
	circ   *torclient.Circuit // nil when attached to an existing stream
	mu     sync.Mutex
	dec    *wire.Decoder // lazy; reuses one read buffer across round trips (guarded by mu)

	policyMu     sync.Mutex
	cachedPolicy *policy.Middlebox
}

// ErrTransport wraps failures of the Tor transport under a Bento
// connection — circuit death, severed streams, timeouts. Operations
// failing with it did not necessarily reach the server; idempotent ones
// may be retried on a fresh connection (which the Session layer does).
var ErrTransport = errors.New("bento: transport failure")

// ErrRestarted wraps invocation errors for which the server reported its
// watchdog already revived the function: the same tokens remain valid and
// the invocation may simply be retried.
var ErrRestarted = errors.New("bento: function restarted by server")

// ErrPermanentFailure wraps errors for which the server reported the
// function permanently failed: its restart-storm guard gave up on a
// crash-looping function, so retries against this token cannot succeed.
// A control plane seeing it should replace the replica.
var ErrPermanentFailure = errors.New("bento: function permanently failed")

// Connect reaches the Bento server co-resident with the given relay by
// building a circuit that exits at that relay and connecting to the
// server via localhost (the §5 deployment mode that needs no changes to
// Tor). Relays on the Tor client's avoid list are skipped when choosing
// the two leading hops, so reconnects route around recent failures.
func (c *Client) Connect(node *dirauth.Descriptor) (*Conn, error) {
	cons := c.Tor.Consensus()
	var path []*dirauth.Descriptor
	pool := c.Tor.FilterHealthy(dirauth.PreferFast(cons.Relays, node.Nickname))
	switch {
	case len(pool) >= 2:
		i := c.Tor.Intn(len(pool))
		j := c.Tor.Intn(len(pool) - 1)
		if j >= i {
			j++
		}
		path = []*dirauth.Descriptor{pool[i], pool[j], node}
	case len(pool) == 1:
		path = []*dirauth.Descriptor{pool[0], node}
	default:
		path = []*dirauth.Descriptor{node}
	}
	circ, err := c.Tor.BuildCircuit(path)
	if err != nil {
		return nil, fmt.Errorf("%w: circuit to %s: %v", ErrTransport, node.Nickname, err)
	}
	stream, err := circ.OpenStream(fmt.Sprintf("localhost:%d", Port))
	if err != nil {
		circ.Close()
		return nil, fmt.Errorf("%w: connecting to Bento server on %s: %v", ErrTransport, node.Nickname, err)
	}
	return &Conn{client: c, stream: stream, circ: circ}, nil
}

// ConnectHidden reaches a Bento server running as a hidden service.
func (c *Client) ConnectHidden(serviceID string) (*Conn, error) {
	conn, err := hs.Dial(c.Tor, serviceID)
	if err != nil {
		return nil, err
	}
	return &Conn{client: c, stream: conn}, nil
}

// AttachStream wraps an existing connection (e.g. a direct simnet dial in
// tests) as a Bento protocol connection.
func (c *Client) AttachStream(stream net.Conn) *Conn {
	return &Conn{client: c, stream: stream}
}

// Close tears down the connection and its circuit.
func (co *Conn) Close() error {
	co.stream.Close()
	if co.circ != nil {
		return co.circ.Close()
	}
	return nil
}

// roundTrip sends a request and reads frames until a terminal frame,
// passing any data frames to onData. Stream-level failures come back
// wrapped in ErrTransport so callers can tell a dead connection (retry on
// a fresh one) from a server-reported error (don't).
func (co *Conn) roundTrip(req *request, onData func([]byte)) (*response, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if err := wire.WriteJSON(co.stream, req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTransport, err)
	}
	if co.dec == nil {
		co.dec = wire.NewDecoder(co.stream)
	}
	for {
		var resp response
		if err := co.dec.Decode(&resp); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTransport, err)
		}
		switch resp.Type {
		case frameData:
			payload := resp.Payload
			if resp.BinaryLen > 0 {
				payload = make([]byte, resp.BinaryLen)
				if _, err := io.ReadFull(co.stream, payload); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrTransport, err)
				}
			}
			if onData != nil {
				onData(payload)
			}
		case frameError:
			if resp.PermFailed {
				return &resp, fmt.Errorf("%w: %s", ErrPermanentFailure, resp.Error)
			}
			if resp.Restarted {
				return &resp, fmt.Errorf("%w: %s", ErrRestarted, resp.Error)
			}
			return &resp, errors.New("bento: " + resp.Error)
		default:
			return &resp, nil
		}
	}
}

// Policy fetches the node's middlebox policy (the function on a
// well-known port from §5.5).
func (co *Conn) Policy() (*policy.Middlebox, error) {
	resp, err := co.roundTrip(&request{Op: opPolicy}, nil)
	if err != nil {
		return nil, err
	}
	if resp.Policy == nil {
		return nil, errors.New("bento: server returned no policy")
	}
	return resp.Policy, nil
}

// Attest verifies the server's Bento runtime enclave via a stapled IAS
// report, returning the report.
func (co *Conn) Attest() (*enclave.Report, error) {
	nonce := make([]byte, 16)
	rand.Read(nonce)
	resp, err := co.roundTrip(&request{Op: opAttest, Nonce: nonce}, nil)
	if err != nil {
		return nil, err
	}
	if co.client.IASKey == nil {
		return nil, errors.New("bento: no IAS key pinned")
	}
	if err := enclave.CheckReport(resp.Report, co.client.IASKey, enclave.Measure(ServerImage), nonce); err != nil {
		return nil, err
	}
	return resp.Report, nil
}

// Function is a spawned function on a Bento server.
type Function struct {
	conn      *Conn
	image     string
	invokeTok string
	shutTok   string
	report    *enclave.Report // container attestation, for SGX images
}

// nodePolicy fetches (and caches) the node's middlebox policy.
func (co *Conn) nodePolicy() (*policy.Middlebox, error) {
	co.policyMu.Lock()
	cached := co.cachedPolicy
	co.policyMu.Unlock()
	if cached != nil {
		return cached, nil
	}
	pol, err := co.Policy()
	if err != nil {
		return nil, err
	}
	co.policyMu.Lock()
	co.cachedPolicy = pol
	co.policyMu.Unlock()
	return pol, nil
}

// spawnPoWTagClient mirrors the server's spawn-puzzle namespace.
const spawnPoWTagClient = "bento-spawn-pow"

// solveSpawnChallenge pays a spawn puzzle over the given challenge.
func solveSpawnChallenge(challenge []byte, bits int) (uint64, error) {
	return pow.Solve(spawnPoWTagClient, challenge, bits)
}

// solveSpawnPuzzle obtains a fresh challenge and pays the node's spawn
// price, if it advertises one.
func (co *Conn) solveSpawnPuzzle(req *request) error {
	pol, err := co.nodePolicy()
	if err != nil {
		return err
	}
	if pol.SpawnPoWBits <= 0 {
		return nil
	}
	resp, err := co.roundTrip(&request{Op: opChallenge}, nil)
	if err != nil {
		return err
	}
	if len(resp.Challenge) == 0 {
		return errors.New("bento: server issued no challenge")
	}
	nonce, err := pow.Solve(spawnPoWTagClient, resp.Challenge, pol.SpawnPoWBits)
	if err != nil {
		return err
	}
	req.Challenge = resp.Challenge
	req.PoWNonce = nonce
	return nil
}

// Spawn creates a container for the given manifest, paying the node's
// spawn puzzle when its policy demands one. For the SGX image the
// returned Function carries a verified attestation of the container
// enclave; Upload will seal code to it.
func (co *Conn) Spawn(man *policy.Manifest) (*Function, error) {
	return co.SpawnKeyed(man, "")
}

// SpawnKeyed spawns with an idempotency key: retrying with the same key
// (e.g. after a transport failure that ate the response) returns the
// original function's tokens instead of creating a duplicate container.
func (co *Conn) SpawnKeyed(man *policy.Manifest, spawnKey string) (*Function, error) {
	nonce := make([]byte, 16)
	rand.Read(nonce)
	req := &request{Op: opSpawn, Image: man.Image, Manifest: man, Nonce: nonce, SpawnKey: spawnKey}
	if err := co.solveSpawnPuzzle(req); err != nil {
		return nil, err
	}
	resp, err := co.roundTrip(req, nil)
	if err != nil {
		return nil, err
	}
	if resp.Type != frameTokens {
		return nil, fmt.Errorf("bento: unexpected spawn response %q", resp.Type)
	}
	f := &Function{
		conn:      co,
		image:     man.Image,
		invokeTok: resp.InvokeToken,
		shutTok:   resp.ShutdownToken,
	}
	if man.Image == "python-op-sgx" {
		if co.client.IASKey == nil {
			return nil, errors.New("bento: SGX image requires a pinned IAS key")
		}
		if err := enclave.CheckReport(resp.Report, co.client.IASKey,
			enclave.Measure(ContainerImage(man.Image)), nonce); err != nil {
			f.Shutdown()
			return nil, fmt.Errorf("bento: container attestation: %w", err)
		}
		f.report = resp.Report
	}
	return f, nil
}

// InvokeToken returns the shareable invocation capability (§5.3: sharing
// it shares use of the function but not shutdown rights).
func (f *Function) InvokeToken() string { return f.invokeTok }

// ShutdownToken returns the exclusive shutdown capability.
func (f *Function) ShutdownToken() string { return f.shutTok }

// AttachFunction binds to an already-running function via a shared
// invocation token.
func (co *Conn) AttachFunction(invokeToken string) *Function {
	return &Function{conn: co, invokeTok: invokeToken}
}

// Upload sends function source code. For attested SGX containers the
// code is sealed to the enclave channel key, so the operator never sees
// it in plaintext.
func (f *Function) Upload(code string) error {
	req := &request{Op: opUpload, InvokeToken: f.invokeTok, Code: []byte(code)}
	if f.report != nil {
		sealed, err := otr.SealTo(f.report.Quote.ChannelKey, []byte(code))
		if err != nil {
			return err
		}
		req.Code = sealed
		req.Sealed = true
	}
	_, err := f.conn.roundTrip(req, nil)
	return err
}

// Invoke calls a function, returning the concatenation of api.send
// payloads and the function's return value.
func (f *Function) Invoke(fn string, args ...interp.Value) ([]byte, interp.Value, error) {
	var out []byte
	result, err := f.InvokeStream(fn, args, func(p []byte) {
		out = append(out, p...)
	})
	return out, result, err
}

// InvokeStream calls a function, delivering api.send payloads to onData
// as they are produced (streaming responses, e.g. progressive downloads).
func (f *Function) InvokeStream(fn string, args []interp.Value, onData func([]byte)) (interp.Value, error) {
	wargs, err := MarshalArgs(args...)
	if err != nil {
		return nil, err
	}
	resp, err := f.conn.roundTrip(&request{
		Op:          opInvoke,
		InvokeToken: f.invokeTok,
		Function:    fn,
		Args:        wargs,
	}, onData)
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		if resp.PermFailed {
			return nil, fmt.Errorf("%w: %s", ErrPermanentFailure, resp.Error)
		}
		if resp.Restarted {
			// The server's watchdog already revived the function; the
			// same token works, so the caller may just try again.
			return nil, fmt.Errorf("%w: %s", ErrRestarted, resp.Error)
		}
		return nil, errors.New("bento: " + resp.Error)
	}
	if resp.Result == nil {
		return interp.None, nil
	}
	return decodeValue(*resp.Result)
}

// ShutdownByToken terminates a function by its shutdown token directly
// (used when only the token, not a Function, is held).
func (co *Conn) ShutdownByToken(shutdownToken string) error {
	_, err := co.roundTrip(&request{Op: opShutdown, ShutdownToken: shutdownToken}, nil)
	return err
}

// Shutdown terminates the function using the shutdown token.
func (f *Function) Shutdown() error {
	if f.shutTok == "" {
		return errors.New("bento: no shutdown token (attached via invocation token)")
	}
	_, err := f.conn.roundTrip(&request{Op: opShutdown, ShutdownToken: f.shutTok}, nil)
	return err
}
