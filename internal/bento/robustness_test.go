package bento

import (
	"strings"
	"testing"

	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/otr"
	"github.com/bento-nfv/bento/internal/wire"
)

// Adversarial-client tests: the server must survive protocol garbage and
// refuse confused-deputy attempts.

func TestServerSurvivesGarbageFrames(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "mallory", 200)

	// Raw Tor stream to the Bento port, then junk.
	node := cli.Nodes()[0]
	conn, err := cli.Connect(node)
	if err != nil {
		t.Fatal(err)
	}
	// Write a frame that is valid JSON but a nonsense op.
	_, err = conn.roundTrip(&request{Op: "pwn"}, nil)
	if err == nil {
		t.Fatal("nonsense op succeeded")
	}
	if !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("nonsense op error = %v, want the server's rejection, not a dead stream", err)
	}
	conn.Close()

	// Raw bytes that are not a frame at all: the server must drop the
	// connection rather than wedge on it.
	conn2, err := cli.Connect(node)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.stream.Write([]byte("\xff\xff\xff\xff garbage garbage")); err != nil {
		t.Fatalf("writing garbage: %v", err)
	}
	if _, err := conn2.stream.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept the stream open after a malformed frame")
	}
	conn2.Close()

	// The server still works for honest clients.
	honest := w.client(t, "alice", 201)
	hconn, err := honest.Connect(honest.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer hconn.Close()
	if _, err := hconn.Policy(); err != nil {
		t.Fatalf("server broken after garbage: %v", err)
	}
}

func TestSealedUploadToPlainContainerRejected(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 202)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(basicManifest()) // plain python image
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()

	key, _ := otr.NewOnionKey()
	sealed, _ := otr.SealTo(key.Public(), []byte("x = 1"))
	_, err = conn.roundTrip(&request{
		Op:          opUpload,
		InvokeToken: fn.InvokeToken(),
		Code:        sealed,
		Sealed:      true,
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "non-enclaved") {
		t.Fatalf("sealed upload to plain container: %v", err)
	}
}

func TestSealedUploadWithWrongKeyRejected(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 203)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	man := basicManifest()
	man.Image = "python-op-sgx"
	fn, err := conn.Spawn(man)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()

	// Seal to an attacker-chosen key instead of the enclave key.
	wrong, _ := otr.NewOnionKey()
	sealed, _ := otr.SealTo(wrong.Public(), []byte("x = 1"))
	if _, err := conn.roundTrip(&request{
		Op:          opUpload,
		InvokeToken: fn.InvokeToken(),
		Code:        sealed,
		Sealed:      true,
	}, nil); err == nil {
		t.Fatal("wrong-key sealed upload accepted")
	}
}

func TestUploadSyntaxErrorSurfaced(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 204)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(basicManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	if err := fn.Upload("def broken(:\n    pass"); err == nil {
		t.Fatal("syntax error not surfaced")
	}
	// The container survives a failed upload and accepts a good one.
	if err := fn.Upload(echoFunction); err != nil {
		t.Fatalf("container unusable after bad upload: %v", err)
	}
	if out, _, err := fn.Invoke("echo", interp.Bytes("ok")); err != nil || string(out) != "echo:ok" {
		t.Fatalf("invoke after recovery: %q %v", out, err)
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "alice", 205)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(basicManifest())
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	fn.Upload(echoFunction)
	if _, _, err := fn.Invoke("nonexistent"); err == nil {
		t.Fatal("unknown function invoked")
	}
	// Invoking a non-function global fails cleanly.
	fn.Upload("notfn = 42")
	if _, _, err := fn.Invoke("notfn"); err == nil {
		t.Fatal("non-function invoked")
	}
}

func TestConcurrentClientsSeparateFunctions(t *testing.T) {
	w := buildWorld(t, 4, 1)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			cli := w.client(t, "user"+string(rune('a'+i)), int64(210+i))
			conn, err := cli.Connect(cli.Nodes()[0])
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			fn, err := conn.Spawn(basicManifest())
			if err != nil {
				done <- err
				return
			}
			defer fn.Shutdown()
			if err := fn.Upload(echoFunction); err != nil {
				done <- err
				return
			}
			payload := interp.Bytes{byte('0' + i)}
			out, _, err := fn.Invoke("echo", payload)
			if err != nil {
				done <- err
				return
			}
			if string(out) != "echo:"+string(payload) {
				done <- errMismatch(string(out))
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errMismatch string

func (e errMismatch) Error() string { return "output mismatch: " + string(e) }

func TestOversizedFrameRejectedByServer(t *testing.T) {
	w := buildWorld(t, 3, 1)
	cli := w.client(t, "mallory", 220)
	conn, err := cli.Connect(cli.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A code upload beyond the wire limit must be refused client-side
	// (WriteJSON) rather than shipped.
	huge := strings.Repeat("x = 1\n", wire.MaxMessage/5)
	fn := conn.AttachFunction("whatever")
	if err := fn.Upload(huge); err == nil {
		t.Fatal("oversized upload accepted")
	}
}
