package bento

import (
	"github.com/bento-nfv/bento/internal/obs"
)

// serverMetrics is a Bento server's pre-registered telemetry bundle,
// fetched from the host network's registry at NewServer time. Names are
// shared by every node on the network, so the dashboard aggregates the
// whole deployment; a network without telemetry yields nil handles and
// every update is a no-op.
type serverMetrics struct {
	spawns           *obs.Counter
	spawnRejects     *obs.Counter // PoW or supervisor refusals
	uploads          *obs.Counter
	uploadFailures   *obs.Counter
	invokes          *obs.Counter
	invokeErrors     *obs.Counter
	shutdowns        *obs.Counter
	watchdogRestarts *obs.Counter   // successful container revivals
	restartStorms    *obs.Counter   // crash-loops the storm guard gave up on
	progCacheHits    *obs.Counter   // uploads served from the compiled-program cache
	progCacheMisses  *obs.Counter   // uploads that had to compile
	invokeQueue      *obs.Gauge     // invocations in flight or waiting on a function's run lock
	invokeNs         *obs.Histogram // queue wait + execution per invocation (virtual ns)
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	return serverMetrics{
		spawns:           reg.Counter("bento.spawns"),
		spawnRejects:     reg.Counter("bento.spawn_rejects"),
		uploads:          reg.Counter("bento.uploads"),
		uploadFailures:   reg.Counter("bento.upload_failures"),
		invokes:          reg.Counter("bento.invokes"),
		invokeErrors:     reg.Counter("bento.invoke_errors"),
		shutdowns:        reg.Counter("bento.shutdowns"),
		watchdogRestarts: reg.Counter("bento.watchdog_restarts"),
		restartStorms:    reg.Counter("bento.watchdog_restart_storms"),
		progCacheHits:    reg.Counter("bento.program_cache_hits"),
		progCacheMisses:  reg.Counter("bento.program_cache_misses"),
		invokeQueue:      reg.Gauge("bento.invoke_queue_depth"),
		invokeNs:         reg.Histogram("bento.invoke_ns", obs.LatencyBuckets),
	}
}

// obsReg resolves the client-side registry through the onion proxy's
// host. Sessions span circuit rebuilds, so the network — not any one
// connection — is the natural owner.
func (c *Client) obsReg() *obs.Registry {
	if c == nil || c.Tor == nil {
		return nil
	}
	return c.Tor.Host().Network().Obs()
}
