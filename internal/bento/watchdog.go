// The server-side restart watchdog. A function that dies — killed, out of
// instruction budget, or over its memory limit — leaves a dead interpreter
// behind: the kill flag and the spent budget are sticky, so every later
// invocation would fail. When the function's manifest opts in via its
// Restart policy, the server instead respawns the container (preserving
// its private filesystem as a persistent volume), rebinds the host API,
// re-runs the last uploaded code, and keeps both capability tokens valid.
// Clients see a done frame with Restarted=true and may simply retry.
package bento

import (
	"errors"
	"time"

	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/stemfw"
)

// maxRestarts caps watchdog revivals per function, bounding the work a
// crash-looping function can extract from the node.
const maxRestarts = 16

// The restart-storm guard: a function revived restartStormMax times
// within a sliding restartStormWindow (virtual time) is crash-looping —
// reviving it again would only let it extract more cycles. The watchdog
// instead declares it permanently failed: no further restarts, every
// later invocation reports the state to the client (PermFailed on the
// done frame → ErrPermanentFailure), and a fleet controller reading that
// signal replaces the replica instead of retrying forever.
const (
	restartStormMax    = 4
	restartStormWindow = 30 * time.Second
)

// crashClass reports whether err killed the interpreter (as opposed to an
// application-level error that leaves the machine healthy).
func crashClass(err error) bool {
	return errors.Is(err, interp.ErrKilled) ||
		errors.Is(err, interp.ErrBudgetExceeded) ||
		errors.Is(err, interp.ErrMemoryExceeded)
}

// maybeRestart applies the function's restart policy after a failed run.
// It must be called with rf.runMu held. It returns true when the function
// came back: a fresh container mounted on the old file store, API
// rebound, last uploaded code re-run, tokens unchanged.
func (s *Server) maybeRestart(rf *runningFunction, cause error) bool {
	if !crashClass(cause) {
		return false
	}
	switch rf.man.Restart {
	case policy.RestartOnFailure, policy.RestartAlways:
	default:
		return false
	}
	now := s.cfg.Host.Clock().Now()
	rf.cmu.Lock()
	if rf.permFailed {
		rf.cmu.Unlock()
		return false
	}
	// Slide the storm window forward, then check whether one more
	// revival would exceed the rate the guard allows.
	keep := rf.restartTimes[:0]
	for _, t := range rf.restartTimes {
		if now-t < restartStormWindow {
			keep = append(keep, t)
		}
	}
	rf.restartTimes = keep
	if len(rf.restartTimes) >= restartStormMax || rf.restarts >= maxRestarts {
		rf.permFailed = true
		rf.cmu.Unlock()
		s.om.restartStorms.Inc()
		return false
	}
	gen := rf.restarts
	code := rf.code
	old := rf.container
	rf.cmu.Unlock()
	container, err := s.sup.Respawn(old.ID(), rf.man)
	if err != nil {
		return false
	}
	var stem *stemfw.Session
	if s.fw != nil {
		stem = s.fw.NewSession(container.ID(), rf.man.Calls)
	}
	rf.cmu.Lock()
	oldStem := rf.stem
	rf.container = container
	rf.stem = stem
	rf.restarts = gen + 1
	rf.restartTimes = append(rf.restartTimes, now)
	rf.cmu.Unlock()
	if oldStem != nil {
		oldStem.Close()
	}
	s.bindAPI(rf)
	if code != "" {
		if err := s.runCode(rf, code); err != nil {
			// The code itself dies on a fresh machine; reviving again
			// would loop. Leave the corpse for the next policy decision.
			return false
		}
	}
	s.om.watchdogRestarts.Inc()
	return true
}

// KillFunction aborts the function holding the given invocation token as
// though it crashed mid-run — the fault-injection hook chaos experiments
// use. With a restart policy in the manifest, the watchdog revives it on
// the next invocation. Returns false for an unknown token.
func (s *Server) KillFunction(invokeTok string) bool {
	rf := s.lookup(invokeTok)
	if rf == nil {
		return false
	}
	rf.ctr().Kill()
	return true
}

// FunctionRestarts reports how many times the watchdog has revived the
// function holding the given invocation token.
func (s *Server) FunctionRestarts(invokeTok string) int {
	rf := s.lookup(invokeTok)
	if rf == nil {
		return 0
	}
	rf.cmu.Lock()
	defer rf.cmu.Unlock()
	return rf.restarts
}

// Function status strings reported by FunctionStatus.
const (
	StatusRunning  = "running"
	StatusPermFail = "permanent-failed"
	StatusUnknown  = "unknown"
)

// FunctionStatus reports the lifecycle state of the function holding the
// given invocation token: StatusRunning, StatusPermFail (the restart-storm
// guard gave up on it), or StatusUnknown for a token this server does not
// hold (never spawned here, or already shut down).
func (s *Server) FunctionStatus(invokeTok string) string {
	rf := s.lookup(invokeTok)
	if rf == nil {
		return StatusUnknown
	}
	if rf.permanentlyFailed() {
		return StatusPermFail
	}
	return StatusRunning
}
