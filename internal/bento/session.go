// The client-side session layer: a self-healing wrapper around a Bento
// connection. A Session retries idempotent operations (connect, policy,
// attest, keyed spawn, invoke) across transport failures with capped
// exponential backoff and per-operation deadlines, both in virtual time.
// After a reconnect it reattaches to still-running functions through
// their invocation tokens, so a Bento node restarting mid-session is
// invisible to the application as long as the function's manifest asks
// the server watchdog to bring it back.
package bento

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand"
	"strings"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/enclave"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/policy"
)

// ErrSessionClosed is returned by operations on a closed session.
var ErrSessionClosed = errors.New("bento: session closed")

// SessionConfig tunes a session's retry behavior. All durations are
// virtual (simnet clock); zero fields take the defaults below.
type SessionConfig struct {
	// MaxAttempts bounds tries per operation (default 5).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; it doubles per
	// attempt (default 200ms virtual).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 10s virtual).
	MaxBackoff time.Duration
	// OpDeadline bounds one attempt of one operation; an attempt
	// exceeding it counts as a transport failure and is retried on a
	// fresh connection (default 2min virtual).
	OpDeadline time.Duration
	// Seed seeds the retry jitter, so two runs with the same seed and
	// fault pattern back off identically — deterministic experiments on
	// the virtual clock. Zero takes 1.
	Seed int64
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 200 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 10 * time.Second
	}
	if c.OpDeadline <= 0 {
		c.OpDeadline = 2 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Session is a self-healing connection to one Bento node. It is safe for
// concurrent use; operations serialize on the underlying Conn.
type Session struct {
	client *Client
	node   *dirauth.Descriptor
	cfg    SessionConfig

	rngMu sync.Mutex
	rng   *mrand.Rand // retry jitter; seeded for reproducibility

	mu     sync.Mutex
	conn   *Conn
	closed bool
}

// NewSession creates a session to the given node. No connection is made
// until the first operation needs one.
func (c *Client) NewSession(node *dirauth.Descriptor, cfg SessionConfig) *Session {
	cfg = cfg.withDefaults()
	return &Session{
		client: c,
		node:   node,
		cfg:    cfg,
		rng:    mrand.New(mrand.NewSource(cfg.Seed)),
	}
}

// Node returns the descriptor of the session's Bento node.
func (s *Session) Node() *dirauth.Descriptor { return s.node }

// ensure returns the live connection, dialing one if needed.
func (s *Session) ensure() (*Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.conn != nil {
		return s.conn, nil
	}
	co, err := s.client.Connect(s.node)
	if err != nil {
		return nil, err
	}
	s.conn = co
	return co, nil
}

// invalidate drops a connection observed failing so the next attempt
// dials a fresh circuit (which avoids recently-failed relays).
func (s *Session) invalidate(co *Conn) {
	s.mu.Lock()
	if s.conn == co {
		s.conn = nil
	}
	s.mu.Unlock()
	if co != nil {
		co.Close()
	}
}

// Close tears the session down.
func (s *Session) Close() error {
	s.mu.Lock()
	co := s.conn
	s.conn = nil
	s.closed = true
	s.mu.Unlock()
	if co != nil {
		return co.Close()
	}
	return nil
}

// withRetry runs op against the session's connection, retrying transport
// failures (on a fresh connection) and watchdog restarts (same
// connection) with capped exponential backoff on the virtual clock.
// Application errors are returned as-is; they would fail again.
func (s *Session) withRetry(opName string, op func(*Conn) error) error {
	reg := s.client.obsReg()
	sp := reg.StartSpan("bento.op")
	sp.Note(opName)
	err := s.withRetryInner(reg, opName, op)
	if err != nil {
		sp.Fail(err)
	}
	sp.End()
	return err
}

// retryBackoff computes the wait before retry attempt n (n >= 1):
// bounded exponential growth from BaseBackoff to MaxBackoff, with the
// upper half of each step drawn uniformly from the session's seeded RNG
// (half-jitter). Jitter decorrelates retry storms — many sessions hit by
// the same fault spread their reconnects out instead of stampeding the
// recovering node in lockstep — while the floor of ceil/2 keeps every
// wait meaningfully long.
func (s *Session) retryBackoff(attempt int) time.Duration {
	ceil := s.cfg.BaseBackoff
	for i := 1; i < attempt && ceil < s.cfg.MaxBackoff; i++ {
		ceil *= 2
	}
	if ceil > s.cfg.MaxBackoff {
		ceil = s.cfg.MaxBackoff
	}
	half := ceil / 2
	if half <= 0 {
		return ceil
	}
	s.rngMu.Lock()
	j := time.Duration(s.rng.Int63n(int64(half) + 1))
	s.rngMu.Unlock()
	return half + j
}

func (s *Session) withRetryInner(reg *obs.Registry, opName string, op func(*Conn) error) error {
	clock := s.client.Tor.Clock()
	backoffHist := reg.Histogram("bento.session_retry_backoff_ms", obs.ExpBuckets(1, 2, 18))
	var lastErr error
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			reg.Counter("bento.session_retries").Inc()
			backoff := s.retryBackoff(attempt)
			backoffHist.Observe(backoff.Milliseconds())
			clock.Sleep(backoff)
		}
		co, err := s.ensure()
		if err != nil {
			if errors.Is(err, ErrSessionClosed) {
				return err
			}
			lastErr = err
			continue
		}
		// The per-op deadline lives on the virtual clock; convert to the
		// wall instant net.Conn wants.
		wall := time.Duration(float64(s.cfg.OpDeadline) * clock.Scale())
		co.stream.SetReadDeadline(time.Now().Add(wall))
		err = op(co)
		co.stream.SetReadDeadline(time.Time{})
		if err == nil {
			return nil
		}
		lastErr = err
		switch {
		case errors.Is(err, ErrTransport):
			reg.Counter("bento.conn_invalidated").Inc()
			s.invalidate(co)
		case errors.Is(err, ErrRestarted):
			reg.Counter("bento.restarts_observed").Inc()
			// The server already revived the function; same connection,
			// same token, just try again.
		default:
			return err
		}
	}
	return fmt.Errorf("bento: %s: giving up after %d attempts: %w", opName, s.cfg.MaxAttempts, lastErr)
}

// Policy fetches the node's middlebox policy.
func (s *Session) Policy() (*policy.Middlebox, error) {
	var out *policy.Middlebox
	err := s.withRetry("policy", func(co *Conn) error {
		p, err := co.Policy()
		if err == nil {
			out = p
		}
		return err
	})
	return out, err
}

// Attest verifies the node's runtime enclave.
func (s *Session) Attest() (*enclave.Report, error) {
	var out *enclave.Report
	err := s.withRetry("attest", func(co *Conn) error {
		r, err := co.Attest()
		if err == nil {
			out = r
		}
		return err
	})
	return out, err
}

// Spawn creates a function with retry. The session picks a random spawn
// key, so a retry whose predecessor actually reached the server replays
// the original tokens instead of leaking a second container.
func (s *Session) Spawn(man *policy.Manifest) (*SessionFunction, error) {
	return s.SpawnWithKey(man, newSpawnKey())
}

// SpawnWithKey spawns with a caller-chosen idempotency key. Unlike
// Spawn's per-call random key, a deterministic key lets a control plane
// make spawn idempotent across its own retries: if a whole Spawn call
// dies with its fate unknown (say, a partition ate the response), calling
// again later with the same key adopts the function the first attempt
// created instead of leaking a duplicate container.
func (s *Session) SpawnWithKey(man *policy.Manifest, key string) (*SessionFunction, error) {
	var fn *Function
	err := s.withRetry("spawn", func(co *Conn) error {
		f, err := co.SpawnKeyed(man, key)
		if err == nil {
			fn = f
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return &SessionFunction{
		s:         s,
		invokeTok: fn.InvokeToken(),
		shutTok:   fn.ShutdownToken(),
		report:    fn.report,
	}, nil
}

// Attach binds to an already-running function via a shared invocation
// token (reattachment after reconnect needs nothing else: the token is
// the whole capability).
func (s *Session) Attach(invokeToken string) *SessionFunction {
	return &SessionFunction{s: s, invokeTok: invokeToken}
}

// SessionFunction is a function driven through a session: every operation
// reattaches to the current connection by token, so it survives
// reconnects and server-side restarts.
type SessionFunction struct {
	s         *Session
	invokeTok string
	shutTok   string
	report    *enclave.Report
}

// InvokeToken returns the shareable invocation capability.
func (f *SessionFunction) InvokeToken() string { return f.invokeTok }

// ShutdownToken returns the exclusive shutdown capability (empty when
// attached by invocation token).
func (f *SessionFunction) ShutdownToken() string { return f.shutTok }

// Upload sends function source with retry. Re-running the same source on
// the same container is idempotent for the declarative top-level code
// functions conventionally carry (def + constant assignments).
func (f *SessionFunction) Upload(code string) error {
	return f.s.withRetry("upload", func(co *Conn) error {
		fun := &Function{conn: co, invokeTok: f.invokeTok, report: f.report}
		return fun.Upload(code)
	})
}

// Invoke calls the function with retry, returning the concatenated
// api.send payloads and the return value. The payload buffer resets on
// each attempt, so a retried invocation never duplicates output.
func (f *SessionFunction) Invoke(fn string, args ...interp.Value) ([]byte, interp.Value, error) {
	var out []byte
	var result interp.Value
	err := f.s.withRetry("invoke "+fn, func(co *Conn) error {
		out = out[:0]
		fun := &Function{conn: co, invokeTok: f.invokeTok}
		res, err := fun.InvokeStream(fn, args, func(p []byte) {
			out = append(out, p...)
		})
		if err == nil {
			result = res
		}
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return out, result, nil
}

// Shutdown terminates the function. Shutdown is at-least-once: when a
// retry follows a transport failure, a "bad shutdown token" reply is
// taken as evidence the lost first attempt already succeeded.
func (f *SessionFunction) Shutdown() error {
	if f.shutTok == "" {
		return errors.New("bento: no shutdown token (attached via invocation token)")
	}
	sawTransport := false
	return f.s.withRetry("shutdown", func(co *Conn) error {
		err := co.ShutdownByToken(f.shutTok)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrTransport) {
			sawTransport = true
			return err
		}
		if sawTransport && strings.Contains(err.Error(), "bad shutdown token") {
			return nil
		}
		return err
	})
}

func newSpawnKey() string {
	var b [16]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}
