// Package webfarm provides the synthetic web it takes to evaluate Bento
// offline: a farm of deterministic websites (stable page and resource
// sizes per site, so each site has a consistent traffic fingerprint — the
// property website-fingerprinting attacks exploit) served over a minimal
// HTTP/1.0 subset, plus a browser-like fetcher that retrieves a page and
// all its resources through any dialer (direct or a Tor stream).
package webfarm

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"

	"github.com/bento-nfv/bento/internal/simnet"
)

// Port is the farm's HTTP port.
const Port = 80

// Resource is one sub-resource of a page.
type Resource struct {
	Path string
	Size int
}

// Site is a deterministic website profile.
type Site struct {
	Domain    string
	HTMLSize  int
	Resources []Resource
	// Compressible selects realistic page-like content (compresses
	// roughly 3-4x under zlib, as HTML/JS does) instead of
	// incompressible pseudorandom filler.
	Compressible bool
	seed         int64
}

// TotalSize is the page weight: HTML plus all resources.
func (s *Site) TotalSize() int {
	total := s.HTMLSize
	for _, r := range s.Resources {
		total += r.Size
	}
	return total
}

// GenerateSites produces n sites with stable, distinguishable profiles.
// Site i's layout depends only on (seed, i), so repeated visits produce
// the same traffic pattern.
func GenerateSites(n int, seed int64) []*Site {
	sites := make([]*Site, 0, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)*7919))
		s := &Site{
			Domain:   fmt.Sprintf("site-%03d.web", i),
			HTMLSize: 2_000 + rng.Intn(80_000),
			seed:     seed + int64(i)*7919,
		}
		nres := 2 + rng.Intn(18)
		for r := 0; r < nres; r++ {
			s.Resources = append(s.Resources, Resource{
				Path: fmt.Sprintf("/r%d", r),
				Size: 1_000 + rng.Intn(250_000),
			})
		}
		sites = append(sites, s)
	}
	return sites
}

// NamedSite builds a site with explicit sizes (the Table 2 domains).
func NamedSite(domain string, htmlSize int, resourceSizes []int) *Site {
	s := &Site{Domain: domain, HTMLSize: htmlSize, seed: int64(len(domain)) * 1_000_003}
	for i, size := range resourceSizes {
		s.Resources = append(s.Resources, Resource{Path: fmt.Sprintf("/r%d", i), Size: size})
	}
	return s
}

// Body returns the deterministic bytes served at path, or nil for an
// unknown path. The HTML at "/" begins with a resource manifest the
// fetcher follows, padded with deterministic filler to HTMLSize.
func (s *Site) Body(path string) []byte {
	if path == "/" || path == "/index.html" {
		var b strings.Builder
		for _, r := range s.Resources {
			fmt.Fprintf(&b, "RES %s %d\n", r.Path, r.Size)
		}
		b.WriteString("BODY\n")
		head := b.String()
		if len(head) >= s.HTMLSize {
			return []byte(head)
		}
		pad := s.HTMLSize - len(head)
		if s.Compressible {
			return append([]byte(head), compressibleFiller(s.seed, pad)...)
		}
		return append([]byte(head), filler(s.seed, pad)...)
	}
	for i, r := range s.Resources {
		if r.Path == path {
			if s.Compressible {
				return compressibleFiller(s.seed+int64(i)+1, r.Size)
			}
			return filler(s.seed+int64(i)+1, r.Size)
		}
	}
	return nil
}

// compressibleFiller mimics real page content — a mix of repetitive
// markup and already-compressed media — targeting a zlib ratio around
// 1.6x (40% repeated phrase blocks, 60% high-entropy blocks).
func compressibleFiller(seed int64, n int) []byte {
	const block = 48
	phrase := filler(seed, block)
	out := make([]byte, 0, n+block)
	for i := 0; len(out) < n; i++ {
		if i%5 < 2 {
			out = append(out, phrase...)
		} else {
			out = append(out, filler(seed+int64(i)*31, block)...)
		}
	}
	return out[:n]
}

// filler is deterministic pseudorandom content (xorshift64).
func filler(seed int64, n int) []byte {
	out := make([]byte, n)
	x := uint64(seed)*2654435761 + 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

// Server serves one or more sites from a single emulated host (virtual
// hosting by the request's Host header, defaulting to the first site).
type Server struct {
	ln    net.Listener
	sites map[string]*Site
	first *Site
}

// Serve starts serving the given sites on the host's HTTP port.
func Serve(host *simnet.Host, sites ...*Site) (*Server, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("webfarm: no sites")
	}
	ln, err := host.Listen(Port)
	if err != nil {
		return nil, err
	}
	srv := &Server{ln: ln, sites: make(map[string]*Site), first: sites[0]}
	for _, s := range sites {
		srv.sites[s.Domain] = s
	}
	go srv.acceptLoop()
	return srv, nil
}

// Close stops the server.
func (s *Server) Close() error { return s.ln.Close() }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	for {
		method, path, host, err := readRequest(r)
		if err != nil {
			return
		}
		site := s.first
		if host != "" {
			if st, ok := s.sites[host]; ok {
				site = st
			}
		}
		if method != "GET" {
			writeResponse(conn, 405, nil)
			return
		}
		body := site.Body(path)
		if body == nil {
			if err := writeResponse(conn, 404, nil); err != nil {
				return
			}
			continue
		}
		if err := writeResponse(conn, 200, body); err != nil {
			return
		}
	}
}

func readRequest(r *bufio.Reader) (method, path, host string, err error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", "", "", err
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 {
		return "", "", "", fmt.Errorf("webfarm: bad request line %q", line)
	}
	method, path = fields[0], fields[1]
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return "", "", "", err
		}
		h = strings.TrimSpace(h)
		if h == "" {
			return method, path, host, nil
		}
		if v, ok := strings.CutPrefix(h, "Host: "); ok {
			host = v
		}
	}
}

func writeResponse(w io.Writer, status int, body []byte) error {
	text := map[int]string{200: "OK", 404: "Not Found", 405: "Method Not Allowed"}[status]
	if _, err := fmt.Fprintf(w, "HTTP/1.0 %d %s\r\nContent-Length: %d\r\n\r\n", status, text, len(body)); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// Dialer opens a connection to "host:port" — a simnet host's Dial or a
// Tor circuit's OpenStream.
type Dialer func(target string) (net.Conn, error)

// Get fetches a single URL ("domain/path") through the dialer.
func Get(dial Dialer, domain, path string) ([]byte, error) {
	conn, err := dial(fmt.Sprintf("%s:%d", domain, Port))
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return getOn(conn, domain, path)
}

func getOn(conn net.Conn, domain, path string) ([]byte, error) {
	if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n", path, domain); err != nil {
		return nil, err
	}
	r := bufio.NewReader(conn)
	status, length, err := readResponseHeader(r)
	if err != nil {
		return nil, err
	}
	if status != 200 {
		return nil, fmt.Errorf("webfarm: GET %s%s: status %d", domain, path, status)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("webfarm: short body for %s%s: %w", domain, path, err)
	}
	return body, nil
}

func readResponseHeader(r *bufio.Reader) (status, length int, err error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return 0, 0, err
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 {
		return 0, 0, fmt.Errorf("webfarm: bad status line %q", line)
	}
	status, err = strconv.Atoi(fields[1])
	if err != nil {
		return 0, 0, fmt.Errorf("webfarm: bad status %q", fields[1])
	}
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return 0, 0, err
		}
		h = strings.TrimSpace(h)
		if h == "" {
			return status, length, nil
		}
		if v, ok := strings.CutPrefix(h, "Content-Length: "); ok {
			if length, err = strconv.Atoi(v); err != nil {
				return 0, 0, fmt.Errorf("webfarm: bad content length %q", v)
			}
		}
	}
}

// FetchPage acts like a browser: it fetches the page HTML, parses the
// resource manifest, fetches every resource over the same connection, and
// returns the concatenated page bytes.
func FetchPage(dial Dialer, domain string) ([]byte, error) {
	conn, err := dial(fmt.Sprintf("%s:%d", domain, Port))
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	html, err := getOn(conn, domain, "/")
	if err != nil {
		return nil, err
	}
	page := append([]byte(nil), html...)
	for _, path := range ParseResourcePaths(html) {
		body, err := getOn(conn, domain, path)
		if err != nil {
			return nil, err
		}
		page = append(page, body...)
	}
	return page, nil
}

// ParseResourcePaths extracts the resource manifest from page HTML.
func ParseResourcePaths(html []byte) []string {
	var out []string
	for _, line := range strings.Split(string(html), "\n") {
		if line == "BODY" {
			break
		}
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "RES" {
			out = append(out, fields[1])
		}
	}
	return out
}
