package webfarm

import (
	"bytes"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/simnet"
)

func testNet(t *testing.T) *simnet.Network {
	t.Helper()
	return simnet.NewNetwork(simnet.NewClock(0.001), time.Millisecond)
}

func TestSitesDeterministic(t *testing.T) {
	a := GenerateSites(10, 42)
	b := GenerateSites(10, 42)
	for i := range a {
		if a[i].Domain != b[i].Domain || a[i].TotalSize() != b[i].TotalSize() {
			t.Fatalf("site %d not deterministic", i)
		}
		if !bytes.Equal(a[i].Body("/"), b[i].Body("/")) {
			t.Fatalf("site %d HTML not deterministic", i)
		}
	}
	// Different seeds differ.
	c := GenerateSites(10, 43)
	same := 0
	for i := range a {
		if a[i].TotalSize() == c[i].TotalSize() {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seed has no effect")
	}
}

func TestSitesDistinguishable(t *testing.T) {
	sites := GenerateSites(50, 7)
	sizes := make(map[int]int)
	for _, s := range sites {
		sizes[s.TotalSize()]++
	}
	if len(sizes) < 45 {
		t.Fatalf("only %d distinct page weights across 50 sites", len(sizes))
	}
}

func TestServeAndGet(t *testing.T) {
	n := testNet(t)
	site := NamedSite("example.web", 5000, []int{1000, 2000})
	host := n.AddHost("example.web", 0)
	srv, err := Serve(host, site)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := n.AddHost("client", 0)
	body, err := Get(client.Dial, "example.web", "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 5000 {
		t.Fatalf("HTML length %d, want 5000", len(body))
	}
	if got := ParseResourcePaths(body); len(got) != 2 {
		t.Fatalf("parsed %d resources, want 2", len(got))
	}
	if _, err := Get(client.Dial, "example.web", "/missing"); err == nil {
		t.Fatal("404 path returned content")
	}
}

func TestFetchPage(t *testing.T) {
	n := testNet(t)
	site := NamedSite("shop.web", 3000, []int{4000, 5000, 6000})
	host := n.AddHost("shop.web", 0)
	srv, err := Serve(host, site)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := n.AddHost("client", 0)
	page, err := FetchPage(client.Dial, "shop.web")
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != site.TotalSize() {
		t.Fatalf("page size %d, want %d", len(page), site.TotalSize())
	}
	// Fetching twice yields identical bytes (stable fingerprint).
	page2, err := FetchPage(client.Dial, "shop.web")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, page2) {
		t.Fatal("page content unstable across visits")
	}
}

func TestVirtualHosting(t *testing.T) {
	n := testNet(t)
	a := NamedSite("a.web", 1000, nil)
	b := NamedSite("b.web", 9000, nil)
	host := n.AddHost("farm", 0)
	srv, err := Serve(host, a, b)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := n.AddHost("client", 0)
	bodyA, err := Get(client.Dial, "farm", "/")
	if err != nil {
		t.Fatal(err)
	}
	// Host header routed by Get uses the dialed domain ("farm"), which is
	// unknown, so the first site is served.
	if len(bodyA) != 1000 {
		t.Fatalf("default vhost served %d bytes, want 1000", len(bodyA))
	}
}

func TestServeNoSites(t *testing.T) {
	n := testNet(t)
	host := n.AddHost("empty", 0)
	if _, err := Serve(host); err == nil {
		t.Fatal("Serve with no sites succeeded")
	}
}

func TestFillerDeterministic(t *testing.T) {
	a := filler(5, 1000)
	b := filler(5, 1000)
	c := filler(6, 1000)
	if !bytes.Equal(a, b) {
		t.Fatal("filler not deterministic")
	}
	if bytes.Equal(a, c) {
		t.Fatal("filler ignores seed")
	}
}
