// Package functions provides the standard Bento function library: the
// host API surface bound into every container (requests/http, zlib, os,
// tor, stem, bento, erasure), the bscript source of the paper's functions
// (Browser §7, LoadBalancer §8, Cover §9.1, Dropbox §9.2, Shard §9.3),
// and Go-side deployment helpers.
package functions

import (
	"bytes"
	"compress/zlib"
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/bento"
	"github.com/bento-nfv/bento/internal/fountain"
	"github.com/bento-nfv/bento/internal/hs"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/webfarm"
	mrand "math/rand"
)

// StandardBinder returns the bento.APIBinder installing the full function
// API. iasKey may be nil when composition never targets SGX containers.
func StandardBinder() bento.APIBinder {
	return func(b *bento.Binding) {
		st := &apiState{b: b}
		m := b.Container.Machine()
		m.Bind("requests", st.requestsObject())
		m.Bind("http", st.requestsObject())
		m.Bind("zlib", zlibObject())
		m.Bind("os", osObject())
		m.Bind("erasure", erasureObject())
		if b.Stem != nil {
			m.Bind("tor", st.torObject())
			m.Bind("stem", st.stemObject())
			m.Bind("bento", st.bentoObject())
		}
	}
}

// apiState holds per-function host-side state (stream handles, async
// invocations, composition connections).
type apiState struct {
	b *bento.Binding

	mu       sync.Mutex
	nextID   int
	conns    map[int]*composeConn
	asyncs   map[int]chan asyncResult
	hsIdents map[int]*hs.Identity
}

type composeConn struct {
	node string
	conn *bento.Conn
	cli  *bento.Client
}

type asyncResult struct {
	data []byte
	err  error
}

func (st *apiState) alloc() int {
	st.nextID++
	return st.nextID
}

// --- requests / http ---------------------------------------------------------

// requestsObject exposes requests.get(url) — the web client Browser runs
// at the exit (§7.2). Direct network access is mediated by the
// container's iptables-style filter.
func (st *apiState) requestsObject() *interp.Object {
	c := st.b.Container
	get := c.Mediate("net.dial", func(args []interp.Value) (interp.Value, error) {
		if len(args) < 1 {
			return nil, fmt.Errorf("get(url) requires a URL")
		}
		url, ok := args[0].(interp.Str)
		if !ok {
			return nil, fmt.Errorf("get() URL must be str")
		}
		domain, path := splitURL(string(url))
		if err := c.CheckNet(domain, webfarm.Port); err != nil {
			return nil, err
		}
		var body []byte
		var err error
		if path == "/" {
			body, err = webfarm.FetchPage(st.b.Host.Dial, domain)
		} else {
			body, err = webfarm.Get(st.b.Host.Dial, domain, path)
		}
		if err != nil {
			return nil, err
		}
		return interp.Bytes(body), nil
	})
	return interp.NewObject("requests", map[string]interp.BuiltinFn{"get": get})
}

func splitURL(url string) (domain, path string) {
	url = strings.TrimPrefix(url, "http://")
	if i := strings.IndexByte(url, '/'); i >= 0 {
		return url[:i], url[i:]
	}
	return url, "/"
}

// --- zlib --------------------------------------------------------------------

func zlibObject() *interp.Object {
	return interp.NewObject("zlib", map[string]interp.BuiltinFn{
		"compress": func(args []interp.Value) (interp.Value, error) {
			data, err := bytesArg(args, 0, "compress")
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			w := zlib.NewWriter(&buf)
			w.Write(data)
			w.Close()
			return interp.Bytes(buf.Bytes()), nil
		},
		"decompress": func(args []interp.Value) (interp.Value, error) {
			data, err := bytesArg(args, 0, "decompress")
			if err != nil {
				return nil, err
			}
			r, err := zlib.NewReader(bytes.NewReader(data))
			if err != nil {
				return nil, fmt.Errorf("zlib: %w", err)
			}
			out, err := io.ReadAll(io.LimitReader(r, 64<<20))
			if err != nil {
				return nil, fmt.Errorf("zlib: %w", err)
			}
			return interp.Bytes(out), nil
		},
	})
}

// --- os ----------------------------------------------------------------------

func osObject() *interp.Object {
	return interp.NewObject("os", map[string]interp.BuiltinFn{
		"urandom": func(args []interp.Value) (interp.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("urandom(n)")
			}
			n, ok := args[0].(interp.Int)
			if !ok || n < 0 || n > 64<<20 {
				return nil, fmt.Errorf("urandom size out of range")
			}
			out := make([]byte, n)
			rand.Read(out)
			return interp.Bytes(out), nil
		},
	})
}

// --- erasure (Shard's coding core) -------------------------------------------

func erasureObject() *interp.Object {
	return interp.NewObject("erasure", map[string]interp.BuiltinFn{
		"encode": func(args []interp.Value) (interp.Value, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("encode(data, k, n)")
			}
			data, err := bytesArg(args, 0, "encode")
			if err != nil {
				return nil, err
			}
			k, ok1 := args[1].(interp.Int)
			n, ok2 := args[2].(interp.Int)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("encode k, n must be ints")
			}
			shards, err := fountain.Encode(data, int(k), int(n), mrand.New(mrand.NewSource(int64(k)<<8|int64(n))))
			if err != nil {
				return nil, err
			}
			out := &interp.List{}
			for _, s := range shards {
				out.Elems = append(out.Elems, interp.Bytes(s.Marshal()))
			}
			return out, nil
		},
		"decode": func(args []interp.Value) (interp.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("decode(shards)")
			}
			l, ok := args[0].(*interp.List)
			if !ok {
				return nil, fmt.Errorf("decode takes a list of shard bytes")
			}
			var shards []*fountain.Shard
			for _, e := range l.Elems {
				b, ok := e.(interp.Bytes)
				if !ok {
					return nil, fmt.Errorf("shards must be bytes")
				}
				s, err := fountain.UnmarshalShard(b)
				if err != nil {
					return nil, err
				}
				shards = append(shards, s)
			}
			data, err := fountain.Decode(shards)
			if err != nil {
				return nil, err
			}
			return interp.Bytes(data), nil
		},
	})
}

// --- tor (circuit-level access through the Stem firewall) ---------------------

func (st *apiState) torObject() *interp.Object {
	c := st.b.Container
	sess := st.b.Stem
	return interp.NewObject("tor", map[string]interp.BuiltinFn{
		"create_circuit": c.Mediate("stem.create_circuit", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("create_circuit(dest_host, dest_port)")
			}
			host, ok1 := args[0].(interp.Str)
			port, ok2 := args[1].(interp.Int)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("create_circuit(str, int)")
			}
			h, err := sess.CreateCircuit(string(host), int(port))
			if err != nil {
				return nil, err
			}
			return interp.Int(h), nil
		}),
		"open_stream": c.Mediate("stem.create_circuit", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("open_stream(circuit, target)")
			}
			circ, ok1 := args[0].(interp.Int)
			target, ok2 := args[1].(interp.Str)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("open_stream(int, str)")
			}
			h, err := sess.OpenStream(int(circ), string(target))
			if err != nil {
				return nil, err
			}
			return interp.Int(h), nil
		}),
		"send": c.Mediate("tor.send", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("send(stream, data)")
			}
			h, ok := args[0].(interp.Int)
			if !ok {
				return nil, fmt.Errorf("send stream handle must be int")
			}
			data, err := bytesArg(args, 1, "send")
			if err != nil {
				return nil, err
			}
			conn, err := sess.Stream(int(h))
			if err != nil {
				return nil, err
			}
			if _, err := conn.Write(data); err != nil {
				return nil, err
			}
			return interp.None, nil
		}),
		"recv": c.Mediate("tor.send", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("recv(stream, max, timeout_ms)")
			}
			h, ok1 := args[0].(interp.Int)
			max, ok2 := args[1].(interp.Int)
			tmo, ok3 := args[2].(interp.Int)
			if !ok1 || !ok2 || !ok3 || max <= 0 || max > 16<<20 {
				return nil, fmt.Errorf("recv(int, int, int)")
			}
			conn, err := sess.Stream(int(h))
			if err != nil {
				return nil, err
			}
			real := time.Duration(float64(time.Duration(tmo)*time.Millisecond) * st.b.Host.Clock().Scale())
			conn.SetReadDeadline(time.Now().Add(real))
			buf := make([]byte, max)
			n, err := conn.Read(buf)
			conn.SetReadDeadline(time.Time{})
			if n > 0 {
				return interp.Bytes(buf[:n]), nil
			}
			if err == io.EOF {
				return interp.None, nil
			}
			if err != nil {
				if te, ok := err.(interface{ Timeout() bool }); ok && te.Timeout() {
					return interp.Bytes(nil), nil
				}
				return nil, err
			}
			return interp.Bytes(nil), nil
		}),
		"close_stream": c.Mediate("stem.close_circuit", func(args []interp.Value) (interp.Value, error) {
			h, ok := args[0].(interp.Int)
			if len(args) != 1 || !ok {
				return nil, fmt.Errorf("close_stream(handle)")
			}
			return interp.None, sess.CloseStream(int(h))
		}),
		"close_circuit": c.Mediate("stem.close_circuit", func(args []interp.Value) (interp.Value, error) {
			h, ok := args[0].(interp.Int)
			if len(args) != 1 || !ok {
				return nil, fmt.Errorf("close_circuit(handle)")
			}
			return interp.None, sess.CloseCircuit(int(h))
		}),
		"drop": c.Mediate("stem.create_circuit", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("drop(circuit, nbytes)")
			}
			h, ok1 := args[0].(interp.Int)
			n, ok2 := args[1].(interp.Int)
			if !ok1 || !ok2 || n < 0 || n > 1<<20 {
				return nil, fmt.Errorf("drop(int, int)")
			}
			junk := make([]byte, n)
			rand.Read(junk)
			return interp.None, sess.SendDrop(int(h), junk)
		}),
	})
}

// --- stem (hidden-service operations) ------------------------------------------

func (st *apiState) stemObject() *interp.Object {
	c := st.b.Container
	sess := st.b.Stem
	serveFile := func(path string) func(net.Conn) {
		return func(conn net.Conn) {
			defer conn.Close()
			data, err := c.FS().Read(path)
			if err != nil {
				return
			}
			conn.Write(data)
		}
	}
	return interp.NewObject("stem", map[string]interp.BuiltinFn{
		"new_identity": c.Mediate("stem.launch_hs", func(args []interp.Value) (interp.Value, error) {
			ident, err := hs.NewIdentity()
			if err != nil {
				return nil, err
			}
			blob, err := ident.Marshal()
			if err != nil {
				return nil, err
			}
			return interp.Bytes(blob), nil
		}),
		"service_id": c.Mediate("stem.launch_hs", func(args []interp.Value) (interp.Value, error) {
			blob, err := bytesArg(args, 0, "service_id")
			if err != nil {
				return nil, err
			}
			ident, err := hs.IdentityFromBytes(blob)
			if err != nil {
				return nil, err
			}
			return interp.Str(ident.ServiceID()), nil
		}),
		// launch_hs starts a hidden service whose introductions queue for
		// the function (the LoadBalancer front).
		"launch_hs": c.Mediate("stem.launch_hs", func(args []interp.Value) (interp.Value, error) {
			blob, err := bytesArg(args, 0, "launch_hs")
			if err != nil {
				return nil, err
			}
			ident, err := hs.IdentityFromBytes(blob)
			if err != nil {
				return nil, err
			}
			return st.launchService(ident, nil)
		}),
		// launch_hs_file starts a hidden service serving the container
		// file at path to every client (the no-LoadBalancer baseline).
		"launch_hs_file": c.Mediate("stem.launch_hs", func(args []interp.Value) (interp.Value, error) {
			blob, err := bytesArg(args, 0, "launch_hs_file")
			if err != nil {
				return nil, err
			}
			if len(args) != 2 {
				return nil, fmt.Errorf("launch_hs_file(identity, path)")
			}
			path, ok := args[1].(interp.Str)
			if !ok {
				return nil, fmt.Errorf("launch_hs_file path must be str")
			}
			ident, err := hs.IdentityFromBytes(blob)
			if err != nil {
				return nil, err
			}
			return st.launchService(ident, serveFile(string(path)))
		}),
		"next_intro": c.Mediate("stem.launch_hs", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("next_intro(hs_handle)")
			}
			h, ok := args[0].(interp.Int)
			if !ok {
				return nil, fmt.Errorf("next_intro handle must be int")
			}
			blob, err := sess.NextIntroduction(int(h))
			if err != nil {
				return nil, err
			}
			if blob == nil {
				return interp.None, nil
			}
			return interp.Bytes(blob), nil
		}),
		// respond_rendezvous_file meets a client at its rendezvous point
		// on behalf of identity and serves the container file at path.
		// The transfer proceeds asynchronously; active_transfers reports
		// in-flight connections.
		"respond_rendezvous_file": c.Mediate("stem.launch_hs", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("respond_rendezvous_file(identity, intro, path)")
			}
			identBlob, err := bytesArg(args, 0, "respond_rendezvous_file")
			if err != nil {
				return nil, err
			}
			intro, err := bytesArg(args, 1, "respond_rendezvous_file")
			if err != nil {
				return nil, err
			}
			path, ok := args[2].(interp.Str)
			if !ok {
				return nil, fmt.Errorf("path must be str")
			}
			ident, err := hs.IdentityFromBytes(identBlob)
			if err != nil {
				return nil, err
			}
			if err := sess.RespondAtRendezvous(ident, intro, serveFile(string(path))); err != nil {
				return nil, err
			}
			return interp.None, nil
		}),
		// active_transfers reports this function's in-flight rendezvous
		// connections — the replica load signal of §8.2.
		"active_transfers": c.Mediate("stem.launch_hs", func(args []interp.Value) (interp.Value, error) {
			return interp.Int(sess.ActiveTransfers()), nil
		}),
	})
}

func (st *apiState) launchService(ident *hs.Identity, handler func(net.Conn)) (interp.Value, error) {
	h, err := st.b.Stem.LaunchHiddenService(ident, handler)
	if err != nil {
		return nil, err
	}
	return interp.Int(h), nil
}

// --- bento (function composition, §3 "Composing Functions") -------------------

func (st *apiState) bentoObject() *interp.Object {
	c := st.b.Container
	cli := bento.NewClient(st.b.Tor, nil)
	getConn := func(h interp.Value) (*composeConn, error) {
		n, ok := h.(interp.Int)
		if !ok {
			return nil, fmt.Errorf("connection handle must be int")
		}
		st.mu.Lock()
		defer st.mu.Unlock()
		cc := st.conns[int(n)]
		if cc == nil {
			return nil, fmt.Errorf("unknown connection handle %d", n)
		}
		return cc, nil
	}
	return interp.NewObject("bento", map[string]interp.BuiltinFn{
		"nodes": c.Mediate("bento.compose", func(args []interp.Value) (interp.Value, error) {
			out := &interp.List{}
			for _, d := range cli.Nodes() {
				out.Elems = append(out.Elems, interp.Str(d.Nickname))
			}
			return out, nil
		}),
		"connect": c.Mediate("bento.compose", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("connect(node)")
			}
			nick, ok := args[0].(interp.Str)
			if !ok {
				return nil, fmt.Errorf("connect node must be str")
			}
			desc := st.b.Tor.Consensus().Relay(string(nick))
			if desc == nil {
				return nil, fmt.Errorf("unknown node %q", nick)
			}
			conn, err := cli.Connect(desc)
			if err != nil {
				return nil, err
			}
			st.mu.Lock()
			defer st.mu.Unlock()
			if st.conns == nil {
				st.conns = make(map[int]*composeConn)
			}
			id := st.alloc()
			st.conns[id] = &composeConn{node: string(nick), conn: conn, cli: cli}
			return interp.Int(id), nil
		}),
		"spawn": c.Mediate("bento.compose", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("spawn(conn, image, name)")
			}
			cc, err := getConn(args[0])
			if err != nil {
				return nil, err
			}
			image, ok1 := args[1].(interp.Str)
			name, ok2 := args[2].(interp.Str)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("spawn(int, str, str)")
			}
			fn, err := cc.conn.Spawn(ComposedManifest(string(image), string(name)))
			if err != nil {
				return nil, err
			}
			return &interp.List{Elems: []interp.Value{
				interp.Str(fn.InvokeToken()), interp.Str(fn.ShutdownToken()),
			}}, nil
		}),
		"upload": c.Mediate("bento.compose", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("upload(conn, invoke_token, code)")
			}
			cc, err := getConn(args[0])
			if err != nil {
				return nil, err
			}
			tok, ok1 := args[1].(interp.Str)
			code, ok2 := args[2].(interp.Str)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("upload(int, str, str)")
			}
			return interp.None, cc.conn.AttachFunction(string(tok)).Upload(string(code))
		}),
		"invoke": c.Mediate("bento.compose", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 4 {
				return nil, fmt.Errorf("invoke(conn, invoke_token, fn, args)")
			}
			cc, err := getConn(args[0])
			if err != nil {
				return nil, err
			}
			tok, ok1 := args[1].(interp.Str)
			fnName, ok2 := args[2].(interp.Str)
			fargs, ok3 := args[3].(*interp.List)
			if !ok1 || !ok2 || !ok3 {
				return nil, fmt.Errorf("invoke(int, str, str, list)")
			}
			data, _, err := cc.conn.AttachFunction(string(tok)).Invoke(string(fnName), fargs.Elems...)
			if err != nil {
				return nil, err
			}
			return interp.Bytes(data), nil
		}),
		// call invokes a function and returns its *return value* (rather
		// than its api.send output), for control-plane exchanges like
		// load queries.
		"call": c.Mediate("bento.compose", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 4 {
				return nil, fmt.Errorf("call(conn, invoke_token, fn, args)")
			}
			cc, err := getConn(args[0])
			if err != nil {
				return nil, err
			}
			tok, ok1 := args[1].(interp.Str)
			fnName, ok2 := args[2].(interp.Str)
			fargs, ok3 := args[3].(*interp.List)
			if !ok1 || !ok2 || !ok3 {
				return nil, fmt.Errorf("call(int, str, str, list)")
			}
			_, result, err := cc.conn.AttachFunction(string(tok)).Invoke(string(fnName), fargs.Elems...)
			if err != nil {
				return nil, err
			}
			return result, nil
		}),
		// invoke_async runs an invocation on a fresh circuit so multiple
		// outstanding invocations proceed concurrently; poll() collects.
		"invoke_async": c.Mediate("bento.compose", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 4 {
				return nil, fmt.Errorf("invoke_async(conn, invoke_token, fn, args)")
			}
			cc, err := getConn(args[0])
			if err != nil {
				return nil, err
			}
			tok, ok1 := args[1].(interp.Str)
			fnName, ok2 := args[2].(interp.Str)
			fargs, ok3 := args[3].(*interp.List)
			if !ok1 || !ok2 || !ok3 {
				return nil, fmt.Errorf("invoke_async(int, str, str, list)")
			}
			node := st.b.Tor.Consensus().Relay(cc.node)
			if node == nil {
				return nil, fmt.Errorf("node %q vanished from consensus", cc.node)
			}
			ch := make(chan asyncResult, 1)
			st.mu.Lock()
			if st.asyncs == nil {
				st.asyncs = make(map[int]chan asyncResult)
			}
			id := st.alloc()
			st.asyncs[id] = ch
			st.mu.Unlock()
			fargsCopy := append([]interp.Value(nil), fargs.Elems...)
			go func() {
				conn, err := cli.Connect(node)
				if err != nil {
					ch <- asyncResult{err: err}
					return
				}
				defer conn.Close()
				data, _, err := conn.AttachFunction(string(tok)).Invoke(string(fnName), fargsCopy...)
				ch <- asyncResult{data: data, err: err}
			}()
			return interp.Int(id), nil
		}),
		"poll": c.Mediate("bento.compose", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("poll(handle)")
			}
			h, ok := args[0].(interp.Int)
			if !ok {
				return nil, fmt.Errorf("poll handle must be int")
			}
			st.mu.Lock()
			ch := st.asyncs[int(h)]
			st.mu.Unlock()
			if ch == nil {
				return nil, fmt.Errorf("unknown async handle %d", h)
			}
			select {
			case res := <-ch:
				st.mu.Lock()
				delete(st.asyncs, int(h))
				st.mu.Unlock()
				d := interp.NewDict()
				d.Set(interp.Str("done"), interp.Bool(true))
				d.Set(interp.Str("data"), interp.Bytes(res.data))
				if res.err != nil {
					d.Set(interp.Str("error"), interp.Str(res.err.Error()))
				}
				return d, nil
			default:
				return interp.None, nil
			}
		}),
		"shutdown": c.Mediate("bento.compose", func(args []interp.Value) (interp.Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("shutdown(conn, shutdown_token)")
			}
			cc, err := getConn(args[0])
			if err != nil {
				return nil, err
			}
			tok, ok := args[1].(interp.Str)
			if !ok {
				return nil, fmt.Errorf("shutdown token must be str")
			}
			return interp.None, cc.conn.ShutdownByToken(string(tok))
		}),
	})
}

// ComposedManifest is the manifest functions use when spawning helper
// functions on other nodes through the bento composition API.
func ComposedManifest(image, name string) *policy.Manifest {
	return &policy.Manifest{
		Name:  name,
		Image: image,
		Calls: []string{
			"tor.send", "fs.read", "fs.write", "net.dial",
			"stem.create_circuit", "stem.launch_hs", "stem.close_circuit",
			"bento.compose", "clock.now", "clock.sleep",
		},
		Memory:       32 << 20,
		Instructions: 50_000_000,
		Storage:      64 << 20,
	}
}

// zlibDecompressPrefix inflates the zlib stream at the start of payload,
// ignoring trailing padding bytes.
func zlibDecompressPrefix(payload []byte) ([]byte, error) {
	r, err := zlib.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("functions: payload is not a zlib stream: %w", err)
	}
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, 64<<20))
	if err != nil {
		return nil, err
	}
	return out, nil
}

func bytesArg(args []interp.Value, i int, fn string) ([]byte, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("%s: missing argument %d", fn, i)
	}
	switch v := args[i].(type) {
	case interp.Bytes:
		return []byte(v), nil
	case interp.Str:
		return []byte(v), nil
	default:
		return nil, fmt.Errorf("%s: argument %d must be bytes, got %s", fn, i, args[i].Type())
	}
}
