package functions

import (
	"fmt"

	"github.com/bento-nfv/bento/internal/bento"
	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/policy"
)

// DefaultManifest returns a manifest requesting the calls the standard
// function library needs. Callers shrink it to least privilege where
// possible.
func DefaultManifest(name, image string) *policy.Manifest {
	return &policy.Manifest{
		Name:  name,
		Image: image,
		Calls: []string{
			"tor.send", "fs.read", "fs.write", "net.dial",
			"stem.create_circuit", "stem.launch_hs", "stem.close_circuit",
			"bento.compose", "clock.now", "clock.sleep",
		},
		Memory:       32 << 20,
		Instructions: 50_000_000,
		Storage:      64 << 20,
	}
}

// Deploy spawns a container on an established connection and uploads
// source, returning the ready function.
func Deploy(conn *bento.Conn, man *policy.Manifest, source string) (*bento.Function, error) {
	fn, err := conn.Spawn(man)
	if err != nil {
		return nil, fmt.Errorf("functions: spawn %s: %w", man.Name, err)
	}
	if err := fn.Upload(source); err != nil {
		fn.Shutdown()
		return nil, fmt.Errorf("functions: upload %s: %w", man.Name, err)
	}
	return fn, nil
}

// Browse runs the full Browser flow of Figure 1 against a Bento node:
// install the function, invoke it for the URL with the given padding
// target, and return the (compressed, padded) payload.
func Browse(cli *bento.Client, node *dirauth.Descriptor, url string, padding int) ([]byte, error) {
	conn, err := cli.Connect(node)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	man := DefaultManifest("browser", "python")
	man.Calls = []string{"net.dial", "tor.send"} // least privilege
	fn, err := Deploy(conn, man, BrowserSource)
	if err != nil {
		return nil, err
	}
	defer fn.Shutdown()
	out, _, err := fn.Invoke("browser", interp.Str(url), interp.Int(padding))
	return out, err
}

// BrowseSGX is Browse inside the Python-OP-SGX image: the function code
// is sealed to the attested container enclave.
func BrowseSGX(cli *bento.Client, node *dirauth.Descriptor, url string, padding int) ([]byte, error) {
	conn, err := cli.Connect(node)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	man := DefaultManifest("browser", "python-op-sgx")
	man.Calls = []string{"net.dial", "tor.send"}
	fn, err := Deploy(conn, man, BrowserSource)
	if err != nil {
		return nil, err
	}
	defer fn.Shutdown()
	out, _, err := fn.Invoke("browser", interp.Str(url), interp.Int(padding))
	return out, err
}

// UnpadBrowser recovers the page bytes from a Browser response by
// zlib-decompressing the prefix (the padding is appended after the
// compressed stream, which is self-terminating).
func UnpadBrowser(payload []byte) ([]byte, error) {
	return zlibDecompressPrefix(payload)
}
