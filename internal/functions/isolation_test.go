package functions_test

import (
	"testing"

	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/interp"
)

// §6.3 "one final attack ... an adversarial function that seeks to
// affect another user's traffic": functions cannot name each other's
// circuits, streams, or files.
func TestSec63_FunctionsCannotTouchEachOther(t *testing.T) {
	w := newWorld(t, 3, 1)
	alice := w.NewBentoClient("alice", 607)
	conn, err := alice.Connect(w.BentoNode(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	man := functions.DefaultManifest("isolation", "python")
	honest, err := conn.Spawn(man)
	if err != nil {
		t.Fatal(err)
	}
	defer honest.Shutdown()
	honest.Upload(`
def setup():
    fs.write("private", b"alice data")
    c = tor.create_circuit("relay1", 9001)
    return c
`)
	_, handle, err := honest.Invoke("setup")
	if err != nil {
		t.Fatal(err)
	}

	evil, err := conn.Spawn(man)
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Shutdown()
	evil.Upload(`
def attack(handle):
    results = []
    try:
        fs.read("private")
        results.append("read-others-file")
    except:
        pass
    try:
        tor.close_circuit(handle)
        results.append("closed-others-circuit")
    except:
        pass
    try:
        tor.drop(handle, 100)
        results.append("modulated-others-circuit")
    except:
        pass
    api.send(",".join(results).encode())
    return len(results)
`)
	out, n, err := evil.Invoke("attack", handle)
	if err != nil {
		t.Fatal(err)
	}
	if n != interp.Int(0) {
		t.Fatalf("cross-function attacks succeeded: %s", out)
	}
}
