package functions_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/hs"
	"github.com/bento-nfv/bento/internal/interp"
)

// TestLoadBalancerSurvivesReplicaFailure injects a replica-node failure
// mid-run: the balancer must evict the dead replica and keep serving
// clients from a fresh one (the try/except hardening in
// LoadBalancerSource).
func TestLoadBalancerSurvivesReplicaFailure(t *testing.T) {
	w := newWorld(t, 7, 3) // node0 = front, nodes 1-2 = replica hosts
	clock := w.Clock()

	ident, err := hs.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	identBlob, _ := ident.Marshal()
	content := make([]byte, 64*1024)

	owner := w.NewBentoClient("owner", 50)
	conn, err := owner.Connect(w.BentoNode(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	lb, err := functions.Deploy(conn, functions.DefaultManifest("lb", "python"), functions.LoadBalancerSource)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Shutdown()

	nodes := &interp.List{Elems: []interp.Value{
		interp.Str(w.BentoNode(1).Nickname),
		interp.Str(w.BentoNode(2).Nickname),
	}}
	runDone := make(chan error, 1)
	go func() {
		_, err := lb.InvokeStream("run", []interp.Value{
			interp.Bytes(identBlob), interp.Bytes(content), nodes,
			interp.Str(functions.ReplicaSource),
			interp.Int(1),                         // watermark 1: each client spawns/occupies a replica
			interp.Int(2), interp.Int(20_000_000), // long-lived at the fast clock scale
		}, nil)
		runDone <- err
	}()

	// Wait for the descriptor.
	probe := w.NewTorClient("probe", 51)
	for i := 0; ; i++ {
		if _, err := hs.FetchDescriptor(probe.Host(), probe.Consensus(), ident.ServiceID()); err == nil {
			break
		}
		if i > 200 {
			t.Fatal("descriptor never published")
		}
		clock.Sleep(300 * time.Millisecond)
	}

	download := func(name string, seed int64) error {
		cli := w.NewTorClient(name, seed)
		c, err := hs.Dial(cli, ident.ServiceID())
		if err != nil {
			return fmt.Errorf("%s dial: %w", name, err)
		}
		defer c.Close()
		n, err := io.Copy(io.Discard, c)
		if err != nil {
			return fmt.Errorf("%s read: %w", name, err)
		}
		if int(n) != len(content) {
			return fmt.Errorf("%s got %d bytes, want %d", name, n, len(content))
		}
		return nil
	}

	// Client 1 is served by the first replica (on node 1).
	if err := download("client1", 52); err != nil {
		t.Fatal(err)
	}

	// Inject the failure: node 1's Bento server dies, killing its
	// replica function and the front's connection to it.
	w.Servers[1].Close()

	// Subsequent clients must still be served (replica on node 2).
	for i := 2; i <= 3; i++ {
		if err := download(fmt.Sprintf("client%d", i), int64(52+i)); err != nil {
			t.Fatalf("after replica failure: %v", err)
		}
	}

	select {
	case err := <-runDone:
		// The balancer may legitimately still be running; an early exit
		// must at least not be an error.
		if err != nil {
			t.Fatalf("LoadBalancer died: %v", err)
		}
	default:
	}
}

// TestCircuitSurvivesMidStreamRelayCrash kills a middle relay while a
// stream is active: the client must observe a clean error, not a hang.
func TestCircuitSurvivesMidStreamRelayCrash(t *testing.T) {
	w := newWorld(t, 5, 1)
	cli := w.NewBentoClient("alice", 60)

	// Build a circuit through relays 1,2,3 to a destination echo on the
	// web host (use the Bento server itself as the destination service).
	conn, err := cli.Connect(w.BentoNode(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := functions.Deploy(conn, functions.DefaultManifest("echo", "python"), functions.EchoSource)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()

	// Find a middle relay of the connection's circuit and kill it.
	// (Connect's path ends at the Bento node; earlier hops are fair
	// game.) We can't see the path directly, so kill all non-Bento
	// relays' OR listeners — brutal, but the observable contract is the
	// same: pending operations fail rather than hang.
	for i, r := range w.Relays {
		if i == 0 {
			continue // keep the Bento node itself
		}
		r.Crash()
	}
	errCh := make(chan error, 1)
	go func() {
		_, _, err := fn.Invoke("echo", interp.Bytes("after crash"))
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("invoke succeeded across a destroyed circuit")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("invoke hung after relay crash")
	}
}
