package functions_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/hs"
	"github.com/bento-nfv/bento/internal/interp"
	"github.com/bento-nfv/bento/internal/testbed"
	"github.com/bento-nfv/bento/internal/webfarm"
)

func newWorld(t *testing.T, relays, bentoNodes int, sites ...*webfarm.Site) *testbed.World {
	t.Helper()
	w, err := testbed.New(testbed.Config{
		Relays:     relays,
		BentoNodes: bentoNodes,
		Sites:      sites,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestBrowserFunction(t *testing.T) {
	site := webfarm.NamedSite("news.web", 8000, []int{12000, 5000})
	w := newWorld(t, 5, 1, site)
	cli := w.NewBentoClient("alice", 1)

	const padding = 64 * 1024
	payload, err := functions.Browse(cli, w.BentoNode(0), "news.web", padding)
	if err != nil {
		t.Fatalf("Browse: %v", err)
	}
	if len(payload)%padding != 0 {
		t.Fatalf("payload %d bytes not a multiple of padding %d", len(payload), padding)
	}
	page, err := functions.UnpadBrowser(payload)
	if err != nil {
		t.Fatalf("UnpadBrowser: %v", err)
	}
	if len(page) != site.TotalSize() {
		t.Fatalf("page %d bytes, want %d", len(page), site.TotalSize())
	}
	// The delivered page matches a direct fetch.
	direct, err := webfarm.FetchPage(w.Net.Host("news.web").Dial, "news.web")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, direct) {
		t.Fatal("Browser-delivered page differs from direct fetch")
	}
}

func TestBrowserSGX(t *testing.T) {
	site := webfarm.NamedSite("bank.web", 4000, []int{3000})
	w := newWorld(t, 5, 1, site)
	cli := w.NewBentoClient("alice", 2)
	payload, err := functions.BrowseSGX(cli, w.BentoNode(0), "bank.web", 32*1024)
	if err != nil {
		t.Fatalf("BrowseSGX: %v", err)
	}
	page, err := functions.UnpadBrowser(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != site.TotalSize() {
		t.Fatalf("page %d bytes, want %d", len(page), site.TotalSize())
	}
}

func TestBrowserRespectsExitPolicyFilter(t *testing.T) {
	// A site that exists but is not reachable because no relay has it
	// in its exit policy is not the case here (accept *:*), so instead
	// verify unknown hosts error cleanly through the function.
	w := newWorld(t, 4, 1)
	cli := w.NewBentoClient("alice", 3)
	if _, err := functions.Browse(cli, w.BentoNode(0), "no-such-site.web", 1024); err == nil {
		t.Fatal("browse to unreachable site succeeded")
	}
}

func TestDropboxPutGet(t *testing.T) {
	w := newWorld(t, 4, 1)
	cli := w.NewBentoClient("alice", 4)
	conn, err := cli.Connect(w.BentoNode(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	man := functions.DefaultManifest("dropbox", "python")
	man.Calls = []string{"fs.read", "fs.write", "tor.send"}
	fn, err := functions.Deploy(conn, man, functions.DropboxSource)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()

	data := bytes.Repeat([]byte("drop "), 2000)
	if _, _, err := fn.Invoke("put", interp.Bytes(data)); err != nil {
		t.Fatalf("put: %v", err)
	}
	// Another user holding only the invocation token can fetch.
	bob := w.NewBentoClient("bob", 5)
	bconn, err := bob.Connect(w.BentoNode(0))
	if err != nil {
		t.Fatal(err)
	}
	defer bconn.Close()
	out, _, err := bconn.AttachFunction(fn.InvokeToken()).Invoke("get")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("dropbox round trip mismatch")
	}
}

func TestDropboxGetLimit(t *testing.T) {
	w := newWorld(t, 4, 1)
	cli := w.NewBentoClient("alice", 6)
	conn, err := cli.Connect(w.BentoNode(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	man := functions.DefaultManifest("dropbox", "python")
	fn, err := functions.Deploy(conn, man, functions.DropboxSource)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	fn.Invoke("put", interp.Bytes([]byte("x")))
	for i := 0; i < 16; i++ {
		if _, res, err := fn.Invoke("get"); err != nil || res != interp.Bool(true) {
			t.Fatalf("get %d failed: %v %v", i, res, err)
		}
	}
	if _, res, _ := fn.Invoke("get"); res != interp.Bool(false) {
		t.Fatalf("17th get returned %v, want False (bandwidth cap, §9.2)", res)
	}
}

func TestCoverFunctionStreams(t *testing.T) {
	w := newWorld(t, 4, 1)
	cli := w.NewBentoClient("alice", 7)
	conn, err := cli.Connect(w.BentoNode(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	man := functions.DefaultManifest("cover", "python")
	fn, err := functions.Deploy(conn, man, functions.CoverSource)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()

	var chunks int
	var total int
	result, err := fn.InvokeStream("cover",
		[]interp.Value{interp.Int(10000), interp.Int(100), interp.Int(498)},
		func(p []byte) {
			chunks++
			total += len(p)
		})
	if err != nil {
		t.Fatalf("cover: %v", err)
	}
	// Iteration cost includes real CPU time amplified by the clock scale,
	// so assert a loose lower bound; rate fidelity is measured in the WF
	// experiments at a gentler scale.
	if chunks < 4 {
		t.Fatalf("only %d cover bursts in 10s at 100ms intervals", chunks)
	}
	if sent, ok := result.(interp.Int); !ok || int(sent) != total {
		t.Fatalf("reported %v bytes, tapped %d", result, total)
	}
}

func TestCoverCircuitDrops(t *testing.T) {
	w := newWorld(t, 4, 1)
	cli := w.NewBentoClient("alice", 8)
	conn, err := cli.Connect(w.BentoNode(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := functions.Deploy(conn, functions.DefaultManifest("cover", "python"), functions.CoverSource)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()
	_, cells, err := fn.Invoke("cover_circuit",
		interp.Str("relay3"), interp.Int(9001),
		interp.Int(10000), interp.Int(100), interp.Int(400))
	if err != nil {
		t.Fatalf("cover_circuit: %v", err)
	}
	if n, ok := cells.(interp.Int); !ok || n < 2 {
		t.Fatalf("sent %v drop cells, want ≥2", cells)
	}
}

func TestComposeBrowserDropbox(t *testing.T) {
	// Figure 2: Browser delivers to a Dropbox on a second node; the
	// client fetches later.
	site := webfarm.NamedSite("paper.web", 6000, []int{9000})
	w := newWorld(t, 6, 2, site)
	cli := w.NewBentoClient("alice", 9)

	conn, err := cli.Connect(w.BentoNode(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := functions.Deploy(conn, functions.DefaultManifest("browser+dropbox", "python"), functions.BrowserDropboxSource)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()

	dropNode := w.BentoNode(1).Nickname
	out, _, err := fn.Invoke("browse_to_dropbox",
		interp.Str("paper.web"), interp.Int(32*1024),
		interp.Str(dropNode), interp.Str(functions.DropboxSource))
	if err != nil {
		t.Fatalf("browse_to_dropbox: %v", err)
	}
	parts := strings.Split(string(out), ":")
	if len(parts) != 3 || parts[0] != dropNode {
		t.Fatalf("capability blob %q malformed", out)
	}

	// Alice was "offline"; now she fetches from the Dropbox directly.
	dconn, err := cli.Connect(w.Consensus.Relay(parts[0]))
	if err != nil {
		t.Fatal(err)
	}
	defer dconn.Close()
	payload, _, err := dconn.AttachFunction(parts[1]).Invoke("get")
	if err != nil {
		t.Fatalf("dropbox get: %v", err)
	}
	page, err := functions.UnpadBrowser(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != site.TotalSize() {
		t.Fatalf("page %d bytes, want %d", len(page), site.TotalSize())
	}
}

func TestShardAcrossNodes(t *testing.T) {
	w := newWorld(t, 6, 2)
	cli := w.NewBentoClient("alice", 10)
	conn, err := cli.Connect(w.BentoNode(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := functions.Deploy(conn, functions.DefaultManifest("shard", "python"), functions.ShardSource)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()

	data := bytes.Repeat([]byte("shard payload "), 500)
	nodes := &interp.List{}
	for _, d := range cli.Nodes() {
		nodes.Elems = append(nodes.Elems, interp.Str(d.Nickname))
	}
	locBlob, _, err := fn.Invoke("shard",
		interp.Bytes(data), interp.Int(2), interp.Int(4),
		nodes, interp.Str(functions.DropboxSource))
	if err != nil {
		t.Fatalf("shard: %v", err)
	}
	if n := strings.Count(string(locBlob), "|"); n != 3 {
		t.Fatalf("expected 4 locations, got %q", locBlob)
	}

	// Reassemble from any k=2 locations (drop the first two).
	locs := strings.Split(string(locBlob), "|")
	partial := strings.Join(locs[2:], "|")
	got, _, err := fn.Invoke("fetch", interp.Bytes(partial), interp.Int(2))
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("sharded data reconstruction mismatch")
	}
}

func TestReplicaServesRendezvous(t *testing.T) {
	// A replica holding a copied identity answers a rendezvous on the
	// original service's behalf — the §8 mechanism in isolation.
	w := newWorld(t, 6, 2)

	// Front: launch the HS with queued introductions via a function.
	frontCli := w.NewBentoClient("front-owner", 11)
	fconn, err := frontCli.Connect(w.BentoNode(0))
	if err != nil {
		t.Fatal(err)
	}
	defer fconn.Close()
	front, err := functions.Deploy(fconn, functions.DefaultManifest("front", "python"), `
def setup():
    identity = stem.new_identity()
    fs.write("identity", identity)
    h = stem.launch_hs(identity)
    fs.write("hs_handle", str(h).encode())
    api.send(identity)
    return stem.service_id(identity)

def next_intro():
    h = int(fs.read("hs_handle").decode())
    intro = stem.next_intro(h)
    if intro == None:
        return False
    api.send(intro)
    return True
`)
	if err != nil {
		t.Fatal(err)
	}
	defer front.Shutdown()
	identityBlob, sid, err := front.Invoke("setup")
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	serviceID, ok := sid.(interp.Str)
	if !ok {
		t.Fatalf("service id %v", sid)
	}

	// Replica on the second Bento node, initialized with the identity.
	rconn, err := frontCli.Connect(w.BentoNode(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rconn.Close()
	replica, err := functions.Deploy(rconn, functions.DefaultManifest("replica", "python"), functions.ReplicaSource)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Shutdown()
	content := bytes.Repeat([]byte("replica content "), 100)
	if _, _, err := replica.Invoke("init", interp.Bytes(identityBlob), interp.Bytes(content)); err != nil {
		t.Fatalf("replica init: %v", err)
	}

	// A client connects to the service; the front forwards the intro to
	// the replica, which completes the rendezvous.
	clientTor := w.NewTorClient("visitor", 12)
	type dialResult struct {
		data []byte
		err  error
	}
	dialDone := make(chan dialResult, 1)
	go func() {
		conn, err := hs.Dial(clientTor, string(serviceID))
		if err != nil {
			dialDone <- dialResult{err: err}
			return
		}
		defer conn.Close()
		buf := make([]byte, len(content))
		n, _ := conn.Read(buf)
		rest := buf[n:]
		for len(rest) > 0 {
			m, err := conn.Read(rest)
			if m == 0 || err != nil {
				break
			}
			rest = rest[m:]
		}
		dialDone <- dialResult{data: buf[:len(buf)-len(rest)]}
	}()

	// Pump introductions from the front to the replica.
	deadline := time.After(20 * time.Second)
	for {
		introOut, got, err := front.Invoke("next_intro")
		if err != nil {
			t.Fatalf("next_intro: %v", err)
		}
		if got == interp.Bool(true) {
			if _, _, err := replica.Invoke("serve", interp.Bytes(introOut)); err != nil {
				t.Fatalf("replica serve: %v", err)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("introduction never arrived at the front")
		case <-time.After(10 * time.Millisecond):
		}
	}

	select {
	case res := <-dialDone:
		if res.err != nil {
			t.Fatalf("client dial: %v", res.err)
		}
		if !bytes.Equal(res.data, content) {
			t.Fatalf("client received %d bytes, want %d", len(res.data), len(content))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("client download never completed")
	}
}

func TestComposedManifestWithinDefaultPolicy(t *testing.T) {
	man := functions.ComposedManifest("python", "x")
	w := newWorld(t, 3, 1)
	cli := w.NewBentoClient("alice", 13)
	conn, err := cli.Connect(w.BentoNode(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := conn.Spawn(man)
	if err != nil {
		t.Fatalf("composed manifest rejected by default policy: %v", err)
	}
	fn.Shutdown()
}

func TestDropboxExpiry(t *testing.T) {
	// This test races real RPC latency against a virtual TTL: at the
	// default 2000x clock scale the 2000ms TTL is only 1ms of wall time
	// between the put_ttl and get executions, which loses whenever a
	// token-bucket or delivery sleep (~1ms timer granularity) lands on
	// one of the legs in between. Run it at a gentler scale so the TTL
	// budget is 20ms of wall time and the test is deterministic.
	w, err := testbed.New(testbed.Config{
		Relays:     4,
		BentoNodes: 1,
		ClockScale: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	cli := w.NewBentoClient("alice", 14)
	conn, err := cli.Connect(w.BentoNode(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fn, err := functions.Deploy(conn, functions.DefaultManifest("dropbox", "python"), functions.DropboxSource)
	if err != nil {
		t.Fatal(err)
	}
	defer fn.Shutdown()

	if _, _, err := fn.Invoke("put_ttl", interp.Bytes("ephemeral"), interp.Int(2000)); err != nil {
		t.Fatalf("put_ttl: %v", err)
	}
	// Within the TTL the file is retrievable.
	out, res, err := fn.Invoke("get")
	if err != nil || res != interp.Bool(true) || string(out) != "ephemeral" {
		t.Fatalf("get before expiry: %q %v %v", out, res, err)
	}
	// After the TTL the file is wiped on access.
	w.Clock().Sleep(3 * time.Second)
	if _, res, _ := fn.Invoke("get"); res != interp.Bool(false) {
		t.Fatalf("get after expiry returned %v, want False", res)
	}
	// The file really is gone (no resurrected reads).
	if _, _, err := fn.Invoke("get_named", interp.Str("nope")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

// TestAllSourcesParse is a regression net for typos in the embedded
// bscript function sources.
func TestAllSourcesParse(t *testing.T) {
	sources := map[string]string{
		"Browser":          functions.BrowserSource,
		"BrowserDropbox":   functions.BrowserDropboxSource,
		"Dropbox":          functions.DropboxSource,
		"Cover":            functions.CoverSource,
		"Shard":            functions.ShardSource,
		"Replica":          functions.ReplicaSource,
		"LoadBalancer":     functions.LoadBalancerSource,
		"SingleServer":     functions.SingleServerSource,
		"Echo":             functions.EchoSource,
		"MultipathFetcher": functions.MultipathFetcherSource,
	}
	for name, src := range sources {
		m := interp.NewMachine(interp.Limits{})
		if err := m.Run(src); err != nil {
			t.Errorf("%s source does not load: %v", name, err)
		}
	}
}
