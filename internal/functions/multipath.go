package functions

import (
	"fmt"
	"sync"

	"github.com/bento-nfv/bento/internal/bento"
	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/interp"
)

// Multipath downloads (§9.4, "Multipath routing"): rather than modifying
// Tor to stripe one stream across circuits, the same effect is built from
// Bento functions — fetcher functions on several middlebox nodes each
// return a distinct byte range of the resource, and the client downloads
// the slices over disjoint circuits concurrently, aggregating bandwidth
// across paths.

// MultipathFetcherSource is the per-node slice fetcher.
const MultipathFetcherSource = `
def fetch_slice(url, index, total):
    body = requests.get(url)
    n = len(body)
    lo = n * index // total
    hi = n * (index + 1) // total
    api.send(body[lo:hi])
    return n
`

// MultipathResult reports a multipath download.
type MultipathResult struct {
	Data  []byte
	Paths int
	// PerPath holds each slice's byte count, for diagnostics.
	PerPath []int
}

// MultipathFetch downloads url through `paths` concurrent fetcher
// functions spread round-robin across the given Bento nodes. Each path
// uses its own circuit, so slices ride disjoint (up to path-selection
// randomness) routes.
func MultipathFetch(cli *bento.Client, nodes []*dirauth.Descriptor, url string, paths int) (*MultipathResult, error) {
	if paths < 1 {
		return nil, fmt.Errorf("functions: need at least one path")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("functions: no Bento nodes provided")
	}

	type sliceResult struct {
		index int
		data  []byte
		total int
		err   error
	}
	results := make([]sliceResult, paths)
	var wg sync.WaitGroup
	for i := 0; i < paths; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := nodes[i%len(nodes)]
			conn, err := cli.Connect(node)
			if err != nil {
				results[i] = sliceResult{index: i, err: err}
				return
			}
			defer conn.Close()
			man := DefaultManifest("multipath-fetcher", "python")
			man.Calls = []string{"net.dial", "tor.send"}
			fn, err := Deploy(conn, man, MultipathFetcherSource)
			if err != nil {
				results[i] = sliceResult{index: i, err: err}
				return
			}
			defer fn.Shutdown()
			data, totalVal, err := fn.Invoke("fetch_slice",
				interp.Str(url), interp.Int(i), interp.Int(paths))
			if err != nil {
				results[i] = sliceResult{index: i, err: err}
				return
			}
			total, _ := totalVal.(interp.Int)
			results[i] = sliceResult{index: i, data: data, total: int(total)}
		}(i)
	}
	wg.Wait()

	out := &MultipathResult{Paths: paths}
	total := -1
	for _, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("functions: path %d: %w", r.index, r.err)
		}
		if total == -1 {
			total = r.total
		} else if total != r.total {
			return nil, fmt.Errorf("functions: paths disagree on resource size (%d vs %d)", total, r.total)
		}
		out.Data = append(out.Data, r.data...)
		out.PerPath = append(out.PerPath, len(r.data))
	}
	if len(out.Data) != total {
		return nil, fmt.Errorf("functions: reassembled %d bytes, expected %d", len(out.Data), total)
	}
	return out, nil
}
