package functions

// bscript source for the paper's functions. BrowserSource is a near
// line-for-line transliteration of Appendix A; the others follow the
// behavior described in §8 and §9.

// BrowserSource fetches a URL at the exit, compresses it, pads it to a
// multiple of `padding` bytes, and streams it back (§7, Appendix A).
const BrowserSource = `
def browser(url, padding):
    # Fetch contents of site
    body = requests.get(url)

    # Compress contents
    compressed = zlib.compress(body)

    # Pad to nearest multiple of 'padding'
    final = compressed
    if padding > 0:
        if padding - len(final) > 0:
            final = final + os.urandom(padding - len(final))
        else:
            final = final + os.urandom(padding - (len(final) % padding))

    api.send(final)
    return len(final)
`

// BrowserDropboxSource composes Browser with Dropbox (§3, Figure 2): the
// page is delivered to a Dropbox on another node instead of the client,
// who can fetch it later — appearing offline during the download.
const BrowserDropboxSource = `
def browse_to_dropbox(url, padding, node, dropbox_code):
    body = requests.get(url)
    compressed = zlib.compress(body)
    final = compressed
    if padding > 0:
        if padding - len(final) > 0:
            final = final + os.urandom(padding - len(final))
        else:
            final = final + os.urandom(padding - (len(final) % padding))

    # Install Dropbox on the chosen node and put the result there.
    conn = bento.connect(node)
    toks = bento.spawn(conn, "python", "dropbox")
    bento.upload(conn, toks[0], dropbox_code)
    bento.invoke(conn, toks[0], "put", [final])

    # Hand the capability back: [node, invoke_token, shutdown_token].
    api.send((node + ":" + toks[0] + ":" + toks[1]).encode())
    return len(final)
`

// DropboxSource is the ephemeral in-network file store (§9.2): put/get
// under the container's chrooted (and, in a conclave, encrypted)
// filesystem, with a bounded number of gets before self-destruction.
const DropboxSource = `
max_gets = 16
gets = 0
expires_ms = 0

def put(data):
    fs.write("box", data)
    return True

def put_ttl(data, ttl_ms):
    # Store with an expiry; after it passes, the file is wiped on the
    # next access (§9.2: "...or expiry time, after which the function
    # deletes the file").
    fs.write("box", data)
    expires_ms = clock.now_ms() + ttl_ms
    return True

def expired():
    if expires_ms > 0 and clock.now_ms() > expires_ms:
        return True
    return False

def put_named(name, data):
    fs.write("box-" + name, data)
    return True

def get():
    if expired():
        wipe()
        return False
    gets += 1
    if gets > max_gets:
        return False
    api.send(fs.read("box"))
    return True

def get_named(name):
    gets += 1
    if gets > max_gets:
        return False
    api.send(fs.read("box-" + name))
    return True

def wipe():
    for name in fs.list():
        fs.remove(name)
    return True
`

// CoverSource generates cover traffic (§9.1): it streams fixed-rate junk
// back to the client for a duration, so the circuit transmits at a
// constant rate regardless of real activity.
const CoverSource = `
def cover(duration_ms, interval_ms, burst):
    start = clock.now_ms()
    sent = 0
    while clock.now_ms() - start < duration_ms:
        api.send(os.urandom(burst))
        sent += burst
        clock.sleep_ms(interval_ms)
    return sent

def cover_circuit(dest, port, duration_ms, interval_ms, burst):
    # Long-range padding (DROP cells) on a dedicated circuit.
    c = tor.create_circuit(dest, port)
    start = clock.now_ms()
    cells = 0
    while clock.now_ms() - start < duration_ms:
        tor.drop(c, burst)
        cells += 1
        clock.sleep_ms(interval_ms)
    tor.close_circuit(c)
    return cells
`

// ShardSource spreads a file across Dropboxes on multiple nodes using
// k-of-N erasure coding (§9.3) and reassembles it from any k locations.
const ShardSource = `
def shard(data, k, n, nodes, dropbox_code):
    shards = erasure.encode(data, k, n)
    locations = []
    i = 0
    for s in shards:
        node = nodes[i % len(nodes)]
        conn = bento.connect(node)
        toks = bento.spawn(conn, "python", "dropbox-shard")
        bento.upload(conn, toks[0], dropbox_code)
        bento.invoke(conn, toks[0], "put", [s])
        locations.append(node + ":" + toks[0])
        i += 1
    api.send("|".join(locations).encode())
    return len(locations)

def fetch(locations_blob, k):
    locations = locations_blob.decode().split("|")
    shards = []
    for loc in locations:
        if len(shards) >= k:
            break
        parts = loc.split(":")
        conn = bento.connect(parts[0])
        piece = bento.invoke(conn, parts[1], "get", [])
        if len(piece) > 0:
            shards.append(piece)
    data = erasure.decode(shards)
    api.send(data)
    return len(data)
`

// ReplicaSource runs on nodes the LoadBalancer scales onto: it receives a
// copy of the service identity and content, then answers rendezvous
// requests on the service's behalf (§8.2).
const ReplicaSource = `
def init(identity, data):
    fs.write("identity", identity)
    fs.write("content", data)
    return True

def serve(intro):
    # Transfers proceed asynchronously; load() reports them.
    stem.respond_rendezvous_file(fs.read("identity"), intro, "content")
    return True

def load():
    return stem.active_transfers()
`

// LoadBalancerSource is the §8 hidden-service load balancer: it owns the
// service's introduction points, assigns each incoming client to the
// least-loaded replica, and spins replicas up (to a cap) when all are at
// the high watermark.
const LoadBalancerSource = `
def spawn_replica(node, replica_code, identity, content):
    conn = bento.connect(node)
    toks = bento.spawn(conn, "python", "hs-replica")
    bento.upload(conn, toks[0], replica_code)
    bento.call(conn, toks[0], "init", [identity, content])
    return {"conn": conn, "tok": toks[0], "node": node}

def run(identity, content, nodes, replica_code, max_per_replica, max_replicas, duration_ms):
    h = stem.launch_hs(identity)
    replicas = []
    spawned = 0
    next_node = 0
    start = clock.now_ms()
    while clock.now_ms() - start < duration_ms:
        intro = stem.next_intro(h)
        if intro == None:
            clock.sleep_ms(20)
            continue

        # Poll replica load reports and pick the least-loaded (§8.2).
        # Replicas that stop answering are evicted and later replaced.
        best = None
        best_load = 0
        healthy = []
        for r in replicas:
            try:
                l = bento.call(r["conn"], r["tok"], "load", [])
            except:
                continue
            healthy.append(r)
            if best == None or l < best_load:
                best = r
                best_load = l
        replicas = healthy

        # High watermark: scale up when everyone is at capacity.
        if (best == None or best_load >= max_per_replica) and len(replicas) < max_replicas:
            try:
                r = spawn_replica(nodes[next_node % len(nodes)], replica_code, identity, content)
                next_node += 1
                replicas.append(r)
                if spawned < len(replicas):
                    spawned = len(replicas)
                best = r
            except:
                next_node += 1

        if best == None:
            continue
        try:
            bento.call(best["conn"], best["tok"], "serve", [intro])
        except:
            pass
    return spawned
`

// SingleServerSource is the Figure 5 baseline: one hidden service
// instance serving the content itself, no balancing.
const SingleServerSource = `
def run(identity, content, duration_ms):
    fs.write("content", content)
    h = stem.launch_hs_file(identity, "content")
    clock.sleep_ms(duration_ms)
    return h
`

// EchoSource is the quickstart demo function.
const EchoSource = `
def echo(data):
    api.send(b"echo:" + bytes(data))
    return len(data)
`
