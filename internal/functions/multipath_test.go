package functions_test

import (
	"bytes"
	"testing"

	"github.com/bento-nfv/bento/internal/functions"
	"github.com/bento-nfv/bento/internal/webfarm"
)

func TestMultipathFetchCorrectness(t *testing.T) {
	site := webfarm.NamedSite("bulk.web", 10_000, []int{60_000, 40_000})
	w := newWorld(t, 7, 3, site)
	cli := w.NewBentoClient("alice", 40)

	res, err := functions.MultipathFetch(cli, cli.Nodes(), "bulk.web", 3)
	if err != nil {
		t.Fatalf("MultipathFetch: %v", err)
	}
	direct, err := webfarm.FetchPage(w.Net.Host("bulk.web").Dial, "bulk.web")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, direct) {
		t.Fatalf("reassembled page differs from direct fetch (%d vs %d bytes)",
			len(res.Data), len(direct))
	}
	if len(res.PerPath) != 3 {
		t.Fatalf("got %d slices", len(res.PerPath))
	}
	// Slices partition the page (each roughly a third).
	for i, n := range res.PerPath {
		if n < len(direct)/4 || n > len(direct)/2 {
			t.Errorf("slice %d has %d bytes of %d total", i, n, len(direct))
		}
	}
}

func TestMultipathSinglePathDegenerate(t *testing.T) {
	site := webfarm.NamedSite("solo.web", 5_000, []int{10_000})
	w := newWorld(t, 5, 1, site)
	cli := w.NewBentoClient("alice", 41)
	res, err := functions.MultipathFetch(cli, cli.Nodes(), "solo.web", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != site.TotalSize() {
		t.Fatalf("got %d bytes, want %d", len(res.Data), site.TotalSize())
	}
}

func TestMultipathValidation(t *testing.T) {
	w := newWorld(t, 4, 1)
	cli := w.NewBentoClient("alice", 42)
	if _, err := functions.MultipathFetch(cli, cli.Nodes(), "x.web", 0); err == nil {
		t.Fatal("zero paths accepted")
	}
	if _, err := functions.MultipathFetch(cli, nil, "x.web", 2); err == nil {
		t.Fatal("no nodes accepted")
	}
	if _, err := functions.MultipathFetch(cli, cli.Nodes(), "nonexistent.web", 2); err == nil {
		t.Fatal("unreachable site fetch succeeded")
	}
}
