// Package wire provides length-prefixed JSON message framing used by the
// directory protocol and the Bento client/server protocol.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxMessage bounds a single framed message.
const MaxMessage = 64 << 20

// WriteJSON frames and writes v as JSON.
func WriteJSON(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxMessage {
		return fmt.Errorf("wire: message too large (%d bytes)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadJSON reads one framed message into v. It allocates a fresh body
// buffer per call; loops that read many messages from one connection
// should use a Decoder, which reuses its buffer across frames.
func ReadJSON(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessage {
		return fmt.Errorf("wire: oversized frame (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// Decoder reads framed JSON messages from one reader, reusing a single
// body buffer across frames. Intended for persistent-connection serve
// loops, where per-frame allocation is pure garbage: the buffer grows to
// the largest frame seen and stays there.
//
// A Decoder is not safe for concurrent use; json.Unmarshal copies every
// byte it keeps, so the buffer's contents may be overwritten by the next
// Decode without invalidating previously decoded values.
type Decoder struct {
	r   io.Reader
	buf []byte
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Decode reads the next framed message into v.
func (d *Decoder) Decode(v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessage {
		return fmt.Errorf("wire: oversized frame (%d bytes)", n)
	}
	if uint32(cap(d.buf)) < n {
		d.buf = make([]byte, n)
	}
	body := d.buf[:n]
	if _, err := io.ReadFull(d.r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}
