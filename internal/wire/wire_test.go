package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

type msg struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	Blob  []byte `json:"blob,omitempty"`
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := msg{Name: "hello", Count: 42, Blob: []byte{1, 2, 3}}
	if err := WriteJSON(&buf, &want); err != nil {
		t.Fatal(err)
	}
	var got msg
	if err := ReadJSON(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || got.Count != want.Count || !bytes.Equal(got.Blob, want.Blob) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestMultipleFrames(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteJSON(&buf, &msg{Count: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		var got msg
		if err := ReadJSON(&buf, &got); err != nil {
			t.Fatal(err)
		}
		if got.Count != i {
			t.Fatalf("frame %d: got %d", i, got.Count)
		}
	}
	var extra msg
	if err := ReadJSON(&buf, &extra); err == nil {
		t.Fatal("read past last frame succeeded")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxMessage+1)
	buf.Write(hdr[:])
	var got msg
	if err := ReadJSON(&buf, &got); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	WriteJSON(&buf, &msg{Name: "x"})
	data := buf.Bytes()
	short := bytes.NewReader(data[:len(data)-2])
	var got msg
	if err := ReadJSON(short, &got); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestGarbageBody(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("not json at all")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	var got msg
	if err := ReadJSON(&buf, &got); err == nil {
		t.Fatal("garbage body accepted")
	}
}

func TestUnmarshalableValueRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, func() {}); err == nil {
		t.Fatal("function value marshaled")
	}
}

func TestDecoderReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	big := bytes.Repeat([]byte{7}, 4096)
	for i := 0; i < 8; i++ {
		blob := big
		if i%2 == 1 {
			blob = []byte{byte(i)} // shrinking frames must not shrink the buffer
		}
		if err := WriteJSON(&buf, &msg{Count: i, Blob: blob}); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	var first msg
	if err := dec.Decode(&first); err != nil {
		t.Fatal(err)
	}
	grown := cap(dec.buf)
	if grown == 0 {
		t.Fatal("decoder did not retain its buffer")
	}
	// Decoded values must survive later frames overwriting the buffer.
	for i := 1; i < 8; i++ {
		var got msg
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Count != i {
			t.Fatalf("frame %d: got count %d", i, got.Count)
		}
	}
	if cap(dec.buf) != grown {
		t.Fatalf("buffer reallocated: cap %d -> %d", grown, cap(dec.buf))
	}
	if !bytes.Equal(first.Blob, big) {
		t.Fatal("earlier decoded value corrupted by buffer reuse")
	}
}

func TestDecoderOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxMessage+1)
	buf.Write(hdr[:])
	var got msg
	if err := NewDecoder(&buf).Decode(&got); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// Property: any blob survives framing.
func TestFramingProperty(t *testing.T) {
	check := func(name string, blob []byte) bool {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, &msg{Name: name, Blob: blob}); err != nil {
			return false
		}
		var got msg
		if err := ReadJSON(&buf, &got); err != nil {
			return false
		}
		return got.Name == name && bytes.Equal(got.Blob, blob)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
