// Package fountain implements the k-of-N linear erasure coding behind the
// Shard function (§9.3): a file is split into k source blocks and encoded
// into N coded shards over GF(256) such that any k shards reconstruct the
// file ("digital fountain approach ... standard linear encoding
// techniques").
package fountain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// GF(256) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11B),
// using log/exp tables built at init.
var (
	gfExp [512]byte
	gfLog [256]int
)

func init() {
	// 3 generates the multiplicative group under 0x11B (2 does not: its
	// order is only 51), so step by multiplying by 3: x = x ^ (x<<1).
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x ^= x << 1
		if x&0x100 != 0 {
			x ^= 0x11B
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

func gfInv(a byte) byte {
	if a == 0 {
		panic("fountain: inverse of zero")
	}
	return gfExp[255-gfLog[a]]
}

// Shard is one coded piece of a file.
type Shard struct {
	// K is the number of shards needed to reconstruct.
	K int
	// Length is the original file length in bytes.
	Length int
	// Coeffs is this shard's row of the generator matrix (length K).
	Coeffs []byte
	// Data is the coded block.
	Data []byte
}

// Marshal serializes a shard for storage (e.g. in a Dropbox).
func (s *Shard) Marshal() []byte {
	out := make([]byte, 12+len(s.Coeffs)+len(s.Data))
	binary.BigEndian.PutUint32(out[0:4], uint32(s.K))
	binary.BigEndian.PutUint32(out[4:8], uint32(s.Length))
	binary.BigEndian.PutUint32(out[8:12], uint32(len(s.Coeffs)))
	copy(out[12:], s.Coeffs)
	copy(out[12+len(s.Coeffs):], s.Data)
	return out
}

// UnmarshalShard parses a serialized shard.
func UnmarshalShard(b []byte) (*Shard, error) {
	if len(b) < 12 {
		return nil, errors.New("fountain: shard too short")
	}
	k := int(binary.BigEndian.Uint32(b[0:4]))
	length := int(binary.BigEndian.Uint32(b[4:8]))
	nc := int(binary.BigEndian.Uint32(b[8:12]))
	if k <= 0 || nc != k || len(b) < 12+nc {
		return nil, fmt.Errorf("fountain: malformed shard header (k=%d nc=%d)", k, nc)
	}
	return &Shard{
		K:      k,
		Length: length,
		Coeffs: append([]byte(nil), b[12:12+nc]...),
		Data:   append([]byte(nil), b[12+nc:]...),
	}, nil
}

// Encode splits data into k source blocks and produces n coded shards
// such that any k of them reconstruct data. The first k shards are
// systematic (identity rows); the rest use random coefficients drawn from
// rng (pass a seeded source for reproducibility; nil uses a fixed seed).
func Encode(data []byte, k, n int, rng *rand.Rand) ([]*Shard, error) {
	if k <= 0 || n < k {
		return nil, fmt.Errorf("fountain: invalid parameters k=%d n=%d (need 1 ≤ k ≤ n)", k, n)
	}
	if k > 255 {
		return nil, fmt.Errorf("fountain: k=%d exceeds GF(256) field bound", k)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	blockLen := (len(data) + k - 1) / k
	if blockLen == 0 {
		blockLen = 1
	}
	blocks := make([][]byte, k)
	for i := range blocks {
		blocks[i] = make([]byte, blockLen)
		start := i * blockLen
		if start < len(data) {
			end := start + blockLen
			if end > len(data) {
				end = len(data)
			}
			copy(blocks[i], data[start:end])
		}
	}

	shards := make([]*Shard, 0, n)
	for i := 0; i < n; i++ {
		coeffs := make([]byte, k)
		if i < k {
			coeffs[i] = 1 // systematic prefix
		} else {
			for j := range coeffs {
				coeffs[j] = byte(rng.Intn(256))
			}
			// Avoid an all-zero row, which carries no information.
			allZero := true
			for _, c := range coeffs {
				if c != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				coeffs[i%k] = 1
			}
		}
		shards = append(shards, &Shard{
			K:      k,
			Length: len(data),
			Coeffs: coeffs,
			Data:   combine(blocks, coeffs, blockLen),
		})
	}
	return shards, nil
}

// combine computes the GF(256) linear combination of blocks with coeffs.
func combine(blocks [][]byte, coeffs []byte, blockLen int) []byte {
	out := make([]byte, blockLen)
	for bi, c := range coeffs {
		if c == 0 {
			continue
		}
		block := blocks[bi]
		if c == 1 {
			for i := range out {
				out[i] ^= block[i]
			}
			continue
		}
		lc := gfLog[c]
		for i, v := range block {
			if v != 0 {
				out[i] ^= gfExp[lc+gfLog[v]]
			}
		}
	}
	return out
}

// Decode reconstructs the original data from any k (or more) shards by
// Gaussian elimination over GF(256). It fails if the provided shards do
// not span the source space.
func Decode(shards []*Shard) ([]byte, error) {
	if len(shards) == 0 {
		return nil, errors.New("fountain: no shards")
	}
	k := shards[0].K
	length := shards[0].Length
	blockLen := len(shards[0].Data)
	for _, s := range shards {
		if s.K != k || s.Length != length || len(s.Data) != blockLen || len(s.Coeffs) != k {
			return nil, errors.New("fountain: inconsistent shards")
		}
	}
	if len(shards) < k {
		return nil, fmt.Errorf("fountain: need %d shards, have %d", k, len(shards))
	}

	// Build the augmented matrix [coeffs | data] and eliminate.
	rows := len(shards)
	mat := make([][]byte, rows)
	dat := make([][]byte, rows)
	for i, s := range shards {
		mat[i] = append([]byte(nil), s.Coeffs...)
		dat[i] = append([]byte(nil), s.Data...)
	}

	for col, row := 0, 0; col < k && row < rows; col++ {
		// Find a pivot.
		pivot := -1
		for r := row; r < rows; r++ {
			if mat[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("fountain: shards do not span block %d (rank deficient)", col)
		}
		mat[row], mat[pivot] = mat[pivot], mat[row]
		dat[row], dat[pivot] = dat[pivot], dat[row]

		// Normalize the pivot row.
		inv := gfInv(mat[row][col])
		scaleRow(mat[row], dat[row], inv)
		// Eliminate the column from all other rows.
		for r := 0; r < rows; r++ {
			if r != row && mat[r][col] != 0 {
				addScaledRow(mat[r], dat[r], mat[row], dat[row], mat[r][col])
			}
		}
		row++
	}

	// Verify full rank: row i must now be the i-th identity row.
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if mat[i][j] != want {
				return nil, errors.New("fountain: shards do not span the source space")
			}
		}
	}

	out := make([]byte, 0, k*blockLen)
	for i := 0; i < k; i++ {
		out = append(out, dat[i]...)
	}
	if length > len(out) {
		return nil, errors.New("fountain: corrupt length header")
	}
	return out[:length], nil
}

func scaleRow(coeffs, data []byte, c byte) {
	for i := range coeffs {
		coeffs[i] = gfMul(coeffs[i], c)
	}
	for i := range data {
		data[i] = gfMul(data[i], c)
	}
}

// addScaledRow: target += c * source.
func addScaledRow(tc, td, sc, sd []byte, c byte) {
	for i := range tc {
		tc[i] ^= gfMul(sc[i], c)
	}
	for i := range td {
		td[i] ^= gfMul(sd[i], c)
	}
}
