package fountain

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldProperties(t *testing.T) {
	// The log table must be a bijection over 1..255 (catches a
	// non-generator base: 2 has order 51 under 0x11B).
	seen := make(map[int]bool)
	for x := 1; x < 256; x++ {
		if x != 1 && gfLog[x] == 0 {
			t.Fatalf("gfLog[%d] = 0: log table not filled (bad generator)", x)
		}
		if seen[gfLog[x]] {
			t.Fatalf("duplicate log value %d", gfLog[x])
		}
		seen[gfLog[x]] = true
	}
	// Multiplicative inverses.
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
	// Distributivity on a sample.
	for a := 1; a < 256; a += 17 {
		for b := 1; b < 256; b += 13 {
			for c := 1; c < 256; c += 31 {
				left := gfMul(byte(a), byte(b)^byte(c))
				right := gfMul(byte(a), byte(b)) ^ gfMul(byte(a), byte(c))
				if left != right {
					t.Fatalf("distributivity fails at %d,%d,%d", a, b, c)
				}
			}
		}
	}
	if gfMul(0, 123) != 0 || gfMul(123, 0) != 0 {
		t.Fatal("multiplication by zero broken")
	}
}

func TestSystematicRoundTrip(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	shards, err := Encode(data, 4, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 7 {
		t.Fatalf("got %d shards", len(shards))
	}
	// The first k shards alone reconstruct (systematic prefix).
	got, err := Decode(shards[:4])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("systematic decode mismatch")
	}
}

func TestAnyKOfNReconstructs(t *testing.T) {
	data := bytes.Repeat([]byte("shard me please "), 100)
	const k, n = 3, 6
	shards, err := Encode(data, k, n, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	// Every k-subset of the n shards must reconstruct.
	var idx [k]int
	var recurse func(start, depth int)
	failures := 0
	recurse = func(start, depth int) {
		if depth == k {
			subset := make([]*Shard, k)
			for i, j := range idx {
				subset[i] = shards[j]
			}
			got, err := Decode(subset)
			if err != nil || !bytes.Equal(got, data) {
				failures++
				t.Errorf("subset %v failed: %v", idx, err)
			}
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			recurse(i+1, depth+1)
		}
	}
	recurse(0, 0)
	if failures > 0 {
		t.Fatalf("%d subsets failed", failures)
	}
}

func TestFewerThanKNeverReconstructs(t *testing.T) {
	data := bytes.Repeat([]byte("secret"), 50)
	shards, err := Encode(data, 4, 8, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for take := 1; take < 4; take++ {
		if _, err := Decode(shards[:take]); err == nil {
			t.Fatalf("reconstructed from %d < k shards", take)
		}
	}
}

func TestReplicationCase(t *testing.T) {
	// k=1 degenerates to replication: every shard alone reconstructs.
	data := []byte("replicate me")
	shards, err := Encode(data, 1, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range shards {
		got, err := Decode([]*Shard{s})
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("replica %d failed: %v", i, err)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	data := []byte("serialize this across a dropbox")
	shards, _ := Encode(data, 3, 5, nil)
	var back []*Shard
	for _, s := range shards[1:4] {
		b := s.Marshal()
		s2, err := UnmarshalShard(b)
		if err != nil {
			t.Fatal(err)
		}
		back = append(back, s2)
	}
	got, err := Decode(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("marshal round trip decode mismatch")
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	for _, b := range [][]byte{nil, {1, 2}, make([]byte, 12), append(make([]byte, 12), 1)} {
		if _, err := UnmarshalShard(b); err == nil {
			t.Errorf("malformed shard %v accepted", b)
		}
	}
}

func TestEncodeParameterValidation(t *testing.T) {
	data := []byte("x")
	cases := []struct{ k, n int }{{0, 5}, {3, 2}, {-1, 1}, {300, 300}}
	for _, c := range cases {
		if _, err := Encode(data, c.k, c.n, nil); err == nil {
			t.Errorf("Encode(k=%d,n=%d) accepted", c.k, c.n)
		}
	}
}

func TestEmptyAndTinyData(t *testing.T) {
	for _, data := range [][]byte{{}, {42}, []byte("ab")} {
		shards, err := Encode(data, 3, 5, nil)
		if err != nil {
			t.Fatalf("Encode(%d bytes): %v", len(data), err)
		}
		got, err := Decode(shards[2:5])
		if err != nil {
			t.Fatalf("Decode(%d bytes): %v", len(data), err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%d-byte round trip mismatch", len(data))
		}
	}
}

func TestInconsistentShardsRejected(t *testing.T) {
	a, _ := Encode([]byte("first file contents"), 3, 4, nil)
	b, _ := Encode([]byte("second, longer file contents here"), 3, 4, nil)
	if _, err := Decode([]*Shard{a[0], a[1], b[2]}); err == nil {
		t.Fatal("mixed-file shards accepted")
	}
}

// Property: random data, random valid (k, n), any k-subset reconstructs.
func TestFountainProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	check := func(data []byte, kSeed, nSeed uint8) bool {
		k := int(kSeed%5) + 1
		n := k + int(nSeed%4)
		shards, err := Encode(data, k, n, rng)
		if err != nil {
			return false
		}
		// Random k-subset.
		perm := rng.Perm(n)[:k]
		subset := make([]*Shard, k)
		for i, j := range perm {
			subset[i] = shards[j]
		}
		got, err := Decode(subset)
		if err != nil {
			// Random coefficient rows can be linearly dependent with tiny
			// probability; tolerate by retrying with the systematic prefix.
			got, err = Decode(shards[:k])
			if err != nil {
				return false
			}
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode1MB(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(data, 4, 8, rand.New(rand.NewSource(2))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode1MB(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	shards, _ := Encode(data, 4, 8, rand.New(rand.NewSource(2)))
	subset := shards[4:8] // force non-systematic decode
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(subset); err != nil {
			b.Fatal(err)
		}
	}
}
