package cell

import (
	"encoding/json"
	"fmt"
)

// Control payload codecs for relay cells. Control payloads are small and
// infrequent (circuit construction, hidden-service signaling), so they are
// encoded as JSON inside the relay data; bulk data cells carry raw bytes.

// ExtendPayload asks a relay to extend the circuit to a new hop.
type ExtendPayload struct {
	Addr        string `json:"addr"`        // target OR address "host:port"
	Fingerprint string `json:"fingerprint"` // target identity fingerprint
	Handshake   []byte `json:"handshake"`   // client ntor CREATE payload
}

// ExtendedPayload carries the new hop's CREATED reply back to the client.
type ExtendedPayload struct {
	Reply []byte `json:"reply"`
}

// BeginPayload asks the final hop to open a stream to a destination.
type BeginPayload struct {
	Target string `json:"target"` // "host:port"; host may be "localhost"
}

// EndPayload closes a stream.
type EndPayload struct {
	Reason string `json:"reason,omitempty"`
}

// EstablishIntroPayload registers the current circuit as an introduction
// point circuit for a hidden service.
type EstablishIntroPayload struct {
	ServiceID string `json:"service_id"` // hex of the service identity key
	Signature []byte `json:"signature"`  // ed25519 over "establish-intro:"+ServiceID
}

// Introduce1Payload is sent by a client to an introduction point. Inner is
// opaque to the intro point and forwarded verbatim to the service as an
// INTRODUCE2 cell.
type Introduce1Payload struct {
	ServiceID string `json:"service_id"`
	Inner     []byte `json:"inner"`
}

// IntroducePlaintext is the decoded Inner of an INTRODUCE1/2 exchange: the
// rendezvous point to meet at, the one-time cookie, and the client's half
// of the service ntor handshake.
type IntroducePlaintext struct {
	RendezvousAddr string `json:"rendezvous_addr"` // OR address of the RP
	RendezvousNick string `json:"rendezvous_nick"`
	Cookie         []byte `json:"cookie"`
	Handshake      []byte `json:"handshake"`
	// PoWNonce carries the client's introduction proof-of-work when the
	// service's descriptor demands one (§9.4 DDoS defense).
	PoWNonce uint64 `json:"pow_nonce,omitempty"`
}

// EstablishRendezvousPayload registers a one-time rendezvous cookie.
type EstablishRendezvousPayload struct {
	Cookie []byte `json:"cookie"`
}

// Rendezvous1Payload is sent by the hidden service to the rendezvous point
// to complete the splice; Reply is forwarded to the client as RENDEZVOUS2.
type Rendezvous1Payload struct {
	Cookie []byte `json:"cookie"`
	Reply  []byte `json:"reply"` // service ntor CREATED reply
}

// Rendezvous2Payload delivers the service handshake reply to the client.
type Rendezvous2Payload struct {
	Reply []byte `json:"reply"`
}

// EncodeControl marshals a control payload, enforcing the relay-cell size
// limit.
func EncodeControl(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("cell: encoding control payload: %w", err)
	}
	if len(b) > MaxRelayData {
		return nil, fmt.Errorf("cell: control payload %d bytes exceeds %d", len(b), MaxRelayData)
	}
	return b, nil
}

// DecodeControl unmarshals a control payload.
func DecodeControl(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("cell: decoding control payload: %w", err)
	}
	return nil
}
