package cell_test

import (
	"bytes"
	"io"
	"testing"

	"github.com/bento-nfv/bento/internal/cell"
	"github.com/bento-nfv/bento/internal/otr"
)

// ringReader serves the same frame forever, so read loops can be driven
// without touching a real connection.
type ringReader struct {
	frame []byte
	off   int
}

func (r *ringReader) Read(p []byte) (int, error) {
	n := copy(p, r.frame[r.off:])
	r.off = (r.off + n) % len(r.frame)
	return n, nil
}

func newTestLayers(t *testing.T) (sender, receiver *otr.Layer) {
	t.Helper()
	keys := make([]byte, otr.KeyMaterialLen)
	for i := range keys {
		keys[i] = byte(i * 7)
	}
	sender, err := otr.NewLayer(keys)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err = otr.NewLayer(keys)
	if err != nil {
		t.Fatal(err)
	}
	return sender, receiver
}

// TestEncodeEncryptDecodeAllocFree locks in the zero-allocation contract
// of the client→exit datapath: pack a relay cell into a reused wire
// frame, seal and encrypt in place, put it on the wire, read it back
// into a reused frame, decrypt, verify, and parse — zero allocations per
// cell in the steady state.
func TestEncodeEncryptDecodeAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	sender, receiver := newTestLayers(t)
	data := bytes.Repeat([]byte{0xAB}, cell.MaxRelayData)
	hdr := cell.RelayHeader{StreamID: 7, Cmd: cell.RelayData}

	out := make([]byte, cell.Size)
	in := make([]byte, cell.Size)
	ring := &ringReader{frame: out}

	cycle := func() {
		// Encode + encrypt (the client's sendLocked).
		payload := cell.WirePayload(out)
		if err := cell.PackRelay(payload, hdr, data); err != nil {
			t.Fatal(err)
		}
		sender.SealForward(payload, cell.DigestOffset)
		sender.ApplyForward(payload)
		cell.SetWireCircID(out, 42)
		cell.SetWireCmd(out, cell.CmdRelay)

		// Wire + decode + decrypt (the exit's serveConn loop).
		ring.off = 0
		if err := cell.ReadWire(ring, in); err != nil {
			t.Fatal(err)
		}
		rp := cell.WirePayload(in)
		receiver.ApplyForward(rp)
		if !cell.Recognized(rp) || !receiver.VerifyForward(rp, cell.DigestOffset) {
			t.Fatal("cell not recognized")
		}
		if _, _, err := cell.ParseRelay(rp); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 4; i++ {
		cycle() // warm up digest scratch buffers
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("encode→encrypt→decode allocates %.1f times per cell, want 0", allocs)
	}
}

// TestWriteToAllocFree locks in that the pooled single-write codec for
// Cell values does not allocate after pool warmup.
func TestWriteToAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	c := &cell.Cell{CircID: 9, Cmd: cell.CmdRelay}
	for i := 0; i < 4; i++ {
		if _, err := c.WriteTo(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.WriteTo(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WriteTo allocates %.1f times per cell, want 0", allocs)
	}
}

// TestReadIntoAllocFree locks in the alloc-free read path for Cell values.
func TestReadIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	src := &cell.Cell{CircID: 3, Cmd: cell.CmdRelay}
	ring := &ringReader{frame: src.Marshal()}
	var c cell.Cell
	for i := 0; i < 4; i++ {
		if err := cell.ReadInto(ring, &c); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := cell.ReadInto(ring, &c); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadInto allocates %.1f times per cell, want 0", allocs)
	}
	if c.CircID != 3 || c.Cmd != cell.CmdRelay {
		t.Fatal("ReadInto corrupted the cell")
	}
}
