package cell

import (
	"errors"
	"io"
	"sync"

	"github.com/bento-nfv/bento/internal/obs"
)

// ErrWriterClosed is returned by BatchWriter enqueues after Close.
var ErrWriterClosed = errors.New("cell: batch writer closed")

// maxBatchCells bounds the bytes queued in a BatchWriter before
// enqueuers block, providing per-link backpressure toward the circuit's
// origin (the same role the kernel socket buffer plays for real Tor).
const maxBatchCells = 256

// BatchWriter coalesces cells queued for one link into batched Write
// calls — the writev-style half of the zero-copy datapath. While a
// (possibly blocking) Write is in flight, every cell enqueued behind it
// accumulates into a single buffer and goes out in one call, amortizing
// per-write costs (the emulator's token-bucket and delivery bookkeeping)
// across the whole batch.
//
// Latency: when the link is idle — no write in flight and nothing
// pending — an enqueuer writes its cell directly on its own goroutine
// instead of handing off to the flusher. Request/response traffic
// therefore pays no goroutine-wakeup latency (it behaves exactly like a
// direct conn.Write); the flusher only takes over when cells queue up
// behind an in-flight write, which is the regime where batching wins.
//
// Ordering: at most one write is in flight at a time (the writing flag),
// and queued cells live in a single FIFO pending buffer, so cells leave
// in exactly enqueue order. Callers that need crypto state to advance in
// wire order (rolling digests) must enqueue under the same lock that
// guards the crypto; enqueue order then equals wire order end to end.
//
// Ownership: enqueue copies the frame into a writer-owned buffer before
// returning or writing, so callers may reuse their wire buffer
// immediately.
type BatchWriter struct {
	conn io.WriteCloser
	// flushObs, when non-nil, records the size of every link write in
	// cells. It is set at construction only (never mutated afterwards),
	// so both the inline path and the flusher read it without locking;
	// Observe is atomic and allocation-free, keeping the datapath's
	// zero-alloc contract intact.
	flushObs *obs.Histogram

	mu       sync.Mutex
	hasData  sync.Cond // flusher waits: pending non-empty and link idle, or closed/err
	hasSpace sync.Cond // enqueuers wait: pending below bound
	pending  []byte
	spare    []byte // last flushed buffer, recycled for the next swap
	writing  bool   // a Write (inline or flusher) is in flight
	err      error
	closed   bool
	done     chan struct{} // flusher exited; conn is closed
}

// NewBatchWriter starts a writer (and its flusher goroutine) over conn.
func NewBatchWriter(conn io.WriteCloser) *BatchWriter {
	return NewBatchWriterObs(conn, nil)
}

// NewBatchWriterObs is NewBatchWriter with a flush-size histogram
// attached: every link write records its size in cells. A nil
// histogram disables the observation (it is the no-op telemetry
// sink), making this identical to NewBatchWriter.
func NewBatchWriterObs(conn io.WriteCloser, flush *obs.Histogram) *BatchWriter {
	w := &BatchWriter{conn: conn, flushObs: flush, done: make(chan struct{})}
	w.hasData.L = &w.mu
	w.hasSpace.L = &w.mu
	go w.flushLoop()
	return w
}

// WriteFrame queues one wire frame (exactly Size bytes), writing it
// inline when the link is idle. It blocks only when the link is
// maxBatchCells behind.
func (w *BatchWriter) WriteFrame(frame []byte) error {
	w.mu.Lock()
	for len(w.pending) >= maxBatchCells*Size && w.err == nil && !w.closed {
		w.hasSpace.Wait()
	}
	if err := w.failedLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	if !w.writing && len(w.pending) == 0 {
		buf := append(w.spare[:0], frame[:Size]...)
		return w.writeInlineLocked(buf)
	}
	w.pending = append(w.pending, frame[:Size]...)
	w.hasData.Signal()
	w.mu.Unlock()
	return nil
}

// WriteFrames queues len(frames)/Size wire frames — a contiguous run of
// whole cells — under one lock acquisition, writing them inline when the
// link is idle. Batched senders (the client's multi-cell data path, a
// relay worker emitting a decrypted run) use this to amortize the
// per-cell lock/signal cost across the run. Like WriteFrame it blocks
// while the link is maxBatchCells behind; the space check happens once
// for the whole run, so a large batch may overshoot the bound by up to
// its own size (the bound is backpressure, not a hard buffer limit).
func (w *BatchWriter) WriteFrames(frames []byte) error {
	if len(frames)%Size != 0 {
		return errors.New("cell: WriteFrames requires whole frames")
	}
	w.mu.Lock()
	for len(w.pending) >= maxBatchCells*Size && w.err == nil && !w.closed {
		w.hasSpace.Wait()
	}
	if err := w.failedLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	if !w.writing && len(w.pending) == 0 {
		buf := append(w.spare[:0], frames...)
		return w.writeInlineLocked(buf)
	}
	w.pending = append(w.pending, frames...)
	w.hasData.Signal()
	w.mu.Unlock()
	return nil
}

// TryWriteFrame queues one wire frame without ever blocking: it returns
// (false, nil) when the link is maxBatchCells behind instead of waiting
// for space. It also never takes the idle-inline path — the frame is
// always handed to the flusher — because the underlying Write can stall
// (a partitioned or rate-limited link), and Try callers are exactly the
// ones that must not be stalled by one slow link. Relay workers use this
// on the forward path and divert to a per-circuit spill queue on false,
// so one congested circuit cannot head-of-line-block its worker.
func (w *BatchWriter) TryWriteFrame(frame []byte) (bool, error) {
	w.mu.Lock()
	if err := w.failedLocked(); err != nil {
		w.mu.Unlock()
		return false, err
	}
	if len(w.pending) >= maxBatchCells*Size {
		w.mu.Unlock()
		return false, nil
	}
	w.pending = append(w.pending, frame[:Size]...)
	w.hasData.Signal()
	w.mu.Unlock()
	return true, nil
}

// QueuedCells reports how many whole cells are queued behind the link,
// plus one when a write is in flight. Zero means the writer is fully
// drained. Stats and tests only — the datapath never polls this.
func (w *BatchWriter) QueuedCells() int {
	w.mu.Lock()
	n := len(w.pending) / Size
	if w.writing {
		n++
	}
	w.mu.Unlock()
	return n
}

// WriteCell queues a Cell value (control cells built on cold paths),
// serializing it straight into the writer's buffer.
func (w *BatchWriter) WriteCell(c *Cell) error {
	w.mu.Lock()
	for len(w.pending) >= maxBatchCells*Size && w.err == nil && !w.closed {
		w.hasSpace.Wait()
	}
	if err := w.failedLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	if !w.writing && len(w.pending) == 0 {
		buf := c.AppendWire(w.spare[:0])
		return w.writeInlineLocked(buf)
	}
	w.pending = c.AppendWire(w.pending)
	w.hasData.Signal()
	w.mu.Unlock()
	return nil
}

// writeInlineLocked performs the idle-link fast path: the caller becomes
// the writer for buf (built from w.spare). Called with w.mu held and
// w.writing false; unlocks around the Write and returns unlocked.
func (w *BatchWriter) writeInlineLocked(buf []byte) error {
	w.writing = true
	w.mu.Unlock()
	w.flushObs.Observe(int64(len(buf) / Size))
	_, err := w.conn.Write(buf)
	w.mu.Lock()
	w.spare = buf
	w.writing = false
	if err != nil && w.err == nil {
		w.err = err
	}
	// Anything that queued behind this write (or a pending Close) is now
	// the flusher's job.
	if len(w.pending) > 0 || w.err != nil || w.closed {
		w.hasData.Signal()
	}
	w.hasSpace.Broadcast()
	w.mu.Unlock()
	return err
}

func (w *BatchWriter) failedLocked() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrWriterClosed
	}
	return nil
}

// Close flushes queued cells, closes the underlying conn, and waits for
// the flusher to exit. It is idempotent and safe to call concurrently
// with enqueuers (they fail with ErrWriterClosed from this point on).
// The wait cannot hang: every peer in the overlay either keeps reading
// until its conn closes or closes the conn when it exits, so a blocked
// flush always resolves.
func (w *BatchWriter) Close() {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		w.hasData.Broadcast()
		w.hasSpace.Broadcast()
	}
	w.mu.Unlock()
	<-w.done
}

func (w *BatchWriter) flushLoop() {
	defer close(w.done)
	w.mu.Lock()
	for {
		for (len(w.pending) == 0 || w.writing) && w.err == nil && !w.closed {
			w.hasData.Wait()
		}
		if w.writing {
			// Closed or errored with an inline write in flight; let it
			// finish so the swap below never races a live buffer.
			w.hasData.Wait()
			continue
		}
		if w.err != nil || len(w.pending) == 0 { // err, or closed and drained
			break
		}
		buf := w.pending
		w.pending = w.spare[:0]
		w.writing = true
		w.mu.Unlock()
		w.flushObs.Observe(int64(len(buf) / Size))
		_, err := w.conn.Write(buf)
		w.mu.Lock()
		w.spare = buf
		w.writing = false
		if err != nil && w.err == nil {
			w.err = err
		}
		w.hasSpace.Broadcast()
	}
	w.mu.Unlock()
	w.conn.Close()
}
