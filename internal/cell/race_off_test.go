//go:build !race

package cell_test

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
