package cell

import "sync"

// Pooled wire buffers and cells for the zero-copy datapath.
//
// Ownership rules (see DESIGN.md "Datapath & buffer ownership"):
//
//   - GetWire transfers ownership of a Size-byte buffer to the caller.
//     The caller must either PutWire it exactly once when done, or keep
//     it for the lifetime of a connection (long-lived per-link read
//     buffers never return to the pool; that is fine).
//   - A buffer handed to a writer (net.Conn.Write, linkWriter enqueue)
//     may be reused the moment the call returns: writers copy or
//     serialize synchronously and never retain the slice.
//   - Payload sub-slices obtained via WirePayload / ParseRelay alias the
//     frame. They are valid only until the frame buffer is reused —
//     consumers that need the data past the current cell (stream
//     delivery, async control handling) must copy it out first.
//   - Never PutWire a buffer twice, and never touch one after PutWire.
//
// The pools are warm-path optimizations: after startup, steady-state
// forwarding performs zero allocations.

var wirePool = sync.Pool{
	New: func() any { return new([Size]byte) },
}

// GetWire returns a Size-byte wire buffer from the pool.
func GetWire() *[Size]byte { return wirePool.Get().(*[Size]byte) }

// PutWire returns a buffer obtained from GetWire to the pool.
func PutWire(buf *[Size]byte) { wirePool.Put(buf) }

var cellPool = sync.Pool{
	New: func() any { return new(Cell) },
}

// GetCell returns a zeroed Cell from the pool. Callers that fill only
// part of the payload can rely on the rest being zero.
func GetCell() *Cell {
	c := cellPool.Get().(*Cell)
	c.CircID = 0
	c.Cmd = 0
	clear(c.Payload[:])
	return c
}

// PutCell returns a Cell obtained from GetCell to the pool. The caller
// must not retain any reference to it (including payload sub-slices).
func PutCell(c *Cell) { cellPool.Put(c) }
