package cell

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	c := &Cell{CircID: 0xDEADBEEF, Cmd: CmdRelay}
	copy(c.Payload[:], []byte("payload bytes"))
	buf := c.Marshal()
	if len(buf) != Size {
		t.Fatalf("marshal length %d, want %d", len(buf), Size)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CircID != c.CircID || got.Cmd != c.Cmd || got.Payload != c.Payload {
		t.Fatal("round trip mismatch")
	}
}

func TestUnmarshalBadLength(t *testing.T) {
	if _, err := Unmarshal(make([]byte, Size-1)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := Unmarshal(make([]byte, Size+1)); err == nil {
		t.Fatal("long buffer accepted")
	}
}

func TestReadWrite(t *testing.T) {
	var buf bytes.Buffer
	cells := []*Cell{
		{CircID: 1, Cmd: CmdCreate},
		{CircID: 2, Cmd: CmdCreated},
		{CircID: 3, Cmd: CmdRelay},
		{CircID: 4, Cmd: CmdDestroy},
	}
	for _, c := range cells {
		if err := Write(&buf, c); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range cells {
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.CircID != want.CircID || got.Cmd != want.Cmd {
			t.Fatalf("got circ %d cmd %v, want circ %d cmd %v",
				got.CircID, got.Cmd, want.CircID, want.Cmd)
		}
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("Read from empty buffer succeeded")
	}
}

func TestPackParseRelay(t *testing.T) {
	payload := make([]byte, PayloadLen)
	data := []byte("GET /index.html")
	hdr := RelayHeader{StreamID: 7, Cmd: RelayBegin}
	if err := PackRelay(payload, hdr, data); err != nil {
		t.Fatal(err)
	}
	if !Recognized(payload) {
		t.Fatal("freshly packed relay payload not recognized")
	}
	got, gotData, err := ParseRelay(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.StreamID != 7 || got.Cmd != RelayBegin || int(got.Length) != len(data) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(gotData, data) {
		t.Fatalf("data mismatch: %q", gotData)
	}
}

func TestPackRelayTooLong(t *testing.T) {
	payload := make([]byte, PayloadLen)
	if err := PackRelay(payload, RelayHeader{}, make([]byte, MaxRelayData+1)); err == nil {
		t.Fatal("oversized relay data accepted")
	}
	if err := PackRelay(payload, RelayHeader{}, make([]byte, MaxRelayData)); err != nil {
		t.Fatalf("max-size relay data rejected: %v", err)
	}
}

func TestPackRelayBadPayloadLen(t *testing.T) {
	if err := PackRelay(make([]byte, 10), RelayHeader{}, nil); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, _, err := ParseRelay(make([]byte, 10)); err == nil {
		t.Fatal("short payload accepted by ParseRelay")
	}
}

func TestParseRelayCorruptLength(t *testing.T) {
	payload := make([]byte, PayloadLen)
	PackRelay(payload, RelayHeader{Cmd: RelayData}, nil)
	payload[LengthOffset] = 0xFF
	payload[LengthOffset+1] = 0xFF
	if _, _, err := ParseRelay(payload); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

func TestCommandStrings(t *testing.T) {
	cases := map[string]string{
		CmdCreate.String():       "CREATE",
		CmdRelay.String():        "RELAY",
		Command(99).String():     "Command(99)",
		RelayBegin.String():      "BEGIN",
		RelayDrop.String():       "DROP",
		RelayEnd.String():        "END",
		RelayCommand(0).String(): "RelayCommand(0)",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

// Property: PackRelay followed by ParseRelay returns the original header
// and data for any data up to MaxRelayData.
func TestRelayRoundTripProperty(t *testing.T) {
	check := func(streamID uint16, cmdSeed byte, data []byte) bool {
		if len(data) > MaxRelayData {
			data = data[:MaxRelayData]
		}
		cmd := RelayCommand(cmdSeed%18 + 1)
		payload := make([]byte, PayloadLen)
		if err := PackRelay(payload, RelayHeader{StreamID: streamID, Cmd: cmd}, data); err != nil {
			return false
		}
		hdr, got, err := ParseRelay(payload)
		if err != nil {
			return false
		}
		return hdr.StreamID == streamID && hdr.Cmd == cmd && bytes.Equal(got, data)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCellMarshal(b *testing.B) {
	c := &Cell{CircID: 42, Cmd: CmdRelay}
	b.ReportAllocs()
	b.SetBytes(Size)
	for i := 0; i < b.N; i++ {
		c.Marshal()
	}
}
