// Package cell defines the fixed-size cell format of the emulated Tor
// overlay and the relay-cell payload layout carried inside onion-encrypted
// cells. The layout mirrors Tor's link protocol: a 4-byte circuit ID, a
// 1-byte command, and a fixed 509-byte payload, with relay cells embedding
// a recognized field, stream ID, rolling digest, length, and relay command.
//
// The package also provides the zero-copy datapath primitives: wire-frame
// accessors (WireCircID, WirePayload, ReadWire) for operating on raw
// Size-byte buffers in place, pooled frames and cells (GetWire/GetCell),
// and the batched per-link writer (BatchWriter). Buffer ownership rules
// are documented in pool.go and in DESIGN.md under "Datapath & buffer
// ownership".
package cell

import (
	"encoding/binary"
	"fmt"
	"io"
)

const (
	// PayloadLen is the fixed payload size of every cell.
	PayloadLen = 509
	// Size is the total wire size of a cell.
	Size = 4 + 1 + PayloadLen

	// Relay payload layout offsets.
	RecognizedOffset = 0
	StreamIDOffset   = 2
	DigestOffset     = 4
	LengthOffset     = 8
	RelayCmdOffset   = 10
	RelayHeaderLen   = 11
	// MaxRelayData is the maximum application data per relay cell.
	MaxRelayData = PayloadLen - RelayHeaderLen
)

// Command is a link-level cell command.
type Command byte

// Link-level cell commands.
const (
	CmdPadding Command = iota
	CmdCreate
	CmdCreated
	CmdRelay
	CmdDestroy
)

// String implements fmt.Stringer.
func (c Command) String() string {
	switch c {
	case CmdPadding:
		return "PADDING"
	case CmdCreate:
		return "CREATE"
	case CmdCreated:
		return "CREATED"
	case CmdRelay:
		return "RELAY"
	case CmdDestroy:
		return "DESTROY"
	default:
		return fmt.Sprintf("Command(%d)", byte(c))
	}
}

// RelayCommand is the command of a relay cell, interpreted after the
// onion-encryption layer addressed to a hop has been removed.
type RelayCommand byte

// Relay cell commands. The hidden-service commands follow Tor's
// rendezvous protocol structure.
const (
	RelayBegin RelayCommand = iota + 1
	RelayConnected
	RelayData
	RelayEnd
	RelayExtend
	RelayExtended
	RelayDrop // long-range padding; dropped at the recognizing hop
	RelayEstablishIntro
	RelayIntroEstablished
	RelayIntroduce1
	RelayIntroduce2
	RelayIntroduceAck
	RelayEstablishRendezvous
	RelayRendezvousEstablished
	RelayRendezvous1
	RelayRendezvous2
	RelayTruncate
	RelayTruncated
)

var relayCommandNames = map[RelayCommand]string{
	RelayBegin:                 "BEGIN",
	RelayConnected:             "CONNECTED",
	RelayData:                  "DATA",
	RelayEnd:                   "END",
	RelayExtend:                "EXTEND",
	RelayExtended:              "EXTENDED",
	RelayDrop:                  "DROP",
	RelayEstablishIntro:        "ESTABLISH_INTRO",
	RelayIntroEstablished:      "INTRO_ESTABLISHED",
	RelayIntroduce1:            "INTRODUCE1",
	RelayIntroduce2:            "INTRODUCE2",
	RelayIntroduceAck:          "INTRODUCE_ACK",
	RelayEstablishRendezvous:   "ESTABLISH_RENDEZVOUS",
	RelayRendezvousEstablished: "RENDEZVOUS_ESTABLISHED",
	RelayRendezvous1:           "RENDEZVOUS1",
	RelayRendezvous2:           "RENDEZVOUS2",
	RelayTruncate:              "TRUNCATE",
	RelayTruncated:             "TRUNCATED",
}

// String implements fmt.Stringer.
func (c RelayCommand) String() string {
	if s, ok := relayCommandNames[c]; ok {
		return s
	}
	return fmt.Sprintf("RelayCommand(%d)", byte(c))
}

// Cell is one fixed-size link cell.
type Cell struct {
	CircID  uint32
	Cmd     Command
	Payload [PayloadLen]byte
}

// --- wire-level accessors ---------------------------------------------------
//
// The hot datapath operates directly on Size-byte wire buffers without
// materializing Cell values: a relay reads a frame, decrypts the payload
// region in place, rewrites the circuit ID, and forwards the same bytes.
// These accessors define that layout in one place.

// WireCircID reads the circuit ID of a wire frame.
func WireCircID(buf []byte) uint32 { return binary.BigEndian.Uint32(buf[0:4]) }

// SetWireCircID rewrites the circuit ID of a wire frame in place (the only
// mutation a forwarding relay makes outside the payload region).
func SetWireCircID(buf []byte, id uint32) { binary.BigEndian.PutUint32(buf[0:4], id) }

// WireCmd reads the link command of a wire frame.
func WireCmd(buf []byte) Command { return Command(buf[4]) }

// SetWireCmd rewrites the link command of a wire frame in place.
func SetWireCmd(buf []byte, cmd Command) { buf[4] = byte(cmd) }

// WirePayload returns the payload region of a wire frame as a sub-slice
// (aliasing buf, not a copy).
func WirePayload(buf []byte) []byte { return buf[5:Size] }

// ReadWire reads one wire frame into buf, which must be at least Size
// bytes. It performs no allocation; buf is typically a per-connection
// reused buffer or one drawn from GetWire.
func ReadWire(r io.Reader, buf []byte) error {
	_, err := io.ReadFull(r, buf[:Size])
	return err
}

// --- struct codec -----------------------------------------------------------

// EncodeInto serializes the cell into buf, which must be at least Size
// bytes. It is the allocation-free form of Marshal.
func (c *Cell) EncodeInto(buf []byte) {
	binary.BigEndian.PutUint32(buf[0:4], c.CircID)
	buf[4] = byte(c.Cmd)
	copy(buf[5:Size], c.Payload[:])
}

// AppendWire appends the cell's wire form to buf and returns the extended
// slice, for batching several cells into one write.
func (c *Cell) AppendWire(buf []byte) []byte {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[0:4], c.CircID)
	hdr[4] = byte(c.Cmd)
	buf = append(buf, hdr[:]...)
	return append(buf, c.Payload[:]...)
}

// WriteTo writes the cell to w through a pooled buffer in a single Write
// call. It implements io.WriterTo.
func (c *Cell) WriteTo(w io.Writer) (int64, error) {
	buf := GetWire()
	c.EncodeInto(buf[:])
	n, err := w.Write(buf[:])
	PutWire(buf)
	return int64(n), err
}

// UnmarshalInto parses a wire frame into an existing Cell, copying the
// payload but allocating nothing.
func UnmarshalInto(c *Cell, buf []byte) error {
	if len(buf) != Size {
		return fmt.Errorf("cell: bad length %d, want %d", len(buf), Size)
	}
	c.CircID = binary.BigEndian.Uint32(buf[0:4])
	c.Cmd = Command(buf[4])
	copy(c.Payload[:], buf[5:])
	return nil
}

// ReadInto reads one cell from r into an existing Cell without allocating.
func ReadInto(r io.Reader, c *Cell) error {
	buf := GetWire()
	defer PutWire(buf)
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return err
	}
	return UnmarshalInto(c, buf[:])
}

// Marshal serializes the cell to a freshly allocated wire buffer. It is
// the compatibility codec for tests and cold paths; hot paths use
// EncodeInto/AppendWire with reused buffers.
func (c *Cell) Marshal() []byte {
	buf := make([]byte, Size)
	c.EncodeInto(buf)
	return buf
}

// Unmarshal parses a cell from exactly Size bytes into a fresh Cell
// (compatibility codec; hot paths use UnmarshalInto or the Wire*
// accessors).
func Unmarshal(buf []byte) (*Cell, error) {
	c := new(Cell)
	if err := UnmarshalInto(c, buf); err != nil {
		return nil, err
	}
	return c, nil
}

// Read reads one cell from r into a fresh Cell (compatibility codec; hot
// paths use ReadInto or ReadWire with a reused buffer).
func Read(r io.Reader) (*Cell, error) {
	c := new(Cell)
	if err := ReadInto(r, c); err != nil {
		return nil, err
	}
	return c, nil
}

// Write writes one cell to w in a single Write call without allocating.
func Write(w io.Writer, c *Cell) error {
	_, err := c.WriteTo(w)
	return err
}

// RelayHeader is the parsed header of a relay cell payload.
type RelayHeader struct {
	StreamID uint16
	Cmd      RelayCommand
	Length   uint16
}

// PackRelay writes a relay header and data into payload (which must be
// PayloadLen bytes). The recognized and digest fields are zeroed; the
// digest is stamped later by the onion layer. Payload bytes past the data
// are zeroed too, so a reused buffer never leaks a previous cell's
// plaintext into the padding region.
func PackRelay(payload []byte, hdr RelayHeader, data []byte) error {
	if len(payload) != PayloadLen {
		return fmt.Errorf("cell: bad payload length %d", len(payload))
	}
	if len(data) > MaxRelayData {
		return fmt.Errorf("cell: relay data %d exceeds max %d", len(data), MaxRelayData)
	}
	binary.BigEndian.PutUint16(payload[RecognizedOffset:], 0)
	binary.BigEndian.PutUint16(payload[StreamIDOffset:], hdr.StreamID)
	for i := 0; i < 4; i++ {
		payload[DigestOffset+i] = 0
	}
	binary.BigEndian.PutUint16(payload[LengthOffset:], uint16(len(data)))
	payload[RelayCmdOffset] = byte(hdr.Cmd)
	copy(payload[RelayHeaderLen:], data)
	clear(payload[RelayHeaderLen+len(data):])
	return nil
}

// ParseRelay parses a decrypted relay payload, returning its header and a
// sub-slice of payload holding the data.
func ParseRelay(payload []byte) (RelayHeader, []byte, error) {
	if len(payload) != PayloadLen {
		return RelayHeader{}, nil, fmt.Errorf("cell: bad payload length %d", len(payload))
	}
	hdr := RelayHeader{
		StreamID: binary.BigEndian.Uint16(payload[StreamIDOffset:]),
		Cmd:      RelayCommand(payload[RelayCmdOffset]),
		Length:   binary.BigEndian.Uint16(payload[LengthOffset:]),
	}
	if int(hdr.Length) > MaxRelayData {
		return RelayHeader{}, nil, fmt.Errorf("cell: relay length %d exceeds max %d", hdr.Length, MaxRelayData)
	}
	return hdr, payload[RelayHeaderLen : RelayHeaderLen+int(hdr.Length)], nil
}

// Recognized reports whether the recognized field of a decrypted relay
// payload is zero (the cheap pre-check before digest verification).
func Recognized(payload []byte) bool {
	return payload[RecognizedOffset] == 0 && payload[RecognizedOffset+1] == 0
}
