// Package cell defines the fixed-size cell format of the emulated Tor
// overlay and the relay-cell payload layout carried inside onion-encrypted
// cells. The layout mirrors Tor's link protocol: a 4-byte circuit ID, a
// 1-byte command, and a fixed 509-byte payload, with relay cells embedding
// a recognized field, stream ID, rolling digest, length, and relay command.
package cell

import (
	"encoding/binary"
	"fmt"
	"io"
)

const (
	// PayloadLen is the fixed payload size of every cell.
	PayloadLen = 509
	// Size is the total wire size of a cell.
	Size = 4 + 1 + PayloadLen

	// Relay payload layout offsets.
	RecognizedOffset = 0
	StreamIDOffset   = 2
	DigestOffset     = 4
	LengthOffset     = 8
	RelayCmdOffset   = 10
	RelayHeaderLen   = 11
	// MaxRelayData is the maximum application data per relay cell.
	MaxRelayData = PayloadLen - RelayHeaderLen
)

// Command is a link-level cell command.
type Command byte

// Link-level cell commands.
const (
	CmdPadding Command = iota
	CmdCreate
	CmdCreated
	CmdRelay
	CmdDestroy
)

// String implements fmt.Stringer.
func (c Command) String() string {
	switch c {
	case CmdPadding:
		return "PADDING"
	case CmdCreate:
		return "CREATE"
	case CmdCreated:
		return "CREATED"
	case CmdRelay:
		return "RELAY"
	case CmdDestroy:
		return "DESTROY"
	default:
		return fmt.Sprintf("Command(%d)", byte(c))
	}
}

// RelayCommand is the command of a relay cell, interpreted after the
// onion-encryption layer addressed to a hop has been removed.
type RelayCommand byte

// Relay cell commands. The hidden-service commands follow Tor's
// rendezvous protocol structure.
const (
	RelayBegin RelayCommand = iota + 1
	RelayConnected
	RelayData
	RelayEnd
	RelayExtend
	RelayExtended
	RelayDrop // long-range padding; dropped at the recognizing hop
	RelayEstablishIntro
	RelayIntroEstablished
	RelayIntroduce1
	RelayIntroduce2
	RelayIntroduceAck
	RelayEstablishRendezvous
	RelayRendezvousEstablished
	RelayRendezvous1
	RelayRendezvous2
	RelayTruncate
	RelayTruncated
)

var relayCommandNames = map[RelayCommand]string{
	RelayBegin:                 "BEGIN",
	RelayConnected:             "CONNECTED",
	RelayData:                  "DATA",
	RelayEnd:                   "END",
	RelayExtend:                "EXTEND",
	RelayExtended:              "EXTENDED",
	RelayDrop:                  "DROP",
	RelayEstablishIntro:        "ESTABLISH_INTRO",
	RelayIntroEstablished:      "INTRO_ESTABLISHED",
	RelayIntroduce1:            "INTRODUCE1",
	RelayIntroduce2:            "INTRODUCE2",
	RelayIntroduceAck:          "INTRODUCE_ACK",
	RelayEstablishRendezvous:   "ESTABLISH_RENDEZVOUS",
	RelayRendezvousEstablished: "RENDEZVOUS_ESTABLISHED",
	RelayRendezvous1:           "RENDEZVOUS1",
	RelayRendezvous2:           "RENDEZVOUS2",
	RelayTruncate:              "TRUNCATE",
	RelayTruncated:             "TRUNCATED",
}

// String implements fmt.Stringer.
func (c RelayCommand) String() string {
	if s, ok := relayCommandNames[c]; ok {
		return s
	}
	return fmt.Sprintf("RelayCommand(%d)", byte(c))
}

// Cell is one fixed-size link cell.
type Cell struct {
	CircID  uint32
	Cmd     Command
	Payload [PayloadLen]byte
}

// Marshal serializes the cell to its fixed wire form.
func (c *Cell) Marshal() []byte {
	buf := make([]byte, Size)
	binary.BigEndian.PutUint32(buf[0:4], c.CircID)
	buf[4] = byte(c.Cmd)
	copy(buf[5:], c.Payload[:])
	return buf
}

// Unmarshal parses a cell from exactly Size bytes.
func Unmarshal(buf []byte) (*Cell, error) {
	if len(buf) != Size {
		return nil, fmt.Errorf("cell: bad length %d, want %d", len(buf), Size)
	}
	c := &Cell{
		CircID: binary.BigEndian.Uint32(buf[0:4]),
		Cmd:    Command(buf[4]),
	}
	copy(c.Payload[:], buf[5:])
	return c, nil
}

// Read reads one cell from r.
func Read(r io.Reader) (*Cell, error) {
	buf := make([]byte, Size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return Unmarshal(buf)
}

// Write writes one cell to w.
func Write(w io.Writer, c *Cell) error {
	_, err := w.Write(c.Marshal())
	return err
}

// RelayHeader is the parsed header of a relay cell payload.
type RelayHeader struct {
	StreamID uint16
	Cmd      RelayCommand
	Length   uint16
}

// PackRelay writes a relay header and data into payload (which must be
// PayloadLen bytes). The recognized and digest fields are zeroed; the
// digest is stamped later by the onion layer. Remaining payload bytes are
// left as-is so callers may pre-fill them with padding.
func PackRelay(payload []byte, hdr RelayHeader, data []byte) error {
	if len(payload) != PayloadLen {
		return fmt.Errorf("cell: bad payload length %d", len(payload))
	}
	if len(data) > MaxRelayData {
		return fmt.Errorf("cell: relay data %d exceeds max %d", len(data), MaxRelayData)
	}
	binary.BigEndian.PutUint16(payload[RecognizedOffset:], 0)
	binary.BigEndian.PutUint16(payload[StreamIDOffset:], hdr.StreamID)
	for i := 0; i < 4; i++ {
		payload[DigestOffset+i] = 0
	}
	binary.BigEndian.PutUint16(payload[LengthOffset:], uint16(len(data)))
	payload[RelayCmdOffset] = byte(hdr.Cmd)
	copy(payload[RelayHeaderLen:], data)
	return nil
}

// ParseRelay parses a decrypted relay payload, returning its header and a
// sub-slice of payload holding the data.
func ParseRelay(payload []byte) (RelayHeader, []byte, error) {
	if len(payload) != PayloadLen {
		return RelayHeader{}, nil, fmt.Errorf("cell: bad payload length %d", len(payload))
	}
	hdr := RelayHeader{
		StreamID: binary.BigEndian.Uint16(payload[StreamIDOffset:]),
		Cmd:      RelayCommand(payload[RelayCmdOffset]),
		Length:   binary.BigEndian.Uint16(payload[LengthOffset:]),
	}
	if int(hdr.Length) > MaxRelayData {
		return RelayHeader{}, nil, fmt.Errorf("cell: relay length %d exceeds max %d", hdr.Length, MaxRelayData)
	}
	return hdr, payload[RelayHeaderLen : RelayHeaderLen+int(hdr.Length)], nil
}

// Recognized reports whether the recognized field of a decrypted relay
// payload is zero (the cheap pre-check before digest verification).
func Recognized(payload []byte) bool {
	return payload[RecognizedOffset] == 0 && payload[RecognizedOffset+1] == 0
}
