package cell

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/obs"
)

// recordConn records everything written to it, optionally sleeping per
// Write call to force cells to queue behind an in-flight write.
type recordConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	writes int
	delay  time.Duration
	closed bool
}

func (c *recordConn) Write(p []byte) (int, error) {
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes++
	return c.buf.Write(p)
}

func (c *recordConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *recordConn) snapshot() ([]byte, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...), c.writes, c.closed
}

// TestBatchWriterOrder drives one producer through a slow conn: every
// frame must arrive exactly once in enqueue order. (A lone producer
// takes the inline path for every cell — batching needs cells arriving
// while a write is in flight, covered by the concurrent test below.)
func TestBatchWriterOrder(t *testing.T) {
	conn := &recordConn{delay: 200 * time.Microsecond}
	w := NewBatchWriter(conn)

	const n = 300
	frame := make([]byte, Size)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint32(frame[0:4], uint32(i))
		if err := w.WriteFrame(frame); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	data, _, closed := conn.snapshot()
	if !closed {
		t.Fatal("Close did not close the conn")
	}
	if len(data) != n*Size {
		t.Fatalf("got %d bytes, want %d", len(data), n*Size)
	}
	for i := 0; i < n; i++ {
		if got := binary.BigEndian.Uint32(data[i*Size:]); got != uint32(i) {
			t.Fatalf("frame %d out of order: got seq %d", i, got)
		}
	}
}

// TestBatchWriterIdleFastPath checks the latency fast path: on an idle
// link each cell goes out in its own Write, from the caller's goroutine,
// with no flusher handoff to wait for.
func TestBatchWriterIdleFastPath(t *testing.T) {
	conn := &recordConn{}
	w := NewBatchWriter(conn)
	frame := make([]byte, Size)
	for i := 0; i < 10; i++ {
		if err := w.WriteFrame(frame); err != nil {
			t.Fatal(err)
		}
		// The write completed synchronously: bytes are on the conn the
		// moment WriteFrame returns.
		if data, writes, _ := conn.snapshot(); len(data) != (i+1)*Size || writes != i+1 {
			t.Fatalf("cell %d: %d bytes in %d writes, want synchronous 1:1", i, len(data), writes)
		}
	}
	w.Close()
}

// TestBatchWriterConcurrentProducers hammers one writer from several
// goroutines (run under -race in check.sh): every cell must arrive
// intact — never torn mid-frame — and per-producer counts must add up.
func TestBatchWriterConcurrentProducers(t *testing.T) {
	conn := &recordConn{delay: 50 * time.Microsecond}
	w := NewBatchWriter(conn)

	const producers, perProducer = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := &Cell{CircID: uint32(p)}
			for i := 0; i < perProducer; i++ {
				for j := range c.Payload {
					c.Payload[j] = byte(p)
				}
				if err := w.WriteCell(c); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	w.Close()

	data, writes, _ := conn.snapshot()
	if len(data) != producers*perProducer*Size {
		t.Fatalf("got %d bytes, want %d", len(data), producers*perProducer*Size)
	}
	if writes >= producers*perProducer {
		t.Fatalf("no batching happened: %d writes for %d cells", writes, producers*perProducer)
	}
	counts := make([]int, producers)
	for off := 0; off < len(data); off += Size {
		p := int(WireCircID(data[off:]))
		counts[p]++
		for _, b := range WirePayload(data[off : off+Size]) {
			if b != byte(p) {
				t.Fatalf("torn frame at offset %d: payload byte %d in producer-%d cell", off, b, p)
			}
		}
	}
	for p, c := range counts {
		if c != perProducer {
			t.Fatalf("producer %d: %d cells arrived, want %d", p, c, perProducer)
		}
	}
}

// TestBatchWriterWriteFrames covers the multi-frame enqueue: whole runs
// arrive intact and in order, interleaved runs from concurrent producers
// never tear, and a misaligned buffer is rejected.
func TestBatchWriterWriteFrames(t *testing.T) {
	conn := &recordConn{delay: 100 * time.Microsecond}
	w := NewBatchWriter(conn)

	if err := w.WriteFrames(make([]byte, Size+1)); err == nil {
		t.Fatal("misaligned WriteFrames accepted")
	}

	const producers, runs, runLen = 3, 40, 8
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			run := make([]byte, runLen*Size)
			for r := 0; r < runs; r++ {
				for i := 0; i < runLen; i++ {
					f := run[i*Size:]
					binary.BigEndian.PutUint32(f[0:4], uint32(p))
					// Sequence within the producer rides in the payload.
					binary.BigEndian.PutUint32(WirePayload(f[:Size]), uint32(r*runLen+i))
				}
				if err := w.WriteFrames(run); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	w.Close()

	data, _, _ := conn.snapshot()
	if len(data) != producers*runs*runLen*Size {
		t.Fatalf("got %d bytes, want %d", len(data), producers*runs*runLen*Size)
	}
	next := make([]uint32, producers)
	for off := 0; off < len(data); off += Size {
		f := data[off : off+Size]
		p := WireCircID(f)
		seq := binary.BigEndian.Uint32(WirePayload(f))
		if seq != next[p] {
			t.Fatalf("producer %d: seq %d arrived, want %d (reordered or torn run)", p, seq, next[p])
		}
		next[p]++
	}
}

// TestBatchWriterTryWriteFrame pins the non-blocking contract: Try
// enqueues while there is room, reports false (without blocking or
// dropping) once the writer is maxBatchCells behind, and fails with
// ErrWriterClosed after Close.
func TestBatchWriterTryWriteFrame(t *testing.T) {
	// A conn whose first Write blocks until released, so pending fills.
	release := make(chan struct{})
	conn := &gateConn{release: release}
	w := NewBatchWriter(conn)

	frame := make([]byte, Size)
	// First frame: Try hands to the flusher (never inline), which then
	// blocks in conn.Write holding the spare buffer.
	ok, err := w.TryWriteFrame(frame)
	if !ok || err != nil {
		t.Fatalf("first TryWriteFrame = %v, %v", ok, err)
	}
	// Fill pending to the bound while the flusher is stuck.
	accepted := 1
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok, err := w.TryWriteFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		accepted++
		if time.Now().After(deadline) {
			t.Fatal("TryWriteFrame never reported a full writer")
		}
	}
	if accepted < maxBatchCells {
		t.Fatalf("writer reported full after only %d frames", accepted)
	}
	close(release)
	w.Close()

	data, _, _ := conn.snapshot()
	if len(data) != accepted*Size {
		t.Fatalf("%d frames accepted but %d bytes arrived", accepted, len(data))
	}
	if _, err := w.TryWriteFrame(frame); err != ErrWriterClosed {
		t.Fatalf("TryWriteFrame after Close: %v, want ErrWriterClosed", err)
	}
}

// gateConn blocks every Write until release is closed, then records.
type gateConn struct {
	release <-chan struct{}
	mu      sync.Mutex
	buf     bytes.Buffer
	closed  bool
}

func (c *gateConn) Write(p []byte) (int, error) {
	<-c.release
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *gateConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *gateConn) snapshot() ([]byte, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...), 0, c.closed
}

// TestBatchWriterWriteAfterClose locks in the fail-fast contract.
func TestBatchWriterWriteAfterClose(t *testing.T) {
	w := NewBatchWriter(&recordConn{})
	w.Close()
	if err := w.WriteFrame(make([]byte, Size)); err != ErrWriterClosed {
		t.Fatalf("WriteFrame after Close: %v, want ErrWriterClosed", err)
	}
	if err := w.WriteCell(&Cell{}); err != ErrWriterClosed {
		t.Fatalf("WriteCell after Close: %v, want ErrWriterClosed", err)
	}
	w.Close() // idempotent
}

// TestBatchWriterFlushHistogram checks the telemetry hook: every link
// write (inline or flusher-coalesced) records its size in cells, so the
// histogram's sample count matches the conn's Write calls and its sum
// matches the cells enqueued.
func TestBatchWriterFlushHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	hist := reg.Histogram("relay.flush_cells", obs.BatchBuckets)
	conn := &recordConn{delay: 100 * time.Microsecond}
	w := NewBatchWriterObs(conn, hist)

	const n = 200
	frame := make([]byte, Size)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				if err := w.WriteFrame(frame); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	w.Close()

	_, writes, _ := conn.snapshot()
	if got := hist.Count(); got != int64(writes) {
		t.Errorf("histogram saw %d flushes, conn saw %d writes", got, writes)
	}
	if got := hist.Sum(); got != n {
		t.Errorf("histogram cell sum = %d, want %d", got, n)
	}
	if writes >= n {
		t.Logf("note: no coalescing occurred (%d writes for %d cells)", writes, n)
	}
}
