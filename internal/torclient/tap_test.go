package torclient

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/cell"
)

// fixedClock satisfies the tap's clock dependency.
type fixedClock struct{}

func (fixedClock) Now() time.Duration { return 42 * time.Millisecond }

// chunkConn is a net.Conn whose Write records bytes and whose Read
// serves a preloaded buffer in caller-chosen chunk sizes, emulating a
// link that coalesces and fragments cells arbitrarily.
type chunkConn struct {
	mu      sync.Mutex
	wrote   bytes.Buffer
	toRead  []byte
	chunks  []int // successive Read sizes; last repeats
	chunkIx int
}

func (c *chunkConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wrote.Write(p)
}

func (c *chunkConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.toRead) == 0 {
		return 0, io.EOF
	}
	n := c.chunks[c.chunkIx]
	if c.chunkIx < len(c.chunks)-1 {
		c.chunkIx++
	}
	if n > len(c.toRead) {
		n = len(c.toRead)
	}
	if n > len(p) {
		n = len(p)
	}
	copied := copy(p, c.toRead[:n])
	c.toRead = c.toRead[copied:]
	return copied, nil
}

func (c *chunkConn) Close() error                     { return nil }
func (c *chunkConn) LocalAddr() net.Addr              { return nil }
func (c *chunkConn) RemoteAddr() net.Addr             { return nil }
func (c *chunkConn) SetDeadline(time.Time) error      { return nil }
func (c *chunkConn) SetReadDeadline(time.Time) error  { return nil }
func (c *chunkConn) SetWriteDeadline(time.Time) error { return nil }

// TestTapParityUnderCoalescing locks in the tap's per-cell granularity
// in both directions: cells written through a cell.BatchWriter (which
// coalesces whole cells into single Write calls) and cells read back in
// arbitrary fragment sizes must produce exactly one tap event per cell
// each way.
func TestTapParityUnderCoalescing(t *testing.T) {
	const n = 12

	var mu sync.Mutex
	var outEvents, inEvents int
	tap := func(dir, size int, _ time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if size != cell.Size {
			t.Errorf("tap event size = %d, want %d", size, cell.Size)
		}
		switch dir {
		case +1:
			outEvents++
		case -1:
			inEvents++
		default:
			t.Errorf("tap event dir = %d", dir)
		}
	}

	conn := &chunkConn{}
	tc := &tappedConn{Conn: conn, tap: tap, clock: fixedClock{}}

	// Outbound: a BatchWriter over the tapped conn. Queue all cells
	// behind an in-flight write by enqueueing from several goroutines so
	// at least some Write calls carry multiple coalesced cells.
	w := cell.NewBatchWriter(tc)
	frame := make([]byte, cell.Size)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				if err := w.WriteFrame(frame); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	w.Close()

	// Inbound: replay the written bytes through Read in ragged chunks —
	// bigger than a cell, smaller than a cell, never aligned.
	conn.mu.Lock()
	conn.toRead = append([]byte(nil), conn.wrote.Bytes()...)
	conn.chunks = []int{cell.Size + 100, 37, 3 * cell.Size, 200, 1 << 20}
	conn.mu.Unlock()
	buf := make([]byte, 64*1024)
	for {
		if _, err := tc.Read(buf); err != nil {
			break
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if outEvents != n {
		t.Errorf("outbound tap events = %d, want %d", outEvents, n)
	}
	if inEvents != n {
		t.Errorf("inbound tap events = %d, want %d", inEvents, n)
	}
	if outEvents != inEvents {
		t.Errorf("tap direction parity broken: %d out vs %d in", outEvents, inEvents)
	}
}
