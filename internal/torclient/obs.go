package torclient

import (
	"strings"

	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/obs"
)

// clientMetrics is the torclient's pre-registered telemetry bundle.
// Handles come from the host network's registry at New time; a network
// without telemetry yields nil handles and every update is a no-op.
// Names are shared by all clients on one network, so counts aggregate
// client-wide.
type clientMetrics struct {
	circBuilt      *obs.Counter
	circBuildFails *obs.Counter
	circDeaths     *obs.Counter // abnormal teardowns (DESTROY, severed link, stall)
	relaysMarked   *obs.Counter
	healRetries    *obs.Counter // DialResilient attempts beyond the first

	streamsOpened *obs.Counter
	streamFails   *obs.Counter

	cellsSent *obs.Counter
	cellsRecv *obs.Counter

	buildNs *obs.Histogram // whole-circuit build latency, virtual ns
	hopNs   *obs.Histogram // per-hop extend latency, virtual ns
}

func newClientMetrics(reg *obs.Registry) clientMetrics {
	return clientMetrics{
		circBuilt:      reg.Counter("torclient.circuits_built"),
		circBuildFails: reg.Counter("torclient.circuit_build_failures"),
		circDeaths:     reg.Counter("torclient.circuit_deaths"),
		relaysMarked:   reg.Counter("torclient.relays_marked_bad"),
		healRetries:    reg.Counter("torclient.heal_retries"),
		streamsOpened:  reg.Counter("torclient.streams_opened"),
		streamFails:    reg.Counter("torclient.stream_failures"),
		cellsSent:      reg.Counter("torclient.cells_sent"),
		cellsRecv:      reg.Counter("torclient.cells_received"),
		buildNs:        reg.Histogram("torclient.circuit_build_ns", obs.LatencyBuckets),
		hopNs:          reg.Histogram("torclient.hop_extend_ns", obs.LatencyBuckets),
	}
}

// pathNote renders a circuit path as a short span annotation.
func pathNote(path []*dirauth.Descriptor) string {
	names := make([]string, len(path))
	for i, d := range path {
		names[i] = d.Nickname
	}
	return strings.Join(names, ">")
}
