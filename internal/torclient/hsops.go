package torclient

import (
	"crypto/ed25519"
	"fmt"
	"net"

	"github.com/bento-nfv/bento/internal/cell"
	"github.com/bento-nfv/bento/internal/otr"
)

// Hidden-service operations. The client side establishes rendezvous points
// and sends introductions; the service side establishes intro circuits and
// attaches a service crypto layer to rendezvous circuits. See §2.1 of the
// paper for the protocol outline this follows.

// EstablishRendezvous registers a one-time cookie at the circuit's last
// hop, marking it as this client's rendezvous point.
func (circ *Circuit) EstablishRendezvous(cookie []byte) error {
	data, err := cell.EncodeControl(&cell.EstablishRendezvousPayload{Cookie: cookie})
	if err != nil {
		return err
	}
	if err := circ.send(cell.RelayHeader{Cmd: cell.RelayEstablishRendezvous}, data); err != nil {
		return err
	}
	_, err = circ.awaitCtrl(cell.RelayRendezvousEstablished)
	return err
}

// SendIntroduce1 asks the circuit's last hop (an introduction point) to
// forward inner to the named service, waiting for the acknowledgment.
func (circ *Circuit) SendIntroduce1(serviceID string, inner []byte) error {
	data, err := cell.EncodeControl(&cell.Introduce1Payload{ServiceID: serviceID, Inner: inner})
	if err != nil {
		return err
	}
	if err := circ.send(cell.RelayHeader{Cmd: cell.RelayIntroduce1}, data); err != nil {
		return err
	}
	_, err = circ.awaitCtrl(cell.RelayIntroduceAck)
	return err
}

// AwaitRendezvous2 blocks until the rendezvous point forwards the
// service's handshake reply, returning it.
func (circ *Circuit) AwaitRendezvous2() ([]byte, error) {
	m, err := circ.awaitCtrl(cell.RelayRendezvous2)
	if err != nil {
		return nil, err
	}
	var rv cell.Rendezvous2Payload
	if err := cell.DecodeControl(m.data, &rv); err != nil {
		return nil, err
	}
	return rv.Reply, nil
}

// AttachRendezvousLayer appends the end-to-end service layer to a client
// circuit after a completed rendezvous handshake. Streams opened
// afterwards terminate at the hidden service.
func (circ *Circuit) AttachRendezvousLayer(keys []byte) error {
	layer, err := otr.NewLayer(keys)
	if err != nil {
		return err
	}
	circ.mu.Lock()
	circ.layers = append(circ.layers, layer)
	circ.mu.Unlock()
	return nil
}

// EstablishIntro registers this circuit as an introduction circuit for the
// service identified by priv. onIntroduce2 is invoked with each forwarded
// INTRODUCE2 payload.
func (circ *Circuit) EstablishIntro(priv ed25519.PrivateKey, serviceID string, onIntroduce2 func([]byte)) error {
	sig := ed25519.Sign(priv, []byte("establish-intro:"+serviceID))
	data, err := cell.EncodeControl(&cell.EstablishIntroPayload{ServiceID: serviceID, Signature: sig})
	if err != nil {
		return err
	}
	circ.mu.Lock()
	circ.onIntro2 = onIntroduce2
	circ.mu.Unlock()
	if err := circ.send(cell.RelayHeader{Cmd: cell.RelayEstablishIntro}, data); err != nil {
		return err
	}
	_, err = circ.awaitCtrl(cell.RelayIntroEstablished)
	return err
}

// SendRendezvous1 completes a rendezvous from the service side: the
// circuit's last hop must be the client's rendezvous point. reply is the
// service's ntor CREATED reply, forwarded to the client as RENDEZVOUS2.
func (circ *Circuit) SendRendezvous1(cookie, reply []byte) error {
	data, err := cell.EncodeControl(&cell.Rendezvous1Payload{Cookie: cookie, Reply: reply})
	if err != nil {
		return err
	}
	return circ.send(cell.RelayHeader{Cmd: cell.RelayRendezvous1}, data)
}

// AttachServiceLayer installs the hidden-service side of a completed
// rendezvous handshake on this circuit: cells unrecognized by the
// circuit's own layers are tried against the service layer, and BEGINs
// arriving there are handed to acceptor as net.Conns.
func (circ *Circuit) AttachServiceLayer(keys []byte, acceptor func(net.Conn)) error {
	layer, err := otr.NewLayer(keys)
	if err != nil {
		return err
	}
	circ.mu.Lock()
	circ.svc = &serviceState{
		layer:    layer,
		acceptor: acceptor,
		streams:  make(map[uint16]*Stream),
	}
	circ.mu.Unlock()
	return nil
}

// handleServiceCell processes a relay cell recognized at the service
// layer (called with circ.mu released).
func (circ *Circuit) handleServiceCell(hdr cell.RelayHeader, data []byte) {
	switch hdr.Cmd {
	case cell.RelayBegin:
		s := newStream(circ, hdr.StreamID, true)
		s.connected()
		circ.mu.Lock()
		svc := circ.svc
		if svc != nil {
			svc.streams[hdr.StreamID] = s
		}
		circ.mu.Unlock()
		if svc == nil {
			return
		}
		if err := circ.sendServiceCell(cell.RelayHeader{StreamID: hdr.StreamID, Cmd: cell.RelayConnected}, nil); err != nil {
			return
		}
		go svc.acceptor(s)
	case cell.RelayData:
		circ.mu.Lock()
		var s *Stream
		if circ.svc != nil {
			s = circ.svc.streams[hdr.StreamID]
		}
		circ.mu.Unlock()
		if s != nil {
			s.deliver(data)
		}
	case cell.RelayEnd:
		circ.mu.Lock()
		var s *Stream
		if circ.svc != nil {
			s = circ.svc.streams[hdr.StreamID]
			delete(circ.svc.streams, hdr.StreamID)
		}
		circ.mu.Unlock()
		if s != nil {
			s.deliverEOF()
		}
	case cell.RelayDrop:
		// Cover traffic at the service layer: absorbed.
	}
}

// sendServiceCell originates a cell at the service layer and pushes it
// through the circuit toward the rendezvous point and on to the client.
func (circ *Circuit) sendServiceCell(hdr cell.RelayHeader, data []byte) error {
	circ.mu.Lock()
	svc := circ.svc
	if svc == nil {
		circ.mu.Unlock()
		return fmt.Errorf("torclient: no service layer attached")
	}
	payload := cell.WirePayload(circ.sendWire)
	if err := cell.PackRelay(payload, hdr, data); err != nil {
		circ.mu.Unlock()
		return err
	}
	// The service is the "relay side" of the end-to-end layer: it seals
	// and encrypts in the backward direction, which the client peels as
	// its final onion layer.
	svc.layer.SealBackward(payload, cell.DigestOffset)
	svc.layer.ApplyBackward(payload)

	if circ.isClosed() {
		circ.mu.Unlock()
		return ErrCircuitClosed
	}
	for i := len(circ.layers) - 1; i >= 0; i-- {
		circ.layers[i].ApplyForward(payload)
	}
	cell.SetWireCircID(circ.sendWire, circ.circID)
	cell.SetWireCmd(circ.sendWire, cell.CmdRelay)
	err := circ.w.WriteFrame(circ.sendWire)
	circ.mu.Unlock()
	return err
}

func (circ *Circuit) dropServiceStream(id uint16) {
	circ.mu.Lock()
	if circ.svc != nil {
		delete(circ.svc.streams, id)
	}
	circ.mu.Unlock()
}
