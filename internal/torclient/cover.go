package torclient

import (
	"crypto/rand"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/cell"
)

// CoverPlugin is the client-side half of the Cover function (Figure 3
// shows it inside the user's onion proxy): it keeps a circuit's outbound
// direction transmitting at a fixed rate by sending DROP cells whenever
// the application has nothing to send, complementing the server-side
// cover stream.
type CoverPlugin struct {
	circ     *Circuit
	interval time.Duration

	mu      sync.Mutex
	stopped bool
	done    chan struct{}
	sent    int
}

// StartCover begins fixed-rate outbound padding on the circuit: one
// full-size DROP cell every interval (virtual time) until Stop or circuit
// teardown.
func (circ *Circuit) StartCover(interval time.Duration) *CoverPlugin {
	p := &CoverPlugin{
		circ:     circ,
		interval: interval,
		done:     make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *CoverPlugin) run() {
	clock := p.circ.client.host.Clock()
	junk := make([]byte, cell.MaxRelayData)
	for {
		select {
		case <-p.done:
			return
		case <-p.circ.closed:
			return
		default:
		}
		rand.Read(junk[:32]) // cheap freshness; the cell is discarded anyway
		if err := p.circ.SendDrop(junk); err != nil {
			return
		}
		p.mu.Lock()
		p.sent++
		p.mu.Unlock()
		clock.Sleep(p.interval)
	}
}

// Sent reports how many padding cells have been emitted.
func (p *CoverPlugin) Sent() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// Stop halts the padding stream.
func (p *CoverPlugin) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.stopped {
		p.stopped = true
		close(p.done)
	}
}
