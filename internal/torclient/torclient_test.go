package torclient

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/cell"
	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/otr"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/relay"
	"github.com/bento-nfv/bento/internal/simnet"
)

// testNet is a small Tor overlay for integration tests.
type testNet struct {
	net    *simnet.Network
	auth   *dirauth.Authority
	relays []*relay.Relay
	cons   *dirauth.Consensus
}

// buildTestNet creates nRelays relays (all Guard+Exit+HSDir with accept-all
// policies), a destination web host, and a client host.
func buildTestNet(t testing.TB, nRelays int) *testNet {
	t.Helper()
	n := simnet.NewNetwork(simnet.NewClock(0.0005), 2*time.Millisecond)
	auth, err := dirauth.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	tn := &testNet{net: n, auth: auth}
	for i := 0; i < nRelays; i++ {
		name := fmt.Sprintf("relay%d", i)
		host := n.AddHost(name, 0)
		r, err := relay.New(host, relay.Config{
			Nickname:   name,
			Flags:      []string{dirauth.FlagGuard, dirauth.FlagExit, dirauth.FlagHSDir},
			ExitPolicy: policy.AcceptAll(),
			Quiet:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		d, err := r.Descriptor()
		if err != nil {
			t.Fatal(err)
		}
		if err := auth.Publish(d); err != nil {
			t.Fatal(err)
		}
		tn.relays = append(tn.relays, r)
	}
	cons, err := auth.Consensus()
	if err != nil {
		t.Fatal(err)
	}
	tn.cons = cons
	t.Cleanup(func() {
		for _, r := range tn.relays {
			r.Close()
		}
	})
	return tn
}

// startEcho runs an echo server on a fresh host.
func (tn *testNet) startEcho(t testing.TB, name string, port int) {
	t.Helper()
	h := tn.net.AddHost(name, 0)
	ln, err := h.Listen(port)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
}

func TestThreeHopCircuitEcho(t *testing.T) {
	tn := buildTestNet(t, 4)
	tn.startEcho(t, "web", 80)
	client := New(tn.net.AddHost("client", 0), tn.cons, 1)

	path, err := client.PickPath("web", 80)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := client.BuildCircuit(path)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	if circ.Len() != 3 {
		t.Fatalf("circuit has %d layers, want 3", circ.Len())
	}

	stream, err := circ.OpenStream("web:80")
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("tor stream data "), 200) // multi-cell
	if _, err := stream.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(stream, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echoed data mismatch")
	}
	stream.Close()
}

func TestSingleHopCircuit(t *testing.T) {
	tn := buildTestNet(t, 1)
	tn.startEcho(t, "web", 80)
	client := New(tn.net.AddHost("client", 0), tn.cons, 2)

	circ, err := client.BuildCircuit(tn.cons.Relays[:1])
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	stream, err := circ.OpenStream("web:80")
	if err != nil {
		t.Fatal(err)
	}
	stream.Write([]byte("ping"))
	got := make([]byte, 4)
	if _, err := io.ReadFull(stream, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Fatalf("got %q", got)
	}
}

func TestExitPolicyEnforced(t *testing.T) {
	n := simnet.NewNetwork(simnet.NewClock(0.0005), time.Millisecond)
	auth, _ := dirauth.NewAuthority()
	restrictive, _ := policy.ParseExitPolicy("accept web:80", "reject *:*")
	host := n.AddHost("r0", 0)
	r, err := relay.New(host, relay.Config{
		Nickname:   "r0",
		Flags:      []string{dirauth.FlagGuard, dirauth.FlagExit},
		ExitPolicy: restrictive,
		Quiet:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	d, _ := r.Descriptor()
	auth.Publish(d)
	cons, _ := auth.Consensus()

	// Destination the policy forbids.
	webHost := n.AddHost("forbidden", 0)
	ln, _ := webHost.Listen(80)
	defer ln.Close()

	client := New(n.AddHost("client", 0), cons, 3)
	circ, err := client.BuildCircuit(cons.Relays)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	if _, err := circ.OpenStream("forbidden:80"); err == nil {
		t.Fatal("stream to policy-forbidden destination opened")
	}
}

func TestStreamToUnreachableHost(t *testing.T) {
	tn := buildTestNet(t, 3)
	client := New(tn.net.AddHost("client", 0), tn.cons, 4)
	circ, err := client.BuildCircuit(tn.cons.Relays[:3])
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	if _, err := circ.OpenStream("nonexistent:80"); err == nil {
		t.Fatal("stream to unreachable host opened")
	}
	// Circuit must survive the failed stream.
	tn.startEcho(t, "web2", 80)
	s, err := circ.OpenStream("web2:80")
	if err != nil {
		t.Fatalf("circuit unusable after failed stream: %v", err)
	}
	s.Close()
}

func TestConcurrentStreams(t *testing.T) {
	tn := buildTestNet(t, 3)
	tn.startEcho(t, "web", 80)
	client := New(tn.net.AddHost("client", 0), tn.cons, 5)
	circ, err := client.BuildCircuit(tn.cons.Relays[:3])
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := circ.OpenStream("web:80")
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			msg := bytes.Repeat([]byte{byte('a' + i)}, 5000)
			if _, err := s.Write(msg); err != nil {
				errs <- err
				return
			}
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(s, got); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, msg) {
				errs <- fmt.Errorf("stream %d data corrupted", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSendDrop(t *testing.T) {
	tn := buildTestNet(t, 3)
	tn.startEcho(t, "web", 80)
	client := New(tn.net.AddHost("client", 0), tn.cons, 6)
	circ, err := client.BuildCircuit(tn.cons.Relays[:3])
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()

	// Interleave DROP cells with real traffic; the stream must be
	// unaffected.
	s, err := circ.OpenStream("web:80")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := circ.SendDrop(bytes.Repeat([]byte{0xAB}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s.Write([]byte("real data"))
	got := make([]byte, 9)
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "real data" {
		t.Fatalf("got %q", got)
	}
}

func TestTrafficTapObservesCells(t *testing.T) {
	tn := buildTestNet(t, 3)
	tn.startEcho(t, "web", 80)
	clientHost := tn.net.AddHost("client", 0)
	client := New(clientHost, tn.cons, 7)

	var mu sync.Mutex
	var out, in int
	client.SetTrafficTap(func(dir, size int, _ time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if dir > 0 {
			out += size
		} else {
			in += size
		}
	})

	circ, err := client.BuildCircuit(tn.cons.Relays[:3])
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	s, err := circ.OpenStream("web:80")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 10*cell.MaxRelayData)
	s.Write(payload)
	got := make([]byte, len(payload))
	io.ReadFull(s, got)

	mu.Lock()
	defer mu.Unlock()
	if out < 10*cell.Size || in < 10*cell.Size {
		t.Fatalf("tap saw out=%d in=%d, want ≥%d each", out, in, 10*cell.Size)
	}
	if out%cell.Size != 0 {
		t.Fatalf("outbound bytes %d not cell-aligned", out)
	}
}

func TestCircuitCloseUnblocksStreams(t *testing.T) {
	tn := buildTestNet(t, 3)
	tn.startEcho(t, "web", 80)
	client := New(tn.net.AddHost("client", 0), tn.cons, 8)
	circ, err := client.BuildCircuit(tn.cons.Relays[:3])
	if err != nil {
		t.Fatal(err)
	}
	s, err := circ.OpenStream("web:80")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Read(make([]byte, 1))
		done <- err
	}()
	circ.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read returned nil after circuit close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream read not unblocked by circuit close")
	}
}

// TestManualRendezvous exercises the full hidden-service cell protocol at
// the circuit level: ESTABLISH_INTRO, INTRODUCE1/2, ESTABLISH_RENDEZVOUS,
// RENDEZVOUS1/2, circuit splicing at the RP, and end-to-end streams over
// the spliced circuits.
func TestManualRendezvous(t *testing.T) {
	tn := buildTestNet(t, 5)

	// The "hidden service" side.
	svcHost := tn.net.AddHost("service", 0)
	svcClient := New(svcHost, tn.cons, 100)
	svcPub, svcPriv, _ := ed25519.GenerateKey(rand.Reader)
	serviceID := hex.EncodeToString(svcPub)
	svcOnion, _ := otr.NewOnionKey()

	// Service establishes an intro circuit to relay0.
	introCirc, err := svcClient.BuildCircuit(tn.cons.Relays[:3])
	if err != nil {
		t.Fatal(err)
	}
	defer introCirc.Close()

	introduce2 := make(chan []byte, 1)
	if err := introCirc.EstablishIntro(svcPriv, serviceID, func(data []byte) {
		introduce2 <- data
	}); err != nil {
		t.Fatalf("EstablishIntro: %v", err)
	}

	// Client side: establish a rendezvous point at relay3.
	cliHost := tn.net.AddHost("alice", 0)
	cli := New(cliHost, tn.cons, 101)
	rpDesc := tn.cons.Relay("relay3")
	rendCirc, err := cli.BuildCircuit([]*dirauth.Descriptor{
		tn.cons.Relay("relay4"), tn.cons.Relay("relay1"), rpDesc,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rendCirc.Close()
	cookie := make([]byte, 20)
	rand.Read(cookie)
	if err := rendCirc.EstablishRendezvous(cookie); err != nil {
		t.Fatalf("EstablishRendezvous: %v", err)
	}

	// Client introduces itself via the intro point.
	hs, handshake, err := otr.NewClientHandshake([]byte(serviceID), svcOnion.Public())
	if err != nil {
		t.Fatal(err)
	}
	inner, _ := cell.EncodeControl(&cell.IntroducePlaintext{
		RendezvousAddr: rpDesc.Address,
		RendezvousNick: rpDesc.Nickname,
		Cookie:         cookie,
		Handshake:      handshake,
	})
	// The service's intro circuit ends at relay2, so the client's
	// introduction circuit must terminate there.
	introCliCirc, err := cli.BuildCircuit([]*dirauth.Descriptor{
		tn.cons.Relay("relay4"), tn.cons.Relay("relay0"), tn.cons.Relay("relay2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer introCliCirc.Close()
	if err := introCliCirc.SendIntroduce1(serviceID, inner); err != nil {
		t.Fatalf("SendIntroduce1: %v", err)
	}

	// Service receives INTRODUCE2, completes the service handshake, and
	// meets the client at the RP.
	var intro cell.IntroducePlaintext
	select {
	case data := <-introduce2:
		if err := cell.DecodeControl(data, &intro); err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("INTRODUCE2 never arrived")
	}
	reply, svcKeys, err := otr.ServerHandshake([]byte(serviceID), svcOnion, intro.Handshake)
	if err != nil {
		t.Fatal(err)
	}
	hsCirc, err := svcClient.BuildCircuit([]*dirauth.Descriptor{
		tn.cons.Relay("relay1"), tn.cons.Relay("relay2"), tn.cons.Relay(intro.RendezvousNick),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hsCirc.Close()

	// The service accepts echo sessions at the service layer.
	if err := hsCirc.AttachServiceLayer(svcKeys, func(c net.Conn) {
		defer c.Close()
		io.Copy(c, c)
	}); err != nil {
		t.Fatal(err)
	}
	if err := hsCirc.SendRendezvous1(intro.Cookie, reply); err != nil {
		t.Fatalf("SendRendezvous1: %v", err)
	}

	// Client completes the handshake and opens a stream to the service.
	gotReply, err := rendCirc.AwaitRendezvous2()
	if err != nil {
		t.Fatalf("AwaitRendezvous2: %v", err)
	}
	cliKeys, err := hs.Finish(gotReply)
	if err != nil {
		t.Fatalf("service handshake: %v", err)
	}
	if err := rendCirc.AttachRendezvousLayer(cliKeys); err != nil {
		t.Fatal(err)
	}

	stream, err := rendCirc.OpenStream("service:0")
	if err != nil {
		t.Fatalf("OpenStream over rendezvous: %v", err)
	}
	msg := bytes.Repeat([]byte("hidden service data! "), 100)
	if _, err := stream.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(stream, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("rendezvous stream data mismatch")
	}
	stream.Close()
}

func TestBuildCircuitEmptyPath(t *testing.T) {
	tn := buildTestNet(t, 1)
	client := New(tn.net.AddHost("client", 0), tn.cons, 9)
	if _, err := client.BuildCircuit(nil); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestPickRelay(t *testing.T) {
	tn := buildTestNet(t, 3)
	client := New(tn.net.AddHost("client", 0), tn.cons, 10)
	if d := client.PickRelay(dirauth.FlagGuard); d == nil {
		t.Fatal("no guard picked")
	}
	if d := client.PickRelay("NoSuchFlag"); d != nil {
		t.Fatal("picked relay for unknown flag")
	}
}

func BenchmarkCircuitBuild3Hop(b *testing.B) {
	tn := buildTestNet(b, 4)
	client := New(tn.net.AddHost("bench-client", 0), tn.cons, 99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		circ, err := client.BuildCircuit(tn.cons.Relays[:3])
		if err != nil {
			b.Fatal(err)
		}
		circ.Close()
	}
}

func BenchmarkStreamThroughput3Hop(b *testing.B) {
	tn := buildTestNet(b, 3)
	tn.startEcho(b, "bench-web", 80)
	client := New(tn.net.AddHost("bench-client", 0), tn.cons, 98)
	circ, err := client.BuildCircuit(tn.cons.Relays[:3])
	if err != nil {
		b.Fatal(err)
	}
	defer circ.Close()
	s, err := circ.OpenStream("bench-web:80")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 16*1024)
	got := make([]byte, len(payload))
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Write(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(s, got); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStreamDeadlineNotSticky(t *testing.T) {
	tn := buildTestNet(t, 3)
	tn.startEcho(t, "web", 80)
	client := New(tn.net.AddHost("client", 0), tn.cons, 11)
	circ, err := client.BuildCircuit(tn.cons.Relays[:3])
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	s, err := circ.OpenStream("web:80")
	if err != nil {
		t.Fatal(err)
	}
	// A read with nothing pending times out...
	s.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := s.Read(make([]byte, 1)); err == nil {
		t.Fatal("read did not time out")
	} else if te, ok := err.(interface{ Timeout() bool }); !ok || !te.Timeout() {
		t.Fatalf("got %v, want timeout error", err)
	}
	// ...but clearing the deadline restores the stream.
	s.SetReadDeadline(time.Time{})
	if _, err := s.Write([]byte("alive")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatalf("stream dead after timeout: %v", err)
	}
	if string(got) != "alive" {
		t.Fatalf("got %q", got)
	}
}

// TestSoakManyConcurrentCircuits drives many clients building circuits
// and exchanging data simultaneously through a small relay set — a
// deadlock/livelock shakeout for the relay switching fabric.
func TestSoakManyConcurrentCircuits(t *testing.T) {
	tn := buildTestNet(t, 5)
	tn.startEcho(t, "soak-web", 80)

	const clients = 16
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			cli := New(tn.net.AddHost(fmt.Sprintf("soak%d", i), 0), tn.cons, int64(1000+i))
			for round := 0; round < 3; round++ {
				path, err := cli.PickPath("soak-web", 80)
				if err != nil {
					errs <- err
					return
				}
				circ, err := cli.BuildCircuit(path)
				if err != nil {
					errs <- err
					return
				}
				s, err := circ.OpenStream("soak-web:80")
				if err != nil {
					circ.Close()
					errs <- err
					return
				}
				msg := bytes.Repeat([]byte{byte(i), byte(round)}, 2000)
				if _, err := s.Write(msg); err != nil {
					circ.Close()
					errs <- err
					return
				}
				got := make([]byte, len(msg))
				if _, err := io.ReadFull(s, got); err != nil {
					circ.Close()
					errs <- err
					return
				}
				if !bytes.Equal(got, msg) {
					circ.Close()
					errs <- fmt.Errorf("client %d round %d corrupted", i, round)
					return
				}
				circ.Close()
			}
			errs <- nil
		}(i)
	}
	deadline := time.After(120 * time.Second)
	for i := 0; i < clients; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("soak test deadlocked")
		}
	}
}

func TestCoverPlugin(t *testing.T) {
	tn := buildTestNet(t, 3)
	tn.startEcho(t, "web", 80)
	clientHost := tn.net.AddHost("client", 0)
	client := New(clientHost, tn.cons, 12)

	var mu sync.Mutex
	outCells := 0
	client.SetTrafficTap(func(dir, size int, _ time.Duration) {
		if dir > 0 {
			mu.Lock()
			outCells += size / cell.Size
			mu.Unlock()
		}
	})

	circ, err := client.BuildCircuit(tn.cons.Relays[:3])
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()

	plugin := circ.StartCover(50 * time.Millisecond)
	// Wait in wall time: at this clock scale the virtual interval rounds
	// up to OS timer granularity, so judge emission by real elapsed time.
	time.Sleep(150 * time.Millisecond)
	plugin.Stop()
	sent := plugin.Sent()
	if sent < 5 {
		t.Fatalf("cover plugin sent only %d cells in 2s at 50ms", sent)
	}
	mu.Lock()
	observed := outCells
	mu.Unlock()
	if observed < sent {
		t.Fatalf("tap saw %d outbound cells, plugin claims %d", observed, sent)
	}
	// The circuit still works under and after padding.
	s, err := circ.OpenStream("web:80")
	if err != nil {
		t.Fatal(err)
	}
	s.Write([]byte("hi"))
	got := make([]byte, 2)
	if _, err := io.ReadFull(s, got); err != nil || string(got) != "hi" {
		t.Fatalf("stream broken after cover: %q %v", got, err)
	}
	// Stop is idempotent and halts emission (at most one in-flight cell
	// may land after Stop returns).
	plugin.Stop()
	before := plugin.Sent()
	time.Sleep(30 * time.Millisecond)
	if after := plugin.Sent(); after > before+1 {
		t.Fatalf("plugin kept sending after Stop: %d -> %d", before, after)
	}
}
