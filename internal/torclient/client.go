// Package torclient implements the client side (onion proxy) of the
// emulated Tor overlay: circuit construction by telescoping ntor
// handshakes, anonymous streams, hidden-service rendezvous operations, and
// a traffic tap at the client–guard link used by the website-fingerprinting
// experiments.
package torclient

import (
	"math/rand"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/simnet"
)

// Client is a Tor client bound to an emulated host.
type Client struct {
	host      *simnet.Host
	consensus *dirauth.Consensus
	reg       *obs.Registry
	m         clientMetrics

	mu   sync.Mutex
	rng  *rand.Rand
	tap  TrafficTap
	ctrl time.Duration            // virtual control-cell timeout
	bad  map[string]time.Duration // relay fingerprint -> virtual expiry
}

// TrafficTap observes cells crossing the client–guard link. dir is +1 for
// outbound (client→guard) and -1 for inbound. at is the virtual time of
// the observation. Taps model an adversary sniffing the client's access
// link, as in §7's fingerprinting setup.
type TrafficTap func(dir int, size int, at time.Duration)

// New creates a client. seed makes path selection reproducible.
func New(host *simnet.Host, consensus *dirauth.Consensus, seed int64) *Client {
	reg := host.Network().Obs()
	return &Client{
		host:      host,
		consensus: consensus,
		reg:       reg,
		m:         newClientMetrics(reg),
		rng:       rand.New(rand.NewSource(seed)),
		ctrl:      DefaultCtrlTimeout,
		bad:       make(map[string]time.Duration),
	}
}

// SetCtrlTimeout overrides how long (in virtual time) the client waits
// for circuit-level control responses before declaring the circuit
// stalled. Lower it in fault-injection tests to speed up detection.
func (c *Client) SetCtrlTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.ctrl = d
	}
}

// CtrlTimeout reports the client's virtual control-cell timeout.
func (c *Client) CtrlTimeout() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctrl
}

// Clock returns the virtual clock of the client's host.
func (c *Client) Clock() *simnet.Clock { return c.host.Clock() }

// Host returns the client's emulated host.
func (c *Client) Host() *simnet.Host { return c.host }

// Consensus returns the directory consensus the client is using.
func (c *Client) Consensus() *dirauth.Consensus { return c.consensus }

// SetConsensus replaces the client's consensus (e.g. after a refresh).
func (c *Client) SetConsensus(cons *dirauth.Consensus) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.consensus = cons
}

// SetTrafficTap installs an observer on all subsequently built circuits.
func (c *Client) SetTrafficTap(tap TrafficTap) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tap = tap
}

// PickPath chooses a 3-hop path toward dest ("host:port" semantics) using
// the client's seeded RNG.
func (c *Client) PickPath(destHost string, destPort int) ([]*dirauth.Descriptor, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.consensus.PickPath(c.rng, destHost, destPort)
}

// PickRelay chooses one relay carrying the given flag.
func (c *Client) PickRelay(flag string) *dirauth.Descriptor {
	c.mu.Lock()
	defer c.mu.Unlock()
	pool := c.consensus.WithFlag(flag)
	if len(pool) == 0 {
		return nil
	}
	return pool[c.rng.Intn(len(pool))]
}

// Intn draws from the client's seeded RNG under the client lock (path
// selection can run from concurrent goroutines, e.g. hidden-service
// rendezvous responses).
func (c *Client) Intn(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Intn(n)
}

// Int63 draws a random int63 under the client lock.
func (c *Client) Int63() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Int63()
}
