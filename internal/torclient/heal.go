// Circuit self-healing. The paper's premise is that Bento needs no Tor
// modifications because failures are absorbed above the Tor layer: when a
// relay dies or a circuit stalls, the client notices (DESTROY, severed
// guard link, or a control-cell timeout), remembers which relays were on
// the dead circuit, and rebuilds along a path that avoids them. Avoidance
// is soft — when the consensus is too small to route around the suspects,
// the client falls back to the full relay set rather than failing.
package torclient

import (
	"fmt"
	"net"
	"sort"
	"time"

	"github.com/bento-nfv/bento/internal/dirauth"
)

// DefaultCtrlTimeout is the default virtual-time bound on circuit-level
// control waits (EXTENDED, CONNECTED, rendezvous responses). Emulated
// round trips complete in virtual milliseconds, so this only fires on
// genuinely stalled circuits (e.g. a partitioned link).
const DefaultCtrlTimeout = 10 * time.Minute

// badRelayTTL is how long (virtual) a relay stays on the avoid list after
// being implicated in a circuit failure. Relays recover: a transient
// partition or restart should not blacklist a node forever.
const badRelayTTL = 30 * time.Minute

// healBackoffBase paces rebuild attempts (virtual, doubled per retry).
const healBackoffBase = 100 * time.Millisecond

// MarkRelayBad records a relay as recently failed; path selection avoids
// it until the entry expires.
func (c *Client) MarkRelayBad(fingerprint string) {
	if fingerprint == "" {
		return
	}
	c.m.relaysMarked.Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bad[fingerprint] = c.host.Clock().Now() + badRelayTTL
}

// RelayBad reports whether a relay is currently on the avoid list.
func (c *Client) RelayBad(fingerprint string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.badLocked(fingerprint)
}

func (c *Client) badLocked(fingerprint string) bool {
	exp, ok := c.bad[fingerprint]
	if !ok {
		return false
	}
	if c.host.Clock().Now() >= exp {
		delete(c.bad, fingerprint)
		return false
	}
	return true
}

// badSetLocked prunes expired entries and returns the live avoid set.
func (c *Client) badSetLocked() map[string]bool {
	now := c.host.Clock().Now()
	set := make(map[string]bool, len(c.bad))
	for fp, exp := range c.bad {
		if now >= exp {
			delete(c.bad, fp)
			continue
		}
		set[fp] = true
	}
	return set
}

// noteCircuitFailure marks every hop of an abnormally-dead circuit as
// suspect. The client cannot tell which hop failed from a severed guard
// link alone, so all hops are avoided briefly; innocent relays age off
// via badRelayTTL.
func (c *Client) noteCircuitFailure(circ *Circuit) {
	for _, d := range circ.path {
		c.MarkRelayBad(d.Fingerprint())
	}
}

// FilterHealthy removes relays on the avoid list from pool. When
// avoidance would leave the pool empty, it returns the least-suspect
// relays instead — the ones whose marks expire soonest. A relay that is
// actually down keeps re-marking itself on every failed attempt, pushing
// its expiry ever later, so it stays at the bottom of the preference
// order while innocent bystanders of an old failure age back in first.
func (c *Client) FilterHealthy(pool []*dirauth.Descriptor) []*dirauth.Descriptor {
	c.mu.Lock()
	defer c.mu.Unlock()
	healthy := make([]*dirauth.Descriptor, 0, len(pool))
	for _, d := range pool {
		if !c.badLocked(d.Fingerprint()) {
			healthy = append(healthy, d)
		}
	}
	if len(healthy) == 0 {
		return c.leastSuspectLocked(pool)
	}
	return healthy
}

// leastSuspectLocked orders pool by avoid-list expiry (relays implicated
// longest ago first) and drops the most recently implicated half, keeping
// at least two so a 3-hop path remains possible.
func (c *Client) leastSuspectLocked(pool []*dirauth.Descriptor) []*dirauth.Descriptor {
	sorted := make([]*dirauth.Descriptor, len(pool))
	copy(sorted, pool)
	sort.SliceStable(sorted, func(i, j int) bool {
		ei, ej := c.bad[sorted[i].Fingerprint()], c.bad[sorted[j].Fingerprint()]
		if ei != ej {
			return ei < ej
		}
		return sorted[i].Fingerprint() < sorted[j].Fingerprint()
	})
	keep := len(sorted) - len(sorted)/2
	if keep < 2 {
		keep = len(sorted)
	}
	return sorted[:keep]
}

// PickHealthyPath chooses a 3-hop path toward dest avoiding relays on the
// avoid list, falling back to the full consensus when avoidance leaves no
// viable path.
func (c *Client) PickHealthyPath(destHost string, destPort int) ([]*dirauth.Descriptor, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if skip := c.badSetLocked(); len(skip) > 0 {
		if path, err := c.consensus.Exclude(skip).PickPath(c.rng, destHost, destPort); err == nil {
			return path, nil
		}
		// Avoiding every suspect leaves no route. Forgive the relays
		// marked longest ago (likely bystanders of an old failure) but
		// keep avoiding the freshest suspects — a dead relay re-marks
		// itself on every failed attempt and so stays excluded.
		if fresh := c.freshestBadLocked(skip, len(skip)/2); len(fresh) > 0 {
			if path, err := c.consensus.Exclude(fresh).PickPath(c.rng, destHost, destPort); err == nil {
				return path, nil
			}
		}
	}
	return c.consensus.PickPath(c.rng, destHost, destPort)
}

// freshestBadLocked returns the n most recently marked fingerprints from
// the avoid set.
func (c *Client) freshestBadLocked(skip map[string]bool, n int) map[string]bool {
	if n <= 0 {
		return nil
	}
	fps := make([]string, 0, len(skip))
	for fp := range skip {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool {
		if c.bad[fps[i]] != c.bad[fps[j]] {
			return c.bad[fps[i]] > c.bad[fps[j]]
		}
		return fps[i] < fps[j]
	})
	out := make(map[string]bool, n)
	for _, fp := range fps[:n] {
		out[fp] = true
	}
	return out
}

// DialResilient opens a stream to target ("host:port") via a fresh
// circuit toward destHost:destPort, transparently retrying with new paths
// that avoid relays observed failing. Failed attempts feed the avoid
// list, so retries steer around crashed or partitioned relays. attempts
// <= 0 means the default of 4.
func (c *Client) DialResilient(destHost string, destPort int, target string, attempts int) (net.Conn, *Circuit, error) {
	if attempts <= 0 {
		attempts = 4
	}
	clock := c.host.Clock()
	backoff := healBackoffBase
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.m.healRetries.Inc()
			clock.Sleep(backoff)
			backoff *= 2
		}
		path, err := c.PickHealthyPath(destHost, destPort)
		if err != nil {
			return nil, nil, err // consensus-level failure, not retryable
		}
		circ, err := c.BuildCircuit(path)
		if err != nil {
			lastErr = err
			continue
		}
		conn, err := circ.OpenStream(target)
		if err != nil {
			circ.Close()
			lastErr = err
			continue
		}
		return conn, circ, nil
	}
	return nil, nil, fmt.Errorf("torclient: dial %s failed after %d attempts: %w", target, attempts, lastErr)
}
