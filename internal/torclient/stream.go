package torclient

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/cell"
)

// Stream is an anonymous byte stream carried over a circuit. It implements
// net.Conn. A stream belongs either to a client circuit (data addressed to
// the last hop) or to a hidden service's session (data addressed at the
// service layer).
type Stream struct {
	circ    *Circuit
	id      uint16
	service bool // true when this is the HS side of a rendezvous session

	mu   sync.Mutex
	cond *sync.Cond
	buf  bytes.Buffer
	eof  bool
	err  error
	// Deadlines are stored as virtual instants so all timeout arithmetic
	// lives on the simnet clock; SetReadDeadline/SetWriteDeadline convert
	// their wall-clock arguments at call time.
	rDeadline    time.Duration
	hasRDeadline bool
	wDeadline    time.Duration
	hasWDeadline bool
	ready        chan struct{} // closed on CONNECTED
	readyErr     error
	once         sync.Once
}

func newStream(circ *Circuit, id uint16, service bool) *Stream {
	s := &Stream{circ: circ, id: id, service: service, ready: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// OpenStream opens a stream through the circuit to target ("host:port").
// On a plain circuit the last hop acts as the exit; on a rendezvous
// circuit (after AttachRendezvousLayer) the hidden service receives the
// BEGIN.
func (circ *Circuit) OpenStream(target string) (net.Conn, error) {
	sp := circ.client.reg.StartSpan("stream.open")
	sp.Note(target)
	conn, err := circ.openStream(target)
	if err != nil {
		circ.client.m.streamFails.Inc()
		sp.Fail(err)
	} else {
		circ.client.m.streamsOpened.Inc()
	}
	sp.End()
	return conn, err
}

func (circ *Circuit) openStream(target string) (net.Conn, error) {
	circ.mu.Lock()
	circ.nextStream++
	id := circ.nextStream
	s := newStream(circ, id, false)
	circ.streams[id] = s
	circ.mu.Unlock()

	data, err := cell.EncodeControl(&cell.BeginPayload{Target: target})
	if err != nil {
		return nil, err
	}
	if err := circ.send(cell.RelayHeader{StreamID: id, Cmd: cell.RelayBegin}, data); err != nil {
		circ.dropStream(id)
		return nil, err
	}
	unblock := circ.client.Clock().Blocking()
	defer unblock()
	select {
	case <-s.ready:
		if s.readyErr != nil {
			circ.dropStream(id)
			return nil, s.readyErr
		}
		return s, nil
	case <-circ.closed:
		if cause := circ.Err(); cause != nil {
			return nil, fmt.Errorf("%w: %v", ErrCircuitClosed, cause)
		}
		return nil, ErrCircuitClosed
	case <-circ.client.Clock().After(circ.client.CtrlTimeout()):
		// A BEGIN that never comes back means the circuit is stalled;
		// tear it down so its hops are avoided on the rebuild.
		err := fmt.Errorf("torclient: timeout opening stream to %s", target)
		circ.closeWithReason(err)
		return nil, err
	}
}

func (circ *Circuit) dropStream(id uint16) {
	circ.mu.Lock()
	delete(circ.streams, id)
	circ.mu.Unlock()
}

func (s *Stream) connected() {
	s.once.Do(func() { close(s.ready) })
}

func (s *Stream) deliver(data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf.Write(data)
	s.cond.Broadcast()
}

func (s *Stream) deliverEOF() {
	s.once.Do(func() {
		s.readyErr = errors.New("torclient: stream refused")
		close(s.ready)
	})
	s.mu.Lock()
	s.eof = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Stream) closeWithError(err error) {
	s.once.Do(func() {
		s.readyErr = err
		close(s.ready)
	})
	s.mu.Lock()
	s.err = err
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Read implements net.Conn. A read deadline produces a timeout error for
// the blocked read only; later reads proceed once the deadline is cleared
// or extended, matching net.Conn semantics.
func (s *Stream) Read(p []byte) (int, error) {
	clock := s.circ.client.Clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.buf.Len() > 0 {
			return s.buf.Read(p)
		}
		if s.err != nil {
			return 0, s.err
		}
		if s.eof {
			return 0, io.EOF
		}
		if s.hasRDeadline && clock.Now() >= s.rDeadline {
			return 0, errStreamTimeout
		}
		s.cond.Wait()
	}
}

// Write implements net.Conn, chunking into DATA cells. Client streams
// take the batched path: up to clientBatchCells cells packed, sealed,
// and onion-encrypted per crypto pass (service streams stay per-cell —
// the extra rendezvous layer is driven by the service handler, which
// interleaves sends). The write deadline is checked before each batch:
// a Write that straddles an expiring deadline reports the bytes already
// sent alongside the timeout.
func (s *Stream) Write(p []byte) (int, error) {
	clock := s.circ.client.Clock()
	total := 0
	for len(p) > 0 {
		s.mu.Lock()
		expired := s.hasWDeadline && clock.Now() >= s.wDeadline
		s.mu.Unlock()
		if expired {
			return total, errStreamTimeout
		}
		var n int
		var err error
		if s.service {
			n = len(p)
			if n > cell.MaxRelayData {
				n = cell.MaxRelayData
			}
			err = s.circ.sendServiceCell(cell.RelayHeader{StreamID: s.id, Cmd: cell.RelayData}, p[:n])
		} else {
			n, err = s.circ.sendData(s.id, p)
		}
		if err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

// Close implements net.Conn, sending END upstream.
func (s *Stream) Close() error {
	data, _ := cell.EncodeControl(&cell.EndPayload{Reason: "closed"})
	hdr := cell.RelayHeader{StreamID: s.id, Cmd: cell.RelayEnd}
	if s.service {
		s.circ.sendServiceCell(hdr, data)
		s.circ.dropServiceStream(s.id)
	} else {
		s.circ.send(hdr, data)
		s.circ.dropStream(s.id)
	}
	s.mu.Lock()
	s.eof = true
	s.cond.Broadcast()
	s.mu.Unlock()
	return nil
}

// LocalAddr implements net.Conn.
func (s *Stream) LocalAddr() net.Addr {
	return streamAddr{fmt.Sprintf("circ-%d:%d", s.circ.circID, s.id)}
}

// RemoteAddr implements net.Conn.
func (s *Stream) RemoteAddr() net.Addr { return streamAddr{"tor-stream"} }

// SetDeadline implements net.Conn, covering both reads and writes.
func (s *Stream) SetDeadline(t time.Time) error {
	if err := s.SetReadDeadline(t); err != nil {
		return err
	}
	return s.SetWriteDeadline(t)
}

// virtualDeadline converts a wall-clock deadline into a virtual instant
// on the simnet clock. Callers pass wall times (the net.Conn contract);
// internally all waits live in the virtual domain.
func (s *Stream) virtualDeadline(t time.Time) (time.Duration, time.Duration) {
	clock := s.circ.client.Clock()
	wall := time.Until(t)
	if wall < 0 {
		wall = 0
	}
	v := clock.Virtual(wall)
	return clock.Now() + v, v
}

// SetReadDeadline implements net.Conn.
func (s *Stream) SetReadDeadline(t time.Time) error {
	clock := s.circ.client.Clock()
	var wake time.Duration
	s.mu.Lock()
	if t.IsZero() {
		s.hasRDeadline = false
	} else {
		s.hasRDeadline = true
		s.rDeadline, wake = s.virtualDeadline(t)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if !t.IsZero() {
		clock.AfterFunc(wake, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
	}
	return nil
}

// SetWriteDeadline implements net.Conn. Stream writes are paced by the
// emulated egress link, so a deadline matters when chaos severs a path
// mid-write; it is checked before each DATA cell.
func (s *Stream) SetWriteDeadline(t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.IsZero() {
		s.hasWDeadline = false
		return nil
	}
	s.hasWDeadline = true
	s.wDeadline, _ = s.virtualDeadline(t)
	return nil
}

var errStreamTimeout = timeoutError{}

type timeoutError struct{}

func (timeoutError) Error() string   { return "torclient: stream read timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

type streamAddr struct{ s string }

func (a streamAddr) Network() string { return "tor" }
func (a streamAddr) String() string  { return a.s }
