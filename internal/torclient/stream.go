package torclient

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/cell"
)

// Stream is an anonymous byte stream carried over a circuit. It implements
// net.Conn. A stream belongs either to a client circuit (data addressed to
// the last hop) or to a hidden service's session (data addressed at the
// service layer).
type Stream struct {
	circ    *Circuit
	id      uint16
	service bool // true when this is the HS side of a rendezvous session

	mu       sync.Mutex
	cond     *sync.Cond
	buf      bytes.Buffer
	eof      bool
	err      error
	deadline time.Time
	ready    chan struct{} // closed on CONNECTED
	readyErr error
	once     sync.Once
}

func newStream(circ *Circuit, id uint16, service bool) *Stream {
	s := &Stream{circ: circ, id: id, service: service, ready: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// OpenStream opens a stream through the circuit to target ("host:port").
// On a plain circuit the last hop acts as the exit; on a rendezvous
// circuit (after AttachRendezvousLayer) the hidden service receives the
// BEGIN.
func (circ *Circuit) OpenStream(target string) (net.Conn, error) {
	circ.mu.Lock()
	circ.nextStream++
	id := circ.nextStream
	s := newStream(circ, id, false)
	circ.streams[id] = s
	circ.mu.Unlock()

	data, err := cell.EncodeControl(&cell.BeginPayload{Target: target})
	if err != nil {
		return nil, err
	}
	if err := circ.send(cell.RelayHeader{StreamID: id, Cmd: cell.RelayBegin}, data); err != nil {
		circ.dropStream(id)
		return nil, err
	}
	select {
	case <-s.ready:
		if s.readyErr != nil {
			circ.dropStream(id)
			return nil, s.readyErr
		}
		return s, nil
	case <-circ.closed:
		return nil, ErrCircuitClosed
	case <-time.After(ctrlTimeout):
		circ.dropStream(id)
		return nil, fmt.Errorf("torclient: timeout opening stream to %s", target)
	}
}

func (circ *Circuit) dropStream(id uint16) {
	circ.mu.Lock()
	delete(circ.streams, id)
	circ.mu.Unlock()
}

func (s *Stream) connected() {
	s.once.Do(func() { close(s.ready) })
}

func (s *Stream) deliver(data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf.Write(data)
	s.cond.Broadcast()
}

func (s *Stream) deliverEOF() {
	s.once.Do(func() {
		s.readyErr = errors.New("torclient: stream refused")
		close(s.ready)
	})
	s.mu.Lock()
	s.eof = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Stream) closeWithError(err error) {
	s.once.Do(func() {
		s.readyErr = err
		close(s.ready)
	})
	s.mu.Lock()
	s.err = err
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Read implements net.Conn. A read deadline produces a timeout error for
// the blocked read only; later reads proceed once the deadline is cleared
// or extended, matching net.Conn semantics.
func (s *Stream) Read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.buf.Len() > 0 {
			return s.buf.Read(p)
		}
		if s.err != nil {
			return 0, s.err
		}
		if s.eof {
			return 0, io.EOF
		}
		if !s.deadline.IsZero() && !time.Now().Before(s.deadline) {
			return 0, errStreamTimeout
		}
		s.cond.Wait()
	}
}

// Write implements net.Conn, chunking into DATA cells.
func (s *Stream) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > cell.MaxRelayData {
			n = cell.MaxRelayData
		}
		hdr := cell.RelayHeader{StreamID: s.id, Cmd: cell.RelayData}
		var err error
		if s.service {
			err = s.circ.sendServiceCell(hdr, p[:n])
		} else {
			err = s.circ.send(hdr, p[:n])
		}
		if err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

// Close implements net.Conn, sending END upstream.
func (s *Stream) Close() error {
	data, _ := cell.EncodeControl(&cell.EndPayload{Reason: "closed"})
	hdr := cell.RelayHeader{StreamID: s.id, Cmd: cell.RelayEnd}
	if s.service {
		s.circ.sendServiceCell(hdr, data)
		s.circ.dropServiceStream(s.id)
	} else {
		s.circ.send(hdr, data)
		s.circ.dropStream(s.id)
	}
	s.mu.Lock()
	s.eof = true
	s.cond.Broadcast()
	s.mu.Unlock()
	return nil
}

// LocalAddr implements net.Conn.
func (s *Stream) LocalAddr() net.Addr {
	return streamAddr{fmt.Sprintf("circ-%d:%d", s.circ.circID, s.id)}
}

// RemoteAddr implements net.Conn.
func (s *Stream) RemoteAddr() net.Addr { return streamAddr{"tor-stream"} }

// SetDeadline implements net.Conn (reads only; writes are paced upstream).
func (s *Stream) SetDeadline(t time.Time) error { return s.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (s *Stream) SetReadDeadline(t time.Time) error {
	s.mu.Lock()
	s.deadline = t
	s.cond.Broadcast()
	s.mu.Unlock()
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		time.AfterFunc(d, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
	}
	return nil
}

// SetWriteDeadline implements net.Conn as a no-op.
func (s *Stream) SetWriteDeadline(time.Time) error { return nil }

var errStreamTimeout = timeoutError{}

type timeoutError struct{}

func (timeoutError) Error() string   { return "torclient: stream read timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

type streamAddr struct{ s string }

func (a streamAddr) Network() string { return "tor" }
func (a streamAddr) String() string  { return a.s }
