package torclient

import (
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/simnet"
)

func TestBadRelayExpiry(t *testing.T) {
	n := simnet.NewNetwork(simnet.NewClock(0.0002), time.Millisecond)
	c := New(n.AddHost("client", 0), &dirauth.Consensus{}, 1)
	c.MarkRelayBad("feedface")
	if !c.RelayBad("feedface") {
		t.Fatal("relay not bad right after marking")
	}
	c.Clock().Sleep(badRelayTTL + time.Minute)
	if c.RelayBad("feedface") {
		t.Fatal("bad-relay entry did not expire after its TTL")
	}
}

func TestFilterHealthyFallsBackWhenAllBad(t *testing.T) {
	tn := buildTestNet(t, 3)
	client := New(tn.net.AddHost("client", 0), tn.cons, 2)
	for _, d := range tn.cons.Relays {
		client.MarkRelayBad(d.Fingerprint())
	}
	// Re-mark one relay later: it becomes the freshest suspect, and the
	// least-suspect fallback must be the one dropping it.
	tn.net.Clock().Sleep(time.Minute)
	worst := tn.cons.Relays[1]
	client.MarkRelayBad(worst.Fingerprint())
	pool := client.FilterHealthy(tn.cons.Relays)
	if len(pool) != 2 {
		t.Fatalf("FilterHealthy with every relay bad returned %d of %d; want the least-suspect 2",
			len(pool), len(tn.cons.Relays))
	}
	for _, d := range pool {
		if d == worst {
			t.Fatal("least-suspect fallback kept the freshest suspect")
		}
	}
	// With one healthy relay the filter should narrow to it.
	client2 := New(tn.net.AddHost("client2", 0), tn.cons, 2)
	for _, d := range tn.cons.Relays[1:] {
		client2.MarkRelayBad(d.Fingerprint())
	}
	pool = client2.FilterHealthy(tn.cons.Relays)
	if len(pool) != 1 || pool[0] != tn.cons.Relays[0] {
		t.Fatalf("FilterHealthy kept %d relays, want exactly the healthy one", len(pool))
	}
}

func TestPickHealthyPathAvoidsBadRelays(t *testing.T) {
	tn := buildTestNet(t, 6)
	client := New(tn.net.AddHost("client", 0), tn.cons, 3)
	bad := tn.cons.Relays[0]
	client.MarkRelayBad(bad.Fingerprint())
	for i := 0; i < 50; i++ {
		path, err := client.PickHealthyPath("web", 80)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range path {
			if d.Fingerprint() == bad.Fingerprint() {
				t.Fatalf("iteration %d: path includes avoided relay %s", i, d.Nickname)
			}
		}
	}
	// All bad: avoidance must fall back to the full consensus, not fail.
	for _, d := range tn.cons.Relays {
		client.MarkRelayBad(d.Fingerprint())
	}
	if _, err := client.PickHealthyPath("web", 80); err != nil {
		t.Fatalf("PickHealthyPath with all relays bad: %v", err)
	}
}

// TestRelayCrashMidStreamHeals covers the self-healing loop end to end: a
// relay crash mid-stream surfaces as a prompt stream error (not a hang),
// the crashed relay lands on the avoid list, and a rebuilt circuit that
// excludes it completes a second fetch.
func TestRelayCrashMidStreamHeals(t *testing.T) {
	tn := buildTestNet(t, 7)
	tn.startEcho(t, "web", 80)
	client := New(tn.net.AddHost("client", 0), tn.cons, 5)

	conn, circ, err := client.DialResilient("web", 80, "web:80", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 16)
	if _, err := conn.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAtLeast(conn, buf, 5); err != nil {
		t.Fatalf("echo before crash: %v", err)
	}

	// Crash the middle relay while the stream is live.
	crashed := circ.Path()[1]
	tn.relays[relayIndex(t, crashed.Nickname)].Crash()

	// The stream must fail promptly — the guard relays a DESTROY as soon
	// as its downstream link drops. The deadline is a generous upper
	// bound; hitting it means the failure was a silent hang.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err = conn.Read(buf)
	if err == nil {
		t.Fatal("read succeeded on a circuit through a crashed relay")
	}
	if to, ok := err.(interface{ Timeout() bool }); ok && to.Timeout() {
		t.Fatalf("stream hung after relay crash instead of erroring: %v", err)
	}
	if circ.Err() == nil {
		t.Fatal("circuit reports no failure cause after relay crash")
	}
	if !client.RelayBad(crashed.Fingerprint()) {
		t.Fatalf("crashed relay %s not on avoid list", crashed.Nickname)
	}

	// Rebuild and refetch. The new path must exclude the crashed relay
	// (7 relays, at most 3 suspects: avoidance never needs the fallback).
	conn2, circ2, err := client.DialResilient("web", 80, "web:80", 0)
	if err != nil {
		t.Fatalf("rebuild after crash: %v", err)
	}
	defer conn2.Close()
	defer circ2.Close()
	for _, d := range circ2.Path() {
		if d.Fingerprint() == crashed.Fingerprint() {
			t.Fatalf("rebuilt circuit reuses crashed relay %s", d.Nickname)
		}
	}
	if _, err := conn2.Write([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAtLeast(conn2, buf, 6); err != nil {
		t.Fatalf("echo after heal: %v", err)
	}
}

// TestDialResilientRoutesAroundCrashes pre-crashes two of five relays and
// checks that resilient dialing converges on the surviving three.
func TestDialResilientRoutesAroundCrashes(t *testing.T) {
	tn := buildTestNet(t, 5)
	tn.startEcho(t, "web", 80)
	client := New(tn.net.AddHost("client", 0), tn.cons, 4)
	client.SetCtrlTimeout(30 * time.Second) // virtual; speeds stall detection
	tn.relays[0].Crash()
	tn.relays[1].Crash()

	conn, circ, err := client.DialResilient("web", 80, "web:80", 8)
	if err != nil {
		t.Fatalf("DialResilient with 2/5 relays down: %v", err)
	}
	defer conn.Close()
	defer circ.Close()
	for _, d := range circ.Path() {
		if d.Nickname == "relay0" || d.Nickname == "relay1" {
			t.Fatalf("path uses crashed relay %s", d.Nickname)
		}
	}
	if _, err := conn.Write([]byte("alive")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := io.ReadAtLeast(conn, buf, 5); err != nil {
		t.Fatalf("echo through healed path: %v", err)
	}
}

// TestStreamWriteDeadline exercises the write-deadline path: an expired
// deadline fails the write with a timeout error, and clearing it restores
// writes.
func TestStreamWriteDeadline(t *testing.T) {
	tn := buildTestNet(t, 4)
	tn.startEcho(t, "web", 80)
	client := New(tn.net.AddHost("client", 0), tn.cons, 6)
	conn, circ, err := client.DialResilient("web", 80, "web:80", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	defer circ.Close()

	conn.SetWriteDeadline(time.Now().Add(-time.Second))
	if _, err := conn.Write([]byte("late")); err == nil {
		t.Fatal("write succeeded past its deadline")
	} else if to, ok := err.(interface{ Timeout() bool }); !ok || !to.Timeout() {
		t.Fatalf("expired write deadline returned %v, want a timeout error", err)
	}
	conn.SetWriteDeadline(time.Time{})
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatalf("write after clearing deadline: %v", err)
	}
	buf := make([]byte, 8)
	if _, err := io.ReadAtLeast(conn, buf, 4); err != nil {
		t.Fatal(err)
	}
}

func relayIndex(t *testing.T, nickname string) int {
	t.Helper()
	var idx int
	if _, err := fmt.Sscanf(nickname, "relay%d", &idx); err != nil {
		t.Fatalf("unexpected relay nickname %q", nickname)
	}
	return idx
}
