package torclient

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/cell"
	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/otr"
)

// ErrCircuitClosed is returned by operations on a closed circuit.
var ErrCircuitClosed = errors.New("torclient: circuit closed")

// ctrlMsg is a control relay cell routed to a waiting operation.
type ctrlMsg struct {
	hop  int
	hdr  cell.RelayHeader
	data []byte
}

// serviceState is the hidden-service side of a rendezvous circuit: one
// extra crypto layer shared end-to-end with the connecting client, plus an
// acceptor invoked for each BEGIN arriving at that layer.
type serviceState struct {
	layer    *otr.Layer
	acceptor func(net.Conn)
	streams  map[uint16]*Stream
}

// Circuit is a client-built onion circuit.
type Circuit struct {
	client *Client
	conn   net.Conn
	w      *cell.BatchWriter // batched writer over conn (guard link)
	circID uint32
	path   []*dirauth.Descriptor

	// mu guards layer crypto state, conn writes, and stream bookkeeping.
	// Crypto must advance in exactly wire order, so encryption and the
	// write it precedes happen under one critical section.
	mu sync.Mutex
	// sendWire is the reused outbound frame, guarded by mu: every relay
	// cell is packed, sealed, and onion-encrypted in place here and put
	// on the wire with a single conn.Write (which copies synchronously).
	sendWire []byte
	// batchWire/batchViews/scratch are the reused buffers of the batched
	// data path (sendData): up to clientBatchCells DATA cells packed into
	// one contiguous run, onion-encrypted with a single keystream pass
	// per layer, and handed to the link writer in one call. Lazily
	// allocated — circuits that never carry bulk data never pay for them.
	batchWire  []byte
	batchViews [][]byte
	scratch    otr.CryptScratch
	layers     []*otr.Layer
	streams    map[uint16]*Stream
	nextStream uint16
	svc        *serviceState
	onIntro2   func(data []byte)

	ctrl      chan ctrlMsg
	closed    chan struct{}
	closeOnce sync.Once
	reason    error // why the circuit died; written before closed is closed

	// buildSpan parents per-hop extend spans while BuildCircuit runs.
	// Touched only by the building goroutine; nil once the build returns.
	buildSpan *obs.SpanHandle
}

// BuildCircuit constructs a circuit along the given path, performing the
// CREATE handshake with the first relay and telescoping EXTENDs to the
// rest.
func (c *Client) BuildCircuit(path []*dirauth.Descriptor) (*Circuit, error) {
	sp := c.reg.StartSpan("circuit.build")
	sp.Note(pathNote(path))
	start := c.host.Clock().Now()
	circ, err := c.buildCircuit(path, &sp)
	if err != nil {
		c.m.circBuildFails.Inc()
		sp.Fail(err)
	} else {
		c.m.circBuilt.Inc()
		c.m.buildNs.ObserveDuration(c.host.Clock().Now() - start)
	}
	sp.End()
	return circ, err
}

func (c *Client) buildCircuit(path []*dirauth.Descriptor, sp *obs.SpanHandle) (*Circuit, error) {
	if len(path) == 0 {
		return nil, errors.New("torclient: empty path")
	}
	conn, err := c.host.Dial(path[0].Address)
	if err != nil {
		c.MarkRelayBad(path[0].Fingerprint())
		return nil, fmt.Errorf("torclient: dialing guard %s: %w", path[0].Nickname, err)
	}
	c.mu.Lock()
	circID := uint32(c.rng.Int63())<<1 | 1
	tap := c.tap
	c.mu.Unlock()

	if tap != nil {
		conn = &tappedConn{Conn: conn, tap: tap, clock: c.host.Clock()}
	}

	// CREATE/CREATED with the guard, synchronously (dispatcher not yet
	// running).
	guardSpan := sp.Child("circuit.hop")
	guardSpan.Note(path[0].Nickname)
	guardStart := c.host.Clock().Now()
	hs, msg, err := otr.NewClientHandshake([]byte(path[0].Fingerprint()), path[0].OnionKey)
	if err != nil {
		conn.Close()
		return nil, err
	}
	create := &cell.Cell{CircID: circID, Cmd: cell.CmdCreate}
	copy(create.Payload[:], msg)
	if err := cell.Write(conn, create); err != nil {
		conn.Close()
		guardSpan.Fail(err)
		guardSpan.End()
		return nil, err
	}
	created, err := cell.Read(conn)
	if err != nil || created.Cmd != cell.CmdCreated {
		conn.Close()
		c.MarkRelayBad(path[0].Fingerprint())
		err = fmt.Errorf("torclient: CREATE to %s failed", path[0].Nickname)
		guardSpan.Fail(err)
		guardSpan.End()
		return nil, err
	}
	keys, err := hs.Finish(created.Payload[:otr.PublicKeyLen+otr.AuthLen])
	if err != nil {
		conn.Close()
		err = fmt.Errorf("torclient: guard handshake: %w", err)
		guardSpan.Fail(err)
		guardSpan.End()
		return nil, err
	}
	layer, err := otr.NewLayer(keys)
	if err != nil {
		conn.Close()
		guardSpan.Fail(err)
		guardSpan.End()
		return nil, err
	}
	c.m.hopNs.ObserveDuration(c.host.Clock().Now() - guardStart)
	guardSpan.End()

	circ := &Circuit{
		client:   c,
		conn:     conn,
		w:        cell.NewBatchWriter(conn),
		circID:   circID,
		path:     path[:1],
		sendWire: make([]byte, cell.Size),
		layers:   []*otr.Layer{layer},
		streams:  make(map[uint16]*Stream),
		ctrl:     make(chan ctrlMsg, 64),
		closed:   make(chan struct{}),
	}
	go circ.dispatch()

	circ.buildSpan = sp
	for _, hop := range path[1:] {
		if err := circ.Extend(hop); err != nil {
			// The hop we were extending toward is the prime suspect: the
			// built prefix already proved itself by relaying the EXTEND.
			c.MarkRelayBad(hop.Fingerprint())
			circ.buildSpan = nil
			circ.Close()
			return nil, err
		}
	}
	circ.buildSpan = nil
	return circ, nil
}

// Path returns the descriptors of the circuit's hops.
func (circ *Circuit) Path() []*dirauth.Descriptor { return circ.path }

// Done returns a channel closed when the circuit is torn down.
func (circ *Circuit) Done() <-chan struct{} { return circ.closed }

// Len returns the number of onion layers (including a rendezvous layer, if
// attached).
func (circ *Circuit) Len() int {
	circ.mu.Lock()
	defer circ.mu.Unlock()
	return len(circ.layers)
}

// Extend telescopes the circuit by one hop.
func (circ *Circuit) Extend(hop *dirauth.Descriptor) error {
	var sp obs.SpanHandle
	if circ.buildSpan != nil {
		sp = circ.buildSpan.Child("circuit.hop")
	} else {
		sp = circ.client.reg.StartSpan("circuit.hop")
	}
	sp.Note(hop.Nickname)
	start := circ.client.Clock().Now()
	err := circ.extend(hop)
	if err != nil {
		sp.Fail(err)
	} else {
		circ.client.m.hopNs.ObserveDuration(circ.client.Clock().Now() - start)
	}
	sp.End()
	return err
}

func (circ *Circuit) extend(hop *dirauth.Descriptor) error {
	hs, msg, err := otr.NewClientHandshake([]byte(hop.Fingerprint()), hop.OnionKey)
	if err != nil {
		return err
	}
	data, err := cell.EncodeControl(&cell.ExtendPayload{
		Addr:        hop.Address,
		Fingerprint: hop.Fingerprint(),
		Handshake:   msg,
	})
	if err != nil {
		return err
	}
	if err := circ.send(cell.RelayHeader{Cmd: cell.RelayExtend}, data); err != nil {
		return err
	}
	msgIn, err := circ.awaitCtrl(cell.RelayExtended)
	if err != nil {
		return fmt.Errorf("torclient: extending to %s: %w", hop.Nickname, err)
	}
	var ext cell.ExtendedPayload
	if err := cell.DecodeControl(msgIn.data, &ext); err != nil {
		return err
	}
	keys, err := hs.Finish(ext.Reply)
	if err != nil {
		return fmt.Errorf("torclient: handshake with %s: %w", hop.Nickname, err)
	}
	layer, err := otr.NewLayer(keys)
	if err != nil {
		return err
	}
	circ.mu.Lock()
	circ.layers = append(circ.layers, layer)
	circ.mu.Unlock()
	circ.path = append(circ.path, hop)
	return nil
}

// send packs and onion-encrypts a relay cell addressed to the last hop.
func (circ *Circuit) send(hdr cell.RelayHeader, data []byte) error {
	circ.mu.Lock()
	defer circ.mu.Unlock()
	return circ.sendLocked(hdr, data)
}

func (circ *Circuit) sendLocked(hdr cell.RelayHeader, data []byte) error {
	if circ.isClosed() {
		return ErrCircuitClosed
	}
	payload := cell.WirePayload(circ.sendWire)
	if err := cell.PackRelay(payload, hdr, data); err != nil {
		return err
	}
	target := len(circ.layers) - 1
	otr.OnionEncrypt(circ.layers, target, payload, cell.DigestOffset)
	cell.SetWireCircID(circ.sendWire, circ.circID)
	cell.SetWireCmd(circ.sendWire, cell.CmdRelay)
	circ.client.m.cellsSent.Inc()
	return circ.w.WriteFrame(circ.sendWire)
}

// clientBatchCells sizes the batched data path: one Stream.Write turns
// into runs of up to this many DATA cells encrypted per crypto pass.
// It matches the relay's backward batch so both directions amortize the
// same way.
const clientBatchCells = 16

// sendData packs up to clientBatchCells DATA cells from p into the
// reused contiguous batch buffer, onion-encrypts the whole run with one
// batched keystream pass per layer (byte-identical to per-cell sends),
// and hands it to the guard-link writer in a single call. It consumes
// at most one batch so callers can re-check write deadlines between
// batches, and returns the number of bytes taken from p.
func (circ *Circuit) sendData(streamID uint16, p []byte) (int, error) {
	circ.mu.Lock()
	defer circ.mu.Unlock()
	if circ.isClosed() {
		return 0, ErrCircuitClosed
	}
	if circ.batchWire == nil {
		circ.batchWire = make([]byte, clientBatchCells*cell.Size)
		circ.batchViews = make([][]byte, 0, clientBatchCells)
	}
	hdr := cell.RelayHeader{StreamID: streamID, Cmd: cell.RelayData}
	views := circ.batchViews[:0]
	n, used := 0, 0
	for used < len(p) && n < clientBatchCells {
		chunk := p[used:]
		if len(chunk) > cell.MaxRelayData {
			chunk = chunk[:cell.MaxRelayData]
		}
		frame := circ.batchWire[n*cell.Size : (n+1)*cell.Size]
		payload := cell.WirePayload(frame)
		if err := cell.PackRelay(payload, hdr, chunk); err != nil {
			return 0, err
		}
		cell.SetWireCircID(frame, circ.circID)
		cell.SetWireCmd(frame, cell.CmdRelay)
		views = append(views, payload)
		used += len(chunk)
		n++
	}
	circ.batchViews = views
	otr.OnionCryptBatch(circ.layers, len(circ.layers)-1, views, cell.DigestOffset, &circ.scratch)
	circ.client.m.cellsSent.Add(int64(n))
	if err := circ.w.WriteFrames(circ.batchWire[:n*cell.Size]); err != nil {
		return 0, err
	}
	return used, nil
}

// SendDrop sends a long-range padding cell addressed to the last hop,
// carrying len junk bytes (capped at the cell data size). Used for
// client-originated cover traffic.
func (circ *Circuit) SendDrop(junk []byte) error {
	if len(junk) > cell.MaxRelayData {
		junk = junk[:cell.MaxRelayData]
	}
	return circ.send(cell.RelayHeader{Cmd: cell.RelayDrop}, junk)
}

func (circ *Circuit) isClosed() bool {
	select {
	case <-circ.closed:
		return true
	default:
		return false
	}
}

// Close destroys the circuit (a deliberate local teardown; no hop is
// blamed).
func (circ *Circuit) Close() error { return circ.closeWithReason(nil) }

// closeWithReason tears the circuit down, recording cause when the death
// was abnormal. An abnormal death feeds every hop into the client's
// avoid list — the client cannot tell which hop failed from its side of
// the guard link, so all are briefly suspect.
func (circ *Circuit) closeWithReason(cause error) error {
	circ.closeOnce.Do(func() {
		circ.reason = cause
		close(circ.closed)
		circ.w.WriteCell(&cell.Cell{CircID: circ.circID, Cmd: cell.CmdDestroy})
		circ.w.Close() // flushes the DESTROY, then closes the guard link
		circ.conn.Close()
		circ.mu.Lock()
		streams := circ.streams
		circ.streams = map[uint16]*Stream{}
		var svcStreams map[uint16]*Stream
		if circ.svc != nil {
			svcStreams = circ.svc.streams
			circ.svc.streams = map[uint16]*Stream{}
		}
		circ.mu.Unlock()
		streamErr := ErrCircuitClosed
		if cause != nil {
			streamErr = fmt.Errorf("%w: %v", ErrCircuitClosed, cause)
			circ.client.m.circDeaths.Inc()
			circ.client.noteCircuitFailure(circ)
		}
		for _, s := range streams {
			s.closeWithError(streamErr)
		}
		for _, s := range svcStreams {
			s.closeWithError(streamErr)
		}
	})
	return nil
}

// Err reports why the circuit died: nil while it is alive or after a
// clean local Close, non-nil after an abnormal death (DESTROY from a
// relay, severed guard link, stalled control cell).
func (circ *Circuit) Err() error {
	if !circ.isClosed() {
		return nil
	}
	return circ.reason
}

// dispatch reads cells from the guard link and routes them. It runs on a
// single reused wire buffer: every consumer of cell data either copies
// synchronously (stream delivery into a bytes.Buffer, control handlers)
// or is handed an explicit copy (ctrl channel, INTRODUCE2 callback), so
// the buffer is safe to reuse the moment handleRelay returns.
func (circ *Circuit) dispatch() {
	wire := make([]byte, cell.Size)
	for {
		if err := cell.ReadWire(circ.conn, wire); err != nil {
			if circ.isClosed() {
				circ.Close() // local teardown already won the race
			} else {
				circ.closeWithReason(fmt.Errorf("torclient: guard link lost: %v", err))
			}
			return
		}
		circ.client.m.cellsRecv.Inc()
		switch cell.WireCmd(wire) {
		case cell.CmdDestroy:
			circ.closeWithReason(errors.New("torclient: circuit destroyed by relay"))
			return
		case cell.CmdRelay:
			circ.handleRelay(cell.WirePayload(wire))
		}
	}
}

// handleRelay routes one inbound relay payload (aliasing the dispatch
// read buffer; valid only until return).
func (circ *Circuit) handleRelay(payload []byte) {
	circ.mu.Lock()
	hop := otr.OnionDecrypt(circ.layers, payload, cell.RecognizedOffset, cell.DigestOffset)
	if hop < 0 && circ.svc != nil {
		// Possibly a cell at the service layer from a rendezvous client.
		circ.svc.layer.ApplyForward(payload)
		if cell.Recognized(payload) && circ.svc.layer.VerifyForward(payload, cell.DigestOffset) {
			hdr, data, err := cell.ParseRelay(payload)
			circ.mu.Unlock()
			if err == nil {
				circ.handleServiceCell(hdr, data)
			}
			return
		}
	}
	if hop < 0 {
		circ.mu.Unlock()
		return // garbled or stray cell; drop
	}
	hdr, data, err := cell.ParseRelay(payload)
	if err != nil {
		circ.mu.Unlock()
		return
	}
	switch hdr.Cmd {
	case cell.RelayData:
		s := circ.streams[hdr.StreamID]
		circ.mu.Unlock()
		if s != nil {
			s.deliver(data)
		}
	case cell.RelayEnd:
		s := circ.streams[hdr.StreamID]
		delete(circ.streams, hdr.StreamID)
		circ.mu.Unlock()
		if s != nil {
			if hdr.StreamID != 0 {
				s.deliverEOF()
			}
		} else if hdr.StreamID == 0 {
			// Control-level END (e.g. introduce failure): surface it.
			select {
			case circ.ctrl <- ctrlMsg{hop: hop, hdr: hdr, data: copyBytes(data)}:
			default:
			}
		}
	case cell.RelayConnected:
		s := circ.streams[hdr.StreamID]
		circ.mu.Unlock()
		if s != nil {
			s.connected()
		}
	case cell.RelayIntroduce2:
		cb := circ.onIntro2
		circ.mu.Unlock()
		if cb != nil {
			go cb(copyBytes(data))
		}
	case cell.RelayDrop:
		circ.mu.Unlock()
		// Inbound cover traffic: absorbed.
	default:
		circ.mu.Unlock()
		select {
		case circ.ctrl <- ctrlMsg{hop: hop, hdr: hdr, data: copyBytes(data)}:
		default:
			// Control queue overflow: drop (callers will time out).
		}
	}
}

// awaitCtrl waits for a control message with the given relay command. The
// wait is bounded in virtual time (Client.CtrlTimeout) so detection of a
// stalled circuit scales with the emulation rather than the wall clock.
func (circ *Circuit) awaitCtrl(cmd cell.RelayCommand) (ctrlMsg, error) {
	unblock := circ.client.Clock().Blocking()
	defer unblock()
	deadline := circ.client.Clock().After(circ.client.CtrlTimeout())
	for {
		select {
		case m := <-circ.ctrl:
			if m.hdr.Cmd == cmd {
				return m, nil
			}
			if m.hdr.Cmd == cell.RelayEnd {
				var end cell.EndPayload
				cell.DecodeControl(m.data, &end)
				return ctrlMsg{}, fmt.Errorf("torclient: circuit-level END: %s", end.Reason)
			}
			// Unrelated control message: keep waiting.
		case <-circ.closed:
			return ctrlMsg{}, ErrCircuitClosed
		case <-deadline:
			// A stalled control cell is as fatal as a DESTROY: kill the
			// circuit so its hops land on the avoid list.
			err := fmt.Errorf("torclient: timeout waiting for %v", cmd)
			circ.closeWithReason(err)
			return ctrlMsg{}, err
		}
	}
}

func copyBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// tappedConn wraps the guard link to observe cell-sized reads and writes.
type tappedConn struct {
	net.Conn
	tap   TrafficTap
	clock interface{ Now() time.Duration }
	// readRem carries the bytes of a partially delivered cell across Read
	// calls. Only the dispatch goroutine reads the guard link, so no lock.
	readRem int
}

func (t *tappedConn) Write(p []byte) (int, error) {
	n, err := t.Conn.Write(p)
	if n > 0 {
		// The batched link writer coalesces whole cells into one Write;
		// report each cell as its own event to keep the tap's documented
		// per-cell granularity (traffic traces count cells, not batches).
		now := t.clock.Now()
		for off := 0; off < n; off += cell.Size {
			sz := cell.Size
			if n-off < sz {
				sz = n - off
			}
			t.tap(+1, sz, now)
		}
	}
	return n, err
}

func (t *tappedConn) Read(p []byte) (int, error) {
	n, err := t.Conn.Read(p)
	if n > 0 {
		// The link delivers arbitrary byte runs: a single Read may return
		// several coalesced cells or a fragment of one. Mirror Write's
		// per-cell granularity by accumulating bytes and emitting one
		// event per completed cell, carrying remainders to the next Read.
		now := t.clock.Now()
		t.readRem += n
		for t.readRem >= cell.Size {
			t.tap(-1, cell.Size, now)
			t.readRem -= cell.Size
		}
	}
	return n, err
}
