// Package dirauth implements the directory authority of the emulated Tor
// overlay. Relays publish self-signed descriptors (identity key, onion key,
// flags, exit policy, and — for Bento nodes — the middlebox node policy and
// Bento server address); clients fetch a signed consensus and select
// circuit paths from it.
//
// Disseminating middlebox node policies through the directory follows
// §5.5 of the paper ("we envision that middlebox node policies could be
// disseminated as part of the Tor directory, as with exit node policies").
package dirauth

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/bento-nfv/bento/internal/policy"
)

// Relay flags published in descriptors.
const (
	FlagGuard = "Guard"
	FlagExit  = "Exit"
	FlagHSDir = "HSDir"
	FlagBento = "Bento"
	// FlagFast marks high-bandwidth relays; path selection prefers them
	// for intermediate hops, approximating Tor's bandwidth weighting.
	FlagFast = "Fast"
)

// Descriptor describes one relay.
type Descriptor struct {
	Nickname   string             `json:"nickname"`
	Address    string             `json:"address"`   // OR listener, "host:port"
	Identity   []byte             `json:"identity"`  // ed25519 public key
	OnionKey   []byte             `json:"onion_key"` // X25519 public key
	Flags      []string           `json:"flags"`
	ExitPolicy *policy.ExitPolicy `json:"exit_policy,omitempty"`

	// Family groups relays under one operator, as Tor's family lines do.
	// Path selection and fleet placement treat same-family relays as one
	// fault domain. Empty means the relay declared no family; Family()
	// then falls back to the nickname (every relay its own family).
	FamilyID string `json:"family,omitempty"`

	// Bento middlebox fields (present when FlagBento is set).
	Middlebox *policy.Middlebox `json:"middlebox,omitempty"`
	BentoAddr string            `json:"bento_addr,omitempty"`

	Signature []byte `json:"signature,omitempty"`
}

// Fingerprint returns the relay's identity fingerprint (hex of the hashed
// identity key), used as the relay ID in handshakes.
func (d *Descriptor) Fingerprint() string {
	sum := sha256.Sum256(d.Identity)
	return hex.EncodeToString(sum[:8])
}

// Family returns the relay's fault-domain label: the declared family,
// or the nickname when none was declared.
func (d *Descriptor) Family() string {
	if d.FamilyID != "" {
		return d.FamilyID
	}
	return d.Nickname
}

// HasFlag reports whether the descriptor carries the given flag.
func (d *Descriptor) HasFlag(flag string) bool {
	for _, f := range d.Flags {
		if f == flag {
			return true
		}
	}
	return false
}

// signingBytes returns the canonical bytes covered by the descriptor
// signature.
func (d *Descriptor) signingBytes() ([]byte, error) {
	c := *d
	c.Signature = nil
	return json.Marshal(&c)
}

// Sign signs the descriptor with the relay's identity private key.
func (d *Descriptor) Sign(priv ed25519.PrivateKey) error {
	b, err := d.signingBytes()
	if err != nil {
		return err
	}
	d.Signature = ed25519.Sign(priv, b)
	return nil
}

// Verify checks the descriptor's self-signature.
func (d *Descriptor) Verify() error {
	if len(d.Identity) != ed25519.PublicKeySize {
		return fmt.Errorf("dirauth: bad identity key length %d", len(d.Identity))
	}
	b, err := d.signingBytes()
	if err != nil {
		return err
	}
	if !ed25519.Verify(ed25519.PublicKey(d.Identity), b, d.Signature) {
		return fmt.Errorf("dirauth: descriptor signature invalid for %q", d.Nickname)
	}
	return nil
}

// Consensus is the authority-signed set of descriptors.
type Consensus struct {
	Relays    []*Descriptor `json:"relays"`
	Signature []byte        `json:"signature,omitempty"`
}

func (c *Consensus) signingBytes() ([]byte, error) {
	cc := Consensus{Relays: c.Relays}
	return json.Marshal(&cc)
}

// Verify checks the authority signature on the consensus.
func (c *Consensus) Verify(authority ed25519.PublicKey) error {
	b, err := c.signingBytes()
	if err != nil {
		return err
	}
	if !ed25519.Verify(authority, b, c.Signature) {
		return fmt.Errorf("dirauth: consensus signature invalid")
	}
	return nil
}

// Relay returns the descriptor with the given nickname, or nil.
func (c *Consensus) Relay(nickname string) *Descriptor {
	for _, d := range c.Relays {
		if d.Nickname == nickname {
			return d
		}
	}
	return nil
}

// WithFlag returns all relays carrying the given flag, in stable
// (nickname-sorted) order.
func (c *Consensus) WithFlag(flag string) []*Descriptor {
	var out []*Descriptor
	for _, d := range c.Relays {
		if d.HasFlag(flag) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nickname < out[j].Nickname })
	return out
}

// BentoNodes returns all relays advertising a Bento server, optionally
// filtered to those whose middlebox policy permits every call in calls.
func (c *Consensus) BentoNodes(calls ...string) []*Descriptor {
	var out []*Descriptor
	for _, d := range c.WithFlag(FlagBento) {
		if d.Middlebox == nil {
			continue
		}
		ok := true
		for _, call := range calls {
			if !d.Middlebox.AllowsCall(call) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, d)
		}
	}
	return out
}

// Families returns the set of family labels present in the consensus,
// in sorted order — the fault domains a placement allocator can spread
// replicas across.
func (c *Consensus) Families() []string {
	seen := make(map[string]bool)
	var out []string
	for _, d := range c.Relays {
		fam := d.Family()
		if !seen[fam] {
			seen[fam] = true
			out = append(out, fam)
		}
	}
	sort.Strings(out)
	return out
}

// Exclude returns a view of the consensus without the relays whose
// fingerprints appear in skip. The view shares descriptors with the
// original and carries no signature — it is for local path selection
// (e.g. routing around recently-failed relays), not redistribution.
func (c *Consensus) Exclude(skip map[string]bool) *Consensus {
	if len(skip) == 0 {
		return c
	}
	out := &Consensus{Relays: make([]*Descriptor, 0, len(c.Relays))}
	for _, d := range c.Relays {
		if !skip[d.Fingerprint()] {
			out.Relays = append(out.Relays, d)
		}
	}
	return out
}

// PickPath selects a guard, middle, and exit for a 3-hop circuit toward
// destHost:destPort, using rng for reproducible experiments. The three
// relays are distinct. Exit selection honors exit policies.
func (c *Consensus) PickPath(rng *rand.Rand, destHost string, destPort int) ([]*Descriptor, error) {
	exits := c.exitsFor(destHost, destPort)
	if len(exits) == 0 {
		return nil, fmt.Errorf("dirauth: no exit permits %s:%d", destHost, destPort)
	}
	exit := exits[rng.Intn(len(exits))]

	gpool := preferFast(c.WithFlag(FlagGuard), exit.Nickname)
	if len(gpool) == 0 {
		return nil, fmt.Errorf("dirauth: no guard available")
	}
	guard := gpool[rng.Intn(len(gpool))]

	mpool := preferFast(c.Relays, exit.Nickname, guard.Nickname)
	if len(mpool) == 0 {
		return nil, fmt.Errorf("dirauth: no middle relay available")
	}
	sort.Slice(mpool, func(i, j int) bool { return mpool[i].Nickname < mpool[j].Nickname })
	middle := mpool[rng.Intn(len(mpool))]

	return []*Descriptor{guard, middle, exit}, nil
}

// preferFast filters out excluded nicknames, then narrows to Fast relays
// when any remain — Tor's bandwidth weighting, coarsely.
func preferFast(pool []*Descriptor, exclude ...string) []*Descriptor {
	var all, fast []*Descriptor
	for _, d := range pool {
		skip := false
		for _, x := range exclude {
			if d.Nickname == x {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		all = append(all, d)
		if d.HasFlag(FlagFast) {
			fast = append(fast, d)
		}
	}
	if len(fast) > 0 {
		return fast
	}
	return all
}

// PreferFast exposes the fast-preferring filter for other path builders.
func PreferFast(pool []*Descriptor, exclude ...string) []*Descriptor {
	return preferFast(pool, exclude...)
}

func (c *Consensus) exitsFor(host string, port int) []*Descriptor {
	var out []*Descriptor
	for _, d := range c.WithFlag(FlagExit) {
		if d.ExitPolicy.Allows(host, port) {
			out = append(out, d)
		}
	}
	return out
}

// Authority collects descriptors and signs consensuses. It is used both
// in-process (tests, experiment harnesses) and behind the Server in
// cmd/torsim.
type Authority struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey

	mu     sync.Mutex
	relays map[string]*Descriptor
}

// NewAuthority creates an authority with a fresh signing key.
func NewAuthority() (*Authority, error) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, err
	}
	return &Authority{priv: priv, pub: pub, relays: make(map[string]*Descriptor)}, nil
}

// PublicKey returns the authority's consensus-signing key.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.pub }

// Publish validates and stores a relay descriptor. Re-publishing under the
// same nickname replaces the previous descriptor (as in Tor, descriptors
// are refreshed).
func (a *Authority) Publish(d *Descriptor) error {
	if err := d.Verify(); err != nil {
		return err
	}
	if d.HasFlag(FlagBento) && d.Middlebox == nil {
		return fmt.Errorf("dirauth: Bento relay %q missing middlebox policy", d.Nickname)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.relays[d.Nickname] = d
	return nil
}

// Remove drops a relay from the authority's descriptor set, so the next
// consensus no longer lists it — how a decommissioned or long-dead relay
// leaves the directory. Removing an unknown nickname is a no-op.
func (a *Authority) Remove(nickname string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.relays, nickname)
}

// Consensus produces a freshly signed consensus over the current relays.
func (a *Authority) Consensus() (*Consensus, error) {
	a.mu.Lock()
	relays := make([]*Descriptor, 0, len(a.relays))
	for _, d := range a.relays {
		relays = append(relays, d)
	}
	a.mu.Unlock()
	sort.Slice(relays, func(i, j int) bool { return relays[i].Nickname < relays[j].Nickname })
	c := &Consensus{Relays: relays}
	b, err := c.signingBytes()
	if err != nil {
		return nil, err
	}
	c.Signature = ed25519.Sign(a.priv, b)
	return c, nil
}
