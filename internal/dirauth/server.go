package dirauth

import (
	"crypto/ed25519"
	"fmt"
	"net"

	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/simnet"
	"github.com/bento-nfv/bento/internal/wire"
)

// DefaultPort is the port directory authorities listen on.
const DefaultPort = 7000

type request struct {
	Op         string      `json:"op"` // "publish" or "consensus"
	Descriptor *Descriptor `json:"descriptor,omitempty"`
}

type response struct {
	OK        bool       `json:"ok"`
	Error     string     `json:"error,omitempty"`
	Consensus *Consensus `json:"consensus,omitempty"`
}

// Server exposes an Authority over the emulated network.
type Server struct {
	auth *Authority
	ln   net.Listener

	// Server-side request counters, nil-safe when the network carries no
	// telemetry. All authorities on one network share the same names.
	publishes       *obs.Counter
	publishRejects  *obs.Counter
	consensusServes *obs.Counter
}

// Serve starts a directory server on the given host. It returns once the
// listener is accepting.
func Serve(host *simnet.Host, auth *Authority) (*Server, error) {
	ln, err := host.Listen(DefaultPort)
	if err != nil {
		return nil, err
	}
	reg := host.Network().Obs()
	s := &Server{
		auth:            auth,
		ln:              ln,
		publishes:       reg.Counter("dirauth.publishes"),
		publishRejects:  reg.Counter("dirauth.publish_rejects"),
		consensusServes: reg.Counter("dirauth.consensus_serves"),
	}
	go s.acceptLoop()
	return s, nil
}

// Close stops the server.
func (s *Server) Close() error { return s.ln.Close() }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := wire.NewDecoder(conn) // reuse one read buffer across requests
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp response
		switch req.Op {
		case "publish":
			if err := s.auth.Publish(req.Descriptor); err != nil {
				resp.Error = err.Error()
				s.publishRejects.Inc()
			} else {
				resp.OK = true
				s.publishes.Inc()
			}
		case "consensus":
			c, err := s.auth.Consensus()
			if err != nil {
				resp.Error = err.Error()
			} else {
				resp.OK = true
				resp.Consensus = c
				s.consensusServes.Inc()
			}
		default:
			resp.Error = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := wire.WriteJSON(conn, &resp); err != nil {
			return
		}
	}
}

// Publish sends a descriptor to the directory server at dirAddr from the
// given host.
func Publish(host *simnet.Host, dirAddr string, d *Descriptor) error {
	conn, err := host.Dial(dirAddr)
	if err != nil {
		return fmt.Errorf("dirauth: dialing authority: %w", err)
	}
	defer conn.Close()
	if err := wire.WriteJSON(conn, &request{Op: "publish", Descriptor: d}); err != nil {
		return err
	}
	var resp response
	if err := wire.ReadJSON(conn, &resp); err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("dirauth: publish rejected: %s", resp.Error)
	}
	return nil
}

// FetchConsensus retrieves and verifies the consensus from dirAddr.
// authority is the expected consensus-signing key.
func FetchConsensus(host *simnet.Host, dirAddr string, authority ed25519.PublicKey) (*Consensus, error) {
	reg := host.Network().Obs()
	c, err := fetchConsensus(host, dirAddr, authority)
	if err != nil {
		reg.Counter("dirauth.consensus_fetch_failures").Inc()
	} else {
		reg.Counter("dirauth.consensus_fetches").Inc()
	}
	return c, err
}

func fetchConsensus(host *simnet.Host, dirAddr string, authority ed25519.PublicKey) (*Consensus, error) {
	conn, err := host.Dial(dirAddr)
	if err != nil {
		return nil, fmt.Errorf("dirauth: dialing authority: %w", err)
	}
	defer conn.Close()
	if err := wire.WriteJSON(conn, &request{Op: "consensus"}); err != nil {
		return nil, err
	}
	var resp response
	if err := wire.ReadJSON(conn, &resp); err != nil {
		return nil, err
	}
	if !resp.OK || resp.Consensus == nil {
		return nil, fmt.Errorf("dirauth: consensus fetch failed: %s", resp.Error)
	}
	if err := resp.Consensus.Verify(authority); err != nil {
		return nil, err
	}
	return resp.Consensus, nil
}
