package dirauth

import (
	"crypto/ed25519"
	"math/rand"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/simnet"
)

// newDesc builds a signed descriptor with the given flags.
func newDesc(t *testing.T, nick string, flags []string, exit *policy.ExitPolicy) (*Descriptor, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	d := &Descriptor{
		Nickname:   nick,
		Address:    nick + ":9001",
		Identity:   pub,
		OnionKey:   make([]byte, 32),
		Flags:      flags,
		ExitPolicy: exit,
	}
	for _, f := range flags {
		if f == FlagBento {
			d.Middlebox = policy.DefaultMiddlebox()
			d.BentoAddr = nick + ":5000"
		}
	}
	if err := d.Sign(priv); err != nil {
		t.Fatal(err)
	}
	return d, priv
}

func TestDescriptorSignVerify(t *testing.T) {
	d, _ := newDesc(t, "r1", []string{FlagGuard}, nil)
	if err := d.Verify(); err != nil {
		t.Fatalf("valid descriptor rejected: %v", err)
	}
	d.Address = "evil:9001" // tamper
	if err := d.Verify(); err == nil {
		t.Fatal("tampered descriptor accepted")
	}
}

func TestDescriptorVerifyBadKey(t *testing.T) {
	d, _ := newDesc(t, "r1", nil, nil)
	d.Identity = []byte("short")
	if err := d.Verify(); err == nil {
		t.Fatal("bad identity key length accepted")
	}
}

func TestAuthorityPublishAndConsensus(t *testing.T) {
	a, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := newDesc(t, "guard1", []string{FlagGuard}, nil)
	d2, _ := newDesc(t, "exit1", []string{FlagExit}, policy.AcceptAll())
	for _, d := range []*Descriptor{d1, d2} {
		if err := a.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	c, err := a.Consensus()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(a.PublicKey()); err != nil {
		t.Fatalf("consensus verify: %v", err)
	}
	if len(c.Relays) != 2 {
		t.Fatalf("consensus has %d relays, want 2", len(c.Relays))
	}
	if c.Relay("guard1") == nil || c.Relay("nonesuch") != nil {
		t.Fatal("Relay lookup broken")
	}

	// Wrong authority key must fail.
	other, _ := NewAuthority()
	if err := c.Verify(other.PublicKey()); err == nil {
		t.Fatal("consensus verified with wrong authority key")
	}
}

func TestAuthorityRejectsTamperedDescriptor(t *testing.T) {
	a, _ := NewAuthority()
	d, _ := newDesc(t, "r1", []string{FlagGuard}, nil)
	d.Flags = append(d.Flags, FlagExit) // tamper post-signing
	if err := a.Publish(d); err == nil {
		t.Fatal("tampered descriptor published")
	}
}

func TestAuthorityRejectsBentoWithoutPolicy(t *testing.T) {
	a, _ := NewAuthority()
	pub, priv, _ := ed25519.GenerateKey(nil)
	d := &Descriptor{
		Nickname: "b1",
		Address:  "b1:9001",
		Identity: pub,
		OnionKey: make([]byte, 32),
		Flags:    []string{FlagBento},
	}
	d.Sign(priv)
	if err := a.Publish(d); err == nil {
		t.Fatal("Bento relay without middlebox policy accepted")
	}
}

func TestRepublishReplaces(t *testing.T) {
	a, _ := NewAuthority()
	d, priv := newDesc(t, "r1", []string{FlagGuard}, nil)
	if err := a.Publish(d); err != nil {
		t.Fatal(err)
	}
	d2 := *d
	d2.Flags = []string{FlagGuard, FlagHSDir}
	d2.Signature = nil
	if err := d2.Sign(priv); err != nil {
		t.Fatal(err)
	}
	if err := a.Publish(&d2); err != nil {
		t.Fatal(err)
	}
	c, _ := a.Consensus()
	if len(c.Relays) != 1 || !c.Relays[0].HasFlag(FlagHSDir) {
		t.Fatal("republish did not replace descriptor")
	}
}

func TestWithFlagAndBentoNodes(t *testing.T) {
	a, _ := NewAuthority()
	dg, _ := newDesc(t, "g", []string{FlagGuard}, nil)
	de, _ := newDesc(t, "e", []string{FlagExit}, policy.AcceptAll())
	db, _ := newDesc(t, "b", []string{FlagExit, FlagBento}, policy.AcceptAll())
	for _, d := range []*Descriptor{dg, de, db} {
		if err := a.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := a.Consensus()
	if got := len(c.WithFlag(FlagExit)); got != 2 {
		t.Fatalf("WithFlag(Exit) = %d, want 2", got)
	}
	if got := len(c.BentoNodes()); got != 1 {
		t.Fatalf("BentoNodes() = %d, want 1", got)
	}
	if got := len(c.BentoNodes("net.dial")); got != 1 {
		t.Fatalf("BentoNodes(net.dial) = %d, want 1", got)
	}
	if got := len(c.BentoNodes("os.exec")); got != 0 {
		t.Fatalf("BentoNodes(os.exec) = %d, want 0", got)
	}
}

func TestPickPath(t *testing.T) {
	a, _ := NewAuthority()
	restricted, _ := policy.ParseExitPolicy("accept web:80", "reject *:*")
	specs := []struct {
		nick  string
		flags []string
		exit  *policy.ExitPolicy
	}{
		{"guard1", []string{FlagGuard}, nil},
		{"guard2", []string{FlagGuard}, nil},
		{"mid1", nil, nil},
		{"exit1", []string{FlagExit}, policy.AcceptAll()},
		{"exit2", []string{FlagExit}, restricted},
	}
	for _, s := range specs {
		d, _ := newDesc(t, s.nick, s.flags, s.exit)
		if err := a.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := a.Consensus()
	rng := rand.New(rand.NewSource(1))

	for i := 0; i < 20; i++ {
		path, err := c.PickPath(rng, "anything", 443)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != 3 {
			t.Fatalf("path length %d", len(path))
		}
		// Distinct relays.
		if path[0].Nickname == path[1].Nickname || path[1].Nickname == path[2].Nickname ||
			path[0].Nickname == path[2].Nickname {
			t.Fatalf("path reuses a relay: %s %s %s",
				path[0].Nickname, path[1].Nickname, path[2].Nickname)
		}
		// Only exit1 permits anything:443.
		if path[2].Nickname != "exit1" {
			t.Fatalf("exit %s does not permit destination", path[2].Nickname)
		}
		if !path[0].HasFlag(FlagGuard) {
			t.Fatalf("entry %s is not a guard", path[0].Nickname)
		}
	}

	// web:80 is reachable through either exit.
	sawExit2 := false
	for i := 0; i < 50; i++ {
		path, err := c.PickPath(rng, "web", 80)
		if err != nil {
			t.Fatal(err)
		}
		if path[2].Nickname == "exit2" {
			sawExit2 = true
		}
	}
	if !sawExit2 {
		t.Fatal("restricted exit never chosen for permitted destination")
	}

	// A consensus whose only exit is restricted cannot reach port 22.
	a2, _ := NewAuthority()
	for _, nick := range []string{"guard1", "guard2", "mid1"} {
		d, _ := newDesc(t, nick, []string{FlagGuard}, nil)
		a2.Publish(d)
	}
	dr, _ := newDesc(t, "exit2", []string{FlagExit}, restricted)
	a2.Publish(dr)
	c2, _ := a2.Consensus()
	if _, err := c2.PickPath(rng, "host", 22); err == nil {
		t.Fatal("path found with no permitting exit")
	}
}

func TestServerOverSimnet(t *testing.T) {
	n := simnet.NewNetwork(simnet.NewClock(0.001), time.Millisecond)
	dirHost := n.AddHost("dir", 0)
	relayHost := n.AddHost("relay1", 0)
	clientHost := n.AddHost("client", 0)

	auth, _ := NewAuthority()
	srv, err := Serve(dirHost, auth)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	d, _ := newDesc(t, "relay1", []string{FlagGuard, FlagExit}, policy.AcceptAll())
	if err := Publish(relayHost, "dir:7000", d); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	c, err := FetchConsensus(clientHost, "dir:7000", auth.PublicKey())
	if err != nil {
		t.Fatalf("FetchConsensus: %v", err)
	}
	if len(c.Relays) != 1 || c.Relays[0].Nickname != "relay1" {
		t.Fatalf("unexpected consensus: %+v", c.Relays)
	}

	// Wrong expected key must fail verification client-side.
	other, _ := NewAuthority()
	if _, err := FetchConsensus(clientHost, "dir:7000", other.PublicKey()); err == nil {
		t.Fatal("consensus accepted under wrong authority key")
	}

	// Publishing garbage must be rejected by the server.
	bad := *d
	bad.Nickname = "tampered"
	if err := Publish(relayHost, "dir:7000", &bad); err == nil {
		t.Fatal("tampered descriptor accepted over the network")
	}
}

func TestFingerprintStable(t *testing.T) {
	d, _ := newDesc(t, "r", nil, nil)
	f1 := d.Fingerprint()
	f2 := d.Fingerprint()
	if f1 != f2 || len(f1) != 16 {
		t.Fatalf("fingerprint unstable or wrong length: %q %q", f1, f2)
	}
}
