package interp

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// Resource-limit errors. The sandbox layer maps these onto container
// violations.
var (
	// ErrBudgetExceeded is returned when the instruction budget runs out.
	ErrBudgetExceeded = errors.New("bscript: instruction budget exceeded")
	// ErrMemoryExceeded is returned when live memory exceeds the limit.
	ErrMemoryExceeded = errors.New("bscript: memory limit exceeded")
	// ErrKilled is returned when the machine was killed externally (e.g.
	// by a shutdown token).
	ErrKilled = errors.New("bscript: killed")
)

// RuntimeError is a script-level error with a source line.
type RuntimeError struct {
	Line int
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("bscript: line %d: %s", e.Line, e.Msg)
}

func runtimeErrf(line int, format string, args ...any) error {
	return &RuntimeError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// control-flow signals (cheaper and clearer than panic/recover).
type controlKind int

const (
	ctlNone controlKind = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

type control struct {
	kind controlKind
	val  Value
}

// Machine executes a bscript program under resource limits.
type Machine struct {
	Globals *Env
	// Stdout receives print() output; nil discards it.
	Stdout io.Writer

	budget    int64
	budget0   int64 // initial instruction budget, for telemetry ratios
	memLimit  int64
	memBase   int64 // last full measurement
	memDelta  int64 // allocations since last measurement
	memPeak   int64 // high-water mark of the running estimate
	steps     int64 // total instructions executed (for reporting)
	callDepth int   // current user-function call depth
	killed    atomic.Bool
	collected []Value // values to include in memory measurement roots
	obs       machineMetrics
}

// Limits configures a Machine's resource ceilings.
type Limits struct {
	// Instructions bounds AST-node evaluations (0 = default 10M).
	Instructions int64
	// Memory bounds estimated live bytes (0 = default 16 MiB).
	Memory int64
}

// NewMachine creates a machine with the standard builtins installed.
func NewMachine(lim Limits) *Machine {
	if lim.Instructions <= 0 {
		lim.Instructions = 10_000_000
	}
	if lim.Memory <= 0 {
		lim.Memory = 16 << 20
	}
	m := &Machine{
		Globals:  NewEnv(nil),
		budget:   lim.Instructions,
		budget0:  lim.Instructions,
		memLimit: lim.Memory,
	}
	installBuiltins(m)
	return m
}

// Kill aborts the machine: the next instruction returns ErrKilled. Safe to
// call from any goroutine — this is how a Bento shutdown token stops a
// running function.
func (m *Machine) Kill() { m.killed.Store(true) }

// Steps reports how many instructions have executed.
func (m *Machine) Steps() int64 { return m.steps }

// MemoryEstimate reports the latest live-memory estimate in bytes.
func (m *Machine) MemoryEstimate() int64 { return m.memBase + m.memDelta }

// MeasureNow forces a full live-memory measurement and returns it. Only
// call while no code is executing in the machine.
func (m *Machine) MeasureNow() int64 {
	m.measure()
	return m.memBase
}

// PeakMemory reports the high-water mark of the running memory estimate.
// Note the estimate over-counts transient allocations between full
// measurements, so this is an upper bound, as cgroup peak-RSS would be.
func (m *Machine) PeakMemory() int64 {
	if m.memBase > m.memPeak {
		return m.memBase
	}
	return m.memPeak
}

// Bind installs a host object or value as a global.
func (m *Machine) Bind(name string, v Value) { m.Globals.Define(name, v) }

// Run parses and executes a program in the machine's global scope.
func (m *Machine) Run(src string) error {
	prog, err := Parse(src)
	if err != nil {
		return err
	}
	start := m.steps
	_, err = m.execBlock(prog, m.Globals)
	m.recordRun(start, err)
	return err
}

// CallFunction invokes a previously defined global function by name. The
// function may be a tree-walked *Func or a bytecode-compiled function;
// both run under the same limits and error semantics.
func (m *Machine) CallFunction(name string, args ...Value) (Value, error) {
	v, ok := m.Globals.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("bscript: no function %q defined", name)
	}
	start := m.steps
	switch fn := v.(type) {
	case *Func:
		v, err := m.callFunc(fn, args)
		m.recordRun(start, err)
		return v, err
	case *compiledFunc:
		v, err := m.callCompiled(fn, args)
		m.recordRun(start, err)
		return v, err
	default:
		return nil, fmt.Errorf("bscript: %q is a %s, not a function", name, v.Type())
	}
}

// step charges one instruction and checks the kill switch.
func (m *Machine) step(line int) error {
	if m.killed.Load() {
		return ErrKilled
	}
	m.budget--
	m.steps++
	if m.budget < 0 {
		return ErrBudgetExceeded
	}
	return nil
}

// alloc charges n bytes against the memory limit, re-measuring live state
// when the running estimate exceeds the ceiling.
func (m *Machine) alloc(line int, n int64) error {
	m.memDelta += n
	if est := m.memBase + m.memDelta; est > m.memPeak {
		m.memPeak = est
	}
	if m.memBase+m.memDelta <= m.memLimit {
		return nil
	}
	m.measure()
	if m.memBase > m.memLimit {
		return ErrMemoryExceeded
	}
	return nil
}

// measure walks the global scope (the only long-lived roots in a
// tree-walking interpreter without first-class frames) to compute live
// memory.
func (m *Machine) measure() {
	seen := make(map[Value]bool)
	var total int64
	for s := m.Globals; s != nil; s = s.parent {
		for _, v := range s.vars {
			total += sizeOf(v, seen)
		}
	}
	for _, v := range m.collected {
		total += sizeOf(v, seen)
	}
	m.memBase = total
	m.memDelta = 0
}

// --- statement execution -----------------------------------------------------

func (m *Machine) execBlock(body []stmt, env *Env) (control, error) {
	for _, s := range body {
		ctl, err := m.exec(s, env)
		if err != nil {
			return control{}, err
		}
		if ctl.kind != ctlNone {
			return ctl, nil
		}
	}
	return control{}, nil
}

func (m *Machine) exec(s stmt, env *Env) (control, error) {
	if err := m.step(s.stmtLine()); err != nil {
		return control{}, err
	}
	switch st := s.(type) {
	case *exprStmt:
		_, err := m.eval(st.e, env)
		return control{}, err
	case *assignStmt:
		return control{}, m.execAssign(st, env)
	case *ifStmt:
		cond, err := m.eval(st.cond, env)
		if err != nil {
			return control{}, err
		}
		if Truthy(cond) {
			return m.execBlock(st.body, env)
		}
		return m.execBlock(st.orelse, env)
	case *whileStmt:
		for {
			cond, err := m.eval(st.cond, env)
			if err != nil {
				return control{}, err
			}
			if !Truthy(cond) {
				return control{}, nil
			}
			if err := m.step(st.line); err != nil {
				return control{}, err
			}
			ctl, err := m.execBlock(st.body, env)
			if err != nil {
				return control{}, err
			}
			switch ctl.kind {
			case ctlBreak:
				return control{}, nil
			case ctlReturn:
				return ctl, nil
			}
		}
	case *forStmt:
		iter, err := m.eval(st.iter, env)
		if err != nil {
			return control{}, err
		}
		items, err := iterate(iter, st.line)
		if err != nil {
			return control{}, err
		}
		for item, err := items(); item != nil || err != nil; item, err = items() {
			if err != nil {
				return control{}, err
			}
			if err := m.step(st.line); err != nil {
				return control{}, err
			}
			m.storeIdent(env, st.name, item)
			ctl, err := m.execBlock(st.body, env)
			if err != nil {
				return control{}, err
			}
			switch ctl.kind {
			case ctlBreak:
				return control{}, nil
			case ctlReturn:
				return ctl, nil
			}
		}
		return control{}, nil
	case *defStmt:
		env.Define(st.name, &Func{Name: st.name, Params: st.params, Body: st.body, Closure: env})
		return control{}, nil
	case *returnStmt:
		var v Value = None
		if st.value != nil {
			ev, err := m.eval(st.value, env)
			if err != nil {
				return control{}, err
			}
			v = ev
		}
		return control{kind: ctlReturn, val: v}, nil
	case *breakStmt:
		return control{kind: ctlBreak}, nil
	case *continueStmt:
		return control{kind: ctlContinue}, nil
	case *passStmt:
		return control{}, nil
	case *tryStmt:
		ctl, err := m.execBlock(st.body, env)
		if err == nil {
			return ctl, nil
		}
		// Only script-level errors are catchable; resource violations
		// and kills always propagate (a function cannot absorb its own
		// sandbox enforcement).
		rerr, ok := err.(*RuntimeError)
		if !ok {
			return control{}, err
		}
		if st.name != "" {
			m.storeIdent(env, st.name, Str(rerr.Msg))
		}
		return m.execBlock(st.handler, env)
	case *raiseStmt:
		v, err := m.eval(st.msg, env)
		if err != nil {
			return control{}, err
		}
		return control{}, runtimeErrf(st.line, "%s", Repr(v))
	case *delStmt:
		ix := s.(*delStmt).target.(*indexExpr)
		base, err := m.eval(ix.base, env)
		if err != nil {
			return control{}, err
		}
		idx, err := m.eval(ix.index, env)
		if err != nil {
			return control{}, err
		}
		return control{}, m.delIndex(st.line, base, idx)
	default:
		return control{}, runtimeErrf(s.stmtLine(), "unknown statement")
	}
}

func (m *Machine) execAssign(st *assignStmt, env *Env) error {
	value, err := m.eval(st.value, env)
	if err != nil {
		return err
	}
	if st.op != "=" {
		cur, err := m.evalTarget(st.target, env)
		if err != nil {
			return err
		}
		value, err = m.binop(st.line, st.op[:1], cur, value)
		if err != nil {
			return err
		}
	}
	switch t := st.target.(type) {
	case *identExpr:
		m.storeIdent(env, t.name, value)
		return nil
	case *indexExpr:
		base, err := m.eval(t.base, env)
		if err != nil {
			return err
		}
		idx, err := m.eval(t.index, env)
		if err != nil {
			return err
		}
		return m.indexAssign(st.line, base, idx, value)
	default:
		return runtimeErrf(st.line, "bad assignment target")
	}
}

// --- shared assignment/deletion semantics ------------------------------------
//
// Both engines (the tree-walker and the bytecode VM) route stores through
// these helpers so error strings and memory accounting stay byte-identical.

// storeIdent assigns name with Env.Set semantics, crediting the memory
// estimate when a string/bytes binding is replaced: the old value becomes
// garbage unless aliased elsewhere, and measure() remains the ground truth
// either way.
func (m *Machine) storeIdent(env *Env, name string, v Value) {
	if old, ok := env.Lookup(name); ok {
		m.creditRebind(old, v)
	}
	env.Set(name, v)
}

// creditRebind subtracts the estimated size of a replaced Str/Bytes value
// from the running allocation delta. Content-identical rebinds (s = s) get
// no credit so repeated self-assignment cannot drive the estimate negative.
func (m *Machine) creditRebind(old, v Value) {
	switch o := old.(type) {
	case Str:
		if n, ok := v.(Str); ok && o == n {
			return
		}
		m.memDelta -= 16 + int64(len(o))
	case Bytes:
		if n, ok := v.(Bytes); ok && string(o) == string(n) {
			return
		}
		m.memDelta -= 16 + int64(len(o))
	}
}

// indexAssign stores value at base[idx]. Note the store path's error
// strings intentionally differ from the read path's (m.index): they
// predate it and scripts may match on them.
func (m *Machine) indexAssign(line int, base, idx, value Value) error {
	switch b := base.(type) {
	case *List:
		i, ok := idx.(Int)
		if !ok {
			return runtimeErrf(line, "list index must be int")
		}
		n := int64(len(b.Elems))
		if i < 0 {
			i += Int(n)
		}
		if i < 0 || int64(i) >= n {
			return runtimeErrf(line, "list index %d out of range", i)
		}
		b.Elems[i] = value
		return nil
	case *Dict:
		if err := m.alloc(line, sizeOf(idx, map[Value]bool{})+16); err != nil {
			return err
		}
		if err := b.Set(idx, value); err != nil {
			return runtimeErrf(line, "%v", err)
		}
		return nil
	default:
		return runtimeErrf(line, "cannot index-assign into %s", base.Type())
	}
}

// delIndex implements `del base[idx]`.
func (m *Machine) delIndex(line int, base, idx Value) error {
	d, ok := base.(*Dict)
	if !ok {
		return runtimeErrf(line, "del requires a dict, got %s", base.Type())
	}
	if err := d.Delete(idx); err != nil {
		return runtimeErrf(line, "%v", err)
	}
	return nil
}

func (m *Machine) evalTarget(e expr, env *Env) (Value, error) {
	return m.eval(e, env)
}

// iterate returns a pull-style iterator over a value.
func iterate(v Value, line int) (func() (Value, error), error) {
	switch x := v.(type) {
	case *List:
		snapshot := append([]Value(nil), x.Elems...)
		i := 0
		return func() (Value, error) {
			if i >= len(snapshot) {
				return nil, nil
			}
			e := snapshot[i]
			i++
			return e, nil
		}, nil
	case RangeVal:
		cur := x.Start
		return func() (Value, error) {
			if (x.Step > 0 && cur >= x.Stop) || (x.Step < 0 && cur <= x.Stop) || x.Step == 0 {
				return nil, nil
			}
			v := Int(cur)
			cur += x.Step
			return v, nil
		}, nil
	case Str:
		i := 0
		s := string(x)
		return func() (Value, error) {
			if i >= len(s) {
				return nil, nil
			}
			c := Str(s[i : i+1])
			i++
			return c, nil
		}, nil
	case Bytes:
		i := 0
		return func() (Value, error) {
			if i >= len(x) {
				return nil, nil
			}
			b := Int(x[i])
			i++
			return b, nil
		}, nil
	case *Dict:
		keys := x.Keys()
		i := 0
		return func() (Value, error) {
			if i >= len(keys) {
				return nil, nil
			}
			k := keys[i]
			i++
			return k, nil
		}, nil
	default:
		return nil, runtimeErrf(line, "%s is not iterable", v.Type())
	}
}
