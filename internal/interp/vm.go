package interp

import "time"

// The bytecode VM. It executes funcProto code objects produced by
// compile.go on the same Machine state (budget, memory accounting, global
// scope, builtins) the tree-walker uses, routing every semantically
// observable operation — binop, index, slice, call, store — through the
// helpers both engines share. The tree-walker remains the reference
// oracle; differential and fuzz tests in this package hold the two
// engines to byte-identical results.
//
// Unlike the tree-walker, the VM keeps its operand stack and local slots
// in tagged registers (reg) that hold ints unboxed, so compute-bound
// loops never heap-allocate for intermediate arithmetic. Registers are
// frame-local and invisible to measure() (which walks globals), so memory
// accounting is unaffected; every value that escapes a frame — globals,
// call arguments, container elements, return values — is boxed back to a
// plain Value at the boundary.

// Compile lowers source text to a reusable Program, recording compile
// telemetry on this machine's registry. The Program itself is
// machine-independent and may be cached and run on other machines.
func (m *Machine) Compile(src string) (*Program, error) {
	start := time.Now()
	p, err := Compile(src)
	if err != nil {
		return nil, err
	}
	m.recordCompile(time.Since(start).Nanoseconds())
	return p, nil
}

// RunProgram executes a compiled program in the machine's global scope,
// with the same limits, error semantics, and telemetry as Run.
func (m *Machine) RunProgram(p *Program) error {
	start := m.steps
	_, err := m.runProto(p.top, nil)
	m.recordRun(start, err)
	return err
}

// reg is one VM register: an operand-stack or local-slot cell. Ints live
// unboxed in i (tag regInt); everything else is a boxed Value in v. The
// zero value is regNone — an undefined local slot. The representation is
// canonical: an Int is ALWAYS tag regInt, never a boxed Value, so fast
// paths need only check tags.
type reg struct {
	v   Value
	i   int64
	tag uint8
}

const (
	regNone uint8 = iota // undefined (empty local slot)
	regInt               // unboxed int in i
	regVal               // boxed value in v
)

// set stores a Value, unboxing Ints to keep the representation canonical.
func (r *reg) set(v Value) {
	if x, ok := v.(Int); ok {
		r.tag, r.i, r.v = regInt, int64(x), nil
		return
	}
	r.tag, r.v = regVal, v
}

// setBool stores a Bool. Go boxes bools from a static table, so this
// never allocates.
func (r *reg) setBool(b bool) {
	r.tag, r.v = regVal, Bool(b)
}

// val boxes the register back to a plain Value.
func (r *reg) val() Value {
	if r.tag == regInt {
		return Int(r.i)
	}
	return r.v
}

// truthy avoids boxing for the int case.
func (r *reg) truthy() bool {
	if r.tag == regInt {
		return r.i != 0
	}
	return Truthy(r.v)
}

// callCompiled invokes a bytecode function with the tree-walker's exact
// depth and arity checks. This is the boxed-argument adapter used by
// m.call and eval for host- and tree-initiated calls; VM-to-VM calls go
// through callCompiledRegs and never box their arguments.
func (m *Machine) callCompiled(f *compiledFunc, args []Value) (Value, error) {
	p := f.proto
	if m.callDepth >= maxCallDepth {
		return nil, runtimeErrf(0, "maximum call depth exceeded")
	}
	if len(args) != len(p.params) {
		return nil, runtimeErrf(0, "%s() takes %d arguments, got %d", p.name, len(p.params), len(args))
	}
	slots := make([]reg, p.numSlots)
	for i, a := range args {
		slots[i].set(a)
	}
	m.callDepth++
	v, err := m.runProto(p, slots)
	m.callDepth--
	return v, err
}

// callCompiledRegs is the VM-to-VM call path: argument registers are
// copied straight into the callee's slots, unboxed ints and all.
func (m *Machine) callCompiledRegs(f *compiledFunc, args []reg) (Value, error) {
	p := f.proto
	if m.callDepth >= maxCallDepth {
		return nil, runtimeErrf(0, "maximum call depth exceeded")
	}
	if len(args) != len(p.params) {
		return nil, runtimeErrf(0, "%s() takes %d arguments, got %d", p.name, len(p.params), len(args))
	}
	slots := make([]reg, p.numSlots)
	copy(slots, args)
	m.callDepth++
	v, err := m.runProto(p, slots)
	m.callDepth--
	return v, err
}

// tryHandler is one entry of a frame's except stack.
type tryHandler struct {
	pc      int
	sp      int
	hasName bool
}

// runProto is the interpreter loop for one frame. Calls recurse through
// callCompiled/m.call, bounded by maxCallDepth.
func (m *Machine) runProto(p *funcProto, slots []reg) (Value, error) {
	stack := make([]reg, p.maxStack)
	sp := 0
	var handlers []tryHandler
	code := p.code
	pc := 0
	for pc < len(code) {
		in := &code[pc]
		var err error
		switch in.op {
		case opCharge:
			// One batched decrement per basic block. The kill check comes
			// first (the tree-walker checks before charging), and on
			// exhaustion the counters are clamped to the tree-walker's
			// stop-at-first-negative state.
			if m.killed.Load() {
				return nil, ErrKilled
			}
			n := int64(in.a)
			m.budget -= n
			m.steps += n
			if m.budget < 0 {
				m.steps -= -m.budget - 1
				m.budget = -1
				return nil, ErrBudgetExceeded
			}
		case opConst:
			stack[sp].set(p.consts[in.a])
			sp++
		case opLoadGlobal:
			v, ok := m.Globals.Lookup(p.names[in.a])
			if !ok {
				err = runtimeErrf(int(in.line), "name %q is not defined", p.names[in.a])
				break
			}
			stack[sp].set(v)
			sp++
		case opStoreGlobal:
			sp--
			m.storeIdent(m.Globals, p.names[in.a], stack[sp].val())
		case opDefGlobal:
			m.Globals.Define(p.names[in.a], p.consts[in.b])
		case opDefTree:
			st := p.treeDefs[in.a]
			m.Globals.Define(st.name, &Func{Name: st.name, Params: st.params, Body: st.body, Closure: m.Globals})
		case opLoadLocal:
			r := &slots[in.a]
			if r.tag == regNone {
				gv, ok := m.Globals.Lookup(p.slotNames[in.a])
				if !ok {
					err = runtimeErrf(int(in.line), "name %q is not defined", p.slotNames[in.a])
					break
				}
				stack[sp].set(gv)
				sp++
				break
			}
			if acc, ok := r.v.(*strAccum); ok {
				stack[sp].set(acc.value())
			} else {
				stack[sp] = *r
			}
			sp++
		case opStoreLocal:
			sp--
			m.storeSlot(p, slots, int(in.a), &stack[sp])
		case opCheckLocal:
			if slots[in.a].tag == regNone {
				if _, ok := m.Globals.Lookup(p.slotNames[in.a]); !ok {
					err = runtimeErrf(int(in.line), "name %q is not defined", p.slotNames[in.a])
				}
			}
		case opAppendLocal:
			sp--
			err = m.appendSlot(p, int(in.line), slots, int(in.a), &stack[sp])
		case opJump:
			pc = int(in.a)
			continue
		case opJumpIfFalse:
			sp--
			if !stack[sp].truthy() {
				pc = int(in.a)
				continue
			}
		case opAndJump:
			if !stack[sp-1].truthy() {
				pc = int(in.a)
				continue
			}
			sp--
		case opOrJump:
			if stack[sp-1].truthy() {
				pc = int(in.a)
				continue
			}
			sp--
		case opNot:
			stack[sp-1].setBool(!stack[sp-1].truthy())
		case opNeg:
			if stack[sp-1].tag != regInt {
				err = runtimeErrf(int(in.line), "unary - requires int, got %s", stack[sp-1].v.Type())
				break
			}
			stack[sp-1].i = -stack[sp-1].i
		// The binop family tries the unboxed int fast path (intBinReg)
		// first: on the compute-bound loops the VM exists to speed up,
		// both operands are almost always ints, and the fast path never
		// heap-allocates. Division/modulo by zero, `in`, and every
		// non-int combination fall through to fastBinop.
		case opBinop:
			l, r := &stack[sp-2], &stack[sp-1]
			if l.tag == regInt && r.tag == regInt && intBinReg(in.a, l, r.i) {
				sp--
				break
			}
			v, berr := m.fastBinop(int(in.line), in.a, l.val(), r.val())
			if berr != nil {
				err = berr
				break
			}
			sp--
			stack[sp-1].set(v)
		case opBinopConst:
			l := &stack[sp-1]
			if l.tag == regInt {
				if c, ok := p.consts[in.a].(Int); ok && intBinReg(in.b, l, int64(c)) {
					break
				}
			}
			v, berr := m.fastBinop(int(in.line), in.b, l.val(), p.consts[in.a])
			if berr != nil {
				err = berr
				break
			}
			stack[sp-1].set(v)
		case opBinopLocal:
			l := &stack[sp-1]
			if l.tag == regInt && slots[in.a].tag == regInt && intBinReg(in.b, l, slots[in.a].i) {
				break
			}
			rv, lerr := m.loadSlotIdx(p, slots, int(in.a), int(in.line))
			if lerr != nil {
				err = lerr
				break
			}
			v, berr := m.fastBinop(int(in.line), in.b, l.val(), rv)
			if berr != nil {
				err = berr
				break
			}
			stack[sp-1].set(v)
		case opBinopStore:
			l, r := &stack[sp-2], &stack[sp-1]
			if l.tag == regInt && r.tag == regInt && intBinReg(in.b, l, r.i) {
				sp -= 2
				m.storeSlot(p, slots, int(in.a), l)
				break
			}
			v, berr := m.fastBinop(int(in.line), in.b, l.val(), r.val())
			if berr != nil {
				err = berr
				break
			}
			sp -= 2
			stack[sp].set(v)
			m.storeSlot(p, slots, int(in.a), &stack[sp])
		case opCmpJump:
			l, r := &stack[sp-2], &stack[sp-1]
			if l.tag == regInt && r.tag == regInt && intBinReg(in.b, l, r.i) {
				sp -= 2
				if !l.truthy() {
					pc = int(in.a)
					continue
				}
				break
			}
			v, berr := m.fastBinop(int(in.line), in.b, l.val(), r.val())
			if berr != nil {
				err = berr
				break
			}
			sp -= 2
			if !Truthy(v) {
				pc = int(in.a)
				continue
			}
		case opCmpConstJump:
			l := &stack[sp-1]
			if l.tag == regInt {
				if c, ok := p.consts[in.c].(Int); ok && intBinReg(in.b, l, int64(c)) {
					sp--
					if !l.truthy() {
						pc = int(in.a)
						continue
					}
					break
				}
			}
			v, berr := m.fastBinop(int(in.line), in.b, l.val(), p.consts[in.c])
			if berr != nil {
				err = berr
				break
			}
			sp--
			if !Truthy(v) {
				pc = int(in.a)
				continue
			}
		case opCmpLocalJump:
			l := &stack[sp-1]
			if l.tag == regInt && slots[in.c].tag == regInt && intBinReg(in.b, l, slots[in.c].i) {
				sp--
				if !l.truthy() {
					pc = int(in.a)
					continue
				}
				break
			}
			rv, lerr := m.loadSlotIdx(p, slots, int(in.c), int(in.line))
			if lerr != nil {
				err = lerr
				break
			}
			v, berr := m.fastBinop(int(in.line), in.b, l.val(), rv)
			if berr != nil {
				err = berr
				break
			}
			sp--
			if !Truthy(v) {
				pc = int(in.a)
				continue
			}
		case opIncLocalConst:
			dst := &slots[in.a]
			if dst.tag == regInt {
				if c, ok := p.consts[in.b].(Int); ok {
					dst.i += int64(c)
					break
				}
			}
			if dst.tag == regNone {
				if _, ok := m.Globals.Lookup(p.slotNames[in.a]); !ok {
					err = runtimeErrf(int(in.line), "name %q is not defined", p.slotNames[in.a])
					break
				}
			}
			var chunk reg
			chunk.set(p.consts[in.b])
			err = m.appendSlot(p, int(in.line), slots, int(in.a), &chunk)
		case opSwap:
			stack[sp-1], stack[sp-2] = stack[sp-2], stack[sp-1]
		case opPop:
			sp--
		case opIndex:
			v, ierr := m.index(int(in.line), stack[sp-2].val(), stack[sp-1].val())
			if ierr != nil {
				err = ierr
				break
			}
			sp--
			stack[sp-1].set(v)
		case opStoreIndex:
			sp -= 3
			err = m.indexAssign(int(in.line), stack[sp+1].val(), stack[sp+2].val(), stack[sp].val())
		case opDelIndex:
			sp -= 2
			err = m.delIndex(int(in.line), stack[sp].val(), stack[sp+1].val())
		case opCheckSlice:
			// Canonical tagging: any Int bound is regInt, nothing else is.
			if stack[sp-1].tag != regInt {
				err = runtimeErrf(int(in.line), "slice bound must be int")
			}
		case opSlice:
			lo, hi := int64(0), int64(-1)
			hasHi := false
			if in.a&sliceHasHi != 0 {
				sp--
				hi = stack[sp].i
				hasHi = true
			}
			if in.a&sliceHasLo != 0 {
				sp--
				lo = stack[sp].i
			}
			v, serr := m.slice(int(in.line), stack[sp-1].val(), lo, hi, hasHi)
			if serr != nil {
				err = serr
				break
			}
			stack[sp-1].set(v)
		case opAttr:
			v, aerr := m.attr(int(in.line), stack[sp-1].val(), p.names[in.a])
			if aerr != nil {
				err = aerr
				break
			}
			stack[sp-1].set(v)
		case opCall:
			argc := int(in.a)
			fn := &stack[sp-argc-1]
			var v Value
			var cerr error
			if cf, ok := fn.v.(*compiledFunc); ok {
				v, cerr = m.callCompiledRegs(cf, stack[sp-argc:sp])
			} else {
				args := make([]Value, argc)
				for i := range args {
					args[i] = stack[sp-argc+i].val()
				}
				v, cerr = m.call(int(in.line), fn.val(), args)
			}
			if cerr != nil {
				err = cerr
				break
			}
			sp -= argc
			stack[sp-1].set(v)
		case opMakeList:
			n := int(in.a)
			elems := make([]Value, n)
			for i := range elems {
				elems[i] = stack[sp-n+i].val()
			}
			sp -= n
			if aerr := m.alloc(int(in.line), int64(16+8*n)); aerr != nil {
				err = aerr
				break
			}
			stack[sp].set(&List{Elems: elems})
			sp++
		case opMakeDict:
			n := int(in.a)
			d := NewDict()
			base := sp - 2*n
			for i := 0; i < n; i++ {
				if derr := d.Set(stack[base+2*i].val(), stack[base+2*i+1].val()); derr != nil {
					err = runtimeErrf(int(in.line), "%v", derr)
					break
				}
			}
			if err != nil {
				break
			}
			sp = base
			if aerr := m.alloc(int(in.line), int64(16+32*d.Len())); aerr != nil {
				err = aerr
				break
			}
			stack[sp].set(d)
			sp++
		case opIterNew:
			next, ierr := iterate(stack[sp-1].val(), int(in.line))
			if ierr != nil {
				err = ierr
				break
			}
			stack[sp-1].set(&vmIter{next: next})
		case opIterNext:
			v, ierr := stack[sp-1].v.(*vmIter).next()
			if ierr != nil {
				err = ierr
				break
			}
			if v == nil {
				sp--
				pc = int(in.a)
				continue
			}
			stack[sp].set(v)
			sp++
		case opTryPush:
			handlers = append(handlers, tryHandler{pc: int(in.a), sp: sp, hasName: in.b == 1})
		case opTryPop:
			handlers = handlers[:len(handlers)-1]
		case opRaise:
			sp--
			err = runtimeErrf(int(in.line), "%s", Repr(stack[sp].val()))
		case opReturn:
			return stack[sp-1].val(), nil
		case opReturnNone:
			return None, nil
		}
		if err != nil {
			// Budget exhaustion and kills propagate with no adjustment:
			// their counters were finalized where they fired. Catchable
			// errors first refund the block charges the tree-walker would
			// not have made yet, restoring its exact counter state.
			if err == ErrBudgetExceeded || err == ErrKilled {
				return nil, err
			}
			if r := int64(in.refund); r > 0 {
				m.steps -= r
				m.budget += r
			}
			rerr, ok := err.(*RuntimeError)
			if !ok || len(handlers) == 0 {
				return nil, err
			}
			h := handlers[len(handlers)-1]
			handlers = handlers[:len(handlers)-1]
			sp = h.sp
			if h.hasName {
				stack[sp].set(Str(rerr.Msg))
				sp++
			}
			pc = h.pc
			continue
		}
		pc++
	}
	return None, nil
}

// arithFast handles the arithmetic binops that cannot fail on ints.
func arithFast(code int32, a, b int64) (int64, bool) {
	switch code {
	case bopAdd:
		return a + b, true
	case bopSub:
		return a - b, true
	case bopMul:
		return a * b, true
	}
	return 0, false
}

// cmpFast handles the comparison binops on ints.
func cmpFast(code int32, a, b int64) (bool, bool) {
	switch code {
	case bopLt:
		return a < b, true
	case bopLe:
		return a <= b, true
	case bopGt:
		return a > b, true
	case bopGe:
		return a >= b, true
	case bopEq:
		return a == b, true
	case bopNe:
		return a != b, true
	}
	return false, false
}

// intBinReg computes one int?int binop into l without heap allocation,
// returning false (l untouched) for division or modulo by zero and for
// `in`, which take the fastBinop slow path for its exact errors.
func intBinReg(code int32, l *reg, b int64) bool {
	a := l.i
	if x, ok := arithFast(code, a, b); ok {
		l.i = x
		return true
	}
	if x, ok := cmpFast(code, a, b); ok {
		l.setBool(x)
		return true
	}
	if code == bopMod && b != 0 {
		l.i = floorMod(a, b)
		return true
	}
	if code == bopFloorDiv && b != 0 {
		l.i = floorDiv(a, b)
		return true
	}
	return false
}

// fastBinop is the boxed slow path behind intBinReg: Int/Int division and
// modulo (for their error cases), then the engines' shared m.binop for
// every other combination (and for `in`, which has no Int/Int meaning).
func (m *Machine) fastBinop(line int, code int32, l, r Value) (Value, error) {
	if li, lok := l.(Int); lok {
		if ri, rok := r.(Int); rok {
			switch code {
			case bopFloorDiv:
				if ri == 0 {
					return nil, runtimeErrf(line, "integer division by zero")
				}
				return Int(floorDiv(int64(li), int64(ri))), nil
			case bopMod:
				if ri == 0 {
					return nil, runtimeErrf(line, "integer modulo by zero")
				}
				return Int(floorMod(int64(li), int64(ri))), nil
			}
		}
	}
	return m.binop(line, binopNames[code], l, r)
}

// loadSlotIdx reads a slot with opLoadLocal's exact semantics: global
// fallback for never-assigned slots, accumulator materialization, boxing
// unboxed ints.
func (m *Machine) loadSlotIdx(p *funcProto, slots []reg, idx, line int) (Value, error) {
	r := &slots[idx]
	switch r.tag {
	case regNone:
		gv, ok := m.Globals.Lookup(p.slotNames[idx])
		if !ok {
			return nil, runtimeErrf(line, "name %q is not defined", p.slotNames[idx])
		}
		return gv, nil
	case regInt:
		return Int(r.i), nil
	}
	if acc, ok := r.v.(*strAccum); ok {
		return acc.value(), nil
	}
	return r.v, nil
}

// storeSlot implements opStoreLocal's three-way store: rebind the slot
// (crediting the replaced value), assign an existing global (Env.Set
// semantics for names never assigned in this frame), or define the slot.
// Int-over-anything rebinds copy registers without boxing; creditRebind
// only ever credits Str/Bytes old values, so skipping it for int olds is
// accounting-neutral.
func (m *Machine) storeSlot(p *funcProto, slots []reg, idx int, src *reg) {
	dst := &slots[idx]
	switch dst.tag {
	case regInt:
		*dst = *src
	case regVal:
		m.creditRebind(materialize(dst.v), src.val())
		*dst = *src
	default: // regNone: the name may be an existing global
		if gv, ok := m.Globals.Lookup(p.slotNames[idx]); ok {
			nv := src.val()
			m.creditRebind(gv, nv)
			m.Globals.Set(p.slotNames[idx], nv)
		} else {
			*dst = *src
		}
	}
}

// appendSlot implements opAppendLocal: `x = x + chunk` / `x += chunk` on a
// local slot. Int appends mutate the register in place; like-typed
// string/bytes appends run through a capacity-doubling accumulator so hot
// concatenation loops cost amortized O(len(chunk)) instead of re-copying
// the whole string; every other combination takes the tree-walker's exact
// binop+store path. Memory accounting (the binop's alloc charge plus the
// rebind credit) is identical either way.
func (m *Machine) appendSlot(p *funcProto, line int, slots []reg, idx int, chunk *reg) error {
	dst := &slots[idx]
	switch dst.tag {
	case regNone:
		// Never assigned in this frame: the target is a global
		// (opCheckLocal already surfaced undefined names).
		name := p.slotNames[idx]
		gv, ok := m.Globals.Lookup(name)
		if !ok {
			return runtimeErrf(line, "name %q is not defined", name)
		}
		v, err := m.binop(line, "+", gv, chunk.val())
		if err != nil {
			return err
		}
		m.creditRebind(gv, v)
		m.Globals.Set(name, v)
		return nil
	case regInt:
		if chunk.tag == regInt {
			dst.i += chunk.i
			return nil
		}
	default:
		switch cur := dst.v.(type) {
		case *strAccum:
			if r, ok := chunk.v.(Str); ok && !cur.isBytes {
				return cur.grow(m, line, string(r))
			}
			if r, ok := chunk.v.(Bytes); ok && cur.isBytes {
				return cur.grow(m, line, string(r))
			}
		case Str:
			if r, ok := chunk.v.(Str); ok {
				if err := m.alloc(line, int64(len(cur)+len(r))); err != nil {
					return err
				}
				if len(r) == 0 {
					return nil // content unchanged; the tree grants no rebind credit
				}
				m.memDelta -= 16 + int64(len(cur))
				acc := &strAccum{buf: make([]byte, 0, 2*(len(cur)+len(r)))}
				acc.buf = append(append(acc.buf, cur...), r...)
				dst.set(acc)
				return nil
			}
		case Bytes:
			if r, ok := chunk.v.(Bytes); ok {
				if err := m.alloc(line, int64(len(cur)+len(r))); err != nil {
					return err
				}
				if len(r) == 0 {
					return nil
				}
				m.memDelta -= 16 + int64(len(cur))
				acc := &strAccum{isBytes: true, buf: make([]byte, 0, 2*(len(cur)+len(r)))}
				acc.buf = append(append(acc.buf, cur...), r...)
				dst.set(acc)
				return nil
			}
		}
	}
	// Mixed types: the tree-walker's exact binop + store semantics.
	cur := materialize(dst.val())
	v, err := m.binop(line, "+", cur, chunk.val())
	if err != nil {
		return err
	}
	m.creditRebind(cur, v)
	dst.set(v)
	return nil
}

// grow appends to the accumulator with the tree-walker's exact charge
// (alloc of the full concatenated length, then the rebind credit for the
// replaced value), but only O(len(r)) actual copying.
func (a *strAccum) grow(m *Machine, line int, r string) error {
	if err := m.alloc(line, int64(len(a.buf)+len(r))); err != nil {
		return err
	}
	if len(r) == 0 {
		return nil
	}
	m.memDelta -= 16 + int64(len(a.buf))
	a.buf = append(a.buf, r...)
	a.cached = nil
	return nil
}
