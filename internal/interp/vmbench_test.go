package interp

import "testing"

// Engine benchmarks: the compute-heavy workload mirrors
// internal/bench/interp.go so `go test -bench` and the harness agree.

const benchComputeSrc = `
def compute(n):
    total = 0
    i = 0
    while i < n:
        total = total + i * 3 % 7 - (i % 2)
        if total > 1000000:
            total = 0
        i += 1
    return total
`

func benchMachineVM(b *testing.B, src string) *Machine {
	b.Helper()
	m := NewMachine(Limits{Instructions: 1 << 62, Memory: 1 << 40})
	prog, err := m.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.RunProgram(prog); err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkVMCompute(b *testing.B) {
	m := benchMachineVM(b, benchComputeSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.CallFunction("compute", Int(10_000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeCompute(b *testing.B) {
	m := NewMachine(Limits{Instructions: 1 << 62, Memory: 1 << 40})
	if err := m.Run(benchComputeSrc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.CallFunction("compute", Int(10_000)); err != nil {
			b.Fatal(err)
		}
	}
}
