package interp

import (
	"testing"
)

// FuzzEngineParity cross-checks the tree-walker and the bytecode VM on
// arbitrary inputs under a small budget. Inputs that fail to parse must
// fail identically in both engines; inputs that parse must satisfy the
// parity contract from differential_test.go. The comparison is lenient
// about the one documented cross-class window: the VM charges a basic
// block at entry, so under a tight budget it can report ErrBudgetExceeded
// where the tree-walker reaches a different error mid-block.
func FuzzEngineParity(f *testing.F) {
	for _, p := range parityPrograms {
		f.Add(p.src)
	}
	for _, src := range runtimeErrorPrograms {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		lim := Limits{Instructions: 20_000, Memory: 1 << 20}
		tree := runTreeEngine(src, lim)
		vm := runVMEngine(src, lim)
		compareEngines(t, "fuzz", tree, vm, true)
	})
}

// TestVMLoopAllocFree pins the hot-loop allocation property: once a frame
// is running, an int-counting loop allocates nothing per iteration. Loop
// values stay below 256 so boxing them into interface values hits the Go
// runtime's static cache; the test compares allocations at two iteration
// counts and requires no growth with the extra iterations.
func TestVMLoopAllocFree(t *testing.T) {
	const src = `
def spin(n):
    i = 0
    total = 0
    while i < n:
        i += 1
        if i % 2 == 0:
            total += 1
    return total
`
	m := NewMachine(Limits{})
	prog, err := m.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	callSpin := func(n int64) func() {
		return func() {
			if _, err := m.CallFunction("spin", Int(n)); err != nil {
				t.Fatal(err)
			}
		}
	}
	short := testing.AllocsPerRun(20, callSpin(50))
	long := testing.AllocsPerRun(20, callSpin(250))
	if long > short {
		t.Fatalf("VM loop allocates per iteration: %v allocs at n=50 vs %v at n=250", short, long)
	}
}
