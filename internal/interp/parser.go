package interp

// Recursive-descent parser producing a statement list from the token
// stream. Expression parsing uses precedence climbing.

type parser struct {
	toks []token
	pos  int
}

// Parse compiles source text into a program (list of statements).
func Parse(src string) ([]stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var prog []stmt
	for !p.at(tokEOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog = append(prog, s)
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind) bool { return p.cur().kind == kind }

func (p *parser) atOp(text string) bool {
	return p.cur().kind == tokOp && p.cur().text == text
}

func (p *parser) atKw(text string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == text
}

func (p *parser) expectOp(text string) error {
	if !p.atOp(text) {
		return syntaxErrf(p.cur().line, "expected %q, got %s", text, p.cur())
	}
	p.pos++
	return nil
}

func (p *parser) expectNewline() error {
	if !p.at(tokNewline) {
		return syntaxErrf(p.cur().line, "expected end of statement, got %s", p.cur())
	}
	p.pos++
	return nil
}

// block parses ":" NEWLINE INDENT stmt+ DEDENT.
func (p *parser) block() ([]stmt, error) {
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	if !p.at(tokIndent) {
		return nil, syntaxErrf(p.cur().line, "expected indented block")
	}
	p.pos++
	var body []stmt
	for !p.at(tokDedent) && !p.at(tokEOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	if p.at(tokDedent) {
		p.pos++
	}
	return body, nil
}

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "if":
			return p.ifStatement()
		case "while":
			p.pos++
			cond, err := p.expression()
			if err != nil {
				return nil, err
			}
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			return &whileStmt{line: t.line, cond: cond, body: body}, nil
		case "for":
			p.pos++
			if !p.at(tokIdent) {
				return nil, syntaxErrf(t.line, "expected loop variable")
			}
			name := p.next().text
			if !p.atKw("in") {
				return nil, syntaxErrf(t.line, "expected 'in'")
			}
			p.pos++
			iter, err := p.expression()
			if err != nil {
				return nil, err
			}
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			return &forStmt{line: t.line, name: name, iter: iter, body: body}, nil
		case "def":
			return p.defStatement()
		case "return":
			p.pos++
			var value expr
			if !p.at(tokNewline) {
				v, err := p.expression()
				if err != nil {
					return nil, err
				}
				value = v
			}
			if err := p.expectNewline(); err != nil {
				return nil, err
			}
			return &returnStmt{line: t.line, value: value}, nil
		case "break":
			p.pos++
			if err := p.expectNewline(); err != nil {
				return nil, err
			}
			return &breakStmt{line: t.line}, nil
		case "continue":
			p.pos++
			if err := p.expectNewline(); err != nil {
				return nil, err
			}
			return &continueStmt{line: t.line}, nil
		case "pass":
			p.pos++
			if err := p.expectNewline(); err != nil {
				return nil, err
			}
			return &passStmt{line: t.line}, nil
		case "try":
			p.pos++
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			if !p.atKw("except") {
				return nil, syntaxErrf(t.line, "try without except")
			}
			p.pos++
			name := ""
			if p.atKw("as") {
				p.pos++
				if !p.at(tokIdent) {
					return nil, syntaxErrf(p.cur().line, "expected name after 'as'")
				}
				name = p.next().text
			}
			handler, err := p.block()
			if err != nil {
				return nil, err
			}
			return &tryStmt{line: t.line, body: body, name: name, handler: handler}, nil
		case "raise":
			p.pos++
			msg, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectNewline(); err != nil {
				return nil, err
			}
			return &raiseStmt{line: t.line, msg: msg}, nil
		case "del":
			p.pos++
			target, err := p.expression()
			if err != nil {
				return nil, err
			}
			ix, ok := target.(*indexExpr)
			if !ok {
				return nil, syntaxErrf(t.line, "del requires an index target")
			}
			if err := p.expectNewline(); err != nil {
				return nil, err
			}
			return &delStmt{line: t.line, target: ix}, nil
		}
	}

	// Expression or assignment.
	e, err := p.expression()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokOp {
		switch p.cur().text {
		case "=", "+=", "-=", "*=", "%=":
			op := p.next().text
			if !assignable(e) {
				return nil, syntaxErrf(t.line, "cannot assign to this expression")
			}
			value, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectNewline(); err != nil {
				return nil, err
			}
			return &assignStmt{line: t.line, target: e, op: op, value: value}, nil
		}
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	return &exprStmt{line: t.line, e: e}, nil
}

func assignable(e expr) bool {
	switch e.(type) {
	case *identExpr, *indexExpr:
		return true
	}
	return false
}

func (p *parser) ifStatement() (stmt, error) {
	t := p.next() // if / elif
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &ifStmt{line: t.line, cond: cond, body: body}
	switch {
	case p.atKw("elif"):
		nested, err := p.ifStatement()
		if err != nil {
			return nil, err
		}
		node.orelse = []stmt{nested}
	case p.atKw("else"):
		p.pos++
		orelse, err := p.block()
		if err != nil {
			return nil, err
		}
		node.orelse = orelse
	}
	return node, nil
}

func (p *parser) defStatement() (stmt, error) {
	t := p.next() // def
	if !p.at(tokIdent) {
		return nil, syntaxErrf(t.line, "expected function name")
	}
	name := p.next().text
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.atOp(")") {
		if !p.at(tokIdent) {
			return nil, syntaxErrf(p.cur().line, "expected parameter name")
		}
		params = append(params, p.next().text)
		if p.atOp(",") {
			p.pos++
		}
	}
	p.pos++ // ")"
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &defStmt{line: t.line, name: name, params: params, body: body}, nil
}

// --- expressions (precedence climbing) --------------------------------------

func (p *parser) expression() (expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr, error) {
	lhs, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKw("or") {
		line := p.next().line
		rhs, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{line: line, op: "or", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) andExpr() (expr, error) {
	lhs, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.atKw("and") {
		line := p.next().line
		rhs, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{line: line, op: "and", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) notExpr() (expr, error) {
	if p.atKw("not") {
		line := p.next().line
		rhs, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{line: line, op: "not", rhs: rhs}, nil
	}
	return p.comparison()
}

var compareOps = map[string]bool{
	"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true,
}

func (p *parser) comparison() (expr, error) {
	lhs, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		if p.cur().kind == tokOp && compareOps[p.cur().text] {
			t := p.next()
			rhs, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			lhs = &binaryExpr{line: t.line, op: t.text, lhs: lhs, rhs: rhs}
			continue
		}
		if p.atKw("in") {
			line := p.next().line
			rhs, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			lhs = &binaryExpr{line: line, op: "in", lhs: lhs, rhs: rhs}
			continue
		}
		if p.atKw("not") && p.pos+1 < len(p.toks) &&
			p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "in" {
			line := p.next().line // not
			p.pos++               // in
			rhs, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			lhs = &unaryExpr{line: line, op: "not",
				rhs: &binaryExpr{line: line, op: "in", lhs: lhs, rhs: rhs}}
			continue
		}
		return lhs, nil
	}
}

func (p *parser) addExpr() (expr, error) {
	lhs, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		t := p.next()
		rhs, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{line: t.line, op: t.text, lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) mulExpr() (expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") || p.atOp("//") || p.atOp("%") {
		t := p.next()
		op := t.text
		if op == "/" {
			op = "//" // integer-only language: / is floor division
		}
		rhs, err := p.unary()
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{line: t.line, op: op, lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) unary() (expr, error) {
	if p.atOp("-") {
		line := p.next().line
		rhs, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{line: line, op: "-", rhs: rhs}, nil
	}
	return p.postfix()
}

// postfix parses a primary followed by call/index/attribute suffixes.
func (p *parser) postfix() (expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atOp("("):
			line := p.next().line
			var args []expr
			for !p.atOp(")") {
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.atOp(",") {
					p.pos++
				} else if !p.atOp(")") {
					return nil, syntaxErrf(p.cur().line, "expected ',' or ')' in call")
				}
			}
			p.pos++
			e = &callExpr{line: line, fn: e, args: args}
		case p.atOp("["):
			line := p.next().line
			var lo, hi expr
			isSlice := false
			if !p.atOp(":") {
				v, err := p.expression()
				if err != nil {
					return nil, err
				}
				lo = v
			}
			if p.atOp(":") {
				isSlice = true
				p.pos++
				if !p.atOp("]") {
					v, err := p.expression()
					if err != nil {
						return nil, err
					}
					hi = v
				}
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			if isSlice {
				e = &sliceExpr{line: line, base: e, lo: lo, hi: hi}
			} else {
				if lo == nil {
					return nil, syntaxErrf(line, "empty index")
				}
				e = &indexExpr{line: line, base: e, index: lo}
			}
		case p.atOp("."):
			p.pos++
			if !p.at(tokIdent) {
				return nil, syntaxErrf(p.cur().line, "expected attribute name after '.'")
			}
			t := p.next()
			e = &attrExpr{line: t.line, base: e, name: t.text}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.pos++
		var v int64
		for _, c := range t.text {
			v = v*10 + int64(c-'0')
		}
		return &intLit{line: t.line, v: v}, nil
	case tokString:
		p.pos++
		return &strLit{line: t.line, v: t.text}, nil
	case tokBytes:
		p.pos++
		return &bytesLit{line: t.line, v: []byte(t.text)}, nil
	case tokIdent:
		p.pos++
		return &identExpr{line: t.line, name: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "True":
			p.pos++
			return &boolLit{line: t.line, v: true}, nil
		case "False":
			p.pos++
			return &boolLit{line: t.line, v: false}, nil
		case "None":
			p.pos++
			return &noneLit{line: t.line}, nil
		}
	case tokOp:
		switch t.text {
		case "(":
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			p.pos++
			var elems []expr
			for !p.atOp("]") {
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.atOp(",") {
					p.pos++
				} else if !p.atOp("]") {
					return nil, syntaxErrf(p.cur().line, "expected ',' or ']' in list")
				}
			}
			p.pos++
			return &listLit{line: t.line, elems: elems}, nil
		case "{":
			p.pos++
			var keys, vals []expr
			for !p.atOp("}") {
				k, err := p.expression()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(":"); err != nil {
					return nil, err
				}
				v, err := p.expression()
				if err != nil {
					return nil, err
				}
				keys = append(keys, k)
				vals = append(vals, v)
				if p.atOp(",") {
					p.pos++
				} else if !p.atOp("}") {
					return nil, syntaxErrf(p.cur().line, "expected ',' or '}' in dict")
				}
			}
			p.pos++
			return &dictLit{line: t.line, keys: keys, vals: vals}, nil
		}
	}
	return nil, syntaxErrf(t.line, "unexpected %s", t)
}
