package interp

// AST node types. Statements and expressions are separate interfaces; all
// nodes carry the source line for error reporting and per-node instruction
// accounting.

type stmt interface{ stmtLine() int }

type expr interface{ exprLine() int }

// --- statements -------------------------------------------------------------

type exprStmt struct {
	line int
	e    expr
}

type assignStmt struct {
	line   int
	target expr   // identExpr, indexExpr, or attrExpr
	op     string // "=", "+=", "-=", "*=", "%="
	value  expr
}

type ifStmt struct {
	line   int
	cond   expr
	body   []stmt
	orelse []stmt // may hold a single nested ifStmt for elif chains
}

type whileStmt struct {
	line int
	cond expr
	body []stmt
}

type forStmt struct {
	line int
	name string
	iter expr
	body []stmt
}

type defStmt struct {
	line   int
	name   string
	params []string
	body   []stmt
}

type returnStmt struct {
	line  int
	value expr // nil for bare return
}

type breakStmt struct{ line int }

type continueStmt struct{ line int }

type passStmt struct{ line int }

type delStmt struct {
	line   int
	target expr // indexExpr only
}

type tryStmt struct {
	line    int
	body    []stmt
	name    string // "" unless "except ... as name"
	handler []stmt
}

type raiseStmt struct {
	line int
	msg  expr
}

func (s *exprStmt) stmtLine() int     { return s.line }
func (s *assignStmt) stmtLine() int   { return s.line }
func (s *ifStmt) stmtLine() int       { return s.line }
func (s *whileStmt) stmtLine() int    { return s.line }
func (s *forStmt) stmtLine() int      { return s.line }
func (s *defStmt) stmtLine() int      { return s.line }
func (s *returnStmt) stmtLine() int   { return s.line }
func (s *breakStmt) stmtLine() int    { return s.line }
func (s *continueStmt) stmtLine() int { return s.line }
func (s *passStmt) stmtLine() int     { return s.line }
func (s *delStmt) stmtLine() int      { return s.line }
func (s *tryStmt) stmtLine() int      { return s.line }
func (s *raiseStmt) stmtLine() int    { return s.line }

// --- expressions ------------------------------------------------------------

type identExpr struct {
	line int
	name string
}

type intLit struct {
	line int
	v    int64
}

type strLit struct {
	line int
	v    string
}

type bytesLit struct {
	line int
	v    []byte
}

type boolLit struct {
	line int
	v    bool
}

type noneLit struct{ line int }

type listLit struct {
	line  int
	elems []expr
}

type dictLit struct {
	line int
	keys []expr
	vals []expr
}

type binaryExpr struct {
	line     int
	op       string // + - * / // % == != < <= > >= and or in
	lhs, rhs expr
}

type unaryExpr struct {
	line int
	op   string // - not
	rhs  expr
}

type callExpr struct {
	line int
	fn   expr // identExpr or attrExpr
	args []expr
}

type indexExpr struct {
	line  int
	base  expr
	index expr
}

type sliceExpr struct {
	line   int
	base   expr
	lo, hi expr // either may be nil
}

type attrExpr struct {
	line int
	base expr
	name string
}

func (e *identExpr) exprLine() int  { return e.line }
func (e *intLit) exprLine() int     { return e.line }
func (e *strLit) exprLine() int     { return e.line }
func (e *bytesLit) exprLine() int   { return e.line }
func (e *boolLit) exprLine() int    { return e.line }
func (e *noneLit) exprLine() int    { return e.line }
func (e *listLit) exprLine() int    { return e.line }
func (e *dictLit) exprLine() int    { return e.line }
func (e *binaryExpr) exprLine() int { return e.line }
func (e *unaryExpr) exprLine() int  { return e.line }
func (e *callExpr) exprLine() int   { return e.line }
func (e *indexExpr) exprLine() int  { return e.line }
func (e *sliceExpr) exprLine() int  { return e.line }
func (e *attrExpr) exprLine() int   { return e.line }
