package interp

import (
	"strings"
)

// lexer converts source text into a token stream with INDENT/DEDENT
// tokens for block structure, in the style of the CPython tokenizer.
type lexer struct {
	src    string
	pos    int
	line   int
	tokens []token
	indent []int // indentation stack, always starts with 0
	parens int   // bracket nesting (newlines inside brackets are ignored)
}

// lex tokenizes src. It returns a token slice ending with tokEOF.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, indent: []int{0}}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.tokens, nil
}

func (l *lexer) run() error {
	atLineStart := true
	for l.pos < len(l.src) {
		if atLineStart && l.parens == 0 {
			if err := l.handleIndent(); err != nil {
				return err
			}
			atLineStart = false
			if l.pos >= len(l.src) {
				break
			}
		}
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.pos++
			l.line++
			if l.parens == 0 {
				// Collapse blank lines: only emit NEWLINE after content.
				if n := len(l.tokens); n > 0 && l.tokens[n-1].kind != tokNewline &&
					l.tokens[n-1].kind != tokIndent && l.tokens[n-1].kind != tokDedent {
					l.emit(tokNewline, "")
				}
				atLineStart = true
			}
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '"' || c == '\'':
			if err := l.lexString(c, tokString); err != nil {
				return err
			}
		case c == 'b' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == '"' || l.src[l.pos+1] == '\''):
			l.pos++
			if err := l.lexString(l.src[l.pos], tokBytes); err != nil {
				return err
			}
		case isIdentStart(c):
			l.lexIdent()
		default:
			if err := l.lexOp(); err != nil {
				return err
			}
		}
	}
	// Close out the file: trailing NEWLINE plus any open blocks.
	if n := len(l.tokens); n > 0 && l.tokens[n-1].kind != tokNewline {
		l.emit(tokNewline, "")
	}
	for len(l.indent) > 1 {
		l.indent = l.indent[:len(l.indent)-1]
		l.emit(tokDedent, "")
	}
	l.emit(tokEOF, "")
	return nil
}

// handleIndent measures leading whitespace and emits INDENT/DEDENT.
func (l *lexer) handleIndent() error {
	for {
		col := 0
		start := l.pos
		for l.pos < len(l.src) {
			switch l.src[l.pos] {
			case ' ':
				col++
			case '\t':
				col += 8 - col%8
			default:
				goto measured
			}
			l.pos++
		}
	measured:
		// Skip blank/comment-only lines entirely.
		if l.pos < len(l.src) && l.src[l.pos] == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		}
		if l.pos < len(l.src) && l.src[l.pos] == '\n' {
			l.pos++
			l.line++
			continue
		}
		if l.pos >= len(l.src) {
			return nil
		}
		_ = start
		cur := l.indent[len(l.indent)-1]
		switch {
		case col > cur:
			l.indent = append(l.indent, col)
			l.emit(tokIndent, "")
		case col < cur:
			for len(l.indent) > 1 && l.indent[len(l.indent)-1] > col {
				l.indent = l.indent[:len(l.indent)-1]
				l.emit(tokDedent, "")
			}
			if l.indent[len(l.indent)-1] != col {
				return syntaxErrf(l.line, "inconsistent indentation")
			}
		}
		return nil
	}
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.tokens = append(l.tokens, token{kind: kind, text: text, line: l.line})
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	l.emit(tokInt, l.src[start:l.pos])
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	if keywords[word] {
		l.emit(tokKeyword, word)
	} else {
		l.emit(tokIdent, word)
	}
}

func (l *lexer) lexString(quote byte, kind tokenKind) error {
	startLine := l.line
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			l.emit(kind, b.String())
			return nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return syntaxErrf(startLine, "unterminated string escape")
			}
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '\'':
				b.WriteByte('\'')
			case '"':
				b.WriteByte('"')
			case '0':
				b.WriteByte(0)
			default:
				return syntaxErrf(l.line, "unknown escape \\%c", l.src[l.pos])
			}
			l.pos++
		case '\n':
			return syntaxErrf(startLine, "unterminated string")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return syntaxErrf(startLine, "unterminated string")
}

var twoCharOps = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true,
	"+=": true, "-=": true, "*=": true, "//": true, "%=": true,
}

func (l *lexer) lexOp() error {
	if l.pos+1 < len(l.src) && twoCharOps[l.src[l.pos:l.pos+2]] {
		l.emit(tokOp, l.src[l.pos:l.pos+2])
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', '[', '{':
		l.parens++
	case ')', ']', '}':
		l.parens--
		if l.parens < 0 {
			return syntaxErrf(l.line, "unbalanced %q", string(c))
		}
	case '+', '-', '*', '/', '%', '<', '>', '=', ',', ':', '.':
	default:
		return syntaxErrf(l.line, "unexpected character %q", string(c))
	}
	l.emit(tokOp, string(c))
	l.pos++
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
