package interp

import (
	"fmt"
	"strconv"
	"strings"
)

// installBuiltins defines the standard global functions.
func installBuiltins(m *Machine) {
	def := func(name string, fn BuiltinFn) {
		m.Globals.Define(name, &Builtin{Name: name, Fn: fn})
	}

	def("len", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("len() takes 1 argument")
		}
		switch x := args[0].(type) {
		case Str:
			return Int(len(x)), nil
		case Bytes:
			return Int(len(x)), nil
		case *List:
			return Int(len(x.Elems)), nil
		case *Dict:
			return Int(x.Len()), nil
		case RangeVal:
			return Int(rangeLen(x)), nil
		default:
			return nil, fmt.Errorf("len() unsupported for %s", args[0].Type())
		}
	})

	def("range", func(args []Value) (Value, error) {
		ints := make([]int64, len(args))
		for i, a := range args {
			n, ok := a.(Int)
			if !ok {
				return nil, fmt.Errorf("range() requires ints")
			}
			ints[i] = int64(n)
		}
		switch len(ints) {
		case 1:
			return RangeVal{Start: 0, Stop: ints[0], Step: 1}, nil
		case 2:
			return RangeVal{Start: ints[0], Stop: ints[1], Step: 1}, nil
		case 3:
			if ints[2] == 0 {
				return nil, fmt.Errorf("range() step must not be zero")
			}
			return RangeVal{Start: ints[0], Stop: ints[1], Step: ints[2]}, nil
		default:
			return nil, fmt.Errorf("range() takes 1-3 arguments")
		}
	})

	def("str", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("str() takes 1 argument")
		}
		if b, ok := args[0].(Bytes); ok {
			return Str(string(b)), nil
		}
		return Str(Repr(args[0])), nil
	})

	def("int", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("int() takes 1 argument")
		}
		switch x := args[0].(type) {
		case Int:
			return x, nil
		case Bool:
			if x {
				return Int(1), nil
			}
			return Int(0), nil
		case Str:
			n, err := strconv.ParseInt(strings.TrimSpace(string(x)), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("invalid literal for int(): %q", string(x))
			}
			return Int(n), nil
		default:
			return nil, fmt.Errorf("int() unsupported for %s", args[0].Type())
		}
	})

	def("bytes", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("bytes() takes 1 argument")
		}
		switch x := args[0].(type) {
		case Bytes:
			return x, nil
		case Str:
			return Bytes([]byte(x)), nil
		case Int:
			if x < 0 || x > 64<<20 {
				return nil, fmt.Errorf("bytes(%d) size out of range", x)
			}
			return Bytes(make([]byte, x)), nil
		case *List:
			out := make([]byte, len(x.Elems))
			for i, e := range x.Elems {
				n, ok := e.(Int)
				if !ok || n < 0 || n > 255 {
					return nil, fmt.Errorf("bytes() list elements must be ints 0-255")
				}
				out[i] = byte(n)
			}
			return Bytes(out), nil
		default:
			return nil, fmt.Errorf("bytes() unsupported for %s", args[0].Type())
		}
	})

	def("bool", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("bool() takes 1 argument")
		}
		return Bool(Truthy(args[0])), nil
	})

	def("print", func(args []Value) (Value, error) {
		if m.Stdout == nil {
			return None, nil
		}
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = Repr(a)
		}
		fmt.Fprintln(m.Stdout, strings.Join(parts, " "))
		return None, nil
	})

	def("min", func(args []Value) (Value, error) { return extremum(args, true) })
	def("max", func(args []Value) (Value, error) { return extremum(args, false) })

	def("abs", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("abs() takes 1 argument")
		}
		n, ok := args[0].(Int)
		if !ok {
			return nil, fmt.Errorf("abs() requires int")
		}
		if n < 0 {
			return -n, nil
		}
		return n, nil
	})

	def("ord", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("ord() takes 1 argument")
		}
		s, ok := args[0].(Str)
		if !ok || len(s) != 1 {
			return nil, fmt.Errorf("ord() requires a 1-character string")
		}
		return Int(s[0]), nil
	})

	def("chr", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("chr() takes 1 argument")
		}
		n, ok := args[0].(Int)
		if !ok || n < 0 || n > 255 {
			return nil, fmt.Errorf("chr() requires an int 0-255")
		}
		return Str(string([]byte{byte(n)})), nil
	})

	def("type", func(args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("type() takes 1 argument")
		}
		return Str(args[0].Type()), nil
	})
}

func extremum(args []Value, wantMin bool) (Value, error) {
	var items []Value
	switch {
	case len(args) == 1:
		l, ok := args[0].(*List)
		if !ok {
			return nil, fmt.Errorf("single argument must be a list")
		}
		items = l.Elems
	case len(args) > 1:
		items = args
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("empty sequence")
	}
	best := items[0]
	for _, it := range items[1:] {
		a, aok := best.(Int)
		b, bok := it.(Int)
		if !aok || !bok {
			return nil, fmt.Errorf("requires ints")
		}
		if (wantMin && b < a) || (!wantMin && b > a) {
			best = it
		}
	}
	return best, nil
}

// callMethod dispatches methods on builtin types.
func (m *Machine) callMethod(line int, bm boundMethod, args []Value) (Value, error) {
	fail := func(format string, a ...any) (Value, error) {
		return nil, runtimeErrf(line, format, a...)
	}
	switch recv := bm.recv.(type) {
	case *List:
		switch bm.name {
		case "append":
			if len(args) != 1 {
				return fail("append() takes 1 argument")
			}
			if err := m.alloc(line, 8); err != nil {
				return nil, err
			}
			recv.Elems = append(recv.Elems, args[0])
			return None, nil
		case "pop":
			if len(recv.Elems) == 0 {
				return fail("pop from empty list")
			}
			idx := len(recv.Elems) - 1
			if len(args) == 1 {
				n, ok := args[0].(Int)
				if !ok {
					return fail("pop() index must be int")
				}
				idx = int(n)
				if idx < 0 {
					idx += len(recv.Elems)
				}
				if idx < 0 || idx >= len(recv.Elems) {
					return fail("pop() index out of range")
				}
			}
			v := recv.Elems[idx]
			recv.Elems = append(recv.Elems[:idx], recv.Elems[idx+1:]...)
			return v, nil
		case "extend":
			if len(args) != 1 {
				return fail("extend() takes 1 argument")
			}
			other, ok := args[0].(*List)
			if !ok {
				return fail("extend() requires a list")
			}
			if err := m.alloc(line, int64(8*len(other.Elems))); err != nil {
				return nil, err
			}
			recv.Elems = append(recv.Elems, other.Elems...)
			return None, nil
		case "index":
			if len(args) != 1 {
				return fail("index() takes 1 argument")
			}
			for i, e := range recv.Elems {
				if Equal(e, args[0]) {
					return Int(i), nil
				}
			}
			return fail("value not in list")
		}
	case Str:
		switch bm.name {
		case "split":
			sep := " "
			if len(args) == 1 {
				s, ok := args[0].(Str)
				if !ok {
					return fail("split() separator must be str")
				}
				sep = string(s)
			}
			var parts []string
			if len(args) == 0 {
				parts = strings.Fields(string(recv))
			} else {
				parts = strings.Split(string(recv), sep)
			}
			if err := m.alloc(line, int64(len(recv))+int64(24*len(parts))); err != nil {
				return nil, err
			}
			out := make([]Value, len(parts))
			for i, p := range parts {
				out[i] = Str(p)
			}
			return &List{Elems: out}, nil
		case "join":
			if len(args) != 1 {
				return fail("join() takes 1 argument")
			}
			l, ok := args[0].(*List)
			if !ok {
				return fail("join() requires a list")
			}
			parts := make([]string, len(l.Elems))
			total := 0
			for i, e := range l.Elems {
				s, ok := e.(Str)
				if !ok {
					return fail("join() list elements must be str")
				}
				parts[i] = string(s)
				total += len(s)
			}
			if err := m.alloc(line, int64(total)); err != nil {
				return nil, err
			}
			return Str(strings.Join(parts, string(recv))), nil
		case "encode":
			if err := m.alloc(line, int64(len(recv))); err != nil {
				return nil, err
			}
			return Bytes([]byte(recv)), nil
		case "startswith":
			if len(args) != 1 {
				return fail("startswith() takes 1 argument")
			}
			p, ok := args[0].(Str)
			if !ok {
				return fail("startswith() requires str")
			}
			return Bool(strings.HasPrefix(string(recv), string(p))), nil
		case "endswith":
			if len(args) != 1 {
				return fail("endswith() takes 1 argument")
			}
			p, ok := args[0].(Str)
			if !ok {
				return fail("endswith() requires str")
			}
			return Bool(strings.HasSuffix(string(recv), string(p))), nil
		case "strip":
			return Str(strings.TrimSpace(string(recv))), nil
		case "lower":
			return Str(strings.ToLower(string(recv))), nil
		case "upper":
			return Str(strings.ToUpper(string(recv))), nil
		case "replace":
			if len(args) != 2 {
				return fail("replace() takes 2 arguments")
			}
			oldS, ok1 := args[0].(Str)
			newS, ok2 := args[1].(Str)
			if !ok1 || !ok2 {
				return fail("replace() requires strings")
			}
			out := strings.ReplaceAll(string(recv), string(oldS), string(newS))
			if err := m.alloc(line, int64(len(out))); err != nil {
				return nil, err
			}
			return Str(out), nil
		case "find":
			if len(args) != 1 {
				return fail("find() takes 1 argument")
			}
			p, ok := args[0].(Str)
			if !ok {
				return fail("find() requires str")
			}
			return Int(strings.Index(string(recv), string(p))), nil
		}
	case Bytes:
		switch bm.name {
		case "decode":
			if err := m.alloc(line, int64(len(recv))); err != nil {
				return nil, err
			}
			return Str(string(recv)), nil
		}
	case *Dict:
		switch bm.name {
		case "get":
			if len(args) < 1 || len(args) > 2 {
				return fail("get() takes 1-2 arguments")
			}
			v, ok, err := recv.Get(args[0])
			if err != nil {
				return fail("%v", err)
			}
			if ok {
				return v, nil
			}
			if len(args) == 2 {
				return args[1], nil
			}
			return None, nil
		case "keys":
			return &List{Elems: recv.Keys()}, nil
		case "values":
			return &List{Elems: recv.Values()}, nil
		case "pop":
			if len(args) != 1 {
				return fail("pop() takes 1 argument")
			}
			v, ok, err := recv.Get(args[0])
			if err != nil {
				return fail("%v", err)
			}
			if !ok {
				return fail("key %s not found", Repr(args[0]))
			}
			recv.Delete(args[0])
			return v, nil
		}
	}
	return nil, runtimeErrf(line, "%s has no method %q", bm.recv.Type(), bm.name)
}

// NewObject builds a host object from named builtin functions; the sandbox
// uses this to expose the mediated Bento API.
func NewObject(name string, methods map[string]BuiltinFn) *Object {
	attrs := make(map[string]Value, len(methods))
	for mname, fn := range methods {
		attrs[mname] = &Builtin{Name: name + "." + mname, Fn: fn}
	}
	return &Object{Name: name, Attrs: attrs}
}
