package interp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics feeds the parser random byte soup and mutated
// fragments of valid programs: it must always return (possibly an error),
// never panic — a malicious function upload is attacker-controlled input.
func TestParserNeverPanics(t *testing.T) {
	check := func(src []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", src, r)
			}
		}()
		Parse(string(src))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParserNeverPanicsOnMutatedPrograms(t *testing.T) {
	base := `
def browser(url, padding):
    body = requests.get(url)
    compressed = zlib.compress(body)
    final = compressed
    if padding - len(final) > 0:
        final = final + os.urandom(padding - len(final))
    api.send(final)
`
	rng := rand.New(rand.NewSource(7))
	glyphs := []byte("()[]{}:.,+-*/%=<>\"'# \t\nabc019_")
	for i := 0; i < 2000; i++ {
		b := []byte(base)
		for m := 0; m < 1+rng.Intn(4); m++ {
			pos := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0:
				b[pos] = glyphs[rng.Intn(len(glyphs))]
			case 1:
				b = append(b[:pos], b[pos+1:]...)
			case 2:
				b = append(b[:pos], append([]byte{glyphs[rng.Intn(len(glyphs))]}, b[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %d: %v\nsource:\n%s", i, r, b)
				}
			}()
			Parse(string(b))
		}()
	}
}

// TestExecNeverPanics runs random short programs assembled from valid
// statement templates; execution must end in a value or an error.
func TestExecNeverPanics(t *testing.T) {
	templates := []string{
		"x = %d",
		"x = [1, 2, %d]",
		"x = {\"k\": %d}",
		"x = \"s\" * %d",
		"x = bytes(%d %% 100)",
		"x = range(%d %% 50)",
		"for i in range(%d %% 20):\n    x = i",
		"if %d > 2:\n    x = 1\nelse:\n    x = 2",
		"def f(a):\n    return a + %d\nx = f(1)",
		"x = [1, 2, 3][%d %% 5]", // may error: fine
		"x = {\"a\": 1}[\"b\"]",  // errors: fine
		"x = 10 // (%d %% 3)",    // may divide by zero: fine
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		var b strings.Builder
		for s := 0; s < 1+rng.Intn(4); s++ {
			tpl := templates[rng.Intn(len(templates))]
			b.WriteString(strings.ReplaceAll(tpl, "%d", itoa(rng.Intn(10))))
			b.WriteString("\n")
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on program %d: %v\nsource:\n%s", i, r, src)
				}
			}()
			m := NewMachine(Limits{Instructions: 100_000})
			m.Run(src)
		}()
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// TestDeepNestingBounded: deeply nested expressions must not blow the Go
// stack (the parser recursion is bounded by input length; very deep
// inputs must fail or succeed gracefully).
func TestDeepNestingBounded(t *testing.T) {
	src := "x = " + strings.Repeat("(", 5000) + "1" + strings.Repeat(")", 5000)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }() // a controlled panic would still fail the size check below
		m := NewMachine(Limits{})
		m.Run(src)
	}()
	<-done
}

func TestHugeSourceRejectedGracefully(t *testing.T) {
	// A pathological one-liner with many operators.
	src := "x = 1" + strings.Repeat(" + 1", 20000)
	m := NewMachine(Limits{Instructions: 1_000_000})
	if err := m.Run(src); err != nil {
		// Budget exhaustion is acceptable; crashing is not.
		t.Logf("large program: %v", err)
	}
	v, _ := m.Globals.Lookup("x")
	if v != nil && v != Int(20001) {
		t.Fatalf("x = %v", v)
	}
}
