package interp

// Bytecode representation for the bscript VM.
//
// A Program is the machine-independent result of compiling one source
// text: a top-level code object plus a code object (or retained AST, for
// the tree fallback) for every function it defines. Programs hold no
// environment or machine state, so a single Program may be cached and
// executed on any number of Machines concurrently — that is what lets the
// Bento server key compiled programs by source hash and reuse them across
// re-uploads and watchdog respawns.

// Opcodes. Operands a/b are opcode-specific; line is the source line used
// for errors; refund is the number of batched budget charges that had not
// yet been "earned" when this instruction runs (see compile.go).
const (
	opCharge      uint8 = iota // a: charge a instructions (basic-block batch)
	opConst                    // a: push consts[a]
	opLoadGlobal               // a: push global names[a], else name error
	opStoreGlobal              // a: pop, store to global names[a]
	opDefGlobal                // a: name index, b: const index (compiled function)
	opDefTree                  // a: treeDefs index (tree-walk fallback function)
	opLoadLocal                // a: slot; falls back to globals when unset
	opStoreLocal               // a: slot; falls back to globals when unset there
	opCheckLocal               // a: slot; name error if unset here and in globals
	opAppendLocal              // a: slot; pop chunk, slot += chunk (accumulator)
	opJump                     // a: target pc
	opJumpIfFalse              // a: target pc; pops condition
	opAndJump                  // a: target pc; jump keeping lhs if falsy, else pop
	opOrJump                   // a: target pc; jump keeping lhs if truthy, else pop
	opNot                      // replace top with Bool(!Truthy(top))
	opNeg                      // replace top with -top (int only)
	opBinop                    // a: binop code; pops rhs, lhs, pushes result
	opSwap                     // swap the top two stack values
	opPop                      // drop the top of stack
	opIndex                    // pops idx, base; pushes base[idx]
	opStoreIndex               // pops idx, base, value; base[idx] = value
	opDelIndex                 // pops idx, base; del base[idx]
	opSlice                    // a: bit0 hasLo, bit1 hasHi; pops bounds, base
	opCheckSlice               // error unless the top of stack is an Int
	opAttr                     // a: name index; replace top with top.name
	opCall                     // a: argc; pops args and callee, pushes result
	opMakeList                 // a: element count
	opMakeDict                 // a: pair count
	opIterNew                  // replace top with an iterator over it
	opIterNext                 // push next item, or pop iterator and jump to a
	opTryPush                  // a: handler pc, b: 1 if "except ... as name"
	opTryPop                   // discard the innermost handler
	opRaise                    // pop value, raise RuntimeError(Repr(value))
	opReturn                   // pop value and return it from the frame
	opReturnNone               // return None from the frame

	// Superinstructions, fused by the peephole pass (see peephole in
	// compile.go). Each replaces an adjacent sequence whose error-capable
	// members share one refund, so batched-budget parity is unaffected.
	opBinopConst    // a: const idx (rhs), b: binop code; lhs on stack
	opBinopLocal    // a: slot (rhs), b: binop code; lhs on stack
	opBinopStore    // a: store slot, b: binop code; pops rhs, lhs
	opCmpJump       // a: target, b: binop code; pops rhs, lhs; jump if falsy
	opCmpConstJump  // a: target, b: binop code, c: const idx (rhs); pops lhs
	opCmpLocalJump  // a: target, b: binop code, c: slot (rhs); pops lhs
	opIncLocalConst // a: slot, b: const idx; slot += consts[b], no stack use
)

// Binary operator codes for opBinop's a operand.
const (
	bopAdd int32 = iota
	bopSub
	bopMul
	bopFloorDiv
	bopMod
	bopEq
	bopNe
	bopLt
	bopLe
	bopGt
	bopGe
	bopIn
)

// binopNames maps binop codes back to the tree-walker's operator strings,
// for the m.binop fallback path.
var binopNames = [...]string{"+", "-", "*", "//", "%", "==", "!=", "<", "<=", ">", ">=", "in"}

var binopCodes = map[string]int32{
	"+": bopAdd, "-": bopSub, "*": bopMul, "//": bopFloorDiv, "%": bopMod,
	"==": bopEq, "!=": bopNe, "<": bopLt, "<=": bopLe, ">": bopGt, ">=": bopGe,
	"in": bopIn,
}

// Slice flag bits for opSlice's a operand.
const (
	sliceHasLo int32 = 1 << iota
	sliceHasHi
)

// instr is one VM instruction. 24 bytes; code arrays stay cache-friendly.
// Jump targets always live in a (so patching and peephole remapping treat
// every branching opcode uniformly); c is a third operand used only by
// fused superinstructions.
type instr struct {
	op     uint8
	a      int32
	b      int32
	c      int32
	line   int32
	refund int32
}

// funcProto is one compiled code object: the top-level program body or a
// single function. It is immutable after compilation.
type funcProto struct {
	name      string
	params    []string
	code      []instr
	consts    []Value
	names     []string   // global/attr name pool
	slotNames []string   // slot index -> name, for global fallback and errors
	treeDefs  []*defStmt // AST retained for tree-fallback function defs
	numSlots  int
	maxStack  int
}

// Program is a compiled bscript program.
type Program struct {
	top *funcProto
}

// compiledFunc is a bytecode-compiled user function value. Its closure is
// by construction the defining machine's global scope (the compiler only
// compiles functions whose bodies contain no nested defs), so the value
// itself is stateless and shareable across machines.
type compiledFunc struct {
	proto *funcProto
}

func (*compiledFunc) Type() string { return "function" }

// vmIter adapts the tree-walker's pull iterators to a stack value so for
// loops can keep their iterator on the operand stack. Never visible to
// scripts.
type vmIter struct {
	next func() (Value, error)
}

func (*vmIter) Type() string { return "iterator" }

// strAccum is the VM's string/bytes accumulator: a capacity-doubling
// buffer standing in for a Str or Bytes local while a `s = s + chunk`
// loop runs, so each append costs amortized O(len(chunk)) instead of
// O(len(s)). It only ever lives in a frame's local slots — never in an
// Env, so measure() (which walks globals) sees exactly what the
// tree-walker would. Loads materialize (and cache) the real value.
type strAccum struct {
	buf     []byte
	isBytes bool
	cached  Value
}

func (*strAccum) Type() string { return "str" }

// value materializes the accumulated string, caching until the next append.
func (a *strAccum) value() Value {
	if a.cached == nil {
		if a.isBytes {
			b := make([]byte, len(a.buf))
			copy(b, a.buf)
			a.cached = Bytes(b)
		} else {
			a.cached = Str(a.buf)
		}
	}
	return a.cached
}

// materialize converts slot-internal representations to real values.
func materialize(v Value) Value {
	if a, ok := v.(*strAccum); ok {
		return a.value()
	}
	return v
}
