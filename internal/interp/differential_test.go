package interp

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// Differential testing: every program runs through both engines — the
// tree-walker (the reference oracle) and the bytecode VM — and the
// results must agree: values, stdout, step counts, memory estimates,
// error classes, and RuntimeError line numbers.
//
// The one documented divergence is stdout under budget exhaustion: the VM
// charges a basic block at entry, so it stops at the block boundary where
// the tree-walker stops mid-block. The VM's stdout must then be a prefix
// of the tree-walker's. Everything else is byte-identical.

type engineResult struct {
	err     error
	stdout  string
	steps   int64
	mem     int64
	peak    int64
	globals map[string]string
}

func snapshotGlobals(m *Machine) map[string]string {
	out := make(map[string]string, len(m.Globals.vars))
	for name, v := range m.Globals.vars {
		out[name] = Repr(v)
	}
	return out
}

func runTreeEngine(src string, lim Limits) engineResult {
	m := NewMachine(lim)
	var out bytes.Buffer
	m.Stdout = &out
	err := m.Run(src)
	return engineResult{err: err, stdout: out.String(), steps: m.Steps(),
		mem: m.MemoryEstimate(), peak: m.PeakMemory(), globals: snapshotGlobals(m)}
}

func runVMEngine(src string, lim Limits) engineResult {
	m := NewMachine(lim)
	var out bytes.Buffer
	m.Stdout = &out
	prog, err := m.Compile(src)
	if err == nil {
		err = m.RunProgram(prog)
	}
	return engineResult{err: err, stdout: out.String(), steps: m.Steps(),
		mem: m.MemoryEstimate(), peak: m.PeakMemory(), globals: snapshotGlobals(m)}
}

// errClass buckets an engine error for comparison.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrBudgetExceeded):
		return "budget"
	case errors.Is(err, ErrMemoryExceeded):
		return "memory"
	case errors.Is(err, ErrKilled):
		return "killed"
	default:
		if _, ok := err.(*RuntimeError); ok {
			return "runtime"
		}
		return "syntax"
	}
}

// compareEngines asserts the parity contract between a tree-walker result
// and a VM result for the same source. lenient relaxes the one known
// cross-class window (the VM hitting budget exhaustion at a block entry
// where the tree-walker fails mid-block for another reason) for
// fuzz-generated programs; curated corpus programs are built to avoid it.
func compareEngines(t *testing.T, name string, tree, vm engineResult, lenient bool) {
	t.Helper()
	tc, vc := errClass(tree.err), errClass(vm.err)
	if tc != vc {
		if lenient && vc == "budget" && tc != "ok" {
			return // block-entry charging fired before the tree's mid-block error
		}
		t.Fatalf("%s: error class tree=%s (%v) vm=%s (%v)", name, tc, tree.err, vc, vm.err)
	}
	switch tc {
	case "syntax":
		if tree.err.Error() != vm.err.Error() {
			t.Fatalf("%s: syntax error mismatch\ntree: %v\nvm:   %v", name, tree.err, vm.err)
		}
		return
	case "runtime":
		te := tree.err.(*RuntimeError)
		ve := vm.err.(*RuntimeError)
		if te.Line != ve.Line || te.Msg != ve.Msg {
			t.Fatalf("%s: runtime error mismatch\ntree: line %d: %s\nvm:   line %d: %s",
				name, te.Line, te.Msg, ve.Line, ve.Msg)
		}
	case "budget":
		if tree.steps != vm.steps {
			t.Fatalf("%s: steps at budget exhaustion tree=%d vm=%d", name, tree.steps, vm.steps)
		}
		if !strings.HasPrefix(tree.stdout, vm.stdout) {
			t.Fatalf("%s: vm stdout not a prefix of tree stdout under budget exhaustion\ntree: %q\nvm:   %q",
				name, tree.stdout, vm.stdout)
		}
		return
	case "killed":
		return // kill timing is asynchronous; no counter contract
	}
	if tree.steps != vm.steps {
		t.Fatalf("%s: steps tree=%d vm=%d", name, tree.steps, vm.steps)
	}
	if tree.stdout != vm.stdout {
		t.Fatalf("%s: stdout mismatch\ntree: %q\nvm:   %q", name, tree.stdout, vm.stdout)
	}
	if tree.mem != vm.mem || tree.peak != vm.peak {
		t.Fatalf("%s: memory estimate tree=(%d peak %d) vm=(%d peak %d)",
			name, tree.mem, tree.peak, vm.mem, vm.peak)
	}
	if len(tree.globals) != len(vm.globals) {
		t.Fatalf("%s: global count tree=%d vm=%d", name, len(tree.globals), len(vm.globals))
	}
	for k, tv := range tree.globals {
		if vv, ok := vm.globals[k]; !ok || vv != tv {
			t.Fatalf("%s: global %q tree=%s vm=%s", name, k, tv, vv)
		}
	}
}

// parityPrograms is the shared corpus: every behavior the package's unit
// tests exercise, plus targeted cases for the VM's charge batching,
// refunds, slot resolution, and string accumulator. It doubles as the
// fuzz seed corpus.
var parityPrograms = []struct {
	name string
	src  string
	lim  Limits
}{
	{"arithmetic", `
a = 1 + 2 * 3
b = (1 + 2) * 3
c = 10 - 4 - 3
d = 7 // 2
e = -7 // 2
f = 7 % 3
g = -7 % 3
h = -(3 + 4)
i = 2 * 3 + 4 * 5
`, Limits{}},
	{"strings-and-bytes", `
s = "hello" + " " + "world"
n = len(s)
b = b"abc" + b"def"
sub = s[0:5]
ch = s[6]
last = s[-1]
enc = "xyz".encode()
dec = b"pqr".decode()
up = "mIxEd".upper()
parts = "a,b,c".split(",")
joined = "-".join(["1", "2", "3"])
rep = "ab" * 3
strip = "  pad  ".strip()
fnd = "hello".find("llo")
repl = "aXbXc".replace("X", "-")
starts = "prefix".startswith("pre")
ends = "suffix".endswith("fix")
`, Limits{}},
	{"list-operations", `
l = [1, 2, 3]
l.append(4)
total = 0
for x in l:
    total += x
l2 = l + [5]
popped = l2.pop()
first = l2[0]
sliced = l2[1:3]
idx = l2.index(3)
has = 2 in l2
nope = 99 in l2
l.extend([7, 8])
print(l, total, sliced)
`, Limits{}},
	{"dict-operations", `
d = {"a": 1, "b": 2}
d["c"] = 3
n = len(d)
a = d["a"]
g = d.get("z", 42)
ks = d.keys()
vs = d.values()
has = "b" in d
del d["b"]
has2 = "b" in d
print(d, ks, vs)
`, Limits{}},
	{"control-flow", `
def classify(n):
    if n < 0:
        return "neg"
    elif n == 0:
        return "zero"
    else:
        return "pos"

a = classify(-5)
b = classify(0)
c = classify(9)

count = 0
i = 0
while True:
    i += 1
    if i % 2 == 0:
        continue
    if i > 10:
        break
    count += 1

evens = 0
for k in range(20):
    if k % 2 == 0:
        evens += 1
`, Limits{}},
	{"functions-and-recursion", `
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

def make_adder(k):
    def add(x):
        return x + k
    return add

f = fib(15)
add5 = make_adder(5)
g = add5(10)
`, Limits{}},
	{"recursion-depth", `
def boom(n):
    return boom(n + 1)

boom(0)
`, Limits{}},
	{"boolean-logic", `
a = True and False
b = True or False
c = not True
d = 1 and 2
e = 0 or "fallback"
f = None or 5
short = False and crash_if_evaluated
`, Limits{}},
	{"comparisons", `
a = 1 < 2
b = "abc" < "abd"
c = [1, 2] == [1, 2]
d = {"x": 1} == {"x": 1}
e = b"a" != b"b"
f = not ("x" in "xyz")
g = "q" not in "xyz"
`, Limits{}},
	{"budget-exhaustion", `
i = 0
while True:
    i += 1
`, Limits{Instructions: 10_000}},
	{"budget-in-try", `
try:
    while True:
        pass
except:
    swallowed = True
`, Limits{Instructions: 5_000}},
	{"memory-limit", `
s = b"xxxxxxxxxxxxxxxx"
while True:
    s = s + s
`, Limits{Memory: 64 * 1024, Instructions: 100_000_000}},
	{"memory-rebind", `
i = 0
while i < 100:
    s = bytes(100000)
    i += 1
`, Limits{Memory: 256 * 1024, Instructions: 100_000_000}},
	{"indentation-blocks", `
def outer(n):
    total = 0
    for i in range(n):
        if i % 2 == 0:
            for j in range(i):
                total += 1
        else:
            total += 100
    return total

x = outer(5)
`, Limits{}},
	{"multiline-brackets", `
l = [
    1,
    2,
    3,
]
d = {
    "a": 1,
}
x = len(l) + len(d)
`, Limits{}},
	{"augmented-assignments", `
x = 10
x += 5
x -= 3
x *= 2
y = "ab"
y += "cd"
`, Limits{}},
	{"try-except", `
def safe_div(a, b):
    try:
        return a // b
    except:
        return -1

ok = safe_div(10, 2)
bad = safe_div(10, 0)

msg = ""
try:
    x = undefined_name
except as e:
    msg = e

caught_raise = False
try:
    raise "custom failure"
except as e2:
    caught_raise = "custom failure" in e2

nested = 0
try:
    try:
        raise "inner"
    except:
        nested = 1
        raise "outer"
except:
    nested = 2
`, Limits{}},
	{"refund-mid-block", `
l = [1]
t = 0
try:
    t = 1 + l[5]
except as e:
    t = 2
u = t + 1
print(t, u)
`, Limits{}},
	{"string-accumulator", `
def build(n):
    s = ""
    i = 0
    while i < n:
        s = s + "chunk-"
        i += 1
    return s

def build_bytes(n):
    b = b""
    i = 0
    while i < n:
        b += b"\x01\x02"
        i += 1
    return b

out = build(50)
blen = len(build_bytes(40))
olen = len(out)
print(olen, blen, out[0:12])
`, Limits{}},
	{"accumulator-type-switch", `
def weird(n):
    s = "x"
    s = s + "y"
    s = s + ""
    t = s
    s = s + "z"
    u = s + "!"
    return s + t + u

r = weird(3)
`, Limits{}},
	{"accumulator-error", `
def bad():
    s = "a"
    s = s + 5
    return s

bad()
`, Limits{}},
	{"dynamic-global-store", `
x = 10
def bump():
    x = x + 1

def shadow():
    y = x
    x = y * 2
    return x

bump()
r = shadow()
z = x
`, Limits{}},
	{"local-define", `
def f():
    v = 5
    v += 2
    return v

a = f()
b = f()
`, Limits{}},
	{"loops-break-continue-try", `
total = 0
for i in range(10):
    try:
        if i == 3:
            continue
        if i == 7:
            break
        if i == 5:
            raise "five"
        total += i
    except as e:
        total += 100
found = 0
j = 0
while j < 6:
    j += 1
    try:
        if j == 2:
            continue
        if j == 5:
            break
    except:
        pass
    found += 1
print(total, found)
`, Limits{}},
	{"augmented-index-side-effects", `
def idx():
    print("idx")
    return 0

a = [10]
a[idx()] += 5
d = {"k": 1}
d["k"] *= 7
print(a, d)
`, Limits{}},
	{"slice-bound-order", `
def lo():
    print("lo")
    return "nope"

def hi():
    print("hi")
    return 2

x = "abcdef"[lo():hi()]
`, Limits{}},
	{"iterate-everything", `
out = []
for c in "abc":
    out.append(c)
for b in b"xy":
    out.append(b)
for k in {"b": 2, "a": 1}:
    out.append(k)
for r in range(3):
    out.append(r)
for e in [True, None]:
    out.append(e)
print(out)
`, Limits{}},
	{"raise-uncaught-in-func", `
def f():
    raise "deep failure"

def g():
    return f()

g()
`, Limits{}},
	{"unary-and-not-in", `
a = -5
b = not []
c = not not "x"
d = 3 not in [1, 2]
e = -(-a)
`, Limits{}},
	{"dict-unhashable", `
d = {}
d[[1, 2]] = 3
`, Limits{}},
	{"short-circuit-calls", `
def t():
    print("t")
    return True

def f():
    print("f")
    return False

a = t() and f()
b = f() or t()
c = f() and t()
d = t() or f()
print(a, b, c, d)
`, Limits{}},
	{"print-output", `
print("hello", 42, [1, 2])
print({"k": "v"}, b"\x00\xff", None, True)
print()
`, Limits{}},
	{"nested-data", `
m = {"xs": [1, [2, 3]], "d": {"inner": "deep"}}
m["xs"][1].append(4)
v = m["xs"][1][2]
s = m["d"]["inner"][1:3]
print(m, v, s)
`, Limits{}},
}

// runtimeErrorPrograms are one-liners whose exact RuntimeError (message
// and line) must match across engines.
var runtimeErrorPrograms = []string{
	`x = undefined_name`,
	`x = [1][5]`,
	`x = {"a": 1}["b"]`,
	`x = "s" + 1`,
	`x = len(42)`,
	`x = 5(3)`,
	`x = [1, 2][["unhashable"]]`,
	`x = {}[[1]]`,
	`x = None.method()`,
	"for x in 42:\n    pass",
	`x = "abc"[True]`,
	`x = "abc"["lo":2]`,
	`x = -"s"`,
	`x = 1 // 0`,
	`x = 1 % 0`,
	`x = [1] - [2]`,
	`del [1][0]`,
	`x = b"ab" + "cd"`,
	`[1, 2][0] = 5
[1, 2]["k"] = 5`,
	`l = [1]
l[9] = 5`,
	`x = {}
x[None] = 1`,
	`obj = 5
obj.missing()`,
}

func TestEngineParityCorpus(t *testing.T) {
	for _, p := range parityPrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			tree := runTreeEngine(p.src, p.lim)
			vm := runVMEngine(p.src, p.lim)
			compareEngines(t, p.name, tree, vm, false)
		})
	}
}

func TestEngineParityRuntimeErrors(t *testing.T) {
	for i, src := range runtimeErrorPrograms {
		tree := runTreeEngine(src, Limits{})
		vm := runVMEngine(src, Limits{})
		if errClass(tree.err) != "runtime" {
			t.Fatalf("case %d (%q): tree error %v is not a RuntimeError", i, src, tree.err)
		}
		compareEngines(t, src, tree, vm, false)
	}
}

// TestEngineParityBudgetSweep runs a print-heavy program under every
// budget from 0 to enough-to-finish, pinning the exhaustion contract
// (identical step counts, VM stdout a prefix of tree stdout) at every
// possible cutoff point.
func TestEngineParityBudgetSweep(t *testing.T) {
	src := `
def noisy(n):
    s = ""
    for i in range(n):
        print("tick", i)
        s = s + "x"
    return s

print("len", len(noisy(6)))
`
	for budget := int64(1); budget < 160; budget++ {
		lim := Limits{Instructions: budget}
		tree := runTreeEngine(src, lim)
		vm := runVMEngine(src, lim)
		compareEngines(t, "budget-sweep", tree, vm, false)
		if errClass(tree.err) == "ok" {
			return // budget large enough to finish; sweep complete
		}
	}
	t.Fatal("sweep never reached successful completion; raise the bound")
}

// TestCompiledCallFromHost covers Machine.CallFunction dispatching to a
// compiled function, including arity and depth errors.
func TestCompiledCallFromHost(t *testing.T) {
	m := NewMachine(Limits{})
	prog, err := m.Compile("def add(a, b):\n    return a + b\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	v, err := m.CallFunction("add", Int(2), Int(40))
	if err != nil {
		t.Fatal(err)
	}
	if v != Int(42) {
		t.Fatalf("got %v", v)
	}
	if _, err := m.CallFunction("add", Int(1)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	rerr, ok := err.(*RuntimeError)
	_ = rerr
	_ = ok
	if _, err := m.CallFunction("missing"); err == nil {
		t.Fatal("missing function accepted")
	}
}

// TestProgramSharedAcrossMachines pins the cache-safety property: one
// Program may run on many machines without cross-talk.
func TestProgramSharedAcrossMachines(t *testing.T) {
	prog, err := Compile(`
def greet(name):
    return "hi " + name

tag = "set"
`)
	if err != nil {
		t.Fatal(err)
	}
	for i, who := range []string{"ada", "lin"} {
		m := NewMachine(Limits{})
		if err := m.RunProgram(prog); err != nil {
			t.Fatal(err)
		}
		v, err := m.CallFunction("greet", Str(who))
		if err != nil {
			t.Fatal(err)
		}
		if v != Str("hi "+who) {
			t.Fatalf("machine %d: got %v", i, v)
		}
		if tag, _ := m.Globals.Lookup("tag"); tag != Str("set") {
			t.Fatalf("machine %d: tag = %v", i, tag)
		}
	}
}
