// Package interp implements bscript, the small Python-like language Bento
// functions are written in. It stands in for the paper's CPython runtime:
// arbitrary user code executes behind an instruction budget, a memory
// accountant, and a mediated host API, which is where Bento's sandbox and
// middlebox-policy enforcement attach.
//
// The language: integers, strings, byte strings, booleans, None, lists,
// dicts; arithmetic, comparison, boolean operators; indexing and slicing;
// if/elif/else, while, for-in, def/return; indentation-delimited blocks;
// and attribute calls on host-provided objects (api.send(...), http.get(...)).
package interp

import "fmt"

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNewline
	tokIndent
	tokDedent
	tokIdent
	tokInt
	tokString
	tokBytes
	tokOp      // operators and punctuation
	tokKeyword // def, return, if, elif, else, while, for, in, and, or, not, True, False, None, break, continue, pass
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "EOF"
	case tokNewline:
		return "NEWLINE"
	case tokIndent:
		return "INDENT"
	case tokDedent:
		return "DEDENT"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

var keywords = map[string]bool{
	"def": true, "return": true, "if": true, "elif": true, "else": true,
	"while": true, "for": true, "in": true, "and": true, "or": true,
	"not": true, "True": true, "False": true, "None": true,
	"break": true, "continue": true, "pass": true, "del": true,
	"try": true, "except": true, "as": true, "raise": true,
}

// SyntaxError reports a lexing or parsing failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("bscript: line %d: %s", e.Line, e.Msg)
}

func syntaxErrf(line int, format string, args ...any) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}
