package interp

import (
	"errors"

	"github.com/bento-nfv/bento/internal/obs"
)

// machineMetrics aggregates interpreter outcomes across every machine
// wired to the same registry. The zero value (all nil handles) is the
// telemetry-off state, so an unwired machine pays nothing. Metrics are
// recorded only at Run/CallFunction boundaries — never per instruction —
// keeping the step loop untouched.
type machineMetrics struct {
	invocations     *obs.Counter
	stepsPerRun     *obs.Histogram // instructions charged by one Run/CallFunction
	budgetUsedPct   *obs.Histogram // cumulative budget consumed, percent
	budgetExhausted *obs.Counter
	killed          *obs.Counter
	memExceeded     *obs.Counter
	compiles        *obs.Counter   // successful bytecode compilations
	compileNanos    *obs.Histogram // wall time of each compilation
}

// SetObs attaches (or, with a nil registry, detaches) telemetry. The
// Bento server calls this when binding the host API, which also covers
// watchdog-respawned containers. Call only while no code is executing in
// the machine.
func (m *Machine) SetObs(reg *obs.Registry) {
	if reg == nil {
		m.obs = machineMetrics{}
		return
	}
	m.obs = machineMetrics{
		invocations:     reg.Counter("interp.invocations"),
		stepsPerRun:     reg.Histogram("interp.steps_per_run", obs.CountBuckets),
		budgetUsedPct:   reg.Histogram("interp.budget_used_pct", obs.PercentBuckets),
		budgetExhausted: reg.Counter("interp.budget_exhausted"),
		killed:          reg.Counter("interp.killed"),
		memExceeded:     reg.Counter("interp.mem_exceeded"),
		compiles:        reg.Counter("interp.compiles"),
		compileNanos:    reg.Histogram("interp.compile_ns", obs.LatencyBuckets),
	}
}

// recordCompile accounts one successful bytecode compilation. A cache-warm
// invoke path performs zero of these — the Bento server's program-cache
// test pins that down.
func (m *Machine) recordCompile(nanos int64) {
	m.obs.compiles.Inc()
	m.obs.compileNanos.Observe(nanos)
}

// recordRun accounts one top-level execution (Run or CallFunction).
func (m *Machine) recordRun(startSteps int64, err error) {
	m.obs.invocations.Inc()
	m.obs.stepsPerRun.Observe(m.steps - startSteps)
	if m.budget0 > 0 {
		spent := m.budget0 - m.budget
		if spent > m.budget0 {
			spent = m.budget0 // budget runs one past zero on exhaustion
		}
		m.obs.budgetUsedPct.Observe(spent * 100 / m.budget0)
	}
	switch {
	case err == nil:
	case errors.Is(err, ErrBudgetExceeded):
		m.obs.budgetExhausted.Inc()
	case errors.Is(err, ErrKilled):
		m.obs.killed.Inc()
	case errors.Is(err, ErrMemoryExceeded):
		m.obs.memExceeded.Inc()
	}
}
