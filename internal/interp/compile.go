package interp

import (
	"fmt"
	"strconv"
)

// The compiler lowers the parser's AST into funcProto bytecode. It makes
// no semantic changes relative to the tree-walker; every divergence the
// VM is allowed is documented in DESIGN.md §11. Three things happen at
// compile time that the tree-walker pays for at run time:
//
//   - Slot resolution: names a function body assigns (params, assignment
//     targets, loop/except variables) become array slots instead of Env
//     map entries. Loads of unassigned names, and all top-level names,
//     keep late binding through the global scope, exactly like the
//     tree-walker's Env chain ending at Globals.
//
//   - Budget batching: the tree-walker charges one instruction per AST
//     node as it visits it. The compiler counts those per-node charges
//     per basic block and emits a single opCharge at block entry. To
//     keep the observable step/budget counts byte-identical on every
//     error path, each instruction records a refund: how many of its
//     block's charges the tree-walker would NOT yet have made when that
//     instruction runs. When a catchable error (RuntimeError or memory
//     violation) leaves an instruction, the VM refunds that many charges
//     before unwinding, reconstructing the tree-walker's exact counter.
//
//   - Functions whose bodies define nested functions (closures) are not
//     lowered; they are retained as AST and defined as ordinary tree
//     *Func values at runtime (opDefTree), keeping Program free of any
//     machine reference.

// Compile lowers source text to a Program. Parse errors are returned
// unchanged, so compile-time failures match Machine.Run's failures.
func Compile(src string) (*Program, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c := newCompiler("<main>", nil, nil)
	if err := c.block(prog); err != nil {
		return nil, err
	}
	c.flush()
	c.emit(instr{op: opReturnNone})
	c.finish()
	return &Program{top: c.p}, nil
}

type loopScope struct {
	start    int   // continue target (loop head pc)
	breaks   []int // opJump indices to patch to the loop end
	popIter  bool  // for loops keep their iterator on the stack
	tryDepth int   // handler nesting at loop entry
}

type compiler struct {
	p        *funcProto
	slots    map[string]int // nil for the top-level proto (all names global)
	constIdx map[string]int
	nameIdx  map[string]int
	batchPC  int // open opCharge instruction, -1 if none
	batchN   int32
	loops    []loopScope
	tryDepth int
}

func newCompiler(name string, params []string, slotNames []string) *compiler {
	c := &compiler{
		p:        &funcProto{name: name, params: params},
		constIdx: make(map[string]int),
		nameIdx:  make(map[string]int),
		batchPC:  -1,
	}
	if slotNames != nil {
		c.slots = make(map[string]int, len(slotNames))
		for i, n := range slotNames {
			c.slots[n] = i
		}
		c.p.slotNames = slotNames
		c.p.numSlots = len(slotNames)
	}
	return c
}

// charge registers one tree-walker instruction charge for the current
// basic block, opening the block's opCharge lazily.
func (c *compiler) charge(line int) {
	if c.batchPC < 0 {
		c.batchPC = len(c.p.code)
		c.p.code = append(c.p.code, instr{op: opCharge, line: int32(line), refund: -1})
	}
	c.p.code[c.batchPC].a++
	c.batchN++
}

// emit appends an instruction, recording how many of the open block's
// charges had been earned at this point (fixed up into a refund by flush).
func (c *compiler) emit(in instr) int {
	if c.batchPC >= 0 {
		in.refund = c.batchN
	} else {
		in.refund = -1
	}
	c.p.code = append(c.p.code, in)
	return len(c.p.code) - 1
}

// flush closes the current charge block: every instruction in it gets
// refund = total block charges - charges earned at its emission.
func (c *compiler) flush() {
	if c.batchPC < 0 {
		return
	}
	total := c.batchN
	for i := c.batchPC + 1; i < len(c.p.code); i++ {
		if c.p.code[i].refund >= 0 {
			c.p.code[i].refund = total - c.p.code[i].refund
		}
	}
	c.batchPC = -1
	c.batchN = 0
}

func (c *compiler) here() int { return len(c.p.code) }

func (c *compiler) patch(pc int) { c.p.code[pc].a = int32(len(c.p.code)) }

// finish normalizes refund sentinels, fuses superinstructions, and sizes
// the operand stack.
func (c *compiler) finish() {
	for i := range c.p.code {
		if c.p.code[i].refund < 0 {
			c.p.code[i].refund = 0
		}
	}
	c.p.code = peephole(c.p.code)
	c.p.maxStack = computeMaxStack(c.p.code)
}

// peephole fuses hot adjacent instruction sequences into
// superinstructions, then remaps every jump target. Fusion preserves the
// budget-refund contract because it only merges sequences whose
// error-capable members carry the same refund (adjacent instructions with
// no charge() between them), and it never crosses a jump target.
func peephole(code []instr) []instr {
	isTarget := make([]bool, len(code)+1)
	for _, in := range code {
		switch in.op {
		case opJump, opJumpIfFalse, opAndJump, opOrJump, opIterNext, opTryPush:
			isTarget[in.a] = true
		}
	}
	free := func(i int) bool { return i < len(code) && !isTarget[i] }

	out := make([]instr, 0, len(code))
	newPC := make([]int, len(code)+1)
	for i := 0; i < len(code); {
		newPC[i] = len(out)
		in := code[i]
		switch {
		// x += const / x = x + const on a slot: const, check, append.
		case in.op == opConst && free(i+1) && free(i+2) &&
			code[i+1].op == opCheckLocal && code[i+2].op == opAppendLocal &&
			code[i+1].a == code[i+2].a && code[i+1].line == code[i+2].line:
			app := code[i+2]
			out = append(out, instr{op: opIncLocalConst, a: app.a, b: in.a,
				line: app.line, refund: app.refund})
			newPC[i+1], newPC[i+2] = len(out)-1, len(out)-1
			i += 3
		// lhs ? const, optionally followed by a conditional branch.
		case in.op == opConst && free(i+1) && code[i+1].op == opBinop:
			b := code[i+1]
			if free(i+2) && code[i+2].op == opJumpIfFalse {
				out = append(out, instr{op: opCmpConstJump, a: code[i+2].a, b: b.a,
					c: in.a, line: b.line, refund: b.refund})
				newPC[i+1], newPC[i+2] = len(out)-1, len(out)-1
				i += 3
			} else {
				out = append(out, instr{op: opBinopConst, a: in.a, b: b.a,
					line: b.line, refund: b.refund})
				newPC[i+1] = len(out) - 1
				i += 2
			}
		// lhs ? local, optionally followed by a conditional branch. The
		// load's name error and the binop's error share line and refund.
		case in.op == opLoadLocal && free(i+1) && code[i+1].op == opBinop &&
			in.line == code[i+1].line:
			b := code[i+1]
			if free(i+2) && code[i+2].op == opJumpIfFalse {
				out = append(out, instr{op: opCmpLocalJump, a: code[i+2].a, b: b.a,
					c: in.a, line: b.line, refund: b.refund})
				newPC[i+1], newPC[i+2] = len(out)-1, len(out)-1
				i += 3
			} else {
				out = append(out, instr{op: opBinopLocal, a: in.a, b: b.a,
					line: b.line, refund: b.refund})
				newPC[i+1] = len(out) - 1
				i += 2
			}
		// Stack-stack binop feeding a branch or a slot store.
		case in.op == opBinop && free(i+1) && code[i+1].op == opJumpIfFalse:
			out = append(out, instr{op: opCmpJump, a: code[i+1].a, b: in.a,
				line: in.line, refund: in.refund})
			newPC[i+1] = len(out) - 1
			i += 2
		case in.op == opBinop && free(i+1) && code[i+1].op == opStoreLocal:
			out = append(out, instr{op: opBinopStore, a: code[i+1].a, b: in.a,
				line: in.line, refund: in.refund})
			newPC[i+1] = len(out) - 1
			i += 2
		default:
			out = append(out, in)
			i++
		}
	}
	newPC[len(code)] = len(out)
	for i := range out {
		switch out[i].op {
		case opJump, opJumpIfFalse, opAndJump, opOrJump, opIterNext, opTryPush,
			opCmpJump, opCmpConstJump, opCmpLocalJump:
			out[i].a = int32(newPC[out[i].a])
		}
	}
	return out
}

func (c *compiler) constant(key string, v Value) int {
	if i, ok := c.constIdx[key]; ok {
		return i
	}
	i := len(c.p.consts)
	c.p.consts = append(c.p.consts, v)
	c.constIdx[key] = i
	return i
}

func (c *compiler) name(n string) int32 {
	if i, ok := c.nameIdx[n]; ok {
		return int32(i)
	}
	i := len(c.p.names)
	c.p.names = append(c.p.names, n)
	c.nameIdx[n] = i
	return int32(i)
}

func (c *compiler) slot(n string) int {
	if c.slots == nil {
		return -1
	}
	if i, ok := c.slots[n]; ok {
		return i
	}
	return -1
}

// --- statements --------------------------------------------------------------

func (c *compiler) block(body []stmt) error {
	for _, s := range body {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s stmt) error {
	c.charge(s.stmtLine())
	switch st := s.(type) {
	case *exprStmt:
		if err := c.expr(st.e); err != nil {
			return err
		}
		c.emit(instr{op: opPop})
		return nil
	case *assignStmt:
		return c.assign(st)
	case *ifStmt:
		if err := c.expr(st.cond); err != nil {
			return err
		}
		c.flush()
		jf := c.emit(instr{op: opJumpIfFalse})
		if err := c.block(st.body); err != nil {
			return err
		}
		c.flush()
		if len(st.orelse) == 0 {
			c.patch(jf)
			return nil
		}
		j := c.emit(instr{op: opJump})
		c.patch(jf)
		if err := c.block(st.orelse); err != nil {
			return err
		}
		c.flush()
		c.patch(j)
		return nil
	case *whileStmt:
		c.flush()
		start := c.here()
		if err := c.expr(st.cond); err != nil {
			return err
		}
		c.flush()
		jf := c.emit(instr{op: opJumpIfFalse})
		c.loops = append(c.loops, loopScope{start: start, tryDepth: c.tryDepth})
		c.charge(st.line) // per-iteration charge, as the tree-walker's loop head
		if err := c.block(st.body); err != nil {
			return err
		}
		c.flush()
		c.emit(instr{op: opJump, a: int32(start)})
		c.patch(jf)
		c.patchBreaks()
		return nil
	case *forStmt:
		if err := c.expr(st.iter); err != nil {
			return err
		}
		c.flush()
		c.emit(instr{op: opIterNew, line: int32(st.line)})
		start := c.here()
		next := c.emit(instr{op: opIterNext})
		c.loops = append(c.loops, loopScope{start: start, popIter: true, tryDepth: c.tryDepth})
		c.charge(st.line) // per-item charge
		c.storeName(st.name, st.line)
		if err := c.block(st.body); err != nil {
			return err
		}
		c.flush()
		c.emit(instr{op: opJump, a: int32(start)})
		c.patch(next)
		c.patchBreaks()
		return nil
	case *defStmt:
		if hasNestedDef(st.body) {
			// Closures keep the tree path: the def is retained as AST and
			// built as a *Func over the global scope at runtime.
			idx := len(c.p.treeDefs)
			c.p.treeDefs = append(c.p.treeDefs, st)
			c.emit(instr{op: opDefTree, a: int32(idx)})
			return nil
		}
		proto, err := compileFunc(st)
		if err != nil {
			return err
		}
		ci := len(c.p.consts)
		c.p.consts = append(c.p.consts, &compiledFunc{proto: proto})
		c.emit(instr{op: opDefGlobal, a: c.name(st.name), b: int32(ci)})
		return nil
	case *returnStmt:
		if st.value == nil {
			c.flush()
			c.emit(instr{op: opReturnNone})
			return nil
		}
		if err := c.expr(st.value); err != nil {
			return err
		}
		c.flush()
		c.emit(instr{op: opReturn})
		return nil
	case *breakStmt:
		if len(c.loops) == 0 {
			return nil // tree-walker lets a stray break end the block silently
		}
		c.flush()
		ls := &c.loops[len(c.loops)-1]
		for i := 0; i < c.tryDepth-ls.tryDepth; i++ {
			c.emit(instr{op: opTryPop})
		}
		if ls.popIter {
			c.emit(instr{op: opPop})
		}
		ls.breaks = append(ls.breaks, c.emit(instr{op: opJump}))
		return nil
	case *continueStmt:
		if len(c.loops) == 0 {
			return nil
		}
		c.flush()
		ls := &c.loops[len(c.loops)-1]
		for i := 0; i < c.tryDepth-ls.tryDepth; i++ {
			c.emit(instr{op: opTryPop})
		}
		c.emit(instr{op: opJump, a: int32(ls.start)})
		return nil
	case *passStmt:
		return nil
	case *tryStmt:
		c.flush()
		tp := c.emit(instr{op: opTryPush, b: boolBit(st.name != "")})
		c.tryDepth++
		if err := c.block(st.body); err != nil {
			return err
		}
		c.flush()
		c.tryDepth--
		c.emit(instr{op: opTryPop})
		j := c.emit(instr{op: opJump})
		c.patch(tp)
		if st.name != "" {
			c.storeName(st.name, st.line) // the VM pushed Str(msg)
		}
		if err := c.block(st.handler); err != nil {
			return err
		}
		c.flush()
		c.patch(j)
		return nil
	case *raiseStmt:
		if err := c.expr(st.msg); err != nil {
			return err
		}
		c.emit(instr{op: opRaise, line: int32(st.line)})
		return nil
	case *delStmt:
		ix := st.target.(*indexExpr)
		if err := c.expr(ix.base); err != nil {
			return err
		}
		if err := c.expr(ix.index); err != nil {
			return err
		}
		c.emit(instr{op: opDelIndex, line: int32(st.line)})
		return nil
	default:
		return fmt.Errorf("bscript: cannot compile statement at line %d", s.stmtLine())
	}
}

func (c *compiler) patchBreaks() {
	ls := c.loops[len(c.loops)-1]
	c.loops = c.loops[:len(c.loops)-1]
	for _, pc := range ls.breaks {
		c.patch(pc)
	}
}

func (c *compiler) assign(st *assignStmt) error {
	switch t := st.target.(type) {
	case *identExpr:
		slot := c.slot(t.name)
		if st.op == "=" {
			// Accumulator fast path: `x = x + rhs` on a local slot.
			if b, ok := st.value.(*binaryExpr); ok && b.op == "+" && slot >= 0 {
				if id, ok := b.lhs.(*identExpr); ok && id.name == t.name {
					c.charge(b.line)
					c.charge(id.line)
					// The tree-walker resolves x before evaluating rhs;
					// surface the same name error at the same point.
					c.emit(instr{op: opCheckLocal, a: int32(slot), line: int32(id.line)})
					if err := c.expr(b.rhs); err != nil {
						return err
					}
					c.emit(instr{op: opAppendLocal, a: int32(slot), line: int32(b.line)})
					return nil
				}
			}
			if err := c.expr(st.value); err != nil {
				return err
			}
			c.storeName(t.name, st.line)
			return nil
		}
		// Augmented: value first, then the target read, as the tree does.
		if st.op == "+=" && slot >= 0 {
			if err := c.expr(st.value); err != nil {
				return err
			}
			c.charge(t.line)
			c.emit(instr{op: opCheckLocal, a: int32(slot), line: int32(t.line)})
			c.emit(instr{op: opAppendLocal, a: int32(slot), line: int32(st.line)})
			return nil
		}
		if err := c.expr(st.value); err != nil {
			return err
		}
		c.charge(t.line)
		c.loadName(t.name, t.line)
		c.emit(instr{op: opSwap})
		c.emit(instr{op: opBinop, a: binopCodes[st.op[:1]], line: int32(st.line)})
		c.storeName(t.name, st.line)
		return nil
	case *indexExpr:
		if err := c.expr(st.value); err != nil {
			return err
		}
		if st.op != "=" {
			// The tree-walker fully evaluates the target (charging the
			// index node and re-evaluating base/index for the store).
			c.charge(t.line)
			if err := c.expr(t.base); err != nil {
				return err
			}
			if err := c.expr(t.index); err != nil {
				return err
			}
			c.emit(instr{op: opIndex, line: int32(t.line)})
			c.emit(instr{op: opSwap})
			c.emit(instr{op: opBinop, a: binopCodes[st.op[:1]], line: int32(st.line)})
		}
		if err := c.expr(t.base); err != nil {
			return err
		}
		if err := c.expr(t.index); err != nil {
			return err
		}
		c.emit(instr{op: opStoreIndex, line: int32(st.line)})
		return nil
	default:
		return fmt.Errorf("bscript: cannot compile assignment target at line %d", st.line)
	}
}

func (c *compiler) storeName(name string, line int) {
	if i := c.slot(name); i >= 0 {
		c.emit(instr{op: opStoreLocal, a: int32(i), line: int32(line)})
		return
	}
	c.emit(instr{op: opStoreGlobal, a: c.name(name), line: int32(line)})
}

func (c *compiler) loadName(name string, line int) {
	if i := c.slot(name); i >= 0 {
		c.emit(instr{op: opLoadLocal, a: int32(i), line: int32(line)})
		return
	}
	c.emit(instr{op: opLoadGlobal, a: c.name(name), line: int32(line)})
}

// --- expressions -------------------------------------------------------------

func (c *compiler) expr(e expr) error {
	c.charge(e.exprLine())
	switch ex := e.(type) {
	case *intLit:
		c.emit(instr{op: opConst, a: int32(c.constant("i:"+strconv.FormatInt(ex.v, 10), Int(ex.v)))})
		return nil
	case *strLit:
		c.emit(instr{op: opConst, a: int32(c.constant("s:"+ex.v, Str(ex.v)))})
		return nil
	case *bytesLit:
		c.emit(instr{op: opConst, a: int32(c.constant("b:"+string(ex.v), Bytes(ex.v)))})
		return nil
	case *boolLit:
		key := "B:0"
		if ex.v {
			key = "B:1"
		}
		c.emit(instr{op: opConst, a: int32(c.constant(key, Bool(ex.v)))})
		return nil
	case *noneLit:
		c.emit(instr{op: opConst, a: int32(c.constant("n", None))})
		return nil
	case *identExpr:
		c.loadName(ex.name, ex.line)
		return nil
	case *listLit:
		for _, el := range ex.elems {
			if err := c.expr(el); err != nil {
				return err
			}
		}
		c.emit(instr{op: opMakeList, a: int32(len(ex.elems)), line: int32(ex.line)})
		return nil
	case *dictLit:
		for i := range ex.keys {
			if err := c.expr(ex.keys[i]); err != nil {
				return err
			}
			if err := c.expr(ex.vals[i]); err != nil {
				return err
			}
		}
		c.emit(instr{op: opMakeDict, a: int32(len(ex.keys)), line: int32(ex.line)})
		return nil
	case *unaryExpr:
		if err := c.expr(ex.rhs); err != nil {
			return err
		}
		switch ex.op {
		case "-":
			c.emit(instr{op: opNeg, line: int32(ex.line)})
		case "not":
			c.emit(instr{op: opNot})
		default:
			return fmt.Errorf("bscript: cannot compile unary %q at line %d", ex.op, ex.line)
		}
		return nil
	case *binaryExpr:
		if ex.op == "and" || ex.op == "or" {
			if err := c.expr(ex.lhs); err != nil {
				return err
			}
			c.flush()
			op := opAndJump
			if ex.op == "or" {
				op = opOrJump
			}
			j := c.emit(instr{op: op})
			if err := c.expr(ex.rhs); err != nil {
				return err
			}
			c.flush()
			c.patch(j)
			return nil
		}
		if err := c.expr(ex.lhs); err != nil {
			return err
		}
		if err := c.expr(ex.rhs); err != nil {
			return err
		}
		code, ok := binopCodes[ex.op]
		if !ok {
			return fmt.Errorf("bscript: cannot compile operator %q at line %d", ex.op, ex.line)
		}
		c.emit(instr{op: opBinop, a: code, line: int32(ex.line)})
		return nil
	case *indexExpr:
		if err := c.expr(ex.base); err != nil {
			return err
		}
		if err := c.expr(ex.index); err != nil {
			return err
		}
		c.emit(instr{op: opIndex, line: int32(ex.line)})
		return nil
	case *sliceExpr:
		if err := c.expr(ex.base); err != nil {
			return err
		}
		var flags int32
		if ex.lo != nil {
			if err := c.expr(ex.lo); err != nil {
				return err
			}
			// The tree-walker type-checks each bound as soon as it is
			// evaluated; mirror that so error order matches.
			c.emit(instr{op: opCheckSlice, line: int32(ex.line)})
			flags |= sliceHasLo
		}
		if ex.hi != nil {
			if err := c.expr(ex.hi); err != nil {
				return err
			}
			c.emit(instr{op: opCheckSlice, line: int32(ex.line)})
			flags |= sliceHasHi
		}
		c.emit(instr{op: opSlice, a: flags, line: int32(ex.line)})
		return nil
	case *attrExpr:
		if err := c.expr(ex.base); err != nil {
			return err
		}
		c.emit(instr{op: opAttr, a: c.name(ex.name), line: int32(ex.line)})
		return nil
	case *callExpr:
		if err := c.expr(ex.fn); err != nil {
			return err
		}
		for _, a := range ex.args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		c.emit(instr{op: opCall, a: int32(len(ex.args)), line: int32(ex.line)})
		return nil
	default:
		return fmt.Errorf("bscript: cannot compile expression at line %d", e.exprLine())
	}
}

func boolBit(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// --- function lowering -------------------------------------------------------

func compileFunc(st *defStmt) (*funcProto, error) {
	c := newCompiler(st.name, st.params, collectSlots(st))
	if err := c.block(st.body); err != nil {
		return nil, err
	}
	c.flush()
	c.emit(instr{op: opReturnNone})
	c.finish()
	return c.p, nil
}

// collectSlots returns the function's slot names: params first, then every
// name its body can assign (assignment targets, loop variables, except
// bindings), in source order. Loads of any other name fall through to the
// global scope at run time, preserving the tree-walker's late binding.
func collectSlots(st *defStmt) []string {
	names := append([]string(nil), st.params...)
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	var walk func(body []stmt)
	walk = func(body []stmt) {
		for _, s := range body {
			switch t := s.(type) {
			case *assignStmt:
				if id, ok := t.target.(*identExpr); ok {
					add(id.name)
				}
			case *ifStmt:
				walk(t.body)
				walk(t.orelse)
			case *whileStmt:
				walk(t.body)
			case *forStmt:
				add(t.name)
				walk(t.body)
			case *tryStmt:
				if t.name != "" {
					add(t.name)
				}
				walk(t.body)
				walk(t.handler)
			}
		}
	}
	walk(st.body)
	return names
}

func hasNestedDef(body []stmt) bool {
	for _, s := range body {
		switch t := s.(type) {
		case *defStmt:
			return true
		case *ifStmt:
			if hasNestedDef(t.body) || hasNestedDef(t.orelse) {
				return true
			}
		case *whileStmt:
			if hasNestedDef(t.body) {
				return true
			}
		case *forStmt:
			if hasNestedDef(t.body) {
				return true
			}
		case *tryStmt:
			if hasNestedDef(t.body) || hasNestedDef(t.handler) {
				return true
			}
		}
	}
	return false
}

// --- stack sizing ------------------------------------------------------------

// computeMaxStack abstractly interprets the code to find the deepest
// operand-stack state any instruction can observe.
func computeMaxStack(code []instr) int {
	depths := make([]int, len(code))
	for i := range depths {
		depths[i] = -1
	}
	type state struct{ pc, d int }
	work := []state{{0, 0}}
	max := 0
	push := func(pc, d int) {
		if pc >= len(code) {
			return
		}
		if d > max {
			max = d
		}
		if depths[pc] >= d {
			return
		}
		depths[pc] = d
		work = append(work, state{pc, d})
	}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		in := code[s.pc]
		d := s.d
		switch in.op {
		case opJump:
			push(int(in.a), d)
		case opJumpIfFalse:
			push(int(in.a), d-1)
			push(s.pc+1, d-1)
		case opCmpJump:
			push(int(in.a), d-2)
			push(s.pc+1, d-2)
		case opCmpConstJump, opCmpLocalJump:
			push(int(in.a), d-1)
			push(s.pc+1, d-1)
		case opAndJump, opOrJump:
			push(int(in.a), d)
			push(s.pc+1, d-1)
		case opIterNext:
			push(int(in.a), d-1)
			push(s.pc+1, d+1)
		case opTryPush:
			push(s.pc+1, d)
			push(int(in.a), d+int(in.b))
		case opReturn, opReturnNone, opRaise:
			// no successors
		default:
			push(s.pc+1, d+instrEffect(in))
		}
	}
	return max + 2
}

func instrEffect(in instr) int {
	switch in.op {
	case opConst, opLoadGlobal, opLoadLocal:
		return 1
	case opStoreGlobal, opStoreLocal, opAppendLocal, opPop, opBinop, opIndex, opJumpIfFalse:
		return -1
	case opBinopStore:
		return -2
	case opStoreIndex:
		return -3
	case opDelIndex:
		return -2
	case opSlice:
		n := 0
		if in.a&sliceHasLo != 0 {
			n++
		}
		if in.a&sliceHasHi != 0 {
			n++
		}
		return -n
	case opCall:
		return -int(in.a)
	case opMakeList:
		return 1 - int(in.a)
	case opMakeDict:
		return 1 - 2*int(in.a)
	default:
		// opCharge, opDefGlobal, opDefTree, opCheckLocal, opCheckSlice,
		// opNot, opNeg, opSwap, opIterNew, opTryPop, opAttr, and the
		// stack-neutral superinstructions opBinopConst, opBinopLocal,
		// opIncLocalConst
		return 0
	}
}
