package interp

import (
	"strings"
)

// maxCallDepth bounds recursion (Python's default is 1000).
const maxCallDepth = 200

func (m *Machine) eval(e expr, env *Env) (Value, error) {
	if err := m.step(e.exprLine()); err != nil {
		return nil, err
	}
	switch ex := e.(type) {
	case *intLit:
		return Int(ex.v), nil
	case *strLit:
		return Str(ex.v), nil
	case *bytesLit:
		return Bytes(ex.v), nil
	case *boolLit:
		return Bool(ex.v), nil
	case *noneLit:
		return None, nil
	case *identExpr:
		v, ok := env.Lookup(ex.name)
		if !ok {
			return nil, runtimeErrf(ex.line, "name %q is not defined", ex.name)
		}
		return v, nil
	case *listLit:
		elems := make([]Value, 0, len(ex.elems))
		for _, el := range ex.elems {
			v, err := m.eval(el, env)
			if err != nil {
				return nil, err
			}
			elems = append(elems, v)
		}
		if err := m.alloc(ex.line, int64(16+8*len(elems))); err != nil {
			return nil, err
		}
		return &List{Elems: elems}, nil
	case *dictLit:
		d := NewDict()
		for i := range ex.keys {
			k, err := m.eval(ex.keys[i], env)
			if err != nil {
				return nil, err
			}
			v, err := m.eval(ex.vals[i], env)
			if err != nil {
				return nil, err
			}
			if err := d.Set(k, v); err != nil {
				return nil, runtimeErrf(ex.line, "%v", err)
			}
		}
		if err := m.alloc(ex.line, int64(16+32*d.Len())); err != nil {
			return nil, err
		}
		return d, nil
	case *unaryExpr:
		rhs, err := m.eval(ex.rhs, env)
		if err != nil {
			return nil, err
		}
		switch ex.op {
		case "-":
			i, ok := rhs.(Int)
			if !ok {
				return nil, runtimeErrf(ex.line, "unary - requires int, got %s", rhs.Type())
			}
			return -i, nil
		case "not":
			return Bool(!Truthy(rhs)), nil
		}
		return nil, runtimeErrf(ex.line, "unknown unary operator %q", ex.op)
	case *binaryExpr:
		// Short-circuit operators return an operand, as in Python.
		if ex.op == "and" || ex.op == "or" {
			lhs, err := m.eval(ex.lhs, env)
			if err != nil {
				return nil, err
			}
			if (ex.op == "and") != Truthy(lhs) {
				return lhs, nil
			}
			return m.eval(ex.rhs, env)
		}
		lhs, err := m.eval(ex.lhs, env)
		if err != nil {
			return nil, err
		}
		rhs, err := m.eval(ex.rhs, env)
		if err != nil {
			return nil, err
		}
		return m.binop(ex.line, ex.op, lhs, rhs)
	case *indexExpr:
		base, err := m.eval(ex.base, env)
		if err != nil {
			return nil, err
		}
		idx, err := m.eval(ex.index, env)
		if err != nil {
			return nil, err
		}
		return m.index(ex.line, base, idx)
	case *sliceExpr:
		base, err := m.eval(ex.base, env)
		if err != nil {
			return nil, err
		}
		lo, hi := int64(0), int64(-1)
		hasHi := false
		if ex.lo != nil {
			v, err := m.eval(ex.lo, env)
			if err != nil {
				return nil, err
			}
			i, ok := v.(Int)
			if !ok {
				return nil, runtimeErrf(ex.line, "slice bound must be int")
			}
			lo = int64(i)
		}
		if ex.hi != nil {
			v, err := m.eval(ex.hi, env)
			if err != nil {
				return nil, err
			}
			i, ok := v.(Int)
			if !ok {
				return nil, runtimeErrf(ex.line, "slice bound must be int")
			}
			hi = int64(i)
			hasHi = true
		}
		return m.slice(ex.line, base, lo, hi, hasHi)
	case *attrExpr:
		base, err := m.eval(ex.base, env)
		if err != nil {
			return nil, err
		}
		return m.attr(ex.line, base, ex.name)
	case *callExpr:
		fn, err := m.eval(ex.fn, env)
		if err != nil {
			return nil, err
		}
		args := make([]Value, 0, len(ex.args))
		for _, a := range ex.args {
			v, err := m.eval(a, env)
			if err != nil {
				return nil, err
			}
			args = append(args, v)
		}
		return m.call(ex.line, fn, args)
	default:
		return nil, runtimeErrf(e.exprLine(), "unknown expression")
	}
}

// attr resolves base.name: an Object attribute, or a bound method on a
// builtin type. Shared by both engines.
func (m *Machine) attr(line int, base Value, name string) (Value, error) {
	if obj, ok := base.(*Object); ok {
		v, ok := obj.Attrs[name]
		if !ok {
			return nil, runtimeErrf(line, "object %s has no attribute %q", obj.Name, name)
		}
		return v, nil
	}
	// Bound method on a builtin type.
	return boundMethod{recv: base, name: name}, nil
}

func (m *Machine) call(line int, fn Value, args []Value) (Value, error) {
	switch f := fn.(type) {
	case *Func:
		return m.callFunc(f, args)
	case *compiledFunc:
		return m.callCompiled(f, args)
	case *Builtin:
		v, err := f.Fn(args)
		if err != nil {
			if _, ok := err.(*RuntimeError); ok {
				return nil, err
			}
			if err == ErrBudgetExceeded || err == ErrMemoryExceeded || err == ErrKilled {
				return nil, err
			}
			return nil, runtimeErrf(line, "%s: %v", f.Name, err)
		}
		if v == nil {
			v = None
		}
		// Charge host-returned allocations.
		if err := m.alloc(line, sizeOf(v, map[Value]bool{})); err != nil {
			return nil, err
		}
		return v, nil
	case boundMethod:
		return m.callMethod(line, f, args)
	default:
		return nil, runtimeErrf(line, "%s is not callable", fn.Type())
	}
}

func (m *Machine) callFunc(f *Func, args []Value) (Value, error) {
	if m.callDepth >= maxCallDepth {
		return nil, runtimeErrf(0, "maximum call depth exceeded")
	}
	m.callDepth++
	defer func() { m.callDepth-- }()
	if len(args) != len(f.Params) {
		return nil, runtimeErrf(0, "%s() takes %d arguments, got %d", f.Name, len(f.Params), len(args))
	}
	env := NewEnv(f.Closure)
	for i, p := range f.Params {
		env.Define(p, args[i])
	}
	ctl, err := m.execBlock(f.Body, env)
	if err != nil {
		return nil, err
	}
	if ctl.kind == ctlReturn {
		return ctl.val, nil
	}
	return None, nil
}

func (m *Machine) index(line int, base, idx Value) (Value, error) {
	switch b := base.(type) {
	case *List:
		i, ok := idx.(Int)
		if !ok {
			return nil, runtimeErrf(line, "list index must be int, got %s", idx.Type())
		}
		n := int64(len(b.Elems))
		j := int64(i)
		if j < 0 {
			j += n
		}
		if j < 0 || j >= n {
			return nil, runtimeErrf(line, "list index %d out of range (len %d)", i, n)
		}
		return b.Elems[j], nil
	case Str:
		i, ok := idx.(Int)
		if !ok {
			return nil, runtimeErrf(line, "string index must be int")
		}
		n := int64(len(b))
		j := int64(i)
		if j < 0 {
			j += n
		}
		if j < 0 || j >= n {
			return nil, runtimeErrf(line, "string index %d out of range (len %d)", i, n)
		}
		return Str(b[j : j+1]), nil
	case Bytes:
		i, ok := idx.(Int)
		if !ok {
			return nil, runtimeErrf(line, "bytes index must be int")
		}
		n := int64(len(b))
		j := int64(i)
		if j < 0 {
			j += n
		}
		if j < 0 || j >= n {
			return nil, runtimeErrf(line, "bytes index %d out of range (len %d)", i, n)
		}
		return Int(b[j]), nil
	case *Dict:
		v, ok, err := b.Get(idx)
		if err != nil {
			return nil, runtimeErrf(line, "%v", err)
		}
		if !ok {
			return nil, runtimeErrf(line, "key %s not found", Repr(idx))
		}
		return v, nil
	default:
		return nil, runtimeErrf(line, "%s is not indexable", base.Type())
	}
}

func (m *Machine) slice(line int, base Value, lo, hi int64, hasHi bool) (Value, error) {
	clamp := func(n int64) (int64, int64) {
		a, b := lo, hi
		if !hasHi {
			b = n
		}
		if a < 0 {
			a += n
		}
		if b < 0 {
			b += n
		}
		if a < 0 {
			a = 0
		}
		if b > n {
			b = n
		}
		if a > b {
			a = b
		}
		return a, b
	}
	switch b := base.(type) {
	case Str:
		a, z := clamp(int64(len(b)))
		if err := m.alloc(line, z-a); err != nil {
			return nil, err
		}
		return Str(b[a:z]), nil
	case Bytes:
		a, z := clamp(int64(len(b)))
		if err := m.alloc(line, z-a); err != nil {
			return nil, err
		}
		out := make([]byte, z-a)
		copy(out, b[a:z])
		return Bytes(out), nil
	case *List:
		a, z := clamp(int64(len(b.Elems)))
		if err := m.alloc(line, (z-a)*8); err != nil {
			return nil, err
		}
		out := make([]Value, z-a)
		copy(out, b.Elems[a:z])
		return &List{Elems: out}, nil
	default:
		return nil, runtimeErrf(line, "%s is not sliceable", base.Type())
	}
}

func (m *Machine) binop(line int, op string, lhs, rhs Value) (Value, error) {
	switch op {
	case "==":
		return Bool(Equal(lhs, rhs)), nil
	case "!=":
		return Bool(!Equal(lhs, rhs)), nil
	case "in":
		return m.contains(line, lhs, rhs)
	}

	switch l := lhs.(type) {
	case Int:
		r, ok := rhs.(Int)
		if !ok {
			return nil, runtimeErrf(line, "unsupported operands int %s %s", op, rhs.Type())
		}
		switch op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "//":
			if r == 0 {
				return nil, runtimeErrf(line, "integer division by zero")
			}
			return Int(floorDiv(int64(l), int64(r))), nil
		case "%":
			if r == 0 {
				return nil, runtimeErrf(line, "integer modulo by zero")
			}
			return Int(floorMod(int64(l), int64(r))), nil
		case "<":
			return Bool(l < r), nil
		case "<=":
			return Bool(l <= r), nil
		case ">":
			return Bool(l > r), nil
		case ">=":
			return Bool(l >= r), nil
		}
	case Str:
		r, ok := rhs.(Str)
		if !ok {
			if op == "*" {
				if n, isInt := rhs.(Int); isInt {
					return m.repeatStr(line, l, int64(n))
				}
			}
			return nil, runtimeErrf(line, "unsupported operands str %s %s", op, rhs.Type())
		}
		switch op {
		case "+":
			if err := m.alloc(line, int64(len(l)+len(r))); err != nil {
				return nil, err
			}
			return l + r, nil
		case "<":
			return Bool(l < r), nil
		case "<=":
			return Bool(l <= r), nil
		case ">":
			return Bool(l > r), nil
		case ">=":
			return Bool(l >= r), nil
		}
	case Bytes:
		r, ok := rhs.(Bytes)
		if !ok {
			return nil, runtimeErrf(line, "unsupported operands bytes %s %s", op, rhs.Type())
		}
		switch op {
		case "+":
			if err := m.alloc(line, int64(len(l)+len(r))); err != nil {
				return nil, err
			}
			out := make([]byte, 0, len(l)+len(r))
			out = append(out, l...)
			out = append(out, r...)
			return Bytes(out), nil
		case "<":
			return Bool(string(l) < string(r)), nil
		case ">":
			return Bool(string(l) > string(r)), nil
		}
	case *List:
		r, ok := rhs.(*List)
		if ok && op == "+" {
			if err := m.alloc(line, int64(8*(len(l.Elems)+len(r.Elems)))); err != nil {
				return nil, err
			}
			out := make([]Value, 0, len(l.Elems)+len(r.Elems))
			out = append(out, l.Elems...)
			out = append(out, r.Elems...)
			return &List{Elems: out}, nil
		}
	}
	return nil, runtimeErrf(line, "unsupported operands %s %s %s", lhs.Type(), op, rhs.Type())
}

func (m *Machine) repeatStr(line int, s Str, n int64) (Value, error) {
	if n <= 0 {
		return Str(""), nil
	}
	if err := m.alloc(line, int64(len(s))*n); err != nil {
		return nil, err
	}
	return Str(strings.Repeat(string(s), int(n))), nil
}

func (m *Machine) contains(line int, needle, hay Value) (Value, error) {
	switch h := hay.(type) {
	case *List:
		for _, e := range h.Elems {
			if Equal(e, needle) {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	case *Dict:
		_, ok, err := h.Get(needle)
		if err != nil {
			return nil, runtimeErrf(line, "%v", err)
		}
		return Bool(ok), nil
	case Str:
		n, ok := needle.(Str)
		if !ok {
			return nil, runtimeErrf(line, "'in <str>' requires str, got %s", needle.Type())
		}
		return Bool(strings.Contains(string(h), string(n))), nil
	case Bytes:
		n, ok := needle.(Bytes)
		if !ok {
			return nil, runtimeErrf(line, "'in <bytes>' requires bytes, got %s", needle.Type())
		}
		return Bool(strings.Contains(string(h), string(n))), nil
	default:
		return nil, runtimeErrf(line, "'in' not supported on %s", hay.Type())
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func floorMod(a, b int64) int64 {
	r := a % b
	if r != 0 && ((a < 0) != (b < 0)) {
		r += b
	}
	return r
}
