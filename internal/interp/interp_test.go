package interp

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// run executes src in a fresh machine and returns the machine.
func run(t *testing.T, src string) *Machine {
	t.Helper()
	m := NewMachine(Limits{})
	if err := m.Run(src); err != nil {
		t.Fatalf("run error: %v\nsource:\n%s", err, src)
	}
	return m
}

// evalVar runs src and returns the named global.
func evalVar(t *testing.T, src, name string) Value {
	t.Helper()
	m := run(t, src)
	v, ok := m.Globals.Lookup(name)
	if !ok {
		t.Fatalf("global %q not defined", name)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"x = 1 + 2 * 3", 7},
		{"x = (1 + 2) * 3", 9},
		{"x = 10 - 4 - 3", 3},
		{"x = 7 // 2", 3},
		{"x = -7 // 2", -4}, // floor division
		{"x = 7 % 3", 1},
		{"x = -7 % 3", 2}, // Python-style modulo
		{"x = -(3 + 4)", -7},
		{"x = 2 * 3 + 4 * 5", 26},
	}
	for _, c := range cases {
		got := evalVar(t, c.src, "x")
		if got != Int(c.want) {
			t.Errorf("%q: got %v, want %d", c.src, got, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	m := NewMachine(Limits{})
	if err := m.Run("x = 1 // 0"); err == nil {
		t.Fatal("division by zero succeeded")
	}
	if err := m.Run("x = 1 % 0"); err == nil {
		t.Fatal("modulo by zero succeeded")
	}
}

func TestStringsAndBytes(t *testing.T) {
	src := `
s = "hello" + " " + "world"
n = len(s)
b = b"abc" + b"def"
sub = s[0:5]
ch = s[6]
last = s[-1]
enc = "xyz".encode()
dec = b"pqr".decode()
up = "mIxEd".upper()
parts = "a,b,c".split(",")
joined = "-".join(["1", "2", "3"])
`
	m := run(t, src)
	checks := map[string]Value{
		"s":      Str("hello world"),
		"n":      Int(11),
		"b":      Bytes("abcdef"),
		"sub":    Str("hello"),
		"ch":     Str("w"),
		"last":   Str("d"),
		"enc":    Bytes("xyz"),
		"dec":    Str("pqr"),
		"up":     Str("MIXED"),
		"joined": Str("1-2-3"),
	}
	for name, want := range checks {
		got, _ := m.Globals.Lookup(name)
		if !Equal(got, want) {
			t.Errorf("%s = %s, want %s", name, Repr(got), Repr(want))
		}
	}
	parts, _ := m.Globals.Lookup("parts")
	if Repr(parts) != `["a", "b", "c"]` {
		t.Errorf("parts = %s", Repr(parts))
	}
}

func TestListOperations(t *testing.T) {
	src := `
l = [1, 2, 3]
l.append(4)
total = 0
for x in l:
    total += x
l2 = l + [5]
popped = l2.pop()
first = l2[0]
sliced = l2[1:3]
idx = l2.index(3)
has = 2 in l2
nope = 99 in l2
`
	m := run(t, src)
	if v, _ := m.Globals.Lookup("total"); v != Int(10) {
		t.Errorf("total = %v", v)
	}
	if v, _ := m.Globals.Lookup("popped"); v != Int(5) {
		t.Errorf("popped = %v", v)
	}
	if v, _ := m.Globals.Lookup("idx"); v != Int(2) {
		t.Errorf("idx = %v", v)
	}
	if v, _ := m.Globals.Lookup("has"); v != Bool(true) {
		t.Errorf("has = %v", v)
	}
	if v, _ := m.Globals.Lookup("nope"); v != Bool(false) {
		t.Errorf("nope = %v", v)
	}
	if v, _ := m.Globals.Lookup("sliced"); Repr(v) != "[2, 3]" {
		t.Errorf("sliced = %s", Repr(v))
	}
}

func TestDictOperations(t *testing.T) {
	src := `
d = {"a": 1, "b": 2}
d["c"] = 3
n = len(d)
a = d["a"]
g = d.get("z", 42)
ks = d.keys()
has = "b" in d
del d["b"]
has2 = "b" in d
`
	m := run(t, src)
	if v, _ := m.Globals.Lookup("n"); v != Int(3) {
		t.Errorf("n = %v", v)
	}
	if v, _ := m.Globals.Lookup("a"); v != Int(1) {
		t.Errorf("a = %v", v)
	}
	if v, _ := m.Globals.Lookup("g"); v != Int(42) {
		t.Errorf("g = %v", v)
	}
	if v, _ := m.Globals.Lookup("has"); v != Bool(true) {
		t.Errorf("has = %v", v)
	}
	if v, _ := m.Globals.Lookup("has2"); v != Bool(false) {
		t.Errorf("has2 = %v (del failed)", v)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
def classify(n):
    if n < 0:
        return "neg"
    elif n == 0:
        return "zero"
    else:
        return "pos"

a = classify(-5)
b = classify(0)
c = classify(9)

count = 0
i = 0
while True:
    i += 1
    if i % 2 == 0:
        continue
    if i > 10:
        break
    count += 1

evens = 0
for k in range(20):
    if k % 2 == 0:
        evens += 1
`
	m := run(t, src)
	for name, want := range map[string]Value{
		"a": Str("neg"), "b": Str("zero"), "c": Str("pos"),
		"count": Int(5), "evens": Int(10),
	} {
		if v, _ := m.Globals.Lookup(name); !Equal(v, want) {
			t.Errorf("%s = %s, want %s", name, Repr(v), Repr(want))
		}
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

def make_adder(k):
    def add(x):
        return x + k
    return add

f = fib(15)
add5 = make_adder(5)
g = add5(10)
`
	m := run(t, src)
	if v, _ := m.Globals.Lookup("f"); v != Int(610) {
		t.Errorf("fib(15) = %v, want 610", v)
	}
	if v, _ := m.Globals.Lookup("g"); v != Int(15) {
		t.Errorf("closure result = %v, want 15", v)
	}
}

func TestRecursionDepthLimited(t *testing.T) {
	m := NewMachine(Limits{})
	err := m.Run(`
def boom(n):
    return boom(n + 1)

boom(0)
`)
	if err == nil {
		t.Fatal("unbounded recursion succeeded")
	}
}

func TestBooleanLogic(t *testing.T) {
	src := `
a = True and False
b = True or False
c = not True
d = 1 and 2
e = 0 or "fallback"
f = None or 5
short = False and crash_if_evaluated
`
	m := run(t, src)
	for name, want := range map[string]Value{
		"a": Bool(false), "b": Bool(true), "c": Bool(false),
		"d": Int(2), "e": Str("fallback"), "f": Int(5), "short": Bool(false),
	} {
		if v, _ := m.Globals.Lookup(name); !Equal(v, want) {
			t.Errorf("%s = %s, want %s", name, Repr(v), Repr(want))
		}
	}
}

func TestComparisons(t *testing.T) {
	src := `
a = 1 < 2
b = "abc" < "abd"
c = [1, 2] == [1, 2]
d = {"x": 1} == {"x": 1}
e = b"a" != b"b"
f = not ("x" in "xyz")
g = "q" not in "xyz"
`
	m := run(t, src)
	for _, name := range []string{"a", "b", "c", "d", "e", "g"} {
		if v, _ := m.Globals.Lookup(name); v != Bool(true) {
			t.Errorf("%s = %v, want True", name, v)
		}
	}
	if v, _ := m.Globals.Lookup("f"); v != Bool(false) {
		t.Errorf("f = %v, want False", v)
	}
}

func TestInstructionBudget(t *testing.T) {
	m := NewMachine(Limits{Instructions: 10_000})
	err := m.Run(`
i = 0
while True:
    i += 1
`)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
}

func TestMemoryLimit(t *testing.T) {
	m := NewMachine(Limits{Memory: 64 * 1024, Instructions: 100_000_000})
	err := m.Run(`
s = b"xxxxxxxxxxxxxxxx"
while True:
    s = s + s
`)
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("got %v, want ErrMemoryExceeded", err)
	}
}

func TestMemoryReleasedAfterRebinding(t *testing.T) {
	// Rebinding a large value must not count the old value forever.
	m := NewMachine(Limits{Memory: 256 * 1024, Instructions: 100_000_000})
	err := m.Run(`
i = 0
while i < 100:
    s = bytes(100000)
    i += 1
`)
	if err != nil {
		t.Fatalf("live-memory accounting leaked dead values: %v", err)
	}
}

func TestKill(t *testing.T) {
	m := NewMachine(Limits{Instructions: 1 << 40})
	done := make(chan error, 1)
	go func() {
		done <- m.Run(`
i = 0
while True:
    i += 1
`)
	}()
	time.Sleep(20 * time.Millisecond)
	m.Kill()
	select {
	case err := <-done:
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("got %v, want ErrKilled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Kill did not stop the machine")
	}
}

func TestHostObjects(t *testing.T) {
	m := NewMachine(Limits{})
	var sent []byte
	api := NewObject("api", map[string]BuiltinFn{
		"send": func(args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("send takes 1 argument")
			}
			b, ok := args[0].(Bytes)
			if !ok {
				return nil, fmt.Errorf("send requires bytes")
			}
			sent = append([]byte(nil), b...)
			return None, nil
		},
	})
	m.Bind("api", api)
	if err := m.Run(`api.send(b"payload")`); err != nil {
		t.Fatal(err)
	}
	if string(sent) != "payload" {
		t.Fatalf("sent %q", sent)
	}
	// Unknown attribute fails cleanly.
	if err := m.Run(`api.exec("rm -rf /")`); err == nil {
		t.Fatal("unknown host attribute callable")
	}
}

// TestBrowserFunctionShape runs a transliteration of the paper's
// Appendix A browser function against stub host objects.
func TestBrowserFunctionShape(t *testing.T) {
	m := NewMachine(Limits{})
	page := bytes.Repeat([]byte("<html>content</html>"), 100)
	var sent []byte
	m.Bind("requests", NewObject("requests", map[string]BuiltinFn{
		"get": func(args []Value) (Value, error) { return Bytes(page), nil },
	}))
	m.Bind("zlib", NewObject("zlib", map[string]BuiltinFn{
		"compress": func(args []Value) (Value, error) {
			return args[0], nil // identity stub; the real one lives in the sandbox
		},
	}))
	m.Bind("os", NewObject("os", map[string]BuiltinFn{
		"urandom": func(args []Value) (Value, error) {
			n := args[0].(Int)
			return Bytes(make([]byte, n)), nil
		},
	}))
	m.Bind("api", NewObject("api", map[string]BuiltinFn{
		"send": func(args []Value) (Value, error) {
			sent = []byte(args[0].(Bytes))
			return None, nil
		},
	}))

	src := `
def browser(url, padding):
    body = requests.get(url)
    compressed = zlib.compress(body)
    final = compressed
    if padding - len(final) > 0:
        final = final + os.urandom(padding - len(final))
    else:
        final = final + os.urandom((len(final) + padding) % padding)
    api.send(final)

browser("http://example.org", 4096)
`
	if err := m.Run(src); err != nil {
		t.Fatal(err)
	}
	if len(sent) != 4096 {
		t.Fatalf("sent %d bytes, want exactly the 4096-byte padding target", len(sent))
	}
	if !bytes.HasPrefix(sent, page) {
		t.Fatal("padded payload does not start with page content")
	}
}

func TestCallFunctionFromHost(t *testing.T) {
	m := run(t, `
def add(a, b):
    return a + b
`)
	v, err := m.CallFunction("add", Int(2), Int(40))
	if err != nil {
		t.Fatal(err)
	}
	if v != Int(42) {
		t.Fatalf("got %v", v)
	}
	if _, err := m.CallFunction("add", Int(1)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := m.CallFunction("missing"); err == nil {
		t.Fatal("missing function accepted")
	}
}

func TestPrintOutput(t *testing.T) {
	m := NewMachine(Limits{})
	var out bytes.Buffer
	m.Stdout = &out
	if err := m.Run(`print("hello", 42, [1, 2])`); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "hello 42 [1, 2]\n" {
		t.Fatalf("print output %q", got)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"x = ",
		"if True\n    pass",
		"def f(:\n    pass",
		"x = 'unterminated",
		"x = [1, 2",
		"1 +* 2",
		"x = $bad",
		"  x = 1", // unexpected initial indent... (leading indent treated as block)
		"del x",
	}
	for _, src := range bad {
		m := NewMachine(Limits{})
		if err := m.Run(src); err == nil {
			t.Errorf("%q: no error", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	bad := []string{
		`x = undefined_name`,
		`x = [1][5]`,
		`x = {"a": 1}["b"]`,
		`x = "s" + 1`,
		`x = len(42)`,
		`x = 5(3)`,
		`x = [1, 2][["unhashable"]]`,
		`x = {}[[1]]`,
		`x = None.method()`,
		`for x in 42:
    pass`,
	}
	for _, src := range bad {
		m := NewMachine(Limits{})
		if err := m.Run(src); err == nil {
			t.Errorf("%q: no error", src)
		}
	}
}

func TestIndentationBlocks(t *testing.T) {
	src := `
def outer(n):
    total = 0
    for i in range(n):
        if i % 2 == 0:
            for j in range(i):
                total += 1
        else:
            total += 100
    return total

x = outer(5)
`
	// i=0: +0; i=1: +100; i=2: +2; i=3: +100; i=4: +4 => 206
	if v := evalVar(t, src, "x"); v != Int(206) {
		t.Fatalf("x = %v, want 206", v)
	}
}

func TestMultilineBracketsIgnoreNewlines(t *testing.T) {
	src := `
l = [
    1,
    2,
    3,
]
d = {
    "a": 1,
}
x = len(l) + len(d)
`
	if v := evalVar(t, src, "x"); v != Int(4) {
		t.Fatalf("x = %v", v)
	}
}

func TestAugmentedAssignments(t *testing.T) {
	src := `
x = 10
x += 5
x -= 3
x *= 2
y = "ab"
y += "cd"
`
	m := run(t, src)
	if v, _ := m.Globals.Lookup("x"); v != Int(24) {
		t.Fatalf("x = %v", v)
	}
	if v, _ := m.Globals.Lookup("y"); !Equal(v, Str("abcd")) {
		t.Fatalf("y = %v", v)
	}
}

// Property: integer arithmetic matches Go's semantics adjusted for floor
// division/modulo.
func TestArithmeticProperty(t *testing.T) {
	check := func(a, b int16) bool {
		if b == 0 {
			return true
		}
		src := fmt.Sprintf("q = %d // %d\nr = %d %% %d", a, b, a, b)
		m := NewMachine(Limits{})
		if err := m.Run(src); err != nil {
			return false
		}
		q, _ := m.Globals.Lookup("q")
		r, _ := m.Globals.Lookup("r")
		// Verify the division identity a == q*b + r, with 0 <= |r| < |b|
		// and r's sign matching b's.
		qi, ri := int64(q.(Int)), int64(r.(Int))
		if qi*int64(b)+ri != int64(a) {
			return false
		}
		if ri != 0 && (ri < 0) != (b < 0) {
			return false
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Repr of lists round-trips element count for int lists.
func TestListReprProperty(t *testing.T) {
	check := func(xs []int8) bool {
		parts := make([]string, len(xs))
		for i, x := range xs {
			parts[i] = fmt.Sprintf("%d", x)
		}
		src := "l = [" + strings.Join(parts, ", ") + "]\nn = len(l)"
		m := NewMachine(Limits{})
		if err := m.Run(src); err != nil {
			return false
		}
		n, _ := m.Globals.Lookup("n")
		return n == Int(len(xs))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStepsAccounting(t *testing.T) {
	m := NewMachine(Limits{})
	if err := m.Run("x = 1 + 2"); err != nil {
		t.Fatal(err)
	}
	if m.Steps() == 0 {
		t.Fatal("no instructions recorded")
	}
}

func BenchmarkInterpFib(b *testing.B) {
	src := `
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
`
	m := NewMachine(Limits{Instructions: 1 << 40})
	if err := m.Run(src); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.CallFunction("fib", Int(12)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpLoop(b *testing.B) {
	m := NewMachine(Limits{Instructions: 1 << 40})
	if err := m.Run(`
def spin(n):
    i = 0
    while i < n:
        i += 1
    return i
`); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.CallFunction("spin", Int(1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTryExcept(t *testing.T) {
	src := `
def safe_div(a, b):
    try:
        return a // b
    except:
        return -1

ok = safe_div(10, 2)
bad = safe_div(10, 0)

msg = ""
try:
    x = undefined_name
except as e:
    msg = e

caught_raise = False
try:
    raise "custom failure"
except as e2:
    caught_raise = "custom failure" in e2

nested = 0
try:
    try:
        raise "inner"
    except:
        nested = 1
        raise "outer"
except:
    nested = 2
`
	m := run(t, src)
	if v, _ := m.Globals.Lookup("ok"); v != Int(5) {
		t.Fatalf("ok = %v", v)
	}
	if v, _ := m.Globals.Lookup("bad"); v != Int(-1) {
		t.Fatalf("bad = %v", v)
	}
	if v, _ := m.Globals.Lookup("msg"); v == Str("") {
		t.Fatal("except-as did not bind the message")
	}
	if v, _ := m.Globals.Lookup("caught_raise"); v != Bool(true) {
		t.Fatalf("caught_raise = %v", v)
	}
	if v, _ := m.Globals.Lookup("nested"); v != Int(2) {
		t.Fatalf("nested = %v", v)
	}
}

func TestTryDoesNotCatchResourceViolations(t *testing.T) {
	m := NewMachine(Limits{Instructions: 5000})
	err := m.Run(`
try:
    while True:
        pass
except:
    swallowed = True
`)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want uncatchable budget error", err)
	}
	if _, ok := m.Globals.Lookup("swallowed"); ok {
		t.Fatal("budget exhaustion was caught by except")
	}
}

func TestTryDoesNotCatchKill(t *testing.T) {
	m := NewMachine(Limits{Instructions: 1 << 40})
	done := make(chan error, 1)
	go func() {
		done <- m.Run(`
try:
    while True:
        pass
except:
    pass
`)
	}()
	time.Sleep(10 * time.Millisecond)
	m.Kill()
	if err := <-done; !errors.Is(err, ErrKilled) {
		t.Fatalf("got %v, want uncatchable kill", err)
	}
}

func TestTryWithoutExceptRejected(t *testing.T) {
	m := NewMachine(Limits{})
	if err := m.Run("try:\n    pass\n"); err == nil {
		t.Fatal("try without except accepted")
	}
}

func TestTryCatchesHostAPIErrors(t *testing.T) {
	m := NewMachine(Limits{})
	m.Bind("flaky", NewObject("flaky", map[string]BuiltinFn{
		"call": func(args []Value) (Value, error) {
			return nil, fmt.Errorf("backend unavailable")
		},
	}))
	if err := m.Run(`
recovered = False
try:
    flaky.call()
except as e:
    recovered = "backend unavailable" in e
`); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Globals.Lookup("recovered"); v != Bool(true) {
		t.Fatalf("recovered = %v", v)
	}
}
