package interp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a bscript runtime value.
type Value interface {
	// Type returns the value's type name as shown in error messages.
	Type() string
}

// Int is an integer value.
type Int int64

// Str is a string value.
type Str string

// Bytes is a byte-string value.
type Bytes []byte

// Bool is a boolean value.
type Bool bool

// NoneVal is the None singleton's type.
type NoneVal struct{}

// None is the bscript None value.
var None = NoneVal{}

// List is a mutable list.
type List struct{ Elems []Value }

// dictEntry preserves the original key value for iteration.
type dictEntry struct {
	key Value
	val Value
}

// Dict is a mutable mapping with Int, Str, or Bytes keys.
type Dict struct{ m map[string]dictEntry }

// NewDict returns an empty dict.
func NewDict() *Dict { return &Dict{m: make(map[string]dictEntry)} }

// RangeVal is a lazy integer range (start, stop, step).
type RangeVal struct{ Start, Stop, Step int64 }

// Func is a user-defined function.
type Func struct {
	Name    string
	Params  []string
	Body    []stmt
	Closure *Env
}

// BuiltinFn is the signature of host-provided functions.
type BuiltinFn func(args []Value) (Value, error)

// Builtin is a host-provided function value.
type Builtin struct {
	Name string
	Fn   BuiltinFn
}

// Object is a host-provided object exposing named attributes (typically
// Builtins). Bento's API surface — api, http, tor, fs, stem — are Objects.
type Object struct {
	Name  string
	Attrs map[string]Value
}

// boundMethod is a method bound to a receiver (e.g. list.append).
type boundMethod struct {
	recv Value
	name string
}

func (Int) Type() string         { return "int" }
func (Str) Type() string         { return "str" }
func (Bytes) Type() string       { return "bytes" }
func (Bool) Type() string        { return "bool" }
func (NoneVal) Type() string     { return "None" }
func (*List) Type() string       { return "list" }
func (*Dict) Type() string       { return "dict" }
func (RangeVal) Type() string    { return "range" }
func (*Func) Type() string       { return "function" }
func (*Builtin) Type() string    { return "builtin" }
func (*Object) Type() string     { return "object" }
func (boundMethod) Type() string { return "method" }

// Truthy implements Python-style truthiness.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case Bool:
		return bool(x)
	case Int:
		return x != 0
	case Str:
		return len(x) > 0
	case Bytes:
		return len(x) > 0
	case NoneVal:
		return false
	case *List:
		return len(x.Elems) > 0
	case *Dict:
		return len(x.m) > 0
	case RangeVal:
		return rangeLen(x) > 0
	default:
		return true
	}
}

func rangeLen(r RangeVal) int64 {
	if r.Step == 0 {
		return 0
	}
	if r.Step > 0 {
		if r.Stop <= r.Start {
			return 0
		}
		return (r.Stop - r.Start + r.Step - 1) / r.Step
	}
	if r.Start <= r.Stop {
		return 0
	}
	return (r.Start - r.Stop - r.Step - 1) / (-r.Step)
}

// Repr renders a value the way the REPL or print would.
func Repr(v Value) string {
	switch x := v.(type) {
	case Int:
		return strconv.FormatInt(int64(x), 10)
	case Str:
		return string(x)
	case Bytes:
		return fmt.Sprintf("b'%s'", escapeBytes(x))
	case Bool:
		if x {
			return "True"
		}
		return "False"
	case NoneVal:
		return "None"
	case *List:
		parts := make([]string, len(x.Elems))
		for i, e := range x.Elems {
			parts[i] = reprQuoted(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Dict:
		keys := x.sortedKeys()
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			e := x.m[k]
			parts = append(parts, reprQuoted(e.key)+": "+reprQuoted(e.val))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case RangeVal:
		return fmt.Sprintf("range(%d, %d)", x.Start, x.Stop)
	case *Func:
		return fmt.Sprintf("<function %s>", x.Name)
	case *compiledFunc:
		return fmt.Sprintf("<function %s>", x.proto.name)
	case *Builtin:
		return fmt.Sprintf("<builtin %s>", x.Name)
	case *Object:
		return fmt.Sprintf("<object %s>", x.Name)
	default:
		return fmt.Sprintf("<%s>", v.Type())
	}
}

func reprQuoted(v Value) string {
	if s, ok := v.(Str); ok {
		return strconv.Quote(string(s))
	}
	return Repr(v)
}

func escapeBytes(b []byte) string {
	var sb strings.Builder
	for _, c := range b {
		if c >= 32 && c < 127 && c != '\'' && c != '\\' {
			sb.WriteByte(c)
		} else {
			fmt.Fprintf(&sb, "\\x%02x", c)
		}
	}
	return sb.String()
}

// Equal implements deep equality.
func Equal(a, b Value) bool {
	switch x := a.(type) {
	case Int:
		y, ok := b.(Int)
		return ok && x == y
	case Str:
		y, ok := b.(Str)
		return ok && x == y
	case Bytes:
		y, ok := b.(Bytes)
		return ok && string(x) == string(y)
	case Bool:
		y, ok := b.(Bool)
		return ok && x == y
	case NoneVal:
		_, ok := b.(NoneVal)
		return ok
	case *List:
		y, ok := b.(*List)
		if !ok || len(x.Elems) != len(y.Elems) {
			return false
		}
		for i := range x.Elems {
			if !Equal(x.Elems[i], y.Elems[i]) {
				return false
			}
		}
		return true
	case *Dict:
		y, ok := b.(*Dict)
		if !ok || len(x.m) != len(y.m) {
			return false
		}
		for k, e := range x.m {
			e2, ok := y.m[k]
			if !ok || !Equal(e.val, e2.val) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

// dictKey canonicalizes a key value, or fails for unhashable types.
func dictKey(v Value) (string, error) {
	switch x := v.(type) {
	case Int:
		return "i:" + strconv.FormatInt(int64(x), 10), nil
	case Str:
		return "s:" + string(x), nil
	case Bytes:
		return "b:" + string(x), nil
	case Bool:
		if x {
			return "i:1", nil
		}
		return "i:0", nil
	default:
		return "", fmt.Errorf("unhashable key type %s", v.Type())
	}
}

func (d *Dict) sortedKeys() []string {
	keys := make([]string, 0, len(d.m))
	for k := range d.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Get looks up a key.
func (d *Dict) Get(key Value) (Value, bool, error) {
	k, err := dictKey(key)
	if err != nil {
		return nil, false, err
	}
	e, ok := d.m[k]
	if !ok {
		return nil, false, nil
	}
	return e.val, true, nil
}

// Set stores a key/value pair.
func (d *Dict) Set(key, val Value) error {
	k, err := dictKey(key)
	if err != nil {
		return err
	}
	d.m[k] = dictEntry{key: key, val: val}
	return nil
}

// Delete removes a key.
func (d *Dict) Delete(key Value) error {
	k, err := dictKey(key)
	if err != nil {
		return err
	}
	delete(d.m, k)
	return nil
}

// Len returns the number of entries.
func (d *Dict) Len() int { return len(d.m) }

// Keys returns the dict's keys in canonical order.
func (d *Dict) Keys() []Value {
	out := make([]Value, 0, len(d.m))
	for _, k := range d.sortedKeys() {
		out = append(out, d.m[k].key)
	}
	return out
}

// Values returns the dict's values in canonical key order.
func (d *Dict) Values() []Value {
	out := make([]Value, 0, len(d.m))
	for _, k := range d.sortedKeys() {
		out = append(out, d.m[k].val)
	}
	return out
}

// sizeOf estimates the live size of a value in bytes, for memory
// accounting. seen guards against cycles.
func sizeOf(v Value, seen map[Value]bool) int64 {
	const overhead = 16
	switch x := v.(type) {
	case Str:
		return overhead + int64(len(x))
	case Bytes:
		return overhead + int64(len(x))
	case *List:
		if seen[v] {
			return overhead
		}
		seen[v] = true
		total := int64(overhead)
		for _, e := range x.Elems {
			total += sizeOf(e, seen) + 8
		}
		return total
	case *Dict:
		if seen[v] {
			return overhead
		}
		seen[v] = true
		total := int64(overhead)
		for k, e := range x.m {
			total += int64(len(k)) + sizeOf(e.val, seen) + 16
		}
		return total
	default:
		return overhead
	}
}

// Env is a lexical scope.
type Env struct {
	parent *Env
	vars   map[string]Value
}

// NewEnv creates a scope with the given parent (nil for globals).
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: make(map[string]Value)}
}

// Lookup resolves a name through the scope chain.
func (e *Env) Lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Set assigns in the scope holding name, or defines it locally.
func (e *Env) Set(name string, v Value) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
	}
	e.vars[name] = v
}

// Define creates or replaces name in this exact scope.
func (e *Env) Define(name string, v Value) { e.vars[name] = v }
