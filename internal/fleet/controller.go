package fleet

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/bento"
	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/simnet"
)

// Config tunes a Controller. All durations are virtual (simnet clock);
// zero fields take the defaults noted.
type Config struct {
	// Client drives every control-plane session (spawns, probes,
	// shutdowns). Required.
	Client *bento.Client
	// Consensus returns a fresh consensus each reconcile pass — relay
	// liveness as the directory sees it. A node that leaves the
	// consensus is retired immediately. Required.
	Consensus func() (*dirauth.Consensus, error)
	// Interval is the reconcile tick (default 500ms).
	Interval time.Duration
	// OpDeadline bounds one attempt of one control-plane operation
	// (default 10s).
	OpDeadline time.Duration
	// FailureThreshold is how many consecutive probe failures retire a
	// ready replica (default 2). Permanent-failure reports retire it
	// immediately.
	FailureThreshold int
	// BaseBackoff/MaxBackoff bound the per-slot requeue backoff after a
	// failed action (defaults 250ms / 8s); the actual wait draws jitter
	// from the controller's seeded RNG.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold consecutive short-lived placements open a slot's
	// circuit breaker for BreakerCooldown (defaults 3 / 15s). A replica
	// that stays ready for MinUptime (default 5s) resets the count: a
	// relay crash after honest service is churn, not poison.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	MinUptime        time.Duration
	// SuspectCooldown is how long a node that ate a replica is avoided
	// by the allocator while alternatives exist (default 10s).
	SuspectCooldown time.Duration
	// Seed drives placement choice and backoff jitter (default 1).
	Seed int64
	// Obs overrides the telemetry registry (default: the client
	// network's registry).
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.OpDeadline <= 0 {
		c.OpDeadline = 10 * time.Second
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 2
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 250 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 8 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 15 * time.Second
	}
	if c.MinUptime <= 0 {
		c.MinUptime = 5 * time.Second
	}
	if c.SuspectCooldown <= 0 {
		c.SuspectCooldown = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// slot is one replica's reconciliation state. All fields are guarded by
// the controller mutex; the session/function handles are only used by
// action goroutines that own them until a result is delivered.
type slot struct {
	id    int
	phase Phase

	node      *dirauth.Descriptor
	man       *policy.Manifest
	sess      *bento.Session
	fn        *bento.SessionFunction
	invokeTok string

	// incarnation versions this slot's placements; it is part of the
	// spawn idempotency key and bumps only when the previous placement
	// is confirmed dealt with (retired, or orphan-recorded), never on an
	// unknown-fate failure — those must retry under the same key.
	incarnation int
	// unknownFate marks a placement that died with transport-class
	// errors: the server may hold a live function under our key, so the
	// next attempt sticks to the same node (or orphans it when moving).
	unknownFate bool
	srcHash     [sha256.Size]byte

	busy       bool // an action goroutine is in flight
	probeFails int
	readySince time.Duration

	backoff     time.Duration
	nextAttempt time.Duration

	breakerFails     int
	breakerOpenUntil time.Duration
}

// orphan is a possibly-leaked placement: a spawn key that may hold a
// container on a node we could not confirm shutdown with. Reaping
// re-spawns under the same key (adopting the container if it exists,
// creating a throwaway if not) and shuts it down — an idempotent
// ensure-absent.
type orphan struct {
	node        *dirauth.Descriptor
	key         string
	man         *policy.Manifest
	busy        bool
	backoff     time.Duration
	nextAttempt time.Duration
}

// result is an async action's report back to the reconcile loop.
type result struct {
	slotID      int
	incarnation int
	gen         uint64
	kind        string // "place" | "upgrade"
	err         error
	unknownFate bool
	sess        *bento.Session
	fn          *bento.SessionFunction
}

// Controller reconciles one fleet Spec against the world. Create with
// New, set desired state with Apply, stop with Close. Closing stops the
// control loop but leaves running replicas in place (the workload
// outlives its controller, as with any supervisor handoff).
type Controller struct {
	cfg   Config
	clock *simnet.Clock
	om    metrics
	alloc *allocator

	wake    chan struct{}
	results chan result
	done    chan struct{}

	mu            sync.Mutex
	spec          *Spec
	srcHash       [sha256.Size]byte
	gen           uint64
	slots         []*slot
	suspects      map[string]time.Duration // nickname -> cooldown expiry
	orphans       []*orphan
	lastConsensus *dirauth.Consensus
	converged     bool
	divergedSince time.Duration
	rng           *rand.Rand
	closed        bool
}

// New creates a controller and starts its reconcile loop. It manages
// nothing until the first Apply.
func New(cfg Config) (*Controller, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("fleet: config needs a client")
	}
	if cfg.Consensus == nil {
		return nil, fmt.Errorf("fleet: config needs a consensus source")
	}
	cfg = cfg.withDefaults()
	reg := cfg.Obs
	if reg == nil {
		reg = cfg.Client.Tor.Host().Network().Obs()
	}
	c := &Controller{
		cfg:      cfg,
		clock:    cfg.Client.Tor.Clock(),
		om:       newMetrics(reg),
		alloc:    newAllocator(cfg.Seed),
		wake:     make(chan struct{}, 1),
		results:  make(chan result, 64),
		done:     make(chan struct{}),
		suspects: make(map[string]time.Duration),
		rng:      rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
	}
	go c.run()
	return c, nil
}

// Apply sets (or replaces) the fleet's desired state and wakes the
// reconcile loop. Replacing a spec with new Source rolls the upgrade out
// one replica at a time; shrinking Replicas retires the highest slots.
func (c *Controller) Apply(spec *Spec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	c.mu.Lock()
	c.spec = spec
	c.srcHash = spec.sourceHash()
	c.gen++
	for len(c.slots) < spec.Replicas {
		c.slots = append(c.slots, &slot{id: len(c.slots), phase: PhaseEmpty})
	}
	now := c.clock.Now()
	if c.converged || c.gen == 1 {
		c.converged = false
		c.divergedSince = now
	}
	c.mu.Unlock()
	c.kick()
	return nil
}

// Scale changes only the desired replica count, keeping everything
// else about the current spec. Unlike Apply it does NOT bump the spec
// generation: the fleet's identity (name, source, manifest) is
// unchanged, so placements already in flight stay valid instead of
// being discarded as stale — exactly what an autoscaler needs when it
// steps the count again before the previous step converged. Scaling
// down retires the highest slots, same as a shrinking Apply.
func (c *Controller) Scale(replicas int) error {
	if replicas < 1 {
		return fmt.Errorf("fleet: scale to %d replicas", replicas)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("fleet: controller closed")
	}
	if c.spec == nil {
		c.mu.Unlock()
		return fmt.Errorf("fleet: Scale before Apply")
	}
	if c.spec.Replicas == replicas {
		c.mu.Unlock()
		return nil
	}
	// Specs are immutable once applied; clone rather than mutate the
	// one the caller may still hold.
	clone := *c.spec
	clone.Replicas = replicas
	c.spec = &clone
	for len(c.slots) < replicas {
		c.slots = append(c.slots, &slot{id: len(c.slots), phase: PhaseEmpty})
	}
	if c.converged {
		c.converged = false
		c.divergedSince = c.clock.Now()
	}
	c.mu.Unlock()
	c.kick()
	return nil
}

// Close stops the reconcile loop. Replicas keep running.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
}

func (c *Controller) kick() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Endpoints returns the ready replicas. The slice is freshly allocated;
// callers may retain it.
func (c *Controller) Endpoints() []Endpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Endpoint
	for _, s := range c.slots {
		if s.phase == PhaseReady && s.invokeTok != "" {
			out = append(out, Endpoint{Slot: s.id, Node: s.node, InvokeToken: s.invokeTok})
		}
	}
	return out
}

// Converged reports whether observed state matches the desired spec
// (all replicas ready on the current source).
func (c *Controller) Converged() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.converged
}

// Status snapshots the controller's view of the fleet.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Generation: c.gen, Converged: c.converged, Orphans: len(c.orphans)}
	if c.spec != nil {
		st.Name = c.spec.Name
		st.Desired = c.spec.Replicas
	}
	now := c.clock.Now()
	for _, s := range c.slots {
		ss := SlotStatus{
			Slot:        s.id,
			Phase:       s.phase,
			Incarnation: s.incarnation,
			BreakerOpen: now < s.breakerOpenUntil,
		}
		if s.node != nil {
			ss.Node = s.node.Nickname
			ss.Family = s.node.Family()
		}
		st.Slots = append(st.Slots, ss)
		if s.phase == PhaseReady && s.srcHash == c.srcHash {
			st.Ready++
		}
	}
	return st
}

// WaitConverged blocks (in virtual time) until the fleet converges, or
// fails after the given virtual timeout.
func (c *Controller) WaitConverged(timeout time.Duration) error {
	deadline := c.clock.Now() + timeout
	for c.clock.Now() < deadline {
		if c.Converged() {
			return nil
		}
		c.clock.Sleep(50 * time.Millisecond)
	}
	if c.Converged() {
		return nil
	}
	st := c.Status()
	return fmt.Errorf("fleet %s: not converged after %v (%d/%d ready)", st.Name, timeout, st.Ready, st.Desired)
}

// run is the controller loop: reconcile on every tick, wake-up, and
// action result, until Close.
func (c *Controller) run() {
	for {
		unblock := c.clock.Blocking()
		select {
		case <-c.done:
			unblock()
			return
		case r := <-c.results:
			unblock()
			c.handleResult(r)
		case <-c.wake:
			unblock()
		case <-c.clock.After(c.cfg.Interval):
			unblock()
		}
		c.reconcile()
	}
}

// controlSession opens a session for one control-plane action. Low
// attempt counts and tight deadlines: the reconcile loop's own backoff
// is the real retry policy, and it must observe failures quickly.
func (c *Controller) controlSession(node *dirauth.Descriptor, seed int64) *bento.Session {
	return c.cfg.Client.NewSession(node, bento.SessionConfig{
		MaxAttempts: 3,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  time.Second,
		OpDeadline:  c.cfg.OpDeadline,
		Seed:        seed,
	})
}

// spawnKey derives the deterministic idempotency key for a slot
// incarnation. Retrying the same incarnation replays the same key, so a
// server that already ran the spawn hands back the original tokens.
func spawnKey(fleetName string, slotID, incarnation int) string {
	return fmt.Sprintf("fleet/%s/slot%d/inc%d", fleetName, slotID, incarnation)
}

// reconcile is one control-loop pass: observe, diff, act.
func (c *Controller) reconcile() {
	c.mu.Lock()
	if c.spec == nil || c.closed {
		c.mu.Unlock()
		return
	}
	c.om.loops.Inc()

	// Observe relay liveness: a fresh consensus when the directory
	// answers, else the last one we saw.
	cons := c.lastConsensus
	c.mu.Unlock()
	if fresh, err := c.cfg.Consensus(); err == nil && fresh != nil {
		cons = fresh
	}

	// Observe replica health, in parallel, outside the lock.
	probes := c.collectProbes()
	c.runProbes(probes)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.lastConsensus = cons
	now := c.clock.Now()
	c.pruneSuspectsLocked(now)

	// Apply probe verdicts and consensus evictions.
	inConsensus := make(map[string]bool)
	if cons != nil {
		for _, d := range cons.BentoNodes() {
			inConsensus[d.Nickname] = true
		}
	}
	for i, s := range c.slots {
		if s.busy || s.phase != PhaseReady {
			continue
		}
		if cons != nil && s.node != nil && !inConsensus[s.node.Nickname] {
			c.retireLocked(s, now, false, "left consensus")
			continue
		}
		pr := probes[i]
		if pr == nil {
			continue
		}
		switch {
		case pr.err == nil:
			s.probeFails = 0
			if s.breakerFails > 0 && now-s.readySince >= c.cfg.MinUptime {
				s.breakerFails = 0
			}
		case errors.Is(pr.err, bento.ErrPermanentFailure):
			// The node's restart-storm guard gave up on the function:
			// no probe quorum needed, the replica is gone for good.
			c.om.probeFailures.Inc()
			c.retireLocked(s, now, true, "permanent failure")
		case errors.Is(pr.err, bento.ErrTransport):
			// Unreachable ≠ dead: a partition and a crash look the same
			// from here. Suspend the slot — sticky to its node, same
			// incarnation — so a retried spawn key adopts the surviving
			// container instead of duplicating it, while the allocator
			// is still free to move the slot if a fresh node exists.
			c.om.probeFailures.Inc()
			s.probeFails++
			if s.probeFails >= c.cfg.FailureThreshold {
				c.suspendLocked(s, now)
			}
		default:
			// The transport works and the replica still fails its health
			// check: the replica itself is bad. Replace it.
			c.om.probeFailures.Inc()
			s.probeFails++
			if s.probeFails >= c.cfg.FailureThreshold {
				c.retireLocked(s, now, true, "unhealthy")
			}
		}
	}

	// Retire slots beyond the desired count (spec shrank).
	for _, s := range c.slots[c.spec.Replicas:] {
		if !s.busy && (s.phase == PhaseReady || s.phase == PhaseFailed) && s.node != nil {
			c.retireLocked(s, now, false, "scale down")
		}
	}
	c.slots = c.slots[:max(c.spec.Replicas, len(c.slots))]
	if n := len(c.slots); n > c.spec.Replicas {
		// Drop fully-drained excess slots from the tail.
		for n > c.spec.Replicas && c.slots[n-1].node == nil && !c.slots[n-1].busy {
			n--
		}
		c.slots = c.slots[:n]
	}

	// Converge: place empty/failed slots, roll upgrades one at a time.
	if cons != nil {
		c.planPlacementsLocked(cons, now)
	}
	c.planUpgradeLocked(now)
	c.reapOrphansLocked(now)
	c.updateConvergenceLocked(now)
}

// probeReq carries one health probe; err is filled by runProbes.
type probeReq struct {
	fn       *bento.SessionFunction
	sess     *bento.Session
	healthFn string
	err      error
}

// collectProbes snapshots the ready replicas' handles under the lock.
// The map is keyed by slot index; busy slots are skipped (their action
// goroutine owns the session).
func (c *Controller) collectProbes() map[int]*probeReq {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]*probeReq)
	if c.spec == nil {
		return out
	}
	for i, s := range c.slots {
		if s.busy || s.phase != PhaseReady || s.fn == nil {
			continue
		}
		out[i] = &probeReq{fn: s.fn, sess: s.sess, healthFn: c.spec.HealthFn}
	}
	return out
}

// runProbes executes health probes concurrently and stores each verdict
// back into its request.
func (c *Controller) runProbes(probes map[int]*probeReq) {
	var wg sync.WaitGroup
	for _, pr := range probes {
		wg.Add(1)
		go func(pr *probeReq) {
			defer wg.Done()
			c.om.probes.Inc()
			if pr.healthFn != "" {
				_, _, pr.err = pr.fn.Invoke(pr.healthFn)
			} else {
				_, pr.err = pr.sess.Policy()
			}
		}(pr)
	}
	wg.Wait()
}

// retireLocked tears a replica down and opens its slot for re-placement.
// suspectNode marks the relay as recently-bad for the allocator. The
// teardown itself (best-effort shutdown, session close) runs async; a
// shutdown we cannot confirm leaves an orphan record for the reaper.
func (c *Controller) retireLocked(s *slot, now time.Duration, poison bool, reason string) {
	c.om.replacements.Inc()
	if s.node != nil {
		c.suspects[s.node.Nickname] = now + c.cfg.SuspectCooldown
	}
	sess, fn := s.sess, s.fn
	node, man := s.node, s.man
	key := spawnKey(c.spec.Name, s.id, s.incarnation)
	if fn != nil {
		go func() {
			err := fn.Shutdown()
			sess.Close()
			if err != nil && !errors.Is(err, bento.ErrSessionClosed) {
				// Fate unknown (node unreachable, most likely): remember
				// the key so the container is reaped when the node heals.
				c.addOrphan(node, key, man)
			}
		}()
	} else if sess != nil {
		go sess.Close()
	}

	// Short-lived or poisoned replicas count toward the breaker; a
	// replica that served honestly resets it (relay churn, not poison).
	if poison || now-s.readySince < c.cfg.MinUptime {
		s.breakerFails++
		if s.breakerFails >= c.cfg.BreakerThreshold && now >= s.breakerOpenUntil {
			s.breakerOpenUntil = now + c.cfg.BreakerCooldown
			c.om.breakerTrips.Inc()
		}
	} else {
		s.breakerFails = 0
	}

	s.phase = PhaseFailed
	s.node = nil
	s.man = nil
	s.sess = nil
	s.fn = nil
	s.invokeTok = ""
	s.probeFails = 0
	s.unknownFate = false
	s.incarnation++ // the old placement is accounted for (shut down or orphaned)
	c.bumpBackoffLocked(s, now)
}

// suspendLocked is the soft retire for a replica whose node became
// unreachable: the function may well still be running behind a
// partition, so the slot keeps its node (sticky) and incarnation —
// re-placing replays the same spawn key and adopts the survivor — while
// the allocator remains free to move it (orphaning the key) when a
// fresh node exists.
func (c *Controller) suspendLocked(s *slot, now time.Duration) {
	c.om.replacements.Inc()
	if s.node != nil {
		c.suspects[s.node.Nickname] = now + c.cfg.SuspectCooldown
	}
	if sess := s.sess; sess != nil {
		go sess.Close()
	}
	s.sess = nil
	s.fn = nil
	s.invokeTok = ""
	s.phase = PhaseFailed
	s.unknownFate = true
	s.probeFails = 0
	c.bumpBackoffLocked(s, now)
}

// bumpBackoffLocked schedules the slot's next attempt: bounded
// exponential growth with half-jitter from the seeded RNG.
func (c *Controller) bumpBackoffLocked(s *slot, now time.Duration) {
	if s.backoff <= 0 {
		s.backoff = c.cfg.BaseBackoff
	} else if s.backoff < c.cfg.MaxBackoff {
		s.backoff = min(s.backoff*2, c.cfg.MaxBackoff)
	}
	wait := s.backoff/2 + time.Duration(c.rng.Int63n(int64(s.backoff/2)+1))
	s.nextAttempt = now + wait
}

func (c *Controller) pruneSuspectsLocked(now time.Duration) {
	for n, until := range c.suspects {
		if now >= until {
			delete(c.suspects, n)
		}
	}
}

// planPlacementsLocked launches placement actions for open slots whose
// backoff and breaker allow an attempt.
func (c *Controller) planPlacementsLocked(cons *dirauth.Consensus, now time.Duration) {
	for _, s := range c.slots[:c.spec.Replicas] {
		if s.busy || (s.phase != PhaseEmpty && s.phase != PhaseFailed) {
			continue
		}
		if now < s.nextAttempt || now < s.breakerOpenUntil {
			continue
		}
		// Occupancy as of this instant, excluding the slot being placed
		// (a suspended slot must not be blocked by its own leftovers).
		used := make(map[string]bool)
		fams := make(map[string]bool)
		for _, o := range c.slots {
			if o != s && o.node != nil {
				used[o.node.Nickname] = true
				fams[o.node.Family()] = true
			}
		}
		req := placement{
			manifest:     c.spec.Manifest,
			used:         used,
			usedFamilies: fams,
			suspects:     c.suspects,
			now:          now,
			antiAffinity: !c.spec.AllowSharedFamily,
		}
		if s.unknownFate && s.node != nil {
			req.sticky = s.node.Nickname
		}
		node, relaxed, err := c.alloc.place(cons, req)
		if err != nil {
			c.om.starved.Inc()
			c.bumpBackoffLocked(s, now)
			continue
		}
		if relaxed {
			c.om.affinityRelaxed.Inc()
		}
		if s.unknownFate && s.node != nil && node.Nickname != s.node.Nickname {
			// Moving away from a placement whose fate we never learned:
			// its key may hold a container there. Hand it to the reaper
			// and start the new node on a fresh incarnation.
			c.addOrphanLocked(s.node, spawnKey(c.spec.Name, s.id, s.incarnation), s.man, now)
			s.incarnation++
		}
		s.unknownFate = false
		s.node = node
		s.man = c.spec.Manifest
		s.phase = PhaseStarting
		s.busy = true
		c.om.actions.Inc()
		go c.runPlace(s.id, s.incarnation, c.gen, node, c.spec)
	}
}

// runPlace executes one placement: spawn (idempotent by key), upload,
// init, health-check. It reports back through the results channel; the
// loop decides what the outcome means.
func (c *Controller) runPlace(slotID, incarnation int, gen uint64, node *dirauth.Descriptor, spec *Spec) {
	sess := c.controlSession(node, c.cfg.Seed+int64(slotID)*131+int64(incarnation))
	fn, err := sess.SpawnWithKey(spec.Manifest, spawnKey(spec.Name, slotID, incarnation))
	if err == nil {
		err = fn.Upload(spec.Source)
	}
	if err == nil && spec.Init != nil {
		err = spec.Init(fn)
	}
	if err == nil && spec.HealthFn != "" {
		_, _, err = fn.Invoke(spec.HealthFn)
	}
	r := result{
		slotID:      slotID,
		incarnation: incarnation,
		gen:         gen,
		kind:        "place",
		err:         err,
		unknownFate: errors.Is(err, bento.ErrTransport),
		sess:        sess,
		fn:          fn,
	}
	select {
	case c.results <- r:
	case <-c.done:
		sess.Close()
	}
}

// planUpgradeLocked rolls a source change out: at most one replica
// upgrades at a time, and only while every other replica is ready, so
// an upgrade never drops availability below Replicas-1.
func (c *Controller) planUpgradeLocked(now time.Duration) {
	ready, stale := 0, -1
	for i, s := range c.slots[:min(c.spec.Replicas, len(c.slots))] {
		if s.busy {
			return // a placement or upgrade is already in flight somewhere
		}
		if s.phase == PhaseReady {
			ready++
			if s.srcHash != c.srcHash && stale < 0 {
				stale = i
			}
		}
	}
	if stale < 0 || ready < c.spec.Replicas {
		return
	}
	s := c.slots[stale]
	s.phase = PhaseUpgrading
	s.busy = true
	c.om.actions.Inc()
	go c.runUpgrade(s.id, s.incarnation, c.gen, s.fn, c.spec)
}

// runUpgrade re-uploads the spec source in place (cheap under the
// server's program cache) and re-checks health.
func (c *Controller) runUpgrade(slotID, incarnation int, gen uint64, fn *bento.SessionFunction, spec *Spec) {
	err := fn.Upload(spec.Source)
	if err == nil && spec.HealthFn != "" {
		_, _, err = fn.Invoke(spec.HealthFn)
	}
	r := result{
		slotID:      slotID,
		incarnation: incarnation,
		gen:         gen,
		kind:        "upgrade",
		err:         err,
		unknownFate: errors.Is(err, bento.ErrTransport),
	}
	select {
	case c.results <- r:
	case <-c.done:
	}
}

// handleResult folds an async action's outcome back into slot state,
// discarding it when the world moved on underneath it.
func (c *Controller) handleResult(r result) {
	c.mu.Lock()
	now := c.clock.Now()
	stale := c.closed || r.slotID >= len(c.slots)
	var s *slot
	if !stale {
		s = c.slots[r.slotID]
		stale = !s.busy || s.incarnation != r.incarnation || r.gen != c.gen
	}
	if stale {
		// A spec change outran this action (or the controller closed).
		// Its resources are real, though: shut the function down so
		// nothing leaks, and unwedge the slot so the current generation
		// can re-place it.
		c.om.staleDiscarded.Inc()
		var node *dirauth.Descriptor
		var man *policy.Manifest
		var key string
		if s != nil && s.busy && s.incarnation == r.incarnation {
			key = spawnKey(c.spec.Name, r.slotID, r.incarnation)
			s.busy = false
			switch r.kind {
			case "place":
				node, man = s.node, s.man
				if r.fn == nil && r.unknownFate {
					// The spawn may have reached the server even though
					// no handle came back; the key must not be reused.
					c.addOrphanLocked(node, key, man, now)
				}
				s.phase = PhaseFailed
				s.node = nil
				s.man = nil
				s.unknownFate = false
				s.incarnation++
				c.bumpBackoffLocked(s, now)
			case "upgrade":
				// The replica's source is indeterminate between old and
				// new; replace it under the current spec.
				c.retireLocked(s, now, false, "stale upgrade")
			}
		}
		c.mu.Unlock()
		if r.fn != nil {
			go func() {
				err := r.fn.Shutdown()
				r.sess.Close()
				if err != nil && node != nil {
					c.addOrphan(node, key, man)
				}
			}()
		} else if r.sess != nil {
			go r.sess.Close()
		}
		return
	}
	defer c.mu.Unlock()
	s.busy = false

	if r.err != nil {
		c.om.actionFailures.Inc()
		switch r.kind {
		case "place":
			if r.unknownFate {
				// The server may hold our key: stay sticky, same
				// incarnation, and suspect the node.
				s.unknownFate = true
				if s.node != nil {
					c.suspects[s.node.Nickname] = now + c.cfg.SuspectCooldown
				}
				s.phase = PhaseFailed
				if r.sess != nil {
					go r.sess.Close()
				}
			} else if r.fn != nil {
				// Spawn reached the server but the replica is bad
				// (upload/init/health rejected it): a confirmed poison
				// placement. Tear it down and advance the incarnation.
				s.sess, s.fn = r.sess, r.fn
				c.retireLocked(s, now, true, "placement failed")
				c.bumpBackoffLocked(s, now)
				return
			} else {
				// Definite refusal before any container existed
				// (policy, PoW, spawn error): nothing to clean up.
				s.phase = PhaseFailed
				if r.sess != nil {
					go r.sess.Close()
				}
				s.breakerFails++
				if s.breakerFails >= c.cfg.BreakerThreshold && now >= s.breakerOpenUntil {
					s.breakerOpenUntil = now + c.cfg.BreakerCooldown
					c.om.breakerTrips.Inc()
				}
			}
			c.bumpBackoffLocked(s, now)
		case "upgrade":
			// The replica may be mid-flight between old and new source:
			// not trustworthy either way. Replace it.
			c.retireLocked(s, now, !r.unknownFate, "upgrade failed")
			c.bumpBackoffLocked(s, now)
		}
		c.updateConvergenceLocked(now)
		return
	}

	switch r.kind {
	case "place":
		s.phase = PhaseReady
		s.sess = r.sess
		s.fn = r.fn
		s.invokeTok = r.fn.InvokeToken()
		s.srcHash = c.srcHash
		s.readySince = now
		s.probeFails = 0
		s.unknownFate = false
		s.backoff = 0
		s.nextAttempt = 0
	case "upgrade":
		s.phase = PhaseReady
		s.srcHash = c.srcHash
		s.readySince = now
		c.om.upgrades.Inc()
	}
	c.updateConvergenceLocked(now)
}

// addOrphan records a possibly-leaked placement for the reaper.
func (c *Controller) addOrphan(node *dirauth.Descriptor, key string, man *policy.Manifest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addOrphanLocked(node, key, man, c.clock.Now())
}

func (c *Controller) addOrphanLocked(node *dirauth.Descriptor, key string, man *policy.Manifest, now time.Duration) {
	if node == nil || man == nil || c.closed {
		return
	}
	for _, o := range c.orphans {
		if o.key == key && o.node.Nickname == node.Nickname {
			return
		}
	}
	c.orphans = append(c.orphans, &orphan{
		node:        node,
		key:         key,
		man:         man,
		backoff:     c.cfg.BaseBackoff,
		nextAttempt: now + c.cfg.SuspectCooldown,
	})
}

// reapOrphansLocked launches ensure-absent actions for due orphans:
// spawn under the orphan's key (adopting the leaked container if it
// exists) and shut it down. Failures requeue with backoff. Orphans on
// nodes the directory has delisted are written off — the consensus is
// the liveness oracle, and a reap against a delisted node could never
// confirm anything.
func (c *Controller) reapOrphansLocked(now time.Duration) {
	if c.lastConsensus != nil {
		listed := make(map[string]bool)
		for _, d := range c.lastConsensus.BentoNodes() {
			listed[d.Nickname] = true
		}
		kept := c.orphans[:0]
		for _, o := range c.orphans {
			if o.busy || listed[o.node.Nickname] {
				kept = append(kept, o)
			}
		}
		c.orphans = kept
	}
	for _, o := range c.orphans {
		if o.busy || now < o.nextAttempt {
			continue
		}
		o.busy = true
		c.om.actions.Inc()
		go c.runReap(o)
	}
}

func (c *Controller) runReap(o *orphan) {
	sess := c.controlSession(o.node, c.cfg.Seed^int64(len(o.key)))
	fn, err := sess.SpawnWithKey(o.man, o.key)
	if err == nil {
		err = fn.Shutdown()
	}
	sess.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	o.busy = false
	if err != nil {
		c.om.actionFailures.Inc()
		now := c.clock.Now()
		o.backoff = min(o.backoff*2, c.cfg.MaxBackoff)
		o.nextAttempt = now + o.backoff
		return
	}
	c.om.orphanReaps.Inc()
	for i, oo := range c.orphans {
		if oo == o {
			c.orphans = append(c.orphans[:i], c.orphans[i+1:]...)
			break
		}
	}
}

// updateConvergenceLocked maintains the desired-vs-ready gauges and the
// diverged→converged transition bookkeeping that feeds the
// convergence-latency histogram.
func (c *Controller) updateConvergenceLocked(now time.Duration) {
	desired := c.spec.Replicas
	ready := 0
	for _, s := range c.slots {
		if s.phase == PhaseReady && s.srcHash == c.srcHash && !s.busy {
			ready++
		}
	}
	c.om.desired.Set(int64(desired))
	c.om.ready.Set(int64(ready))
	if ready >= desired && !c.converged {
		c.converged = true
		c.om.convergences.Inc()
		c.om.convergeMs.Observe((now - c.divergedSince).Milliseconds())
	} else if ready < desired && c.converged {
		c.converged = false
		c.divergedSince = now
	}
}
