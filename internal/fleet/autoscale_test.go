package fleet

import (
	"sort"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/obs"
)

// fakeTarget records Scale calls and fakes convergence.
type fakeTarget struct {
	scaled    []int
	converged bool
	err       error
}

func (f *fakeTarget) Scale(n int) error {
	if f.err != nil {
		return f.err
	}
	f.scaled = append(f.scaled, n)
	return nil
}

func (f *fakeTarget) Converged() bool { return f.converged }

// newTestAutoscaler builds an autoscaler around a fake target without
// a controller or windower; tests feed evaluate directly.
func newTestAutoscaler(t *testing.T, ft *fakeTarget, cfg AutoscaleConfig) *Autoscaler {
	t.Helper()
	if cfg.RateMetric == "" {
		cfg.RateMetric = "app.rate"
	}
	if cfg.QueueMetric == "" {
		cfg.QueueMetric = "app.queue"
	}
	if cfg.UpCooldown == 0 {
		cfg.UpCooldown = time.Second
	}
	if cfg.DownCooldown == 0 {
		cfg.DownCooldown = 3 * time.Second
	}
	if cfg.DownStableWindows == 0 {
		cfg.DownStableWindows = 2
	}
	if cfg.StepUp == 0 {
		cfg.StepUp = 1
	}
	if cfg.StepDown == 0 {
		cfg.StepDown = 1
	}
	a := &Autoscaler{
		cfg:     cfg,
		target:  ft,
		am:      newASMetrics(obs.NewRegistry()),
		done:    make(chan struct{}),
		desired: cfg.MinReplicas,
	}
	return a
}

// window builds a synthetic WindowSnapshot with the given rate and
// queue series at virtual time at.
func window(at time.Duration, rateName string, rate float64, queueName string, queue int64) *obs.WindowSnapshot {
	ws := &obs.WindowSnapshot{
		At: at,
		Series: []obs.SeriesStat{
			{Name: rateName, Kind: "counter", Rate: rate},
			{Name: queueName, Kind: "gauge", Last: queue},
		},
	}
	sort.Slice(ws.Series, func(i, j int) bool { return ws.Series[i].Name < ws.Series[j].Name })
	return ws
}

func TestAutoscalerScalesUpOnRate(t *testing.T) {
	ft := &fakeTarget{converged: true}
	a := newTestAutoscaler(t, ft, AutoscaleConfig{
		MinReplicas: 2, MaxReplicas: 5,
		HighWater: 10, LowWater: 4,
	})
	// 2 replicas, 30/s aggregate → 15/replica > 10: up.
	a.evaluate(window(1*time.Second, "app.rate", 30, "app.queue", 0))
	if a.Desired() != 3 {
		t.Fatalf("desired = %d, want 3", a.Desired())
	}
	// Cooldown (1s) holds the next step.
	a.evaluate(window(1500*time.Millisecond, "app.rate", 30, "app.queue", 0))
	if a.Desired() != 3 {
		t.Fatalf("cooldown ignored: desired = %d", a.Desired())
	}
	// After cooldown, keeps stepping to the max, then pins.
	a.evaluate(window(2100*time.Millisecond, "app.rate", 60, "app.queue", 0))
	a.evaluate(window(3200*time.Millisecond, "app.rate", 60, "app.queue", 0))
	a.evaluate(window(4300*time.Millisecond, "app.rate", 90, "app.queue", 0))
	a.evaluate(window(5400*time.Millisecond, "app.rate", 90, "app.queue", 0))
	if a.Desired() != 5 {
		t.Fatalf("desired = %d, want max 5", a.Desired())
	}
	acts := a.Actions()
	if len(acts) != 3 {
		t.Fatalf("actions = %+v", acts)
	}
	for _, act := range acts {
		if act.To != act.From+1 || act.Reason != "rate-high" {
			t.Fatalf("bad action %+v", act)
		}
	}
}

func TestAutoscalerQueueTriggersUp(t *testing.T) {
	ft := &fakeTarget{converged: true}
	a := newTestAutoscaler(t, ft, AutoscaleConfig{
		MinReplicas: 2, MaxReplicas: 4,
		HighWater: 10, LowWater: 4, QueueHighWater: 3,
	})
	// Rate inside the band, but 8 queued on 2 replicas → 4/replica > 3.
	a.evaluate(window(1*time.Second, "app.rate", 12, "app.queue", 8))
	if a.Desired() != 3 {
		t.Fatalf("desired = %d, want 3 (queue pressure)", a.Desired())
	}
	if got := a.Actions(); len(got) != 1 || got[0].Reason != "queue-high" {
		t.Fatalf("actions = %+v", got)
	}
}

func TestAutoscalerDownNeedsStreakCooldownAndConvergence(t *testing.T) {
	ft := &fakeTarget{converged: false}
	a := newTestAutoscaler(t, ft, AutoscaleConfig{
		MinReplicas: 1, MaxReplicas: 5,
		HighWater: 10, LowWater: 4,
		DownStableWindows: 2,
	})
	a.desired = 3

	// One low window is a blip, not a trend.
	a.evaluate(window(1*time.Second, "app.rate", 3, "app.queue", 0))
	if a.Desired() != 3 {
		t.Fatalf("scaled down on a single low window")
	}
	// Second low window completes the streak — but the fleet is not
	// converged, so the down is held.
	a.evaluate(window(2*time.Second, "app.rate", 3, "app.queue", 0))
	if a.Desired() != 3 {
		t.Fatalf("scaled down while unconverged")
	}
	if a.am.divergedHolds.Value() != 1 {
		t.Fatalf("divergedHolds = %d", a.am.divergedHolds.Value())
	}
	// Converged: the next completed streak scales down.
	ft.converged = true
	a.evaluate(window(3*time.Second, "app.rate", 3, "app.queue", 0))
	if a.Desired() != 2 {
		t.Fatalf("desired = %d, want 2", a.Desired())
	}
	// An interleaved in-band window resets the streak.
	a.evaluate(window(4*time.Second, "app.rate", 15, "app.queue", 0)) // 7.5/replica: in band
	a.evaluate(window(10*time.Second, "app.rate", 3, "app.queue", 0))
	if a.Desired() != 2 {
		t.Fatalf("streak not reset by in-band window")
	}
	a.evaluate(window(11*time.Second, "app.rate", 3, "app.queue", 0))
	if a.Desired() != 1 {
		t.Fatalf("desired = %d, want 1", a.Desired())
	}
	// Pinned at the floor.
	a.evaluate(window(20*time.Second, "app.rate", 0, "app.queue", 0))
	a.evaluate(window(21*time.Second, "app.rate", 0, "app.queue", 0))
	if a.Desired() != 1 {
		t.Fatalf("scaled below MinReplicas")
	}
}

func TestAutoscalerDownCooldownAfterUp(t *testing.T) {
	ft := &fakeTarget{converged: true}
	a := newTestAutoscaler(t, ft, AutoscaleConfig{
		MinReplicas: 1, MaxReplicas: 5,
		HighWater: 10, LowWater: 4,
		UpCooldown: time.Second, DownCooldown: 10 * time.Second,
		DownStableWindows: 1,
	})
	a.desired = 2
	// Up at t=1s arms the down cooldown until t=11s: a chaos blip
	// that tanks the rate right after must not claw the step back.
	a.evaluate(window(1*time.Second, "app.rate", 30, "app.queue", 0))
	if a.Desired() != 3 {
		t.Fatalf("desired = %d", a.Desired())
	}
	a.evaluate(window(2*time.Second, "app.rate", 2, "app.queue", 0))
	a.evaluate(window(3*time.Second, "app.rate", 2, "app.queue", 0))
	if a.Desired() != 3 {
		t.Fatalf("down during post-up cooldown: %d", a.Desired())
	}
	if a.am.cooldownHolds.Value() == 0 {
		t.Fatal("cooldown holds not counted")
	}
	// Past the cooldown the trend is honored.
	a.evaluate(window(12*time.Second, "app.rate", 2, "app.queue", 0))
	if a.Desired() != 2 {
		t.Fatalf("desired = %d, want 2", a.Desired())
	}
}

func TestAutoscalerHysteresisBandIsQuiet(t *testing.T) {
	ft := &fakeTarget{converged: true}
	a := newTestAutoscaler(t, ft, AutoscaleConfig{
		MinReplicas: 1, MaxReplicas: 5,
		HighWater: 10, LowWater: 4,
		DownStableWindows: 1,
	})
	a.desired = 3
	// Rates oscillating inside (LowWater, HighWater) per replica must
	// produce zero actions.
	for i, agg := range []float64{15, 27, 18, 29, 13, 21} { // 4.3..9.7 per replica
		a.evaluate(window(time.Duration(i+1)*10*time.Second, "app.rate", agg, "app.queue", 0))
	}
	if len(a.Actions()) != 0 {
		t.Fatalf("in-band windows caused actions: %+v", a.Actions())
	}
	if a.am.evals.Value() != 6 {
		t.Fatalf("evals = %d", a.am.evals.Value())
	}
}

func TestAutoscalerQueueVetoesDown(t *testing.T) {
	ft := &fakeTarget{converged: true}
	a := newTestAutoscaler(t, ft, AutoscaleConfig{
		MinReplicas: 1, MaxReplicas: 5,
		HighWater: 10, LowWater: 4, QueueHighWater: 4,
		DownStableWindows: 1,
	})
	a.desired = 2
	// Rate is below band but the queue is still loaded: no down.
	a.evaluate(window(5*time.Second, "app.rate", 2, "app.queue", 6)) // 3/replica > QHW/2
	if a.Desired() != 2 {
		t.Fatalf("scaled down with a loaded queue")
	}
	a.evaluate(window(10*time.Second, "app.rate", 2, "app.queue", 0))
	if a.Desired() != 1 {
		t.Fatalf("desired = %d, want 1", a.Desired())
	}
}

func TestAutoscalerConfigValidation(t *testing.T) {
	reg := obs.NewRegistry()
	w := obs.NewWindower(reg, obs.WindowConfig{Interval: time.Hour})
	defer w.Close()
	bad := []AutoscaleConfig{
		{Windower: w, MinReplicas: 0, MaxReplicas: 3, HighWater: 10, LowWater: 4},
		{Windower: w, MinReplicas: 3, MaxReplicas: 2, HighWater: 10, LowWater: 4},
		{Windower: w, MinReplicas: 1, MaxReplicas: 2, HighWater: 4, LowWater: 10},
		{Windower: w, MinReplicas: 1, MaxReplicas: 2, HighWater: 0, LowWater: 0},
		{MinReplicas: 1, MaxReplicas: 2, HighWater: 10, LowWater: 4}, // no windower
	}
	for i := range bad {
		if err := bad[i].fill(); err == nil {
			t.Fatalf("config %d validated unexpectedly: %+v", i, bad[i])
		}
	}
	good := AutoscaleConfig{Windower: w, MinReplicas: 1, MaxReplicas: 4, HighWater: 10, LowWater: 4}
	if err := good.fill(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if good.RateMetric != "bento.invokes" || good.QueueMetric != "bento.invoke_queue_depth" {
		t.Fatalf("defaults not filled: %+v", good)
	}
	if good.UpCooldown != time.Hour || good.DownCooldown != 3*time.Hour {
		t.Fatalf("cooldown defaults should follow the windower interval: %+v", good)
	}
	if _, err := NewAutoscaler(AutoscaleConfig{}); err == nil {
		t.Fatal("NewAutoscaler without a controller should fail")
	}
}
