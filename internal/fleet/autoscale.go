package fleet

import (
	"fmt"
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/obs"
)

// Autoscaler closes the obs→control loop: it subscribes to a
// Windower's stream and steps a Controller's replica count between
// MinReplicas and MaxReplicas from the windowed invoke rate and queue
// depth.
//
// Thrash protection, because chaos-induced blips (a relay crash
// briefly tanks the observed rate, its replacement briefly doubles
// queue depth) must not oscillate the allocator:
//
//   - Hysteresis band: scale up above HighWater per-replica rate,
//     down below LowWater, with LowWater < HighWater so a fleet
//     sitting between the bands is left alone.
//   - Cooldowns: after any action, further ups wait UpCooldown and
//     downs wait DownCooldown (downs get the longer default — adding
//     capacity late is worse than removing it late).
//   - Stability windows: a down additionally requires
//     DownStableWindows consecutive below-band windows, and a
//     converged controller — never shed capacity while the fleet is
//     still healing.
//
// Scaling decisions divide the observed aggregate rate by the
// *desired* count (the last target), not the ready count: during a
// crash-heal, desired stays put while ready dips, so the per-replica
// load the decision sees does not spike from the outage itself.
type Autoscaler struct {
	cfg    AutoscaleConfig
	target scaleTarget
	stream *obs.Stream
	am     asMetrics

	done      chan struct{}
	closeOnce sync.Once

	mu        sync.Mutex
	desired   int
	nextUp    time.Duration
	nextDown  time.Duration
	lowStreak int
	actions   []ScaleAction
}

// scaleTarget is the slice of Controller the autoscaler drives;
// narrowed to an interface so unit tests can fake it.
type scaleTarget interface {
	Scale(replicas int) error
	Converged() bool
}

// ScaleAction records one scaling decision for benches and dashboards.
type ScaleAction struct {
	At     time.Duration `json:"at_ns"`
	From   int           `json:"from"`
	To     int           `json:"to"`
	Reason string        `json:"reason"`
}

// AutoscaleConfig tunes an Autoscaler. Durations are virtual.
type AutoscaleConfig struct {
	// Controller is the fleet being scaled. Required (tests may
	// instead drive evaluate directly against a fake).
	Controller *Controller
	// Windower supplies the sampled series. Required.
	Windower *obs.Windower
	// MinReplicas/MaxReplicas bound the fleet size. Required:
	// 1 <= Min <= Max.
	MinReplicas, MaxReplicas int
	// RateMetric names the counter whose windowed per-second rate is
	// the demand signal (default "bento.invokes"; note that the
	// default includes the controller's own health probes — fleets
	// that want a pure app signal should point this at an app-level
	// counter).
	RateMetric string
	// QueueMetric names the gauge read as aggregate queue depth
	// (default "bento.invoke_queue_depth").
	QueueMetric string
	// HighWater/LowWater bound the per-replica rate band: above
	// HighWater scales up, below LowWater (for DownStableWindows
	// windows) scales down. Required: 0 < LowWater < HighWater.
	HighWater, LowWater float64
	// QueueHighWater, when > 0, also triggers a scale-up when
	// per-replica queue depth exceeds it — latency pressure shows up
	// in the queue before the rate. A queue above QueueHighWater/2
	// also vetoes scale-downs.
	QueueHighWater float64
	// UpCooldown/DownCooldown gate successive actions (defaults 1x /
	// 3x the windower interval, minimum one interval).
	UpCooldown, DownCooldown time.Duration
	// DownStableWindows is how many consecutive below-band windows a
	// down requires (default 2).
	DownStableWindows int
	// StepUp/StepDown are the per-action replica deltas (default 1).
	StepUp, StepDown int
	// Obs overrides the telemetry registry (default: the
	// controller's).
	Obs *obs.Registry
}

func (c *AutoscaleConfig) fill() error {
	if c.Windower == nil {
		return fmt.Errorf("fleet: autoscaler needs a windower")
	}
	if c.MinReplicas < 1 || c.MaxReplicas < c.MinReplicas {
		return fmt.Errorf("fleet: bad autoscale bounds [%d,%d]", c.MinReplicas, c.MaxReplicas)
	}
	if c.HighWater <= 0 || c.LowWater <= 0 || c.LowWater >= c.HighWater {
		return fmt.Errorf("fleet: bad autoscale band low=%v high=%v", c.LowWater, c.HighWater)
	}
	if c.RateMetric == "" {
		c.RateMetric = "bento.invokes"
	}
	if c.QueueMetric == "" {
		c.QueueMetric = "bento.invoke_queue_depth"
	}
	iv := c.Windower.Interval()
	if c.UpCooldown <= 0 {
		c.UpCooldown = iv
	}
	if c.DownCooldown <= 0 {
		c.DownCooldown = 3 * iv
	}
	if c.DownStableWindows <= 0 {
		c.DownStableWindows = 2
	}
	if c.StepUp <= 0 {
		c.StepUp = 1
	}
	if c.StepDown <= 0 {
		c.StepDown = 1
	}
	return nil
}

// NewAutoscaler validates cfg, clamps the controller's current desired
// count into [Min,Max], and starts the evaluation loop over a private
// stream subscription. Close stops it (the controller is left at its
// final size).
func NewAutoscaler(cfg AutoscaleConfig) (*Autoscaler, error) {
	if cfg.Controller == nil {
		return nil, fmt.Errorf("fleet: autoscaler needs a controller")
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	reg := cfg.Obs
	if reg == nil {
		reg = cfg.Controller.cfg.Obs
	}
	if reg == nil {
		reg = cfg.Controller.cfg.Client.Tor.Host().Network().Obs()
	}
	a := &Autoscaler{
		cfg:    cfg,
		target: cfg.Controller,
		am:     newASMetrics(reg),
		done:   make(chan struct{}),
	}
	a.desired = cfg.Controller.Status().Desired
	if a.desired < cfg.MinReplicas {
		a.desired = cfg.MinReplicas
	}
	if a.desired > cfg.MaxReplicas {
		a.desired = cfg.MaxReplicas
	}
	a.am.target.Set(int64(a.desired))
	if err := a.target.Scale(a.desired); err != nil {
		return nil, err
	}
	a.stream = cfg.Windower.Subscribe(4)
	go a.run(cfg.Controller.clock.Blocking)
	return a, nil
}

// run consumes windows until Close or the windower shuts the stream.
// blocking brackets the select per the simnet event-clock convention.
func (a *Autoscaler) run(blocking func() func()) {
	for {
		unblock := blocking()
		select {
		case <-a.done:
			unblock()
			return
		case ws, ok := <-a.stream.C():
			unblock()
			if !ok {
				return
			}
			a.evaluate(ws)
		}
	}
}

// Close stops the evaluation loop.
func (a *Autoscaler) Close() {
	a.closeOnce.Do(func() {
		close(a.done)
		a.stream.Close()
	})
}

// Desired returns the autoscaler's current target replica count.
func (a *Autoscaler) Desired() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.desired
}

// Actions returns a copy of every scaling decision taken so far.
func (a *Autoscaler) Actions() []ScaleAction {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ScaleAction, len(a.actions))
	copy(out, a.actions)
	return out
}

// evaluate applies the hysteresis policy to one window.
func (a *Autoscaler) evaluate(ws *obs.WindowSnapshot) {
	var rate, queue float64
	if st := ws.Find(a.cfg.RateMetric); st != nil {
		rate = st.Rate
	}
	if st := ws.Find(a.cfg.QueueMetric); st != nil {
		queue = float64(st.Last)
	}
	now := ws.At

	a.mu.Lock()
	defer a.mu.Unlock()
	a.am.evals.Inc()
	cur := a.desired
	perRate := rate / float64(cur)
	perQueue := queue / float64(cur)

	up := perRate > a.cfg.HighWater ||
		(a.cfg.QueueHighWater > 0 && perQueue > a.cfg.QueueHighWater)
	down := perRate < a.cfg.LowWater &&
		(a.cfg.QueueHighWater <= 0 || perQueue <= a.cfg.QueueHighWater/2)

	switch {
	case up:
		a.lowStreak = 0
		if cur >= a.cfg.MaxReplicas {
			return
		}
		if now < a.nextUp {
			a.am.cooldownHolds.Inc()
			return
		}
		n := cur + a.cfg.StepUp
		if n > a.cfg.MaxReplicas {
			n = a.cfg.MaxReplicas
		}
		reason := "rate-high"
		if perRate <= a.cfg.HighWater {
			reason = "queue-high"
		}
		a.scaleLocked(n, now, reason)
	case down:
		if cur <= a.cfg.MinReplicas {
			a.lowStreak = 0
			return
		}
		a.lowStreak++
		if a.lowStreak < a.cfg.DownStableWindows {
			return
		}
		if now < a.nextDown {
			a.am.cooldownHolds.Inc()
			return
		}
		if !a.target.Converged() {
			// Never shed capacity mid-heal: the low rate may be the
			// outage, not the demand.
			a.am.divergedHolds.Inc()
			return
		}
		n := cur - a.cfg.StepDown
		if n < a.cfg.MinReplicas {
			n = a.cfg.MinReplicas
		}
		a.scaleLocked(n, now, "rate-low")
	default:
		a.lowStreak = 0
	}
}

// scaleLocked commits one action: drives the target, records it, arms
// both cooldowns (an up must also delay the next down, or a ramp's
// trailing edge immediately claws back the capacity it just added).
func (a *Autoscaler) scaleLocked(n int, now time.Duration, reason string) {
	if err := a.target.Scale(n); err != nil {
		a.am.scaleErrors.Inc()
		return
	}
	from := a.desired
	a.desired = n
	a.lowStreak = 0
	a.nextUp = now + a.cfg.UpCooldown
	a.nextDown = now + a.cfg.DownCooldown
	if n > from {
		a.am.ups.Inc()
	} else {
		a.am.downs.Inc()
	}
	a.am.target.Set(int64(n))
	a.actions = append(a.actions, ScaleAction{At: now, From: from, To: n, Reason: reason})
}
