// Package fleet is the declarative control plane for Bento function
// fleets. An operator hands the controller a Spec — "N replicas of this
// function, spread across distinct relay families" — and the controller
// keeps reality converged on it through relay churn, crash loops, and
// partitions, with no operator in the loop.
//
// The design follows the metallb reconciler pattern: a single controller
// loop diffs desired state against observed state (health probes through
// the bento Session layer, relay liveness from refreshed dirauth
// consensus) and converges by driving spawn/upgrade/retire actions
// through the existing client API. Placement goes through an allocator
// over consensus descriptors that treats relay families as fault domains
// (anti-affinity), echoing the placement constraints of trusted-NF work:
// replicas of one function should not share an operator.
//
// Robustness machinery, because the control plane must not become the
// failure amplifier:
//
//   - failed reconcile actions requeue with bounded exponential backoff
//     plus seeded jitter, never hot-looping against a dead relay;
//   - a per-replica circuit breaker opens after consecutive short-lived
//     placements, so a poison function cannot keep the controller busy;
//   - every async action carries the spec generation and slot incarnation
//     it was launched under, and stale results are discarded (and their
//     resources reaped) instead of resurrecting superseded state;
//   - spawn idempotency keys are deterministic per (fleet, slot,
//     incarnation), so a placement whose fate a partition obscured is
//     adopted — not duplicated — when retried, and confirmed-dead
//     placements on unreachable nodes are remembered as orphans and
//     reaped once the node returns.
package fleet

import (
	"crypto/sha256"
	"fmt"

	"github.com/bento-nfv/bento/internal/bento"
	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/policy"
)

// Spec is the desired state of one function fleet. It is treated as
// immutable once handed to Apply; to change the fleet, Apply a new Spec.
type Spec struct {
	// Name identifies the fleet; it namespaces spawn idempotency keys, so
	// two fleets with the same name must not share a controller client.
	Name string
	// Replicas is the desired number of ready replicas.
	Replicas int
	// Manifest is the per-replica function manifest. A restart policy of
	// RestartOnFailure is the natural companion: the server watchdog is
	// the first line of defense, the controller the second.
	Manifest *policy.Manifest
	// Source is the bscript program uploaded to every replica. Changing
	// it in a new Spec triggers a rolling upgrade: replicas re-upload in
	// place, one at a time, cheap under the server's program cache.
	Source string
	// HealthFn, when nonempty, names a function invoked as the health
	// probe (and as the post-placement readiness check). It must return
	// without error on a healthy replica. Empty probes node reachability
	// only (a policy fetch).
	HealthFn string
	// Init, when non-nil, runs once per placement after upload —
	// seeding content, registering with peers. An Init error fails the
	// placement.
	Init func(fn *bento.SessionFunction) error
	// AllowSharedFamily disables anti-affinity. By default the allocator
	// refuses to co-locate two replicas in one relay family while any
	// family-distinct candidate exists.
	AllowSharedFamily bool
}

func (s *Spec) validate() error {
	if s == nil {
		return fmt.Errorf("fleet: nil spec")
	}
	if s.Name == "" {
		return fmt.Errorf("fleet: spec needs a name")
	}
	if s.Replicas < 1 {
		return fmt.Errorf("fleet: spec %q wants %d replicas", s.Name, s.Replicas)
	}
	if s.Manifest == nil {
		return fmt.Errorf("fleet: spec %q has no manifest", s.Name)
	}
	if s.Source == "" {
		return fmt.Errorf("fleet: spec %q has no source", s.Name)
	}
	return nil
}

func (s *Spec) sourceHash() [sha256.Size]byte {
	return sha256.Sum256([]byte(s.Source))
}

// Endpoint is one ready replica, addressable by any client holding the
// consensus: connect to Node, attach by InvokeToken.
type Endpoint struct {
	Slot        int
	Node        *dirauth.Descriptor
	InvokeToken string
}

// Phase is a replica slot's lifecycle state.
type Phase string

const (
	// PhaseEmpty: the slot has never been placed (or was just created).
	PhaseEmpty Phase = "empty"
	// PhaseStarting: a placement action (spawn/upload/init/health) is in
	// flight.
	PhaseStarting Phase = "starting"
	// PhaseReady: the replica passed its last health probe.
	PhaseReady Phase = "ready"
	// PhaseUpgrading: an in-place rolling upgrade is in flight.
	PhaseUpgrading Phase = "upgrading"
	// PhaseFailed: the last placement or probe failed; the slot is
	// waiting out its backoff (or its circuit breaker's cooldown).
	PhaseFailed Phase = "failed"
)

// SlotStatus is the observable state of one replica slot.
type SlotStatus struct {
	Slot        int
	Phase       Phase
	Node        string // relay nickname, "" when unplaced
	Family      string // relay family, "" when unplaced
	Incarnation int
	BreakerOpen bool
}

// Status is a snapshot of the controller's view of the fleet.
type Status struct {
	Name       string
	Generation uint64
	Desired    int
	Ready      int
	Converged  bool
	Orphans    int // suspected leaked placements awaiting reaping
	Slots      []SlotStatus
}
