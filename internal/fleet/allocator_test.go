package fleet

import (
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/policy"
)

// testConsensus builds a consensus of Bento nodes, one per (nickname,
// family) pair.
func testConsensus(nodes ...[2]string) *dirauth.Consensus {
	c := &dirauth.Consensus{}
	for _, nf := range nodes {
		c.Relays = append(c.Relays, &dirauth.Descriptor{
			Nickname:  nf[0],
			FamilyID:  nf[1],
			Flags:     []string{dirauth.FlagBento},
			Middlebox: policy.DefaultMiddlebox(),
		})
	}
	return c
}

func testManifest() *policy.Manifest {
	return &policy.Manifest{Name: "t", Image: "python"}
}

func TestAllocatorPrefersDistinctFamily(t *testing.T) {
	cons := testConsensus([2]string{"a0", "famA"}, [2]string{"a1", "famA"}, [2]string{"b0", "famB"})
	a := newAllocator(7)
	for seed := int64(1); seed < 10; seed++ {
		a.rng = newAllocator(seed).rng
		node, relaxed, err := a.place(cons, placement{
			manifest:     testManifest(),
			used:         map[string]bool{"a0": true},
			usedFamilies: map[string]bool{"famA": true},
			antiAffinity: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if node.Nickname != "b0" || relaxed {
			t.Fatalf("seed %d: placed on %s (relaxed=%v), want b0 unrelaxed", seed, node.Nickname, relaxed)
		}
	}
}

func TestAllocatorRelaxesFamilyBeforeStarving(t *testing.T) {
	cons := testConsensus([2]string{"a0", "famA"}, [2]string{"a1", "famA"})
	a := newAllocator(7)
	node, relaxed, err := a.place(cons, placement{
		manifest:     testManifest(),
		used:         map[string]bool{"a0": true},
		usedFamilies: map[string]bool{"famA": true},
		antiAffinity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if node.Nickname != "a1" || !relaxed {
		t.Fatalf("placed on %s (relaxed=%v), want a1 relaxed", node.Nickname, relaxed)
	}
}

func TestAllocatorStarvesWhenAllUsed(t *testing.T) {
	cons := testConsensus([2]string{"a0", "famA"})
	a := newAllocator(7)
	_, _, err := a.place(cons, placement{
		manifest: testManifest(),
		used:     map[string]bool{"a0": true},
	})
	if err == nil {
		t.Fatal("want starvation error with every node used")
	}
}

func TestAllocatorAvoidsSuspects(t *testing.T) {
	cons := testConsensus([2]string{"a0", "famA"}, [2]string{"b0", "famB"})
	a := newAllocator(7)
	for seed := int64(1); seed < 10; seed++ {
		a.rng = newAllocator(seed).rng
		node, _, err := a.place(cons, placement{
			manifest:     testManifest(),
			used:         map[string]bool{},
			usedFamilies: map[string]bool{},
			suspects:     map[string]time.Duration{"a0": 100 * time.Second},
			now:          10 * time.Second,
			antiAffinity: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if node.Nickname != "b0" {
			t.Fatalf("seed %d: placed on suspect %s, want b0", seed, node.Nickname)
		}
	}
}

func TestAllocatorSuspectExpires(t *testing.T) {
	cons := testConsensus([2]string{"a0", "famA"})
	a := newAllocator(7)
	node, _, err := a.place(cons, placement{
		manifest: testManifest(),
		suspects: map[string]time.Duration{"a0": 5 * time.Second},
		now:      10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if node.Nickname != "a0" {
		t.Fatalf("placed on %s, want a0 (cooldown expired)", node.Nickname)
	}
}

func TestAllocatorStickyWinsWhenFresh(t *testing.T) {
	cons := testConsensus([2]string{"a0", "famA"}, [2]string{"b0", "famB"}, [2]string{"c0", "famC"})
	a := newAllocator(7)
	for seed := int64(1); seed < 10; seed++ {
		a.rng = newAllocator(seed).rng
		node, _, err := a.place(cons, placement{
			manifest:     testManifest(),
			antiAffinity: true,
			sticky:       "b0",
		})
		if err != nil {
			t.Fatal(err)
		}
		if node.Nickname != "b0" {
			t.Fatalf("seed %d: placed on %s, want sticky b0", seed, node.Nickname)
		}
	}
}

func TestAllocatorVacatesSuspectStickyWhenAlternativeExists(t *testing.T) {
	cons := testConsensus([2]string{"a0", "famA"}, [2]string{"b0", "famB"})
	a := newAllocator(7)
	node, _, err := a.place(cons, placement{
		manifest:     testManifest(),
		suspects:     map[string]time.Duration{"a0": 100 * time.Second},
		now:          10 * time.Second,
		antiAffinity: true,
		sticky:       "a0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if node.Nickname != "b0" {
		t.Fatalf("placed on %s, want b0 (sticky is suspect, fresh alternative exists)", node.Nickname)
	}
}

func TestAllocatorKeepsSuspectStickyWithoutAlternative(t *testing.T) {
	cons := testConsensus([2]string{"a0", "famA"}, [2]string{"b0", "famB"})
	a := newAllocator(7)
	node, _, err := a.place(cons, placement{
		manifest:     testManifest(),
		used:         map[string]bool{"b0": true},
		usedFamilies: map[string]bool{"famB": true},
		suspects:     map[string]time.Duration{"a0": 100 * time.Second},
		now:          10 * time.Second,
		antiAffinity: true,
		sticky:       "a0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if node.Nickname != "a0" {
		t.Fatalf("placed on %s, want sticky a0 (no alternative; adopt, don't duplicate)", node.Nickname)
	}
}
