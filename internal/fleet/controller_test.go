package fleet_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/bento"
	"github.com/bento-nfv/bento/internal/fleet"
	"github.com/bento-nfv/bento/internal/policy"
	"github.com/bento-nfv/bento/internal/testbed"
)

// fleetSource is the replica program: a trivial serve endpoint plus a
// health check.
const fleetSource = `
def serve():
    api.send(b"v1")
    return 1

def health():
    return 1
`

const fleetSourceV2 = `
def serve():
    api.send(b"v2")
    return 1

def health():
    return 1
`

func fleetManifest() *policy.Manifest {
	return &policy.Manifest{
		Name:         "fleet-fn",
		Image:        "python",
		Calls:        []string{"tor.send", "fs.read", "fs.write", "clock.now", "clock.sleep"},
		Memory:       8 << 20,
		Instructions: 5_000_000,
		Storage:      8 << 20,
		Restart:      policy.RestartOnFailure,
	}
}

func fleetSpec(replicas int) *fleet.Spec {
	return &fleet.Spec{
		Name:     "web-fleet",
		Replicas: replicas,
		Manifest: fleetManifest(),
		Source:   fleetSource,
		HealthFn: "health",
	}
}

// fleetWorld builds a deployment with nBento Bento relays spread over
// families and a running controller (fast reconcile cadence so chaos
// tests converge in little virtual time).
func fleetWorld(t *testing.T, relays, nBento, families int) (*testbed.World, *fleet.Controller) {
	t.Helper()
	w, err := testbed.New(testbed.Config{
		Relays:     relays,
		BentoNodes: nBento,
		Families:   families,
		ClockScale: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	ctl, err := w.NewFleetController("fleet-ctl", fleet.Config{
		Interval:        300 * time.Millisecond,
		OpDeadline:      5 * time.Second,
		BaseBackoff:     200 * time.Millisecond,
		MaxBackoff:      2 * time.Second,
		MinUptime:       2 * time.Second,
		SuspectCooldown: 5 * time.Second,
		Seed:            42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctl.Close)
	return w, ctl
}

// serveAll invokes serve on every ready endpoint through an independent
// client session and returns the responses keyed by relay nickname.
func serveAll(t *testing.T, w *testbed.World, ctl *fleet.Controller, seed int64) map[string]string {
	t.Helper()
	cli := w.NewBentoClient(fmt.Sprintf("probe%d", seed), seed)
	out := make(map[string]string)
	for _, ep := range ctl.Endpoints() {
		sess := cli.NewSession(ep.Node, bento.SessionConfig{Seed: seed})
		fn := sess.Attach(ep.InvokeToken)
		body, _, err := fn.Invoke("serve")
		if err != nil {
			t.Fatalf("serve on %s: %v", ep.Node.Nickname, err)
		}
		out[ep.Node.Nickname] = string(body)
		sess.Close()
	}
	return out
}

func waitStatus(t *testing.T, ctl *fleet.Controller, w *testbed.World, timeout time.Duration, ok func(fleet.Status) bool) fleet.Status {
	t.Helper()
	deadline := w.Clock().Now() + timeout
	for w.Clock().Now() < deadline {
		st := ctl.Status()
		if ok(st) {
			return st
		}
		w.Clock().Sleep(100 * time.Millisecond)
	}
	st := ctl.Status()
	if ok(st) {
		return st
	}
	t.Fatalf("status condition not reached after %v: %+v", timeout, st)
	return st
}

func distinctFamilies(st fleet.Status) bool {
	seen := make(map[string]bool)
	for _, s := range st.Slots {
		if s.Phase != fleet.PhaseReady {
			continue
		}
		if seen[s.Family] {
			return false
		}
		seen[s.Family] = true
	}
	return true
}

func TestFleetConvergesAcrossFamilies(t *testing.T) {
	w, ctl := fleetWorld(t, 6, 4, 4)
	if err := ctl.Apply(fleetSpec(3)); err != nil {
		t.Fatal(err)
	}
	if err := ctl.WaitConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := ctl.Status()
	if st.Ready != 3 {
		t.Fatalf("ready = %d, want 3", st.Ready)
	}
	if !distinctFamilies(st) {
		t.Fatalf("replicas share a family: %+v", st.Slots)
	}
	for node, body := range serveAll(t, w, ctl, 7) {
		if body != "v1" {
			t.Fatalf("replica on %s served %q, want v1", node, body)
		}
	}
}

func TestFleetReplacesCrashedRelay(t *testing.T) {
	w, ctl := fleetWorld(t, 6, 4, 4)
	ch := w.EnableChaos(99)
	if err := ctl.Apply(fleetSpec(3)); err != nil {
		t.Fatal(err)
	}
	if err := ctl.WaitConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}

	victim := ctl.Endpoints()[0].Node.Nickname
	ch.CrashHost(victim)

	// The controller must notice via failed probes, place a replacement
	// elsewhere, and reconverge with family spread intact.
	st := waitStatus(t, ctl, w, 120*time.Second, func(st fleet.Status) bool {
		if !st.Converged {
			return false
		}
		for _, s := range st.Slots {
			if s.Node == victim {
				return false
			}
		}
		return true
	})
	if !distinctFamilies(st) {
		t.Fatalf("replacement broke family spread: %+v", st.Slots)
	}
	for node, body := range serveAll(t, w, ctl, 8) {
		if body != "v1" {
			t.Fatalf("replica on %s served %q, want v1", node, body)
		}
	}

	// The dead node may hold an orphaned container (its shutdown could
	// not be confirmed). Once the host comes back, the reaper must
	// shut the survivor down by replaying its spawn key.
	ch.RestartHost(victim)
	waitStatus(t, ctl, w, 120*time.Second, func(st fleet.Status) bool {
		return st.Converged && st.Orphans == 0
	})
	var victimServer = -1
	for i := range w.Servers {
		if w.BentoNode(i).Nickname == victim {
			victimServer = i
		}
	}
	if victimServer < 0 {
		t.Fatalf("victim %s not a bento node", victim)
	}
	waitFor(t, w, 60*time.Second, func() bool {
		return w.Servers[victimServer].FunctionCount() == 0
	}, "orphaned container reaped on restarted host")
}

func waitFor(t *testing.T, w *testbed.World, timeout time.Duration, ok func() bool, what string) {
	t.Helper()
	deadline := w.Clock().Now() + timeout
	for w.Clock().Now() < deadline {
		if ok() {
			return
		}
		w.Clock().Sleep(100 * time.Millisecond)
	}
	if !ok() {
		t.Fatalf("timed out waiting for %s", what)
	}
}

func TestFleetRetiresNodeThatLeftConsensus(t *testing.T) {
	w, ctl := fleetWorld(t, 6, 4, 4)
	if err := ctl.Apply(fleetSpec(3)); err != nil {
		t.Fatal(err)
	}
	if err := ctl.WaitConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	victim := ctl.Endpoints()[0].Node.Nickname

	// The relay drops out of the directory but its host stays up: only
	// the consensus watch can catch this (probes still succeed).
	w.Auth.Remove(victim)

	waitStatus(t, ctl, w, 120*time.Second, func(st fleet.Status) bool {
		if !st.Converged {
			return false
		}
		for _, s := range st.Slots {
			if s.Node == victim {
				return false
			}
		}
		return true
	})
	// The node was reachable, so the old replica must have been shut
	// down cleanly — no orphan bookkeeping, no leaked container.
	if st := ctl.Status(); st.Orphans != 0 {
		t.Fatalf("orphans = %d after clean eviction, want 0", st.Orphans)
	}
}

func TestFleetPartitionHealsWithoutDuplicates(t *testing.T) {
	// Exactly as many Bento nodes as replicas: when one is partitioned
	// away there is nowhere to move, so the controller must stay sticky
	// and adopt the surviving container after the heal — not duplicate it.
	w, ctl := fleetWorld(t, 6, 3, 3)
	ch := w.EnableChaos(99)
	if err := ctl.Apply(fleetSpec(3)); err != nil {
		t.Fatal(err)
	}
	if err := ctl.WaitConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	before := make(map[string]bool)
	for _, ep := range ctl.Endpoints() {
		before[ep.Node.Nickname] = true
	}

	// Cut the victim relay off from every other host (full partition:
	// dials fail, in-flight chunks stall). The replica keeps running
	// behind the partition.
	victim := ctl.Endpoints()[0].Node.Nickname
	var hosts []string
	for i := range w.Relays {
		hosts = append(hosts, fmt.Sprintf("relay%d", i))
	}
	hosts = append(hosts, "fleet-ctl")
	for _, h := range hosts {
		if h != victim {
			ch.Partition(victim, h)
			ch.Partition(h, victim)
		}
	}

	// Wait until the controller has noticed (fleet diverges).
	waitStatus(t, ctl, w, 120*time.Second, func(st fleet.Status) bool {
		return !st.Converged
	})

	ch.HealAll()
	waitStatus(t, ctl, w, 180*time.Second, func(st fleet.Status) bool {
		return st.Converged && st.Orphans == 0
	})

	// Same placement as before the partition, and exactly one container
	// per node: the spawn key was adopted, not re-spawned.
	after := make(map[string]bool)
	for _, ep := range ctl.Endpoints() {
		after[ep.Node.Nickname] = true
	}
	for n := range before {
		if !after[n] {
			t.Fatalf("replica moved off %s despite having nowhere to go", n)
		}
	}
	for i := 0; i < 3; i++ {
		if got := w.Servers[i].FunctionCount(); got != 1 {
			t.Fatalf("server %d holds %d functions after heal, want 1 (duplicate replica?)", i, got)
		}
	}
}

// poisonSource crash-loops: health() burns through the instruction
// budget every time, so every placement fails its readiness check.
const poisonSource = `
def serve():
    api.send(b"poison")
    return 1

def health():
    while 1:
        x = 1
`

func TestFleetBreakerTripsOnCrashLoop(t *testing.T) {
	w, ctl := fleetWorld(t, 6, 4, 4)
	man := fleetManifest()
	man.Instructions = 300_000
	man.Restart = policy.RestartNever
	spec := &fleet.Spec{
		Name:     "poison-fleet",
		Replicas: 1,
		Manifest: man,
		Source:   poisonSource,
		HealthFn: "health",
	}
	if err := ctl.Apply(spec); err != nil {
		t.Fatal(err)
	}

	// Every placement attempt fails readiness; after BreakerThreshold
	// consecutive short-lived placements the slot's breaker must open.
	st := waitStatus(t, ctl, w, 180*time.Second, func(st fleet.Status) bool {
		return len(st.Slots) == 1 && st.Slots[0].BreakerOpen
	})
	if st.Converged {
		t.Fatal("fleet reports converged with a poisoned replica")
	}
	// No replica containers may linger from the failed attempts.
	waitFor(t, w, 60*time.Second, func() bool {
		total := 0
		for _, s := range w.Servers {
			total += s.FunctionCount()
		}
		return total == 0
	}, "poisoned placements torn down")
}

func TestFleetRollingUpgrade(t *testing.T) {
	w, ctl := fleetWorld(t, 6, 4, 4)
	if err := ctl.Apply(fleetSpec(3)); err != nil {
		t.Fatal(err)
	}
	if err := ctl.WaitConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	tokens := make(map[string]string)
	for _, ep := range ctl.Endpoints() {
		tokens[ep.Node.Nickname] = ep.InvokeToken
	}

	v2 := fleetSpec(3)
	v2.Source = fleetSourceV2
	if err := ctl.Apply(v2); err != nil {
		t.Fatal(err)
	}
	if err := ctl.WaitConverged(120 * time.Second); err != nil {
		t.Fatal(err)
	}

	for node, body := range serveAll(t, w, ctl, 9) {
		if body != "v2" {
			t.Fatalf("replica on %s served %q after upgrade, want v2", node, body)
		}
	}
	// In-place upgrade: same nodes, same capability tokens, still one
	// container per node.
	eps := ctl.Endpoints()
	if len(eps) != 3 {
		t.Fatalf("endpoints = %d after upgrade, want 3", len(eps))
	}
	for _, ep := range eps {
		if tok, ok := tokens[ep.Node.Nickname]; !ok || tok != ep.InvokeToken {
			t.Fatalf("upgrade re-placed %s (token changed): in-place upload expected", ep.Node.Nickname)
		}
	}
}

func TestFleetScaleDown(t *testing.T) {
	w, ctl := fleetWorld(t, 6, 4, 4)
	if err := ctl.Apply(fleetSpec(3)); err != nil {
		t.Fatal(err)
	}
	if err := ctl.WaitConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Apply(fleetSpec(1)); err != nil {
		t.Fatal(err)
	}
	if err := ctl.WaitConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, w, 60*time.Second, func() bool {
		total := 0
		for _, s := range w.Servers {
			total += s.FunctionCount()
		}
		return total == 1
	}, "excess replicas shut down")
	if got := len(ctl.Endpoints()); got != 1 {
		t.Fatalf("endpoints = %d after scale down, want 1", got)
	}
}

func TestFleetReplacesCrashLoopingReplica(t *testing.T) {
	w, ctl := fleetWorld(t, 6, 4, 4)
	if err := ctl.Apply(fleetSpec(3)); err != nil {
		t.Fatal(err)
	}
	if err := ctl.WaitConverged(60 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Crash-loop one replica: every kill is revived by the node's
	// watchdog (the controller's own health probes drive the revival)
	// until the restart-storm guard declares it permanently failed; the
	// controller must read that as grounds for immediate replacement.
	victim := ctl.Endpoints()[0]
	var srv = -1
	for i := range w.Servers {
		if w.BentoNode(i).Nickname == victim.Node.Nickname {
			srv = i
		}
	}
	if srv < 0 {
		t.Fatalf("victim %s not a bento node", victim.Node.Nickname)
	}
	replaced := func() bool {
		for _, ep := range ctl.Endpoints() {
			if ep.Node.Nickname == victim.Node.Nickname {
				return false
			}
		}
		return ctl.Converged()
	}
	for i := 0; i < 50 && !replaced(); i++ {
		w.Servers[srv].KillFunction(victim.InvokeToken)
		w.Clock().Sleep(400 * time.Millisecond)
	}
	st := waitStatus(t, ctl, w, 120*time.Second, func(st fleet.Status) bool {
		if !st.Converged {
			return false
		}
		for _, s := range st.Slots {
			if s.Node == victim.Node.Nickname {
				return false
			}
		}
		return true
	})
	if !distinctFamilies(st) {
		t.Fatalf("replacement broke family spread: %+v", st.Slots)
	}
	// The node was reachable throughout, so the perm-failed corpse must
	// have been shut down cleanly — no leak, no orphan bookkeeping.
	waitFor(t, w, 60*time.Second, func() bool {
		return w.Servers[srv].FunctionCount() == 0
	}, "perm-failed replica shut down on its node")
	if got := ctl.Status().Orphans; got != 0 {
		t.Fatalf("orphans = %d after clean replacement, want 0", got)
	}
}
