package fleet

import "github.com/bento-nfv/bento/internal/obs"

// metrics is the controller's pre-registered telemetry bundle. Names are
// shared across fleets on one network, so the dashboard aggregates the
// whole control plane; a nil registry yields no-op handles.
type metrics struct {
	loops           *obs.Counter // reconcile passes
	actions         *obs.Counter // placements/upgrades/retires launched
	actionFailures  *obs.Counter // actions that came back failed
	probes          *obs.Counter // health probes sent
	probeFailures   *obs.Counter // probes that failed
	replacements    *obs.Counter // replicas retired for re-placement
	upgrades        *obs.Counter // in-place rolling upgrades completed
	breakerTrips    *obs.Counter // per-replica circuit breakers opened
	staleDiscarded  *obs.Counter // async results dropped as stale (old generation/incarnation)
	affinityRelaxed *obs.Counter // placements that had to share a family
	starved         *obs.Counter // reconcile passes with no feasible node for an open slot
	orphanReaps     *obs.Counter // leaked placements confirmed shut down
	convergences    *obs.Counter // diverged→converged transitions
	convergeMs      *obs.Histogram
	desired         *obs.Gauge
	ready           *obs.Gauge
}

// asMetrics is the autoscaler's bundle, separate from the reconcile
// loop's so an unscaled fleet registers none of it.
type asMetrics struct {
	evals         *obs.Counter // windows evaluated
	ups           *obs.Counter // scale-up actions taken
	downs         *obs.Counter // scale-down actions taken
	cooldownHolds *obs.Counter // actions suppressed by cooldown
	divergedHolds *obs.Counter // scale-downs suppressed while unconverged
	scaleErrors   *obs.Counter // Scale() calls that failed
	target        *obs.Gauge   // current desired replica count
}

func newASMetrics(reg *obs.Registry) asMetrics {
	return asMetrics{
		evals:         reg.Counter("fleet.autoscale_evals"),
		ups:           reg.Counter("fleet.autoscale_ups"),
		downs:         reg.Counter("fleet.autoscale_downs"),
		cooldownHolds: reg.Counter("fleet.autoscale_cooldown_holds"),
		divergedHolds: reg.Counter("fleet.autoscale_diverged_holds"),
		scaleErrors:   reg.Counter("fleet.autoscale_errors"),
		target:        reg.Gauge("fleet.autoscale_target"),
	}
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		loops:           reg.Counter("fleet.reconcile_loops"),
		actions:         reg.Counter("fleet.actions"),
		actionFailures:  reg.Counter("fleet.action_failures"),
		probes:          reg.Counter("fleet.probes"),
		probeFailures:   reg.Counter("fleet.probe_failures"),
		replacements:    reg.Counter("fleet.replacements"),
		upgrades:        reg.Counter("fleet.upgrades"),
		breakerTrips:    reg.Counter("fleet.breaker_trips"),
		staleDiscarded:  reg.Counter("fleet.stale_results_discarded"),
		affinityRelaxed: reg.Counter("fleet.affinity_relaxed"),
		starved:         reg.Counter("fleet.placement_starved"),
		orphanReaps:     reg.Counter("fleet.orphan_reaps"),
		convergences:    reg.Counter("fleet.convergences"),
		convergeMs:      reg.Histogram("fleet.convergence_ms", obs.ExpBuckets(16, 2, 16)),
		desired:         reg.Gauge("fleet.desired_replicas"),
		ready:           reg.Gauge("fleet.ready_replicas"),
	}
}
