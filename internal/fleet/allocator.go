package fleet

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/bento-nfv/bento/internal/dirauth"
	"github.com/bento-nfv/bento/internal/policy"
)

// allocator places replicas onto consensus Bento nodes, metallb-pool
// style: a pure feasibility filter plus a seeded random pick, so
// placements are reproducible per seed. Anti-affinity over relay
// families is a soft constraint ranked below availability — a fleet
// squeezed into one family beats a fleet that stays down — and every
// relaxation is reported to the caller so it lands in telemetry.
type allocator struct {
	rng *rand.Rand
}

func newAllocator(seed int64) *allocator {
	return &allocator{rng: rand.New(rand.NewSource(seed))}
}

// placement is one allocation request.
type placement struct {
	manifest *policy.Manifest
	// used are nicknames already hosting (or receiving) a replica of
	// this fleet; never eligible.
	used map[string]bool
	// usedFamilies are families already hosting a replica; avoided
	// under anti-affinity.
	usedFamilies map[string]bool
	// suspects maps nicknames to the virtual instant their cooldown
	// expires; a suspect node is avoided while alternatives exist.
	suspects map[string]time.Duration
	now      time.Duration
	// antiAffinity demands family-distinct placement when feasible.
	antiAffinity bool
	// sticky, when nonempty and feasible, is returned outright — the
	// slot is retrying a placement of unknown fate and must land on the
	// same node for its idempotency key to adopt the original.
	sticky string
}

// place picks a node. relaxed reports that anti-affinity had to be
// dropped to find one.
func (a *allocator) place(cons *dirauth.Consensus, req placement) (node *dirauth.Descriptor, relaxed bool, err error) {
	candidates := cons.BentoNodes(req.manifest.Calls...)
	feasible := candidates[:0:0]
	for _, d := range candidates {
		if !req.used[d.Nickname] {
			feasible = append(feasible, d)
		}
	}
	if len(feasible) == 0 {
		return nil, false, fmt.Errorf("fleet: no Bento node available (of %d in consensus, %d already used)",
			len(candidates), len(req.used))
	}

	fresh := func(d *dirauth.Descriptor) bool { return req.suspects[d.Nickname] <= req.now }

	// Sticky wins outright unless the node is a live suspect: an
	// unreachable node with a fresh alternative should be vacated (the
	// caller orphans the old key), but when every node is suspect or
	// taken, the tiers below converge back on the sticky node anyway —
	// same key, adopt-don't-duplicate.
	if req.sticky != "" {
		for _, d := range feasible {
			if d.Nickname == req.sticky && fresh(d) {
				return d, false, nil
			}
		}
	}
	distinct := func(d *dirauth.Descriptor) bool { return !req.usedFamilies[d.Family()] }

	// Preference tiers: reachability first, then family spread. A
	// suspect node likely rejects the placement anyway, so a fresh
	// same-family node outranks a suspect distinct-family one.
	tiers := []struct {
		ok      func(*dirauth.Descriptor) bool
		relaxed bool
	}{
		{func(d *dirauth.Descriptor) bool { return fresh(d) && distinct(d) }, false},
		{func(d *dirauth.Descriptor) bool { return fresh(d) }, true},
		{distinct, false},
		{func(d *dirauth.Descriptor) bool { return true }, true},
	}
	if !req.antiAffinity {
		tiers = []struct {
			ok      func(*dirauth.Descriptor) bool
			relaxed bool
		}{
			{fresh, false},
			{func(d *dirauth.Descriptor) bool { return true }, false},
		}
	}
	for _, tier := range tiers {
		var pool []*dirauth.Descriptor
		for _, d := range feasible {
			if tier.ok(d) {
				pool = append(pool, d)
			}
		}
		if len(pool) > 0 {
			// Within a tier, sticky still wins: adopting beats moving
			// whenever the sticky node is no worse than the rest.
			for _, d := range pool {
				if d.Nickname == req.sticky {
					return d, tier.relaxed, nil
				}
			}
			return pool[a.rng.Intn(len(pool))], tier.relaxed, nil
		}
	}
	return nil, false, fmt.Errorf("fleet: no feasible placement") // unreachable: last tier accepts all
}
