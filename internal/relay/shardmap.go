package relay

import (
	"sync"
	"time"

	"github.com/bento-nfv/bento/internal/obs"
)

// tableShards fixes the shard count of the relay's keyed tables. A power
// of two keeps the shard index a mask; 16 shards is far beyond the
// parallelism of any control-plane caller, so shard collisions are noise.
const tableShards = 16

type tableShard[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
}

// shardedTable replaces the relay's former single-mutex maps (circuits,
// rendezvous points, intro points, HSDir descriptors). Each key hashes to
// a fixed shard with its own RWMutex, so control-plane updates on
// different circuits never contend, and nothing here is ever taken on the
// per-cell forward path (workers reach their circuit state via the
// pointer carried in the task). Lock acquisition wait is observed into
// the relay.shard_lock_wait_ns histogram when one is attached, which is
// the contention signal surfaced by `torsim -stats`.
type shardedTable[K comparable, V any] struct {
	shards [tableShards]tableShard[K, V]
	hash   func(K) uint32
	wait   *obs.Histogram
}

func newShardedTable[K comparable, V any](hash func(K) uint32, wait *obs.Histogram) *shardedTable[K, V] {
	t := &shardedTable[K, V]{hash: hash, wait: wait}
	for i := range t.shards {
		t.shards[i].m = make(map[K]V)
	}
	return t
}

// fnv32 is FNV-1a over a string key.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// hashU64 mixes a 64-bit key (circuit serials are sequential, so the
// low bits alone would hash adjacent circuits to adjacent shards —
// fine — but mixing keeps the table robust to any key distribution).
func hashU64(k uint64) uint32 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return uint32(k)
}

func (t *shardedTable[K, V]) shard(k K) *tableShard[K, V] {
	return &t.shards[t.hash(k)&(tableShards-1)]
}

// timedLock acquires l, observing the wait into the table's histogram.
func (t *shardedTable[K, V]) timedLock(l sync.Locker) {
	if t.wait == nil {
		l.Lock()
		return
	}
	start := time.Now()
	l.Lock()
	t.wait.Observe(time.Since(start).Nanoseconds())
}

func (t *shardedTable[K, V]) Get(k K) (V, bool) {
	s := t.shard(k)
	t.timedLock(s.mu.RLocker())
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

func (t *shardedTable[K, V]) Put(k K, v V) {
	s := t.shard(k)
	t.timedLock(&s.mu)
	s.m[k] = v
	s.mu.Unlock()
}

func (t *shardedTable[K, V]) Delete(k K) {
	s := t.shard(k)
	t.timedLock(&s.mu)
	delete(s.m, k)
	s.mu.Unlock()
}

// GetAndDelete atomically claims a key (rendezvous cookies must splice
// exactly one pair of circuits even under concurrent RENDEZVOUS1s).
func (t *shardedTable[K, V]) GetAndDelete(k K) (V, bool) {
	s := t.shard(k)
	t.timedLock(&s.mu)
	v, ok := s.m[k]
	if ok {
		delete(s.m, k)
	}
	s.mu.Unlock()
	return v, ok
}

// DeleteIf removes every entry for which keep returns true, shard by
// shard (teardown sweeping a circuit out of the rendezvous/intro tables).
func (t *shardedTable[K, V]) DeleteIf(match func(K, V) bool) {
	for i := range t.shards {
		s := &t.shards[i]
		t.timedLock(&s.mu)
		for k, v := range s.m {
			if match(k, v) {
				delete(s.m, k)
			}
		}
		s.mu.Unlock()
	}
}

// Len counts entries across all shards (stats only; not a consistent
// snapshot under concurrent mutation).
func (t *shardedTable[K, V]) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		t.timedLock(s.mu.RLocker())
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry until it returns false. Like DeleteIf it
// holds one shard lock at a time.
func (t *shardedTable[K, V]) Range(fn func(K, V) bool) {
	for i := range t.shards {
		s := &t.shards[i]
		t.timedLock(s.mu.RLocker())
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}
