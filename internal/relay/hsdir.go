package relay

import (
	"fmt"
	"net"

	"github.com/bento-nfv/bento/internal/simnet"
	"github.com/bento-nfv/bento/internal/wire"
)

// HSDirPort is the port HSDir relays serve hidden-service descriptors on.
const HSDirPort = 9030

type hsdirRequest struct {
	Op         string `json:"op"` // "store" or "fetch"
	ServiceID  string `json:"service_id"`
	Descriptor []byte `json:"descriptor,omitempty"`
}

type hsdirResponse struct {
	OK         bool   `json:"ok"`
	Error      string `json:"error,omitempty"`
	Descriptor []byte `json:"descriptor,omitempty"`
}

// ServeHSDir starts the relay's hidden-service directory listener. Only
// relays with the HSDir flag call this. Stored descriptors are opaque
// bytes; signature validation happens in the hs package, which owns the
// descriptor format.
func (r *Relay) ServeHSDir() error {
	ln, err := r.host.Listen(HSDirPort)
	if err != nil {
		return err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go r.serveHSDirConn(conn)
		}
	}()
	go func() {
		<-r.closing
		ln.Close()
	}()
	return nil
}

func (r *Relay) serveHSDirConn(conn net.Conn) {
	defer conn.Close()
	dec := wire.NewDecoder(conn) // reuse one read buffer across requests
	for {
		var req hsdirRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp hsdirResponse
		switch req.Op {
		case "store":
			if req.ServiceID == "" || len(req.Descriptor) == 0 {
				resp.Error = "missing service ID or descriptor"
				break
			}
			r.hsdir.Put(req.ServiceID, req.Descriptor)
			resp.OK = true
		case "fetch":
			desc, ok := r.hsdir.Get(req.ServiceID)
			if !ok {
				resp.Error = "no descriptor for " + req.ServiceID
				break
			}
			resp.OK = true
			resp.Descriptor = desc
		default:
			resp.Error = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := wire.WriteJSON(conn, &resp); err != nil {
			return
		}
	}
}

// StoreHSDescriptor uploads a hidden-service descriptor to the HSDir at
// dirAddr ("host:port") from the given host.
func StoreHSDescriptor(host *simnet.Host, dirAddr, serviceID string, descriptor []byte) error {
	return hsdirRoundTrip(host, dirAddr, &hsdirRequest{
		Op: "store", ServiceID: serviceID, Descriptor: descriptor,
	}, nil)
}

// FetchHSDescriptor retrieves a hidden-service descriptor from the HSDir.
func FetchHSDescriptor(host *simnet.Host, dirAddr, serviceID string) ([]byte, error) {
	var desc []byte
	err := hsdirRoundTrip(host, dirAddr, &hsdirRequest{
		Op: "fetch", ServiceID: serviceID,
	}, &desc)
	return desc, err
}

func hsdirRoundTrip(host *simnet.Host, dirAddr string, req *hsdirRequest, desc *[]byte) error {
	conn, err := host.Dial(dirAddr)
	if err != nil {
		return fmt.Errorf("relay: dialing HSDir: %w", err)
	}
	defer conn.Close()
	if err := wire.WriteJSON(conn, req); err != nil {
		return err
	}
	var resp hsdirResponse
	if err := wire.ReadJSON(conn, &resp); err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("relay: HSDir %s: %s", req.Op, resp.Error)
	}
	if desc != nil {
		*desc = resp.Descriptor
	}
	return nil
}
