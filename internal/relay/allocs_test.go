package relay

import (
	"net"
	"testing"
	"time"

	"github.com/bento-nfv/bento/internal/cell"
	"github.com/bento-nfv/bento/internal/obs"
	"github.com/bento-nfv/bento/internal/otr"
)

// discardConn is a net.Conn that swallows writes, standing in for the
// next-hop link when measuring the forwarding path in isolation.
type discardConn struct{}

func (discardConn) Read(p []byte) (int, error)       { select {} }
func (discardConn) Write(p []byte) (int, error)      { return len(p), nil }
func (discardConn) Close() error                     { return nil }
func (discardConn) LocalAddr() net.Addr              { return nil }
func (discardConn) RemoteAddr() net.Addr             { return nil }
func (discardConn) SetDeadline(time.Time) error      { return nil }
func (discardConn) SetReadDeadline(time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// TestMiddleHopForwardAllocFree locks in the zero-allocation contract of
// the steady-state middle-hop forward path: read a frame, peel one
// keystream layer in place, fail recognition (with digest rollback),
// restamp the circuit ID, and enqueue on the batched next-hop writer.
// The acceptance bar for the datapath refactor is exactly 0 here.
//
// The cycle runs with live telemetry attached — a real registry's
// per-cell counters plus the BatchWriter flush-size histogram and a
// tracing sink — because the observability layer's own contract is that
// instrumentation never costs an allocation on the datapath.
func TestMiddleHopForwardAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	reg := obs.NewRegistry()
	m := newRelayMetrics(reg)
	keys := make([]byte, otr.KeyMaterialLen)
	for i := range keys {
		keys[i] = byte(i*11 + 3)
	}
	keys2 := make([]byte, otr.KeyMaterialLen)
	for i := range keys2 {
		keys2[i] = byte(i*13 + 5)
	}
	// Client layers for a 2-hop circuit; the middle relay holds hop 0's.
	cl0, err := otr.NewLayer(keys)
	if err != nil {
		t.Fatal(err)
	}
	cl1, err := otr.NewLayer(keys2)
	if err != nil {
		t.Fatal(err)
	}
	middle, err := otr.NewLayer(keys)
	if err != nil {
		t.Fatal(err)
	}
	clientLayers := []*otr.Layer{cl0, cl1}

	w := cell.NewBatchWriterObs(discardConn{}, m.flush)
	defer w.Close()

	out := make([]byte, cell.Size)  // client's send buffer
	wire := make([]byte, cell.Size) // middle hop's per-link read buffer
	data := make([]byte, cell.MaxRelayData)
	hdr := cell.RelayHeader{StreamID: 1, Cmd: cell.RelayData}

	cycle := func() {
		// Client: pack + onion-encrypt for hop 1.
		payload := cell.WirePayload(out)
		if err := cell.PackRelay(payload, hdr, data); err != nil {
			t.Fatal(err)
		}
		otr.OnionEncrypt(clientLayers, 1, payload, cell.DigestOffset)
		cell.SetWireCircID(out, 100)
		cell.SetWireCmd(out, cell.CmdRelay)

		// Middle hop: the handleRelay forwarding path on the read buffer,
		// including the per-cell metric updates the live path performs.
		copy(wire, out)
		p := cell.WirePayload(wire)
		middle.ApplyForward(p)
		if cell.Recognized(p) && middle.VerifyForward(p, cell.DigestOffset) {
			t.Fatal("middle hop recognized a cell addressed past it")
		}
		cell.SetWireCircID(wire, 200)
		m.fwdCells.Inc()
		if err := w.WriteFrame(wire); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 8; i++ {
		cycle() // warm up digest scratch and the writer's batch buffers
	}
	if allocs := testing.AllocsPerRun(500, cycle); allocs != 0 {
		t.Fatalf("middle-hop forward path allocates %.2f times per cell, want 0", allocs)
	}
	if m.fwdCells.Value() == 0 || m.flush.Count() == 0 {
		t.Fatal("live instrumentation did not record the forwarded cells")
	}
}
