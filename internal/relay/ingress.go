package relay

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"sync"

	"github.com/bento-nfv/bento/internal/cell"
	"github.com/bento-nfv/bento/internal/otr"
	"github.com/bento-nfv/bento/internal/simnet"
)

// Light (event-native) ingress.
//
// The classic ingress spends one goroutine per inbound link (serveConn's
// read loop) plus one per extended hop (backwardPump) plus one per exit
// stream. That is the right shape on a real network, where goroutines
// are parked in the kernel — but under the discrete-event core every one
// of those goroutines is a park/unpark bridge crossing per cell, and at
// 500k circuits the quiescence detector drowns the dispatcher (the
// settle loop was 98% of scale-bench wall time before this path).
//
// With Config.LightIngress, links on an event-driven simnet instead
// deliver through LightConn.SetDeliverFunc: frames arrive as dispatcher
// callbacks, forward-path crypto and circuit-ID rewrite run inline, and
// egress goes out through WriteAsync — zero goroutines, zero parks, so
// a pure relay epoch needs no settles at all. The two operations that
// genuinely block — EXTEND (dials the next hop and waits for CREATED)
// and BEGIN (dials the exit destination) — hop onto a short-lived
// helper goroutine; frames arriving mid-helper queue on the circuit and
// drain in arrival order when the helper finishes, preserving the
// decrypt-order-equals-wire-order invariant the layered crypto needs.
//
// State lives in the same sharded tables as the §13 parallel datapath
// (rendezvous cookies and intro registrations get light twins with the
// identical shard layout), and the light path feeds the identical
// relay.* counters, so dashboards and gates see one relay either way.

// lightCircuit is one inbound link's circuit state on the light path.
// Forward-path processing is single-threaded by construction: frames
// are handled inline on the dispatcher while no helper is active, and
// exclusively by the helper while one is (mu guards the handoff and the
// backlog). The backward direction is serialized by bwMu, which is held
// across seal/encrypt + WriteAsync so keystream order equals wire
// order.
type lightCircuit struct {
	relay  *Relay
	serial uint64
	circID uint32
	conn   simnet.LightConn // inbound link, toward the circuit origin
	layer  *otr.Layer

	created bool     // CREATE handshake completed
	inBuf   frameBuf // client-side chunk→cell reassembly (dispatcher only)
	bwBuf   frameBuf // next-hop-side reassembly (dispatcher only)

	mu         sync.Mutex
	busy       bool             // a helper goroutine owns frame processing
	backlog    [][]byte         // raw frames queued behind the helper, arrival order
	next       simnet.LightConn // toward the next hop, nil until extended
	nextCircID uint32
	joined     *lightCircuit // rendezvous splice
	streams    map[uint16]net.Conn
	rendKey    string // registered rendezvous cookie, for O(1) teardown
	introKey   string // registered intro service ID, for O(1) teardown
	destroyed  bool

	bwMu   sync.Mutex
	bwWire [cell.Size]byte // backward originate scratch, guarded by bwMu
}

// frameBuf reassembles delivered byte chunks into whole wire cells:
// simnet chunks both split and merge cells (a 16-cell WriteAsync burst
// can arrive as one 8KiB delivery). Whole cells sitting aligned in the
// incoming chunk are emitted in place with no copy; only split cells
// touch the carry buffer. emit may mutate the frame (in-place decrypt)
// and returns false to abort the feed (circuit killed).
type frameBuf struct {
	carry []byte
}

func (fb *frameBuf) feed(data []byte, emit func(frame []byte) bool) bool {
	if len(fb.carry) > 0 {
		need := cell.Size - len(fb.carry)
		if need > len(data) {
			fb.carry = append(fb.carry, data...)
			return true
		}
		fb.carry = append(fb.carry, data[:need]...)
		data = data[need:]
		if !emit(fb.carry) {
			return false
		}
		fb.carry = fb.carry[:0]
	}
	for len(data) >= cell.Size {
		if !emit(data[:cell.Size]) {
			return false
		}
		data = data[cell.Size:]
	}
	fb.carry = append(fb.carry, data...)
	return true
}

// serveLight wires an accepted link into the light ingress and returns
// immediately: all further work for this link happens in deliver
// callbacks. Called from the accept loop.
func (r *Relay) serveLight(conn simnet.LightConn) {
	lc := &lightCircuit{relay: r, conn: conn, serial: r.circSerial.Add(1)}
	r.connMu.Lock()
	r.conns[conn] = struct{}{}
	r.connMu.Unlock()
	conn.SetDeliverFunc(lc.onDeliver)
}

// onDeliver is the inbound link's delivery callback (dispatcher
// context: must not block or park).
func (lc *lightCircuit) onDeliver(data []byte, eof bool) {
	if len(data) > 0 {
		lc.inBuf.feed(data, lc.onFrame)
	}
	if eof {
		lc.teardown()
	}
}

// onFrame handles one whole inbound wire cell.
func (lc *lightCircuit) onFrame(wire []byte) bool {
	r := lc.relay
	if !lc.created {
		if cell.WireCmd(wire) != cell.CmdCreate {
			lc.kill()
			return false
		}
		lc.circID = cell.WireCircID(wire)
		reply, keys, err := otr.ServerHandshake([]byte(r.Fingerprint()), r.onion, cell.WirePayload(wire)[:otr.PublicKeyLen])
		if err != nil {
			r.logf("light handshake failed: %v", err)
			lc.kill()
			return false
		}
		layer, err := otr.NewLayer(keys)
		if err != nil {
			lc.kill()
			return false
		}
		lc.layer = layer
		lc.created = true
		lc.streams = make(map[uint16]net.Conn)
		var out [cell.Size]byte
		cell.SetWireCircID(out[:], lc.circID)
		cell.SetWireCmd(out[:], cell.CmdCreated)
		copy(cell.WirePayload(out[:]), reply)
		if lc.conn.WriteAsync(out[:]) != nil {
			lc.teardown()
			return false
		}
		r.m.circCreated.Inc()
		r.m.openCircs.Add(1)
		return true
	}
	switch cell.WireCmd(wire) {
	case cell.CmdRelay:
		// Helper active: preserve order by queueing the still-encrypted
		// frame; the helper decrypts the backlog in arrival order. The
		// frame aliases the reassembly buffer, so the queue keeps a copy.
		lc.mu.Lock()
		if lc.busy {
			lc.backlog = append(lc.backlog, append([]byte(nil), wire...))
			lc.mu.Unlock()
			return true
		}
		lc.mu.Unlock()
		return lc.processFrame(wire, false)
	case cell.CmdDestroy:
		lc.teardown()
		return false
	case cell.CmdPadding:
		return true
	default:
		r.logf("light: unexpected cell %v mid-circuit", cell.WireCmd(wire))
		lc.kill()
		return false
	}
}

// processFrame decrypts one relay cell and finishes it: recognition and
// dispatch if addressed to this hop, otherwise circuit-ID rewrite and
// WriteAsync toward the next hop (or a splice toward a joined circuit).
// onHelper marks helper-goroutine context, where parking is allowed;
// commands that park (EXTEND, BEGIN) promote themselves onto a helper
// otherwise.
func (lc *lightCircuit) processFrame(wire []byte, onHelper bool) bool {
	r := lc.relay
	payload := cell.WirePayload(wire)
	lc.layer.ApplyForward(payload)
	if cell.Recognized(payload) && lc.layer.VerifyForward(payload, cell.DigestOffset) {
		r.m.recognized.Inc()
		hdr, data, err := cell.ParseRelay(payload)
		if err != nil {
			r.logf("light: bad relay payload: %v", err)
			lc.kill()
			return false
		}
		if !onHelper && (hdr.Cmd == cell.RelayExtend || hdr.Cmd == cell.RelayBegin) {
			// These dial and wait: off the dispatcher. The decrypted frame
			// aliases the reassembly buffer, so the helper gets a copy. The
			// helper is a real goroutine outside the event graph, so hold
			// the park-side bridge open across its lifetime — without it,
			// settle elision lets virtual time sprint past the helper
			// before the OS scheduler ever runs it.
			lc.mu.Lock()
			lc.busy = true
			lc.mu.Unlock()
			frame := append([]byte(nil), wire...)
			release := r.host.Clock().Blocking()
			go func() {
				defer release()
				lc.runHelper(frame)
			}()
			return true
		}
		if !lc.dispatchLight(hdr, data) {
			lc.kill()
			return false
		}
		return true
	}

	lc.mu.Lock()
	next, nextID, joined, dead := lc.next, lc.nextCircID, lc.joined, lc.destroyed
	lc.mu.Unlock()
	if dead {
		return false
	}
	switch {
	case next != nil:
		cell.SetWireCircID(wire, nextID)
		r.m.fwdCells.Inc()
		if next.WriteAsync(wire) != nil {
			lc.kill()
			return false
		}
	case joined != nil:
		// Rendezvous splice: the still-encrypted payload continues as a
		// backward cell on the joined circuit.
		r.m.bwdCells.Inc()
		if joined.spliceBackward(payload) != nil {
			lc.kill()
			return false
		}
	default:
		r.logf("light: unrecognized relay cell at last hop, dropping circuit")
		r.m.dropped.Inc()
		lc.kill()
		return false
	}
	return true
}

// runHelper processes one already-decrypted frame that needs to block,
// then drains any frames that queued behind it, in arrival order. It is
// the only frame-processing context while lc.busy is set.
func (lc *lightCircuit) runHelper(decrypted []byte) {
	payload := cell.WirePayload(decrypted)
	if hdr, data, err := cell.ParseRelay(payload); err == nil {
		if !lc.dispatchLight(hdr, data) {
			lc.kill()
		}
	} else {
		lc.kill()
	}
	for {
		lc.mu.Lock()
		if len(lc.backlog) == 0 || lc.destroyed {
			lc.backlog = nil
			lc.busy = false
			lc.mu.Unlock()
			return
		}
		f := lc.backlog[0]
		lc.backlog = lc.backlog[1:]
		lc.mu.Unlock()
		lc.processFrame(f, true)
	}
}

// dispatchLight routes one recognized relay command. Handlers must not
// park unless documented otherwise (EXTEND and BEGIN run on helpers).
func (lc *lightCircuit) dispatchLight(hdr cell.RelayHeader, data []byte) bool {
	r := lc.relay
	switch hdr.Cmd {
	case cell.RelayExtend:
		return lc.handleExtend(data)
	case cell.RelayBegin:
		return lc.handleBegin(hdr, data)
	case cell.RelayData:
		return lc.handleData(hdr, data)
	case cell.RelayEnd:
		lc.closeStream(hdr.StreamID)
		return true
	case cell.RelayDrop:
		// Cover traffic: absorbed here by design.
		return true
	case cell.RelayEstablishRendezvous:
		return lc.handleEstablishRendezvous(data)
	case cell.RelayRendezvous1:
		return lc.handleRendezvous1(data)
	case cell.RelayEstablishIntro:
		return lc.handleEstablishIntro(data)
	case cell.RelayIntroduce1:
		return lc.handleIntroduce1(data)
	default:
		r.logf("light: unhandled relay command %v", hdr.Cmd)
		return true
	}
}

// handleExtend runs on a helper goroutine: it dials the next hop,
// performs CREATE/CREATED on behalf of the client, and installs the
// backward delivery callback on the new link.
func (lc *lightCircuit) handleExtend(data []byte) bool {
	r := lc.relay
	var ext cell.ExtendPayload
	if err := cell.DecodeControl(data, &ext); err != nil {
		return false
	}
	lc.mu.Lock()
	already := lc.next != nil
	lc.mu.Unlock()
	if already {
		r.logf("light: EXTEND on already-extended circuit")
		return false
	}
	sp := r.reg.StartSpan("relay.extend")
	sp.Note(ext.Addr)
	nextConn, err := r.host.Dial(ext.Addr)
	if err != nil {
		r.logf("light extend dial %s: %v", ext.Addr, err)
		r.m.extendFails.Inc()
		sp.Fail(err)
		sp.End()
		return false
	}
	nextLC, ok := nextConn.(simnet.LightConn)
	if !ok {
		nextConn.Close()
		r.m.extendFails.Inc()
		sp.End()
		return false
	}
	var idBuf [4]byte
	rand.Read(idBuf[:])
	nextID := uint32(idBuf[0])<<24 | uint32(idBuf[1])<<16 | uint32(idBuf[2])<<8 | uint32(idBuf[3])
	var create [cell.Size]byte
	cell.SetWireCircID(create[:], nextID)
	cell.SetWireCmd(create[:], cell.CmdCreate)
	copy(cell.WirePayload(create[:]), ext.Handshake)
	if nextLC.WriteAsync(create[:]) != nil {
		nextConn.Close()
		r.m.extendFails.Inc()
		sp.End()
		return false
	}
	// Blocking read for CREATED: the delivery callback is not installed
	// yet, so the reply lands in the conn's read buffer, and parking a
	// helper goroutine is fine.
	var reply [cell.Size]byte
	if err := cell.ReadWire(nextConn, reply[:]); err != nil || cell.WireCmd(reply[:]) != cell.CmdCreated {
		nextConn.Close()
		r.m.extendFails.Inc()
		sp.End()
		return false
	}
	nextLC.SetDeliverFunc(lc.onBackward)
	lc.mu.Lock()
	if lc.destroyed {
		lc.mu.Unlock()
		nextConn.Close()
		sp.End()
		return false
	}
	lc.next = nextLC
	lc.nextCircID = nextID
	lc.mu.Unlock()
	r.m.extends.Inc()
	sp.End()

	extended, err := cell.EncodeControl(&cell.ExtendedPayload{
		Reply: cell.WirePayload(reply[:])[:otr.PublicKeyLen+otr.AuthLen],
	})
	if err != nil {
		return false
	}
	return lc.sendBackward(cell.RelayHeader{Cmd: cell.RelayExtended}, extended) == nil
}

// onBackward is the next-hop link's delivery callback (dispatcher
// context): cells from behind get this hop's backward layer applied and
// continue toward the client.
func (lc *lightCircuit) onBackward(data []byte, eof bool) {
	if len(data) > 0 {
		lc.bwBuf.feed(data, lc.onBackwardFrame)
	}
	if eof {
		lc.destroyFromBehind()
	}
}

func (lc *lightCircuit) onBackwardFrame(wire []byte) bool {
	switch cell.WireCmd(wire) {
	case cell.CmdRelay:
		lc.relay.m.bwdCells.Inc()
		lc.bwMu.Lock()
		lc.layer.ApplyBackward(cell.WirePayload(wire))
		cell.SetWireCircID(wire, lc.circID)
		err := lc.conn.WriteAsync(wire)
		lc.bwMu.Unlock()
		if err != nil {
			lc.teardown()
			return false
		}
		return true
	case cell.CmdDestroy:
		lc.destroyFromBehind()
		return false
	default:
		return true
	}
}

// spliceBackward carries a still-encrypted forward payload from a
// joined circuit onto this circuit's backward direction (rendezvous
// splice). The caller owns the payload's frame; WriteAsync copies.
func (lc *lightCircuit) spliceBackward(payload []byte) error {
	lc.bwMu.Lock()
	defer lc.bwMu.Unlock()
	lc.layer.ApplyBackward(payload)
	cell.SetWireCircID(lc.bwWire[:], lc.circID)
	cell.SetWireCmd(lc.bwWire[:], cell.CmdRelay)
	copy(cell.WirePayload(lc.bwWire[:]), payload)
	return lc.conn.WriteAsync(lc.bwWire[:])
}

// sendBackward originates a backward relay cell at this hop: pack, seal
// with the backward digest, encrypt, WriteAsync — never parks, so it is
// safe from both dispatcher and helper context.
func (lc *lightCircuit) sendBackward(hdr cell.RelayHeader, data []byte) error {
	lc.relay.m.originated.Inc()
	lc.bwMu.Lock()
	defer lc.bwMu.Unlock()
	payload := cell.WirePayload(lc.bwWire[:])
	if err := cell.PackRelay(payload, hdr, data); err != nil {
		return err
	}
	lc.layer.SealBackward(payload, cell.DigestOffset)
	lc.layer.ApplyBackward(payload)
	cell.SetWireCircID(lc.bwWire[:], lc.circID)
	cell.SetWireCmd(lc.bwWire[:], cell.CmdRelay)
	return lc.conn.WriteAsync(lc.bwWire[:])
}

// handleBegin runs on a helper goroutine: it dials the exit destination
// and installs the stream's backward delivery callback.
func (lc *lightCircuit) handleBegin(hdr cell.RelayHeader, data []byte) bool {
	r := lc.relay
	var begin cell.BeginPayload
	if err := cell.DecodeControl(data, &begin); err != nil {
		return false
	}
	host, port, ok := splitTarget(begin.Target)
	if !ok {
		return lc.endStream(hdr.StreamID, "bad target")
	}
	policyHost := host
	if host == "localhost" {
		host = r.host.Name()
	}
	if !r.cfg.ExitPolicy.Allows(policyHost, port) {
		r.logf("light: exit policy refuses %s:%d", policyHost, port)
		r.m.streamsRefused.Inc()
		return lc.endStream(hdr.StreamID, "exit policy refused")
	}
	remote, err := r.host.Dial(fmt.Sprintf("%s:%d", host, port))
	if err != nil {
		r.m.streamsRefused.Inc()
		return lc.endStream(hdr.StreamID, "connect failed")
	}
	streamID := hdr.StreamID
	lc.mu.Lock()
	if lc.destroyed {
		lc.mu.Unlock()
		remote.Close()
		return false
	}
	lc.streams[streamID] = remote
	lc.mu.Unlock()
	r.m.streamsOpened.Inc()
	if rl, ok := remote.(simnet.LightConn); ok {
		rl.SetDeliverFunc(func(data []byte, eof bool) {
			lc.streamBackward(streamID, data, eof)
		})
	} else {
		go lc.exitReaderLight(streamID, remote)
	}
	return lc.sendBackward(cell.RelayHeader{StreamID: streamID, Cmd: cell.RelayConnected}, nil) == nil
}

// streamBackward turns exit-destination bytes into backward DATA cells
// (dispatcher context: pack + seal + WriteAsync only).
func (lc *lightCircuit) streamBackward(streamID uint16, data []byte, eof bool) {
	for len(data) > 0 {
		chunk := data
		if len(chunk) > cell.MaxRelayData {
			chunk = chunk[:cell.MaxRelayData]
		}
		if lc.sendBackward(cell.RelayHeader{StreamID: streamID, Cmd: cell.RelayData}, chunk) != nil {
			lc.teardown()
			return
		}
		data = data[len(chunk):]
	}
	if eof {
		end, _ := cell.EncodeControl(&cell.EndPayload{Reason: "eof"})
		lc.sendBackward(cell.RelayHeader{StreamID: streamID, Cmd: cell.RelayEnd}, end)
		lc.closeStream(streamID)
	}
}

// exitReaderLight is the fallback for exit destinations that are not
// LightConns (never the case on simnet): a dedicated reader goroutine,
// as on the classic path.
func (lc *lightCircuit) exitReaderLight(streamID uint16, remote net.Conn) {
	buf := make([]byte, cell.MaxRelayData)
	for {
		n, err := remote.Read(buf)
		if n > 0 {
			lc.streamBackward(streamID, buf[:n], false)
		}
		if err != nil {
			lc.streamBackward(streamID, nil, true)
			return
		}
	}
}

func (lc *lightCircuit) handleData(hdr cell.RelayHeader, data []byte) bool {
	lc.mu.Lock()
	remote := lc.streams[hdr.StreamID]
	lc.mu.Unlock()
	if remote == nil {
		// Stream already closed; tolerate in-flight data.
		return true
	}
	if rl, ok := remote.(simnet.LightConn); ok {
		if rl.WriteAsync(data) != nil {
			lc.closeStream(hdr.StreamID)
		}
		return true
	}
	// Non-light remote: this handler may be on the dispatcher, where a
	// blocking Write could deadlock the clock. Drop rather than park —
	// light ingress is only selected on event-driven simnets, where
	// every conn is a LightConn.
	lc.relay.logf("light: dropping stream data for non-light remote")
	return true
}

func (lc *lightCircuit) closeStream(streamID uint16) {
	lc.mu.Lock()
	remote := lc.streams[streamID]
	delete(lc.streams, streamID)
	lc.mu.Unlock()
	if remote != nil {
		remote.Close()
	}
}

func (lc *lightCircuit) endStream(streamID uint16, reason string) bool {
	end, err := cell.EncodeControl(&cell.EndPayload{Reason: reason})
	if err != nil {
		return false
	}
	return lc.sendBackward(cell.RelayHeader{StreamID: streamID, Cmd: cell.RelayEnd}, end) == nil
}

func (lc *lightCircuit) handleEstablishRendezvous(data []byte) bool {
	var est cell.EstablishRendezvousPayload
	if err := cell.DecodeControl(data, &est); err != nil {
		return false
	}
	if len(est.Cookie) < 8 {
		return false
	}
	key := hex.EncodeToString(est.Cookie)
	lc.relay.lightRend.Put(key, lc)
	lc.mu.Lock()
	lc.rendKey = key
	lc.mu.Unlock()
	return lc.sendBackward(cell.RelayHeader{Cmd: cell.RelayRendezvousEstablished}, nil) == nil
}

func (lc *lightCircuit) handleRendezvous1(data []byte) bool {
	r := lc.relay
	var rv cell.Rendezvous1Payload
	if err := cell.DecodeControl(data, &rv); err != nil {
		return false
	}
	key := hex.EncodeToString(rv.Cookie)
	client, _ := r.lightRend.GetAndDelete(key)
	if client == nil {
		r.logf("light: RENDEZVOUS1 with unknown cookie")
		return false
	}
	client.mu.Lock()
	client.joined = lc
	client.rendKey = ""
	client.mu.Unlock()
	lc.mu.Lock()
	lc.joined = client
	lc.mu.Unlock()
	reply, err := cell.EncodeControl(&cell.Rendezvous2Payload{Reply: rv.Reply})
	if err != nil {
		return false
	}
	r.m.rendSplices.Inc()
	return client.sendBackward(cell.RelayHeader{Cmd: cell.RelayRendezvous2}, reply) == nil
}

func (lc *lightCircuit) handleEstablishIntro(data []byte) bool {
	r := lc.relay
	var est cell.EstablishIntroPayload
	if err := cell.DecodeControl(data, &est); err != nil {
		return false
	}
	if !verifyIntroSig(est) {
		r.logf("light: ESTABLISH_INTRO bad signature for %s", est.ServiceID)
		return false
	}
	r.lightIntros.Put(est.ServiceID, lc)
	lc.mu.Lock()
	lc.introKey = est.ServiceID
	lc.mu.Unlock()
	return lc.sendBackward(cell.RelayHeader{Cmd: cell.RelayIntroEstablished}, nil) == nil
}

func (lc *lightCircuit) handleIntroduce1(data []byte) bool {
	r := lc.relay
	var intro cell.Introduce1Payload
	if err := cell.DecodeControl(data, &intro); err != nil {
		return false
	}
	svc, _ := r.lightIntros.Get(intro.ServiceID)
	if svc == nil {
		r.logf("light: INTRODUCE1 for unknown service %s", intro.ServiceID)
		return lc.endIntroduce("no such service")
	}
	if err := svc.sendBackward(cell.RelayHeader{Cmd: cell.RelayIntroduce2}, intro.Inner); err != nil {
		return lc.endIntroduce("service unreachable")
	}
	r.m.introsForwarded.Inc()
	return lc.sendBackward(cell.RelayHeader{Cmd: cell.RelayIntroduceAck}, nil) == nil
}

func (lc *lightCircuit) endIntroduce(reason string) bool {
	data, _ := cell.EncodeControl(&cell.EndPayload{Reason: reason})
	return lc.sendBackward(cell.RelayHeader{Cmd: cell.RelayEnd}, data) == nil
}

// kill severs the circuit immediately: used for protocol violations.
func (lc *lightCircuit) kill() {
	lc.teardown()
}

// teardown releases everything the circuit holds. Safe from any
// context (dispatcher, helper, Crash): nothing here parks.
func (lc *lightCircuit) teardown() {
	lc.mu.Lock()
	if lc.destroyed {
		lc.mu.Unlock()
		return
	}
	lc.destroyed = true
	next, nextID := lc.next, lc.nextCircID
	joined := lc.joined
	streams := lc.streams
	rendKey, introKey := lc.rendKey, lc.introKey
	lc.next = nil
	lc.joined = nil
	lc.streams = nil
	lc.backlog = nil
	lc.mu.Unlock()

	r := lc.relay
	if lc.created {
		r.m.circDestroyed.Inc()
		r.m.openCircs.Add(-1)
	}
	// Direct key deletes: a DeleteIf sweep per teardown would be
	// quadratic across a 500k-circuit drain.
	if rendKey != "" {
		r.lightRend.Delete(rendKey)
	}
	if introKey != "" {
		r.lightIntros.Delete(introKey)
	}
	for _, s := range streams {
		s.Close()
	}
	if next != nil {
		var destroy [cell.Size]byte
		cell.SetWireCircID(destroy[:], nextID)
		cell.SetWireCmd(destroy[:], cell.CmdDestroy)
		next.WriteAsync(destroy[:])
		next.Close()
	}
	if joined != nil {
		joined.mu.Lock()
		joined.joined = nil
		joined.mu.Unlock()
		joined.destroyFromBehind()
	}
	r.connMu.Lock()
	delete(r.conns, lc.conn)
	r.connMu.Unlock()
	lc.conn.Close()
}

// destroyFromBehind tears the circuit down when the next hop vanished:
// the client is told with a DESTROY, then everything unwinds.
func (lc *lightCircuit) destroyFromBehind() {
	lc.mu.Lock()
	dead := lc.destroyed
	lc.mu.Unlock()
	if dead {
		return
	}
	var destroy [cell.Size]byte
	cell.SetWireCircID(destroy[:], lc.circID)
	cell.SetWireCmd(destroy[:], cell.CmdDestroy)
	lc.conn.WriteAsync(destroy[:])
	lc.teardown()
}
